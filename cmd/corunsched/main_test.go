package main

import "testing"

func TestBuildBatch(t *testing.T) {
	b, err := buildBatch("", 8)
	if err != nil || len(b) != 8 {
		t.Fatalf("batch 8: %v %d", err, len(b))
	}
	b, err = buildBatch("", 16)
	if err != nil || len(b) != 16 {
		t.Fatalf("batch 16: %v %d", err, len(b))
	}
	if _, err := buildBatch("", 5); err == nil {
		t.Error("batch 5 accepted")
	}
	b, err = buildBatch("lud,dwt2d", 8)
	if err != nil || len(b) != 2 || b[0].Label != "lud" {
		t.Fatalf("jobs override: %v %v", err, b)
	}
	if _, err := buildBatch("bogus", 8); err == nil {
		t.Error("unknown job accepted")
	}
}
