// Command corunsched schedules a batch of jobs on the simulated
// integrated CPU-GPU machine and reports the outcome.
//
// Usage:
//
//	corunsched [-cap watts] [-policy name] [-batch 8|16]
//	           [-jobs name,name,...] [-seed n] [-v]
//
// The planned policies come from the policy registry (run with
// -policy help to list them); "random", "default-gpu", and
// "default-cpu" additionally name the paper's dispatcher-driven
// baseline executions.
//
// Examples:
//
//	corunsched -cap 15 -policy hcs+ -batch 16
//	corunsched -cap 16 -policy random -seed 3 -jobs dwt2d,streamcluster,lud
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"corun"
)

func main() {
	cap := flag.Float64("cap", 15, "package power cap in watts (0 = uncapped)")
	policy := flag.String("policy", "hcs+", policyUsage())
	batchSize := flag.Int("batch", 8, "use the paper's 8- or 16-instance batch")
	jobs := flag.String("jobs", "", "comma-separated benchmark names overriding -batch")
	seed := flag.Int64("seed", 1, "seed for the random policy")
	verbose := flag.Bool("v", false, "print per-job completions")
	chart := flag.Bool("gantt", false, "render the executed schedule as an ASCII Gantt chart")
	machine := flag.String("machine", "ivybridge", "machine preset: ivybridge | kaveri")
	explain := flag.Bool("explain", false, "for hcs/hcs+: explain the planned schedule before running it")
	flag.Parse()

	batch, err := buildBatch(*jobs, *batchSize)
	if err != nil {
		fatal(err)
	}

	opts := []corun.Option{corun.WithPowerCap(*cap)}
	switch strings.ToLower(*machine) {
	case "ivybridge", "":
		// default machine
	case "kaveri":
		opts = append(opts, corun.WithMachine(corun.KaveriMachine()))
	default:
		fatal(fmt.Errorf("unknown machine %q", *machine))
	}
	sys, err := corun.NewSystem(opts...)
	if err != nil {
		fatal(err)
	}
	w, err := sys.Prepare(batch)
	if err != nil {
		fatal(err)
	}

	var report *corun.Report
	// The dispatcher-driven baseline executions keep their historical
	// names; every other name is a planned policy resolved through the
	// registry, which rejects unknown names with the valid list.
	switch strings.ToLower(strings.TrimSpace(*policy)) {
	case "help", "list":
		listPolicies(os.Stdout)
		return
	case "random":
		report, err = w.RunRandom(*seed, corun.GPUBiased)
		if err != nil {
			fatal(err)
		}
	case "default-gpu":
		report, err = w.RunDefault(corun.GPUBiased)
		if err != nil {
			fatal(err)
		}
	case "default-cpu":
		report, err = w.RunDefault(corun.CPUBiased)
		if err != nil {
			fatal(err)
		}
	default:
		plan, err := w.ScheduleSeeded(*policy, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println("schedule:", plan)
		if *explain {
			if err := w.ExplainPlan(os.Stdout, plan); err != nil {
				fatal(err)
			}
		}
		report, err = w.Run(plan)
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("makespan:       %.2f s\n", float64(report.Makespan))
	fmt.Printf("average power:  %.2f W (max sample %.2f W)\n", float64(report.AvgPower), float64(report.MaxPower))
	fmt.Printf("energy:         %.0f J\n", report.EnergyJ)
	if *cap > 0 {
		fmt.Printf("cap violations: %d samples (max excess %.2f W)\n", report.CapViolations, float64(report.MaxExcess))
	}
	if bound, err := w.LowerBound(); err == nil {
		fmt.Printf("lower bound:    %.2f s (%.0f%% of achieved)\n",
			float64(bound), 100*float64(bound)/float64(report.Makespan))
	}
	if *verbose {
		fmt.Println("completions:")
		for _, c := range report.Completions {
			fmt.Printf("  %-18s %v  %8.1fs -> %8.1fs\n", c.Inst.Label, c.Dev, float64(c.Start), float64(c.End))
		}
	}
	if *chart {
		if err := report.WriteGantt(os.Stdout, 72); err != nil {
			fatal(err)
		}
	}
}

func buildBatch(jobs string, batchSize int) ([]*corun.Instance, error) {
	if jobs != "" {
		return corun.Subset(strings.Split(jobs, ",")...)
	}
	switch batchSize {
	case 8:
		return corun.Batch8(), nil
	case 16:
		return corun.Batch16(), nil
	default:
		return nil, fmt.Errorf("-batch must be 8 or 16 (or use -jobs)")
	}
}

// policyUsage builds the -policy help text from the registry instead
// of a hand-maintained list.
func policyUsage() string {
	names := append(corun.Policies(), "default-gpu", "default-cpu")
	return "planned policy from the registry, or a dispatcher baseline: " +
		strings.Join(names, " | ") + " (or 'help' to describe them)"
}

// listPolicies describes every registered policy plus the dispatcher
// baselines.
func listPolicies(w io.Writer) {
	fmt.Fprintln(w, "registered policies:")
	for _, info := range corun.DescribePolicies() {
		name := info.Name
		if len(info.Aliases) > 0 {
			name += " (" + strings.Join(info.Aliases, ", ") + ")"
		}
		fmt.Fprintf(w, "  %-24s %s\n", name, info.Description)
	}
	fmt.Fprintln(w, "dispatcher baselines:")
	fmt.Fprintf(w, "  %-24s %s\n", "default-gpu", "Default baseline executed under the GPU-biased governor")
	fmt.Fprintf(w, "  %-24s %s\n", "default-cpu", "Default baseline executed under the CPU-biased governor")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corunsched:", err)
	os.Exit(1)
}
