// Command benchdiff compares two `go test -bench` outputs and fails
// on regressions — an in-repo, dependency-free stand-in for benchstat
// used by `make benchdiff` and the CI bench-regression gate.
//
//	go test -bench=. -benchmem -count=5 ./internal/server > old.txt   # at the merge base
//	go test -bench=. -benchmem -count=5 ./internal/server > new.txt   # at HEAD
//	benchdiff -old old.txt -new new.txt -threshold 0.15 -metrics ns/op,B/op
//
// For every benchmark present in both files it takes the median of
// each tracked metric across the repeated runs (the median is robust
// to one noisy neighbour, which is the whole reason -count>1 exists)
// and reports the relative delta. A delta above the threshold on any
// tracked metric is a regression: it is listed and the exit status is
// 1. Benchmarks present on only one side are reported but never fail
// the gate, so adding or retiring a benchmark does not break CI.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line:
//
//	BenchmarkSubmitHandler-4   39608   28433 ns/op   9865 B/op   49 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// metricPair matches "<value> <unit>" segments of the tail.
var metricPair = regexp.MustCompile(`([0-9.]+(?:e[+-]?\d+)?)\s+(ns/op|B/op|allocs/op|MB/s)`)

type samples map[string]map[string][]float64 // bench -> metric -> runs

func parse(path string, match *regexp.Regexp) (samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := samples{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		if match != nil && !match.MatchString(name) {
			continue
		}
		if out[name] == nil {
			out[name] = map[string][]float64{}
		}
		for _, pair := range metricPair.FindAllStringSubmatch(m[2], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			out[name][pair[2]] = append(out[name][pair[2]], v)
		}
	}
	return out, sc.Err()
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func main() {
	oldPath := flag.String("old", "", "baseline `go test -bench` output (merge base)")
	newPath := flag.String("new", "", "candidate `go test -bench` output (HEAD)")
	threshold := flag.Float64("threshold", 0.15, "relative regression that fails the gate (0.15 = +15%)")
	metricsFlag := flag.String("metrics", "ns/op,B/op", "comma-separated metrics gated on (higher = worse)")
	matchFlag := flag.String("match", "", "optional regexp restricting which benchmarks are compared")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		flag.Usage()
		os.Exit(2)
	}
	var match *regexp.Regexp
	if *matchFlag != "" {
		var err error
		if match, err = regexp.Compile(*matchFlag); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: bad -match: %v\n", err)
			os.Exit(2)
		}
	}
	gated := map[string]bool{}
	for _, m := range strings.Split(*metricsFlag, ",") {
		if m = strings.TrimSpace(m); m != "" {
			gated[m] = true
		}
	}

	oldS, err := parse(*oldPath, match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newS, err := parse(*newPath, match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(oldS))
	for n := range oldS {
		names = append(names, n)
	}
	sort.Strings(names)

	var regressions []string
	compared := 0
	fmt.Printf("%-40s %-10s %14s %14s %8s\n", "benchmark", "metric", "old(median)", "new(median)", "delta")
	for _, name := range names {
		nw, ok := newS[name]
		if !ok {
			fmt.Printf("%-40s only in baseline (skipped)\n", name)
			continue
		}
		metrics := make([]string, 0, len(oldS[name]))
		for m := range oldS[name] {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			nws, ok := nw[m]
			if !ok || len(nws) == 0 {
				continue
			}
			om, nm := median(oldS[name][m]), median(nws)
			var delta float64
			if om != 0 {
				delta = (nm - om) / om
			}
			mark := ""
			if gated[m] {
				compared++
				if delta > *threshold {
					mark = "  << REGRESSION"
					regressions = append(regressions,
						fmt.Sprintf("%s %s: %.4g -> %.4g (%+.1f%%, threshold %+.1f%%)",
							name, m, om, nm, delta*100, *threshold*100))
				}
			}
			fmt.Printf("%-40s %-10s %14.4g %14.4g %+7.1f%%%s\n", name, m, om, nm, delta*100, mark)
		}
	}
	for name := range newS {
		if _, ok := oldS[name]; !ok {
			fmt.Printf("%-40s only in candidate (skipped)\n", name)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no gated metrics compared — wrong files or -match?")
		os.Exit(2)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d regression(s) past the %.0f%% threshold:\n", len(regressions), *threshold*100)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: OK (%d gated comparisons within %.0f%%)\n", compared, *threshold*100)
}
