// Command characterize runs the micro-benchmark characterization pass
// (section V) and dumps the co-run degradation surfaces as CSV, one
// row per (cpu-level, gpu-level) cell.
//
// Usage:
//
//	characterize [-levels n] [-freqs all|max]
package main

import (
	"flag"
	"fmt"
	"os"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/microbench"
	"corun/internal/model"
)

func main() {
	nLevels := flag.Int("levels", 11, "number of micro-kernel bandwidth levels over 0-11 GB/s")
	freqs := flag.String("freqs", "max", "max = only the top-frequency surface; all = the staged grid")
	save := flag.String("save", "", "write the characterization as JSON to this file instead of dumping CSV")
	flag.Parse()

	cfg := apu.DefaultConfig()
	mem := memsys.Default()
	opts := model.CharacterizeOptions{
		Cfg: cfg, Mem: mem,
		Levels: microbench.Levels(*nLevels, 11),
	}
	if *freqs == "max" {
		opts.CPUFreqLevels = []int{cfg.MaxFreqIndex(apu.CPU)}
		opts.GPUFreqLevels = []int{cfg.MaxFreqIndex(apu.GPU)}
	}
	char, err := model.Characterize(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := char.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "characterization written to %s\n", *save)
		return
	}

	fmt.Println("cpu_ghz,gpu_ghz,cpu_bw_gbps,gpu_bw_gbps,deg_cpu,deg_gpu")
	for a, cf := range char.CPULevels {
		for b, gf := range char.GPULevels {
			s := char.SurfaceAt(a, b)
			cg := float64(cfg.Freq(apu.CPU, cf))
			gg := float64(cfg.Freq(apu.GPU, gf))
			for i := range s.CPUBW {
				for j := range s.GPUBW {
					fmt.Printf("%.2f,%.2f,%.3f,%.3f,%.4f,%.4f\n",
						cg, gg, s.CPUBW[i], s.GPUBW[j], s.DegCPU[i][j], s.DegGPU[i][j])
				}
			}
		}
	}
}
