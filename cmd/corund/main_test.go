package main

import (
	"path/filepath"
	"testing"
	"time"
)

func TestBuildConfig(t *testing.T) {
	dir := t.TempDir()
	charPath := filepath.Join(dir, "char.json")

	// Measure once, persisting the characterization.
	cfg, err := buildConfig("ivybridge", "hcs+", 15, 64, 10*time.Millisecond, 1, "", charPath)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Char == nil || cfg.MaxQueue != 64 || float64(cfg.Cap) != 15 {
		t.Fatalf("config %+v", cfg)
	}

	// Reload the saved characterization — the fleet deployment path.
	cfg2, err := buildConfig("ivybridge", "hcs", 16, 32, 0, 2, charPath, "")
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Char == nil {
		t.Fatal("characterization not loaded")
	}

	if _, err := buildConfig("cray", "hcs+", 15, 0, 0, 1, "", ""); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, err := buildConfig("ivybridge", "fifo", 15, 0, 0, 1, "", ""); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := buildConfig("ivybridge", "hcs+", 15, 0, 0, 1, filepath.Join(dir, "missing.json"), ""); err == nil {
		t.Error("missing characterization file accepted")
	}
}
