package main

import (
	"path/filepath"
	"testing"
	"time"

	"corun/internal/journal"
)

func TestBuildConfig(t *testing.T) {
	dir := t.TempDir()
	charPath := filepath.Join(dir, "char.json")

	// Measure once, persisting the characterization.
	cfg, err := buildConfig("ivybridge", "hcs+", 15, 64, 10*time.Millisecond, 1, "", charPath, "", "always", 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Char == nil || cfg.MaxQueue != 64 || float64(cfg.Cap) != 15 {
		t.Fatalf("config %+v", cfg)
	}
	if cfg.DataDir != "" || cfg.Fsync != journal.FsyncAlways {
		t.Fatalf("durability config %q/%q", cfg.DataDir, cfg.Fsync)
	}

	// Reload the saved characterization — the fleet deployment path —
	// with the durable journal enabled.
	dataDir := filepath.Join(dir, "state")
	cfg2, err := buildConfig("ivybridge", "hcs", 16, 32, 0, 2, charPath, "", dataDir, "interval", 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Char == nil {
		t.Fatal("characterization not loaded")
	}
	if cfg2.DataDir != dataDir || cfg2.Fsync != journal.FsyncInterval {
		t.Fatalf("durability config %q/%q", cfg2.DataDir, cfg2.Fsync)
	}

	if _, err := buildConfig("cray", "hcs+", 15, 0, 0, 1, "", "", "", "always", 0); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, err := buildConfig("ivybridge", "fifo", 15, 0, 0, 1, "", "", "", "always", 0); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := buildConfig("ivybridge", "hcs+", 15, 0, 0, 1, filepath.Join(dir, "missing.json"), "", "", "always", 0); err == nil {
		t.Error("missing characterization file accepted")
	}
	if _, err := buildConfig("ivybridge", "hcs+", 15, 0, 0, 1, "", "", "", "everysooften", 0); err == nil {
		t.Error("unknown fsync policy accepted")
	}
	if _, err := buildConfig("ivybridge", "hcs+", 15, 0, 0, 1, "", "", "", "always", -40); err == nil {
		t.Error("trip point below ambient accepted")
	}

	// -tmax overrides the preset's trip point on a private copy.
	cfg3, err := buildConfig("ivybridge", "hcs+", 15, 0, 0, 1, charPath, "", "", "always", 62)
	if err != nil {
		t.Fatal(err)
	}
	if cfg3.Machine.Thermal.TMaxC != 62 {
		t.Fatalf("tmax override not applied: %+v", cfg3.Machine.Thermal)
	}
	if cfg.Machine.Thermal.TMaxC == 62 {
		t.Fatal("tmax override mutated the shared preset")
	}
}
