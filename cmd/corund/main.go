// Command corund is the co-run scheduler daemon: a long-running HTTP
// service that queues jobs at a simulated power-capped APU node and
// co-schedules them in epochs with the paper's HCS+/HCS heuristics.
//
// Usage:
//
//	corund [-addr :8080] [-cap watts] [-cap-pp0 watts] [-cap-pp1 watts]
//	       [-tmax celsius] [-policy name] [-node-id id]
//	       [-machine ivybridge|kaveri] [-max-queue n] [-epoch-gap dur]
//	       [-tenant-queue n] [-tenant-weights tenant=w,...] [-max-batch n]
//	       [-char file] [-save-char file] [-seed n]
//	       [-data-dir dir] [-fsync always|interval|never]
//	       [-journal-retries n] [-retry-base dur] [-retry-max dur]
//	       [-breaker-threshold n] [-breaker-cooldown dur]
//	       [-request-timeout dur] [-fault-spec spec]
//
//	corund -coordinator -nodes n0=http://h0:8081,n1=http://h1:8082,...
//	       [-addr :8080] [-fleet-cap watts] [-node-floor watts]
//	       [-balancer headroom|affinity|leastloaded|roundrobin]
//	       [-health-interval dur] [-rebalance-interval dur]
//	       [-plan-cache dur] [-request-timeout dur]
//
// -node-id gives the daemon a stable fleet identity: job IDs are
// minted as "<node-id>-job-%06d" (so a fleet coordinator can route
// GET /v1/jobs/{id} to the owning shard by prefix), /readyz reports
// the identity, and /metrics exposes it as corund_node_info{node}.
//
// -coordinator switches the binary into fleet-coordinator mode
// (internal/fleet): instead of scheduling jobs itself, it fronts the
// corund daemons listed in -nodes with the same /v1/* API, places
// each submission with the fragmentation-aware balancer, partitions
// -fleet-cap watts across the nodes by demand (rebalanced every
// -rebalance-interval; 0 = leave node caps alone), tracks node
// health by polling /readyz, and reroutes around failed nodes. See
// internal/fleet for the API surface (notably GET /v1/nodes, the
// fleet dashboard).
//
// The epoch policy is any name registered in the policy registry
// (hcs+, hcs, optimal, anneal, genetic, random, default, ...);
// GET /v1/policies lists the live set and POST /v1/policy hot-swaps
// it.
//
// Jobs may carry a tenant and a priority class (low | normal | high);
// the admission layer drains tenants under weighted fair queueing.
// -tenant-weights sets per-tenant WFQ weights (unlisted tenants weigh
// 1; 0 pins a tenant to the starvation floor), -tenant-queue bounds
// each tenant's queued jobs on top of -max-queue (the 429 body names
// whichever bound was hit), and -max-batch bounds how many jobs one
// epoch claims — which is what lets a high-priority arrival preempt
// the lowest-priority claimed job at the epoch boundary.
//
// The micro-benchmark characterization (the offline stage of the
// paper) runs at startup unless -char points at a file saved earlier
// with -save-char, the deployment shape where one characterization is
// shared across a fleet.
//
// With -data-dir the daemon is durable: every acknowledged state
// change is journaled (write-ahead log + snapshots, see
// internal/journal), and restarting against the same directory
// restores the power cap, active policy, and job table, re-enqueuing
// every non-terminal job. -fsync tunes the durability/latency
// trade-off: always (default) fsyncs each acknowledged change,
// interval fsyncs on a 100ms timer, never leaves flushing to the OS.
// Without -data-dir the daemon keeps its original in-memory
// behaviour.
//
// Journal writes that fail transiently are retried with jittered
// exponential backoff (-journal-retries attempts past the first,
// spaced -retry-base doubling up to -retry-max). Writes that keep
// failing trip a circuit breaker (-breaker-threshold consecutive
// failures) into a documented degraded mode: journaling is suspended,
// /readyz reports "degraded", and submissions and cap/policy changes
// are shed with 503 + Retry-After until a probe write succeeds after
// -breaker-cooldown. Acknowledged jobs are never lost — the daemon
// refuses work it cannot make durable rather than acking it.
// -request-timeout puts a per-request deadline on every API endpoint.
//
// -fault-spec arms the deterministic failpoint registry
// (internal/fault) for resilience testing, e.g.
//
//	corund -data-dir /tmp/d -fault-spec 'journal/fsync=error(every=3,times=10)'
//
// Sites: journal/append, journal/fsync, journal/snapshot,
// server/admit, server/epoch, policy/plan. Kinds: error(msg,...),
// latency(dur,...), panic(...); schedule args every=N, after=N,
// times=K, p=F, seed=S. Per-site hit and injection counts are
// exported as corund_fault_hits_total / corund_fault_injections_total.
//
// Endpoints: POST /v1/jobs, GET /v1/jobs[/{id}], GET /v1/plan,
// GET|POST /v1/cap, GET /v1/policies, POST /v1/policy, GET /v1/trace,
// GET /healthz (liveness), GET /readyz (readiness), GET /metrics
// (Prometheus text format).
//
// SIGINT/SIGTERM drain gracefully: admission stops (/readyz turns
// 503), the in-flight epoch completes, the queue is flushed, the
// journal is fsynced, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"corun/internal/admission"
	"corun/internal/apu"
	"corun/internal/cluster"
	"corun/internal/fault"
	"corun/internal/fleet"
	"corun/internal/journal"
	"corun/internal/memsys"
	"corun/internal/model"
	"corun/internal/online"
	"corun/internal/policy"
	"corun/internal/server"
	"corun/internal/units"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	capW := flag.Float64("cap", 15, "package power cap in watts (0 = uncapped)")
	capPP0 := flag.Float64("cap-pp0", 0, "PP0 (CPU core) plane power cap in watts (0 = plane uncapped)")
	capPP1 := flag.Float64("cap-pp1", 0, "PP1 (iGPU) plane power cap in watts (0 = plane uncapped)")
	tmax := flag.Float64("tmax", 0, "thermal trip point in Celsius overriding the machine preset (0 = keep the preset)")
	nodeID := flag.String("node-id", "", "stable fleet node identity (prefixes minted job IDs; empty = standalone)")
	coordinator := flag.Bool("coordinator", false, "run as a fleet coordinator over the daemons in -nodes instead of scheduling locally")
	nodesFlag := flag.String("nodes", "", "coordinator mode: comma list of member daemons, id=url,...")
	fleetCap := flag.Float64("fleet-cap", 0, "coordinator mode: fleet-wide power budget partitioned across nodes (0 = leave node caps alone)")
	nodeFloor := flag.Float64("node-floor", 5, "coordinator mode: minimum power share per healthy node in watts")
	balancerFlag := flag.String("balancer", "headroom", "coordinator mode: placement policy: roundrobin | leastloaded | affinity | headroom")
	healthInterval := flag.Duration("health-interval", 500*time.Millisecond, "coordinator mode: node /readyz poll period")
	rebalanceInterval := flag.Duration("rebalance-interval", 2*time.Second, "coordinator mode: power budget repartition period")
	planCache := flag.Duration("plan-cache", 100*time.Millisecond, "coordinator mode: aggregated /v1/plan cache TTL")
	policyFlag := flag.String("policy", "hcs+", "epoch scheduling policy: "+strings.Join(policy.Names(), " | "))
	machine := flag.String("machine", "ivybridge", "machine preset: ivybridge | kaveri")
	maxQueue := flag.Int("max-queue", 256, "admission control: max queued jobs before 429")
	tenantQueue := flag.Int("tenant-queue", 0, "admission control: per-tenant queue bound (0 = none)")
	tenantWeights := flag.String("tenant-weights", "", "weighted fair queueing weights, tenant=w,... (unlisted tenants weigh 1)")
	maxBatch := flag.Int("max-batch", 0, "jobs claimed per epoch (0 = unbounded; a bound enables priority preemption)")
	epochGap := flag.Duration("epoch-gap", 50*time.Millisecond, "batching window before each scheduling epoch")
	charFile := flag.String("char", "", "load the characterization from this file instead of measuring")
	saveChar := flag.String("save-char", "", "save the measured characterization to this file")
	seed := flag.Int64("seed", 1, "seed for refinement sampling and the random policy")
	dataDir := flag.String("data-dir", "", "durable state journal directory (empty = in-memory only)")
	fsync := flag.String("fsync", "always", "journal fsync policy: always | interval | never")
	jlBatch := flag.Int("journal-batch", 256, "max records the journal writer coalesces into one commit/fsync")
	jlGather := flag.Duration("journal-gather", time.Millisecond, "group-commit window: how long the writer holds a batch open for in-flight submitters (negative = disabled)")
	jlRetries := flag.Int("journal-retries", 3, "retries after a transient journal write failure (negative = no retries)")
	retryBase := flag.Duration("retry-base", 5*time.Millisecond, "initial journal retry backoff (doubles per attempt, jittered)")
	retryMax := flag.Duration("retry-max", 250*time.Millisecond, "journal retry backoff ceiling")
	brkThreshold := flag.Int("breaker-threshold", 5, "consecutive journal failures that trip the breaker into degraded mode (negative = disabled)")
	brkCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "wait before the open breaker allows a probe write")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request deadline on the HTTP API (0 = none)")
	faultSpec := flag.String("fault-spec", "", "arm deterministic failpoints, e.g. 'journal/fsync=error(every=3,times=5);policy/plan=latency(50ms,p=0.5,seed=7)'")
	flag.Parse()

	if *coordinator {
		runCoordinator(*addr, *nodesFlag, *fleetCap, *nodeFloor, *balancerFlag,
			*machine, *healthInterval, *rebalanceInterval, *planCache, *reqTimeout)
		return
	}

	cfg, err := buildConfig(*machine, *policyFlag, *capW, *maxQueue, *epochGap, *seed, *charFile, *saveChar, *dataDir, *fsync, *tmax)
	if err != nil {
		log.Fatalf("corund: %v", err)
	}
	cfg.Domains = apu.DomainCaps{PP0: units.Watts(*capPP0), PP1: units.Watts(*capPP1)}
	weights, err := admission.ParseWeights(*tenantWeights)
	if err != nil {
		log.Fatalf("corund: -tenant-weights: %v", err)
	}
	cfg.TenantWeights = weights
	cfg.TenantQueue = *tenantQueue
	cfg.MaxBatch = *maxBatch
	cfg.JournalBatch = *jlBatch
	cfg.JournalGather = *jlGather
	cfg.JournalRetries = *jlRetries
	cfg.RetryBase = *retryBase
	cfg.RetryMax = *retryMax
	cfg.BreakerThreshold = *brkThreshold
	cfg.BreakerCooldown = *brkCooldown
	cfg.RequestTimeout = *reqTimeout
	cfg.NodeID = *nodeID
	if *faultSpec != "" {
		if err := fault.Default.ArmSpec(*faultSpec); err != nil {
			log.Fatalf("corund: -fault-spec: %v", err)
		}
		log.Printf("corund: failpoints armed: %s", *faultSpec)
	}
	s, err := server.New(*cfg)
	if err != nil {
		log.Fatalf("corund: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	durability := "in-memory"
	if cfg.DataDir != "" {
		// The server may have recovered a different cap/policy than
		// the flags; report what it actually runs with.
		durability = fmt.Sprintf("journal %s, fsync %s", cfg.DataDir, cfg.Fsync)
	}
	identity := ""
	if cfg.NodeID != "" {
		identity = fmt.Sprintf("node %s, ", cfg.NodeID)
	}
	log.Printf("corund: serving on %s (%spolicy %s, cap %gW, queue bound %d, %s)",
		*addr, identity, s.Policy(), float64(s.Cap()), cfg.MaxQueue, durability)
	if err := s.ListenAndServe(ctx, *addr); err != nil {
		log.Fatalf("corund: %v", err)
	}
	log.Printf("corund: drained cleanly")
}

// runCoordinator is -coordinator mode: the binary becomes the fleet
// front door (internal/fleet) instead of a scheduling node. No
// characterization runs — placement hints come straight from the
// analytic kernel model.
func runCoordinator(addr, nodesSpec string, fleetCap, nodeFloor float64, balancer, machine string,
	healthInterval, rebalanceInterval, planCache, reqTimeout time.Duration) {
	nodes, err := fleet.ParseNodes(nodesSpec)
	if err != nil {
		log.Fatalf("corund: -nodes: %v", err)
	}
	bal, err := cluster.ParseBalancer(balancer)
	if err != nil {
		log.Fatalf("corund: -balancer: %v", err)
	}
	var mcfg *apu.Config
	switch strings.ToLower(machine) {
	case "ivybridge", "":
		mcfg = apu.DefaultConfig()
	case "kaveri":
		mcfg = apu.KaveriConfig()
	default:
		log.Fatalf("corund: unknown machine %q", machine)
	}
	co, err := fleet.New(fleet.Config{
		Nodes:             nodes,
		BudgetW:           fleetCap,
		FloorW:            nodeFloor,
		Balancer:          bal,
		Machine:           mcfg,
		HealthInterval:    healthInterval,
		RebalanceInterval: rebalanceInterval,
		PlanCacheTTL:      planCache,
		RequestTimeout:    reqTimeout,
	})
	if err != nil {
		log.Fatalf("corund: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	budget := "node caps unmanaged"
	if fleetCap > 0 {
		budget = fmt.Sprintf("budget %gW, floor %gW", fleetCap, nodeFloor)
	}
	log.Printf("corund: coordinating %d nodes on %s (balancer %s, %s)",
		len(nodes), addr, bal, budget)
	if err := co.ListenAndServe(ctx, addr); err != nil {
		log.Fatalf("corund: %v", err)
	}
	log.Printf("corund: coordinator stopped")
}

// buildConfig assembles the server configuration: machine preset,
// policy, the characterization (measured, or loaded from a file),
// and the durability options.
func buildConfig(machine, policy string, capW float64, maxQueue int, epochGap time.Duration, seed int64, charFile, saveChar, dataDir, fsync string, tmaxC float64) (*server.Config, error) {
	var mcfg *apu.Config
	switch strings.ToLower(machine) {
	case "ivybridge", "":
		mcfg = apu.DefaultConfig()
	case "kaveri":
		mcfg = apu.KaveriConfig()
	default:
		return nil, fmt.Errorf("unknown machine %q", machine)
	}
	if tmaxC != 0 {
		// Copy before mutating: the presets are shared package globals.
		tp := mcfg.Thermal
		tp.TMaxC = tmaxC
		if err := tp.Validate(); err != nil {
			return nil, fmt.Errorf("-tmax: %w", err)
		}
		mcfg = mcfg.WithThermal(tp)
	}
	pol, err := online.ParsePolicy(policy)
	if err != nil {
		return nil, err
	}
	fsyncPol, err := journal.ParseFsyncPolicy(fsync)
	if err != nil {
		return nil, err
	}
	mem := memsys.Default()

	char, err := loadOrMeasureChar(charFile, saveChar, mcfg, mem)
	if err != nil {
		return nil, err
	}
	return &server.Config{
		Machine:  mcfg,
		Mem:      mem,
		Char:     char,
		Cap:      units.Watts(capW),
		Policy:   pol,
		Seed:     seed,
		MaxQueue: maxQueue,
		EpochGap: epochGap,
		DataDir:  dataDir,
		Fsync:    fsyncPol,
	}, nil
}

func loadOrMeasureChar(charFile, saveChar string, mcfg *apu.Config, mem *memsys.Model) (*model.Characterization, error) {
	if charFile != "" {
		f, err := os.Open(charFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		char, err := model.LoadCharacterization(f, mcfg)
		if err != nil {
			return nil, fmt.Errorf("loading characterization: %w", err)
		}
		log.Printf("corund: loaded characterization from %s", charFile)
		return char, nil
	}
	start := time.Now()
	char, err := model.Characterize(model.CharacterizeOptions{Cfg: mcfg, Mem: mem})
	if err != nil {
		return nil, err
	}
	log.Printf("corund: characterized the degradation space in %v", time.Since(start).Round(time.Millisecond))
	if saveChar != "" {
		f, err := os.Create(saveChar)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := char.Save(f); err != nil {
			return nil, fmt.Errorf("saving characterization: %w", err)
		}
		log.Printf("corund: saved characterization to %s", saveChar)
	}
	return char, nil
}
