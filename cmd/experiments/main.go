// Command experiments regenerates every table and figure of the
// paper's evaluation (section VI) on the simulated platform, plus the
// extension studies (energy, kernel splitting, robustness).
//
// Usage:
//
//	experiments [-json|-md] [-csv] [fig2|example3|fig5|fig6|fig7|fig8|
//	             fig9|table1|fig10|fig11|overhead|ablations|energy|split|
//	             robustness|fairness|sensitivity|scalability|capenforce|
//	             cluster|fig7cal|online|policies|all]
//
// With no argument (or "all") it runs the whole evaluation in paper
// order. -json emits machine-readable results (one JSON object per
// experiment); fig9 additionally accepts -csv to dump the raw power
// traces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"corun/internal/exp"
)

type experiment struct {
	name string
	// run produces the result value (for -json) and a text renderer.
	run func(suite *exp.Suite) (any, func(io.Writer) error, error)
}

func experimentTable(csv bool) []experiment {
	return []experiment{
		{"fig2", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Figure2()
			return r, writerOf(r, err), err
		}},
		{"example3", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Example3()
			return r, writerOf(r, err), err
		}},
		{"fig5", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Figures5And6()
			return r, writerOf(r, err), err
		}},
		{"fig6", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Figures5And6()
			return r, writerOf(r, err), err
		}},
		{"fig7", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Figure7()
			if err != nil {
				return nil, nil, err
			}
			return r, func(w io.Writer) error {
				if err := r.WriteText(w); err != nil {
					return err
				}
				fmt.Fprintln(w, "worst-predicted pairs (high setting):")
				return r.High.WriteWorst(w, 5)
			}, nil
		}},
		{"fig8", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Figure8()
			return r, writerOf(r, err), err
		}},
		{"fig9", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Figure9()
			if err != nil {
				return nil, nil, err
			}
			if csv {
				return r, r.WriteCSV, nil
			}
			return r, r.WriteText, nil
		}},
		{"table1", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.TableI()
			return r, writerOf(r, err), err
		}},
		{"fig10", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Figure10()
			return r, writerOf(r, err), err
		}},
		{"fig11", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Figure11()
			return r, writerOf(r, err), err
		}},
		{"overhead", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Overhead()
			return r, writerOf(r, err), err
		}},
		{"ablations", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Ablations()
			return r, writerOf(r, err), err
		}},
		{"energy", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Energy()
			return r, writerOf(r, err), err
		}},
		{"split", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Split()
			return r, writerOf(r, err), err
		}},
		{"robustness", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Robustness(10, 5)
			return r, writerOf(r, err), err
		}},
		{"fairness", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Fairness()
			return r, writerOf(r, err), err
		}},
		{"sensitivity", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Sensitivity()
			return r, writerOf(r, err), err
		}},
		{"scalability", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Scalability(nil, 5)
			return r, writerOf(r, err), err
		}},
		{"capenforce", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.CapEnforcement()
			return r, writerOf(r, err), err
		}},
		{"cluster", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Cluster()
			return r, writerOf(r, err), err
		}},
		{"fig7cal", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Figure7Calibrated()
			return r, writerOf(r, err), err
		}},
		{"online", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.Online()
			return r, writerOf(r, err), err
		}},
		{"policies", func(s *exp.Suite) (any, func(io.Writer) error, error) {
			r, err := s.PolicySweep()
			return r, writerOf(r, err), err
		}},
	}
}

// textWriter is any experiment result with a text renderer.
type textWriter interface{ WriteText(io.Writer) error }

func writerOf(r textWriter, err error) func(io.Writer) error {
	if err != nil {
		return nil
	}
	return r.WriteText
}

func main() {
	csv := flag.Bool("csv", false, "for fig9: dump raw power-trace CSV instead of the summary")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	md := flag.Bool("md", false, "emit a self-contained Markdown report")
	flag.Usage = usage
	flag.Parse()

	what := "all"
	if flag.NArg() > 0 {
		what = strings.ToLower(flag.Arg(0))
	}

	suite, err := exp.NewSuite()
	if err != nil {
		fatal(err)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	if *md {
		fmt.Println("# Evaluation report")
		fmt.Println()
		fmt.Println("Generated by `experiments -md`; see EXPERIMENTS.md for the")
		fmt.Println("paper-vs-measured analysis of each artifact.")
	}

	ran := false
	seen := map[string]bool{}
	for _, e := range experimentTable(*csv) {
		if what != "all" && what != e.name {
			continue
		}
		if seen[e.name] {
			continue
		}
		seen[e.name] = true
		ran = true
		result, text, err := e.run(suite)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			if err := enc.Encode(map[string]any{"experiment": e.name, "result": result}); err != nil {
				fatal(err)
			}
			continue
		}
		if *md {
			fmt.Printf("\n## %s\n\n```\n", e.name)
			if err := text(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println("```")
			continue
		}
		fmt.Printf("== %s ==\n", e.name)
		if err := text(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if !ran {
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments [-json|-md] [-csv] [fig2|example3|fig5|fig6|fig7|fig8|fig9|table1|fig10|fig11|overhead|ablations|energy|split|robustness|fairness|sensitivity|scalability|capenforce|cluster|fig7cal|online|policies|all]")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
