// Command corunbench is the load-test harness for the corund daemon.
// It drives a corund instance end-to-end over HTTP — open-loop (fixed
// arrival rate) or closed-loop (fixed concurrency) — with a
// configurable job mix drawn from the calibrated benchmark programs,
// a discarded warmup window, and per-endpoint latency histograms, and
// emits a machine-readable JSON report (the repo's BENCH_7.json bench
// trajectory).
//
// Usage:
//
//	corunbench [-url http://host:8080] [-mode open|closed]
//	           [-rate rps] [-concurrency n]
//	           [-duration dur] [-warmup dur] [-ready-timeout dur]
//	           [-mix all|prog[=w],...] [-tenants name[=share][:prio],...]
//	           [-read-fraction f] [-seed n]
//	           [-fleet n] [-fleet-cap watts] [-balancer name] [-baseline]
//	           [-microbench] [-notes file] [-out file]
//	           [-policy name] [-cap watts] [-cap-pp0 watts] [-cap-pp1 watts]
//	           [-tmax celsius] [-max-queue n]
//	           [-tenant-queue n] [-tenant-weights name=w,...] [-max-batch n]
//	           [-epoch-gap dur] [-fsync pol] [-data-dir dir] [-in-memory]
//
// With -url it targets a running daemon. Without it, corunbench
// launches an in-process corund on a loopback port — journaling to a
// temporary data dir (so journal fsync counts are part of the report)
// unless -in-memory is set — drives it, and drains it cleanly; the
// flags after -policy configure that instance. Before offering load
// the harness polls the target's /readyz until it answers 200 (up to
// -ready-timeout) instead of sleeping a fixed interval.
//
// -fleet N self-hosts a whole fleet instead: N corund nodes (IDs n0,
// n1, ..., one shared characterization, per-node temp journals) behind
// an in-process fleet coordinator (internal/fleet), and drives the
// coordinator's URL. -fleet-cap is the fleet-wide power budget
// (default N × -cap) and -balancer the placement policy. The report
// moves to the fleet bench trajectory (BENCH_8.json): it gains a
// "fleet" section with each node's routed counts, CPU/GPU placement
// mix, and power share, read from the coordinator's GET /v1/nodes.
// -baseline additionally runs the same workload against a fresh
// single node at the per-node share of the offered load (concurrency
// or rate divided by N) and embeds that run, so the report carries
// its own like-for-like speedup evidence.
//
// -tenants offers a multi-tenant submission mix: each term is a
// tenant name, its share of submissions, and the priority class its
// jobs carry (e.g. "team-a=3:high,team-b=1,batch=1:low"); the report
// then adds per-tenant accept/reject counts and ack-latency
// quantiles. -tenant-weights, -tenant-queue, and -max-batch configure
// the self-hosted instance's admission layer (WFQ weights, per-tenant
// queue bound, and the bounded batch that enables priority
// preemption).
//
// -microbench pairs the HTTP run with in-process testing.Benchmark
// runs of the journal append hot path (ns/op, B/op, allocs/op).
// -notes merges a committed optimization-evidence JSON file into the
// report, preserving before/after numbers measured against code that
// no longer exists. `make loadtest` wires the standard invocation.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"corun/internal/admission"
	"corun/internal/apu"
	"corun/internal/cluster"
	"corun/internal/fleet"
	"corun/internal/journal"
	"corun/internal/loadgen"
	"corun/internal/memsys"
	"corun/internal/model"
	"corun/internal/online"
	"corun/internal/policy"
	"corun/internal/server"
	"corun/internal/units"
)

func main() {
	log.SetPrefix("corunbench: ")
	log.SetFlags(0)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("corunbench", flag.ContinueOnError)
	url := fs.String("url", "", "target corund base URL (empty = launch an in-process instance)")
	mode := fs.String("mode", "closed", "load mode: open (fixed arrival rate) | closed (fixed concurrency)")
	rate := fs.Float64("rate", 100, "open-loop arrival rate in requests/second")
	conc := fs.Int("concurrency", 4, "closed-loop client count")
	duration := fs.Duration("duration", 10*time.Second, "measurement window")
	warmup := fs.Duration("warmup", 2*time.Second, "discarded warmup window")
	mixFlag := fs.String("mix", "all", "job mix: all, or prog[=weight],... from the calibrated benchmarks")
	tenantsFlag := fs.String("tenants", "", "tenant mix: name[=share][:priority],... (empty = no tenant fields)")
	readFrac := fs.Float64("read-fraction", 0.5, "fraction of operations that are reads (plan/status)")
	seed := fs.Int64("seed", 1, "seed for program choice, scales, and interleaving")
	micro := fs.Bool("microbench", false, "pair the run with in-process journal micro-benchmarks")
	notes := fs.String("notes", "", "merge this optimization-evidence JSON file into the report")
	out := fs.String("out", "", "write the JSON report here (empty = stdout)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the whole run (clients + self-hosted daemon) here")
	readyTimeout := fs.Duration("ready-timeout", 30*time.Second, "poll the target's /readyz this long before offering load")

	fleetN := fs.Int("fleet", 0, "self-host a fleet: this many corund nodes behind an in-process coordinator (0 = single instance)")
	fleetCap := fs.Float64("fleet-cap", 0, "fleet-wide power budget in watts (0 = N x -cap)")
	balancerFlag := fs.String("balancer", "headroom", "fleet placement policy: roundrobin | leastloaded | affinity | headroom")
	baseline := fs.Bool("baseline", false, "fleet mode: also run a single node at the per-node load share and embed it as the speedup baseline")

	policyFlag := fs.String("policy", "hcs+", "self-hosted instance: epoch policy ("+strings.Join(policy.Names(), " | ")+")")
	capW := fs.Float64("cap", 15, "self-hosted instance: package power cap in watts")
	capPP0 := fs.Float64("cap-pp0", 0, "self-hosted instance: PP0 (CPU core) plane cap in watts (0 = plane uncapped)")
	capPP1 := fs.Float64("cap-pp1", 0, "self-hosted instance: PP1 (iGPU) plane cap in watts (0 = plane uncapped)")
	tmax := fs.Float64("tmax", 0, "self-hosted instance: thermal trip point in Celsius (0 = machine preset)")
	maxQueue := fs.Int("max-queue", 4096, "self-hosted instance: global admission queue bound")
	tenantQueue := fs.Int("tenant-queue", 0, "self-hosted instance: per-tenant queue bound (0 = none)")
	tenantWeights := fs.String("tenant-weights", "", "self-hosted instance: WFQ weights, name=w,... (unlisted tenants weigh 1)")
	maxBatch := fs.Int("max-batch", 0, "self-hosted instance: jobs claimed per epoch (0 = unbounded, disables preemption)")
	epochGap := fs.Duration("epoch-gap", 5*time.Millisecond, "self-hosted instance: epoch batching window")
	fsyncFlag := fs.String("fsync", "always", "self-hosted instance: journal fsync policy")
	dataDir := fs.String("data-dir", "", "self-hosted instance: journal dir (empty = fresh temp dir)")
	inMemory := fs.Bool("in-memory", false, "self-hosted instance: disable journaling entirely")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		return err
	}
	tenants, err := loadgen.ParseTenants(*tenantsFlag)
	if err != nil {
		return err
	}
	weights, err := admission.ParseWeights(*tenantWeights)
	if err != nil {
		return err
	}

	if *fleetN < 0 {
		return fmt.Errorf("negative -fleet %d", *fleetN)
	}
	if *fleetN > 0 && *url != "" {
		return fmt.Errorf("-fleet self-hosts its own nodes; it cannot be combined with -url")
	}

	hc := hostConfig{
		policy:        *policyFlag,
		capW:          *capW,
		capPP0:        *capPP0,
		capPP1:        *capPP1,
		tmaxC:         *tmax,
		maxQueue:      *maxQueue,
		tenantQueue:   *tenantQueue,
		tenantWeights: weights,
		maxBatch:      *maxBatch,
		epochGap:      *epochGap,
		fsync:         *fsyncFlag,
		dataDir:       *dataDir,
		inMemory:      *inMemory,
		seed:          *seed,
	}
	if *url == "" {
		// Characterize once, shared across every self-hosted node in
		// this process (fleet members and the baseline instance) — the
		// fleet deployment shape from the daemon's -char flag.
		hc.mcfg = apu.DefaultConfig()
		if hc.tmaxC != 0 {
			tp := hc.mcfg.Thermal
			tp.TMaxC = hc.tmaxC
			if err := tp.Validate(); err != nil {
				return fmt.Errorf("-tmax: %w", err)
			}
			hc.mcfg = hc.mcfg.WithThermal(tp)
		}
		hc.mem = memsys.Default()
		start := time.Now()
		char, err := model.Characterize(model.CharacterizeOptions{Cfg: hc.mcfg, Mem: hc.mem})
		if err != nil {
			return err
		}
		hc.char = char
		log.Printf("characterized the degradation space in %v", time.Since(start).Round(time.Millisecond))
	}

	budgetW := *fleetCap
	if budgetW == 0 {
		budgetW = float64(*fleetN) * *capW
	}
	baseURL := *url
	if baseURL == "" {
		var shutdown func()
		var addr string
		var err error
		if *fleetN > 0 {
			shutdown, addr, err = selfHostFleet(hc, *fleetN, budgetW, *balancerFlag)
		} else {
			shutdown, addr, err = selfHost(hc)
		}
		if err != nil {
			return err
		}
		defer shutdown()
		baseURL = addr
	}

	cfg := loadgen.Config{
		BaseURL:      baseURL,
		Mode:         loadgen.Mode(*mode),
		Rate:         *rate,
		Concurrency:  *conc,
		Warmup:       *warmup,
		Duration:     *duration,
		Mix:          mix,
		Tenants:      tenants,
		ReadFraction: *readFrac,
		Seed:         *seed,
		ReadyTimeout: *readyTimeout,
	}
	log.Printf("driving %s: mode=%s duration=%v warmup=%v", baseURL, *mode, *duration, *warmup)
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return err
	}
	if *url == "" {
		// Self-hosted run: disclose the serving conditions in the report.
		rep.Config.Policy = hc.policy
		rep.Config.HostCPUs = runtime.NumCPU()
		rep.Config.GOGC = os.Getenv("GOGC")
	}
	if *fleetN > 0 {
		snap, err := loadgen.FleetSnapshot(ctx, nil, baseURL)
		if err != nil {
			return err
		}
		snap.BudgetWatts = budgetW
		snap.HostCPUs = runtime.NumCPU()
		var baseRep *loadgen.Report
		if *baseline {
			baseRep, err = runBaseline(ctx, hc, cfg, *fleetN)
			if err != nil {
				return err
			}
		}
		rep.AttachFleet(snap, baseRep)
		log.Printf("fleet: %d nodes, max one-sided fraction %.2f", snap.Nodes, snap.MaxOneSidedFraction)
		if snap.SpeedupVsBaseline > 0 {
			log.Printf("fleet: %.2fx the single-node baseline throughput", snap.SpeedupVsBaseline)
		}
	}
	if *micro {
		log.Printf("running paired micro-benchmarks")
		mb, err := loadgen.Microbench()
		if err != nil {
			return err
		}
		rep.Microbench = mb
	}
	if *notes != "" {
		if err := rep.MergeNotes(*notes); err != nil {
			return err
		}
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rep.Write(w); err != nil {
		return err
	}
	log.Printf("throughput %.1f req/s (%.1f accepted submits/s), %d accepted / %d rejected / %d errors",
		rep.ThroughputRPS, rep.SubmitThroughputRPS, rep.Accepted, rep.Rejected, rep.Errors)
	return nil
}

// hostConfig configures the self-hosted corund instances corunbench
// launches when no -url is given. mcfg/mem/char are measured once in
// run() and shared by every instance in the process.
type hostConfig struct {
	policy        string
	capW          float64
	capPP0        float64
	capPP1        float64
	tmaxC         float64
	maxQueue      int
	tenantQueue   int
	tenantWeights map[string]float64
	maxBatch      int
	epochGap      time.Duration
	fsync         string
	dataDir       string
	inMemory      bool
	seed          int64
	nodeID        string

	mcfg *apu.Config
	mem  *memsys.Model
	char *model.Characterization
}

// selfHost launches an in-process corund on a loopback port and
// returns its base URL plus a clean-drain shutdown.
func selfHost(hc hostConfig) (func(), string, error) {
	pol, err := online.ParsePolicy(hc.policy)
	if err != nil {
		return nil, "", err
	}
	fsyncPol, err := journal.ParseFsyncPolicy(hc.fsync)
	if err != nil {
		return nil, "", err
	}
	dataDir := hc.dataDir
	var cleanupDir func()
	switch {
	case hc.inMemory:
		dataDir = ""
	case dataDir == "":
		tmp, err := os.MkdirTemp("", "corunbench-data-*")
		if err != nil {
			return nil, "", err
		}
		dataDir = tmp
		cleanupDir = func() { os.RemoveAll(tmp) }
	}

	s, err := server.New(server.Config{
		Machine:       hc.mcfg,
		Mem:           hc.mem,
		Char:          hc.char,
		Cap:           units.Watts(hc.capW),
		Domains:       apu.DomainCaps{PP0: units.Watts(hc.capPP0), PP1: units.Watts(hc.capPP1)},
		Policy:        pol,
		Seed:          hc.seed,
		MaxQueue:      hc.maxQueue,
		TenantQueue:   hc.tenantQueue,
		TenantWeights: hc.tenantWeights,
		MaxBatch:      hc.maxBatch,
		EpochGap:      hc.epochGap,
		DataDir:       dataDir,
		Fsync:         fsyncPol,
		NodeID:        hc.nodeID,
	})
	if err != nil {
		if cleanupDir != nil {
			cleanupDir()
		}
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		if cleanupDir != nil {
			cleanupDir()
		}
		s.Close()
		return nil, "", err
	}
	s.Start(context.Background())
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	durability := "in-memory"
	if dataDir != "" {
		durability = fmt.Sprintf("journal %s, fsync %s", dataDir, fsyncPol)
	}
	identity := ""
	if hc.nodeID != "" {
		identity = fmt.Sprintf("node %s, ", hc.nodeID)
	}
	log.Printf("self-hosted corund on %s (%spolicy %s, cap %gW, %s)", ln.Addr(), identity, pol, hc.capW, durability)

	shutdown := func() {
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.DrainAndWait(drainCtx); err != nil {
			log.Printf("drain: %v", err)
		}
		if err := s.Close(); err != nil {
			log.Printf("close: %v", err)
		}
		shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		srv.Shutdown(shutCtx)
		if cleanupDir != nil {
			cleanupDir()
		}
	}
	return shutdown, "http://" + ln.Addr().String(), nil
}

// selfHostFleet launches n corund nodes (IDs n0..n<n-1>, distinct
// seeds and journals, the shared characterization) plus an in-process
// fleet coordinator fronting them, and returns the coordinator's base
// URL. Shutdown drains the nodes through the coordinator's own
// lifecycle: coordinator first (no new placements), then each node.
func selfHostFleet(hc hostConfig, n int, budgetW float64, balancer string) (func(), string, error) {
	bal, err := cluster.ParseBalancer(balancer)
	if err != nil {
		return nil, "", err
	}
	var shutdowns []func()
	shutdownAll := func() {
		for i := len(shutdowns) - 1; i >= 0; i-- {
			shutdowns[i]()
		}
	}
	nodes := make([]fleet.NodeConfig, n)
	for i := 0; i < n; i++ {
		nhc := hc
		nhc.nodeID = fmt.Sprintf("n%d", i)
		nhc.seed = hc.seed + int64(i)
		nhc.dataDir = "" // never share one -data-dir across nodes
		stop, addr, err := selfHost(nhc)
		if err != nil {
			shutdownAll()
			return nil, "", err
		}
		shutdowns = append(shutdowns, stop)
		nodes[i] = fleet.NodeConfig{ID: nhc.nodeID, URL: addr}
	}
	co, err := fleet.New(fleet.Config{
		Nodes:             nodes,
		BudgetW:           budgetW,
		Balancer:          bal,
		Machine:           hc.mcfg,
		Mem:               hc.mem,
		HealthInterval:    100 * time.Millisecond,
		RebalanceInterval: 500 * time.Millisecond,
		PlanCacheTTL:      50 * time.Millisecond,
	})
	if err != nil {
		shutdownAll()
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		shutdownAll()
		return nil, "", err
	}
	co.Start(context.Background())
	srv := &http.Server{Handler: co.Handler()}
	go srv.Serve(ln)
	log.Printf("self-hosted fleet coordinator on %s (%d nodes, balancer %s, budget %gW)",
		ln.Addr(), n, bal, budgetW)
	shutdowns = append(shutdowns, func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
		co.Stop()
	})
	return shutdownAll, "http://" + ln.Addr().String(), nil
}

// runBaseline measures a fresh single node under the per-node share
// of the fleet's offered load (concurrency or rate divided by the
// node count) — the weak-scaling baseline the fleet speedup is
// reported against.
func runBaseline(ctx context.Context, hc hostConfig, cfg loadgen.Config, n int) (*loadgen.Report, error) {
	shutdown, addr, err := selfHost(hc)
	if err != nil {
		return nil, err
	}
	defer shutdown()
	cfg.BaseURL = addr
	if cfg.Mode == loadgen.ModeClosed {
		cfg.Concurrency = cfg.Concurrency / n
		if cfg.Concurrency < 1 {
			cfg.Concurrency = 1
		}
	} else {
		cfg.Rate = cfg.Rate / float64(n)
	}
	log.Printf("baseline: driving single node %s at the per-node load share", addr)
	return loadgen.Run(ctx, cfg)
}
