// Package corun is a co-run scheduler for integrated CPU-GPU systems
// with power caps, reproducing Zhu et al., "Co-Run Scheduling with
// Power Cap on Integrated CPU-GPU Systems" (IPDPS 2017).
//
// The package ties together the full pipeline of the paper:
//
//  1. a simulated integrated processor (an Ivy Bridge-like APU with
//     DVFS, a shared memory system, and package power accounting) that
//     substitutes for the paper's physical testbed;
//  2. offline standalone profiling of a job batch;
//  3. micro-benchmark characterization of the co-run degradation space
//     and a staged-interpolation predictive model (section V);
//  4. the HCS/HCS+ co-scheduling heuristics, the optimal-makespan
//     lower bound, and the Random/Default baselines (sections IV, VI).
//
// # Quick start
//
//	sys, _ := corun.NewSystem(corun.WithPowerCap(15))
//	w, _ := sys.Prepare(corun.Batch8())
//	plan, _ := w.ScheduleHCSPlus()
//	report, _ := w.Run(plan)
//	fmt.Println(report.Makespan)
//
// See the examples directory for complete programs.
package corun

import (
	"fmt"
	"io"

	"corun/internal/apu"
	"corun/internal/cluster"
	"corun/internal/core"
	"corun/internal/gantt"
	"corun/internal/kernelsim"
	"corun/internal/memsys"
	"corun/internal/model"
	"corun/internal/online"
	"corun/internal/policy"
	"corun/internal/profile"
	"corun/internal/sim"
	"corun/internal/trace"
	"corun/internal/units"
	"corun/internal/workload"
)

// Re-exported quantity and domain types; see the internal packages for
// their full documentation.
type (
	// Seconds is a duration in simulated seconds.
	Seconds = units.Seconds
	// Watts is electrical power.
	Watts = units.Watts
	// GBps is memory bandwidth.
	GBps = units.GBps
	// Device identifies the CPU or GPU side of the die.
	Device = apu.Device
	// Machine describes the simulated processor.
	Machine = apu.Config
	// Instance is one schedulable job.
	Instance = workload.Instance
	// Schedule is a planned co-schedule.
	Schedule = core.Schedule
	// Bias selects a reactive governor's sacrificial device.
	Bias = sim.Bias
	// DomainCaps are RAPL-style per-plane power caps (PP0 = CPU cores,
	// PP1 = iGPU, Package tightens the package cap).
	DomainCaps = apu.DomainCaps
	// Constraint names the power or thermal limit that bound a run.
	Constraint = apu.Constraint
	// PowerTrace is a sampled power time series.
	PowerTrace = trace.Series
	// Completion records one finished job.
	Completion = sim.Completion
	// Program is the analytic model of one benchmark.
	Program = workload.Instance
)

// Device and bias constants.
const (
	CPU = apu.CPU
	GPU = apu.GPU

	GPUBiased = sim.GPUBiased
	CPUBiased = sim.CPUBiased
)

// Batch8 returns the paper's 8-program workload.
func Batch8() []*Instance { return workload.Batch8() }

// Batch16 returns the paper's 16-program workload (two instances of
// each benchmark with different inputs).
func Batch16() []*Instance { return workload.Batch16() }

// Subset builds a batch from benchmark names (streamcluster, cfd,
// dwt2d, hotspot, srad, lud, leukocyte, heartwall).
func Subset(names ...string) ([]*Instance, error) { return workload.Subset(names...) }

// BenchmarkNames lists the available benchmark programs.
func BenchmarkNames() []string { return workload.Names() }

// PhaseSpec describes one execution phase of a custom program.
type PhaseSpec struct {
	// Frac is the fraction of the program's work in this phase; the
	// fractions of a program sum to 1.
	Frac float64
	// BytesPerOp is the phase's memory intensity (bytes moved per
	// abstract operation); 0 means pure compute.
	BytesPerOp float64
}

// ProgramSpec describes a custom job for scheduling: how much work it
// does, how fast each device executes it, how sensitive it is to
// memory latency, and its phase structure. See the calibrated table in
// internal/workload for reference values (CPUEff/GPUEff are Gops/s per
// GHz; typical sensitivities are 0.2-0.3 CPU, 0.05-0.2 GPU, with
// pointer-chasing outliers above 1).
type ProgramSpec struct {
	Name             string
	Work             float64
	CPUEff, GPUEff   float64
	CPUSens, GPUSens float64
	Phases           []PhaseSpec
}

// NewInstance builds a schedulable instance from a custom program
// spec. id must equal the instance's position in the batch passed to
// Prepare; scale scales the input size.
func NewInstance(spec ProgramSpec, id int, scale float64) (*Instance, error) {
	p := &kernelsim.Program{
		Name:    spec.Name,
		Work:    units.GOps(spec.Work),
		CPUEff:  spec.CPUEff,
		GPUEff:  spec.GPUEff,
		CPUSens: spec.CPUSens,
		GPUSens: spec.GPUSens,
	}
	for _, ph := range spec.Phases {
		p.Phases = append(p.Phases, kernelsim.Phase{Frac: ph.Frac, BytesPerOp: ph.BytesPerOp})
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if scale <= 0 {
		return nil, fmt.Errorf("corun: non-positive scale %v", scale)
	}
	return &Instance{ID: id, Prog: p, Scale: scale, Label: spec.Name}, nil
}

// Option configures NewSystem.
type Option func(*System)

// WithPowerCap sets the package power cap in watts (0 = uncapped).
func WithPowerCap(w float64) Option {
	return func(s *System) { s.cap = units.Watts(w) }
}

// WithDomainCaps sets RAPL-style per-plane caps enforced alongside the
// package cap; zero planes are unenforced.
func WithDomainCaps(dc DomainCaps) Option {
	return func(s *System) { s.domains = dc }
}

// WithThermalLimit overrides the machine's throttle trip point in
// degrees Celsius (0 disables the thermal model).
func WithThermalLimit(tmaxC float64) Option {
	return func(s *System) { s.tmax = &tmaxC }
}

// WithMachine replaces the default i7-3520M-like machine description.
func WithMachine(m *Machine) Option {
	return func(s *System) { s.cfg = m }
}

// DefaultMachine returns the Ivy Bridge i7-3520M-like machine the
// paper evaluates on.
func DefaultMachine() *Machine { return apu.DefaultConfig() }

// KaveriMachine returns an AMD A10-7850K-like desktop APU preset.
func KaveriMachine() *Machine { return apu.KaveriConfig() }

// WithCharacterizationLevels overrides the number of micro-benchmark
// bandwidth levels used to characterize the degradation space (the
// paper uses 11 over 0-11 GB/s).
func WithCharacterizationLevels(n int) Option {
	return func(s *System) { s.charLevels = n }
}

// WithCharacterizationFrom loads a previously saved characterization
// (see System.SaveCharacterization) instead of re-measuring the
// degradation space — the deployment path where the offline stage ran
// elsewhere.
func WithCharacterizationFrom(r io.Reader) Option {
	return func(s *System) { s.charSource = r }
}

// System is the built co-scheduling runtime: machine model, memory
// model, and the one-time micro-benchmark characterization.
type System struct {
	cfg        *apu.Config
	mem        *memsys.Model
	cap        units.Watts
	domains    apu.DomainCaps
	tmax       *float64
	charLevels int
	charSource io.Reader
	char       *model.Characterization
}

// SaveCharacterization persists the system's measured degradation
// space; load it into another System with WithCharacterizationFrom.
func (s *System) SaveCharacterization(w io.Writer) error {
	return s.char.Save(w)
}

// NewSystem builds the runtime and runs the characterization pass.
func NewSystem(opts ...Option) (*System, error) {
	s := &System{
		cfg:        apu.DefaultConfig(),
		mem:        memsys.Default(),
		charLevels: 11,
	}
	for _, o := range opts {
		o(s)
	}
	if s.tmax != nil {
		tp := s.cfg.Thermal
		tp.TMaxC = *s.tmax
		s.cfg = s.cfg.WithThermal(tp)
	}
	if err := s.cfg.Validate(); err != nil {
		return nil, err
	}
	if err := s.cfg.CheckCaps(s.cap, s.domains); err != nil {
		return nil, err
	}
	if s.charSource != nil {
		char, err := model.LoadCharacterization(s.charSource, s.cfg)
		if err != nil {
			return nil, err
		}
		s.char = char
		return s, nil
	}
	var levels []units.GBps
	if s.charLevels != 11 {
		if s.charLevels < 2 {
			return nil, fmt.Errorf("corun: need at least 2 characterization levels, got %d", s.charLevels)
		}
		levels = microLevels(s.charLevels)
	}
	char, err := model.Characterize(model.CharacterizeOptions{Cfg: s.cfg, Mem: s.mem, Levels: levels})
	if err != nil {
		return nil, err
	}
	s.char = char
	return s, nil
}

func microLevels(n int) []units.GBps {
	out := make([]units.GBps, n)
	for i := range out {
		out[i] = units.GBps(11 * float64(i) / float64(n-1))
	}
	return out
}

// Machine returns the machine description the system simulates.
func (s *System) Machine() *Machine { return s.cfg }

// PowerCap returns the configured cap (0 = uncapped).
func (s *System) PowerCap() Watts { return s.cap }

// DomainCaps returns the configured per-plane caps (zero planes are
// unenforced).
func (s *System) DomainCaps() DomainCaps { return s.domains }

// Prepare profiles the batch offline and assembles the predictive
// model and scheduling context for it.
func (s *System) Prepare(batch []*Instance) (*Workload, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("corun: empty batch")
	}
	for i, in := range batch {
		if in == nil {
			return nil, fmt.Errorf("corun: nil instance at %d", i)
		}
		if in.ID != i {
			return nil, fmt.Errorf("corun: instance %q has ID %d at position %d; IDs must equal positions", in.Label, in.ID, i)
		}
	}
	prof, err := profile.Collect(s.cfg, s.mem, batch)
	if err != nil {
		return nil, err
	}
	pred, err := model.NewPredictor(s.char, prof)
	if err != nil {
		return nil, err
	}
	// The memoizing wrapper persists for the workload's lifetime, so
	// planning the same batch repeatedly (or under several policies)
	// answers each staged-interpolation query once.
	cached, err := model.NewCachedPredictor(pred, s.cfg)
	if err != nil {
		return nil, err
	}
	cx, err := core.NewContext(cached, s.cfg, s.cap)
	if err != nil {
		return nil, err
	}
	cx.Domains = s.domains
	return &Workload{sys: s, batch: batch, cx: cx}, nil
}

// PrepareCalibrated is Prepare plus online model calibration: one probe
// co-run per (job, device) against a reference stressor corrects each
// job's predicted degradations for latency sensitivity the bandwidth-
// only model cannot see (section V.C's lightweight online estimation).
// Costs 2N short measured runs; dramatically tightens predictions for
// latency-sensitive outliers like dwt2d.
func (s *System) PrepareCalibrated(batch []*Instance) (*Workload, error) {
	w, err := s.Prepare(batch)
	if err != nil {
		return nil, err
	}
	base, ok := model.Unwrap(w.cx.Oracle.(model.Oracle)).(*model.Predictor)
	if !ok {
		return nil, fmt.Errorf("corun: internal: unexpected oracle type")
	}
	cal, err := model.NewCalibratedPredictor(base, model.CalibrateOptions{Batch: batch})
	if err != nil {
		return nil, err
	}
	cached, err := model.NewCachedPredictor(cal, s.cfg)
	if err != nil {
		return nil, err
	}
	cx, err := core.NewContext(cached, s.cfg, s.cap)
	if err != nil {
		return nil, err
	}
	cx.Domains = s.domains
	w.cx = cx
	return w, nil
}

// Workload is a prepared batch: profiles, predictions, and scheduling
// context.
type Workload struct {
	sys   *System
	batch []*Instance
	cx    *core.Context
}

// Batch returns the prepared instances.
func (w *Workload) Batch() []*Instance { return w.batch }

// defaultPlanSeed drives the stochastic parts of the planners (HCS+
// refinement sampling, the metaheuristics, the random baseline plan)
// when a policy is planned through the facade.
const defaultPlanSeed = 7

// Policies lists every registered scheduling policy by canonical name.
// Any of them can be passed to Workload.Schedule.
func Policies() []string { return policy.Names() }

// PolicyInfo describes one registered policy.
type PolicyInfo = policy.Info

// DescribePolicies returns the registered policies with their aliases
// and one-line descriptions.
func DescribePolicies() []PolicyInfo { return policy.List() }

// Schedule plans the batch with any registered policy, resolved by
// name through the policy registry ("hcs", "hcs+", "optimal",
// "anneal", "genetic", "random", "default", or any alias). Unknown
// names return an error listing the valid ones.
func (w *Workload) Schedule(policyName string) (*Schedule, error) {
	return w.ScheduleSeeded(policyName, defaultPlanSeed)
}

// ScheduleSeeded is Schedule with an explicit seed for the stochastic
// planners; deterministic policies ignore it.
func (w *Workload) ScheduleSeeded(policyName string, seed int64) (*Schedule, error) {
	return policy.Plan(policyName, w.cx, policy.Options{Seed: seed})
}

// ScheduleHCS plans with the heuristic co-scheduling algorithm.
func (w *Workload) ScheduleHCS() (*Schedule, error) {
	return w.Schedule("hcs")
}

// ScheduleHCSPlus plans with HCS plus the post local refinement.
func (w *Workload) ScheduleHCSPlus() (*Schedule, error) {
	return w.Schedule("hcs+")
}

// ExplainPlan writes a human-readable account of a schedule: per-job
// preferences and solo times, queue placements, and the frequency
// choices the runtime will make at each dispatch.
func (w *Workload) ExplainPlan(out io.Writer, s *Schedule) error {
	labels := make([]string, len(w.batch))
	for i, in := range w.batch {
		labels[i] = in.Label
	}
	return w.cx.ExplainPlan(out, s, labels)
}

// PredictedMakespan evaluates a schedule on the predictive model.
func (w *Workload) PredictedMakespan(s *Schedule) (Seconds, error) {
	return w.cx.PredictedMakespan(s)
}

// LowerBound computes the paper's lower bound on the optimal makespan.
func (w *Workload) LowerBound() (Seconds, error) {
	return w.cx.LowerBound()
}

// Report summarizes one executed run.
type Report struct {
	Makespan      Seconds
	AvgPower      Watts
	MaxPower      Watts
	EnergyJ       float64
	CapViolations int
	MaxExcess     Watts
	Completions   []Completion
	Power         *PowerTrace

	// Per-plane and thermal accounting (see the apu domain model).
	AvgPP0    Watts
	AvgPP1    Watts
	MaxTempC  float64
	Throttles int
	// Binding names the constraint that bound the run: a plane or
	// package cap, the thermal limit, or none.
	Binding Constraint
}

// WriteGantt renders the run as an ASCII Gantt chart: one lane per
// concurrently running job on each device, the time axis scaled to
// width columns.
func (r *Report) WriteGantt(w io.Writer, width int) error {
	return gantt.RenderParts(w, r.Completions, r.Makespan, width)
}

func reportOf(r *sim.Result) *Report {
	return &Report{
		Makespan:      r.Makespan,
		AvgPower:      r.AvgPower,
		MaxPower:      r.MaxSample,
		EnergyJ:       r.EnergyJ,
		CapViolations: r.CapViolations,
		MaxExcess:     r.MaxExcess,
		Completions:   r.Completions,
		Power:         r.Power,
		AvgPP0:        r.AvgPP0,
		AvgPP1:        r.AvgPP1,
		MaxTempC:      r.MaxTempC,
		Throttles:     r.Throttles,
		Binding:       r.Binding,
	}
}

// Run executes a planned schedule on the simulated machine.
func (w *Workload) Run(s *Schedule) (*Report, error) {
	r, err := w.cx.Execute(s, w.batch, w.execOpts())
	if err != nil {
		return nil, err
	}
	return reportOf(r), nil
}

// RunRandom executes the Random baseline with the given seed; the cap
// is enforced by the bias's reactive governor.
func (w *Workload) RunRandom(seed int64, bias Bias) (*Report, error) {
	r, err := core.ExecuteRandom(w.execOpts(), w.batch, seed, bias)
	if err != nil {
		return nil, err
	}
	return reportOf(r), nil
}

// RunDefault executes the Default baseline (ranking partition, CPU
// multiprogramming) under the bias's reactive governor.
func (w *Workload) RunDefault(bias Bias) (*Report, error) {
	r, err := core.ExecuteDefault(w.execOpts(), w.batch, w.cx.Oracle, bias)
	if err != nil {
		return nil, err
	}
	return reportOf(r), nil
}

// StandaloneTime returns the profiled solo time of batch job i on a
// device at the highest cap-feasible frequency.
func (w *Workload) StandaloneTime(i int, d Device) (Seconds, error) {
	if err := w.checkJob(i); err != nil {
		return 0, err
	}
	t, ok := w.cx.BestSoloTime(i, d)
	if !ok {
		return 0, fmt.Errorf("corun: job %d has no cap-feasible operating point on %v", i, d)
	}
	return t, nil
}

func (w *Workload) execOpts() core.ExecOptions {
	return core.ExecOptions{Cfg: w.sys.cfg, Mem: w.sys.mem, Cap: w.sys.cap, Domains: w.sys.domains}
}

// Online serving re-exports; see the internal/online package docs.
type (
	// Arrival is one job arriving at an online server.
	Arrival = online.Arrival
	// ServeResult summarizes a served arrival stream.
	ServeResult = online.Result
	// ServePolicy selects the per-epoch scheduling policy.
	ServePolicy = online.Policy
	// JobOutcome records one served job's latency.
	JobOutcome = online.JobOutcome
)

// Online serving policies.
const (
	ServeHCSPlus = online.PolicyHCSPlus
	ServeHCS     = online.PolicyHCS
	ServeRandom  = online.PolicyRandom
	ServeDefault = online.PolicyDefault
)

// GenerateArrivals produces a seeded random arrival stream over the
// benchmark set (see online.GenerateArrivals).
func GenerateArrivals(n int, meanGap float64, seed int64) ([]Arrival, error) {
	return online.GenerateArrivals(n, meanGap, seed)
}

// ArrivalOf builds an arrival of the named benchmark at the given
// simulated time with the given input scale.
func ArrivalOf(name string, at, scale float64) (Arrival, error) {
	prog, err := workload.ByName(name)
	if err != nil {
		return Arrival{}, err
	}
	return Arrival{At: Seconds(at), Prog: prog, Scale: scale, Label: name}, nil
}

// Serve runs an arrival stream through the online epoch scheduler on
// this system, planning each epoch's queue with the given policy.
func (s *System) Serve(arrivals []Arrival, policy ServePolicy, seed int64) (*ServeResult, error) {
	return online.Serve(online.Options{
		Cfg: s.cfg, Mem: s.mem, Char: s.char, Cap: s.cap, Domains: s.domains,
		Policy: policy, Seed: seed,
	}, arrivals)
}

// Cluster re-exports; see the internal/cluster package docs.
type (
	// Balancer selects a cluster's job-placement policy.
	Balancer = cluster.Balancer
	// ClusterResult summarizes a fleet run.
	ClusterResult = cluster.Result
)

// Cluster balancing policies.
const (
	RoundRobin    = cluster.RoundRobin
	LeastLoaded   = cluster.LeastLoaded
	AffinityAware = cluster.AffinityAware
)

// ServeCluster balances an arrival stream across a fleet of identical
// nodes (each a copy of this system) and serves every node's share
// with the online epoch scheduler.
func (s *System) ServeCluster(arrivals []Arrival, nodes int, bal Balancer, policy ServePolicy, seed int64) (*ClusterResult, error) {
	return cluster.Serve(cluster.Options{
		Cfg: s.cfg, Mem: s.mem, Char: s.char,
		Nodes: nodes, CapPerNode: s.cap,
		Balancer: bal, Policy: string(policy), Seed: seed,
	}, arrivals)
}

// PredictPairDegradation returns the model's predicted mutual
// degradations of batch job cpuJob running on the CPU beside gpuJob on
// the GPU, both at their maximum frequencies (no cap applied — this is
// the raw section-V model output).
func (w *Workload) PredictPairDegradation(cpuJob, gpuJob int) (cpuSide, gpuSide float64, err error) {
	if err := w.checkJob(cpuJob); err != nil {
		return 0, 0, err
	}
	if err := w.checkJob(gpuJob); err != nil {
		return 0, 0, err
	}
	cmax := w.sys.cfg.MaxFreqIndex(apu.CPU)
	gmax := w.sys.cfg.MaxFreqIndex(apu.GPU)
	o := w.cx.Oracle
	return o.Degradation(cpuJob, apu.CPU, cmax, gpuJob, gmax),
		o.Degradation(gpuJob, apu.GPU, gmax, cpuJob, cmax), nil
}

// MeasurePairDegradation measures the same quantities on the simulated
// machine (the reproduction's ground truth): each side runs start to
// finish while the other side restarts continuously.
func (w *Workload) MeasurePairDegradation(cpuJob, gpuJob int) (cpuSide, gpuSide float64, err error) {
	if err := w.checkJob(cpuJob); err != nil {
		return 0, 0, err
	}
	if err := w.checkJob(gpuJob); err != nil {
		return 0, 0, err
	}
	cmax := w.sys.cfg.MaxFreqIndex(apu.CPU)
	gmax := w.sys.cfg.MaxFreqIndex(apu.GPU)
	opts := sim.Options{Cfg: w.sys.cfg, Mem: w.sys.mem}
	ci := &workload.Instance{ID: 0, Prog: w.batch[cpuJob].Prog, Scale: w.batch[cpuJob].Scale, Label: w.batch[cpuJob].Label}
	gi := &workload.Instance{ID: 1, Prog: w.batch[gpuJob].Prog, Scale: w.batch[gpuJob].Scale, Label: w.batch[gpuJob].Label}
	a, err := sim.CoRun(opts, ci, apu.CPU, gi, cmax, gmax)
	if err != nil {
		return 0, 0, err
	}
	b, err := sim.CoRun(opts, gi, apu.GPU, ci, cmax, gmax)
	if err != nil {
		return 0, 0, err
	}
	return a.Degradation, b.Degradation, nil
}

func (w *Workload) checkJob(i int) error {
	if i < 0 || i >= len(w.batch) {
		return fmt.Errorf("corun: job index %d outside batch of %d", i, len(w.batch))
	}
	return nil
}
