// Powercapsweep: study how the power cap changes the scheduling
// landscape. For caps from just-feasible up to uncapped, it plans and
// executes HCS+ and the baselines on the 8-program batch, printing one
// row per cap — the kind of table an operator would consult when
// choosing a rack-level cap.
package main

import (
	"fmt"
	"log"

	"corun"
)

func main() {
	caps := []float64{12, 13, 14, 15, 16, 18, 20, 25, 0} // 0 = uncapped

	fmt.Printf("%8s %10s %10s %10s %10s %12s\n",
		"cap(W)", "HCS+(s)", "Random(s)", "Default(s)", "bound(s)", "HCS+ gain")
	for _, cap := range caps {
		sys, err := corun.NewSystem(corun.WithPowerCap(cap))
		if err != nil {
			log.Fatalf("cap %.0f: %v", cap, err)
		}
		w, err := sys.Prepare(corun.Batch8())
		if err != nil {
			log.Fatal(err)
		}
		plan, err := w.ScheduleHCSPlus()
		if err != nil {
			log.Fatal(err)
		}
		rep, err := w.Run(plan)
		if err != nil {
			log.Fatal(err)
		}
		rnd, err := w.RunRandom(1, corun.GPUBiased)
		if err != nil {
			log.Fatal(err)
		}
		def, err := w.RunDefault(corun.GPUBiased)
		if err != nil {
			log.Fatal(err)
		}
		bound, err := w.LowerBound()
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%.0f", cap)
		if cap == 0 {
			label = "none"
		}
		fmt.Printf("%8s %10.1f %10.1f %10.1f %10.1f %11.0f%%\n",
			label, float64(rep.Makespan), float64(rnd.Makespan),
			float64(def.Makespan), float64(bound),
			100*(float64(rnd.Makespan)/float64(rep.Makespan)-1))
	}
	fmt.Println("\nTighter caps stretch makespans and widen the gap between")
	fmt.Println("cap-aware co-scheduling and the reactive baselines.")
}
