// Onlineserver: run a bursty stream of arriving jobs through the
// online epoch scheduler under a 15 W cap, comparing the HCS+ policy
// against random dispatch on job latency — the online operating mode
// the paper's introduction motivates for shared servers.
package main

import (
	"fmt"
	"log"

	"corun"
)

func main() {
	sys, err := corun.NewSystem(corun.WithPowerCap(15))
	if err != nil {
		log.Fatal(err)
	}

	// 24 jobs arriving with ~20 s mean gaps: bursts queue up and the
	// per-epoch co-schedule quality decides how fast the queue drains.
	arrivals, err := corun.GenerateArrivals(24, 20, 42)
	if err != nil {
		log.Fatal(err)
	}

	for _, policy := range []corun.ServePolicy{corun.ServeHCSPlus, corun.ServeRandom} {
		res, err := sys.Serve(arrivals, policy, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s epochs %2d  done %7.1fs  mean response %7.1fs  max %7.1fs  energy %.0f J\n",
			policy, res.Epochs, float64(res.Done),
			float64(res.MeanResponse), float64(res.MaxResponse), res.EnergyJ)
	}

	// Show the latency of one specific arrival under HCS+.
	res, err := sys.Serve(arrivals, corun.ServeHCSPlus, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfirst five job outcomes under hcs+:")
	for _, o := range res.Outcomes[:5] {
		fmt.Printf("  %-16s arrived %7.1fs  started %7.1fs  finished %7.1fs  response %6.1fs\n",
			o.Label, float64(o.Arrived), float64(o.Started), float64(o.Finished), float64(o.Response()))
	}
}
