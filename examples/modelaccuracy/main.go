// Modelaccuracy: compare the staged-interpolation co-run performance
// model (section V) against the simulated ground truth for every
// ordered pair of the 8-program batch, printing a per-pair report and
// the error summary of Figure 7.
package main

import (
	"fmt"
	"log"
	"math"

	"corun"
)

func main() {
	sys, err := corun.NewSystem() // uncapped: raw model accuracy
	if err != nil {
		log.Fatal(err)
	}
	batch := corun.Batch8()
	w, err := sys.Prepare(batch)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %-14s %10s %10s %8s\n", "CPU job", "GPU job", "predicted", "measured", "error")
	var errs []float64
	worst := struct {
		err  float64
		pair string
	}{}
	for i := range batch {
		for j := range batch {
			pred, _, err := w.PredictPairDegradation(i, j)
			if err != nil {
				log.Fatal(err)
			}
			meas, _, err := w.MeasurePairDegradation(i, j)
			if err != nil {
				log.Fatal(err)
			}
			// Figure 7's metric: relative error of the predicted
			// degradation (denominator floored for near-zero cases).
			e := math.Abs(pred-meas) / math.Max(meas, 0.05)
			errs = append(errs, e)
			if e > worst.err {
				worst.err = e
				worst.pair = batch[i].Label + " x " + batch[j].Label
			}
			fmt.Printf("%-14s %-14s %9.1f%% %9.1f%% %7.0f%%\n",
				batch[i].Label, batch[j].Label, 100*pred, 100*meas, 100*e)
		}
	}

	mean, below10, below20 := 0.0, 0, 0
	for _, e := range errs {
		mean += e
		if e < 0.10 {
			below10++
		}
		if e < 0.20 {
			below20++
		}
	}
	mean /= float64(len(errs))
	fmt.Printf("\n%d pairs: mean error %.0f%%, <10%%: %d, <20%%: %d  [paper: mean 15%%, ~half <10%%, >70%% <20%%]\n",
		len(errs), 100*mean, below10, below20)
	fmt.Printf("hardest pair: %s (%.0f%% error) — latency-sensitive codes defeat a bandwidth-only model,\n",
		worst.pair, 100*worst.err)
	fmt.Println("exactly the failure mode the paper's error tail shows.")
}
