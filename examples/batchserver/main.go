// Batchserver: an online shared-server scenario. Batches of OpenCL
// jobs arrive over time at a capped APU node; for each arriving batch
// the runtime plans an HCS+ co-schedule and executes it, tracking
// cumulative throughput against a naive first-come first-served
// baseline — the "shared servers, workstation clusters, and data
// centers" use case the paper's introduction motivates.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"corun"
)

func main() {
	const cap = 15
	sys, err := corun.NewSystem(corun.WithPowerCap(cap))
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	names := corun.BenchmarkNames()

	var smartTotal, naiveTotal, jobs float64
	for batchNo := 1; batchNo <= 5; batchNo++ {
		// A batch of 4-8 random jobs arrives.
		n := 4 + rng.Intn(5)
		picks := make([]string, n)
		for i := range picks {
			picks[i] = names[rng.Intn(len(names))]
		}
		batch, err := corun.Subset(picks...)
		if err != nil {
			log.Fatal(err)
		}
		w, err := sys.Prepare(batch)
		if err != nil {
			log.Fatal(err)
		}

		// Smart: HCS+ co-schedule.
		plan, err := w.ScheduleHCSPlus()
		if err != nil {
			log.Fatal(err)
		}
		smart, err := w.Run(plan)
		if err != nil {
			log.Fatal(err)
		}

		// Naive: first-come first-served under the reactive governor
		// (the Random dispatcher with a fixed seed behaves as an
		// arrival-order scheduler here).
		naive, err := w.RunRandom(int64(batchNo), corun.GPUBiased)
		if err != nil {
			log.Fatal(err)
		}

		smartTotal += float64(smart.Makespan)
		naiveTotal += float64(naive.Makespan)
		jobs += float64(n)
		fmt.Printf("batch %d (%d jobs: %v)\n", batchNo, n, picks)
		fmt.Printf("  HCS+ %7.1fs   FCFS %7.1fs   gain %+.0f%%\n",
			float64(smart.Makespan), float64(naive.Makespan),
			100*(float64(naive.Makespan)/float64(smart.Makespan)-1))
	}

	fmt.Printf("\nover %0.f jobs: HCS+ server time %.1fs vs FCFS %.1fs (throughput +%.0f%%)\n",
		jobs, smartTotal, naiveTotal, 100*(naiveTotal/smartTotal-1))
}
