// Quickstart: schedule the paper's 8-program Rodinia batch on the
// simulated integrated CPU-GPU machine under a 15 W power cap, compare
// HCS+ against the Random and Default baselines, and print the result.
package main

import (
	"fmt"
	"log"

	"corun"
)

func main() {
	// Build the runtime: machine model, memory-contention model, and
	// the one-time micro-benchmark characterization of section V.
	sys, err := corun.NewSystem(corun.WithPowerCap(15))
	if err != nil {
		log.Fatal(err)
	}

	// Profile the batch offline and assemble the predictive model.
	w, err := sys.Prepare(corun.Batch8())
	if err != nil {
		log.Fatal(err)
	}

	// Plan with the heuristic co-scheduler plus local refinement.
	plan, err := w.ScheduleHCSPlus()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("planned schedule:", plan)

	// Execute on the simulated machine.
	rep, err := w.Run(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HCS+   makespan %.1fs  avg power %.2f W  cap violations %d\n",
		float64(rep.Makespan), float64(rep.AvgPower), rep.CapViolations)

	// Baselines for comparison.
	rnd, err := w.RunRandom(1, corun.GPUBiased)
	if err != nil {
		log.Fatal(err)
	}
	def, err := w.RunDefault(corun.GPUBiased)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Random makespan %.1fs (HCS+ is %.0f%% faster)\n",
		float64(rnd.Makespan), 100*(float64(rnd.Makespan)/float64(rep.Makespan)-1))
	fmt.Printf("Default makespan %.1fs (HCS+ is %.0f%% faster)\n",
		float64(def.Makespan), 100*(float64(def.Makespan)/float64(rep.Makespan)-1))

	bound, err := w.LowerBound()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lower bound on the optimal makespan: %.1fs\n", float64(bound))
}
