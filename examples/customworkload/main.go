// Customworkload: define your own jobs through the public API instead
// of the built-in Rodinia-like benchmarks — a video pipeline with a
// renderer, an encoder, a CPU-bound analyzer, and a memory-hungry
// filter — then co-schedule them under a 15 W cap and inspect the plan.
package main

import (
	"fmt"
	"log"
	"os"

	"corun"
)

func main() {
	specs := []corun.ProgramSpec{
		{
			// GPU-friendly shader-like kernel, moderate memory traffic.
			Name: "render", Work: 120,
			CPUEff: 0.5, GPUEff: 3.2,
			CPUSens: 0.25, GPUSens: 0.08,
			Phases: []corun.PhaseSpec{
				{Frac: 0.8, BytesPerOp: 1.4},
				{Frac: 0.2, BytesPerOp: 0.3},
			},
		},
		{
			// Encoder: GPU-preferred but compute-dominated.
			Name: "encode", Work: 90,
			CPUEff: 0.6, GPUEff: 2.4,
			CPUSens: 0.2, GPUSens: 0.05,
			Phases: []corun.PhaseSpec{{Frac: 1, BytesPerOp: 0.5}},
		},
		{
			// Analyzer: branchy CPU code, latency sensitive.
			Name: "analyze", Work: 70,
			CPUEff: 1.1, GPUEff: 0.9,
			CPUSens: 0.9, GPUSens: 0.2,
			Phases: []corun.PhaseSpec{
				{Frac: 0.6, BytesPerOp: 1.6},
				{Frac: 0.4, BytesPerOp: 0.6},
			},
		},
		{
			// Filter: streaming memory hog.
			Name: "filter", Work: 100,
			CPUEff: 0.55, GPUEff: 3.0,
			CPUSens: 0.3, GPUSens: 0.1,
			Phases: []corun.PhaseSpec{{Frac: 1, BytesPerOp: 2.2}},
		},
	}

	batch := make([]*corun.Instance, len(specs))
	for i, spec := range specs {
		in, err := corun.NewInstance(spec, i, 1.0)
		if err != nil {
			log.Fatal(err)
		}
		batch[i] = in
	}

	sys, err := corun.NewSystem(corun.WithPowerCap(15))
	if err != nil {
		log.Fatal(err)
	}
	w, err := sys.Prepare(batch)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := w.ScheduleHCSPlus()
	if err != nil {
		log.Fatal(err)
	}
	if err := w.ExplainPlan(os.Stdout, plan); err != nil {
		log.Fatal(err)
	}

	rep, err := w.Run(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmakespan %.1fs at %.2f W average (cap violations: %d)\n",
		float64(rep.Makespan), float64(rep.AvgPower), rep.CapViolations)
	if err := rep.WriteGantt(os.Stdout, 72); err != nil {
		log.Fatal(err)
	}

	rnd, err := w.RunRandom(1, corun.GPUBiased)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrandom dispatch would have taken %.1fs (%.0f%% slower)\n",
		float64(rnd.Makespan), 100*(float64(rnd.Makespan)/float64(rep.Makespan)-1))
}
