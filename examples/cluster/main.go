// Cluster: serve a heavy arrival stream on a small fleet of capped APU
// nodes — the shared-server/data-center setting the paper's
// introduction motivates. Compares fleet sizes and balancing policies
// on job latency, completion time, and energy.
package main

import (
	"fmt"
	"log"

	"corun"
)

func main() {
	sys, err := corun.NewSystem(corun.WithPowerCap(15))
	if err != nil {
		log.Fatal(err)
	}

	// A bursty stream: 36 jobs, ~6 s mean gaps — far more than one
	// node can absorb.
	arrivals, err := corun.GenerateArrivals(36, 6, 11)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fleet sizing (affinity-aware balancing, HCS+ per node):")
	for _, nodes := range []int{1, 2, 4} {
		res, err := sys.ServeCluster(arrivals, nodes, corun.AffinityAware, corun.ServeHCSPlus, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d node(s): done %7.1fs  mean response %7.1fs  energy %6.0f J  imbalance %.0f%%\n",
			nodes, float64(res.Done), float64(res.MeanResponse), res.TotalEnergyJ, 100*res.Imbalance)
	}

	fmt.Println("\nbalancing policies (3 nodes):")
	for _, bal := range []corun.Balancer{corun.RoundRobin, corun.LeastLoaded, corun.AffinityAware} {
		res, err := sys.ServeCluster(arrivals, 3, bal, corun.ServeHCSPlus, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s done %7.1fs  mean response %7.1fs  imbalance %.0f%%\n",
			bal, float64(res.Done), float64(res.MeanResponse), 100*res.Imbalance)
	}

	fmt.Println("\nscheduling policies per node (3 nodes, affinity-aware):")
	for _, pol := range []corun.ServePolicy{corun.ServeHCSPlus, corun.ServeRandom} {
		res, err := sys.ServeCluster(arrivals, 3, corun.AffinityAware, pol, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s done %7.1fs  mean response %7.1fs  energy %6.0f J\n",
			pol, float64(res.Done), float64(res.MeanResponse), res.TotalEnergyJ)
	}
}
