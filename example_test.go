package corun_test

import (
	"fmt"
	"log"

	"corun"
)

// Example demonstrates the full pipeline: build the system under a
// power cap, prepare a batch, plan with HCS+, and execute.
func Example() {
	sys, err := corun.NewSystem(corun.WithPowerCap(15))
	if err != nil {
		log.Fatal(err)
	}
	w, err := sys.Prepare(corun.Batch8())
	if err != nil {
		log.Fatal(err)
	}
	plan, err := w.ScheduleHCSPlus()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := w.Run(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all %d jobs finished, cap respected: %v\n",
		len(rep.Completions), rep.CapViolations == 0)
	// Output:
	// all 8 jobs finished, cap respected: true
}

// ExampleSubset schedules a hand-picked set of benchmarks.
func ExampleSubset() {
	batch, err := corun.Subset("dwt2d", "hotspot")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(batch), batch[0].Label, batch[1].Label)
	// Output:
	// 2 dwt2d hotspot
}

// ExampleWorkload_LowerBound computes the paper's bound on the optimal
// makespan for a batch.
func ExampleWorkload_LowerBound() {
	sys, err := corun.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	w, err := sys.Prepare(corun.Batch8())
	if err != nil {
		log.Fatal(err)
	}
	bound, err := w.LowerBound()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bound > 0)
	// Output:
	// true
}

// ExampleSystem_Serve runs an online arrival stream through the epoch
// scheduler.
func ExampleSystem_Serve() {
	sys, err := corun.NewSystem(corun.WithPowerCap(15))
	if err != nil {
		log.Fatal(err)
	}
	a1, err := corun.ArrivalOf("lud", 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	a2, err := corun.ArrivalOf("hotspot", 5, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Serve([]corun.Arrival{a1, a2}, corun.ServeHCSPlus, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served %d jobs in %d epochs\n", len(res.Outcomes), res.Epochs)
	// Output:
	// served 2 jobs in 2 epochs
}
