// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark
// reports the experiment's headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation and prints its key numbers.
package corun_test

import (
	"sync"
	"testing"

	"corun/internal/core"
	"corun/internal/exp"
	"corun/internal/model"
	"corun/internal/online"
	"corun/internal/profile"
	"corun/internal/workload"
)

var (
	benchOnce  sync.Once
	benchSuite *exp.Suite
	benchErr   error
)

func suite(b *testing.B) *exp.Suite {
	b.Helper()
	benchOnce.Do(func() { benchSuite, benchErr = exp.NewSuite() })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSuite
}

// BenchmarkFig2StandalonePreference regenerates Figure 2: standalone
// CPU vs GPU times of the four motivating programs. Reported metric:
// the mean preferred-device speedup (paper: 1.8x-2.5x).
func BenchmarkFig2StandalonePreference(b *testing.B) {
	s := suite(b)
	var mean float64
	for i := 0; i < b.N; i++ {
		r, err := s.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, row := range r.Rows {
			sum += row.SpeedupOnPreferred
		}
		mean = sum / float64(len(r.Rows))
	}
	b.ReportMetric(mean, "x-preferred-speedup")
}

// BenchmarkSec3MotivatingExample regenerates the section III example:
// pairwise slowdowns and the best/worst co-schedule enumeration under
// 15 W. Reported metric: worst/best makespan ratio (paper: 2.3x).
func BenchmarkSec3MotivatingExample(b *testing.B) {
	s := suite(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := s.Example3()
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.Ratio
	}
	b.ReportMetric(ratio, "x-worst/best")
}

// BenchmarkFig5CPUDegradationSpace regenerates Figure 5. Reported
// metric: the CPU-side worst-case degradation (paper: ~65%).
func BenchmarkFig5CPUDegradationSpace(b *testing.B) {
	s := suite(b)
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := s.Figures5And6()
		if err != nil {
			b.Fatal(err)
		}
		worst = r.CPUMax
	}
	b.ReportMetric(100*worst, "%cpu-worst-degradation")
}

// BenchmarkFig6GPUDegradationSpace regenerates Figure 6. Reported
// metric: the GPU-side worst-case degradation (paper: ~45%).
func BenchmarkFig6GPUDegradationSpace(b *testing.B) {
	s := suite(b)
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := s.Figures5And6()
		if err != nil {
			b.Fatal(err)
		}
		worst = r.GPUMax
	}
	b.ReportMetric(100*worst, "%gpu-worst-degradation")
}

// BenchmarkFig7PerfModelAccuracy regenerates Figure 7: the performance
// model's error distribution over 64 pairs at two frequency settings.
// Reported metrics: mean errors (paper: 15% high, 11% medium).
func BenchmarkFig7PerfModelAccuracy(b *testing.B) {
	s := suite(b)
	var high, med float64
	for i := 0; i < b.N; i++ {
		r, err := s.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		high, med = r.High.Mean, r.Medium.Mean
	}
	b.ReportMetric(100*high, "%mean-err-high")
	b.ReportMetric(100*med, "%mean-err-medium")
}

// BenchmarkFig8PowerModelAccuracy regenerates Figure 8: the power
// model's error distribution. Reported metric: mean error (paper:
// 1.92%).
func BenchmarkFig8PowerModelAccuracy(b *testing.B) {
	s := suite(b)
	var mean float64
	for i := 0; i < b.N; i++ {
		r, err := s.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		mean = r.Mean
	}
	b.ReportMetric(100*mean, "%mean-power-err")
}

// BenchmarkFig9PowerTraces regenerates Figure 9: 1 Hz power samples of
// four co-runs under a 16 W cap. Reported metric: the largest cap
// excess across all traces (paper: typically < 2 W).
func BenchmarkFig9PowerTraces(b *testing.B) {
	s := suite(b)
	var maxExcess float64
	for i := 0; i < b.N; i++ {
		r, err := s.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		maxExcess = 0
		for _, tr := range r.Traces {
			if float64(tr.MaxExcess) > maxExcess {
				maxExcess = float64(tr.MaxExcess)
			}
		}
	}
	b.ReportMetric(maxExcess, "w-max-cap-excess")
}

// BenchmarkTable1ProfileTable regenerates Table I. Reported metric:
// the count of GPU-preferred programs (paper: 6 of 8).
func BenchmarkTable1ProfileTable(b *testing.B) {
	s := suite(b)
	var gpuPreferred float64
	for i := 0; i < b.N; i++ {
		r, err := s.TableI()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for _, row := range r.Rows {
			if row.Preference.String() == "GPU" {
				n++
			}
		}
		gpuPreferred = float64(n)
	}
	b.ReportMetric(gpuPreferred, "gpu-preferred-programs")
}

// BenchmarkFig10EightProgramCoSchedule regenerates Figure 10. Reported
// metric: HCS+'s speedup over Random (paper: 41%).
func BenchmarkFig10EightProgramCoSchedule(b *testing.B) {
	s := suite(b)
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := s.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.SpeedupOverRandom(r.HCSPlus)
	}
	b.ReportMetric(100*speedup, "%hcs+-over-random")
}

// BenchmarkFig11SixteenProgramCoSchedule regenerates Figure 11.
// Reported metrics: HCS+'s speedup over Random (paper: 37%) and over
// Default_G (paper: >46%).
func BenchmarkFig11SixteenProgramCoSchedule(b *testing.B) {
	s := suite(b)
	var overRandom, overDefault float64
	for i := 0; i < b.N; i++ {
		r, err := s.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		overRandom = r.SpeedupOverRandom(r.HCSPlus)
		overDefault = float64(r.DefaultG)/float64(r.HCSPlus) - 1
	}
	b.ReportMetric(100*overRandom, "%hcs+-over-random")
	b.ReportMetric(100*overDefault, "%hcs+-over-default")
}

// BenchmarkSchedulerOverhead regenerates the section VI-D observation.
// Reported metric: scheduler wall time over scheduled makespan (paper:
// < 0.1%).
func BenchmarkSchedulerOverhead(b *testing.B) {
	s := suite(b)
	var frac float64
	for i := 0; i < b.N; i++ {
		r, err := s.Overhead()
		if err != nil {
			b.Fatal(err)
		}
		frac = r.Fraction
	}
	b.ReportMetric(100*frac, "%of-makespan")
}

// ablationDelta runs one HCS variant against the full pipeline and
// returns its executed-makespan delta.
func ablationDelta(b *testing.B, name string) float64 {
	s := suite(b)
	r, err := s.Ablations()
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Name == name {
			return row.DeltaVsFull
		}
	}
	b.Fatalf("no ablation row %q", name)
	return 0
}

// BenchmarkAblationNoCoRunTheorem disables the step-1 partition.
func BenchmarkAblationNoCoRunTheorem(b *testing.B) {
	var d float64
	for i := 0; i < b.N; i++ {
		d = ablationDelta(b, "no-corun-theorem")
	}
	b.ReportMetric(100*d, "%makespan-delta")
}

// BenchmarkAblationNoPreference disables the step-2 categorization.
func BenchmarkAblationNoPreference(b *testing.B) {
	var d float64
	for i := 0; i < b.N; i++ {
		d = ablationDelta(b, "no-preference")
	}
	b.ReportMetric(100*d, "%makespan-delta")
}

// BenchmarkAblationRefinementSteps isolates each refinement step.
func BenchmarkAblationRefinementSteps(b *testing.B) {
	var none, adj, inq, cross float64
	for i := 0; i < b.N; i++ {
		none = ablationDelta(b, "no-refinement")
		adj = ablationDelta(b, "refine-adjacent-only")
		inq = ablationDelta(b, "refine-inqueue-only")
		cross = ablationDelta(b, "refine-cross-only")
	}
	b.ReportMetric(100*none, "%no-refine")
	b.ReportMetric(100*adj, "%adjacent-only")
	b.ReportMetric(100*inq, "%inqueue-only")
	b.ReportMetric(100*cross, "%cross-only")
}

// BenchmarkAblationFreqTraversal coarsens the frequency traversal.
func BenchmarkAblationFreqTraversal(b *testing.B) {
	var d float64
	for i := 0; i < b.N; i++ {
		d = ablationDelta(b, "freq-stride-4")
	}
	b.ReportMetric(100*d, "%makespan-delta")
}

// BenchmarkAblationModelVsOracle feeds the scheduler measured (oracle)
// degradations instead of model predictions, isolating prediction
// error from scheduling error.
func BenchmarkAblationModelVsOracle(b *testing.B) {
	var d float64
	for i := 0; i < b.N; i++ {
		d = ablationDelta(b, "oracle-degradations")
	}
	b.ReportMetric(100*d, "%makespan-delta")
}

// BenchmarkExtEnergyStudy runs the energy/EDP extension study.
// Reported metric: HCS+'s EDP advantage over Random.
func BenchmarkExtEnergyStudy(b *testing.B) {
	s := suite(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := s.Energy()
		if err != nil {
			b.Fatal(err)
		}
		var rnd, plus float64
		for _, row := range r.Rows {
			switch row.Policy {
			case "Random":
				rnd = row.EDP
			case "HCS+":
				plus = row.EDP
			}
		}
		ratio = rnd / plus
	}
	b.ReportMetric(ratio, "x-edp-vs-random")
}

// BenchmarkExtSplitStudy runs the kernel-splitting extension study.
// Reported metrics: programs gaining >5% under default and slow-sync
// costs.
func BenchmarkExtSplitStudy(b *testing.B) {
	s := suite(b)
	var def, slow float64
	for i := 0; i < b.N; i++ {
		r, err := s.Split()
		if err != nil {
			b.Fatal(err)
		}
		def, slow = float64(r.WinsDefault), float64(r.WinsSlowSync)
	}
	b.ReportMetric(def, "winners-default")
	b.ReportMetric(slow, "winners-slowsync")
}

// BenchmarkExtRobustness runs HCS+ vs Random over random synthetic
// workloads. Reported metric: mean speedup.
func BenchmarkExtRobustness(b *testing.B) {
	s := suite(b)
	var mean float64
	for i := 0; i < b.N; i++ {
		r, err := s.Robustness(5, 3)
		if err != nil {
			b.Fatal(err)
		}
		mean = r.Summary.Mean
	}
	b.ReportMetric(100*mean, "%mean-speedup")
}

// BenchmarkExtOnlineServing runs the bursty-arrival online study.
// Reported metric: HCS+'s mean-response improvement over random
// dispatch.
func BenchmarkExtOnlineServing(b *testing.B) {
	s := suite(b)
	var gain float64
	for i := 0; i < b.N; i++ {
		arrivals, err := online.GenerateArrivals(16, 10, 5)
		if err != nil {
			b.Fatal(err)
		}
		smart, err := online.Serve(online.Options{
			Cfg: s.Cfg, Mem: s.Mem, Char: s.Char, Cap: 15,
			Policy: online.PolicyHCSPlus, Seed: 1,
		}, arrivals)
		if err != nil {
			b.Fatal(err)
		}
		naive, err := online.Serve(online.Options{
			Cfg: s.Cfg, Mem: s.Mem, Char: s.Char, Cap: 15,
			Policy: online.PolicyRandom, Seed: 1,
		}, arrivals)
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(naive.MeanResponse)/float64(smart.MeanResponse) - 1
	}
	b.ReportMetric(100*gain, "%response-gain")
}

// BenchmarkExtClusterServing runs the fleet study. Reported metric:
// 3-node HCS+'s completion-time gain over 3-node random dispatch.
func BenchmarkExtClusterServing(b *testing.B) {
	s := suite(b)
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := s.Cluster()
		if err != nil {
			b.Fatal(err)
		}
		var smart, naive float64
		for _, row := range r.Rows {
			switch row.Label {
			case "3-node hcs+ affinity":
				smart = float64(row.Done)
			case "3-node random affinity":
				naive = float64(row.Done)
			}
		}
		gain = naive/smart - 1
	}
	b.ReportMetric(100*gain, "%fleet-gain")
}

// BenchmarkOptimalGap exhaustively enumerates the optimal co-schedule
// of a 5-job batch and reports how close HCS+ gets (predicted metric).
func BenchmarkOptimalGap(b *testing.B) {
	s := suite(b)
	batch, err := workload.Subset("streamcluster", "cfd", "dwt2d", "hotspot", "lud")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := profile.Collect(s.Cfg, s.Mem, batch)
	if err != nil {
		b.Fatal(err)
	}
	pred, err := model.NewPredictor(s.Char, prof)
	if err != nil {
		b.Fatal(err)
	}
	var gap float64
	for i := 0; i < b.N; i++ {
		cx, err := core.NewContext(pred, s.Cfg, 15)
		if err != nil {
			b.Fatal(err)
		}
		_, optT, err := cx.OptimalSchedule()
		if err != nil {
			b.Fatal(err)
		}
		_, plusT, err := cx.HCSPlus(core.HCSOptions{}, core.RefineOptions{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		gap = float64(plusT)/float64(optT) - 1
	}
	b.ReportMetric(100*gap, "%hcs+-above-optimal")
}

// BenchmarkMetaheuristicComparison pits the paper's cheap refinement
// against simulated annealing and a genetic search on the 16-instance
// batch (predicted makespans). Reported metrics: how much each heavy
// search improves on HCS+ — small numbers vindicate the paper's choice
// of a linear-cost refinement.
func BenchmarkMetaheuristicComparison(b *testing.B) {
	s := suite(b)
	batch := workload.Batch16()
	prof, err := profile.Collect(s.Cfg, s.Mem, batch)
	if err != nil {
		b.Fatal(err)
	}
	pred, err := model.NewPredictor(s.Char, prof)
	if err != nil {
		b.Fatal(err)
	}
	var annealGain, gaGain float64
	for i := 0; i < b.N; i++ {
		cx, err := core.NewContext(pred, s.Cfg, 15)
		if err != nil {
			b.Fatal(err)
		}
		hcs, err := cx.HCS(core.HCSOptions{})
		if err != nil {
			b.Fatal(err)
		}
		_, refinedT, err := cx.Refine(hcs, core.RefineOptions{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		_, annealT, err := cx.Anneal(hcs, core.AnnealOptions{Iterations: 3000, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		_, gaT, err := cx.Genetic(core.GeneticOptions{Seed: 7, SeedSchedule: hcs})
		if err != nil {
			b.Fatal(err)
		}
		annealGain = float64(refinedT)/float64(annealT) - 1
		gaGain = float64(refinedT)/float64(gaT) - 1
	}
	b.ReportMetric(100*annealGain, "%anneal-over-hcs+")
	b.ReportMetric(100*gaGain, "%ga-over-hcs+")
}

// BenchmarkHCSPlanning measures the raw planning cost of HCS+HCS+ on
// the 16-instance batch (the scheduler's own latency, no execution).
func BenchmarkHCSPlanning(b *testing.B) {
	s := suite(b)
	batch := workload.Batch16()
	prof, err := profile.Collect(s.Cfg, s.Mem, batch)
	if err != nil {
		b.Fatal(err)
	}
	pred, err := model.NewPredictor(s.Char, prof)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cx, err := core.NewContext(pred, s.Cfg, 15)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := cx.HCSPlus(core.HCSOptions{}, core.RefineOptions{Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacterization measures the one-time offline cost of the
// full micro-benchmark characterization pass.
func BenchmarkCharacterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.NewSuite(); err != nil {
			b.Fatal(err)
		}
	}
}
