module corun

go 1.22
