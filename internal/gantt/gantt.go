// Package gantt renders simulation results as ASCII Gantt charts: one
// lane per concurrently running job on each device, time scaled to a
// fixed width. It makes co-schedules inspectable at a glance — which
// jobs overlapped, where a device idled, and where the makespan-
// critical tail sits.
package gantt

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"corun/internal/apu"
	"corun/internal/sim"
	"corun/internal/units"
)

// DefaultWidth is the default chart width in columns.
const DefaultWidth = 72

// bar is one job's rendered interval.
type bar struct {
	label      string
	start, end units.Seconds
	dev        apu.Device
	lane       int
}

// Render writes the chart for a simulation result. width is the number
// of columns used for the time axis; values below 20 are raised to 20.
func Render(w io.Writer, res *sim.Result, width int) error {
	if res == nil {
		return fmt.Errorf("gantt: nil result")
	}
	return RenderParts(w, res.Completions, res.Makespan, width)
}

// RenderParts draws the chart from raw completions and a makespan, for
// callers that carry reports rather than simulator results.
func RenderParts(w io.Writer, completions []sim.Completion, makespan units.Seconds, width int) error {
	if width < 20 {
		width = 20
	}
	if len(completions) == 0 || makespan <= 0 {
		_, err := fmt.Fprintln(w, "(empty schedule)")
		return err
	}

	bars := make([]bar, 0, len(completions))
	for _, c := range completions {
		bars = append(bars, bar{label: c.Inst.Label, start: c.Start, end: c.End, dev: c.Dev})
	}
	assignLanes(bars)

	scale := float64(width) / float64(makespan)
	for _, dev := range []apu.Device{apu.CPU, apu.GPU} {
		lanes := lanesOf(bars, dev)
		if len(lanes) == 0 {
			if _, err := fmt.Fprintf(w, "%s | (idle)\n", dev); err != nil {
				return err
			}
			continue
		}
		for li, lane := range lanes {
			head := "    "
			if li == 0 {
				head = fmt.Sprintf("%-4s", dev.String())
			}
			if _, err := fmt.Fprintf(w, "%s|%s\n", head, laneString(lane, scale, width)); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "    0s%s%.1fs\n", strings.Repeat(" ", max(1, width-10)), float64(makespan))
	return err
}

// assignLanes gives overlapping bars on the same device distinct lanes
// (first-fit by start time).
func assignLanes(bars []bar) {
	sort.SliceStable(bars, func(i, j int) bool { return bars[i].start < bars[j].start })
	laneEnds := map[apu.Device][]units.Seconds{}
	for i := range bars {
		ends := laneEnds[bars[i].dev]
		placed := false
		for li, end := range ends {
			if bars[i].start >= end-1e-9 {
				bars[i].lane = li
				ends[li] = bars[i].end
				placed = true
				break
			}
		}
		if !placed {
			bars[i].lane = len(ends)
			ends = append(ends, bars[i].end)
		}
		laneEnds[bars[i].dev] = ends
	}
}

func lanesOf(bars []bar, dev apu.Device) [][]bar {
	maxLane := -1
	for _, b := range bars {
		if b.dev == dev && b.lane > maxLane {
			maxLane = b.lane
		}
	}
	if maxLane < 0 {
		return nil
	}
	lanes := make([][]bar, maxLane+1)
	for _, b := range bars {
		if b.dev == dev {
			lanes[b.lane] = append(lanes[b.lane], b)
		}
	}
	return lanes
}

// laneString draws one lane: job intervals as [label----] blocks.
func laneString(lane []bar, scale float64, width int) string {
	row := make([]byte, width)
	for i := range row {
		row[i] = ' '
	}
	for _, b := range lane {
		s := int(float64(b.start) * scale)
		e := int(float64(b.end) * scale)
		if e <= s {
			e = s + 1
		}
		if e > width {
			e = width
		}
		if s >= width {
			s = width - 1
		}
		for i := s; i < e; i++ {
			row[i] = '-'
		}
		row[s] = '['
		row[e-1] = ']'
		// Place as much of the label as fits inside the block.
		inner := e - s - 2
		if inner > 0 {
			lbl := b.label
			if len(lbl) > inner {
				lbl = lbl[:inner]
			}
			copy(row[s+1:], lbl)
		}
	}
	return string(row)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
