package gantt

import (
	"strings"
	"testing"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/sim"
	"corun/internal/workload"
)

func run(t *testing.T, cpu, gpu []string, slots int) *sim.Result {
	t.Helper()
	var cpuQ, gpuQ []*workload.Instance
	id := 0
	for _, n := range cpu {
		cpuQ = append(cpuQ, &workload.Instance{ID: id, Prog: workload.MustByName(n), Scale: 1, Label: n})
		id++
	}
	for _, n := range gpu {
		gpuQ = append(gpuQ, &workload.Instance{ID: id, Prog: workload.MustByName(n), Scale: 1, Label: n})
		id++
	}
	opts := sim.Options{Cfg: apu.DefaultConfig(), Mem: memsys.Default(), CPUSlots: slots}
	res, err := sim.Run(opts, sim.NewQueueDispatcher(cpuQ, gpuQ, nil))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRenderBasic(t *testing.T) {
	res := run(t, []string{"dwt2d"}, []string{"hotspot", "lud"}, 1)
	var b strings.Builder
	if err := Render(&b, res, 60); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"CPU", "GPU", "dwt2d", "hotspot", "lud", "0s"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Every chart line fits the width budget (head + axis).
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if len(line) > 60+6 {
			t.Errorf("line overflows: %q (%d cols)", line, len(line))
		}
	}
}

func TestRenderMultiprogrammedLanes(t *testing.T) {
	res := run(t, []string{"dwt2d", "lud", "cfd"}, nil, 3)
	var b strings.Builder
	if err := Render(&b, res, 60); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Three overlapping CPU jobs need three lanes: the CPU block spans
	// three lines (1 labelled + 2 continuation) plus the idle GPU line.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	cpuLines := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "CPU") || strings.HasPrefix(l, "    |") {
			cpuLines++
		}
	}
	if cpuLines < 3 {
		t.Errorf("expected >=3 CPU lanes, chart:\n%s", out)
	}
	if !strings.Contains(out, "(idle)") {
		t.Errorf("idle GPU not marked:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, &sim.Result{}, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "empty") {
		t.Errorf("empty schedule not marked: %q", b.String())
	}
	if err := Render(&b, nil, 40); err == nil {
		t.Error("nil result accepted")
	}
}

func TestRenderTinyWidthClamped(t *testing.T) {
	res := run(t, nil, []string{"hotspot"}, 1)
	var b strings.Builder
	if err := Render(&b, res, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "hotspo") {
		t.Errorf("clamped-width chart lost the job label:\n%s", b.String())
	}
}

// Bars never overlap within a lane.
func TestLaneAssignmentNoOverlap(t *testing.T) {
	bars := []bar{
		{label: "a", start: 0, end: 10, dev: apu.CPU},
		{label: "b", start: 5, end: 15, dev: apu.CPU},
		{label: "c", start: 10, end: 20, dev: apu.CPU},
		{label: "d", start: 0, end: 30, dev: apu.GPU},
	}
	assignLanes(bars)
	for i := range bars {
		for j := i + 1; j < len(bars); j++ {
			a, b2 := bars[i], bars[j]
			if a.dev != b2.dev || a.lane != b2.lane {
				continue
			}
			if a.start < b2.end && b2.start < a.end {
				t.Errorf("bars %s and %s overlap in lane %d", a.label, b2.label, a.lane)
			}
		}
	}
	// "a" and "c" can share a lane; "b" cannot share with "a".
	// assignLanes reorders the slice, so look bars up by label.
	byLabel := map[string]bar{}
	for _, b2 := range bars {
		byLabel[b2.label] = b2
	}
	if byLabel["a"].lane == byLabel["b"].lane {
		t.Error("overlapping bars a and b share a lane")
	}
	if byLabel["a"].lane != byLabel["c"].lane {
		t.Error("non-overlapping bars a and c should reuse a lane")
	}
}
