package apu

import (
	"fmt"
	"math"

	"corun/internal/units"
)

// ThermalParams is a first-order thermal RC model of the package: both
// devices dump their heat into one shared heatsink node (the physical
// reality that makes co-run thermal management interesting — a hot GPU
// steals thermal headroom from the CPU and vice versa, Dev et al.).
// The node's temperature follows
//
//	C dT/dt = P - (T - Tamb) / R
//
// whose exact solution over a step of length dt is
//
//	T' = Tsteady + (T - Tsteady) * exp(-dt / (R*C)),  Tsteady = Tamb + P*R
//
// Step integrates that closed form, so the model is stable for any
// step size the simulator's event loop produces.
type ThermalParams struct {
	// AmbientC is the heatsink's equilibrium temperature at zero
	// power, in degrees Celsius.
	AmbientC float64

	// RThermal is the junction-to-ambient thermal resistance in
	// degrees Celsius per watt: steady-state rise above ambient is
	// P * RThermal.
	RThermal float64

	// CThermal is the lumped heat capacity of die plus heatsink in
	// joules per degree Celsius; R*C is the thermal time constant.
	CThermal float64

	// TMaxC is the throttle trip point in degrees Celsius. Zero
	// disables the thermal model entirely.
	TMaxC float64

	// HysteresisC is how far below TMaxC the temperature must fall
	// before a throttled frequency ceiling is released, preventing
	// trip/release chatter right at the limit.
	HysteresisC float64
}

// Enabled reports whether the thermal model is active: a trip point is
// set and the RC pair is physical.
func (t ThermalParams) Enabled() bool {
	return t.TMaxC > 0 && t.RThermal > 0 && t.CThermal > 0
}

// SteadyC returns the equilibrium temperature at constant power p.
func (t ThermalParams) SteadyC(p units.Watts) float64 {
	return t.AmbientC + float64(p)*t.RThermal
}

// Step advances the heatsink node from tempC over dt seconds at
// constant power p, using the exact exponential solution of the RC
// equation (stable for any dt).
func (t ThermalParams) Step(tempC float64, p units.Watts, dt units.Seconds) float64 {
	if dt <= 0 || t.RThermal <= 0 || t.CThermal <= 0 {
		return tempC
	}
	steady := t.SteadyC(p)
	return steady + (tempC-steady)*math.Exp(-float64(dt)/(t.RThermal*t.CThermal))
}

// Validate checks the parameters' internal consistency. The zero value
// (model disabled) is valid.
func (t ThermalParams) Validate() error {
	if t.RThermal < 0 || t.CThermal < 0 {
		return fmt.Errorf("apu: negative thermal RC (R=%v, C=%v)", t.RThermal, t.CThermal)
	}
	if t.TMaxC < 0 {
		return fmt.Errorf("apu: negative TMax %v", t.TMaxC)
	}
	if t.HysteresisC < 0 {
		return fmt.Errorf("apu: negative thermal hysteresis %v", t.HysteresisC)
	}
	if t.TMaxC > 0 {
		if t.RThermal <= 0 || t.CThermal <= 0 {
			return fmt.Errorf("apu: TMax %v set but thermal RC incomplete (R=%v, C=%v)", t.TMaxC, t.RThermal, t.CThermal)
		}
		if t.TMaxC <= t.AmbientC {
			return fmt.Errorf("apu: TMax %v not above ambient %v", t.TMaxC, t.AmbientC)
		}
	}
	return nil
}
