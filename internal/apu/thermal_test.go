package apu

import (
	"math"
	"testing"

	"corun/internal/units"
)

// Table-driven step response of the RC model against hand-computed
// golden values. With R = 2 C/W, C = 5 J/C, Tamb = 25 C the time
// constant is R*C = 10 s and the steady state at 10 W is
// 25 + 10*2 = 45 C; from 25 C the response is
//
//	T(t) = 45 - 20 * exp(-t/10)
//
// so one tau reaches 45 - 20/e = 37.64241117657..., etc. The golden
// numbers below are computed from that closed form by hand, not by
// calling the code under test.
func TestThermalStepResponseGolden(t *testing.T) {
	p := ThermalParams{AmbientC: 25, RThermal: 2, CThermal: 5, TMaxC: 90}
	cases := []struct {
		name  string
		from  float64
		watts float64
		dt    float64
		want  float64
	}{
		{"one tau from ambient at 10W", 25, 10, 10, 37.642411176571153},
		{"half tau from ambient at 10W", 25, 10, 5, 32.869386805747332},
		{"two tau from ambient at 10W", 25, 10, 20, 42.293294335267746},
		{"five tau is steady state", 25, 10, 50, 44.865241060018291},
		{"cooling from above steady", 65, 10, 10, 52.357588823428847},
		{"zero power decays to ambient", 45, 0, 10, 32.357588823428847},
		{"zero dt is identity", 33.125, 10, 0, 33.125},
		{"already at steady state stays", 45, 10, 7, 45},
	}
	for _, tc := range cases {
		got := p.Step(tc.from, units.Watts(tc.watts), units.Seconds(tc.dt))
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: Step(%v, %vW, %vs) = %.12f, want %.12f",
				tc.name, tc.from, tc.watts, tc.dt, got, tc.want)
		}
	}
}

// Substep invariance: integrating in two half steps must land exactly
// where one full step does — the closed form is exact, not Euler.
func TestThermalStepComposes(t *testing.T) {
	p := ThermalParams{AmbientC: 25, RThermal: 2, CThermal: 5, TMaxC: 90}
	one := p.Step(25, 10, 8)
	two := p.Step(p.Step(25, 10, 4), 10, 4)
	if math.Abs(one-two) > 1e-9 {
		t.Errorf("one 8s step %v != two 4s steps %v", one, two)
	}
}

func TestThermalSteadyAndEnabled(t *testing.T) {
	p := ThermalParams{AmbientC: 30, RThermal: 1.6, CThermal: 20, TMaxC: 95}
	if got := p.SteadyC(10); math.Abs(got-46) > 1e-9 {
		t.Errorf("SteadyC(10W) = %v, want 46", got)
	}
	if !p.Enabled() {
		t.Error("configured model reports disabled")
	}
	if (ThermalParams{}).Enabled() {
		t.Error("zero model reports enabled")
	}
	// The default machine must not throttle at its own max power: the
	// trip point has to clear the worst-case steady state.
	cfg := DefaultConfig()
	maxP := cfg.PackagePower(cfg.MaxFreqIndex(CPU), cfg.MaxFreqIndex(GPU), 1, 1, true)
	if s := cfg.Thermal.SteadyC(maxP); s >= cfg.Thermal.TMaxC {
		t.Errorf("default machine steadies at %v C >= TMax %v C", s, cfg.Thermal.TMaxC)
	}
}

func TestThermalValidate(t *testing.T) {
	bad := []ThermalParams{
		{RThermal: -1},
		{TMaxC: -5},
		{TMaxC: 90, RThermal: 1}, // C missing
		{TMaxC: 20, AmbientC: 25, RThermal: 1, CThermal: 10}, // trip below ambient
		{TMaxC: 90, RThermal: 1, CThermal: 10, HysteresisC: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
	if err := (ThermalParams{}).Validate(); err != nil {
		t.Errorf("zero value (disabled) rejected: %v", err)
	}
	if err := DefaultConfig().Thermal.Validate(); err != nil {
		t.Errorf("default thermal rejected: %v", err)
	}
}
