// Package apu describes the simulated integrated CPU-GPU processor: its
// DVFS frequency tables, its package power model, and the shared-memory
// parameters every other layer builds upon.
//
// The default configuration mirrors the platform used in the paper, an
// Intel Ivy Bridge i7-3520M with an integrated HD Graphics 4000: 16 CPU
// frequency levels from 1.2 GHz to 3.6 GHz, 10 GPU frequency levels from
// 350 MHz to 1.25 GHz, a shared last-level cache, and a single shared
// memory system.
package apu

import (
	"fmt"
	"math"
	"sync/atomic"

	"corun/internal/units"
)

// Device identifies one of the two processor types on the die.
type Device int

// The two device kinds of the integrated processor.
const (
	CPU Device = iota
	GPU
)

// NumDevices is the number of device kinds on the die.
const NumDevices = 2

// String implements fmt.Stringer.
func (d Device) String() string {
	switch d {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	default:
		return fmt.Sprintf("Device(%d)", int(d))
	}
}

// Other returns the opposite device: CPU for GPU and vice versa.
func (d Device) Other() Device {
	if d == CPU {
		return GPU
	}
	return CPU
}

// Valid reports whether d names a real device.
func (d Device) Valid() bool { return d == CPU || d == GPU }

// Config is the full machine description. A Config is immutable after
// construction; all simulator layers share a single instance.
type Config struct {
	// CPUFreqs and GPUFreqs are the DVFS operating points in GHz,
	// sorted ascending. Frequency indices used throughout the code
	// index into these slices.
	CPUFreqs []units.GHz
	GPUFreqs []units.GHz

	// CPUCores is the number of CPU cores (OpenCL CPU kernels use all
	// of them; the host thread of a GPU job occupies a sliver of one).
	CPUCores int

	// LLCMB is the shared last-level cache size in MiB. It is not
	// modelled cycle-accurately; it scales the contention constants in
	// the memory-system model.
	LLCMB float64

	// IdlePower is the always-on package power (uncore, DRAM refresh,
	// leakage) in watts.
	IdlePower units.Watts

	// CPUPowerCoeff/CPUPowerExp parameterize the CPU dynamic power at
	// full activity: P = coeff * f^exp with f in GHz.
	CPUPowerCoeff float64
	CPUPowerExp   float64

	// GPUPowerCoeff/GPUPowerExp do the same for the GPU.
	GPUPowerCoeff float64
	GPUPowerExp   float64

	// StallPowerFloor is the fraction of dynamic power a device still
	// burns when fully stalled on memory (clock keeps toggling, the
	// pipeline doesn't retire).
	StallPowerFloor float64

	// HostPowerFrac is the fraction of CPU dynamic power consumed by
	// the host thread that feeds a running GPU kernel.
	HostPowerFrac float64

	// TDP is the nominal thermal design power in watts; power caps in
	// the experiments are well below it.
	TDP units.Watts

	// DomainCaps are the machine's RAPL-style per-plane power limits
	// (PP0 cores / PP1 iGPU / package). Zero planes are uncapped; the
	// dynamic package cap most layers take as a separate argument is
	// merged in via DomainCaps.WithPackage where both appear.
	DomainCaps DomainCaps

	// Thermal is the shared-heatsink RC model; the zero value disables
	// thermal simulation (see ThermalParams).
	Thermal ThermalParams

	// powMemo caches the f^exp evaluations behind DynPower, which sit
	// on the simulator's per-sample path (the governor alone evaluates
	// the curve several times per tick). Entries carry the inputs they
	// were computed from and are verified on every read, so a Config
	// mutated in place after first use falls back to the direct
	// computation instead of ever returning a stale value. The pointer
	// makes lazy initialization safe for planners running concurrently
	// (fleet nodes share one Config). Copying a Config by value is
	// already excluded by the "immutable, single shared instance"
	// contract above.
	powMemo atomic.Pointer[powMemoTable]
}

// WithThermal returns a new Config identical to c except for the
// thermal parameters. The fields are copied one by one — a whole-struct
// copy would carry the powMemo atomic along (vet copylocks) — and the
// copy starts with a cold memo, rebuilt lazily on first DynPower call.
func (c *Config) WithThermal(tp ThermalParams) *Config {
	out := &Config{
		CPUFreqs:        append([]units.GHz(nil), c.CPUFreqs...),
		GPUFreqs:        append([]units.GHz(nil), c.GPUFreqs...),
		CPUCores:        c.CPUCores,
		LLCMB:           c.LLCMB,
		IdlePower:       c.IdlePower,
		CPUPowerCoeff:   c.CPUPowerCoeff,
		CPUPowerExp:     c.CPUPowerExp,
		GPUPowerCoeff:   c.GPUPowerCoeff,
		GPUPowerExp:     c.GPUPowerExp,
		StallPowerFloor: c.StallPowerFloor,
		HostPowerFrac:   c.HostPowerFrac,
		TDP:             c.TDP,
		DomainCaps:      c.DomainCaps,
		Thermal:         tp,
	}
	return out
}

// powMemoTable is one immutable snapshot of the dynamic-power curve,
// indexed [device][level].
type powMemoTable [NumDevices][]powMemoEntry

// powMemoEntry is one memoized DynPower evaluation plus the exact
// inputs it was derived from.
type powMemoEntry struct {
	f, coeff, exp float64
	pow           float64
}

// DefaultConfig returns the i7-3520M-like machine used throughout the
// reproduction: 16 CPU levels 1.2-3.6 GHz, 10 GPU levels 0.35-1.25 GHz,
// a 4 MB shared LLC, and power constants calibrated so that the medium
// operating point (2.2 GHz CPU, 0.85 GHz GPU) lands near a 15-16 W cap,
// mirroring section VI.B of the paper.
func DefaultConfig() *Config {
	cfg := &Config{
		CPUFreqs:        MustFreqLadder(1.2, 3.6, 16),
		GPUFreqs:        MustFreqLadder(0.35, 1.25, 10),
		CPUCores:        4,
		LLCMB:           4,
		IdlePower:       2.0,
		CPUPowerCoeff:   1.794,
		CPUPowerExp:     1.8,
		GPUPowerCoeff:   7.698,
		GPUPowerExp:     1.6,
		StallPowerFloor: 0.60,
		HostPowerFrac:   0.06,
		TDP:             35,
		// A mobile part under a laptop heatsink: ~30 s time constant,
		// trip point high enough that the default machine only
		// throttles when an experiment lowers TMaxC (max package power
		// ~32 W steadies near 81 C, below the 95 C trip).
		Thermal: ThermalParams{
			AmbientC:    30,
			RThermal:    1.6,
			CThermal:    20,
			TMaxC:       95,
			HysteresisC: 3,
		},
	}
	return cfg
}

// KaveriConfig returns an AMD A10-7850K-like desktop APU: 4 CPU cores
// at 1.7-3.7 GHz, a GCN GPU at 0.35-0.72 GHz, and desktop-class power
// constants (95 W TDP). The paper notes that the co-run phenomena it
// studies appear "on both Intel and AMD" integrated processors; this
// preset lets experiments check that the pipeline's conclusions do not
// depend on the default machine.
func KaveriConfig() *Config {
	return &Config{
		CPUFreqs:        MustFreqLadder(1.7, 3.7, 11),
		GPUFreqs:        MustFreqLadder(0.35, 0.72, 8),
		CPUCores:        4,
		LLCMB:           4,
		IdlePower:       4.0,
		CPUPowerCoeff:   4.27,
		CPUPowerExp:     1.8,
		GPUPowerCoeff:   42.3,
		GPUPowerExp:     1.6,
		StallPowerFloor: 0.60,
		HostPowerFrac:   0.06,
		TDP:             95,
		// A desktop tower cooler: lower resistance, much more thermal
		// mass than the mobile default.
		Thermal: ThermalParams{
			AmbientC:    28,
			RThermal:    0.45,
			CThermal:    120,
			TMaxC:       90,
			HysteresisC: 3,
		},
	}
}

// FreqLadder builds n evenly spaced operating points from lo to hi GHz
// inclusive, sorted ascending. Degenerate requests (n < 2, a
// non-ascending range, or non-finite endpoints) are rejected here
// rather than surfacing later as Validate's confusing "table not
// ascending" on a config the caller never meant to build.
func FreqLadder(lo, hi float64, n int) ([]units.GHz, error) {
	if n < 2 {
		return nil, fmt.Errorf("apu: frequency ladder needs at least 2 points, got %d", n)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("apu: non-finite frequency ladder bounds [%v, %v]", lo, hi)
	}
	if lo >= hi {
		return nil, fmt.Errorf("apu: frequency ladder bounds not ascending: lo %v >= hi %v", lo, hi)
	}
	out := make([]units.GHz, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = units.GHz(lo + step*float64(i))
	}
	return out, nil
}

// MustFreqLadder is FreqLadder for compiled-in presets, panicking on a
// degenerate range.
func MustFreqLadder(lo, hi float64, n int) []units.GHz {
	fs, err := FreqLadder(lo, hi, n)
	if err != nil {
		panic(err)
	}
	return fs
}

// Validate checks internal consistency of the configuration.
func (c *Config) Validate() error {
	if len(c.CPUFreqs) == 0 || len(c.GPUFreqs) == 0 {
		return fmt.Errorf("apu: empty frequency table")
	}
	for d := CPU; d <= GPU; d++ {
		fs := c.Freqs(d)
		for i := 1; i < len(fs); i++ {
			if fs[i] <= fs[i-1] {
				return fmt.Errorf("apu: %v frequency table not ascending at index %d", d, i)
			}
		}
		if fs[0] <= 0 {
			return fmt.Errorf("apu: %v frequencies must be positive", d)
		}
	}
	if c.CPUCores <= 0 {
		return fmt.Errorf("apu: CPUCores must be positive, got %d", c.CPUCores)
	}
	if c.IdlePower < 0 {
		return fmt.Errorf("apu: negative idle power %v", c.IdlePower)
	}
	if c.CPUPowerCoeff <= 0 || c.GPUPowerCoeff <= 0 {
		return fmt.Errorf("apu: power coefficients must be positive")
	}
	if c.StallPowerFloor < 0 || c.StallPowerFloor > 1 {
		return fmt.Errorf("apu: StallPowerFloor %v outside [0,1]", c.StallPowerFloor)
	}
	if c.HostPowerFrac < 0 || c.HostPowerFrac > 1 {
		return fmt.Errorf("apu: HostPowerFrac %v outside [0,1]", c.HostPowerFrac)
	}
	if err := c.Thermal.Validate(); err != nil {
		return err
	}
	if err := c.CheckCaps(0, c.DomainCaps); err != nil {
		return err
	}
	return nil
}

// Freqs returns the frequency table of the given device.
func (c *Config) Freqs(d Device) []units.GHz {
	if d == CPU {
		return c.CPUFreqs
	}
	return c.GPUFreqs
}

// NumFreqs returns the number of DVFS levels on the given device.
func (c *Config) NumFreqs(d Device) int { return len(c.Freqs(d)) }

// MaxFreqIndex returns the index of the highest operating point of d.
func (c *Config) MaxFreqIndex(d Device) int { return c.NumFreqs(d) - 1 }

// Freq returns the clock of device d at level idx. It panics on an
// out-of-range index: frequency indices are internal invariants, not
// user input.
func (c *Config) Freq(d Device, idx int) units.GHz {
	fs := c.Freqs(d)
	if idx < 0 || idx >= len(fs) {
		panic(fmt.Sprintf("apu: %v frequency index %d out of range [0,%d)", d, idx, len(fs)))
	}
	return fs[idx]
}

// ClosestFreqIndex returns the index of the operating point of d whose
// clock is nearest to ghz, or -1 when ghz is NaN (every distance
// comparison against NaN is false, which used to fall through to a
// silent index 0 — the lowest operating point — masking bad input).
func (c *Config) ClosestFreqIndex(d Device, ghz units.GHz) int {
	if math.IsNaN(float64(ghz)) {
		return -1
	}
	fs := c.Freqs(d)
	best, bestDist := 0, math.Inf(1)
	for i, f := range fs {
		if dist := math.Abs(float64(f - ghz)); dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}

// DynPower returns the full-activity dynamic power of device d at
// frequency level idx. The power curve P = coeff * f^exp is memoized
// per (device, level) — the levels are a small discrete ladder, and
// this evaluation dominates the simulator's sample loop otherwise.
func (c *Config) DynPower(d Device, idx int) units.Watts {
	f := float64(c.Freq(d, idx))
	coeff, exp := c.GPUPowerCoeff, c.GPUPowerExp
	di := 1
	if d == CPU {
		coeff, exp = c.CPUPowerCoeff, c.CPUPowerExp
		di = 0
	}
	t := c.powMemo.Load()
	if t == nil {
		t = c.buildPowMemo()
		c.powMemo.Store(t)
	}
	if es := t[di]; idx >= 0 && idx < len(es) {
		if e := es[idx]; e.f == f && e.coeff == coeff && e.exp == exp {
			return units.Watts(e.pow)
		}
	}
	return units.Watts(coeff * math.Pow(f, exp))
}

// buildPowMemo evaluates the full dynamic-power ladder of both devices
// with exactly the arithmetic DynPower's direct path uses, so the
// memoized and unmemoized answers are bit-for-bit identical.
func (c *Config) buildPowMemo() *powMemoTable {
	var t powMemoTable
	for di, d := range [NumDevices]Device{CPU, GPU} {
		coeff, exp := c.CPUPowerCoeff, c.CPUPowerExp
		if d == GPU {
			coeff, exp = c.GPUPowerCoeff, c.GPUPowerExp
		}
		fs := c.Freqs(d)
		es := make([]powMemoEntry, len(fs))
		for i, fq := range fs {
			f := float64(fq)
			es[i] = powMemoEntry{f: f, coeff: coeff, exp: exp, pow: coeff * math.Pow(f, exp)}
		}
		t[di] = es
	}
	return &t
}

// ActivityPower returns the dynamic power of device d at level idx when
// running at the given utilization in [0,1]. A fully stalled device
// still burns StallPowerFloor of its dynamic power; an idle device
// (util < 0) burns nothing.
func (c *Config) ActivityPower(d Device, idx int, util float64) units.Watts {
	if util < 0 {
		return 0
	}
	util = units.Clamp(util, 0, 1)
	scale := c.StallPowerFloor + (1-c.StallPowerFloor)*util
	return units.Watts(float64(c.DynPower(d, idx)) * scale)
}

// HostPower returns the CPU power drawn by the host thread that feeds a
// GPU kernel when the CPU is clocked at level cpuIdx.
func (c *Config) HostPower(cpuIdx int) units.Watts {
	return units.Watts(float64(c.DynPower(CPU, cpuIdx)) * c.HostPowerFrac)
}

// PackagePower composes total package power from the per-device
// utilizations. A utilization below zero means the device is idle (not
// merely stalled). gpuBusy additionally charges the host-thread power.
func (c *Config) PackagePower(cpuIdx, gpuIdx int, cpuUtil, gpuUtil float64, gpuBusy bool) units.Watts {
	p := c.IdlePower
	if cpuUtil >= 0 {
		p += c.ActivityPower(CPU, cpuIdx, cpuUtil)
	}
	if gpuUtil >= 0 {
		p += c.ActivityPower(GPU, gpuIdx, gpuUtil)
	}
	if gpuBusy {
		p += c.HostPower(cpuIdx)
	}
	return p
}

// MinFreqCap returns the lowest package power achievable with both
// devices active, i.e. both at their lowest operating point, full
// stalls. Caps below this are infeasible for co-running.
func (c *Config) MinFreqCap() units.Watts {
	return c.PackagePower(0, 0, 0, 0, true)
}
