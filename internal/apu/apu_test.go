package apu

import (
	"math"
	"testing"
	"testing/quick"

	"corun/internal/units"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultFreqTables(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.NumFreqs(CPU); got != 16 {
		t.Errorf("CPU levels = %d, want 16", got)
	}
	if got := cfg.NumFreqs(GPU); got != 10 {
		t.Errorf("GPU levels = %d, want 10", got)
	}
	if got := cfg.Freq(CPU, 0); math.Abs(float64(got)-1.2) > 1e-9 {
		t.Errorf("lowest CPU freq = %v, want 1.2 GHz", got)
	}
	if got := cfg.Freq(CPU, cfg.MaxFreqIndex(CPU)); math.Abs(float64(got)-3.6) > 1e-9 {
		t.Errorf("highest CPU freq = %v, want 3.6 GHz", got)
	}
	if got := cfg.Freq(GPU, 0); math.Abs(float64(got)-0.35) > 1e-9 {
		t.Errorf("lowest GPU freq = %v, want 0.35 GHz", got)
	}
	if got := cfg.Freq(GPU, cfg.MaxFreqIndex(GPU)); math.Abs(float64(got)-1.25) > 1e-9 {
		t.Errorf("highest GPU freq = %v, want 1.25 GHz", got)
	}
}

func TestKaveriConfigValid(t *testing.T) {
	cfg := KaveriConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Kaveri config invalid: %v", err)
	}
	if got := cfg.NumFreqs(CPU); got != 11 {
		t.Errorf("Kaveri CPU levels = %d, want 11", got)
	}
	// A desktop part: max power well above the mobile default but
	// within its own TDP.
	p := cfg.PackagePower(cfg.MaxFreqIndex(CPU), cfg.MaxFreqIndex(GPU), 1, 1, true)
	if p < 35 || p > cfg.TDP {
		t.Errorf("Kaveri max power %v outside (35, TDP=%v)", p, cfg.TDP)
	}
	if cfg.MinFreqCap() >= 45 {
		t.Errorf("Kaveri min co-run power %v should allow a 45 W cap", cfg.MinFreqCap())
	}
}

func TestFreqLadderMonotonic(t *testing.T) {
	fs, err := FreqLadder(0.35, 1.25, 10)
	if err != nil {
		t.Fatalf("FreqLadder: %v", err)
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] <= fs[i-1] {
			t.Fatalf("ladder not ascending at %d: %v <= %v", i, fs[i], fs[i-1])
		}
	}
}

// Degenerate ranges must fail at construction, not survive as a
// descending or single-point table that Validate rejects much later
// with an unrelated-sounding error.
func TestFreqLadderRejectsDegenerate(t *testing.T) {
	cases := []struct {
		name   string
		lo, hi float64
		n      int
	}{
		{"single point", 2.0, 4.0, 1},
		{"zero points", 2.0, 4.0, 0},
		{"negative points", 2.0, 4.0, -3},
		{"descending", 4.0, 2.0, 8},
		{"flat", 2.0, 2.0, 8},
		{"nan lo", math.NaN(), 4.0, 8},
		{"inf hi", 2.0, math.Inf(1), 8},
	}
	for _, tc := range cases {
		if fs, err := FreqLadder(tc.lo, tc.hi, tc.n); err == nil {
			t.Errorf("%s: FreqLadder(%v, %v, %d) = %v, want error", tc.name, tc.lo, tc.hi, tc.n, fs)
		}
	}
}

func TestMustFreqLadderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFreqLadder on a descending range did not panic")
		}
	}()
	MustFreqLadder(4.0, 2.0, 8)
}

func TestDeviceString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Error("device names wrong")
	}
	if Device(7).String() != "Device(7)" {
		t.Error("unknown device name wrong")
	}
}

func TestDeviceOther(t *testing.T) {
	if CPU.Other() != GPU || GPU.Other() != CPU {
		t.Error("Other() does not flip device")
	}
}

func TestDeviceValid(t *testing.T) {
	if !CPU.Valid() || !GPU.Valid() {
		t.Error("real devices reported invalid")
	}
	if Device(3).Valid() {
		t.Error("bogus device reported valid")
	}
}

func TestDynPowerMonotonic(t *testing.T) {
	cfg := DefaultConfig()
	for d := CPU; d <= GPU; d++ {
		prev := units.Watts(0)
		for i := 0; i < cfg.NumFreqs(d); i++ {
			p := cfg.DynPower(d, i)
			if p <= prev {
				t.Fatalf("%v power not increasing at level %d: %v <= %v", d, i, p, prev)
			}
			prev = p
		}
	}
}

// The calibrated power curve should place the paper's medium operating
// point (2.2 GHz CPU, 0.85 GHz GPU) near the 15-16 W cap region of
// section VI.B.
func TestMediumOperatingPointNearCap(t *testing.T) {
	cfg := DefaultConfig()
	ci := cfg.ClosestFreqIndex(CPU, 2.2)
	gi := cfg.ClosestFreqIndex(GPU, 0.85)
	p := cfg.PackagePower(ci, gi, 1, 1, true)
	if p < 13 || p > 17.5 {
		t.Errorf("medium operating point power = %v, want within [13, 17.5] W", p)
	}
}

// Max-frequency package power must exceed the experiment caps (15-16 W)
// so that the cap is actually binding, but stay within a mobile-part
// envelope (well under TDP + slack).
func TestMaxPowerExceedsExperimentCaps(t *testing.T) {
	cfg := DefaultConfig()
	p := cfg.PackagePower(cfg.MaxFreqIndex(CPU), cfg.MaxFreqIndex(GPU), 1, 1, true)
	if p <= 16 {
		t.Errorf("max package power %v should exceed the 16 W cap", p)
	}
	if p > cfg.TDP {
		t.Errorf("max package power %v exceeds TDP %v", p, cfg.TDP)
	}
}

// Co-running must be feasible at the lowest operating points under the
// paper's 15 W cap, otherwise the cap experiments are degenerate.
func TestMinFreqCapBelow15W(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.MinFreqCap(); got >= 15 {
		t.Errorf("minimum co-run power = %v, want < 15 W", got)
	}
}

func TestActivityPowerBounds(t *testing.T) {
	cfg := DefaultConfig()
	idx := cfg.MaxFreqIndex(CPU)
	full := cfg.ActivityPower(CPU, idx, 1)
	stalled := cfg.ActivityPower(CPU, idx, 0)
	idle := cfg.ActivityPower(CPU, idx, -1)
	if idle != 0 {
		t.Errorf("idle power = %v, want 0", idle)
	}
	if stalled >= full {
		t.Errorf("stalled power %v should be below full power %v", stalled, full)
	}
	wantStalled := units.Watts(float64(full) * cfg.StallPowerFloor)
	if math.Abs(float64(stalled-wantStalled)) > 1e-9 {
		t.Errorf("stalled power = %v, want %v", stalled, wantStalled)
	}
	// Utilization above 1 is clamped.
	if got := cfg.ActivityPower(CPU, idx, 2); got != full {
		t.Errorf("over-utilization power = %v, want clamped to %v", got, full)
	}
}

func TestHostPowerSmall(t *testing.T) {
	cfg := DefaultConfig()
	h := cfg.HostPower(cfg.MaxFreqIndex(CPU))
	d := cfg.DynPower(CPU, cfg.MaxFreqIndex(CPU))
	if h <= 0 || float64(h) > 0.2*float64(d) {
		t.Errorf("host power %v not a small positive fraction of %v", h, d)
	}
}

func TestClosestFreqIndex(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.ClosestFreqIndex(CPU, 1.2); got != 0 {
		t.Errorf("closest to 1.2 GHz = %d, want 0", got)
	}
	if got := cfg.ClosestFreqIndex(CPU, 10); got != cfg.MaxFreqIndex(CPU) {
		t.Errorf("closest to 10 GHz = %d, want max index", got)
	}
	if got := cfg.ClosestFreqIndex(GPU, 0.86); got != cfg.ClosestFreqIndex(GPU, 0.84) {
		t.Errorf("0.86 and 0.84 GHz should map to the same 0.85 level")
	}
	// NaN used to lose every distance comparison and silently resolve
	// to index 0; it must be rejected instead.
	if got := cfg.ClosestFreqIndex(CPU, units.GHz(math.NaN())); got != -1 {
		t.Errorf("ClosestFreqIndex(NaN) = %d, want -1", got)
	}
}

func TestFreqPanicsOutOfRange(t *testing.T) {
	cfg := DefaultConfig()
	defer func() {
		if recover() == nil {
			t.Error("Freq on out-of-range index did not panic")
		}
	}()
	cfg.Freq(CPU, 99)
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"empty cpu freqs", func(c *Config) { c.CPUFreqs = nil }},
		{"non-ascending", func(c *Config) { c.CPUFreqs[3] = c.CPUFreqs[2] }},
		{"zero cores", func(c *Config) { c.CPUCores = 0 }},
		{"negative idle", func(c *Config) { c.IdlePower = -1 }},
		{"zero coeff", func(c *Config) { c.GPUPowerCoeff = 0 }},
		{"bad stall floor", func(c *Config) { c.StallPowerFloor = 1.5 }},
		{"bad host frac", func(c *Config) { c.HostPowerFrac = -0.1 }},
		{"non-positive freq", func(c *Config) { c.GPUFreqs[0] = 0; c.GPUFreqs[1] = 0.1 }},
	}
	for _, m := range mutations {
		cfg := DefaultConfig()
		m.mut(cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken config", m.name)
		}
	}
}

// Property: package power decomposes additively and is monotone in
// utilization for any frequency pair.
func TestPackagePowerProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(ciRaw, giRaw uint8, uRaw, vRaw uint16) bool {
		ci := int(ciRaw) % cfg.NumFreqs(CPU)
		gi := int(giRaw) % cfg.NumFreqs(GPU)
		u := float64(uRaw) / 65535
		v := float64(vRaw) / 65535
		lo := cfg.PackagePower(ci, gi, 0, 0, false)
		p := cfg.PackagePower(ci, gi, u, v, false)
		hi := cfg.PackagePower(ci, gi, 1, 1, false)
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: higher frequency never costs less power at equal activity.
func TestPowerMonotoneInFrequencyProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(aRaw, bRaw uint8, uRaw uint16) bool {
		for _, d := range []Device{CPU, GPU} {
			a := int(aRaw) % cfg.NumFreqs(d)
			b := int(bRaw) % cfg.NumFreqs(d)
			if a > b {
				a, b = b, a
			}
			u := float64(uRaw) / 65535
			if cfg.ActivityPower(d, a, u) > cfg.ActivityPower(d, b, u)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// DynPower's memo must be invisible: bit-for-bit equal to the direct
// formula on first and repeated reads, and never stale after the
// Config is mutated in place (the memo verifies its inputs per read).
func TestDynPowerMemoTransparent(t *testing.T) {
	cfg := DefaultConfig()
	direct := func(d Device, idx int) units.Watts {
		f := float64(cfg.Freq(d, idx))
		if d == CPU {
			return units.Watts(cfg.CPUPowerCoeff * math.Pow(f, cfg.CPUPowerExp))
		}
		return units.Watts(cfg.GPUPowerCoeff * math.Pow(f, cfg.GPUPowerExp))
	}
	for _, d := range []Device{CPU, GPU} {
		for i := 0; i < cfg.NumFreqs(d); i++ {
			for rep := 0; rep < 2; rep++ {
				if got, want := cfg.DynPower(d, i), direct(d, i); got != want {
					t.Fatalf("%v level %d read %d: memoized %v != direct %v", d, i, rep, got, want)
				}
			}
		}
	}
	// In-place mutations of every memo input: the next read must track.
	cfg.CPUFreqs[3] *= 1.5
	cfg.GPUPowerCoeff *= 2
	cfg.CPUPowerExp = 2.1
	for _, d := range []Device{CPU, GPU} {
		for i := 0; i < cfg.NumFreqs(d); i++ {
			if got, want := cfg.DynPower(d, i), direct(d, i); got != want {
				t.Fatalf("%v level %d after mutation: memoized %v != direct %v", d, i, got, want)
			}
		}
	}
}
