package apu

import (
	"fmt"

	"corun/internal/units"
)

// Domain identifies one RAPL-style power plane of the package. The
// split mirrors what integrated processors actually expose: PP0 meters
// the CPU cores, PP1 the integrated GPU, and Package the whole die
// including the uncore (which neither plane meters).
type Domain int

// The power planes of the integrated package.
const (
	PP0     Domain = iota // CPU core plane
	PP1                   // integrated-GPU plane
	Package               // whole package (PP0 + PP1 + uncore)
)

// NumDomains is the number of power planes, Package included.
const NumDomains = 3

// String implements fmt.Stringer with the lowercase names used in
// metric labels and API fields.
func (d Domain) String() string {
	switch d {
	case PP0:
		return "pp0"
	case PP1:
		return "pp1"
	case Package:
		return "package"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// Valid reports whether d names a real power plane.
func (d Domain) Valid() bool { return d >= PP0 && d <= Package }

// DomainCaps is a set of per-plane power limits. Zero (or negative)
// means the plane is uncapped; the package-level cap usually lives
// elsewhere (corun.WithPowerCap, server -cap) but may be carried here
// too when a caller wants all three in one value.
type DomainCaps struct {
	PP0     units.Watts `json:"pp0_watts,omitempty"`
	PP1     units.Watts `json:"pp1_watts,omitempty"`
	Package units.Watts `json:"package_watts,omitempty"`
}

// Any reports whether at least one plane is capped.
func (dc DomainCaps) Any() bool { return dc.PP0 > 0 || dc.PP1 > 0 || dc.Package > 0 }

// Cap returns the configured limit for one plane (0 = uncapped).
func (dc DomainCaps) Cap(d Domain) units.Watts {
	switch d {
	case PP0:
		return dc.PP0
	case PP1:
		return dc.PP1
	case Package:
		return dc.Package
	default:
		return 0
	}
}

// WithPackage returns the caps with the package plane set to the
// tighter of the existing package cap and pkg — the merge used when a
// legacy single-cap option meets DomainCaps.
func (dc DomainCaps) WithPackage(pkg units.Watts) DomainCaps {
	if pkg > 0 && (dc.Package <= 0 || pkg < dc.Package) {
		dc.Package = pkg
	}
	return dc
}

// Allows reports whether the split satisfies every configured cap.
func (dc DomainCaps) Allows(s PowerSplit) bool {
	if dc.PP0 > 0 && s.PP0 > dc.PP0 {
		return false
	}
	if dc.PP1 > 0 && s.PP1 > dc.PP1 {
		return false
	}
	if dc.Package > 0 && s.Package() > dc.Package {
		return false
	}
	return true
}

// Binding returns the plane whose cap the split loads most heavily
// (the largest watts/cap ratio among configured caps), with that
// ratio. ConstraintNone when no plane is capped.
func (dc DomainCaps) Binding(s PowerSplit) (Constraint, float64) {
	best, ratio := ConstraintNone, 0.0
	check := func(c Constraint, w, cap units.Watts) {
		if cap <= 0 {
			return
		}
		if r := float64(w) / float64(cap); r > ratio {
			best, ratio = c, r
		}
	}
	check(ConstraintPP0, s.PP0, dc.PP0)
	check(ConstraintPP1, s.PP1, dc.PP1)
	check(ConstraintPackage, s.Package(), dc.Package)
	return best, ratio
}

// PowerSplit is one package-power sample broken down by plane. Uncore
// is the residual neither plane meters (idle/leakage power here).
type PowerSplit struct {
	PP0    units.Watts
	PP1    units.Watts
	Uncore units.Watts
}

// Package returns the total package power of the split.
func (s PowerSplit) Package() units.Watts { return s.PP0 + s.PP1 + s.Uncore }

// Domain returns the split's power on one plane.
func (s PowerSplit) Domain(d Domain) units.Watts {
	switch d {
	case PP0:
		return s.PP0
	case PP1:
		return s.PP1
	case Package:
		return s.Package()
	default:
		return 0
	}
}

// Constraint names whichever limit binds a scheduling decision: one of
// the power planes, the thermal throttle, or nothing.
type Constraint int

// The constraints a plan or a simulation can be bound by.
const (
	ConstraintNone Constraint = iota
	ConstraintPP0
	ConstraintPP1
	ConstraintPackage
	ConstraintThermal
)

// String implements fmt.Stringer with the lowercase names used in
// metric labels and bench reports.
func (c Constraint) String() string {
	switch c {
	case ConstraintNone:
		return "none"
	case ConstraintPP0:
		return "pp0"
	case ConstraintPP1:
		return "pp1"
	case ConstraintPackage:
		return "package"
	case ConstraintThermal:
		return "thermal"
	default:
		return fmt.Sprintf("Constraint(%d)", int(c))
	}
}

// SplitPower is PackagePower broken down by plane: PP0 carries the CPU
// activity plus the host thread feeding a busy GPU (the host burns CPU
// cycles, so the core plane meters it), PP1 the GPU activity, Uncore
// the always-on idle power. The sum equals PackagePower with the same
// arguments up to floating-point association.
func (c *Config) SplitPower(cpuIdx, gpuIdx int, cpuUtil, gpuUtil float64, gpuBusy bool) PowerSplit {
	s := PowerSplit{Uncore: c.IdlePower}
	if cpuUtil >= 0 {
		s.PP0 += c.ActivityPower(CPU, cpuIdx, cpuUtil)
	}
	if gpuUtil >= 0 {
		s.PP1 += c.ActivityPower(GPU, gpuIdx, gpuUtil)
	}
	if gpuBusy {
		s.PP0 += c.HostPower(cpuIdx)
	}
	return s
}

// MinCoRunSplit returns the per-plane power floor with both devices
// active at their lowest operating points, fully stalled — the
// domain-level analogue of MinFreqCap.
func (c *Config) MinCoRunSplit() PowerSplit {
	return c.SplitPower(0, 0, 0, 0, true)
}

// CheckCaps validates a package cap plus per-plane caps against the
// machine: no cap may be negative, and no configured cap may sit below
// the corresponding minimum co-run power (lowest operating points,
// full stalls) — such a cap makes co-running infeasible outright.
// Every entry point that accepts caps (corun facade, server API,
// journal recovery) funnels through this check so the error text is
// identical everywhere.
func (c *Config) CheckCaps(pkg units.Watts, dc DomainCaps) error {
	if pkg < 0 {
		return fmt.Errorf("apu: negative power cap %v", pkg)
	}
	if pkg > 0 && pkg < c.MinFreqCap() {
		return fmt.Errorf("apu: cap %v below the machine's minimum co-run power %v", pkg, c.MinFreqCap())
	}
	min := c.MinCoRunSplit()
	for _, pl := range []struct {
		d     Domain
		cap   units.Watts
		floor units.Watts
	}{
		{PP0, dc.PP0, min.PP0},
		{PP1, dc.PP1, min.PP1},
		{Package, dc.Package, min.Package()},
	} {
		if pl.cap < 0 {
			return fmt.Errorf("apu: negative %v power cap %v", pl.d, pl.cap)
		}
		if pl.cap > 0 && pl.cap < pl.floor {
			return fmt.Errorf("apu: %v cap %v below the machine's minimum %v co-run power %v",
				pl.d, pl.cap, pl.d, pl.floor)
		}
	}
	return nil
}
