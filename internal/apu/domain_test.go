package apu

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"corun/internal/units"
)

// Property: the per-plane split sums to PackagePower for any operating
// point, utilization, and busy flag (up to float association).
func TestSplitPowerSumsToPackage(t *testing.T) {
	cfg := DefaultConfig()
	f := func(ciRaw, giRaw uint8, uRaw, vRaw uint16, busy bool) bool {
		ci := int(ciRaw) % cfg.NumFreqs(CPU)
		gi := int(giRaw) % cfg.NumFreqs(GPU)
		// Map the raw fuzz into [-0.5, 1): negative means idle.
		u := float64(uRaw)/65535*1.5 - 0.5
		v := float64(vRaw)/65535*1.5 - 0.5
		s := cfg.SplitPower(ci, gi, u, v, busy)
		pkg := cfg.PackagePower(ci, gi, u, v, busy)
		return math.Abs(float64(s.Package()-pkg)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitPowerPlanes(t *testing.T) {
	cfg := DefaultConfig()
	ci, gi := 8, 9
	s := cfg.SplitPower(ci, gi, 1, 1, true)
	if s.Uncore != cfg.IdlePower {
		t.Errorf("uncore = %v, want idle power %v", s.Uncore, cfg.IdlePower)
	}
	wantPP0 := cfg.ActivityPower(CPU, ci, 1) + cfg.HostPower(ci)
	if math.Abs(float64(s.PP0-wantPP0)) > 1e-9 {
		t.Errorf("pp0 = %v, want activity+host %v", s.PP0, wantPP0)
	}
	if got, want := s.PP1, cfg.ActivityPower(GPU, gi, 1); got != want {
		t.Errorf("pp1 = %v, want %v", got, want)
	}
	// An idle GPU with no host thread leaves PP1 at zero.
	idle := cfg.SplitPower(ci, gi, 1, -1, false)
	if idle.PP1 != 0 {
		t.Errorf("idle GPU pp1 = %v, want 0", idle.PP1)
	}
	// Domain accessors agree with the fields.
	if s.Domain(PP0) != s.PP0 || s.Domain(PP1) != s.PP1 || s.Domain(Package) != s.Package() {
		t.Error("Domain accessor disagrees with the split fields")
	}
}

func TestDomainString(t *testing.T) {
	for d, want := range map[Domain]string{PP0: "pp0", PP1: "pp1", Package: "package"} {
		if d.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(d), d.String(), want)
		}
	}
	for c, want := range map[Constraint]string{
		ConstraintNone: "none", ConstraintPP0: "pp0", ConstraintPP1: "pp1",
		ConstraintPackage: "package", ConstraintThermal: "thermal",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestDomainCapsAnyAndAllows(t *testing.T) {
	if (DomainCaps{}).Any() {
		t.Error("zero caps report Any")
	}
	dc := DomainCaps{PP0: 10, PP1: 5}
	if !dc.Any() {
		t.Error("configured caps report !Any")
	}
	if !dc.Allows(PowerSplit{PP0: 10, PP1: 5, Uncore: 100}) {
		t.Error("uncapped package plane rejected a split")
	}
	if dc.Allows(PowerSplit{PP0: 10.1, PP1: 1}) {
		t.Error("pp0 excess allowed")
	}
	if dc.Allows(PowerSplit{PP0: 1, PP1: 5.1}) {
		t.Error("pp1 excess allowed")
	}
	full := dc.WithPackage(12)
	if full.Package != 12 {
		t.Errorf("WithPackage = %v, want 12", full.Package)
	}
	if full.Allows(PowerSplit{PP0: 8, PP1: 3, Uncore: 2}) {
		t.Error("package excess allowed after WithPackage")
	}
	// WithPackage keeps the tighter of the two package caps.
	if got := (DomainCaps{Package: 9}).WithPackage(12).Package; got != 9 {
		t.Errorf("WithPackage(12) over a 9 W cap = %v, want 9", got)
	}
}

func TestDomainCapsBinding(t *testing.T) {
	dc := DomainCaps{PP0: 10, PP1: 10, Package: 100}
	c, r := dc.Binding(PowerSplit{PP0: 9, PP1: 4, Uncore: 2})
	if c != ConstraintPP0 || math.Abs(r-0.9) > 1e-12 {
		t.Errorf("binding = %v@%v, want pp0@0.9", c, r)
	}
	c, _ = dc.Binding(PowerSplit{PP0: 1, PP1: 9.5, Uncore: 2})
	if c != ConstraintPP1 {
		t.Errorf("binding = %v, want pp1", c)
	}
	c, _ = (DomainCaps{Package: 10}).Binding(PowerSplit{PP0: 4, PP1: 4, Uncore: 3})
	if c != ConstraintPackage {
		t.Errorf("binding = %v, want package", c)
	}
	if c, r := (DomainCaps{}).Binding(PowerSplit{PP0: 4}); c != ConstraintNone || r != 0 {
		t.Errorf("uncapped binding = %v@%v, want none@0", c, r)
	}
}

// CheckCaps is the single feasibility check every cap entry point
// (corun facade, server API) funnels through; pin its behaviour and
// the neutral "apu:" error text both surfaces return verbatim.
func TestCheckCaps(t *testing.T) {
	cfg := DefaultConfig()
	min := cfg.MinCoRunSplit()
	cases := []struct {
		name    string
		pkg     units.Watts
		dc      DomainCaps
		wantErr string
	}{
		{"uncapped", 0, DomainCaps{}, ""},
		{"feasible package", 15, DomainCaps{}, ""},
		{"feasible domains", 0, DomainCaps{PP0: 5, PP1: 5}, ""},
		{"negative package", -1, DomainCaps{}, "apu: negative power cap"},
		{"package below floor", cfg.MinFreqCap() / 2, DomainCaps{}, "below the machine's minimum co-run power"},
		{"negative pp0", 0, DomainCaps{PP0: -2}, "apu: negative pp0 power cap"},
		{"pp0 below floor", 0, DomainCaps{PP0: min.PP0 / 2}, "minimum pp0 co-run power"},
		{"pp1 below floor", 0, DomainCaps{PP1: min.PP1 / 2}, "minimum pp1 co-run power"},
		{"package plane below floor", 0, DomainCaps{Package: cfg.MinFreqCap() / 2}, "minimum package co-run power"},
	}
	for _, tc := range cases {
		err := cfg.CheckCaps(tc.pkg, tc.dc)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// MinCoRunSplit must agree with MinFreqCap: same operating point, same
// total.
func TestMinCoRunSplitMatchesMinFreqCap(t *testing.T) {
	cfg := DefaultConfig()
	if got, want := cfg.MinCoRunSplit().Package(), cfg.MinFreqCap(); math.Abs(float64(got-want)) > 1e-9 {
		t.Errorf("MinCoRunSplit total %v != MinFreqCap %v", got, want)
	}
}
