package policy_test

// Fuzz target for registry policy-name parsing — the daemon's
// user-facing string surface (POST /v1/policy bodies, -policy flags).
// The seed corpus covers every canonical name, every alias, spelling
// variants, and near-misses; additional literal seeds live in
// testdata/fuzz/FuzzParse. Properties: Parse never panics, accepted
// spellings resolve to a registered canonical name and re-parse
// identically under the case/whitespace normalization, and rejections
// list every valid policy.

import (
	"strings"
	"testing"

	"corun/internal/policy"
)

func FuzzParse(f *testing.F) {
	for _, info := range policy.List() {
		f.Add(info.Name)
		f.Add(strings.ToUpper(info.Name))
		f.Add("  " + info.Name + "\t")
		for _, a := range info.Aliases {
			f.Add(a)
		}
	}
	f.Add("")
	f.Add("   ")
	f.Add("hcs++")
	f.Add("hcs plus")
	f.Add("default-gpu") // dispatcher baseline name, not a planned policy
	f.Add("Optimal\n")

	f.Fuzz(func(t *testing.T, name string) {
		p, err := policy.Parse(name)
		if err != nil {
			if p != nil {
				t.Fatalf("Parse(%q) returned a policy alongside an error", name)
			}
			for _, valid := range policy.Names() {
				if !strings.Contains(err.Error(), valid) {
					t.Errorf("rejection of %q does not list valid policy %q", name, valid)
				}
			}
			return
		}
		canon := p.Name()
		registered := false
		for _, n := range policy.Names() {
			registered = registered || n == canon
		}
		if !registered {
			t.Fatalf("Parse(%q) resolved to unregistered policy %q", name, canon)
		}
		// Canonical names round-trip through Parse and Canonical.
		if again, err := policy.Parse(canon); err != nil || again.Name() != canon {
			t.Errorf("canonical %q does not round-trip: %v", canon, err)
		}
		if c, err := policy.Canonical(name); err != nil || c != canon {
			t.Errorf("Canonical(%q) = %q, %v, want %q", name, c, err, canon)
		}
		// Normalization is idempotent over case and whitespace (guard
		// against the rare Unicode spellings whose upper-case form
		// lower-cases differently).
		variant := " " + strings.ToUpper(name) + "\t"
		if strings.ToLower(strings.ToUpper(name)) == strings.ToLower(name) {
			if v, err := policy.Parse(variant); err != nil || v.Name() != canon {
				t.Errorf("Parse(%q) = %v, want policy %q", variant, err, canon)
			}
		}
	})
}
