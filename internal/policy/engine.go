package policy

import (
	"fmt"

	"corun/internal/core"
	"corun/internal/fault"
	"corun/internal/units"
)

// Engine is the shared scheduling entry point: one prepared context,
// any registered policy by name. It is safe for concurrent use — the
// context's memo tables (frequency choices, predicted makespans) and
// the oracle behind it (model.CachedPredictor in the assembled system)
// are lock-guarded, so concurrent Plan calls share, rather than
// repeat, the expensive staged-interpolation queries.
//
// Cache lifetime follows the context: an Engine stays valid as long as
// its batch, characterization, and power cap do. Changing the cap or
// re-characterizing requires a new context (and therefore a new
// Engine); the raw degradation/power memos of a CachedPredictor are
// cap-independent and may be carried over.
type Engine struct {
	cx *core.Context
}

// NewEngine wraps a prepared context.
func NewEngine(cx *core.Context) (*Engine, error) {
	if cx == nil {
		return nil, fmt.Errorf("policy: nil scheduling context")
	}
	return &Engine{cx: cx}, nil
}

// Context exposes the underlying scheduling context.
func (e *Engine) Context() *core.Context { return e.cx }

// Plan resolves the named policy through the registry and plans the
// context's batch with it.
func (e *Engine) Plan(name string, opts Options) (*core.Schedule, error) {
	p, err := Parse(name)
	if err != nil {
		return nil, err
	}
	if err := fault.Default.Hit(SitePlan); err != nil {
		return nil, err
	}
	return p.Plan(e.cx, opts)
}

// PredictedMakespan evaluates a schedule on the engine's predictive
// model (memoized per schedule).
func (e *Engine) PredictedMakespan(s *core.Schedule) (units.Seconds, error) {
	return e.cx.PredictedMakespan(s)
}
