package policy_test

import (
	"reflect"
	"strings"
	"testing"

	"corun/internal/core"
	"corun/internal/model"
	"corun/internal/policy"
)

func TestNamesCoverThePaperFamily(t *testing.T) {
	want := []string{"anneal", "default", "genetic", "hcs", "hcs+", "optimal", "random"}
	if got := policy.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestParseNormalizesCaseAliasesWhitespace(t *testing.T) {
	cases := map[string]string{
		"hcs":           "hcs",
		"HCS+":          "hcs+",
		"  hcs+ ":       "hcs+",
		"hcsplus":       "hcs+",
		"HCSPlus":       "hcs+",
		"metaheuristic": "genetic",
		" Genetic\t":    "genetic",
		"OPTIMAL":       "optimal",
		"Random":        "random",
	}
	for in, want := range cases {
		p, err := policy.Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("Parse(%q).Name() = %q, want %q", in, p.Name(), want)
		}
		canon, err := policy.Canonical(in)
		if err != nil || canon != want {
			t.Errorf("Canonical(%q) = %q, %v, want %q", in, canon, err, want)
		}
	}
}

func TestParseUnknownListsEveryValidName(t *testing.T) {
	_, err := policy.Parse("no-such-policy")
	if err == nil {
		t.Fatal("Parse of an unknown name succeeded")
	}
	for _, name := range policy.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("rejection %q does not list valid policy %q", err, name)
		}
	}
}

// stub is a minimal Policy for registration-collision tests.
type stub struct{ name string }

func (s *stub) Name() string { return s.name }
func (s *stub) Plan(*core.Context, policy.Options) (*core.Schedule, error) {
	return nil, nil
}

func TestRegisterRejectsCollisionsAndNil(t *testing.T) {
	mustPanic := func(what string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", what)
			}
		}()
		fn()
	}
	mustPanic("nil policy", func() { policy.Register(nil) })
	mustPanic("empty name", func() { policy.Register(&stub{name: "  "}) })
	mustPanic("duplicate canonical name", func() { policy.Register(&stub{name: "hcs"}) })
	mustPanic("name colliding with an alias", func() { policy.Register(&stub{name: "HCSPlus"}) })
}

func TestListDescribesEveryPolicy(t *testing.T) {
	infos := policy.List()
	if len(infos) != len(policy.Names()) {
		t.Fatalf("List() has %d entries, Names() %d", len(infos), len(policy.Names()))
	}
	aliases := map[string][]string{}
	for _, info := range infos {
		if info.Description == "" {
			t.Errorf("policy %q has no description", info.Name)
		}
		aliases[info.Name] = info.Aliases
	}
	if !reflect.DeepEqual(aliases["hcs+"], []string{"hcsplus"}) {
		t.Errorf("hcs+ aliases = %v, want [hcsplus]", aliases["hcs+"])
	}
	if !reflect.DeepEqual(aliases["genetic"], []string{"metaheuristic"}) {
		t.Errorf("genetic aliases = %v, want [metaheuristic]", aliases["genetic"])
	}
}

func TestEngineResolvesThroughRegistry(t *testing.T) {
	if _, err := policy.NewEngine(nil); err == nil {
		t.Error("NewEngine(nil) succeeded")
	}
	batch := testBatch(t)
	pred := predictorFor(t, batch)
	eng, err := policy.NewEngine(contextOver(t, pred))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Plan("bogus", policy.Options{}); err == nil {
		t.Error("Engine.Plan of an unknown name succeeded")
	}
	plan, err := eng.Plan("hcsplus", policy.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(len(batch)); err != nil {
		t.Fatal(err)
	}
	direct, err := policy.Plan("hcs+", eng.Context(), policy.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, direct) {
		t.Errorf("engine plan %v differs from direct plan %v", plan, direct)
	}
	if _, err := eng.PredictedMakespan(plan); err != nil {
		t.Fatal(err)
	}
}

// TestCachedPredictorMatchesUncachedBitForBit is the acceptance
// criterion of the memoized prediction layer: for every registered
// policy, planning over a model.CachedPredictor must produce exactly
// the schedule and predicted makespan of the uncached predictor.
func TestCachedPredictorMatchesUncachedBitForBit(t *testing.T) {
	batch := testBatch(t)
	pred := predictorFor(t, batch)
	cached, err := model.NewCachedPredictor(pred, testCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range policy.Names() {
		opts := policy.Options{Seed: 7}
		raw := contextOver(t, pred)
		memo := contextOver(t, cached)
		want, err := policy.Plan(name, raw, opts)
		if err != nil {
			t.Fatalf("%s uncached: %v", name, err)
		}
		got, err := policy.Plan(name, memo, opts)
		if err != nil {
			t.Fatalf("%s cached: %v", name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: cached plan %v differs from uncached %v", name, got, want)
		}
		wantT, err := raw.PredictedMakespan(want)
		if err != nil {
			t.Fatal(err)
		}
		gotT, err := memo.PredictedMakespan(got)
		if err != nil {
			t.Fatal(err)
		}
		if wantT != gotT {
			t.Errorf("%s: cached makespan %v differs from uncached %v", name, gotT, wantT)
		}
	}
	stats := cached.Stats()
	if stats.Misses == 0 || stats.Hits == 0 {
		t.Errorf("cache never exercised: %+v", stats)
	}
}

// TestParallelSearchMatchesSerial pins the determinism contract of the
// worker-pool fan-out: the optimal and genetic searches return the
// same result for every worker count.
func TestParallelSearchMatchesSerial(t *testing.T) {
	batch := testBatch(t)
	pred := predictorFor(t, batch)
	cx := contextOver(t, pred)
	for _, name := range []string{"optimal", "genetic"} {
		serial, err := policy.Plan(name, cx, policy.Options{Seed: 7, Workers: 1})
		if err != nil {
			t.Fatalf("%s workers=1: %v", name, err)
		}
		for _, workers := range []int{0, 2, 7} {
			fanned, err := policy.Plan(name, cx, policy.Options{Seed: 7, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if !reflect.DeepEqual(serial, fanned) {
				t.Errorf("%s: workers=%d plan %v differs from serial %v", name, workers, fanned, serial)
			}
		}
	}
}
