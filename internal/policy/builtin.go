package policy

import (
	"corun/internal/core"
)

// planner is the registry's builtin implementation: a named plan
// function. Custom policies outside this package implement Policy
// directly.
type planner struct {
	name string
	desc string
	plan func(cx *core.Context, opts Options) (*core.Schedule, error)
}

func (p *planner) Name() string     { return p.name }
func (p *planner) Describe() string { return p.desc }
func (p *planner) Plan(cx *core.Context, opts Options) (*core.Schedule, error) {
	return p.plan(cx, opts)
}

// The paper's policy family registers at init; adding a policy is one
// Register call (typically from the new policy's own file).
func init() {
	Register(&planner{
		name: "hcs",
		desc: "heuristic co-scheduling (section IV-A): partition, categorize, greedy plan",
		plan: func(cx *core.Context, opts Options) (*core.Schedule, error) {
			return cx.HCS(opts.HCS)
		},
	})
	Register(&planner{
		name: "hcs+",
		desc: "HCS plus the post local refinement (section IV-A.3)",
		plan: func(cx *core.Context, opts Options) (*core.Schedule, error) {
			s, _, err := cx.HCSPlus(opts.HCS, core.RefineOptions{Seed: opts.Seed})
			return s, err
		},
	}, "hcsplus")
	Register(&planner{
		name: "optimal",
		desc: "exhaustive optimal-makespan search (validation; at most 8 jobs)",
		plan: func(cx *core.Context, opts Options) (*core.Schedule, error) {
			s, _, err := cx.OptimalScheduleOpts(core.OptimalOptions{Workers: opts.Workers})
			return s, err
		},
	})
	Register(&planner{
		name: "anneal",
		desc: "simulated annealing over the schedule space, seeded by HCS",
		plan: func(cx *core.Context, opts Options) (*core.Schedule, error) {
			seed, err := cx.HCS(opts.HCS)
			if err != nil {
				return nil, err
			}
			s, _, err := cx.Anneal(seed, core.AnnealOptions{Seed: opts.Seed})
			return s, err
		},
	})
	Register(&planner{
		name: "genetic",
		desc: "evolutionary search over the schedule space, seeded by HCS",
		plan: func(cx *core.Context, opts Options) (*core.Schedule, error) {
			// The HCS seed joins the initial population when feasible;
			// the search stands alone when it is not.
			gopts := core.GeneticOptions{Seed: opts.Seed, Workers: opts.Workers}
			if seed, err := cx.HCS(opts.HCS); err == nil {
				gopts.SeedSchedule = seed
			}
			s, _, err := cx.Genetic(gopts)
			return s, err
		},
	}, "metaheuristic")
	Register(&planner{
		name: "random",
		desc: "Random baseline plan: seeded random placement and order",
		plan: func(cx *core.Context, opts Options) (*core.Schedule, error) {
			return core.RandomPlan(cx.Oracle.NumJobs(), opts.Seed), nil
		},
	})
	Register(&planner{
		name: "default",
		desc: "Default baseline plan: ranking partition, sequential per-device queues",
		plan: func(cx *core.Context, opts Options) (*core.Schedule, error) {
			cpu, gpu := core.DefaultPartition(cx.Oracle, cx.Cfg)
			return &core.Schedule{
				CPUOrder:  cpu,
				GPUOrder:  gpu,
				Exclusive: map[int]bool{},
			}, nil
		},
	})
}
