// Package policy is the pluggable co-scheduling layer: one registry
// through which every front end — the corun facade, the online epoch
// scheduler, the corund daemon, and the command-line tools — resolves
// scheduling policies by name.
//
// The paper's contribution is a family of interchangeable policies
// (HCS, HCS+, the optimal bound, the Random/Default baselines)
// evaluated under one predictive model; this package makes that family
// a first-class extension point. A new policy is a one-file change:
// implement Policy and call Register from an init function.
//
// The registry stores each policy under a canonical name plus optional
// aliases; Parse normalizes case and whitespace and rejects unknown
// names with an error that lists every valid one, so API layers can
// surface it directly as a 400.
package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"corun/internal/core"
	"corun/internal/fault"
)

// SitePlan is the failpoint (internal/fault) checked on every plan
// request that resolves through the registry — both the one-shot Plan
// and Engine.Plan — against the fault.Default registry. Arming it
// injects planning failures or latency (a planning-epoch overrun)
// into every front end at once.
const SitePlan = "policy/plan"

// Options passes per-plan knobs to a policy. The zero value is a valid
// default for every registered policy.
type Options struct {
	// Seed drives the stochastic parts: refinement sampling in hcs+,
	// the metaheuristic searches, and the random baseline plan.
	Seed int64

	// HCS tunes the heuristic steps of the hcs/hcs+ policies (and the
	// HCS seed the metaheuristics start from).
	HCS core.HCSOptions

	// Workers bounds the worker pool of the parallel searches
	// (optimal, genetic); zero picks a machine-sized default.
	Workers int
}

// Policy plans a co-schedule for a prepared scheduling context. A
// Policy must be safe for concurrent Plan calls: all per-batch state
// lives in the Context (whose memo tables are lock-guarded), never in
// the Policy value itself.
type Policy interface {
	// Name is the canonical, lower-case registry name.
	Name() string

	// Plan produces a schedule for the context's batch. Implementations
	// must not retain or mutate the context beyond its documented
	// thread-safe query surface.
	Plan(cx *core.Context, opts Options) (*core.Schedule, error)
}

// Describer is optionally implemented by a Policy to expose a one-line
// summary (shown by GET /v1/policies and the command-line tools).
type Describer interface {
	Describe() string
}

// Info describes one registry entry.
type Info struct {
	// Name is the canonical name.
	Name string `json:"name"`
	// Aliases are alternate spellings accepted by Parse.
	Aliases []string `json:"aliases,omitempty"`
	// Description is the policy's one-line summary, if it has one.
	Description string `json:"description,omitempty"`
}

var registry = struct {
	sync.RWMutex
	byName  map[string]Policy // canonical names and aliases
	entries map[string]*Info  // canonical name -> info
}{
	byName:  map[string]Policy{},
	entries: map[string]*Info{},
}

// normalize is the single spelling rule of the registry: names are
// compared lower-case with surrounding whitespace removed.
func normalize(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// Register adds a policy under its canonical name plus any aliases.
// Registering a duplicate name or alias panics: collisions are
// programmer errors, caught at init time.
func Register(p Policy, aliases ...string) {
	if p == nil {
		panic("policy: Register(nil)")
	}
	name := normalize(p.Name())
	if name == "" {
		panic("policy: Register with empty name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[name]; dup {
		panic(fmt.Sprintf("policy: duplicate registration of %q", name))
	}
	registry.byName[name] = p
	info := &Info{Name: name}
	if d, ok := p.(Describer); ok {
		info.Description = d.Describe()
	}
	for _, a := range aliases {
		a = normalize(a)
		if a == "" || a == name {
			continue
		}
		if _, dup := registry.byName[a]; dup {
			panic(fmt.Sprintf("policy: duplicate registration of alias %q", a))
		}
		registry.byName[a] = p
		info.Aliases = append(info.Aliases, a)
	}
	sort.Strings(info.Aliases)
	registry.entries[name] = info
}

// Parse resolves a policy name (canonical or alias, case-insensitive,
// surrounding whitespace ignored) to its registered Policy. Unknown
// names are an error listing every valid name — never a silent
// default.
func Parse(name string) (Policy, error) {
	key := normalize(name)
	registry.RLock()
	p, ok := registry.byName[key]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (valid: %s)", name, strings.Join(Names(), " | "))
	}
	return p, nil
}

// Canonical maps any accepted spelling to the canonical name; unknown
// names return the Parse error.
func Canonical(name string) (string, error) {
	p, err := Parse(name)
	if err != nil {
		return "", err
	}
	return p.Name(), nil
}

// Names returns the canonical names of every registered policy,
// sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.entries))
	for name := range registry.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// List returns every registry entry's metadata, sorted by canonical
// name.
func List() []Info {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Info, 0, len(registry.entries))
	for _, info := range registry.entries {
		cp := *info
		cp.Aliases = append([]string(nil), info.Aliases...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Plan is the one-shot form: resolve name and plan on cx.
func Plan(name string, cx *core.Context, opts Options) (*core.Schedule, error) {
	p, err := Parse(name)
	if err != nil {
		return nil, err
	}
	if err := fault.Default.Hit(SitePlan); err != nil {
		return nil, err
	}
	return p.Plan(cx, opts)
}
