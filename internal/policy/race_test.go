package policy_test

// Concurrency test for the shared scheduling engine, written to run
// under `go test -race` (part of `make verify`), mirroring the style of
// internal/server/race_test.go: many goroutines plan every registered
// policy through one engine whose context sits on one shared
// model.CachedPredictor, while others evaluate makespans. Beyond the
// absence of data races, each policy must return the same plan to
// every goroutine — the memo tables may reorder work but never change
// an answer.

import (
	"fmt"
	"sync"
	"testing"

	"corun/internal/model"
	"corun/internal/policy"
)

func TestEngineConcurrentPlanning(t *testing.T) {
	batch := testBatch(t)
	pred := predictorFor(t, batch)
	cached, err := model.NewCachedPredictor(pred, testCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := policy.NewEngine(contextOver(t, cached))
	if err != nil {
		t.Fatal(err)
	}

	// Serial reference answers, planned before any concurrency starts.
	want := map[string]string{}
	for _, name := range policy.Names() {
		plan, err := eng.Plan(name, policy.Options{Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ms, err := eng.PredictedMakespan(plan)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = fmt.Sprintf("%v @ %v", plan, ms)
	}

	const planners = 4
	var wg sync.WaitGroup
	for _, name := range policy.Names() {
		for g := 0; g < planners; g++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				plan, err := eng.Plan(name, policy.Options{Seed: 7})
				if err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				ms, err := eng.PredictedMakespan(plan)
				if err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				if got := fmt.Sprintf("%v @ %v", plan, ms); got != want[name] {
					t.Errorf("%s: concurrent plan %s, serial reference %s", name, got, want[name])
				}
			}(name)
		}
	}
	// Cache readers race the planners on the predictor's stats surface.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s := cached.Stats()
			if s.Entries < 0 {
				t.Error("negative cache size")
				return
			}
		}
	}()
	wg.Wait()

	if s := cached.Stats(); s.Hits == 0 {
		t.Errorf("shared cache saw no hits across %d planning calls: %+v",
			planners*len(policy.Names()), s)
	}
}
