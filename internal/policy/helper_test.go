package policy_test

// Shared fixtures: the one-time characterization pass plus builders
// for the prediction pipeline and scheduling contexts, used by the
// registry tests, the -race engine test, and the cached-vs-uncached
// benchmarks alike.

import (
	"sync"
	"testing"

	"corun/internal/apu"
	"corun/internal/core"
	"corun/internal/memsys"
	"corun/internal/model"
	"corun/internal/profile"
	"corun/internal/units"
	"corun/internal/workload"
)

// testCap is the paper's default 15 W package cap.
const testCap = units.Watts(15)

var pipe struct {
	once sync.Once
	cfg  *apu.Config
	mem  *memsys.Model
	char *model.Characterization
	err  error
}

// characterize runs the offline characterization once and shares it
// across every test and benchmark in the package.
func characterize(tb testing.TB) (*apu.Config, *memsys.Model, *model.Characterization) {
	tb.Helper()
	pipe.once.Do(func() {
		pipe.cfg = apu.DefaultConfig()
		pipe.mem = memsys.Default()
		pipe.char, pipe.err = model.Characterize(model.CharacterizeOptions{Cfg: pipe.cfg, Mem: pipe.mem})
	})
	if pipe.err != nil {
		tb.Fatal(pipe.err)
	}
	return pipe.cfg, pipe.mem, pipe.char
}

// testCfg returns the shared machine config.
func testCfg(tb testing.TB) *apu.Config {
	tb.Helper()
	cfg, _, _ := characterize(tb)
	return cfg
}

// predictorFor builds the uncached prediction pipeline for a batch.
func predictorFor(tb testing.TB, batch []*workload.Instance) *model.Predictor {
	tb.Helper()
	cfg, mem, char := characterize(tb)
	prof, err := profile.Collect(cfg, mem, batch)
	if err != nil {
		tb.Fatal(err)
	}
	pred, err := model.NewPredictor(char, prof)
	if err != nil {
		tb.Fatal(err)
	}
	return pred
}

// contextOver wraps an oracle in a fresh scheduling context under the
// test cap. A fresh context means fresh frequency/makespan memo tables:
// the only state carried between contexts is whatever the oracle itself
// caches.
func contextOver(tb testing.TB, o core.Oracle) *core.Context {
	tb.Helper()
	cfg, _, _ := characterize(tb)
	cx, err := core.NewContext(o, cfg, testCap)
	if err != nil {
		tb.Fatal(err)
	}
	return cx
}

// testBatch is the 6-job planning batch used across the tests: small
// enough for the optimal search, varied enough to exercise every
// policy's branches.
func testBatch(tb testing.TB) []*workload.Instance {
	tb.Helper()
	batch, err := workload.Subset("streamcluster", "cfd", "dwt2d", "hotspot", "srad", "lud")
	if err != nil {
		tb.Fatal(err)
	}
	return batch
}
