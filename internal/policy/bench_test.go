// Benchmarks for the memoized prediction layer: repeated planning over
// one shared model.CachedPredictor versus the uncached baseline. Each
// iteration plans on a fresh scheduling context (fresh frequency and
// makespan memos), so the cached arms measure exactly what survives
// between plans in the corund serving pattern — the predictor-level
// degradation/power memos. Run via `make bench`:
//
//	go test -run='^$' -bench=. -benchmem ./internal/policy/
package policy_test

import (
	"testing"

	"corun/internal/core"
	"corun/internal/model"
	"corun/internal/policy"
	"corun/internal/workload"
)

// planLoop replans the batch b.N times, one fresh context per
// iteration over the given oracle.
func planLoop(b *testing.B, o core.Oracle, name string) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cx := contextOver(b, o)
		if _, err := policy.Plan(name, cx, policy.Options{Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// hitRate reports the cache's hit percentage for the benchmark output.
func hitRate(c *model.CachedPredictor) float64 {
	s := c.Stats()
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return 100 * float64(s.Hits) / float64(s.Hits+s.Misses)
}

// BenchmarkHCSPlusPlanningUncached replans HCS+ on the paper's 8-job
// batch with the raw staged-interpolation predictor.
func BenchmarkHCSPlusPlanningUncached(b *testing.B) {
	pred := predictorFor(b, workload.Batch8())
	planLoop(b, pred, "hcs+")
}

// BenchmarkHCSPlusPlanningCached is the same replanning loop over a
// shared CachedPredictor; iterations after the first hit the memo.
func BenchmarkHCSPlusPlanningCached(b *testing.B) {
	pred := predictorFor(b, workload.Batch8())
	cached, err := model.NewCachedPredictor(pred, testCfg(b))
	if err != nil {
		b.Fatal(err)
	}
	planLoop(b, cached, "hcs+")
	b.ReportMetric(hitRate(cached), "%cache-hits")
}

// BenchmarkOptimal8Uncached runs the exhaustive optimal search on the
// 8-job batch with the raw predictor. The search's own hot loop reads
// the context's per-pair frequency memo, so the predictor cache's
// contribution here is the pair-table construction of each fresh
// context; the pair against BenchmarkOptimal8Cached chiefly proves the
// shared cache costs the fanned-out search nothing.
func BenchmarkOptimal8Uncached(b *testing.B) {
	pred := predictorFor(b, workload.Batch8())
	planLoop(b, pred, "optimal")
}

// BenchmarkOptimal8Cached is the same search over a shared
// CachedPredictor.
func BenchmarkOptimal8Cached(b *testing.B) {
	pred := predictorFor(b, workload.Batch8())
	cached, err := model.NewCachedPredictor(pred, testCfg(b))
	if err != nil {
		b.Fatal(err)
	}
	planLoop(b, cached, "optimal")
	b.ReportMetric(hitRate(cached), "%cache-hits")
}
