package kernelsim

import (
	"math"
	"testing"
	"testing/quick"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/units"
)

func testProgram() *Program {
	return &Program{
		Name:   "test",
		Work:   100,
		CPUEff: 0.5,
		GPUEff: 3.0,
		Phases: []Phase{
			{Frac: 0.7, BytesPerOp: 2.0},
			{Frac: 0.3, BytesPerOp: 0.2},
		},
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := testProgram().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Program)
	}{
		{"no name", func(p *Program) { p.Name = "" }},
		{"zero work", func(p *Program) { p.Work = 0 }},
		{"zero cpu eff", func(p *Program) { p.CPUEff = 0 }},
		{"zero gpu eff", func(p *Program) { p.GPUEff = 0 }},
		{"negative sens", func(p *Program) { p.CPUSens = -1 }},
		{"no phases", func(p *Program) { p.Phases = nil }},
		{"zero frac", func(p *Program) { p.Phases[0].Frac = 0 }},
		{"negative bpo", func(p *Program) { p.Phases[0].BytesPerOp = -1 }},
		{"fracs not 1", func(p *Program) { p.Phases[0].Frac = 0.5 }},
	}
	for _, m := range mutations {
		p := testProgram()
		m.mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted broken program", m.name)
		}
	}
}

func TestEffAndSens(t *testing.T) {
	p := testProgram()
	p.CPUSens, p.GPUSens = 0.9, 0.1
	if p.Eff(apu.CPU) != 0.5 || p.Eff(apu.GPU) != 3.0 {
		t.Error("Eff returns wrong values")
	}
	if p.Sens(apu.CPU) != 0.9 || p.Sens(apu.GPU) != 0.1 {
		t.Error("Sens returns wrong values")
	}
}

func TestPotentialRateScalesWithFreq(t *testing.T) {
	p := testProgram()
	if got := p.PotentialRate(apu.CPU, 2.0); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("PotentialRate = %v, want 1.0", got)
	}
	if p.PotentialRate(apu.CPU, 3.0) <= p.PotentialRate(apu.CPU, 2.0) {
		t.Error("rate not increasing with frequency")
	}
}

func TestRateGivenGrant(t *testing.T) {
	// Compute-bound: grant ample.
	if got := RateGivenGrant(4, 1, 10); got != 4 {
		t.Errorf("compute-bound rate = %v, want 4", got)
	}
	// Bandwidth-bound: grant scarce.
	if got := RateGivenGrant(4, 2, 4); got != 2 {
		t.Errorf("bandwidth-bound rate = %v, want 2", got)
	}
	// Zero intensity never stalls.
	if got := RateGivenGrant(4, 0, 0); got != 4 {
		t.Errorf("compute-only rate = %v, want 4", got)
	}
}

func TestStandaloneTimeComputeBound(t *testing.T) {
	mem := memsys.Default()
	p := &Program{
		Name: "compute", Work: 90, CPUEff: 1.0, GPUEff: 1.0,
		Phases: []Phase{{Frac: 1, BytesPerOp: 0}},
	}
	// Pure compute at 3 GHz: rate 3 Gops/s, 90 Gops -> 30 s.
	got := p.StandaloneTime(apu.CPU, 3.0, mem, 1)
	if math.Abs(float64(got)-30) > 1e-9 {
		t.Errorf("compute-bound time = %v, want 30 s", got)
	}
	// Doubling the input doubles the time.
	got2 := p.StandaloneTime(apu.CPU, 3.0, mem, 2)
	if math.Abs(float64(got2)-60) > 1e-9 {
		t.Errorf("scaled time = %v, want 60 s", got2)
	}
}

func TestStandaloneTimeBandwidthBound(t *testing.T) {
	mem := memsys.Default()
	soloCap := mem.Params().SoloCapCPU
	p := &Program{
		Name: "stream", Work: 100, CPUEff: 10, GPUEff: 10,
		Phases: []Phase{{Frac: 1, BytesPerOp: 1.0}},
	}
	// At 3 GHz the potential rate is 30 Gops/s needing 30 GB/s, but the
	// solo cap limits the rate to soloCap Gops/s.
	got := p.StandaloneTime(apu.CPU, 3.0, mem, 1)
	want := 100 / soloCap
	if math.Abs(float64(got)-want) > 1e-9 {
		t.Errorf("bandwidth-bound time = %v, want %v", got, want)
	}
}

func TestStandaloneTimeMonotoneInFreq(t *testing.T) {
	mem := memsys.Default()
	p := testProgram()
	prev := units.Seconds(math.Inf(1))
	for _, f := range []units.GHz{1.2, 2.0, 2.8, 3.6} {
		got := p.StandaloneTime(apu.CPU, f, mem, 1)
		if got > prev {
			t.Fatalf("time increased with frequency at %v: %v > %v", f, got, prev)
		}
		prev = got
	}
}

func TestStandaloneUtilization(t *testing.T) {
	mem := memsys.Default()
	compute := &Program{Name: "c", Work: 10, CPUEff: 1, GPUEff: 1,
		Phases: []Phase{{Frac: 1, BytesPerOp: 0}}}
	if got := compute.StandaloneUtilization(apu.CPU, 3.6, mem); math.Abs(got-1) > 1e-9 {
		t.Errorf("compute-only utilization = %v, want 1", got)
	}
	stream := &Program{Name: "s", Work: 10, CPUEff: 10, GPUEff: 10,
		Phases: []Phase{{Frac: 1, BytesPerOp: 1}}}
	got := stream.StandaloneUtilization(apu.CPU, 3.6, mem)
	want := mem.Params().SoloCapCPU / (10 * 3.6)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("stream utilization = %v, want %v", got, want)
	}
}

func TestAvgStandaloneBandwidth(t *testing.T) {
	mem := memsys.Default()
	p := &Program{Name: "b", Work: 10, CPUEff: 1, GPUEff: 1,
		Phases: []Phase{{Frac: 1, BytesPerOp: 2}}}
	// Rate 3.6 Gops/s at 3.6 GHz, demand 7.2 GB/s < solo cap: achieved
	// bandwidth equals demand.
	got := p.AvgStandaloneBandwidth(apu.CPU, 3.6, mem)
	if math.Abs(float64(got)-7.2) > 1e-9 {
		t.Errorf("avg bandwidth = %v, want 7.2", got)
	}
}

// The average bandwidth of a phase-structured program lies between the
// extremes of its phases.
func TestAvgBandwidthBetweenPhaseExtremes(t *testing.T) {
	mem := memsys.Default()
	p := testProgram()
	f := units.GHz(3.6)
	bw := float64(p.AvgStandaloneBandwidth(apu.CPU, f, mem))
	lo := math.Inf(1)
	hi := math.Inf(-1)
	for i := range p.Phases {
		d := float64(p.PhaseDemand(i, apu.CPU, f))
		d = math.Min(d, mem.Params().SoloCapCPU)
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
	}
	if bw < lo-1e-9 || bw > hi+1e-9 {
		t.Errorf("avg bandwidth %v outside phase range [%v,%v]", bw, lo, hi)
	}
}

// Property: standalone time is positive, finite, and inversely
// monotone in frequency for arbitrary valid programs.
func TestStandaloneTimeProperty(t *testing.T) {
	mem := memsys.Default()
	f := func(workRaw, effRaw, bpoRaw uint16, f1Raw, f2Raw uint8) bool {
		p := &Program{
			Name:   "q",
			Work:   units.GOps(float64(workRaw)/65535*200 + 1),
			CPUEff: float64(effRaw)/65535*5 + 0.05,
			GPUEff: 1,
			Phases: []Phase{{Frac: 1, BytesPerOp: float64(bpoRaw) / 65535 * 4}},
		}
		if err := p.Validate(); err != nil {
			return false
		}
		fa := units.GHz(float64(f1Raw)/255*2.4 + 1.2)
		fb := units.GHz(float64(f2Raw)/255*2.4 + 1.2)
		if fa > fb {
			fa, fb = fb, fa
		}
		ta := p.StandaloneTime(apu.CPU, fa, mem, 1)
		tb := p.StandaloneTime(apu.CPU, fb, mem, 1)
		return ta > 0 && !math.IsInf(float64(ta), 0) && tb <= ta+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: utilization is in (0,1] and bandwidth never exceeds the
// solo cap.
func TestUtilizationAndBandwidthBoundsProperty(t *testing.T) {
	mem := memsys.Default()
	f := func(effRaw, bpoRaw, fRaw uint16) bool {
		p := &Program{
			Name:   "q",
			Work:   50,
			CPUEff: float64(effRaw)/65535*6 + 0.05,
			GPUEff: float64(effRaw)/65535*6 + 0.05,
			Phases: []Phase{
				{Frac: 0.5, BytesPerOp: float64(bpoRaw) / 65535 * 4},
				{Frac: 0.5, BytesPerOp: 0.1},
			},
		}
		freq := units.GHz(float64(fRaw)/65535*2.4 + 1.2)
		for _, d := range []apu.Device{apu.CPU, apu.GPU} {
			u := p.StandaloneUtilization(d, freq, mem)
			if u <= 0 || u > 1+1e-9 {
				return false
			}
			bw := float64(p.AvgStandaloneBandwidth(d, freq, mem))
			if bw < 0 || bw > mem.Params().CombinedPeak {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
