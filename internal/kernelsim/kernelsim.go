// Package kernelsim models the execution of OpenCL-style kernels on the
// simulated integrated processor.
//
// A Program is a phase-structured analytic model of one benchmark: a
// total amount of abstract work (giga-operations), per-device execution
// efficiencies (how many Gops/s one GHz of clock buys), per-device
// memory latency sensitivities, and a sequence of phases that each move
// a characteristic number of bytes per operation.
//
// In any interval where the memory grant is known, a kernel's execution
// rate is
//
//	rate = min(eff * freq, grant / bytesPerOp)
//
// i.e. the kernel is compute-bound until the granted bandwidth becomes
// the bottleneck. Everything else in the simulator — co-run slowdowns,
// DVFS effects, power-activity scaling — derives from this one rule.
//
// Phase structure matters: the paper's predictive model only sees a
// program's average standalone bandwidth, while the ground truth
// executes each phase at its own intensity. The mismatch is a genuine,
// structural source of prediction error, just as on real hardware.
package kernelsim

import (
	"fmt"
	"math"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/units"
)

// Phase is one execution phase of a program.
type Phase struct {
	// Frac is the fraction of the program's total work done in this
	// phase. Fractions across a program sum to 1.
	Frac float64

	// BytesPerOp is the phase's memory intensity: bytes moved per
	// abstract operation. Zero means a purely compute phase.
	BytesPerOp float64
}

// Program is the analytic model of one benchmark.
type Program struct {
	// Name identifies the benchmark (e.g. "dwt2d").
	Name string

	// Work is the total abstract work in giga-operations at the
	// reference input size.
	Work units.GOps

	// CPUEff and GPUEff are execution efficiencies: achievable
	// Gops/s per GHz of device clock, absent memory stalls.
	CPUEff float64
	GPUEff float64

	// CPUSens and GPUSens are the program's memory latency
	// sensitivities on each device (see memsys.Demand).
	CPUSens float64
	GPUSens float64

	// Phases is the program's phase sequence, executed in order.
	Phases []Phase
}

// Validate checks the program model for consistency.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("kernelsim: program without a name")
	}
	if p.Work <= 0 {
		return fmt.Errorf("kernelsim: %s: non-positive work %v", p.Name, p.Work)
	}
	if p.CPUEff <= 0 || p.GPUEff <= 0 {
		return fmt.Errorf("kernelsim: %s: efficiencies must be positive", p.Name)
	}
	if p.CPUSens < 0 || p.GPUSens < 0 {
		return fmt.Errorf("kernelsim: %s: sensitivities must be non-negative", p.Name)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("kernelsim: %s: no phases", p.Name)
	}
	sum := 0.0
	for i, ph := range p.Phases {
		if ph.Frac <= 0 {
			return fmt.Errorf("kernelsim: %s: phase %d has non-positive fraction", p.Name, i)
		}
		if ph.BytesPerOp < 0 {
			return fmt.Errorf("kernelsim: %s: phase %d has negative intensity", p.Name, i)
		}
		sum += ph.Frac
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("kernelsim: %s: phase fractions sum to %v, want 1", p.Name, sum)
	}
	return nil
}

// Eff returns the execution efficiency of the program on device d.
func (p *Program) Eff(d apu.Device) float64 {
	if d == apu.CPU {
		return p.CPUEff
	}
	return p.GPUEff
}

// Sens returns the memory latency sensitivity of the program on d.
func (p *Program) Sens(d apu.Device) float64 {
	if d == apu.CPU {
		return p.CPUSens
	}
	return p.GPUSens
}

// PotentialRate is the stall-free execution rate (Gops/s) on device d
// at clock f.
func (p *Program) PotentialRate(d apu.Device, f units.GHz) float64 {
	return p.Eff(d) * float64(f)
}

// PhaseDemand is the unconstrained bandwidth demand (GB/s) of phase i
// on device d at clock f.
func (p *Program) PhaseDemand(i int, d apu.Device, f units.GHz) units.GBps {
	return units.GBps(p.PotentialRate(d, f) * p.Phases[i].BytesPerOp)
}

// RateGivenGrant computes the achieved execution rate when the memory
// system grants the phase `grant` GB/s: the compute rate capped by the
// bandwidth bottleneck. A zero-intensity phase never stalls.
func RateGivenGrant(potential float64, bytesPerOp float64, grant units.GBps) float64 {
	if bytesPerOp <= 0 {
		return potential
	}
	return math.Min(potential, float64(grant)/bytesPerOp)
}

// StandaloneTime returns the program's solo execution time on device d
// at clock f, with work scaled by scale (input size), against the given
// memory system. Each phase runs at the minimum of its compute rate and
// the solo-capped bandwidth rate.
func (p *Program) StandaloneTime(d apu.Device, f units.GHz, mem *memsys.Model, scale float64) units.Seconds {
	r0 := p.PotentialRate(d, f)
	total := 0.0
	for i, ph := range p.Phases {
		demand := p.PhaseDemand(i, d, f)
		grant := mem.Solo(soloFor(d), demand)
		rate := RateGivenGrant(r0, ph.BytesPerOp, grant)
		total += float64(p.Work) * scale * ph.Frac / rate
	}
	return units.Seconds(total)
}

// StandaloneUtilization returns the time-averaged utilization (achieved
// rate over potential rate) of a solo run on d at f. It feeds the power
// model: a bandwidth-bound program burns less dynamic power.
func (p *Program) StandaloneUtilization(d apu.Device, f units.GHz, mem *memsys.Model) float64 {
	r0 := p.PotentialRate(d, f)
	timeTotal, busyTotal := 0.0, 0.0
	for i, ph := range p.Phases {
		demand := p.PhaseDemand(i, d, f)
		grant := mem.Solo(soloFor(d), demand)
		rate := RateGivenGrant(r0, ph.BytesPerOp, grant)
		t := ph.Frac / rate // per unit of work; weighting is all that matters
		timeTotal += t
		busyTotal += t * rate / r0
	}
	return busyTotal / timeTotal
}

// AvgStandaloneBandwidth returns the time-averaged achieved memory
// bandwidth (GB/s) of a solo run on d at f: total bytes moved divided
// by total time. This is the statistic the paper's predictive model
// interpolates with.
func (p *Program) AvgStandaloneBandwidth(d apu.Device, f units.GHz, mem *memsys.Model) units.GBps {
	r0 := p.PotentialRate(d, f)
	timeTotal, bytesTotal := 0.0, 0.0
	for i, ph := range p.Phases {
		demand := p.PhaseDemand(i, d, f)
		grant := mem.Solo(soloFor(d), demand)
		rate := RateGivenGrant(r0, ph.BytesPerOp, grant)
		t := ph.Frac / rate
		timeTotal += t
		bytesTotal += ph.Frac * ph.BytesPerOp
	}
	return units.GBps(bytesTotal / timeTotal)
}

// soloFor maps an apu device to the memsys solo selector.
func soloFor(d apu.Device) memsys.SoloDevice {
	if d == apu.CPU {
		return memsys.SoloCPU
	}
	return memsys.SoloGPU
}
