package fault

import (
	"errors"
	"math/rand"
	"time"
)

// Backoff is a bounded retry schedule: exponential growth from Base
// toward Max with deterministic seeded jitter. The zero value retries
// nothing (one attempt, no sleeps).
type Backoff struct {
	// Base is the first retry delay; Factor grows it per attempt
	// (default 2) and Max caps it.
	Base   time.Duration
	Max    time.Duration
	Factor float64

	// Jitter spreads each delay uniformly over [1-Jitter, 1+Jitter]
	// times its nominal value, drawn from a PRNG seeded with Seed so a
	// given schedule replays identically. 0 disables jitter.
	Jitter float64
	Seed   int64

	// Attempts is the total number of tries, including the first;
	// values below 1 mean a single attempt.
	Attempts int

	// Sleep is the delay function; nil means time.Sleep. Tests inject
	// a recorder here.
	Sleep func(time.Duration)
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps an error to tell Backoff.Run to stop retrying and
// return it (unwrapped) immediately.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Run calls op until it succeeds, returns a Permanent error, or the
// attempt budget is spent, sleeping the backoff schedule between
// tries. op receives the zero-based attempt index. The last error is
// returned.
func (b Backoff) Run(op func(attempt int) error) error {
	attempts := b.Attempts
	if attempts < 1 {
		attempts = 1
	}
	sleep := b.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var rng *rand.Rand
	if b.Jitter > 0 {
		rng = rand.New(rand.NewSource(b.Seed))
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			sleep(b.delay(attempt-1, rng))
		}
		err = op(attempt)
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
	}
	return err
}

// delay is the nominal backoff for the i-th retry (0-based), jittered.
func (b Backoff) delay(i int, rng *rand.Rand) time.Duration {
	factor := b.Factor
	if factor <= 1 {
		factor = 2
	}
	d := float64(b.Base)
	for k := 0; k < i; k++ {
		d *= factor
		if b.Max > 0 && d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Max > 0 && d > float64(b.Max) {
		d = float64(b.Max)
	}
	if rng != nil {
		d *= 1 - b.Jitter + 2*b.Jitter*rng.Float64()
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}
