package fault

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestHitDisarmedIsNil(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 100; i++ {
		if err := r.Hit("journal/fsync"); err != nil {
			t.Fatalf("disarmed hit returned %v", err)
		}
	}
	if got := r.Stats(); len(got) != 0 {
		t.Fatalf("disarmed registry has stats %+v", got)
	}
}

func TestErrorScheduleEveryAfterTimes(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm(Rule{Site: "s", Kind: KindError, Every: 3, After: 2, Times: 2}); err != nil {
		t.Fatal(err)
	}
	// Hits 1..2 are skipped by After; eligible hits count from 3, and
	// every 3rd eligible hit fires: hits 5 and 8, then Times exhausts.
	var fired []int
	for i := 1; i <= 12; i++ {
		if err := r.Hit("s"); err != nil {
			if !IsInjected(err) {
				t.Fatalf("hit %d: %v is not an injected error", i, err)
			}
			fired = append(fired, i)
		}
	}
	if want := []int{5, 8}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired on hits %v, want %v", fired, want)
	}
	st := r.Stats()
	if len(st) != 1 || st[0].Hits != 12 || st[0].Injected != 2 || !st[0].Exhausted {
		t.Fatalf("stats %+v", st)
	}
}

func TestProbabilityGateIsSeeded(t *testing.T) {
	pattern := func(seed int64) []bool {
		r := NewRegistry()
		if err := r.Arm(Rule{Site: "s", Kind: KindError, P: 0.5, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = r.Hit("s") != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different injection patterns")
	}
	if reflect.DeepEqual(a, pattern(7)) {
		t.Fatal("different seeds produced the same 64-hit pattern")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times", fired, len(a))
	}
}

func TestLatencyInjection(t *testing.T) {
	r := NewRegistry()
	var slept []time.Duration
	r.sleep = func(d time.Duration) { slept = append(slept, d) }
	if err := r.Arm(Rule{Site: "s", Kind: KindLatency, Delay: 10 * time.Millisecond, Every: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := r.Hit("s"); err != nil {
			t.Fatalf("latency hit returned error %v", err)
		}
	}
	if want := []time.Duration{10 * time.Millisecond, 10 * time.Millisecond}; !reflect.DeepEqual(slept, want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
}

func TestPanicInjection(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm(Rule{Site: "s", Kind: KindPanic, Msg: "boom"}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("no panic")
		}
		fe, ok := rec.(*Error)
		if !ok || fe.Site != "s" || fe.Msg != "boom" {
			t.Fatalf("panicked with %#v", rec)
		}
	}()
	_ = r.Hit("s")
}

func TestSubscribeAndDisarm(t *testing.T) {
	r := NewRegistry()
	var events []Event
	r.Subscribe(func(e Event) { events = append(events, e) })
	if err := r.Arm(Rule{Site: "s", Kind: KindError, Every: 2}); err != nil {
		t.Fatal(err)
	}
	_ = r.Hit("s")
	_ = r.Hit("s")
	_ = r.Hit("other") // unarmed site: no event
	want := []Event{{Site: "s", Injected: false}, {Site: "s", Injected: true}}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("events %+v, want %+v", events, want)
	}
	r.Disarm()
	if err := r.Hit("s"); err != nil {
		t.Fatalf("hit after disarm: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("disarmed hit emitted an event: %+v", events)
	}
}

func TestIsInjected(t *testing.T) {
	err := &Error{Site: "s"}
	if !IsInjected(err) {
		t.Fatal("direct injected error not recognized")
	}
	if !IsInjected(errorsJoin("wrapped: ", err)) {
		t.Fatal("wrapped injected error not recognized")
	}
	if IsInjected(errors.New("organic")) {
		t.Fatal("organic error misclassified")
	}
}

func errorsJoin(prefix string, err error) error {
	return &wrapped{prefix: prefix, err: err}
}

type wrapped struct {
	prefix string
	err    error
}

func (w *wrapped) Error() string { return w.prefix + w.err.Error() }
func (w *wrapped) Unwrap() error { return w.err }

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("journal/fsync=error(every=3,times=5,msg=disk gone); server/epoch = latency(50ms, p=0.5, seed=42)")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Site: "journal/fsync", Kind: KindError, Every: 3, Times: 5, Msg: "disk gone"},
		{Site: "server/epoch", Kind: KindLatency, Delay: 50 * time.Millisecond, P: 0.5, Seed: 42},
	}
	if !reflect.DeepEqual(rules, want) {
		t.Fatalf("parsed %+v, want %+v", rules, want)
	}
	// The positional forms: a bare duration for latency, a bare
	// message for error/panic; kinds without an argument list.
	rules, err = ParseSpec("a=latency(1ms);b=error(oops);c=panic")
	if err != nil {
		t.Fatal(err)
	}
	want = []Rule{
		{Site: "a", Kind: KindLatency, Delay: time.Millisecond},
		{Site: "b", Kind: KindError, Msg: "oops"},
		{Site: "c", Kind: KindPanic},
	}
	if !reflect.DeepEqual(rules, want) {
		t.Fatalf("parsed %+v, want %+v", rules, want)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",                      // empty
		";;",                    // only separators
		"noequals",              // no site=kind
		"=error",                // empty site
		"s=explode",             // unknown kind
		"s=latency",             // latency without a delay
		"s=latency(xyz)",        // bad duration
		"s=error(every=x)",      // bad count
		"s=error(p=2)",          // probability out of range
		"s=error(bogus=1)",      // unknown key
		"s=error(every=1",       // unclosed args
		"s=error(seed=notanum)", // bad seed
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("spec %q parsed without error", spec)
		}
	}
}
