package fault

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestBackoffRetriesUntilSuccess(t *testing.T) {
	var slept []time.Duration
	b := Backoff{
		Base: 10 * time.Millisecond, Max: 40 * time.Millisecond,
		Attempts: 5,
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
	}
	calls := 0
	err := b.Run(func(attempt int) error {
		if attempt != calls {
			t.Fatalf("attempt %d on call %d", attempt, calls)
		}
		calls++
		if calls < 4 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 4 {
		t.Fatalf("err %v after %d calls", err, calls)
	}
	// No jitter: the exponential schedule is exact, capped at Max.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if !reflect.DeepEqual(slept, want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
}

func TestBackoffExhaustsAttempts(t *testing.T) {
	sentinel := errors.New("still broken")
	calls := 0
	b := Backoff{Base: time.Millisecond, Attempts: 3, Sleep: func(time.Duration) {}}
	if err := b.Run(func(int) error { calls++; return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err %v, want %v", err, sentinel)
	}
	if calls != 3 {
		t.Fatalf("%d calls, want 3", calls)
	}
}

func TestBackoffPermanentStopsImmediately(t *testing.T) {
	sentinel := errors.New("closed")
	calls := 0
	b := Backoff{Base: time.Millisecond, Attempts: 5, Sleep: func(time.Duration) {}}
	err := b.Run(func(int) error { calls++; return Permanent(sentinel) })
	if err != sentinel {
		t.Fatalf("err %v, want the unwrapped sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("%d calls, want 1", calls)
	}
}

func TestBackoffJitterIsSeeded(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		var slept []time.Duration
		b := Backoff{
			Base: 10 * time.Millisecond, Max: time.Second, Jitter: 0.5, Seed: seed,
			Attempts: 6, Sleep: func(d time.Duration) { slept = append(slept, d) },
		}
		_ = b.Run(func(int) error { return errors.New("x") })
		return slept
	}
	a, b := schedule(42), schedule(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different jitter schedules")
	}
	if reflect.DeepEqual(a, schedule(7)) {
		t.Fatal("different seeds produced the same jitter schedule")
	}
	for i, d := range a {
		nominal := 10 * time.Millisecond << i
		lo, hi := nominal/2, nominal+nominal/2
		if d < lo || d > hi {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, d, lo, hi)
		}
	}
}

func TestBackoffZeroValueSingleAttempt(t *testing.T) {
	calls := 0
	err := Backoff{}.Run(func(int) error { calls++; return errors.New("x") })
	if err == nil || calls != 1 {
		t.Fatalf("err %v after %d calls", err, calls)
	}
}

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func mustState(t *testing.T, b *Breaker, want BreakerState) {
	t.Helper()
	if got := b.State(); got != want {
		t.Fatalf("breaker state %v, want %v", got, want)
	}
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(3, time.Second)
	b.SetClock(clk.now)
	var transitions []string
	b.OnChange(func(from, to BreakerState) {
		transitions = append(transitions, from.String()+">"+to.String())
	})

	// Two failures stay closed; the third trips it open.
	b.Failure()
	b.Failure()
	mustState(t, b, BreakerClosed)
	if !b.Allow() {
		t.Fatal("closed breaker denied an operation")
	}
	b.Failure()
	mustState(t, b, BreakerOpen)
	if b.Trips() != 1 {
		t.Fatalf("trips %d, want 1", b.Trips())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed an operation inside the cooldown")
	}
	if until := b.OpenUntil(); !until.Equal(clk.t.Add(time.Second)) {
		t.Fatalf("open until %v, want cooldown end", until)
	}

	// Cooldown elapses: exactly one probe gets through.
	clk.advance(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("no probe after the cooldown")
	}
	mustState(t, b, BreakerHalfOpen)
	if b.Allow() {
		t.Fatal("second concurrent probe allowed")
	}

	// A failed probe re-opens for another full cooldown.
	b.Failure()
	mustState(t, b, BreakerOpen)
	if b.Trips() != 2 {
		t.Fatalf("trips %d, want 2", b.Trips())
	}
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("no probe after the second cooldown")
	}
	b.Success()
	mustState(t, b, BreakerClosed)
	if !b.Allow() {
		t.Fatal("closed breaker denied an operation after recovery")
	}

	want := []string{
		"closed>open", "open>half-open", "half-open>open",
		"open>half-open", "half-open>closed",
	}
	if !reflect.DeepEqual(transitions, want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := NewBreaker(2, time.Second)
	b.Failure()
	b.Success()
	b.Failure()
	mustState(t, b, BreakerClosed)
	b.Failure()
	mustState(t, b, BreakerOpen)
}

func TestBreakerStaysOpenWithoutAProbe(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(1, time.Second)
	b.SetClock(clk.now)
	b.Failure()
	clk.advance(time.Hour)
	// Time alone never closes the circuit: recovery needs a
	// successful probe.
	mustState(t, b, BreakerOpen)
	if !b.Allow() {
		t.Fatal("probe denied after cooldown")
	}
	mustState(t, b, BreakerHalfOpen)
}
