// Package fault is the daemon's resilience toolkit: a deterministic
// failpoint registry for injecting failures at named sites in the hot
// paths (journal appends and fsyncs, admission, epoch planning), plus
// the machinery that turns failures into policy rather than crashes —
// bounded retry with jittered exponential backoff and a circuit
// breaker that trips into a degraded mode.
//
// Failpoints are the testing substrate: production code calls
// Registry.Hit("journal/fsync") at each site, which costs one atomic
// load while the registry is disarmed. Tests (or the corund
// -fault-spec flag) arm sites with schedules — "fail every 3rd hit",
// "add 10ms of latency with probability 0.5 under seed 42" — that are
// fully deterministic for a given seed, so an induced failure storm
// replays identically run after run.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is what an armed failpoint does when its schedule fires.
type Kind string

// The injection kinds. KindError makes Hit return an *Error;
// KindLatency makes Hit sleep for the rule's delay and return nil;
// KindPanic makes Hit panic with an *Error (for crash testing —
// recovery paths must survive a process that dies mid-operation).
const (
	KindError   Kind = "error"
	KindLatency Kind = "latency"
	KindPanic   Kind = "panic"
)

// Error is an injected failure. Callers distinguish injected errors
// from organic ones with IsInjected.
type Error struct {
	// Site is the failpoint that fired.
	Site string
	// Msg is the rule's message, if it set one.
	Msg string
}

// Error implements error.
func (e *Error) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("fault: injected at %s: %s", e.Site, e.Msg)
	}
	return fmt.Sprintf("fault: injected at %s", e.Site)
}

// IsInjected reports whether err is (or wraps) an injected fault.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// Rule arms one site with a deterministic schedule. The zero schedule
// fires on every hit; Every/After/Times/P narrow it.
type Rule struct {
	// Site names the failpoint (e.g. "journal/fsync").
	Site string
	// Kind is the injected behaviour; required.
	Kind Kind
	// Delay is the injected latency; required for KindLatency.
	Delay time.Duration
	// Msg overrides the injected error message.
	Msg string

	// Every fires the rule on every Nth eligible hit (0 or 1 = every
	// hit).
	Every uint64
	// After skips the first N hits before the schedule starts.
	After uint64
	// Times bounds how many injections the rule performs; 0 is
	// unlimited. An exhausted rule stops firing but keeps counting
	// hits.
	Times uint64
	// P gates each scheduled firing on a seeded coin flip with this
	// probability; 0 (or >= 1) disables the gate.
	P float64
	// Seed seeds the rule's private PRNG for the P gate; rules with
	// the same seed replay identically.
	Seed int64
}

// Validate checks the rule.
func (r Rule) Validate() error {
	if r.Site == "" {
		return errors.New("fault: rule has no site")
	}
	switch r.Kind {
	case KindError, KindPanic:
	case KindLatency:
		if r.Delay <= 0 {
			return fmt.Errorf("fault: latency rule at %s needs a positive delay", r.Site)
		}
	default:
		return fmt.Errorf("fault: unknown kind %q at %s (valid: %s | %s | %s)",
			r.Kind, r.Site, KindError, KindLatency, KindPanic)
	}
	if r.P < 0 || r.P > 1 {
		return fmt.Errorf("fault: probability %v at %s outside [0,1]", r.P, r.Site)
	}
	return nil
}

// Event reports one Hit at an armed site to a subscriber.
type Event struct {
	// Site is the failpoint hit.
	Site string
	// Injected reports whether the rule fired on this hit.
	Injected bool
}

// SiteStats is one armed site's counters.
type SiteStats struct {
	// Site is the failpoint name.
	Site string `json:"site"`
	// Hits counts Hit calls at the site while armed.
	Hits uint64 `json:"hits"`
	// Injected counts hits on which the rule fired.
	Injected uint64 `json:"injected"`
	// Exhausted reports whether the rule hit its Times bound.
	Exhausted bool `json:"exhausted"`
}

// site is one armed failpoint's runtime state.
type site struct {
	rule      Rule
	hits      uint64
	injected  uint64
	exhausted bool
	rng       *rand.Rand
}

// Registry holds armed failpoints. All methods are safe for
// concurrent use; a disarmed registry's Hit costs one atomic load.
type Registry struct {
	armed atomic.Int32 // number of armed sites, the fast-path gate
	mu    sync.Mutex
	sites map[string]*site
	subs  []func(Event)
	sleep func(time.Duration) // test seam for latency injection
}

// Default is the process-wide registry: production call sites that
// have no registry threaded to them hit this one, and the corund
// -fault-spec flag arms it.
var Default = NewRegistry()

// NewRegistry creates an empty (disarmed) registry.
func NewRegistry() *Registry {
	return &Registry{sites: map[string]*site{}, sleep: time.Sleep}
}

// Arm installs the rules, replacing any existing rule at the same
// site. Invalid rules leave the registry unchanged.
func (r *Registry) Arm(rules ...Rule) error {
	for _, rule := range rules {
		if err := rule.Validate(); err != nil {
			return err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rule := range rules {
		if _, replaced := r.sites[rule.Site]; !replaced {
			r.armed.Add(1)
		}
		r.sites[rule.Site] = &site{rule: rule, rng: rand.New(rand.NewSource(rule.Seed))}
	}
	return nil
}

// ArmSpec parses and arms a semicolon-separated spec string; see
// ParseSpec for the grammar.
func (r *Registry) ArmSpec(spec string) error {
	rules, err := ParseSpec(spec)
	if err != nil {
		return err
	}
	return r.Arm(rules...)
}

// Disarm removes the named sites, or every site when called with
// none. Counters for removed sites are discarded.
func (r *Registry) Disarm(sites ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(sites) == 0 {
		r.armed.Add(-int32(len(r.sites)))
		r.sites = map[string]*site{}
		return
	}
	for _, s := range sites {
		if _, ok := r.sites[s]; ok {
			delete(r.sites, s)
			r.armed.Add(-1)
		}
	}
}

// Subscribe registers an observer called on every hit at an armed
// site. Observers run on the hitting goroutine and must be cheap;
// there is no unsubscribe.
func (r *Registry) Subscribe(fn func(Event)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subs = append(r.subs, fn)
}

// Stats snapshots every armed site's counters, sorted by site name.
func (r *Registry) Stats() []SiteStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SiteStats, 0, len(r.sites))
	for name, s := range r.sites {
		out = append(out, SiteStats{Site: name, Hits: s.hits, Injected: s.injected, Exhausted: s.exhausted})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Hit is the production call at a failpoint site: a no-op returning
// nil unless the site is armed and its schedule fires, in which case
// it returns an injected error, sleeps, or panics per the rule's
// kind. Latency injection sleeps outside the registry lock.
func (r *Registry) Hit(siteName string) error {
	if r.armed.Load() == 0 {
		return nil
	}
	r.mu.Lock()
	s, ok := r.sites[siteName]
	if !ok {
		r.mu.Unlock()
		return nil
	}
	s.hits++
	fire := false
	if !s.exhausted && s.hits > s.rule.After {
		k := s.hits - s.rule.After
		if s.rule.Every <= 1 || k%s.rule.Every == 0 {
			if s.rule.P <= 0 || s.rule.P >= 1 || s.rng.Float64() < s.rule.P {
				fire = true
			}
		}
	}
	if fire {
		s.injected++
		if s.rule.Times > 0 && s.injected >= s.rule.Times {
			s.exhausted = true
		}
	}
	rule := s.rule
	subs := r.subs
	sleep := r.sleep
	r.mu.Unlock()

	for _, fn := range subs {
		fn(Event{Site: siteName, Injected: fire})
	}
	if !fire {
		return nil
	}
	switch rule.Kind {
	case KindLatency:
		sleep(rule.Delay)
		return nil
	case KindPanic:
		panic(&Error{Site: siteName, Msg: rule.Msg})
	default:
		return &Error{Site: siteName, Msg: rule.Msg}
	}
}
