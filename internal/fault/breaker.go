package fault

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

// The breaker states. Closed passes every operation; Open sheds all
// of them until the cooldown elapses; HalfOpen lets exactly one probe
// through — its outcome closes or re-opens the circuit.
const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// Breaker is a consecutive-failure circuit breaker. It trips open
// after Threshold consecutive Failure calls, sheds every Allow for
// the cooldown, then half-opens: one probe is allowed through, and
// its Success/Failure closes or re-opens the circuit. All methods are
// safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state   BreakerState
	fails   int       // consecutive failures while closed
	until   time.Time // open expires at this instant
	probing bool      // the half-open probe slot is taken
	trips   uint64

	onChange func(from, to BreakerState)
}

// NewBreaker builds a closed breaker that trips after threshold
// consecutive failures (minimum 1) and stays open for cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// OnChange registers a state-transition observer. It runs outside the
// breaker's lock on the goroutine that caused the transition.
func (b *Breaker) OnChange(fn func(from, to BreakerState)) {
	b.mu.Lock()
	b.onChange = fn
	b.mu.Unlock()
}

// SetClock overrides the breaker's clock (tests only).
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

// Allow reports whether an operation may proceed: always while
// closed, never while open within the cooldown, and once per
// half-open window (the probe).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		b.mu.Unlock()
		return true
	case BreakerOpen:
		if b.now().Before(b.until) {
			b.mu.Unlock()
			return false
		}
		notify := b.transition(BreakerHalfOpen)
		b.probing = true
		b.mu.Unlock()
		notify()
		return true
	default: // half-open
		if b.probing {
			b.mu.Unlock()
			return false
		}
		b.probing = true
		b.mu.Unlock()
		return true
	}
}

// Success records a successful operation: it closes the circuit from
// half-open and resets the consecutive-failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.fails = 0
	b.probing = false
	notify := func() {}
	if b.state != BreakerClosed {
		notify = b.transition(BreakerClosed)
	}
	b.mu.Unlock()
	notify()
}

// Failure records a failed operation: the threshold'th consecutive
// failure trips the circuit open, and a failed half-open probe
// re-opens it for another cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	notify := func() {}
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.until = b.now().Add(b.cooldown)
			b.trips++
			notify = b.transition(BreakerOpen)
		}
	case BreakerHalfOpen:
		b.probing = false
		b.until = b.now().Add(b.cooldown)
		b.trips++
		notify = b.transition(BreakerOpen)
	}
	b.mu.Unlock()
	notify()
}

// State returns the breaker's current position. An expired cooldown
// still reports Open until an Allow claims the half-open probe: the
// circuit recovers through a successful operation, not by time alone.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips counts transitions to Open since construction.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// OpenUntil returns when the current open window ends, or the zero
// time if the circuit is not open.
func (b *Breaker) OpenUntil() time.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return time.Time{}
	}
	return b.until
}

// transition moves to the new state and returns the deferred observer
// call; the caller invokes it after releasing the lock.
func (b *Breaker) transition(to BreakerState) func() {
	from := b.state
	b.state = to
	fn := b.onChange
	if fn == nil || from == to {
		return func() {}
	}
	return func() { fn(from, to) }
}
