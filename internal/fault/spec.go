package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses the flag-friendly failpoint grammar:
//
//	spec  := entry *( ";" entry )
//	entry := site "=" kind [ "(" arg *( "," arg ) ")" ]
//	arg   := key "=" value | positional
//
// kind is error, latency, or panic. The one positional argument is
// the latency duration ("latency(10ms)") or the error/panic message.
// Keyed arguments tune the schedule: every=N (fire on every Nth
// eligible hit), after=N (skip the first N hits), times=K (stop after
// K injections), p=F and seed=S (seeded probability gate), and
// delay=DUR / msg=TEXT as explicit spellings of the positionals.
//
// Example:
//
//	journal/fsync=error(every=3,times=5);server/epoch=latency(50ms,p=0.5,seed=42)
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		rule, err := parseEntry(entry)
		if err != nil {
			return nil, err
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: empty spec")
	}
	return rules, nil
}

func parseEntry(entry string) (Rule, error) {
	site, rest, ok := strings.Cut(entry, "=")
	site = strings.TrimSpace(site)
	if !ok || site == "" {
		return Rule{}, fmt.Errorf("fault: entry %q is not site=kind(...)", entry)
	}
	rest = strings.TrimSpace(rest)
	kind, args := rest, ""
	if open := strings.IndexByte(rest, '('); open >= 0 {
		if !strings.HasSuffix(rest, ")") {
			return Rule{}, fmt.Errorf("fault: entry %q has an unclosed argument list", entry)
		}
		kind, args = rest[:open], rest[open+1:len(rest)-1]
	}
	rule := Rule{Site: site, Kind: Kind(strings.ToLower(strings.TrimSpace(kind)))}
	for _, arg := range strings.Split(args, ",") {
		arg = strings.TrimSpace(arg)
		if arg == "" {
			continue
		}
		if err := applyArg(&rule, arg); err != nil {
			return Rule{}, fmt.Errorf("fault: entry %q: %w", entry, err)
		}
	}
	if err := rule.Validate(); err != nil {
		return Rule{}, err
	}
	return rule, nil
}

func applyArg(rule *Rule, arg string) error {
	key, val, keyed := strings.Cut(arg, "=")
	if !keyed {
		// The positional argument: a duration for latency rules, the
		// injected message otherwise.
		if rule.Kind == KindLatency {
			d, err := time.ParseDuration(arg)
			if err != nil {
				return fmt.Errorf("bad latency duration %q: %w", arg, err)
			}
			rule.Delay = d
		} else {
			rule.Msg = arg
		}
		return nil
	}
	key, val = strings.TrimSpace(key), strings.TrimSpace(val)
	switch strings.ToLower(key) {
	case "every":
		return parseUint(val, &rule.Every)
	case "after":
		return parseUint(val, &rule.After)
	case "times":
		return parseUint(val, &rule.Times)
	case "p":
		p, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("bad probability %q: %w", val, err)
		}
		rule.P = p
	case "seed":
		s, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q: %w", val, err)
		}
		rule.Seed = s
	case "delay":
		d, err := time.ParseDuration(val)
		if err != nil {
			return fmt.Errorf("bad delay %q: %w", val, err)
		}
		rule.Delay = d
	case "msg":
		rule.Msg = val
	default:
		return fmt.Errorf("unknown argument %q", key)
	}
	return nil
}

func parseUint(val string, dst *uint64) error {
	n, err := strconv.ParseUint(val, 10, 64)
	if err != nil {
		return fmt.Errorf("bad count %q: %w", val, err)
	}
	*dst = n
	return nil
}
