package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/model"
	"corun/internal/online"
	"corun/internal/policy"
	"corun/internal/workload"
)

var (
	charOnce sync.Once
	charVal  *model.Characterization
	charErr  error
)

func testChar(t testing.TB) *model.Characterization {
	t.Helper()
	charOnce.Do(func() {
		charVal, charErr = model.Characterize(model.CharacterizeOptions{
			Cfg: apu.DefaultConfig(), Mem: memsys.Default(),
		})
	})
	if charErr != nil {
		t.Fatal(charErr)
	}
	return charVal
}

func newTestServer(t testing.TB, mod func(*Config)) *Server {
	t.Helper()
	cfg := Config{Char: testChar(t), Cap: 15, Policy: online.PolicyHCSPlus, Seed: 1}
	if mod != nil {
		mod(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// metricValue extracts one sample from a /metrics body; name may
// include a label clause.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

func waitAllTerminal(t *testing.T, s *Server, n int, within time.Duration) []Job {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		jobs := s.Jobs()
		term := 0
		for _, j := range jobs {
			if j.State.Terminal() {
				term++
			}
		}
		if len(jobs) >= n && term == len(jobs) {
			return jobs
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("jobs not terminal after %v: %+v", within, s.Jobs())
	return nil
}

// TestEndToEnd drives the full daemon over HTTP: submit a mixed batch,
// wait for it to be served, then check status, plan, trace, and the
// metrics surface against the job states.
func TestEndToEnd(t *testing.T) {
	s := newTestServer(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	specs := []string{
		`{"program":"streamcluster"}`,
		`{"program":"dwt2d","scale":1.2,"label":"waves"}`,
		`{"program":"hotspot","deadline_s":10000}`,
		`{"program":"lud","deadline_s":0.001}`,
		`{"program":"cfd","scale":0.9}`,
	}
	ids := make([]string, 0, len(specs))
	for _, spec := range specs {
		code, body := postJSON(t, ts.URL+"/v1/jobs", spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s -> %d: %s", spec, code, body)
		}
		var j Job
		if err := json.Unmarshal([]byte(body), &j); err != nil {
			t.Fatal(err)
		}
		if j.ID == "" || j.State != JobQueued {
			t.Fatalf("submit response %+v", j)
		}
		ids = append(ids, j.ID)
	}

	jobs := waitAllTerminal(t, s, len(specs), 60*time.Second)
	for _, j := range jobs {
		if j.State != JobDone {
			t.Fatalf("job %s state %s (%s)", j.ID, j.State, j.Error)
		}
		if j.FinishedSimS <= j.StartedSimS || j.ResponseS <= 0 {
			t.Errorf("job %s malformed times: %+v", j.ID, j)
		}
		if j.Device != "CPU" && j.Device != "GPU" {
			t.Errorf("job %s device %q", j.ID, j.Device)
		}
		if j.Epoch < 1 {
			t.Errorf("job %s epoch %d", j.ID, j.Epoch)
		}
	}

	// Per-job status over HTTP, including deadline accounting.
	code, body := get(t, ts.URL+"/v1/jobs/"+ids[2])
	if code != http.StatusOK {
		t.Fatalf("job status -> %d", code)
	}
	var hotspot Job
	if err := json.Unmarshal([]byte(body), &hotspot); err != nil {
		t.Fatal(err)
	}
	if hotspot.DeadlineMet == nil || !*hotspot.DeadlineMet {
		t.Errorf("generous deadline not met: %+v", hotspot)
	}
	code, body = get(t, ts.URL+"/v1/jobs/"+ids[3])
	if code != http.StatusOK {
		t.Fatal(code)
	}
	var lud Job
	if err := json.Unmarshal([]byte(body), &lud); err != nil {
		t.Fatal(err)
	}
	if lud.DeadlineMet == nil || *lud.DeadlineMet {
		t.Errorf("impossible deadline reported met: %+v", lud)
	}

	// Plan: every scheduled job appears, power budget fields populated.
	code, body = get(t, ts.URL+"/v1/plan")
	if code != http.StatusOK {
		t.Fatalf("plan -> %d: %s", code, body)
	}
	var plan PlanView
	if err := json.Unmarshal([]byte(body), &plan); err != nil {
		t.Fatal(err)
	}
	if plan.State != "done" || plan.Policy != "hcs+" || plan.CapWatts != 15 {
		t.Errorf("plan header %+v", plan)
	}
	if len(plan.CPUOrder)+len(plan.GPUOrder) != len(plan.Jobs) || len(plan.Jobs) == 0 {
		t.Errorf("plan orders inconsistent: %+v", plan)
	}
	if plan.SimulatedMakespanS <= 0 || plan.PredictedMakespanS <= 0 || plan.AvgPowerWatts <= 0 {
		t.Errorf("plan missing epoch results: %+v", plan)
	}
	if plan.CapUtilization <= 0 || plan.CapUtilization > 1.5 {
		t.Errorf("cap utilization %v out of range", plan.CapUtilization)
	}

	// Trace in both encodings.
	code, body = get(t, ts.URL+"/v1/trace")
	if code != http.StatusOK || !strings.HasPrefix(body, "time_s,epoch_makespan_s") {
		t.Errorf("csv trace -> %d: %q", code, body)
	}
	code, body = get(t, ts.URL+"/v1/trace?format=json")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	var tr struct {
		Series []struct {
			Name    string `json:"name"`
			Samples []any  `json:"samples"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Series) != 3 || len(tr.Series[0].Samples) == 0 {
		t.Errorf("json trace %+v", tr)
	}

	// Metrics agree with job states and are valid exposition format.
	code, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	checkMetricsFormat(t, body)
	n := float64(len(specs))
	if v := metricValue(t, body, "corund_jobs_submitted_total"); v != n {
		t.Errorf("submitted %v, want %v", v, n)
	}
	if v := metricValue(t, body, "corund_jobs_done_total"); v != n {
		t.Errorf("done %v, want %v", v, n)
	}
	if v := metricValue(t, body, "corund_queue_depth"); v != 0 {
		t.Errorf("queue depth %v", v)
	}
	if v := metricValue(t, body, "corund_epochs_total"); v < 1 {
		t.Errorf("epochs %v", v)
	}
	if v := metricValue(t, body, "corund_up"); v != 1 {
		t.Errorf("up %v", v)
	}
	if v := metricValue(t, body, "corund_epoch_latency_seconds_count"); v < 1 {
		t.Errorf("latency count %v", v)
	}
	if v := metricValue(t, body, "corund_power_cap_watts"); v != 15 {
		t.Errorf("cap gauge %v", v)
	}
	sched := metricValue(t, body, `corund_jobs_scheduled_total{policy="hcs+"}`)
	if sched != n {
		t.Errorf("scheduled{hcs+} %v, want %v", sched, n)
	}
	if v := metricValue(t, body, "corund_energy_joules_total"); v <= 0 {
		t.Errorf("energy %v", v)
	}

	// Liveness and readiness while healthy and started.
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz -> %d", code)
	}
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("readyz -> %d", code)
	}
}

// checkMetricsFormat asserts every line is HELP/TYPE framing or a
// well-formed sample.
func checkMetricsFormat(t *testing.T, body string) {
	t.Helper()
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"\})? [^ ]+$`)
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("malformed metrics line %q", line)
		}
	}
}

// TestGracefulDrain submits jobs, drains immediately, and checks that
// the queue is flushed, new submissions are rejected, and the loop
// exits.
func TestGracefulDrain(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.EpochGap = 500 * time.Millisecond })
	s.Start(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		code, body := postJSON(t, ts.URL+"/v1/jobs", `{"program":"hotspot"}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit -> %d: %s", code, body)
		}
	}
	// Jobs are queued inside the batching gap; drain now.
	s.Drain()

	if code, _ := postJSON(t, ts.URL+"/v1/jobs", `{"program":"lud"}`); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining -> %d, want 503", code)
	}
	// Liveness holds while draining; readiness drops.
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz while draining -> %d, want 200", code)
	}
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining -> %d, want 503", code)
	}

	select {
	case <-s.Drained():
	case <-time.After(60 * time.Second):
		t.Fatal("drain did not finish")
	}

	// The in-flight queue was flushed through a final epoch.
	for _, j := range s.Jobs() {
		if j.State != JobDone {
			t.Errorf("job %s state %s after drain", j.ID, j.State)
		}
	}
	_, body := get(t, ts.URL+"/metrics")
	if v := metricValue(t, body, "corund_jobs_done_total"); v != 3 {
		t.Errorf("done %v, want 3", v)
	}
	if v := metricValue(t, body, "corund_jobs_rejected_total"); v != 1 {
		t.Errorf("rejected %v, want 1", v)
	}
	if v := metricValue(t, body, "corund_queue_depth"); v != 0 {
		t.Errorf("queue depth %v", v)
	}
	if v := metricValue(t, body, "corund_up"); v != 0 {
		t.Errorf("up %v after drain", v)
	}
}

// TestContextCancelDrains covers the SIGTERM path: cancelling the
// loop's context stops admission and exits after flushing.
func TestContextCancelDrains(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.EpochGap = 200 * time.Millisecond })
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	if _, err := s.Submit(mustSpec(t, "srad")); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case <-s.Drained():
	case <-time.After(60 * time.Second):
		t.Fatal("cancel did not drain")
	}
	for _, j := range s.Jobs() {
		if !j.State.Terminal() {
			t.Errorf("job %s left in %s", j.ID, j.State)
		}
	}
	if _, err := s.Submit(mustSpec(t, "lud")); err == nil {
		t.Error("submit accepted after cancel")
	}
}

// TestAdmissionControl fills the queue past MaxQueue and expects 429.
// The scheduler is started only afterwards: the loop claims the queue
// as soon as it sees work, so the bound is filled before Start to keep
// the check deterministic.
func TestAdmissionControl(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxQueue = 2
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		if code, body := postJSON(t, ts.URL+"/v1/jobs", `{"program":"lud"}`); code != http.StatusAccepted {
			t.Fatalf("submit %d -> %d: %s", i, code, body)
		}
	}
	code, body := postJSON(t, ts.URL+"/v1/jobs", `{"program":"lud"}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit -> %d: %s", code, body)
	}
	_, mbody := get(t, ts.URL+"/metrics")
	if v := metricValue(t, mbody, "corund_jobs_rejected_total"); v != 1 {
		t.Errorf("rejected %v, want 1", v)
	}
	if v := metricValue(t, mbody, "corund_queue_depth"); v != 2 {
		t.Errorf("queue depth %v, want 2", v)
	}
	if v := metricValue(t, mbody, `corund_tenant_queued{tenant="default"}`); v != 2 {
		t.Errorf("tenant queue depth %v, want 2", v)
	}
	if v := metricValue(t, mbody, `corund_tenant_rejected_total{tenant="default"}`); v != 1 {
		t.Errorf("tenant rejected %v, want 1", v)
	}
	// Cleanup: start the scheduler and flush the held queue.
	s.Start(context.Background())
	s.Drain()
	select {
	case <-s.Drained():
	case <-time.After(60 * time.Second):
		t.Fatal("drain stuck")
	}
}

// TestBadRequests covers the API's 4xx paths, including the bad-policy
// 400 that online.ParsePolicy enables.
func TestBadRequests(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/v1/jobs", `{"program":"nosuch"}`, http.StatusBadRequest},
		{"POST", "/v1/jobs", `{"program":"cfd","scale":-2}`, http.StatusBadRequest},
		{"POST", "/v1/jobs", `{"program":"cfd","bogus":1}`, http.StatusBadRequest},
		{"POST", "/v1/jobs", `{`, http.StatusBadRequest},
		{"POST", "/v1/cap", `{"cap_watts":-3}`, http.StatusBadRequest},
		{"POST", "/v1/cap", `{}`, http.StatusBadRequest},
		{"POST", "/v1/cap", `{"cap_watts":0.5}`, http.StatusBadRequest},
		{"POST", "/v1/policy", `{"policy":"fifo"}`, http.StatusBadRequest},
		{"POST", "/v1/policy", `nope`, http.StatusBadRequest},
		{"GET", "/v1/jobs/job-999999", "", http.StatusNotFound},
		{"GET", "/v1/plan", "", http.StatusNotFound}, // no epoch yet
	}
	for _, c := range cases {
		var code int
		var body string
		if c.method == "POST" {
			code, body = postJSON(t, ts.URL+c.path, c.body)
		} else {
			code, body = get(t, ts.URL+c.path)
		}
		if code != c.want {
			t.Errorf("%s %s %s -> %d, want %d (%s)", c.method, c.path, c.body, code, c.want, body)
		}
		if code >= 400 && !strings.Contains(body, `"error"`) {
			t.Errorf("%s %s error body %q lacks error field", c.method, c.path, body)
		}
	}
}

// TestListPolicies checks GET /v1/policies returns the registered set
// and the active policy.
func TestListPolicies(t *testing.T) {
	s := newTestServer(t, nil)
	s.Start(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts.URL+"/v1/policies")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/policies -> %d: %s", code, body)
	}
	var got struct {
		Policies []policy.Info `json:"policies"`
		Active   string        `json:"active"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("decode %q: %v", body, err)
	}
	names := make([]string, len(got.Policies))
	for i, info := range got.Policies {
		names[i] = info.Name
	}
	if want := policy.Names(); !reflect.DeepEqual(names, want) {
		t.Errorf("policies %v, want %v", names, want)
	}
	if got.Active != s.Policy().String() {
		t.Errorf("active %q, want %q", got.Active, s.Policy())
	}
	s.Drain()
	<-s.Drained()
}

// TestLiveCapAndPolicy changes the cap and policy over HTTP and checks
// the next epoch honours them.
func TestLiveCapAndPolicy(t *testing.T) {
	s := newTestServer(t, nil)
	s.Start(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body := postJSON(t, ts.URL+"/v1/cap", `{"cap_watts":18}`); code != http.StatusOK {
		t.Fatalf("set cap -> %d: %s", code, body)
	}
	if code, body := get(t, ts.URL+"/v1/cap"); code != http.StatusOK || !strings.Contains(body, "18") {
		t.Fatalf("get cap -> %d: %s", code, body)
	}
	if code, body := postJSON(t, ts.URL+"/v1/policy", `{"policy":"random"}`); code != http.StatusOK {
		t.Fatalf("set policy -> %d: %s", code, body)
	}

	if code, body := postJSON(t, ts.URL+"/v1/jobs", `{"program":"heartwall"}`); code != http.StatusAccepted {
		t.Fatalf("submit -> %d: %s", code, body)
	}
	waitAllTerminal(t, s, 1, 60*time.Second)

	plan, ok := s.Plan()
	if !ok {
		t.Fatal("no plan")
	}
	if plan.Policy != "random" || plan.CapWatts != 18 {
		t.Errorf("plan %+v did not honour live settings", plan)
	}
	_, body := get(t, ts.URL+"/metrics")
	if v := metricValue(t, body, `corund_jobs_scheduled_total{policy="random"}`); v != 1 {
		t.Errorf("scheduled{random} %v, want 1", v)
	}
	if v := metricValue(t, body, "corund_power_cap_watts"); v != 18 {
		t.Errorf("cap gauge %v, want 18", v)
	}
	s.Drain()
	<-s.Drained()
}

// TestConfigValidation covers New's rejection paths.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Policy: online.PolicyHCSPlus}); err == nil {
		t.Error("model policy without characterization accepted")
	}
	if _, err := New(Config{Policy: online.Policy("fifo")}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := New(Config{Policy: online.PolicyRandom, Cap: 0.5}); err == nil {
		t.Error("infeasible cap accepted")
	}
	if _, err := New(Config{Policy: online.PolicyRandom, MaxQueue: -1}); err == nil {
		t.Error("negative queue bound accepted")
	}
	s, err := New(Config{Policy: online.PolicyRandom})
	if err != nil {
		t.Fatalf("random policy without characterization should work: %v", err)
	}
	if err := s.SetPolicy(online.PolicyHCS); err == nil {
		t.Error("switch to model policy without characterization accepted")
	}
	if err := s.SetCap(-1); err == nil {
		t.Error("negative cap accepted")
	}
}

func mustSpec(t *testing.T, program string) workload.JobSpec {
	t.Helper()
	s := workload.JobSpec{Program: program}
	s.Normalize()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}
