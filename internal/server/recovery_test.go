package server

// Crash-recovery integration tests: a daemon journaling to a data
// dir is killed without draining, its log tail is corrupted the way
// a power cut would, and a second daemon on the same dir must come
// back with the cap, policy, and every acknowledged job intact.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"corun/internal/journal"
	"corun/internal/online"
	"corun/internal/workload"
)

const walName = "wal.log" // mirrors the journal package's log file name

func newJournalServer(t *testing.T, dir string) *Server {
	t.Helper()
	s := newTestServer(t, func(c *Config) {
		c.DataDir = dir
		c.Fsync = journal.FsyncAlways
	})
	t.Cleanup(func() { s.Close() })
	return s
}

func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s1 := newJournalServer(t, dir)
	ts := httptest.NewServer(s1.Handler())
	defer ts.Close()

	// The scheduler loop was never started: liveness holds but the
	// daemon is not ready to serve jobs yet.
	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz -> %d: %s", code, body)
	}
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
		t.Fatalf("readyz before start -> %d: %s", code, body)
	}

	// Acknowledge three jobs and two control changes; with
	// FsyncAlways every 2xx response implies a durable record.
	for _, spec := range []string{
		`{"program":"streamcluster"}`,
		`{"program":"dwt2d","scale":1.2,"label":"waves"}`,
		`{"program":"hotspot","deadline_s":10000}`,
	} {
		if code, body := postJSON(t, ts.URL+"/v1/jobs", spec); code != http.StatusAccepted {
			t.Fatalf("submit %s -> %d: %s", spec, code, body)
		}
	}
	if code, body := postJSON(t, ts.URL+"/v1/cap", `{"cap_watts":12}`); code != http.StatusOK {
		t.Fatalf("set cap -> %d: %s", code, body)
	}
	if code, body := postJSON(t, ts.URL+"/v1/policy", `{"policy":"hcs"}`); code != http.StatusOK {
		t.Fatalf("set policy -> %d: %s", code, body)
	}
	want := s1.Jobs()

	// Hard stop: no Drain, no Close — the data dir is all that
	// survives. Then a torn in-flight write rots the end of the log.
	ts.Close()
	path := filepath.Join(dir, walName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x2a, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newJournalServer(t, dir)
	if got := s2.Cap(); got != 12 {
		t.Errorf("recovered cap %v, want 12", got)
	}
	if got := s2.Policy(); got != online.PolicyHCS {
		t.Errorf("recovered policy %v, want %v", got, online.PolicyHCS)
	}
	if got := s2.QueueDepth(); got != len(want) {
		t.Errorf("queue depth %d, want %d re-enqueued jobs", got, len(want))
	}
	if s2.m.jlTruncated.Value() == 0 {
		t.Error("torn tail not truncated")
	}
	if s2.m.jlRecovered.Value() != float64(len(want)) {
		t.Errorf("recovered gauge %v, want %d", s2.m.jlRecovered.Value(), len(want))
	}
	if got := s2.Jobs(); !reflect.DeepEqual(got, want) {
		t.Errorf("jobs not restored bit-for-bit:\n got %+v\nwant %+v", got, want)
	}

	// The recovered queue is live: start the scheduler and the
	// re-enqueued jobs run to completion.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s2.Start(ctx)
	for _, j := range waitAllTerminal(t, s2, len(want), 60*time.Second) {
		if j.State != JobDone {
			t.Errorf("job %s state %s (%s)", j.ID, j.State, j.Error)
		}
	}
	// A fourth submission resumes the ID sequence past the recovered
	// jobs instead of reusing job-000002.
	j4, err := s2.Submit(workload.JobSpec{Program: "lud"})
	if err != nil {
		t.Fatal(err)
	}
	if j4.ID != "job-000003" {
		t.Errorf("post-recovery ID %s, want job-000003", j4.ID)
	}
}

// TestRestartAfterDrain is the clean-shutdown half: drain flushes the
// journal, and a restart restores the finished jobs and clock exactly
// with nothing re-enqueued.
func TestRestartAfterDrain(t *testing.T) {
	dir := t.TempDir()
	s1 := newJournalServer(t, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s1.Start(ctx)
	for _, p := range []string{"streamcluster", "lud"} {
		if _, err := s1.Submit(workload.JobSpec{Program: p}); err != nil {
			t.Fatal(err)
		}
	}
	waitAllTerminal(t, s1, 2, 60*time.Second)
	if err := s1.DrainAndWait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	want := s1.Jobs()

	s2 := newJournalServer(t, dir)
	if got := s2.Jobs(); !reflect.DeepEqual(got, want) {
		t.Errorf("jobs not restored bit-for-bit:\n got %+v\nwant %+v", got, want)
	}
	if s2.QueueDepth() != 0 || s2.m.jlRecovered.Value() != 0 {
		t.Errorf("terminal jobs re-enqueued: depth %d, recovered %v",
			s2.QueueDepth(), s2.m.jlRecovered.Value())
	}
	if s2.m.jlTruncated.Value() != 0 {
		t.Errorf("clean shutdown left %v truncated bytes", s2.m.jlTruncated.Value())
	}
	if s1.Clock() != s2.Clock() {
		t.Errorf("clock %v restored as %v", s1.Clock(), s2.Clock())
	}
}
