package server

// Crash-recovery integration tests: a daemon journaling to a data
// dir is killed without draining, its log tail is corrupted the way
// a power cut would, and a second daemon on the same dir must come
// back with the cap, policy, and every acknowledged job intact.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"corun/internal/journal"
	"corun/internal/online"
	"corun/internal/workload"
)

const walName = "wal.log" // mirrors the journal package's log file name

func newJournalServer(t *testing.T, dir string) *Server {
	t.Helper()
	s := newTestServer(t, func(c *Config) {
		c.DataDir = dir
		c.Fsync = journal.FsyncAlways
	})
	t.Cleanup(func() { s.Close() })
	return s
}

func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s1 := newJournalServer(t, dir)
	ts := httptest.NewServer(s1.Handler())
	defer ts.Close()

	// The scheduler loop was never started: liveness holds but the
	// daemon is not ready to serve jobs yet.
	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz -> %d: %s", code, body)
	}
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
		t.Fatalf("readyz before start -> %d: %s", code, body)
	}

	// Acknowledge three jobs and two control changes; with
	// FsyncAlways every 2xx response implies a durable record.
	for _, spec := range []string{
		`{"program":"streamcluster"}`,
		`{"program":"dwt2d","scale":1.2,"label":"waves"}`,
		`{"program":"hotspot","deadline_s":10000}`,
	} {
		if code, body := postJSON(t, ts.URL+"/v1/jobs", spec); code != http.StatusAccepted {
			t.Fatalf("submit %s -> %d: %s", spec, code, body)
		}
	}
	if code, body := postJSON(t, ts.URL+"/v1/cap", `{"cap_watts":12}`); code != http.StatusOK {
		t.Fatalf("set cap -> %d: %s", code, body)
	}
	if code, body := postJSON(t, ts.URL+"/v1/policy", `{"policy":"hcs"}`); code != http.StatusOK {
		t.Fatalf("set policy -> %d: %s", code, body)
	}
	want := s1.Jobs()

	// Hard stop: no Drain, no Close — the data dir is all that
	// survives. Then a torn in-flight write rots the end of the log.
	ts.Close()
	path := filepath.Join(dir, walName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x2a, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newJournalServer(t, dir)
	if got := s2.Cap(); got != 12 {
		t.Errorf("recovered cap %v, want 12", got)
	}
	if got := s2.Policy(); got != online.PolicyHCS {
		t.Errorf("recovered policy %v, want %v", got, online.PolicyHCS)
	}
	if got := s2.QueueDepth(); got != len(want) {
		t.Errorf("queue depth %d, want %d re-enqueued jobs", got, len(want))
	}
	if s2.m.jlTruncated.Value() == 0 {
		t.Error("torn tail not truncated")
	}
	if s2.m.jlRecovered.Value() != float64(len(want)) {
		t.Errorf("recovered gauge %v, want %d", s2.m.jlRecovered.Value(), len(want))
	}
	if got := s2.Jobs(); !reflect.DeepEqual(got, want) {
		t.Errorf("jobs not restored bit-for-bit:\n got %+v\nwant %+v", got, want)
	}

	// The recovered queue is live: start the scheduler and the
	// re-enqueued jobs run to completion.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s2.Start(ctx)
	for _, j := range waitAllTerminal(t, s2, len(want), 60*time.Second) {
		if j.State != JobDone {
			t.Errorf("job %s state %s (%s)", j.ID, j.State, j.Error)
		}
	}
	// A fourth submission resumes the ID sequence past the recovered
	// jobs instead of reusing job-000002.
	j4, err := s2.Submit(workload.JobSpec{Program: "lud"})
	if err != nil {
		t.Fatal(err)
	}
	if j4.ID != "job-000003" {
		t.Errorf("post-recovery ID %s, want job-000003", j4.ID)
	}
}

// TestCrashRecoveryPriorityOrder pins the recovery ordering contract:
// replay must rebuild the per-tenant admission queues and select by
// priority and fairness, not raw record order. Four jobs are
// journaled in the order low, normal, high, high-on-another-tenant;
// after a hard stop, a MaxBatch=1 restart must run the high-priority
// jobs first even though the low one leads the log.
func TestCrashRecoveryPriorityOrder(t *testing.T) {
	dir := t.TempDir()
	s1 := newJournalServer(t, dir)
	submit := func(s *Server, spec workload.JobSpec) Job {
		t.Helper()
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %+v: %v", spec, err)
		}
		return j
	}
	low := submit(s1, workload.JobSpec{Program: "lud", Priority: "low"})
	norm := submit(s1, workload.JobSpec{Program: "lud"})
	highA := submit(s1, workload.JobSpec{Program: "lud", Priority: "high"})
	highB := submit(s1, workload.JobSpec{Program: "lud", Priority: "high", Tenant: "b"})

	// Hard stop: the scheduler never started, so all four jobs are
	// journaled non-terminal in submission order.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, func(c *Config) {
		c.DataDir = dir
		c.Fsync = journal.FsyncAlways
		c.MaxBatch = 1 // one job per epoch -> the epoch number IS the selection order
	})
	defer s2.Close()
	if got := s2.QueueDepth(); got != 4 {
		t.Fatalf("recovered queue depth %d, want 4", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s2.Start(ctx)
	epochs := map[string]int{}
	for _, j := range waitAllTerminal(t, s2, 4, 60*time.Second) {
		if j.State != JobDone {
			t.Errorf("job %s state %s (%s)", j.ID, j.State, j.Error)
		}
		epochs[j.ID] = j.Epoch
	}
	// Selection order: both highs first (tenant b is fresh, so WFQ
	// puts its start tag ahead of the backlogged default tenant's),
	// then normal, then low — NOT the record order low, norm, high.
	want := map[string]int{highB.ID: 1, highA.ID: 2, norm.ID: 3, low.ID: 4}
	if !reflect.DeepEqual(epochs, want) {
		t.Errorf("recovered selection order (by epoch) = %v, want %v", epochs, want)
	}
}

// TestPriorityPreemption drives the cooperative-preemption path end to
// end: a claimed low-priority batch member is displaced by a
// higher-priority job that lands during the batching gap, requeued
// (not failed, not resubmitted), and served next epoch. The long gap
// plus Drain makes the boundary deterministic: draining cuts the gap
// short, so no timing is involved.
func TestPriorityPreemption(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxBatch = 1
		c.EpochGap = 60 * time.Second
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	low, err := s.Submit(workload.JobSpec{Program: "lud", Priority: "low"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the loop to claim it (the queue empties), so the high
	// submission below lands during the gap, against a claimed batch.
	deadline := time.Now().Add(30 * time.Second)
	for s.QueueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("low job never claimed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	high, err := s.Submit(workload.JobSpec{Program: "lud", Priority: "high"})
	if err != nil {
		t.Fatal(err)
	}
	// Drain: the loop stops waiting out the gap, preempts at the
	// boundary, and flushes both jobs through final rounds.
	s.Drain()
	select {
	case <-s.Drained():
	case <-time.After(60 * time.Second):
		t.Fatal("drain stuck")
	}
	gotHigh, _ := s.Job(high.ID)
	gotLow, _ := s.Job(low.ID)
	if gotHigh.State != JobDone || gotLow.State != JobDone {
		t.Fatalf("states high=%s low=%s, want done/done", gotHigh.State, gotLow.State)
	}
	if gotHigh.Epoch != 1 || gotLow.Epoch != 2 {
		t.Errorf("epochs high=%d low=%d, want 1 and 2 (low preempted to the next epoch)",
			gotHigh.Epoch, gotLow.Epoch)
	}
	if v := s.m.preemptions.Value(); v != 1 {
		t.Errorf("preemptions %v, want 1", v)
	}
}

// TestRestartAfterDrain is the clean-shutdown half: drain flushes the
// journal, and a restart restores the finished jobs and clock exactly
// with nothing re-enqueued.
func TestRestartAfterDrain(t *testing.T) {
	dir := t.TempDir()
	s1 := newJournalServer(t, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s1.Start(ctx)
	for _, p := range []string{"streamcluster", "lud"} {
		if _, err := s1.Submit(workload.JobSpec{Program: p}); err != nil {
			t.Fatal(err)
		}
	}
	waitAllTerminal(t, s1, 2, 60*time.Second)
	if err := s1.DrainAndWait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	want := s1.Jobs()

	s2 := newJournalServer(t, dir)
	if got := s2.Jobs(); !reflect.DeepEqual(got, want) {
		t.Errorf("jobs not restored bit-for-bit:\n got %+v\nwant %+v", got, want)
	}
	if s2.QueueDepth() != 0 || s2.m.jlRecovered.Value() != 0 {
		t.Errorf("terminal jobs re-enqueued: depth %d, recovered %v",
			s2.QueueDepth(), s2.m.jlRecovered.Value())
	}
	if s2.m.jlTruncated.Value() != 0 {
		t.Errorf("clean shutdown left %v truncated bytes", s2.m.jlTruncated.Value())
	}
	if s1.Clock() != s2.Clock() {
		t.Errorf("clock %v restored as %v", s1.Clock(), s2.Clock())
	}
}
