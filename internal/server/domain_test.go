package server

// Domain-cap API and metrics tests: the /v1/cap plane fields
// round-trip and merge with absent fields, the domain and thermal
// series appear on /metrics after an epoch, and plane caps survive a
// journal restart.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"corun/internal/apu"
	"corun/internal/journal"
)

func TestCapDomainRoundTrip(t *testing.T) {
	s := newTestServer(t, nil)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// GET before any change reports the configured package cap and
	// unconfigured planes.
	if code, body := get(t, ts.URL+"/v1/cap"); code != http.StatusOK ||
		!strings.Contains(body, `"cap_watts": 15`) || !strings.Contains(body, `"pp0_watts": 0`) {
		t.Fatalf("get cap -> %d: %s", code, body)
	}

	// Set both plane caps alongside the package cap.
	code, body := postJSON(t, ts.URL+"/v1/cap", `{"cap_watts":14,"pp0_watts":6,"pp1_watts":9}`)
	if code != http.StatusOK {
		t.Fatalf("set caps -> %d: %s", code, body)
	}
	if dc := s.DomainCaps(); dc.PP0 != 6 || dc.PP1 != 9 {
		t.Fatalf("DomainCaps after set = %+v, want {6 9}", dc)
	}
	if _, body := get(t, ts.URL+"/v1/cap"); !strings.Contains(body, `"pp0_watts": 6`) || !strings.Contains(body, `"pp1_watts": 9`) {
		t.Fatalf("get cap did not round-trip planes: %s", body)
	}

	// A package-only update must not clear the plane caps: absent
	// fields merge with the current values.
	if code, body := postJSON(t, ts.URL+"/v1/cap", `{"cap_watts":13}`); code != http.StatusOK {
		t.Fatalf("package-only update -> %d: %s", code, body)
	}
	if dc := s.DomainCaps(); dc.PP0 != 6 || dc.PP1 != 9 {
		t.Fatalf("package-only update cleared planes: %+v", dc)
	}
	// And a plane-only update keeps the package cap.
	if code, body := postJSON(t, ts.URL+"/v1/cap", `{"pp1_watts":0}`); code != http.StatusOK {
		t.Fatalf("plane-only update -> %d: %s", code, body)
	}
	if s.Cap() != 13 || s.DomainCaps().PP1 != 0 || s.DomainCaps().PP0 != 6 {
		t.Fatalf("plane-only update: cap=%v dc=%+v", s.Cap(), s.DomainCaps())
	}

	// An empty body and an infeasible plane cap are both rejected.
	if code, _ := postJSON(t, ts.URL+"/v1/cap", `{}`); code != http.StatusBadRequest {
		t.Errorf("empty body -> %d, want 400", code)
	}
	if code, body := postJSON(t, ts.URL+"/v1/cap", `{"pp0_watts":0.01}`); code != http.StatusBadRequest || !strings.Contains(body, "apu:") {
		t.Errorf("infeasible plane cap -> %d: %s", code, body)
	}
}

func TestDomainMetricsExposed(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Domains = apu.DomainCaps{PP1: 9}
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body := postJSON(t, ts.URL+"/v1/jobs", `{"program":"hotspot"}`); code != http.StatusAccepted {
		t.Fatalf("submit -> %d: %s", code, body)
	}
	if code, body := postJSON(t, ts.URL+"/v1/jobs", `{"program":"lud"}`); code != http.StatusAccepted {
		t.Fatalf("submit -> %d: %s", code, body)
	}
	waitAllTerminal(t, s, 2, 60*time.Second)

	_, body := get(t, ts.URL+"/metrics")
	if v := metricValue(t, body, `corund_domain_cap_watts{domain="pp1"}`); v != 9 {
		t.Errorf("pp1 cap gauge = %v, want 9", v)
	}
	pp0 := metricValue(t, body, `corund_domain_watts{domain="pp0"}`)
	pp1 := metricValue(t, body, `corund_domain_watts{domain="pp1"}`)
	if pp0 <= 0 || pp1 < 0 {
		t.Errorf("domain watts pp0=%v pp1=%v after an epoch", pp0, pp1)
	}
	if temp := metricValue(t, body, "corund_temp_celsius"); temp <= 0 {
		t.Errorf("temp gauge = %v, want > ambient after an epoch", temp)
	}
	// throttle counter must exist (zero is fine on an un-throttled run).
	if v := metricValue(t, body, "corund_throttle_total"); v < 0 {
		t.Errorf("throttle counter = %v", v)
	}
	// Exactly one binding-constraint series holds 1.
	ones := 0
	for _, c := range bindingConstraints {
		if metricValue(t, body, `corund_binding_constraint{constraint="`+c+`"}`) == 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Errorf("binding constraint gauges: %d series at 1, want exactly 1 in:\n%s", ones, body)
	}
}

func TestDomainCapRecovery(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, func(c *Config) {
		c.DataDir = dir
		c.Fsync = journal.FsyncAlways
	})
	ts := httptest.NewServer(s1.Handler())
	if code, body := postJSON(t, ts.URL+"/v1/cap", `{"cap_watts":14,"pp0_watts":6,"pp1_watts":9}`); code != http.StatusOK {
		t.Fatalf("set caps -> %d: %s", code, body)
	}
	ts.Close()
	s1.Close()

	s2 := newTestServer(t, func(c *Config) {
		c.DataDir = dir
		c.Fsync = journal.FsyncAlways
	})
	defer s2.Close()
	if got := s2.Cap(); got != 14 {
		t.Errorf("recovered cap %v, want 14", got)
	}
	if dc := s2.DomainCaps(); dc.PP0 != 6 || dc.PP1 != 9 {
		t.Errorf("recovered plane caps %+v, want {6 9}", dc)
	}
	// The recovered caps are live on the API and the gauges.
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if _, body := get(t, ts2.URL+"/v1/cap"); !strings.Contains(body, `"pp0_watts": 6`) {
		t.Errorf("recovered caps not served: %s", body)
	}
	_, mbody := get(t, ts2.URL+"/metrics")
	if v := metricValue(t, mbody, `corund_domain_cap_watts{domain="pp0"}`); v != 6 {
		t.Errorf("recovered pp0 cap gauge = %v, want 6", v)
	}
}
