package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"corun/internal/fault"
	"corun/internal/journal"
)

// TestJournalWriterDurableAck is the batched-ack writer's property
// test: against a real journal with fsync faults injected on several
// schedules, every acked submission implies the journal's durable
// watermark covers that submission's assigned sequence number, and
// every submission is acked or failed exactly once (acked + failed ==
// submitted). Run under -race, the test also proves the writer's
// hand-off and seq write-back are data-race free.
func TestJournalWriterDurableAck(t *testing.T) {
	schedules := []struct {
		name string
		rule *fault.Rule
	}{
		{"no-faults", nil},
		{"every-3rd-fsync", &fault.Rule{Site: journal.SiteFsync, Kind: fault.KindError, Every: 3, Msg: "injected fsync"}},
		{"first-5-fsyncs", &fault.Rule{Site: journal.SiteFsync, Kind: fault.KindError, Times: 5, Msg: "injected fsync"}},
	}
	for _, sched := range schedules {
		t.Run(sched.name, func(t *testing.T) {
			reg := fault.NewRegistry()
			if sched.rule != nil {
				reg.Arm(*sched.rule)
			}
			jl, _, _, err := journal.Open(journal.Options{
				Dir:    t.TempDir(),
				Fsync:  journal.FsyncAlways,
				Faults: reg,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer jl.Close()

			// Commit straight through Journal.Append: an injected fsync
			// fault fails the whole batch (as a *journal.SyncError), so
			// an ack means the batch's fsync succeeded.
			w := newJournalWriter(func(recs []journal.Record) error {
				return jl.Append(recs...)
			}, 16, 500*time.Microsecond, nil) // production-shaped: gather armed
			defer w.stopWriter()

			const goroutines, perG = 8, 50
			var acked, failed atomic.Uint64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						watts := float64(g*perG + i)
						recs := []journal.Record{{Type: journal.TypeCapChanged, CapWatts: &watts}}
						err := w.submit(recs)
						if err != nil {
							failed.Add(1)
							continue
						}
						acked.Add(1)
						// The acked-implies-durable property, checked
						// against the submitter's own record: the seq
						// write-back must have happened before the ack,
						// and the durable watermark must cover it.
						if recs[0].Seq == 0 {
							t.Errorf("acked submission has no assigned seq")
						}
						if d := jl.DurableSeq(); d < recs[0].Seq {
							t.Errorf("acked seq %d > durable watermark %d", recs[0].Seq, d)
						}
					}
				}(g)
			}
			wg.Wait()
			total := acked.Load() + failed.Load()
			if total != goroutines*perG {
				t.Fatalf("acked %d + failed %d = %d, want exactly %d (no lost or double acks)",
					acked.Load(), failed.Load(), total, goroutines*perG)
			}
			if sched.rule == nil && failed.Load() != 0 {
				t.Fatalf("%d submissions failed with no faults armed", failed.Load())
			}
			if acked.Load() == 0 {
				t.Fatal("every submission failed; the property was never exercised")
			}
		})
	}
}

// TestJournalWriterBatchFailureFanout stages a deterministic multi-
// waiter batch and fails it: while the writer is blocked committing a
// first request, several submitters queue up; the writer must coalesce
// them into one commit and, when that commit fails, deliver the same
// error to every waiter exactly once.
func TestJournalWriterBatchFailureFanout(t *testing.T) {
	gate := make(chan struct{})
	injected := errors.New("injected batch failure")
	var commits atomic.Int64
	var batchSizes []int
	var mu sync.Mutex
	w := newJournalWriter(func(recs []journal.Record) error {
		mu.Lock()
		batchSizes = append(batchSizes, len(recs))
		mu.Unlock()
		switch commits.Add(1) {
		case 1:
			<-gate // hold the writer so followers pile up
			return nil
		default:
			return injected
		}
	}, 64, 0, nil)
	defer w.stopWriter()

	watts := 10.0
	rec := func() []journal.Record {
		return []journal.Record{{Type: journal.TypeCapChanged, CapWatts: &watts}}
	}

	firstDone := make(chan error, 1)
	go func() { firstDone <- w.submit(rec()) }()
	// Wait until the writer is inside the gated commit (the first
	// request has been taken off the channel).
	waitFor(t, func() bool { return commits.Load() == 1 })

	const waiters = 5
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() { errs <- w.submit(rec()) }()
	}
	// All five must be queued before the writer wakes, so they land in
	// one batch.
	waitFor(t, func() bool { return len(w.ch) == waiters })

	close(gate)
	if err := <-firstDone; err != nil {
		t.Fatalf("first (successful) batch acked error: %v", err)
	}
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, injected) {
				t.Fatalf("waiter %d got %v, want the injected batch error", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("waiter %d never acked: a failed batch lost an ack", i)
		}
	}
	if got := commits.Load(); got != 2 {
		t.Fatalf("%d commits, want 2 (one gated, one coalesced batch)", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(batchSizes) != 2 || batchSizes[1] != waiters {
		t.Fatalf("batch sizes %v, want [1 %d]: followers did not coalesce", batchSizes, waiters)
	}
}

// TestJournalWriterStopFlushesAndRefuses: stopWriter commits what is
// already queued (with acks), and submissions after the stop get
// journal.ErrClosed.
func TestJournalWriterStopFlushesAndRefuses(t *testing.T) {
	gate := make(chan struct{})
	var commits atomic.Int64
	w := newJournalWriter(func(recs []journal.Record) error {
		if commits.Add(1) == 1 {
			<-gate
		}
		return nil
	}, 64, 0, nil)

	watts := 1.0
	rec := func() []journal.Record {
		return []journal.Record{{Type: journal.TypeCapChanged, CapWatts: &watts}}
	}
	first := make(chan error, 1)
	go func() { first <- w.submit(rec()) }()
	waitFor(t, func() bool { return commits.Load() == 1 })

	// Queued behind the gated commit; the stop must still flush it.
	second := make(chan error, 1)
	go func() { second <- w.submit(rec()) }()
	waitFor(t, func() bool { return len(w.ch) == 1 })

	stopped := make(chan struct{})
	go func() { close(gate); w.stopWriter(); close(stopped) }()
	select {
	case <-stopped:
	case <-time.After(10 * time.Second):
		t.Fatal("stopWriter never quiesced")
	}
	if err := <-first; err != nil {
		t.Fatalf("gated submit: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("queued submit must be flushed by the stop, got %v", err)
	}
	if err := w.submit(rec()); !errors.Is(err, journal.ErrClosed) {
		t.Fatalf("submit after stop = %v, want journal.ErrClosed", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestJournalWriterGatherHoldsForInflight pins the group-commit gate:
// with more committers in flight than collected, the writer holds the
// batch open (no commit fires) until the stragglers arrive, then
// commits everything as one batch; and a lone committer with nobody
// else in flight never waits on the gather timer.
func TestJournalWriterGatherHoldsForInflight(t *testing.T) {
	var mu sync.Mutex
	var batchSizes []int
	w := newJournalWriter(func(recs []journal.Record) error {
		mu.Lock()
		batchSizes = append(batchSizes, len(recs))
		mu.Unlock()
		return nil
	}, 16, time.Second, nil)
	defer w.stopWriter()

	watts := 1.0
	rec := func() []journal.Record {
		return []journal.Record{{Type: journal.TypeCapChanged, CapWatts: &watts}}
	}

	// Two phantom committers "in flight": the writer must gather, not
	// commit the first record alone.
	w.inflight.Add(2)
	first := make(chan error, 1)
	go func() { first <- w.submit(rec()) }()
	time.Sleep(100 * time.Millisecond)
	mu.Lock()
	early := len(batchSizes)
	mu.Unlock()
	if early != 0 {
		t.Fatalf("writer committed during the gather window with committers still in flight (batches %v)", batchSizes)
	}

	// The straggler arrives and the phantoms leave: the batch closes
	// with both records sharing one commit.
	second := make(chan error, 1)
	go func() { second <- w.submit(rec()) }()
	w.inflight.Add(-2)
	for _, ch := range []chan error{first, second} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("gathered submit acked error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("gathered submit never acked")
		}
	}
	mu.Lock()
	gathered := append([]int(nil), batchSizes...)
	mu.Unlock()
	if len(gathered) != 1 || gathered[0] != 2 {
		t.Fatalf("batch sizes %v, want one gathered batch of 2", gathered)
	}

	// A lone committer (inflight == collected) must not wait the 1s
	// gather window.
	start := time.Now()
	if err := w.submit(rec()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("lone submit took %v: the gather gate must not delay a single committer", d)
	}
}
