package server

import (
	"io"
	"math"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// This file is the POST /v1/jobs near-zero-alloc toolkit: pooled
// request/response buffers, slab-allocated job records, and
// hand-rolled JSON encoding for the single-job bodies (the submit ack
// and GET /v1/jobs/{id}). The encoders mirror encoding/json's output
// for the Job struct — same field order, same omitempty behaviour,
// same float and time formats — just without the reflection walk and
// the per-request encoder state.

// reqBuf is a pooled scratch buffer, reused first for the request
// body and then for the response encoding (the decoded spec does not
// alias the body — encoding/json copies string fields).
type reqBuf struct{ b []byte }

var reqBufPool = sync.Pool{New: func() any { return &reqBuf{b: make([]byte, 0, 2048)} }}

// readBody reads r to EOF into buf's capacity, growing it only when a
// body outgrows what previous requests already paid for.
func readBody(r io.Reader, buf []byte) ([]byte, error) {
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// arenaBlock is the slab size of the job arena: ~100 KiB of Job
// records claimed at once instead of one GC allocation per submit.
const arenaBlock = 256

// jobArena hands out preallocated Job records. Records are never
// freed individually; a slab is collected once every job in it has
// been superseded by a published transition snapshot (jobs all reach
// a terminal state, so slabs do not pin memory indefinitely).
type jobArena struct {
	mu    sync.Mutex
	block []Job
}

func (a *jobArena) get() *Job {
	a.mu.Lock()
	if len(a.block) == 0 {
		a.block = make([]Job, arenaBlock)
	}
	j := &a.block[0]
	a.block = a.block[1:]
	a.mu.Unlock()
	return j
}

// appendPaddedInt appends n zero-padded to at least width digits —
// fmt.Sprintf("%06d", n) without the format-string walk.
func appendPaddedInt(b []byte, n int64, width int) []byte {
	var tmp [20]byte
	s := strconv.AppendInt(tmp[:0], n, 10)
	for pad := width - len(s); pad > 0; pad-- {
		b = append(b, '0')
	}
	return append(b, s...)
}

// appendJobJSON encodes one job exactly as encoding/json would encode
// *Job (field order and omitempty included), compactly.
func appendJobJSON(b []byte, j *Job) []byte {
	b = append(b, `{"id":`...)
	b = appendJSONString(b, j.ID)
	b = append(b, `,"program":`...)
	b = appendJSONString(b, j.Program)
	b = append(b, `,"scale":`...)
	b = appendJSONFloat(b, j.Scale)
	b = append(b, `,"label":`...)
	b = appendJSONString(b, j.Label)
	if j.DeadlineS != 0 {
		b = append(b, `,"deadline_s":`...)
		b = appendJSONFloat(b, j.DeadlineS)
	}
	b = append(b, `,"state":`...)
	b = appendJSONString(b, string(j.State))
	b = append(b, `,"submitted_at":"`...)
	b = j.SubmittedAt.AppendFormat(b, time.RFC3339Nano)
	b = append(b, '"')
	if j.Tenant != "" {
		b = append(b, `,"tenant":`...)
		b = appendJSONString(b, j.Tenant)
	}
	if j.Priority != "" {
		b = append(b, `,"priority":`...)
		b = appendJSONString(b, j.Priority)
	}
	if j.Epoch != 0 {
		b = append(b, `,"epoch":`...)
		b = strconv.AppendInt(b, int64(j.Epoch), 10)
	}
	b = append(b, `,"arrived_sim_s":`...)
	b = appendJSONFloat(b, j.ArrivedSimS)
	if j.StartedSimS != 0 {
		b = append(b, `,"started_sim_s":`...)
		b = appendJSONFloat(b, j.StartedSimS)
	}
	if j.FinishedSimS != 0 {
		b = append(b, `,"finished_sim_s":`...)
		b = appendJSONFloat(b, j.FinishedSimS)
	}
	if j.PredictedFinishSimS != 0 {
		b = append(b, `,"predicted_finish_sim_s":`...)
		b = appendJSONFloat(b, j.PredictedFinishSimS)
	}
	if j.ResponseS != 0 {
		b = append(b, `,"response_s":`...)
		b = appendJSONFloat(b, j.ResponseS)
	}
	if j.Device != "" {
		b = append(b, `,"device":`...)
		b = appendJSONString(b, j.Device)
	}
	if j.Partner != "" {
		b = append(b, `,"partner":`...)
		b = appendJSONString(b, j.Partner)
	}
	if j.DeadlineMet != nil {
		if *j.DeadlineMet {
			b = append(b, `,"deadline_met":true`...)
		} else {
			b = append(b, `,"deadline_met":false`...)
		}
	}
	if j.Error != "" {
		b = append(b, `,"error":`...)
		b = appendJSONString(b, j.Error)
	}
	return append(b, '}')
}

// appendJSONFloat appends v the way encoding/json encodes a float64:
// shortest representation, fixed notation except for very small or
// very large magnitudes.
func appendJSONFloat(b []byte, v float64) []byte {
	abs := math.Abs(v)
	f := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		f = 'e'
	}
	return strconv.AppendFloat(b, v, f, -1, 64)
}

// appendJSONString appends s as a JSON string. The fast path covers
// printable ASCII without quotes or backslashes (every ID, state, and
// program name); anything else — user-controlled labels and error
// text — takes the escaping path.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= utf8.RuneSelf {
			return appendJSONStringSlow(b, s)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

const hexDigits = "0123456789abcdef"

func appendJSONStringSlow(b []byte, s string) []byte {
	b = append(b, '"')
	for _, r := range s { // range re-decodes; invalid UTF-8 becomes U+FFFD, like encoding/json
		switch {
		case r == '"':
			b = append(b, '\\', '"')
		case r == '\\':
			b = append(b, '\\', '\\')
		case r == '\n':
			b = append(b, '\\', 'n')
		case r == '\r':
			b = append(b, '\\', 'r')
		case r == '\t':
			b = append(b, '\\', 't')
		case r < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigits[r>>4], hexDigits[r&0xf])
		default:
			b = utf8.AppendRune(b, r)
		}
	}
	return append(b, '"')
}
