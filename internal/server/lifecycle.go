package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Start launches the scheduler goroutine. The loop runs until ctx is
// cancelled or Drain is called; either way it finishes the in-flight
// epoch, flushes the remaining queue through one final round, and then
// closes Drained. Start is idempotent — only the first call launches.
func (s *Server) Start(ctx context.Context) {
	s.startOnce.Do(func() { go s.loop(ctx) })
}

// Drain stops admission immediately (new submits get 503) and asks the
// scheduler loop to exit after flushing the queue. It returns without
// waiting; watch Drained for completion.
func (s *Server) Drain() {
	s.markDraining()
	s.stopOnce.Do(func() { close(s.stop) })
}

// Drained is closed when the scheduler loop has exited.
func (s *Server) Drained() <-chan struct{} { return s.drained }

// DrainAndWait drains and blocks until the loop exits or ctx expires.
func (s *Server) DrainAndWait(ctx context.Context) error {
	s.Drain()
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
}

// Close quiesces the journal writer goroutine (flushing and acking
// everything already queued) and then releases the durable state
// journal, fsyncing it first; it is a no-op for in-memory servers and
// idempotent. ListenAndServe closes after its drain; standalone users
// of Start/Drain should Close once Drained has fired.
func (s *Server) Close() error {
	if s.jl == nil {
		return nil
	}
	s.jw.stopWriter()
	return s.jl.Close()
}

// ListenAndServe runs the daemon at addr until ctx is cancelled, then
// drains gracefully: admission stops, the scheduler flushes its queue
// (bounded by Config.DrainTimeout), and the HTTP listener shuts down.
// It returns nil on a clean drain.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.serve(ctx, ln)
}

func (s *Server) serve(ctx context.Context, ln net.Listener) error {
	// The loop gets its own context: cancellation flows through Drain
	// so admission closes synchronously before the listener does.
	s.Start(context.Background())
	srv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return fmt.Errorf("server: listener failed: %w", err)
	case <-ctx.Done():
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	drainErr := s.DrainAndWait(drainCtx)
	if cerr := s.Close(); cerr != nil && drainErr == nil {
		drainErr = cerr
	}

	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("server: http shutdown: %w", err)
	}
	return drainErr
}
