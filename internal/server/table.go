package server

import (
	"sync"
	"sync/atomic"
)

// tableStripes is the job-table stripe count (power of two). Stripes
// bound lock contention on membership writes; 32 keeps the per-stripe
// maps small without wasting cache lines on a mostly-idle daemon.
const tableStripes = 32

// jobTable is the sharded job table behind GET /v1/jobs/{id} and the
// version-keyed list cache. Membership is striped by a hash of the job
// ID: inserts take one stripe's write lock, lookups its read lock.
// Job *state* never sits behind any lock: each entry holds an
// atomic.Pointer to an immutable Job snapshot, and a state transition
// publishes a fresh snapshot (RCU-style). Readers therefore never
// block on the scheduler, and the scheduler never waits for readers.
//
// The ordering contract for the list cache: every mutation publishes
// its snapshots first and bumps version last, so a reader that
// observes version v also observes every snapshot published before
// the bump to v. insert bumps once per job; the scheduler batches a
// whole epoch's transitions under a single bump.
type jobTable struct {
	stripes [tableStripes]tableStripe

	// version counts published mutations; the GET /v1/jobs cache is
	// keyed by it. Bumped strictly after the snapshots it covers.
	version atomic.Uint64

	// order is the append-only submission order; orderMu guards the
	// append (elements, once written, are immutable).
	orderMu sync.Mutex
	order   []string
}

type tableStripe struct {
	mu sync.RWMutex
	m  map[string]*jobEntry
}

// jobEntry is one job's publication point. The Job it points to is
// immutable; transitions swap the pointer.
type jobEntry struct {
	snap atomic.Pointer[Job]
}

func (t *jobTable) init() {
	for i := range t.stripes {
		t.stripes[i].m = make(map[string]*jobEntry)
	}
}

// stripeFor hashes a job ID onto its stripe (FNV-1a).
func stripeFor(id string) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h & (tableStripes - 1))
}

// insert publishes a new job: membership, submission order, and one
// version bump. The caller hands over ownership — j must not be
// mutated after insert.
func (t *jobTable) insert(j *Job) {
	e := &jobEntry{}
	e.snap.Store(j)
	st := &t.stripes[stripeFor(j.ID)]
	st.mu.Lock()
	st.m[j.ID] = e
	st.mu.Unlock()
	t.orderMu.Lock()
	t.order = append(t.order, j.ID)
	t.orderMu.Unlock()
	t.version.Add(1)
}

// publish swaps in a new immutable snapshot for an existing job. It
// does NOT bump the version — the caller bumps once per transition
// batch (see bump), after every publish of the batch.
func (t *jobTable) publish(j *Job) {
	st := &t.stripes[stripeFor(j.ID)]
	st.mu.RLock()
	e := st.m[j.ID]
	st.mu.RUnlock()
	if e != nil {
		e.snap.Store(j)
	}
}

// bump makes all previously published snapshots visible to the
// version-keyed caches.
func (t *jobTable) bump() { t.version.Add(1) }

// get returns the job's current immutable snapshot (nil if unknown).
// Callers must not mutate it.
func (t *jobTable) get(id string) *Job {
	st := &t.stripes[stripeFor(id)]
	st.mu.RLock()
	e := st.m[id]
	st.mu.RUnlock()
	if e == nil {
		return nil
	}
	return e.snap.Load()
}

// len is the number of jobs ever inserted.
func (t *jobTable) len() int {
	t.orderMu.Lock()
	defer t.orderMu.Unlock()
	return len(t.order)
}

// snapshotOrdered copies every job in submission order. The order
// slice is append-only, so the header is captured under orderMu and
// walked lock-free; each job resolves to whatever snapshot is current
// when it is visited.
func (t *jobTable) snapshotOrdered() []Job {
	t.orderMu.Lock()
	ids := t.order[:len(t.order):len(t.order)]
	t.orderMu.Unlock()
	out := make([]Job, 0, len(ids))
	for _, id := range ids {
		if j := t.get(id); j != nil {
			out = append(out, *j)
		}
	}
	return out
}
