package server

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"corun/internal/admission"
	"corun/internal/apu"
	"corun/internal/fault"
	"corun/internal/journal"
	"corun/internal/online"
	"corun/internal/units"
	"corun/internal/workload"
)

// openJournal opens (and recovers) the durable state journal in
// cfg.DataDir, restoring the power cap, active policy, scheduling
// clock, and job table. Non-terminal jobs are re-enqueued: their
// epoch died with the previous process, so they go back to queued
// and get replanned by the first epoch after Start. Called from New
// before the scheduler loop exists, so no locking is needed.
func (s *Server) openJournal() error {
	jl, st, stats, err := journal.Open(journal.Options{
		Dir:           s.cfg.DataDir,
		Fsync:         s.cfg.Fsync,
		SnapshotBytes: s.cfg.SnapshotBytes,
		Observer: journal.Observer{
			Append: func(records, bytes int, latency time.Duration) {
				s.m.jlAppends.Add(float64(records))
				s.m.jlBytes.Add(float64(bytes))
				s.m.jlAppendLatency.Observe(latency.Seconds())
			},
			Fsync:         func() { s.m.jlFsyncs.Inc() },
			Snapshot:      func() { s.m.jlSnapshots.Inc() },
			SnapshotError: func(error) { s.m.jlSnapErrors.Inc() },
		},
		Faults: s.cfg.Faults,
	})
	if err != nil {
		return err
	}
	s.jl = jl

	// Recovered cap and policy win over the configured (flag) values:
	// the journal carries the live changes made through the API, and a
	// restart must not silently roll them back. A fresh data dir seeds
	// the journal with the configured values instead, so the very
	// first restart already restores them.
	fail := func(err error) error {
		jl.Close()
		s.jl = nil
		return err
	}
	if st.CapWatts != nil {
		cap := units.Watts(*st.CapWatts)
		var dc apu.DomainCaps
		if st.PP0Watts != nil {
			dc.PP0 = units.Watts(*st.PP0Watts)
		}
		if st.PP1Watts != nil {
			dc.PP1 = units.Watts(*st.PP1Watts)
		}
		if err := s.cfg.Machine.CheckCaps(cap, dc); err != nil {
			return fail(fmt.Errorf("server: recovered power cap: %w", err))
		}
		s.setCapWatts(cap)
		s.setDomainWatts(dc)
		s.m.capWatts.Set(float64(cap))
		s.publishDomainCapGauges(dc)
	} else {
		if err := jl.Append(capRecord(s.capWatts(), s.domainWatts())); err != nil {
			return fail(err)
		}
	}
	if st.Policy != "" {
		p, err := online.ParsePolicy(st.Policy)
		if err != nil {
			return fail(fmt.Errorf("server: recovered policy: %w", err))
		}
		probe := online.Options{Cfg: s.cfg.Machine, Mem: s.cfg.Mem, Char: s.cfg.Char, Policy: p}
		if err := probe.Validate(); err != nil {
			return fail(fmt.Errorf("server: recovered policy: %w", err))
		}
		s.setPolicyNow(p)
	} else {
		if err := jl.Append(journal.Record{Type: journal.TypePolicyChanged, Policy: s.policyNow().String()}); err != nil {
			return fail(err)
		}
	}

	requeued := 0
	for _, jr := range st.Jobs {
		j := jobFromRecord(jr)
		if !j.State.Terminal() {
			// The previous process acknowledged the job but never
			// finished it; any in-flight epoch is gone, so it starts
			// over from the queue. Jobs restore through the admission
			// layer in record (submission) order, which rebuilds each
			// tenant's FIFO and reassigns the WFQ virtual-time tags in
			// arrival order — so the first epoch after a crash selects
			// by priority and fairness, not by raw record order.
			// Restore bypasses the queue bounds: every journaled ack
			// must be honoured even if bounds shrank between runs.
			j.State = JobQueued
			j.Epoch = 0
			j.StartedSimS = 0
			j.PredictedFinishSimS = 0
			class, cerr := admission.ParseClass(j.Priority)
			if cerr != nil {
				class = admission.ClassNormal // tolerant replay, like orphan transitions
			}
			s.adm.Restore(admission.Entry{
				ID: j.ID, Tenant: j.Tenant, Class: class,
				EnqueuedAt: j.SubmittedAt, Payload: j,
			})
			requeued++
		}
		s.table.insert(j)
		if n, ok := parseJobID(j.ID); ok && int64(n) >= s.nextID.Load() {
			s.nextID.Store(int64(n) + 1)
		}
	}
	s.setClock(units.Seconds(st.SimClockS))

	s.admMu.Lock()
	s.syncQueueGauges()
	s.admMu.Unlock()
	s.m.simClock.Set(float64(s.clock()))
	s.m.jlRecovered.Set(float64(requeued))
	s.m.jlTruncated.Set(float64(stats.TruncatedTailBytes))
	return nil
}

// appendDurable writes records through the journal with the daemon's
// failure policy wrapped around it: the circuit breaker gates the
// attempt (ErrDegraded when open), transient errors are retried on
// the jittered exponential backoff, and the final outcome feeds the
// breaker. A *journal.SyncError flips the retry from re-appending to
// re-driving durability with Sync — the frames are already in the
// log, and a second Append would duplicate them.
func (s *Server) appendDurable(recs ...journal.Record) error {
	if s.jl == nil || len(recs) == 0 {
		return nil
	}
	if s.brk != nil && !s.brk.Allow() {
		return ErrDegraded
	}
	appended := false
	err := s.bo.Run(func(attempt int) error {
		if attempt > 0 {
			s.m.jlRetries.Inc()
		}
		var err error
		if appended {
			err = s.jl.Sync()
		} else {
			err = s.jl.Append(recs...)
		}
		if err == nil {
			return nil
		}
		var se *journal.SyncError
		if errors.As(err, &se) {
			appended = true
		}
		if errors.Is(err, journal.ErrClosed) {
			return fault.Permanent(err)
		}
		return err
	})
	if err != nil {
		// A closed journal is the drain path, not a fault.
		if s.brk != nil && !errors.Is(err, journal.ErrClosed) {
			s.brk.Failure()
		}
		return err
	}
	if s.brk != nil {
		s.brk.Success()
	}
	return nil
}

// journalAppend best-effort journals job lifecycle records from the
// scheduler goroutine. A failure must not take the node down
// mid-epoch, so the records are dropped and counted — as an error
// (corund_journal_errors_total) when the write failed past its
// retries, or silently suspended while the breaker holds the daemon
// degraded. Dropped lifecycle records cost nothing but work: on a
// restart the affected jobs replay as non-terminal and re-run, so an
// acknowledged job is still never lost.
func (s *Server) journalAppend(recs []journal.Record) {
	if s.jl == nil || len(recs) == 0 {
		return
	}
	// Route through the writer goroutine so the scheduler's terminal
	// records share batches (and fsyncs) with in-flight submission acks
	// instead of contending with them on the journal lock. The call
	// still blocks until the batch is durable, so drain and recovery
	// semantics are unchanged. The writer is stopped only after the
	// scheduler loop exits (Close), so ErrClosed here means a direct
	// append raced an explicit Close — fall through to the old path.
	err := s.jw.submit(recs)
	if errors.Is(err, journal.ErrClosed) {
		err = s.appendDurable(recs...)
	}
	if err != nil {
		if !errors.Is(err, ErrDegraded) && !errors.Is(err, journal.ErrClosed) {
			s.m.jlErrors.Inc()
		}
		s.m.jlDropped.Add(float64(len(recs)))
	}
}

// stateRecord captures a job's post-transition view. clock is the
// scheduling clock after the transition's epoch (0 for transitions
// that do not advance it).
func stateRecord(j *Job, clock float64) journal.Record {
	return journal.Record{Type: journal.TypeJobState, Job: recordFromJob(j), SimClockS: clock}
}

// recordFromJob and jobFromRecord convert between the server's job
// table entry and its journaled form, field for field — recovery
// must restore acknowledged jobs bit-for-bit.
func recordFromJob(j *Job) *journal.JobRecord {
	jr := &journal.JobRecord{
		ID:                  j.ID,
		Program:             j.Program,
		Scale:               j.Scale,
		Label:               j.Label,
		DeadlineS:           j.DeadlineS,
		Tenant:              j.Tenant,
		Priority:            j.Priority,
		SubmittedAt:         j.SubmittedAt,
		ArrivedSimS:         j.ArrivedSimS,
		State:               string(j.State),
		Epoch:               j.Epoch,
		StartedSimS:         j.StartedSimS,
		FinishedSimS:        j.FinishedSimS,
		PredictedFinishSimS: j.PredictedFinishSimS,
		ResponseS:           j.ResponseS,
		Device:              j.Device,
		Partner:             j.Partner,
		Error:               j.Error,
	}
	if j.DeadlineMet != nil {
		b := *j.DeadlineMet
		jr.DeadlineMet = &b
	}
	return jr
}

func jobFromRecord(jr *journal.JobRecord) *Job {
	j := &Job{
		ID:                  jr.ID,
		Program:             jr.Program,
		Scale:               jr.Scale,
		Label:               jr.Label,
		DeadlineS:           jr.DeadlineS,
		Tenant:              jr.Tenant,
		Priority:            jr.Priority,
		State:               JobState(jr.State),
		SubmittedAt:         jr.SubmittedAt,
		Epoch:               jr.Epoch,
		ArrivedSimS:         jr.ArrivedSimS,
		StartedSimS:         jr.StartedSimS,
		FinishedSimS:        jr.FinishedSimS,
		PredictedFinishSimS: jr.PredictedFinishSimS,
		ResponseS:           jr.ResponseS,
		Device:              jr.Device,
		Partner:             jr.Partner,
		Error:               jr.Error,
		// The spec is rebuilt verbatim, NOT normalized: a record from a
		// journal written before the tenant/priority fields existed must
		// replay bit-for-bit, with both fields empty.
		spec: workload.JobSpec{
			Program:   jr.Program,
			Scale:     jr.Scale,
			Label:     jr.Label,
			DeadlineS: jr.DeadlineS,
			Tenant:    jr.Tenant,
			Priority:  jr.Priority,
		},
	}
	if jr.DeadlineMet != nil {
		b := *jr.DeadlineMet
		j.DeadlineMet = &b
	}
	return j
}

// parseJobID extracts the numeric suffix of a "job-%06d" or
// "<node-id>-job-%06d" ID so recovery can resume the ID sequence past
// every restored job, including journals written under a different
// (or no) node identity.
func parseJobID(id string) (int, bool) {
	i := strings.LastIndex(id, "job-")
	if i < 0 || (i > 0 && id[i-1] != '-') {
		return 0, false
	}
	n, err := strconv.Atoi(id[i+len("job-"):])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
