package server

// Resilience integration tests: the daemon is driven over HTTP while
// the internal/fault registry injects deterministic failure schedules
// into the journal, the epoch loop, and the planner. The invariants
// under test are the failure model's contract — an acknowledged job
// is never lost, a failure storm degrades (and is visible on /readyz
// and the metrics), and recovery is automatic once the faults stop.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"corun/internal/fault"
	"corun/internal/journal"
)

// postRaw is postJSON plus the response headers, for Retry-After
// assertions.
func postRaw(t *testing.T, url, body string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(b)
}

// TestFaultedFsyncLifecycle fails every 3rd fsync under a seeded
// schedule and drives a full job lifecycle through it: the bounded
// retries absorb each injection (the retry's Sync lands on a
// non-faulted hit), every submission is acknowledged, the breaker
// never trips, and a restart restores every acknowledged job.
func TestFaultedFsyncLifecycle(t *testing.T) {
	dir := t.TempDir()
	reg := fault.NewRegistry()
	s := newTestServer(t, func(c *Config) {
		c.DataDir = dir
		c.Fsync = journal.FsyncAlways
		c.Faults = reg
	})
	// Arm after New: the journal seeds cap/policy records on a fresh
	// dir, and those appends are not part of the schedule under test.
	if err := reg.Arm(fault.Rule{Site: journal.SiteFsync, Kind: fault.KindError, Every: 3, Msg: "disk hiccup"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var acked []string
	for i := 0; i < 6; i++ {
		code, body := postJSON(t, ts.URL+"/v1/jobs", `{"program":"lud"}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d under fsync faults -> %d: %s", i, code, body)
		}
		var j Job
		if err := json.Unmarshal([]byte(body), &j); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, j.ID)
	}
	for _, j := range waitAllTerminal(t, s, len(acked), 60*time.Second) {
		if j.State != JobDone {
			t.Errorf("job %s state %s (%s)", j.ID, j.State, j.Error)
		}
	}

	_, body := get(t, ts.URL+"/metrics")
	injected := metricValue(t, body, `corund_fault_injections_total{site="journal/fsync"}`)
	if injected < 1 {
		t.Errorf("fsync injections %v, want >= 1", injected)
	}
	if hits := metricValue(t, body, `corund_fault_hits_total{site="journal/fsync"}`); hits <= injected {
		t.Errorf("fsync hits %v not above injections %v", hits, injected)
	}
	if v := metricValue(t, body, "corund_journal_retries_total"); v < 1 {
		t.Errorf("journal retries %v, want >= 1", v)
	}
	if v := metricValue(t, body, "corund_journal_dropped_records_total"); v != 0 {
		t.Errorf("dropped records %v, want 0 (retries should absorb every fault)", v)
	}
	if v := metricValue(t, body, "corund_journal_errors_total"); v != 0 {
		t.Errorf("journal errors %v, want 0", v)
	}
	if v := metricValue(t, body, "corund_breaker_trips_total"); v != 0 {
		t.Errorf("breaker trips %v, want 0 (isolated faults must not trip it)", v)
	}
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("readyz under absorbed faults -> %d, want 200", code)
	}

	// Restart against the same dir: every acknowledged job survives.
	reg.Disarm()
	s.Drain()
	select {
	case <-s.Drained():
	case <-time.After(60 * time.Second):
		t.Fatal("drain stuck")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := newJournalServer(t, dir)
	for _, id := range acked {
		j, ok := s2.Job(id)
		if !ok {
			t.Fatalf("acked job %s lost across restart", id)
		}
		if j.State != JobDone {
			t.Errorf("job %s restored as %s, want done", id, j.State)
		}
	}
}

// TestFsyncStormDegradesAndRecovers is the acceptance scenario: a
// storm of fsync failures (no retries to absorb them) trips the
// breaker into degraded mode — visible on /readyz, the breaker and
// shed metrics, and 503 + Retry-After responses — and the daemon
// recovers automatically via half-open probes once the injection
// schedule exhausts. No acknowledged job is lost at any point.
func TestFsyncStormDegradesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	reg := fault.NewRegistry()
	s := newTestServer(t, func(c *Config) {
		c.DataDir = dir
		c.Fsync = journal.FsyncAlways
		c.Faults = reg
		c.JournalRetries = -1 // surface every failure to the breaker
		c.BreakerThreshold = 2
		c.BreakerCooldown = 250 * time.Millisecond
	})
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One acknowledged job before the storm: it must survive to the
	// end.
	code, body := postJSON(t, ts.URL+"/v1/jobs", `{"program":"hotspot"}`)
	if code != http.StatusAccepted {
		t.Fatalf("pre-storm submit -> %d: %s", code, body)
	}
	var preStorm Job
	if err := json.Unmarshal([]byte(body), &preStorm); err != nil {
		t.Fatal(err)
	}

	const storm = 8
	if err := reg.Arm(fault.Rule{Site: journal.SiteFsync, Kind: fault.KindError, Times: storm, Msg: "fsync storm"}); err != nil {
		t.Fatal(err)
	}

	// Two consecutive failures trip the breaker. Both submissions are
	// refused — never acknowledged-but-undurable.
	for i := 0; i < 2; i++ {
		code, hdr, body := postRaw(t, ts.URL+"/v1/jobs", `{"program":"lud"}`)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("storm submit %d -> %d: %s", i, code, body)
		}
		if hdr.Get("Retry-After") == "" {
			t.Errorf("storm submit %d: no Retry-After header", i)
		}
	}
	if !s.Degraded() {
		t.Fatal("breaker did not trip after threshold failures")
	}

	// Degraded mode is externally visible: /readyz, shed submissions,
	// refused control changes, breaker metrics.
	if code, hdr, body := postRaw(t, ts.URL+"/v1/jobs", `{"program":"lud"}`); code != http.StatusServiceUnavailable {
		t.Errorf("degraded submit -> %d: %s", code, body)
	} else if hdr.Get("Retry-After") == "" {
		t.Error("degraded submit: no Retry-After header")
	}
	code, body = get(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Errorf("readyz while degraded -> %d: %s", code, body)
	}
	if code, _, body := postRaw(t, ts.URL+"/v1/cap", `{"cap_watts":12}`); code != http.StatusServiceUnavailable {
		t.Errorf("cap change while degraded -> %d: %s", code, body)
	}
	_, mbody := get(t, ts.URL+"/metrics")
	if v := metricValue(t, mbody, "corund_breaker_trips_total"); v < 1 {
		t.Errorf("breaker trips %v, want >= 1", v)
	}
	if v := metricValue(t, mbody, "corund_breaker_state"); v != float64(fault.BreakerOpen) {
		t.Errorf("breaker state %v, want open (%d)", v, fault.BreakerOpen)
	}

	// Automatic recovery: half-open probes burn through the schedule,
	// and once it exhausts a probe succeeds and the breaker closes.
	deadline := time.Now().Add(60 * time.Second)
	recovered := false
	var postID string
	for time.Now().Before(deadline) {
		code, _, body := postRaw(t, ts.URL+"/v1/jobs", `{"program":"lud"}`)
		if code == http.StatusAccepted {
			var j Job
			if err := json.Unmarshal([]byte(body), &j); err != nil {
				t.Fatal(err)
			}
			postID = j.ID
			recovered = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("daemon did not recover after the fault schedule exhausted")
	}
	if s.Degraded() {
		t.Error("breaker still away from closed after a successful probe")
	}
	if code, _ := get(t, ts.URL+"/readyz"); code == http.StatusServiceUnavailable {
		// The loop was never started, so "starting" is the expected
		// non-degraded state; only "degraded" would be a failure here.
		if _, b := get(t, ts.URL+"/readyz"); strings.Contains(b, "degraded") {
			t.Errorf("readyz still degraded after recovery: %s", b)
		}
	}
	_, mbody = get(t, ts.URL+"/metrics")
	if v := metricValue(t, mbody, "corund_breaker_state"); v != float64(fault.BreakerClosed) {
		t.Errorf("breaker state %v after recovery, want closed", v)
	}
	if v := metricValue(t, mbody, "corund_jobs_shed_total"); v < 1 {
		t.Errorf("shed %v, want >= 1", v)
	}
	if v := metricValue(t, mbody, `corund_fault_injections_total{site="journal/fsync"}`); v != storm {
		t.Errorf("fsync injections %v, want exactly %d (deterministic schedule)", v, storm)
	}

	// No acknowledged job lost: restart on the same dir and check the
	// restored set covers every 202'd ID. (It may be a superset — a
	// failed fsync can leave frames in the log, the at-least-once side
	// of the guarantee.)
	reg.Disarm()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := newJournalServer(t, dir)
	for _, id := range []string{preStorm.ID, postID} {
		if _, ok := s2.Job(id); !ok {
			t.Errorf("acked job %s lost across restart", id)
		}
	}
}

// TestEpochFaultFailsBatchNotDaemon injects one planning-round error:
// the claimed batch fails (with the injected error on the jobs and the
// plan), but the daemon stays up and the next batch schedules
// normally.
func TestEpochFaultFailsBatchNotDaemon(t *testing.T) {
	reg := fault.NewRegistry()
	s := newTestServer(t, func(c *Config) { c.Faults = reg })
	if err := reg.Arm(fault.Rule{Site: SiteEpoch, Kind: fault.KindError, Times: 1, Msg: "injected planner crash"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := postJSON(t, ts.URL+"/v1/jobs", `{"program":"lud"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit -> %d: %s", code, body)
	}
	jobs := waitAllTerminal(t, s, 1, 60*time.Second)
	if jobs[0].State != JobFailed || !strings.Contains(jobs[0].Error, "injected planner crash") {
		t.Fatalf("faulted epoch job %+v, want failed with the injected error", jobs[0])
	}
	if plan, ok := s.Plan(); !ok || plan.State != "failed" {
		t.Errorf("plan after faulted epoch: %+v", plan)
	}

	// The daemon is intact: the next batch runs to completion.
	if code, body := postJSON(t, ts.URL+"/v1/jobs", `{"program":"lud"}`); code != http.StatusAccepted {
		t.Fatalf("post-fault submit -> %d: %s", code, body)
	}
	for _, j := range waitAllTerminal(t, s, 2, 60*time.Second) {
		if j.ID != jobs[0].ID && j.State != JobDone {
			t.Errorf("post-fault job %s state %s (%s)", j.ID, j.State, j.Error)
		}
	}
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("readyz after faulted epoch -> %d, want 200", code)
	}
	_, mbody := get(t, ts.URL+"/metrics")
	if v := metricValue(t, mbody, "corund_jobs_failed_total"); v != 1 {
		t.Errorf("failed %v, want 1", v)
	}
}

// TestCapChangeRaceFreshPlans hammers POST /v1/cap from one goroutine
// while submissions keep epochs planning, and asserts no plan is ever
// produced under a cap that was never configured — the regression this
// guards is the memoized policy engine serving a plan computed for a
// stale cap. Run with -race, this also exercises the engine's memo
// tables under concurrent cap churn.
func TestCapChangeRaceFreshPlans(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.EpochGap = 2 * time.Millisecond })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	caps := map[float64]bool{15: true, 18: true}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // cap churn
		defer wg.Done()
		bodies := []string{`{"cap_watts":18}`, `{"cap_watts":15}`}
		for i := 0; i < 40; i++ {
			code, body := postJSON(t, ts.URL+"/v1/cap", bodies[i%2])
			if code != http.StatusOK {
				t.Errorf("set cap -> %d: %s", code, body)
				return
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() { // submissions keep epochs coming
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if code, body := postJSON(t, ts.URL+"/v1/jobs", `{"program":"lud"}`); code != http.StatusAccepted {
				t.Errorf("submit -> %d: %s", code, body)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	obsDone := make(chan struct{})
	go func() { // observer: every published plan carries a configured cap
		defer close(obsDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			code, body := get(t, ts.URL+"/v1/plan")
			if code == http.StatusOK {
				var pv PlanView
				if err := json.Unmarshal([]byte(body), &pv); err != nil {
					t.Errorf("decode plan: %v", err)
					return
				}
				if !caps[pv.CapWatts] {
					t.Errorf("plan epoch %d under cap %v, never configured", pv.Epoch, pv.CapWatts)
					return
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	wg.Wait() // both writers finished
	waitAllTerminal(t, s, 25, 120*time.Second)
	close(stop)
	<-obsDone

	// Deterministic tail: with the churn finished, one more cap change
	// followed by one more job must plan under exactly that cap — a
	// stale engine cache would surface here.
	if code, body := postJSON(t, ts.URL+"/v1/cap", `{"cap_watts":18}`); code != http.StatusOK {
		t.Fatalf("final set cap -> %d: %s", code, body)
	}
	if code, body := postJSON(t, ts.URL+"/v1/jobs", `{"program":"hotspot"}`); code != http.StatusAccepted {
		t.Fatalf("final submit -> %d: %s", code, body)
	}
	waitAllTerminal(t, s, 26, 60*time.Second)
	plan, ok := s.Plan()
	if !ok {
		t.Fatal("no plan after final epoch")
	}
	if plan.CapWatts != 18 {
		t.Errorf("final plan cap %v, want 18 (stale cap served)", plan.CapWatts)
	}
}
