package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"corun/internal/online"
)

func TestValidateNodeID(t *testing.T) {
	for _, ok := range []string{"", "n0", "rack1.n0", "a", "A-1_b.c", strings.Repeat("x", 32)} {
		if err := ValidateNodeID(ok); err != nil {
			t.Errorf("ValidateNodeID(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"-n0", "n0-", "has space", "a/b", "a,b", strings.Repeat("x", 33)} {
		if err := ValidateNodeID(bad); err == nil {
			t.Errorf("ValidateNodeID(%q) accepted", bad)
		}
	}
	// Config validation goes through the same gate.
	if _, err := New(Config{Char: testChar(t), Cap: 15, NodeID: "-bad-"}); err == nil {
		t.Error("New accepted an invalid node ID")
	}
}

// TestNodeIDSurfaces checks the identity shows up everywhere the fleet
// layer reads it: minted job IDs, the /readyz answer, and the
// corund_node_info metric.
func TestNodeIDSurfaces(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.NodeID = "rack1.n0" })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := postJSON(t, ts.URL+"/v1/jobs", `{"program":"lud"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit -> %d: %s", code, body)
	}
	var j Job
	if err := json.Unmarshal([]byte(body), &j); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(j.ID, "rack1.n0-job-") {
		t.Fatalf("minted ID %q lacks the node prefix", j.ID)
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/"+j.ID); code != http.StatusOK {
		t.Fatalf("prefixed ID did not resolve: %d", code)
	}

	code, body = get(t, ts.URL+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("/readyz -> %d", code)
	}
	var ready struct {
		Node string `json:"node"`
	}
	if err := json.Unmarshal([]byte(body), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Node != "rack1.n0" {
		t.Fatalf("/readyz node = %q, want rack1.n0", ready.Node)
	}

	_, body = get(t, ts.URL+"/metrics")
	if metricValue(t, body, `corund_node_info{node="rack1.n0"}`) != 1 {
		t.Fatalf("corund_node_info not set for the configured identity")
	}
}

// TestNodeIDJournalResume restarts a journaled node and checks the ID
// sequence continues past the recovered prefixed IDs instead of
// re-minting them.
func TestNodeIDJournalResume(t *testing.T) {
	dir := t.TempDir()
	mkNode := func() *Server {
		s, err := New(Config{
			Cap: 15, Policy: online.PolicyRandom, Seed: 1,
			EpochGap: 2 * time.Millisecond,
			NodeID:   "n7", DataDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s := mkNode()
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		j, err := s.Submit(mustSpec(t, "lud"))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(j.ID, "n7-job-") {
			t.Fatalf("journaled node minted %q", j.ID)
		}
		ids[j.ID] = true
	}
	waitAllTerminal(t, s, 3, 30*time.Second)
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer drainCancel()
	if err := s.DrainAndWait(drainCtx); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	cancel()

	re := mkNode()
	defer re.Close()
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	re.Start(ctx2)
	if got := len(re.Jobs()); got != 3 {
		t.Fatalf("recovered %d jobs, want 3", got)
	}
	j, err := re.Submit(mustSpec(t, "lud"))
	if err != nil {
		t.Fatal(err)
	}
	if ids[j.ID] {
		t.Fatalf("restarted node re-minted recovered ID %s", j.ID)
	}
	// Zero-padded same-prefix IDs order lexicographically: the resumed
	// sequence must continue past every recovered ID.
	for id := range ids {
		if j.ID <= id {
			t.Fatalf("restarted node minted %s, not past recovered %s", j.ID, id)
		}
	}
}
