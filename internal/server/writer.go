package server

import (
	"sync"
	"sync/atomic"
	"time"

	"corun/internal/journal"
)

// ackReq is one committer's batch of records plus its private ack
// channel. done is buffered so the writer never blocks completing an
// ack, and it receives exactly one value — the whole batch's outcome.
type ackReq struct {
	recs []journal.Record
	done chan error
}

// journalWriter is the dedicated commit goroutine on the submit→ack
// path: submitters hand it their records and block on a per-request
// done channel; the writer coalesces everything queued into one
// commit — a single journal Append, which under FsyncAlways is a
// single fsync — and fans the outcome back out. Submitters therefore
// never wait on each other's fsyncs (they share one), and the commit
// function keeps the daemon's whole failure policy: it is
// Server.appendDurable, so the breaker gate, the retry backoff, the
// SiteAppend/SiteFsync failpoints, and the SyncError retry-with-Sync
// discipline all apply per batch exactly as they did per request.
//
// A failed commit fails every waiter in the batch with the same error
// exactly once; none of their records were acknowledged (a SyncError
// may still have left frames in the log — the documented
// at-least-once side of recovery). On success the assigned sequence
// numbers are copied back into each committer's own record slice
// before its ack, so a committer can assert durability (see
// Journal.DurableSeq) against its own records.
type journalWriter struct {
	commit  func([]journal.Record) error
	onBatch func(reqs, recs int) // optional instrumentation

	maxRecs int
	gather  time.Duration
	ch      chan *ackReq

	// inflight counts committers currently inside submit() — entered,
	// not yet acked. It is the group-commit gate: the writer holds a
	// batch open (up to the gather window) only while it can see more
	// committers than it has already collected, so a lone sequential
	// committer never waits on the timer.
	inflight atomic.Int64

	stopOnce sync.Once
	stop     chan struct{} // stopWriter signal
	stopped  chan struct{} // closed once the run loop has quiesced
}

// newJournalWriter starts the writer goroutine. maxRecs bounds how
// many records one commit batches (≤ 0 uses 256); the bound keeps a
// deep backlog from turning into one unboundedly large Append. gather
// is the group-commit window: with more committers in flight than
// collected, the writer waits up to this long for them to arrive
// before paying the fsync (0 commits immediately).
func newJournalWriter(commit func([]journal.Record) error, maxRecs int, gather time.Duration, onBatch func(reqs, recs int)) *journalWriter {
	if maxRecs <= 0 {
		maxRecs = 256
	}
	w := &journalWriter{
		commit:  commit,
		onBatch: onBatch,
		maxRecs: maxRecs,
		gather:  gather,
		ch:      make(chan *ackReq, 4*maxRecs),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	go w.run()
	return w
}

// submit commits recs through the writer and blocks until the batch
// containing them is durable (nil) or failed (the batch error).
// journal.ErrClosed reports a stopped writer. On success recs carries
// the assigned sequence numbers.
func (w *journalWriter) submit(recs []journal.Record) error {
	w.inflight.Add(1)
	defer w.inflight.Add(-1)
	req := &ackReq{recs: recs, done: make(chan error, 1)}
	select {
	case w.ch <- req:
	case <-w.stopped:
		return journal.ErrClosed
	}
	select {
	case err := <-req.done:
		return err
	case <-w.stopped:
		// The writer quiesced while we waited; it either processed the
		// request during its final drain (the ack is already buffered)
		// or never saw it.
		select {
		case err := <-req.done:
			return err
		default:
			return journal.ErrClosed
		}
	}
}

// stopWriter flushes everything already queued (committing it with
// the usual ack fan-out), then stops the goroutine; late submitters
// get journal.ErrClosed. Idempotent, returns once quiesced.
func (w *journalWriter) stopWriter() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.stopped
}

func (w *journalWriter) run() {
	var reqs []*ackReq
	var recs []journal.Record

	flush := func() {
		if len(reqs) == 0 {
			return
		}
		err := w.commit(recs)
		if err == nil {
			// Copy the assigned sequence numbers back into each
			// committer's slice before its ack fires.
			i := 0
			for _, r := range reqs {
				copy(r.recs, recs[i:i+len(r.recs)])
				i += len(r.recs)
			}
		}
		for _, r := range reqs {
			r.done <- err
		}
		if w.onBatch != nil {
			w.onBatch(len(reqs), len(recs))
		}
		reqs, recs = reqs[:0], recs[:0]
	}
	take := func(r *ackReq) {
		reqs = append(reqs, r)
		recs = append(recs, r.recs...)
	}

	for {
		select {
		case r := <-w.ch:
			take(r)
			// Opportunistic coalescing: everything already queued joins
			// this commit, up to the batch bound. The commit itself (the
			// fsync) is one batching window; on an empty channel the
			// group-commit gather below is the other — the writer holds
			// the batch open only while inflight shows committers it has
			// not collected yet, for at most the gather window total.
			var timer *time.Timer
			var deadline <-chan time.Time
		gatherLoop:
			for len(recs) < w.maxRecs {
				select {
				case r2 := <-w.ch:
					take(r2)
				default:
					if w.gather <= 0 || w.inflight.Load() <= int64(len(reqs)) {
						break gatherLoop
					}
					if timer == nil {
						timer = time.NewTimer(w.gather)
						deadline = timer.C
					}
					select {
					case r2 := <-w.ch:
						take(r2)
					case <-deadline:
						break gatherLoop
					case <-w.stop:
						break gatherLoop
					}
				}
			}
			if timer != nil {
				timer.Stop()
			}
			flush()
		case <-w.stop:
			// Quiesce: commit everything already queued, then close
			// stopped and fail whatever raced in after the final drain.
			for {
				select {
				case r := <-w.ch:
					take(r)
					if len(recs) >= w.maxRecs {
						flush()
					}
				default:
					flush()
					close(w.stopped)
					for {
						select {
						case r := <-w.ch:
							r.done <- journal.ErrClosed
						default:
							return
						}
					}
				}
			}
		}
	}
}
