package server

// Concurrency tests for the job table and API surface, written to be
// run under `go test -race` (part of `make verify`). They hammer the
// server from many goroutines — submits, status reads, live cap and
// policy changes, metrics scrapes — while the scheduler goroutine
// churns through epochs, then check the final accounting is exact.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"corun/internal/online"
	"corun/internal/units"
	"corun/internal/workload"
)

func TestJobTableConcurrency(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.EpochGap = 2 * time.Millisecond
		c.MaxQueue = 10_000
	})
	s.Start(context.Background())

	const (
		writers   = 6
		perWriter = 8
	)
	programs := workload.Names()
	var submitted atomic.Int64
	var wg sync.WaitGroup

	// Submitters.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				spec := workload.JobSpec{Program: programs[(w+i)%len(programs)], Scale: 1}
				if _, err := s.Submit(spec); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				submitted.Add(1)
			}
		}(w)
	}
	// Status readers.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, j := range s.Jobs() {
					if _, ok := s.Job(j.ID); !ok {
						t.Errorf("job %s vanished", j.ID)
						return
					}
				}
				s.QueueDepth()
				s.Plan()
				s.Clock()
				time.Sleep(time.Millisecond)
			}
		}()
	}
	// Live cap and policy changes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		caps := []float64{15, 16, 18, 0}
		for i := 0; i < 40; i++ {
			if err := s.SetCap(units.Watts(caps[i%len(caps)])); err != nil {
				t.Errorf("set cap: %v", err)
				return
			}
			p := online.PolicyHCSPlus
			if i%2 == 1 {
				p = online.PolicyRandom
			}
			if err := s.SetPolicy(p); err != nil {
				t.Errorf("set policy: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// Metrics and trace scrapes race against the scheduler's updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if err := s.WriteMetrics(io.Discard); err != nil {
				t.Errorf("metrics: %v", err)
				return
			}
			if err := s.WriteTrace(io.Discard, i%2 == 0); err != nil {
				t.Errorf("trace: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	jobs := waitAllTerminal(t, s, int(submitted.Load()), 120*time.Second)
	if len(jobs) != writers*perWriter {
		t.Fatalf("%d jobs recorded, want %d", len(jobs), writers*perWriter)
	}
	for _, j := range jobs {
		if j.State != JobDone {
			t.Errorf("job %s ended %s: %s", j.ID, j.State, j.Error)
		}
	}
	s.Drain()
	select {
	case <-s.Drained():
	case <-time.After(60 * time.Second):
		t.Fatal("drain stuck")
	}
}

// TestRandomPolicySubmissionRace hammers submissions while epochs plan
// under the random policy with a tiny batching gap. The random policy
// consumes the per-epoch seed on the scheduler goroutine while
// submitters run concurrently — this test (under -race) pins that the
// seed derivation is contention-free and that the final accounting is
// exact. It would have caught a shared rand.Rand drawn from both
// paths.
func TestRandomPolicySubmissionRace(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Policy = online.PolicyRandom
		c.EpochGap = time.Millisecond
		c.MaxQueue = 10_000
	})
	s.Start(context.Background())

	const (
		writers   = 8
		perWriter = 10
	)
	programs := workload.Names()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				spec := workload.JobSpec{Program: programs[(w*perWriter+i)%len(programs)], Scale: 1}
				if _, err := s.Submit(spec); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				// Interleave with epoch planning rather than batching
				// everything into one round.
				if i%3 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}(w)
	}
	// Concurrent plan reads race the scheduler's epoch state updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			s.Plan()
			s.Jobs()
			time.Sleep(500 * time.Microsecond)
		}
	}()
	wg.Wait()

	jobs := waitAllTerminal(t, s, writers*perWriter, 120*time.Second)
	for _, j := range jobs {
		if j.State != JobDone {
			t.Errorf("job %s ended %s: %s", j.ID, j.State, j.Error)
		}
	}
	s.Drain()
	select {
	case <-s.Drained():
	case <-time.After(60 * time.Second):
		t.Fatal("drain stuck")
	}
}

// TestMultiTenantConcurrency hammers the admission layer from several
// tenants at once — distinct weights, mixed priorities, a bounded
// batch so the preemption path runs concurrently with submissions —
// and cross-checks the per-tenant accounting afterwards. Under -race
// this pins that the WFQ state, tenant gauges, and preemption counter
// are only ever touched under the server's lock.
func TestMultiTenantConcurrency(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.EpochGap = 2 * time.Millisecond
		c.MaxQueue = 10_000
		c.MaxBatch = 3
		c.TenantQueue = 5_000
		c.TenantWeights = map[string]float64{"team-a": 3, "team-b": 1, "batch": 0}
	})
	s.Start(context.Background())

	tenants := []string{"team-a", "team-b", "batch", ""}
	priorities := []string{"high", "normal", "low"}
	const perTenant = 12
	programs := workload.Names()
	var wg sync.WaitGroup
	for ti, tenant := range tenants {
		wg.Add(1)
		go func(ti int, tenant string) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				spec := workload.JobSpec{
					Program:  programs[(ti+i)%len(programs)],
					Scale:    1,
					Tenant:   tenant,
					Priority: priorities[i%len(priorities)],
				}
				if _, err := s.Submit(spec); err != nil {
					t.Errorf("submit tenant %q: %v", tenant, err)
					return
				}
				if i%4 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}(ti, tenant)
	}
	// Metrics scrapes race the scheduler's gauge updates (tenant depth,
	// oldest-wait, preemptions).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if err := s.WriteMetrics(io.Discard); err != nil {
				t.Errorf("metrics: %v", err)
				return
			}
			s.QueueDepth()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	total := len(tenants) * perTenant
	jobs := waitAllTerminal(t, s, total, 120*time.Second)
	perTenantDone := map[string]int{}
	for _, j := range jobs {
		if j.State != JobDone {
			t.Errorf("job %s (tenant %s) ended %s: %s", j.ID, j.Tenant, j.State, j.Error)
		}
		perTenantDone[j.Tenant]++
	}
	// The "" submitter canonicalizes to the default tenant.
	want := map[string]int{"team-a": perTenant, "team-b": perTenant, "batch": perTenant, "default": perTenant}
	for tenant, n := range want {
		if perTenantDone[tenant] != n {
			t.Errorf("tenant %s finished %d jobs, want %d", tenant, perTenantDone[tenant], n)
		}
	}
	var buf strings.Builder
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for tenant, n := range want {
		name := `corund_tenant_admitted_total{tenant="` + tenant + `"}`
		if v := metricValue(t, body, name); v != float64(n) {
			t.Errorf("%s = %v, want %d", name, v, n)
		}
		name = `corund_tenant_queued{tenant="` + tenant + `"}`
		if v := metricValue(t, body, name); v != 0 {
			t.Errorf("%s = %v, want 0 after drain", name, v)
		}
	}
	s.Drain()
	select {
	case <-s.Drained():
	case <-time.After(60 * time.Second):
		t.Fatal("drain stuck")
	}
}

// TestHTTPConcurrency exercises the same races through the HTTP layer
// and cross-checks /metrics totals against the job table afterwards.
func TestHTTPConcurrency(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.EpochGap = 2 * time.Millisecond
		c.MaxQueue = 10_000
	})
	s.Start(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var accepted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
					strings.NewReader(`{"program":"leukocyte"}`))
				if err != nil {
					t.Errorf("post: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusAccepted {
					accepted.Add(1)
				} else {
					t.Errorf("submit -> %d", resp.StatusCode)
				}
			}
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				for _, path := range []string{"/v1/jobs", "/metrics", "/healthz", "/v1/trace"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						t.Errorf("get %s: %v", path, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	waitAllTerminal(t, s, int(accepted.Load()), 120*time.Second)
	_, body := get(t, ts.URL+"/metrics")
	if v := metricValue(t, body, "corund_jobs_submitted_total"); v != float64(accepted.Load()) {
		t.Errorf("submitted %v, want %v", v, accepted.Load())
	}
	if v := metricValue(t, body, "corund_jobs_done_total"); v != float64(accepted.Load()) {
		t.Errorf("done %v, want %v", v, accepted.Load())
	}
	if v := metricValue(t, body, "corund_queue_depth"); v != 0 {
		t.Errorf("queue depth %v", v)
	}
	s.Drain()
	<-s.Drained()
}
