package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"corun/internal/admission"
	"corun/internal/online"
	"corun/internal/policy"
	"corun/internal/units"
	"corun/internal/workload"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs      submit a job (workload.JobSpec JSON) -> 202 Job
//	GET  /v1/jobs      list all jobs
//	GET  /v1/jobs/{id} one job's status
//	GET  /v1/plan      most recent epoch's schedule and power budget
//	GET  /v1/cap       current power cap
//	POST /v1/cap       change the power cap live
//	GET  /v1/policies  registered scheduling policies and the active one
//	POST /v1/policy    change the epoch scheduling policy live
//	GET  /v1/trace     epoch trace (CSV, or JSON with ?format=json)
//	GET  /healthz      liveness: 200 while the process runs
//	GET  /readyz       readiness: 200 once the scheduler loop has the
//	                   recovered queue; 503 while draining, while
//	                   startup recovery replay has not finished, or
//	                   while the journal breaker holds the daemon in
//	                   degraded mode
//	GET  /metrics      Prometheus text exposition
//
// Liveness and readiness are split so an orchestrator never restarts
// a pod for being busy: /healthz only says the process is alive,
// while /readyz gates traffic — it is 503 both during startup
// (journal recovery replay has not yet handed the restored queue to
// the scheduler loop) and during a graceful drain.
//
// When Config.RequestTimeout is set, every endpoint runs under a
// per-request deadline: a handler that overruns it gets its request
// context canceled and the client a 503, so one stuck request cannot
// pin a connection forever.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/plan", s.handlePlan)
	mux.HandleFunc("GET /v1/cap", s.handleGetCap)
	mux.HandleFunc("POST /v1/cap", s.handleSetCap)
	mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	mux.HandleFunc("POST /v1/policy", s.handleSetPolicy)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.Handle("GET /metrics", s.m.reg.Handler())
	if s.cfg.RequestTimeout > 0 {
		th := http.TimeoutHandler(mux, s.cfg.RequestTimeout,
			`{"error": "server: request deadline exceeded"}`)
		// TimeoutHandler writes its JSON timeout body straight to the
		// outer ResponseWriter without a Content-Type, so that one 503
		// used to go out as text/plain while every other error on the
		// API is application/json. Pre-setting the header here fixes
		// the timeout path; on the success path the buffered handler
		// headers are copied over key-by-key, so endpoints that set
		// their own type (text/csv trace, the metrics exposition) still
		// win.
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			th.ServeHTTP(w, r)
		})
	}
	return mux
}

// retryHeader stamps the Retry-After hint every load-shedding
// response carries: the breaker cooldown remainder while degraded,
// otherwise an estimate from recent epoch latency. All shed paths
// (503 degraded, 429 queue-full, /readyz degraded) go through here so
// the hint cannot drift between them.
func (s *Server) retryHeader(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
}

// shedErr rejects a request with 503 + Retry-After: the daemon is
// alive but cannot durably accept the change right now (journal
// degraded or a write failed past its retries).
func (s *Server) shedErr(w http.ResponseWriter, err error) {
	s.retryHeader(w)
	writeErr(w, http.StatusServiceUnavailable, err)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The pooled buffer serves twice: first it holds the request body,
	// then (once the decoded spec has copied what it needs) the
	// response encoding — zero steady-state allocation either way.
	buf := reqBufPool.Get().(*reqBuf)
	defer func() { reqBufPool.Put(buf) }()
	var err error
	buf.b, err = readBody(http.MaxBytesReader(w, r.Body, 1<<20), buf.b)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	spec, err := workload.DecodeJobSpecBytes(buf.b)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.submit(spec)
	switch {
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrDegraded), errors.Is(err, ErrJournal):
		// The job was NOT acknowledged: its durability could not be
		// established, so the client must retry. (A failed fsync may
		// still have left frames in the log — restart recovery can
		// surface such a job, which is the at-least-once side of the
		// "an ack is never lost" guarantee.)
		s.shedErr(w, err)
		return
	case errors.Is(err, ErrQueueFull):
		// The 429 names the exhausted bound (global vs tenant) and
		// hints Retry-After from the submitting tenant's own drain
		// rate, not the global epoch latency: a throttled tenant's
		// backoff must not track how fast *other* tenants drain.
		var full *admission.FullError
		if errors.As(err, &full) {
			w.Header().Set("Retry-After", strconv.Itoa(s.tenantRetryAfterSeconds(full.Tenant)))
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error":  err.Error(),
				"bound":  full.Scope,
				"tenant": full.Tenant,
				"limit":  full.Limit,
			})
			return
		}
		s.retryHeader(w)
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out := appendJobJSON(buf.b[:0], job)
	out = append(out, '\n')
	buf.b = out
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_, _ = w.Write(out)
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	body, err := s.jobsJSON()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.jobRef(id)
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("server: unknown job %q", id))
		return
	}
	// Encode straight off the immutable snapshot — no copy, no
	// reflection, one pooled buffer.
	buf := reqBufPool.Get().(*reqBuf)
	out := appendJobJSON(buf.b[:0], j)
	out = append(out, '\n')
	buf.b = out
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
	reqBufPool.Put(buf)
}

func (s *Server) handlePlan(w http.ResponseWriter, _ *http.Request) {
	pv := s.lastPlan.Load()
	if pv == nil {
		writeErr(w, http.StatusNotFound, errors.New("server: no epoch has been planned yet"))
		return
	}
	// Stored PlanViews are immutable, so the encoded body is cached by
	// pointer identity: between epochs, polls reuse the same bytes.
	c := s.planCache.Load()
	if c == nil || c.pv != pv {
		var bb bytes.Buffer
		enc := json.NewEncoder(&bb)
		enc.SetIndent("", "  ")
		if err := enc.Encode(pv); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		c = &planCacheEntry{pv: pv, body: bb.Bytes()}
		s.planCache.Store(c)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(c.body)
}

func (s *Server) capBody() map[string]float64 {
	dc := s.DomainCaps()
	return map[string]float64{
		"cap_watts": float64(s.Cap()),
		"pp0_watts": float64(dc.PP0),
		"pp1_watts": float64(dc.PP1),
	}
}

func (s *Server) handleGetCap(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.capBody())
}

func (s *Server) handleSetCap(w http.ResponseWriter, r *http.Request) {
	var req struct {
		CapWatts *float64 `json:"cap_watts"`
		PP0Watts *float64 `json:"pp0_watts"`
		PP1Watts *float64 `json:"pp1_watts"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil || (req.CapWatts == nil && req.PP0Watts == nil && req.PP1Watts == nil) {
		writeErr(w, http.StatusBadRequest, errors.New(`server: body must set at least one of {"cap_watts", "pp0_watts", "pp1_watts"} (0 = uncapped)`))
		return
	}
	// Absent fields keep their current value, so a package-only client
	// (or an old one that never learned the plane fields) doesn't
	// silently clear plane caps set by someone else.
	cap := s.Cap()
	dc := s.DomainCaps()
	if req.CapWatts != nil {
		cap = units.Watts(*req.CapWatts)
	}
	if req.PP0Watts != nil {
		dc.PP0 = units.Watts(*req.PP0Watts)
	}
	if req.PP1Watts != nil {
		dc.PP1 = units.Watts(*req.PP1Watts)
	}
	if err := s.SetCaps(cap, dc); err != nil {
		if errors.Is(err, ErrDegraded) || errors.Is(err, ErrJournal) {
			s.shedErr(w, err)
			return
		}
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, s.capBody())
}

// handlePolicies lists the policy registry — the set a POST /v1/policy
// hot-swap accepts — plus the currently active policy.
func (s *Server) handlePolicies(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"policies": policy.List(),
		"active":   s.Policy().String(),
	})
}

func (s *Server) handleSetPolicy(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Policy string `json:"policy"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, errors.New(`server: body must be {"policy": "<name>"}; GET /v1/policies lists the registered names`))
		return
	}
	p, err := online.ParsePolicy(req.Policy)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.SetPolicy(p); err != nil {
		if errors.Is(err, ErrDegraded) || errors.Is(err, ErrJournal) {
			s.shedErr(w, err)
			return
		}
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"policy": p.String()})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	asJSON := r.URL.Query().Get("format") == "json"
	if asJSON {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "text/csv")
	}
	if err := s.WriteTrace(w, asJSON); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyStatus is the /readyz JSON body. Beyond the gate status it
// carries the node's fleet identity and its cheap load/budget
// snapshot, so a coordinator's health poll doubles as its stats poll —
// one request per node per interval covers liveness, routing load, and
// power-share bookkeeping.
type readyStatus struct {
	Status     string  `json:"status"`
	Node       string  `json:"node,omitempty"`
	QueueDepth int     `json:"queue_depth"`
	CapWatts   float64 `json:"cap_watts"`
}

func (s *Server) readyStatus(status string) readyStatus {
	return readyStatus{
		Status:     status,
		Node:       s.cfg.NodeID,
		QueueDepth: s.QueueDepth(),
		CapWatts:   float64(s.Cap()),
	}
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.Draining():
		writeJSON(w, http.StatusServiceUnavailable, s.readyStatus("draining"))
	case s.Degraded():
		// Alive but shedding: the journal breaker is open (or probing),
		// so new work cannot be durably acknowledged. Reported on
		// readiness so orchestrators route traffic elsewhere without
		// restarting the pod — recovery is automatic once a probe
		// write succeeds.
		s.retryHeader(w)
		writeJSON(w, http.StatusServiceUnavailable, s.readyStatus("degraded"))
	case !s.Ready():
		writeJSON(w, http.StatusServiceUnavailable, s.readyStatus("starting"))
	default:
		writeJSON(w, http.StatusOK, s.readyStatus("ready"))
	}
}
