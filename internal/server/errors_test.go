package server

// Pinning tests for the API's error-response contract: every error
// body on the JSON API is application/json and decodes to
// {"error": ...} (readiness uses {"status": ...}), including the shed
// paths (429, 503) and — the case that used to regress — the
// TimeoutHandler's 503, which is written outside the handlers' own
// writeJSON path.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"corun/internal/fault"
)

// checkJSONError asserts one error response carries the JSON
// Content-Type and a JSON object body with the given key. It returns
// the decoded body so callers can assert additional fields (the 429
// body also names the exhausted bound).
func checkJSONError(t *testing.T, name string, h http.Header, body, key string) map[string]any {
	t.Helper()
	if ct := h.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("%s: Content-Type %q, want application/json", name, ct)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Errorf("%s: body is not a JSON object: %v (%q)", name, err, body)
		return nil
	}
	if s, _ := m[key].(string); s == "" {
		t.Errorf("%s: body %q missing %q", name, body, key)
	}
	return m
}

func TestErrorResponsesAreJSON(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxQueue = 1
		c.RequestTimeout = 5 * time.Second
	})
	// Not started: admitted jobs stay queued, so the second submission
	// hits the queue bound deterministically.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, http.Header, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header, string(b)
	}

	// 400: invalid spec.
	code, h, body := postRaw(t, ts.URL+"/v1/jobs", `{"program":"nosuch"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad spec -> %d: %s", code, body)
	}
	checkJSONError(t, "400 bad spec", h, body, "error")

	// 404: unknown job.
	code, h, body = get("/v1/jobs/job-999999")
	if code != http.StatusNotFound {
		t.Fatalf("unknown job -> %d: %s", code, body)
	}
	checkJSONError(t, "404 unknown job", h, body, "error")

	// 404: no plan yet.
	code, h, body = get("/v1/plan")
	if code != http.StatusNotFound {
		t.Fatalf("no plan -> %d: %s", code, body)
	}
	checkJSONError(t, "404 no plan", h, body, "error")

	// 429: queue full (MaxQueue=1, scheduler not running).
	if code, body := postJSON(t, ts.URL+"/v1/jobs", `{"program":"cfd"}`); code != http.StatusAccepted {
		t.Fatalf("first submit -> %d: %s", code, body)
	}
	code, h, body = postRaw(t, ts.URL+"/v1/jobs", `{"program":"cfd"}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("queue full -> %d: %s", code, body)
	}
	m := checkJSONError(t, "429 queue full", h, body, "error")
	if h.Get("Retry-After") == "" {
		t.Error("429 queue full: no Retry-After")
	}
	// The body names the exhausted bound: MaxQueue=1 is the global one
	// here, hit by the default tenant.
	if m["bound"] != "global" || m["tenant"] != "default" || m["limit"] != float64(1) {
		t.Errorf("429 body missing bound details: %v", m)
	}

	// 503: draining, on both submission and readiness.
	s.markDraining()
	code, h, body = postRaw(t, ts.URL+"/v1/jobs", `{"program":"cfd"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining submit -> %d: %s", code, body)
	}
	checkJSONError(t, "503 draining submit", h, body, "error")
	code, h, body = get("/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz -> %d: %s", code, body)
	}
	checkJSONError(t, "503 draining readyz", h, body, "status")
}

// TestTimeoutErrorIsJSON pins the TimeoutHandler path: a request that
// overruns Config.RequestTimeout gets a 503 whose body is JSON *and*
// says so in its Content-Type. TimeoutHandler writes that body itself,
// bypassing writeJSON, so the type is asserted separately here.
func TestTimeoutErrorIsJSON(t *testing.T) {
	reg := fault.NewRegistry()
	s := newTestServer(t, func(c *Config) {
		c.Faults = reg
		c.RequestTimeout = 20 * time.Millisecond
	})
	if err := reg.Arm(fault.Rule{Site: SiteAdmit, Kind: fault.KindLatency, Delay: 500 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())
	defer func() {
		s.Drain()
		<-s.Drained()
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, h, body := postRaw(t, ts.URL+"/v1/jobs", `{"program":"cfd"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out submit -> %d: %s", code, body)
	}
	checkJSONError(t, "503 timeout", h, body, "error")

	// Success responses keep their own Content-Type: the CSV trace
	// must not be forced to JSON by the timeout wrapper's default.
	resp, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Errorf("/v1/trace Content-Type %q, want text/csv", ct)
	}
}
