// Package server is the network-facing co-run scheduler daemon
// ("corund"): a long-running process that wraps the internal/online
// epoch scheduler behind a JSON HTTP API with Prometheus metrics.
//
// Jobs arrive over HTTP (POST /v1/jobs) and queue at the simulated
// power-capped APU node. A single scheduler goroutine owns the epoch
// loop — exactly the paper's online operating mode: while one planned
// batch executes, new arrivals queue; when the batch drains, the queue
// is re-planned with the configured policy under the current power
// cap. Policies resolve through the internal/policy registry
// (GET /v1/policies lists the registered set), and the cap and policy
// can be changed live (POST /v1/cap, POST /v1/policy), taking effect
// at the next epoch, the way a rack-level power manager retunes nodes.
//
// Admission — who is accepted and who is eligible next — is owned by
// the internal/admission layer: jobs carry a tenant and a priority
// class, tenants drain under weighted fair queueing, both a global and
// a per-tenant queue bound apply (429 once full, with the exhausted
// bound named in the body), and with Config.MaxBatch set a higher-
// priority arrival preempts the lowest-priority claimed batch members
// at the epoch boundary. The epoch loop never orders jobs itself; it
// claims work exclusively through the admission.Selector seam.
// SIGTERM-style shutdown is graceful: draining stops admission, the
// in-flight epoch completes, queued jobs are flushed through final
// rounds, and the loop exits.
//
// With Config.DataDir set, the daemon is durable: every acknowledged
// state change is written ahead to the internal/journal WAL, and a
// restart against the same directory restores the power cap, active
// policy, scheduling clock, and job table, re-enqueuing every
// non-terminal job. The drain path flushes and fsyncs the journal
// before the loop exits.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"corun/internal/admission"
	"corun/internal/apu"
	"corun/internal/core"
	"corun/internal/fault"
	"corun/internal/journal"
	"corun/internal/memsys"
	"corun/internal/model"
	"corun/internal/online"
	"corun/internal/sim"
	"corun/internal/trace"
	"corun/internal/units"
	"corun/internal/workload"
)

// Admission errors. Handlers map ErrDraining, ErrDegraded, and
// ErrJournal to 503 (the latter two with a Retry-After hint) and
// ErrQueueFull to 429.
var (
	ErrDraining  = errors.New("server: draining, not accepting jobs")
	ErrQueueFull = errors.New("server: job queue full")

	// ErrDegraded reports that the journal circuit breaker is open:
	// durability is unavailable, so the daemon sheds work that would
	// need an un-journaled acknowledgement rather than lie about it.
	ErrDegraded = errors.New("server: degraded, journaling suspended")

	// ErrJournal wraps a journal write that still failed after the
	// bounded retries; nothing was acknowledged.
	ErrJournal = errors.New("server: journal write failed")
)

// The daemon's failpoint sites (internal/fault), in addition to the
// journal's (journal.Site*) and the policy engine's (policy.SitePlan).
// SiteAdmit fires inside Submit before a job is admitted; SiteEpoch
// fires at the top of each scheduling round, where an error fails the
// batch (not the daemon) and a latency rule simulates a planning
// overrun.
const (
	SiteAdmit = "server/admit"
	SiteEpoch = "server/epoch"
)

// Config configures a daemon instance.
type Config struct {
	// Machine and Mem default to the paper's Ivy Bridge-like node.
	Machine *apu.Config
	Mem     *memsys.Model

	// NodeID is the daemon's stable fleet identity ([A-Za-z0-9._]{1,32},
	// dashes allowed but not leading/trailing). When set, job IDs are
	// minted as "<node-id>-job-%06d" so a fleet coordinator can route
	// GET /v1/jobs/{id} to the owning shard by prefix, /readyz reports
	// it, and a corund_node_info{node=...} metric carries it for
	// fleet-wide aggregation. Empty keeps the single-node "job-%06d"
	// scheme. Keep it stable across restarts of the same data dir:
	// recovered jobs keep the IDs they were acknowledged under.
	NodeID string

	// Char is the offline micro-benchmark characterization; required
	// for the model-based policies (hcs+, hcs, default).
	Char *model.Characterization

	// Cap is the package power cap in watts (0 = uncapped).
	Cap units.Watts

	// Policy plans each epoch; defaults to PolicyHCSPlus.
	Policy online.Policy

	// Seed drives refinement sampling and the Random policy.
	Seed int64

	// MaxQueue bounds admitted-but-unscheduled jobs across all tenants;
	// submissions over the bound get 429. Defaults to 256.
	MaxQueue int

	// TenantQueue bounds each single tenant's admitted-but-unscheduled
	// jobs (0 = no per-tenant bound), so one chatty client cannot fill
	// the global bound and starve everyone else's admission.
	TenantQueue int

	// TenantWeights are per-tenant weighted-fair-queueing weights: a
	// tenant's share of epoch slots under contention, and with it its
	// share of the power-capped node's capacity. Tenants not listed
	// weigh 1; a configured 0 pins a tenant to the admission package's
	// starvation floor (it still makes progress, at the lowest rate).
	TenantWeights map[string]float64

	// MaxBatch bounds how many jobs one epoch claims (0 = unbounded).
	// A bounded batch is what gives priorities teeth: when the batch
	// is full, a higher-priority arrival preempts (requeues) the
	// lowest-priority claimed member at the epoch boundary.
	MaxBatch int

	// EpochGap is a real-time batching window: the scheduler waits this
	// long after finding work before finalizing the claimed batch, so
	// concurrent submitters coalesce into one epoch — and it doubles as
	// the preemption window for higher-priority arrivals. 0 plans
	// immediately.
	EpochGap time.Duration

	// DrainTimeout bounds how long ListenAndServe waits for the drain
	// to finish after cancellation. Defaults to 30s.
	DrainTimeout time.Duration

	// DataDir enables the durable state journal: every acknowledged
	// state change (job admission, lifecycle transition, cap change,
	// policy change) is logged under this directory, and a restart
	// against the same directory restores the cap, policy, clock, and
	// job table, re-enqueuing non-terminal jobs. Empty keeps the
	// daemon purely in-memory (the pre-journal behaviour).
	DataDir string

	// Fsync is the journal durability policy; defaults to
	// journal.FsyncAlways. Ignored without DataDir.
	Fsync journal.FsyncPolicy

	// SnapshotBytes overrides the journal's snapshot-plus-compaction
	// threshold (0 = the journal's default). Ignored without DataDir.
	SnapshotBytes int64

	// Faults is the failpoint registry checked at the daemon's
	// injection sites (SiteAdmit, SiteEpoch, and the journal's sites);
	// nil uses fault.Default, which costs one atomic load while
	// disarmed. Hits and injections are exported as
	// corund_fault_hits_total / corund_fault_injections_total.
	Faults *fault.Registry

	// JournalRetries bounds how many times a failed journal write is
	// retried (with jittered exponential backoff) before the failure
	// surfaces and counts against the circuit breaker. 0 means the
	// default of 3; negative disables retries.
	JournalRetries int

	// RetryBase and RetryMax shape the retry backoff: delays grow
	// exponentially from RetryBase (default 5ms) toward RetryMax
	// (default 250ms) with ±20% seeded jitter.
	RetryBase time.Duration
	RetryMax  time.Duration

	// BreakerThreshold is how many consecutive journal failures (each
	// already past its retries) trip the circuit breaker into degraded
	// mode: journaling is suspended, submissions and control changes
	// get 503 + Retry-After, and /readyz reports "degraded" until a
	// half-open probe succeeds. 0 means the default of 5; negative
	// disables the breaker.
	BreakerThreshold int

	// BreakerCooldown is how long the breaker sheds before allowing a
	// probe; default 2s.
	BreakerCooldown time.Duration

	// RequestTimeout is the per-request deadline on the HTTP API:
	// Handler wraps the mux so a request that exceeds it gets 503.
	// 0 disables the deadline.
	RequestTimeout time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Machine == nil {
		out.Machine = apu.DefaultConfig()
	}
	if out.Policy == "" {
		out.Policy = online.PolicyHCSPlus
	}
	if out.Mem == nil {
		out.Mem = memsys.Default()
	}
	if out.MaxQueue == 0 {
		out.MaxQueue = 256
	}
	if out.DrainTimeout == 0 {
		out.DrainTimeout = 30 * time.Second
	}
	if out.Faults == nil {
		out.Faults = fault.Default
	}
	if out.JournalRetries == 0 {
		out.JournalRetries = 3
	}
	if out.RetryBase == 0 {
		out.RetryBase = 5 * time.Millisecond
	}
	if out.RetryMax == 0 {
		out.RetryMax = 250 * time.Millisecond
	}
	if out.BreakerThreshold == 0 {
		out.BreakerThreshold = 5
	}
	if out.BreakerCooldown == 0 {
		out.BreakerCooldown = 2 * time.Second
	}
	return out
}

// PlanView is the JSON form of one epoch's schedule, served by
// GET /v1/plan. Orders reference job IDs.
type PlanView struct {
	Epoch  int      `json:"epoch"`
	Policy string   `json:"policy"`
	State  string   `json:"state"` // planning | running | done | failed
	Jobs   []string `json:"jobs"`

	CPUOrder  []string `json:"cpu_order,omitempty"`
	GPUOrder  []string `json:"gpu_order,omitempty"`
	Exclusive []string `json:"exclusive,omitempty"`

	PredictedMakespanS float64 `json:"predicted_makespan_s,omitempty"`
	SimulatedMakespanS float64 `json:"simulated_makespan_s,omitempty"`

	// The power budget of the epoch: the cap it planned under and how
	// much of it execution actually used.
	CapWatts       float64 `json:"cap_watts"`
	AvgPowerWatts  float64 `json:"avg_power_watts,omitempty"`
	MaxPowerWatts  float64 `json:"max_power_watts,omitempty"`
	CapUtilization float64 `json:"cap_utilization,omitempty"`
	EnergyJoules   float64 `json:"energy_joules,omitempty"`

	ClockStartS float64 `json:"clock_start_s"`
	ClockEndS   float64 `json:"clock_end_s,omitempty"`

	Error string `json:"error,omitempty"`
}

func (p *PlanView) clone() PlanView {
	out := *p
	out.Jobs = append([]string(nil), p.Jobs...)
	out.CPUOrder = append([]string(nil), p.CPUOrder...)
	out.GPUOrder = append([]string(nil), p.GPUOrder...)
	out.Exclusive = append([]string(nil), p.Exclusive...)
	return out
}

// Server is the daemon: job table, scheduler goroutine, metrics, and
// (when configured with a data dir) the durable state journal.
type Server struct {
	cfg    Config
	m      *metrics
	jl     *journal.Journal // nil without Config.DataDir
	faults *fault.Registry
	brk    *fault.Breaker // nil when Config.BreakerThreshold < 0
	bo     fault.Backoff  // journal write retry schedule

	// lastEpochWall is the wall-clock nanoseconds of the most recent
	// epoch's planning+execution, feeding the Retry-After hint on
	// load-shedding responses.
	lastEpochWall atomic.Int64

	// ctlMu serializes cap and policy changes so their journal order
	// matches their in-memory apply order.
	ctlMu sync.Mutex

	// adm owns job ordering and eligibility: tenant queues, priority
	// classes, WFQ arbitration, and both admission bounds. The server
	// keeps the job table, journal, and lifecycle; every adm call is
	// made under mu so ordering stays atomic with the job table.
	adm admission.Selector

	mu         sync.Mutex
	jobs       map[string]*Job
	order      []string
	nextID     int
	capW       units.Watts
	policy     online.Policy
	simClock   units.Seconds
	epochCount int
	lastPlan   *PlanView
	draining   bool

	// jobsVersion counts job-table mutations; GET /v1/jobs reuses its
	// encoded response while the version is unchanged, so dashboards
	// polling a quiet daemon do not re-marshal the whole table.
	jobsVersion uint64

	// jobsCacheMu guards the encoded GET /v1/jobs response. It is
	// separate from (and acquired before) mu so encoding happens
	// outside the scheduler's critical section.
	jobsCacheMu  sync.Mutex
	jobsCacheVer uint64
	jobsCache    []byte

	traceMakespan *trace.Series
	tracePower    *trace.Series
	traceBatch    *trace.Series

	wake      chan struct{}
	stop      chan struct{}
	stopOnce  sync.Once
	startOnce sync.Once
	drained   chan struct{}

	// ready is closed when the scheduler loop starts, i.e. once
	// startup recovery has handed the restored queue to it; GET
	// /readyz reports 503 until then.
	ready     chan struct{}
	readyOnce sync.Once
}

// New validates the configuration and builds a server. Call Start to
// launch the scheduler loop.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	// Reuse the epoch scheduler's own option validation so the daemon
	// rejects exactly what PlanEpoch would.
	probe := online.Options{Cfg: cfg.Machine, Mem: cfg.Mem, Char: cfg.Char, Cap: cfg.Cap, Policy: cfg.Policy}
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	if err := checkCap(cfg.Machine, cfg.Cap); err != nil {
		return nil, err
	}
	if cfg.MaxQueue < 0 {
		return nil, fmt.Errorf("server: negative max queue %d", cfg.MaxQueue)
	}
	if cfg.MaxBatch < 0 {
		return nil, fmt.Errorf("server: negative max batch %d", cfg.MaxBatch)
	}
	if err := ValidateNodeID(cfg.NodeID); err != nil {
		return nil, err
	}
	adm, err := admission.New(admission.Config{
		Weights:     cfg.TenantWeights,
		MaxQueue:    cfg.MaxQueue,
		TenantQueue: cfg.TenantQueue,
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:           cfg,
		adm:           adm,
		m:             newMetrics(),
		jobs:          map[string]*Job{},
		capW:          cfg.Cap,
		policy:        cfg.Policy,
		traceMakespan: trace.NewSeries("epoch_makespan", "s"),
		tracePower:    trace.NewSeries("epoch_avg_power", "W"),
		traceBatch:    trace.NewSeries("epoch_jobs", "count"),
		wake:          make(chan struct{}, 1),
		stop:          make(chan struct{}),
		drained:       make(chan struct{}),
		ready:         make(chan struct{}),
	}
	s.m.capWatts.Set(float64(cfg.Cap))
	if cfg.NodeID != "" {
		s.m.nodeInfo.Set(cfg.NodeID, 1)
	}
	s.faults = cfg.Faults
	s.faults.Subscribe(func(ev fault.Event) {
		s.m.faultHits.Inc(ev.Site)
		if ev.Injected {
			s.m.faultInjected.Inc(ev.Site)
		}
	})
	s.bo = fault.Backoff{
		Base: cfg.RetryBase, Max: cfg.RetryMax,
		Jitter: 0.2, Seed: cfg.Seed,
		Attempts: 1 + max(0, cfg.JournalRetries),
	}
	if cfg.BreakerThreshold > 0 {
		s.brk = fault.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
		s.brk.OnChange(func(_, to fault.BreakerState) {
			s.m.brkState.Set(float64(to))
			if to == fault.BreakerOpen {
				s.m.brkTrips.Inc()
			}
		})
	}
	if cfg.DataDir != "" {
		if err := s.openJournal(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// nodeIDPattern admits stable fleet identities that embed cleanly in
// job IDs and metric labels. Dashes are allowed inside (they also
// separate the ID from the "job-%06d" suffix, which parseJobID and the
// coordinator's longest-prefix routing both handle), but a leading or
// trailing dash would make the prefix ambiguous.
var nodeIDPattern = regexp.MustCompile(`^[A-Za-z0-9._](?:[A-Za-z0-9._-]{0,30}[A-Za-z0-9._])?$`)

// ValidateNodeID checks a fleet node identity; empty is valid (the
// single-node daemon has no identity to embed).
func ValidateNodeID(id string) error {
	if id == "" {
		return nil
	}
	if !nodeIDPattern.MatchString(id) {
		return fmt.Errorf("server: invalid node ID %q (1-32 of [A-Za-z0-9._-], no leading/trailing dash)", id)
	}
	return nil
}

// NodeID returns the daemon's configured fleet identity ("" for a
// standalone node).
func (s *Server) NodeID() string { return s.cfg.NodeID }

// mintJobID issues the next job ID, prefixed with the node identity
// when one is configured. Callers hold mu.
func (s *Server) mintJobID() string {
	n := s.nextID
	s.nextID++
	if s.cfg.NodeID != "" {
		return fmt.Sprintf("%s-job-%06d", s.cfg.NodeID, n)
	}
	return fmt.Sprintf("job-%06d", n)
}

func checkCap(machine *apu.Config, cap units.Watts) error {
	if cap < 0 {
		return fmt.Errorf("server: negative power cap %v", cap)
	}
	if cap > 0 && cap < machine.MinFreqCap() {
		return fmt.Errorf("server: cap %v below the machine's minimum co-run power %v", cap, machine.MinFreqCap())
	}
	return nil
}

// Submit admits one job, returning its initial record. ErrDraining and
// ErrQueueFull report admission refusals (a queue-full error also
// carries the *admission.FullError naming the exhausted bound); other
// errors are invalid specs. With a journal configured, the submission
// record is durable before the job is acknowledged or becomes visible
// to the scheduler — an acked job can never be lost to a crash, and
// the log can never hold a job's state transition ahead of its
// submission.
func (s *Server) Submit(spec workload.JobSpec) (Job, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return Job{}, err
	}
	class, _ := admission.ParseClass(spec.Priority) // validated above
	if err := s.faults.Hit(SiteAdmit); err != nil {
		s.m.rejected.Inc()
		return Job{}, err
	}
	s.mu.Lock()
	if s.draining {
		s.m.rejected.Inc()
		s.mu.Unlock()
		return Job{}, ErrDraining
	}
	// The reservation holds admission capacity while the journal write
	// is in flight, so concurrent submitters cannot overshoot the
	// global or tenant bound during the unlocked window below.
	if err := s.adm.Reserve(spec.Tenant); err != nil {
		s.m.rejected.Inc()
		s.m.tenantRejected.Inc(admission.CanonicalTenant(spec.Tenant))
		s.mu.Unlock()
		return Job{}, fmt.Errorf("%w: %w", ErrQueueFull, err)
	}
	id := s.mintJobID()
	j := &Job{
		ID:          id,
		Program:     spec.Program,
		Scale:       spec.Scale,
		Label:       spec.Label,
		DeadlineS:   spec.DeadlineS,
		Tenant:      spec.Tenant,
		Priority:    spec.Priority,
		State:       JobQueued,
		SubmittedAt: time.Now().UTC(),
		ArrivedSimS: float64(s.simClock),
		spec:        spec,
	}
	if s.jl != nil {
		s.mu.Unlock()
		err := s.appendDurable(journal.Record{Type: journal.TypeJobSubmitted, Job: recordFromJob(j)})
		s.mu.Lock()
		if err != nil {
			s.adm.Unreserve(spec.Tenant)
			s.m.rejected.Inc()
			s.mu.Unlock()
			switch {
			case errors.Is(err, journal.ErrClosed):
				return Job{}, ErrDraining
			case errors.Is(err, ErrDegraded):
				s.m.shed.Inc()
				return Job{}, ErrDegraded
			}
			return Job{}, fmt.Errorf("%w: journaling submission: %v", ErrJournal, err)
		}
		// A drain can begin while the lock was released for the journal
		// write; the scheduler loop may already have flushed its final
		// round and exited. Enqueuing now would ack a job nothing will
		// ever run, so refuse it. (The submission record is already on
		// disk — restart recovery re-enqueues the job, the documented
		// at-least-once side of the durability guarantee.)
		if s.draining {
			s.adm.Unreserve(spec.Tenant)
			s.m.rejected.Inc()
			s.mu.Unlock()
			return Job{}, ErrDraining
		}
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.adm.AddReserved(admission.Entry{
		ID: id, Tenant: j.Tenant, Class: class,
		EnqueuedAt: j.SubmittedAt, Payload: j,
	})
	s.jobsVersion++
	s.m.submitted.Inc()
	s.m.tenantAdmitted.Inc(j.Tenant)
	s.syncQueueGauges()
	out := *j // snapshot before the scheduler can touch the job
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return out, nil
}

// syncQueueGauges refreshes the queue-shape gauges from the admission
// state. Callers hold mu.
func (s *Server) syncQueueGauges() {
	s.m.queueDepth.Set(float64(s.adm.Len()))
	for tenant, depth := range s.adm.Depths() {
		s.m.tenantQueued.Set(tenant, float64(depth))
	}
	s.m.oldestWait.Set(s.adm.OldestWait(time.Now().UTC()).Seconds())
}

// Job returns a snapshot of one job by ID.
func (s *Server) Job(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Jobs returns snapshots of every job in submission order.
func (s *Server) Jobs() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobsLocked()
}

func (s *Server) jobsLocked() []Job {
	out := make([]Job, len(s.order))
	for i, id := range s.order {
		out[i] = *s.jobs[id]
	}
	return out
}

// jobsJSON returns the encoded GET /v1/jobs response body. The
// encoding is cached against jobsVersion: while no job changes state,
// repeated polls (the dashboard pattern) reuse the same bytes instead
// of re-snapshotting and re-marshalling the whole table. Callers must
// not mutate the returned slice.
func (s *Server) jobsJSON() ([]byte, error) {
	s.jobsCacheMu.Lock()
	defer s.jobsCacheMu.Unlock()
	s.mu.Lock()
	ver := s.jobsVersion
	if s.jobsCache != nil && s.jobsCacheVer == ver {
		s.mu.Unlock()
		return s.jobsCache, nil
	}
	jobs := s.jobsLocked()
	s.mu.Unlock()
	// Encode outside mu: a large table must not stall admission or the
	// scheduler. jobsCacheMu still serializes concurrent re-encoders.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{"jobs": jobs}); err != nil {
		return nil, err
	}
	s.jobsCacheVer, s.jobsCache = ver, buf.Bytes()
	return s.jobsCache, nil
}

// QueueDepth returns the number of admitted-but-unclaimed jobs.
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.adm.Len()
}

// Cap returns the active power cap.
func (s *Server) Cap() units.Watts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capW
}

// SetCap changes the power cap live; it applies from the next epoch.
// The change is journaled before it is acknowledged (or applied), so
// a restart restores it.
func (s *Server) SetCap(cap units.Watts) error {
	if err := checkCap(s.cfg.Machine, cap); err != nil {
		return err
	}
	s.ctlMu.Lock()
	defer s.ctlMu.Unlock()
	if s.jl != nil {
		w := float64(cap)
		if err := s.appendDurable(journal.Record{Type: journal.TypeCapChanged, CapWatts: &w}); err != nil {
			if errors.Is(err, ErrDegraded) {
				return err
			}
			return fmt.Errorf("%w: journaling cap change: %v", ErrJournal, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.capW = cap
	s.m.capWatts.Set(float64(cap))
	return nil
}

// Policy returns the active epoch policy.
func (s *Server) Policy() online.Policy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.policy
}

// SetPolicy changes the epoch policy live; it applies from the next
// epoch. Model-based policies require the server to hold a
// characterization. The change is journaled before it is acknowledged
// (or applied), so a restart restores it.
func (s *Server) SetPolicy(p online.Policy) error {
	probe := online.Options{Cfg: s.cfg.Machine, Mem: s.cfg.Mem, Char: s.cfg.Char, Policy: p}
	if err := probe.Validate(); err != nil {
		return err
	}
	s.ctlMu.Lock()
	defer s.ctlMu.Unlock()
	if s.jl != nil {
		if err := s.appendDurable(journal.Record{Type: journal.TypePolicyChanged, Policy: p.String()}); err != nil {
			if errors.Is(err, ErrDegraded) {
				return err
			}
			return fmt.Errorf("%w: journaling policy change: %v", ErrJournal, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.policy = p
	return nil
}

// Plan returns the most recent epoch's schedule, if any epoch has been
// planned yet.
func (s *Server) Plan() (PlanView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastPlan == nil {
		return PlanView{}, false
	}
	return s.lastPlan.clone(), true
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Degraded reports whether the journal circuit breaker is away from
// closed: durability is suspect, submissions and control changes are
// shed, and /readyz reports "degraded". The daemon leaves this state
// through a successful half-open probe once the cooldown elapses —
// i.e. automatically, as soon as the journal works again.
func (s *Server) Degraded() bool {
	return s.brk != nil && s.brk.State() != fault.BreakerClosed
}

// retryAfterSeconds is the Retry-After hint on load-shedding
// responses: the breaker cooldown remainder while degraded, otherwise
// roughly two epochs of the most recent planning+execution latency.
func (s *Server) retryAfterSeconds() int {
	if s.brk != nil {
		if until := s.brk.OpenUntil(); !until.IsZero() {
			if d := time.Until(until); d > 0 {
				return 1 + int(d/time.Second)
			}
		}
	}
	if ns := s.lastEpochWall.Load(); ns > 0 {
		secs := int((2*time.Duration(ns) + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		if secs > 30 {
			secs = 30
		}
		return secs
	}
	return 1
}

// tenantRetryAfterSeconds is the Retry-After hint on a tenant's 429:
// how long until the tenant's own backlog drains one slot, from the
// admission layer's per-tenant drain-rate EWMA. Before any drain has
// been observed it falls back to the global epoch-latency hint.
func (s *Server) tenantRetryAfterSeconds(tenant string) int {
	s.mu.Lock()
	rate := s.adm.DrainRate(tenant)
	depth := s.adm.TenantDepth(tenant)
	s.mu.Unlock()
	if rate > 0 {
		secs := int(math.Ceil(float64(depth+1) / rate))
		if secs < 1 {
			secs = 1
		}
		if secs > 30 {
			secs = 30
		}
		return secs
	}
	return s.retryAfterSeconds()
}

// Ready reports whether the scheduler loop has started — i.e.
// startup recovery replay has finished and its re-enqueued queue has
// been handed to the loop. GET /readyz exposes it.
func (s *Server) Ready() bool {
	select {
	case <-s.ready:
		return true
	default:
		return false
	}
}

// Clock returns the node's scheduling clock (simulated seconds).
func (s *Server) Clock() units.Seconds {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.simClock
}

// WriteTrace renders the epoch trace — makespan, average power, and
// batch size per epoch, indexed by the scheduling clock — as CSV or
// JSON.
func (s *Server) WriteTrace(w io.Writer, asJSON bool) error {
	s.mu.Lock()
	series := []*trace.Series{
		cloneSeries(s.traceMakespan),
		cloneSeries(s.tracePower),
		cloneSeries(s.traceBatch),
	}
	s.mu.Unlock()
	if asJSON {
		return trace.WriteJSON(w, series...)
	}
	return trace.WriteMultiCSV(w, series...)
}

func cloneSeries(s *trace.Series) *trace.Series {
	out := trace.NewSeries(s.Name, s.Unit)
	for _, sm := range s.Samples() {
		out.MustAdd(sm.Time, sm.Value)
	}
	return out
}

// WriteMetrics renders the Prometheus text exposition.
func (s *Server) WriteMetrics(w io.Writer) error { return s.m.reg.Write(w) }

// markDraining stops admission; idempotent.
func (s *Server) markDraining() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// loop is the single scheduler goroutine: it owns the epoch cycle and
// is the only writer of job state transitions past admission.
func (s *Server) loop(ctx context.Context) {
	defer func() {
		// The drain contract: everything journaled during the final
		// flush round is on stable storage before Drained closes.
		if s.jl != nil {
			_ = s.jl.Sync()
		}
		s.m.up.Set(0)
		close(s.drained)
	}()
	s.m.up.Set(1)
	// Startup recovery has handed its re-enqueued queue to this loop;
	// the server is now ready (GET /readyz).
	s.readyOnce.Do(func() { close(s.ready) })
	for {
		if ctx.Err() != nil {
			s.markDraining()
		}
		s.mu.Lock()
		pending := s.adm.Len()
		draining := s.draining
		s.mu.Unlock()
		if pending == 0 {
			if draining {
				return
			}
			select {
			case <-ctx.Done():
			case <-s.stop:
				s.markDraining()
			case <-s.wake:
			}
			continue
		}
		// Claim the initial batch before the gap: the gap then doubles
		// as the preemption window. Arrivals during it either coalesce
		// into the epoch (batch below MaxBatch) or, when strictly
		// higher-priority, displace claimed members at the boundary.
		claimed := s.claimBatch()
		if gap := s.cfg.EpochGap; gap > 0 && !draining {
			t := time.NewTimer(gap)
			select {
			case <-ctx.Done():
			case <-s.stop:
			case <-t.C:
			}
			t.Stop()
		}
		s.runEpoch(claimed)
	}
}

// claimBatch selects the next epoch's initial members through the
// admission layer: strict priority across classes, weighted fair
// queueing across tenants within a class.
func (s *Server) claimBatch() []admission.Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	claimed := s.adm.SelectBatch(s.cfg.MaxBatch, time.Now().UTC())
	s.syncQueueGauges()
	return claimed
}

// runEpoch finalizes the claimed batch at the epoch boundary and runs
// one scheduling round.
//
// Only terminal transitions are journaled (in one batch at the end of
// the round). The intermediate planned/running records carried no
// recovery information — startup replay resets every non-terminal job
// to queued with its epoch markers cleared — so writing them cost two
// extra journal appends (and, under FsyncAlways, two extra fsyncs)
// per epoch for state a restart discards anyway.
func (s *Server) runEpoch(claimed []admission.Entry) {
	s.mu.Lock()
	// The boundary decision: absorb gap arrivals up to MaxBatch, then
	// let strictly higher-priority arrivals displace the lowest-
	// priority claimed members. Displaced jobs return to the front of
	// their tenant queue with their original tags — requeued, not
	// resubmitted — and run next epoch.
	kept, requeued := s.adm.Preempt(claimed, s.cfg.MaxBatch, time.Now().UTC())
	if len(requeued) > 0 {
		s.m.preemptions.Add(float64(len(requeued)))
	}
	batch := make([]*Job, len(kept))
	for i, e := range kept {
		batch[i] = e.Payload.(*Job)
	}
	s.syncQueueGauges()
	epoch := s.epochCount + 1
	capW, policy := s.capW, s.policy
	clock := s.simClock
	seed := epochSeed(s.cfg.Seed, epoch)
	insts := make([]*workload.Instance, len(batch))
	var specErr error
	for i, j := range batch {
		j.State = JobPlanned
		j.Epoch = epoch
		inst, err := j.spec.Instance(i, j.ID)
		if err != nil {
			specErr = err
			break
		}
		insts[i] = inst
	}
	s.jobsVersion++
	pv := newPlanView(epoch, policy, capW, clock, batch)
	pv.State = "planning"
	s.lastPlan = &pv
	s.mu.Unlock()
	if specErr != nil {
		s.finishEpochErr(batch, epoch, specErr)
		return
	}

	// The epoch failpoint: an injected error fails this batch (the
	// daemon stays up, exactly like an unschedulable cap), and a
	// latency rule models a planning-epoch overrun.
	if err := s.faults.Hit(SiteEpoch); err != nil {
		s.finishEpochErr(batch, epoch, err)
		return
	}

	opts := online.Options{
		Cfg: s.cfg.Machine, Mem: s.cfg.Mem, Char: s.cfg.Char,
		Cap: capW, Policy: policy, Seed: seed,
	}
	opts.Planned = func(plan *core.Schedule, predicted units.Seconds) {
		s.mu.Lock()
		for _, j := range batch {
			j.State = JobRunning
			if predicted > 0 {
				j.PredictedFinishSimS = float64(clock + predicted)
			}
		}
		s.jobsVersion++
		run := newPlanView(epoch, policy, capW, clock, batch)
		run.State = "running"
		fillPlan(&run, plan, predicted, batch)
		s.lastPlan = &run
		if predicted > 0 {
			s.m.predMakespan.Set(float64(predicted))
		}
		s.mu.Unlock()
	}

	start := time.Now()
	ep, err := online.PlanEpoch(opts, insts, seed)
	s.m.epochLatency.Observe(time.Since(start).Seconds())
	s.lastEpochWall.Store(int64(time.Since(start)))
	if err != nil {
		s.finishEpochErr(batch, epoch, err)
		return
	}

	res := ep.Result
	s.mu.Lock()
	partners := partnerMap(res.Completions)
	for _, c := range res.Completions {
		j := batch[c.Inst.ID]
		j.State = JobDone
		j.StartedSimS = float64(clock + c.Start)
		j.FinishedSimS = float64(clock + c.End)
		j.ResponseS = j.FinishedSimS - j.ArrivedSimS
		j.Device = c.Dev.String()
		if p, ok := partners[c.Inst.ID]; ok {
			j.Partner = batch[p].ID
		}
		if j.DeadlineS > 0 {
			met := j.ResponseS <= j.DeadlineS
			j.DeadlineMet = &met
		}
	}
	for _, j := range batch {
		// The simulator runs every dispatched job to completion, so a
		// missing completion is a scheduler invariant violation.
		if j.State != JobDone {
			j.State = JobFailed
			j.Error = "no completion recorded"
			s.m.failed.Inc()
		}
	}
	s.simClock = clock + res.Makespan
	s.epochCount = epoch
	s.jobsVersion++

	s.m.epochs.Inc()
	s.m.done.Add(float64(len(res.Completions)))
	s.m.scheduled.Add(policy.String(), float64(len(res.Completions)))
	s.m.energy.Add(res.EnergyJ)
	s.m.simMakespan.Set(float64(res.Makespan))
	s.m.simClock.Set(float64(s.simClock))
	if capW > 0 {
		s.m.capUtil.Set(float64(res.AvgPower) / float64(capW))
	}

	s.traceMakespan.MustAdd(s.simClock, float64(res.Makespan))
	s.tracePower.MustAdd(s.simClock, float64(res.AvgPower))
	s.traceBatch.MustAdd(s.simClock, float64(len(batch)))

	done := newPlanView(epoch, policy, capW, clock, batch)
	done.State = "done"
	fillPlan(&done, ep.Plan, ep.Predicted, batch)
	done.SimulatedMakespanS = float64(res.Makespan)
	done.AvgPowerWatts = float64(res.AvgPower)
	done.MaxPowerWatts = float64(res.MaxSample)
	if capW > 0 {
		done.CapUtilization = float64(res.AvgPower) / float64(capW)
	}
	done.EnergyJoules = res.EnergyJ
	done.ClockEndS = float64(s.simClock)
	s.lastPlan = &done

	var doneRecs []journal.Record
	if s.jl != nil {
		clockEnd := float64(s.simClock)
		for _, j := range batch {
			doneRecs = append(doneRecs, stateRecord(j, clockEnd))
		}
	}
	s.mu.Unlock()
	s.journalAppend(doneRecs)
}

// epochSeed derives the per-epoch RNG seed for randomized policies
// from the configured seed and the epoch number (splitmix64 finalizer).
// Deriving instead of drawing from a shared rand.Rand keeps runs
// reproducible for a given (seed, epoch) regardless of interleaving,
// and leaves nothing for concurrent paths to contend on.
func epochSeed(seed int64, epoch int) int64 {
	z := uint64(seed) + uint64(epoch)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z >> 1)
}

// finishEpochErr marks a failed round. The daemon stays up: one
// unschedulable batch (e.g. the cap was dropped below feasibility
// between admission and planning) must not take the node down.
func (s *Server) finishEpochErr(batch []*Job, epoch int, err error) {
	s.mu.Lock()
	var recs []journal.Record
	for _, j := range batch {
		j.State = JobFailed
		j.Error = err.Error()
		if s.jl != nil {
			recs = append(recs, stateRecord(j, 0))
		}
	}
	s.jobsVersion++
	s.m.failed.Add(float64(len(batch)))
	s.m.epochs.Inc()
	s.epochCount = epoch
	if s.lastPlan != nil && s.lastPlan.Epoch == epoch {
		s.lastPlan.State = "failed"
		s.lastPlan.Error = err.Error()
	}
	s.mu.Unlock()
	s.journalAppend(recs)
}

func newPlanView(epoch int, policy online.Policy, capW units.Watts, clock units.Seconds, batch []*Job) PlanView {
	pv := PlanView{
		Epoch:       epoch,
		Policy:      policy.String(),
		CapWatts:    float64(capW),
		ClockStartS: float64(clock),
	}
	for _, j := range batch {
		pv.Jobs = append(pv.Jobs, j.ID)
	}
	return pv
}

func fillPlan(pv *PlanView, plan *core.Schedule, predicted units.Seconds, batch []*Job) {
	if plan == nil {
		return
	}
	for _, i := range plan.CPUOrder {
		pv.CPUOrder = append(pv.CPUOrder, batch[i].ID)
	}
	for _, i := range plan.GPUOrder {
		pv.GPUOrder = append(pv.GPUOrder, batch[i].ID)
	}
	for _, i := range plan.Jobs() {
		if plan.Exclusive[i] {
			pv.Exclusive = append(pv.Exclusive, batch[i].ID)
		}
	}
	pv.PredictedMakespanS = float64(predicted)
}

// partnerMap pairs each completed job with the opposite-device job it
// overlapped longest with, by instance ID.
func partnerMap(cs []sim.Completion) map[int]int {
	out := map[int]int{}
	for i, a := range cs {
		best, bestOv := -1, units.Seconds(0)
		for j, b := range cs {
			if i == j || a.Dev == b.Dev {
				continue
			}
			ov := minS(a.End, b.End) - maxS(a.Start, b.Start)
			if ov > bestOv {
				bestOv = ov
				best = b.Inst.ID
			}
		}
		if best >= 0 {
			out[a.Inst.ID] = best
		}
	}
	return out
}

func minS(a, b units.Seconds) units.Seconds {
	if a < b {
		return a
	}
	return b
}

func maxS(a, b units.Seconds) units.Seconds {
	if a > b {
		return a
	}
	return b
}
