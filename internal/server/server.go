// Package server is the network-facing co-run scheduler daemon
// ("corund"): a long-running process that wraps the internal/online
// epoch scheduler behind a JSON HTTP API with Prometheus metrics.
//
// Jobs arrive over HTTP (POST /v1/jobs) and queue at the simulated
// power-capped APU node. A single scheduler goroutine owns the epoch
// loop — exactly the paper's online operating mode: while one planned
// batch executes, new arrivals queue; when the batch drains, the queue
// is re-planned with the configured policy under the current power
// cap. Policies resolve through the internal/policy registry
// (GET /v1/policies lists the registered set), and the cap and policy
// can be changed live (POST /v1/cap, POST /v1/policy), taking effect
// at the next epoch, the way a rack-level power manager retunes nodes.
//
// Admission — who is accepted and who is eligible next — is owned by
// the internal/admission layer: jobs carry a tenant and a priority
// class, tenants drain under weighted fair queueing, both a global and
// a per-tenant queue bound apply (429 once full, with the exhausted
// bound named in the body), and with Config.MaxBatch set a higher-
// priority arrival preempts the lowest-priority claimed batch members
// at the epoch boundary. The epoch loop never orders jobs itself; it
// claims work exclusively through the admission.Selector seam.
// SIGTERM-style shutdown is graceful: draining stops admission, the
// in-flight epoch completes, queued jobs are flushed through final
// rounds, and the loop exits.
//
// With Config.DataDir set, the daemon is durable: every acknowledged
// state change is written ahead to the internal/journal WAL, and a
// restart against the same directory restores the power cap, active
// policy, scheduling clock, and job table, re-enqueuing every
// non-terminal job. The drain path flushes and fsyncs the journal
// before the loop exits.
//
// Serving-path concurrency model (see DESIGN.md §2h): there is no
// global server mutex. The job table is striped with immutable
// atomic-pointer snapshots (jobTable), journal commits flow through a
// dedicated writer goroutine that batches concurrent submitters into
// one fsync (journalWriter), the admission selector and the draining
// flag sit behind the small admMu, cap/policy/clock/plan are atomics,
// and everything else — epoch planning, queue-shape gauges, trace
// bookkeeping — belongs to the scheduler goroutine, off the request
// path.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"corun/internal/admission"
	"corun/internal/apu"
	"corun/internal/core"
	"corun/internal/fault"
	"corun/internal/journal"
	"corun/internal/memsys"
	"corun/internal/model"
	"corun/internal/online"
	"corun/internal/sim"
	"corun/internal/trace"
	"corun/internal/units"
	"corun/internal/workload"
)

// Admission errors. Handlers map ErrDraining, ErrDegraded, and
// ErrJournal to 503 (the latter two with a Retry-After hint) and
// ErrQueueFull to 429.
var (
	ErrDraining  = errors.New("server: draining, not accepting jobs")
	ErrQueueFull = errors.New("server: job queue full")

	// ErrDegraded reports that the journal circuit breaker is open:
	// durability is unavailable, so the daemon sheds work that would
	// need an un-journaled acknowledgement rather than lie about it.
	ErrDegraded = errors.New("server: degraded, journaling suspended")

	// ErrJournal wraps a journal write that still failed after the
	// bounded retries; nothing was acknowledged.
	ErrJournal = errors.New("server: journal write failed")
)

// The daemon's failpoint sites (internal/fault), in addition to the
// journal's (journal.Site*) and the policy engine's (policy.SitePlan).
// SiteAdmit fires inside Submit before a job is admitted; SiteEpoch
// fires at the top of each scheduling round, where an error fails the
// batch (not the daemon) and a latency rule simulates a planning
// overrun.
const (
	SiteAdmit = "server/admit"
	SiteEpoch = "server/epoch"
)

// Config configures a daemon instance.
type Config struct {
	// Machine and Mem default to the paper's Ivy Bridge-like node.
	Machine *apu.Config
	Mem     *memsys.Model

	// NodeID is the daemon's stable fleet identity ([A-Za-z0-9._]{1,32},
	// dashes allowed but not leading/trailing). When set, job IDs are
	// minted as "<node-id>-job-%06d" so a fleet coordinator can route
	// GET /v1/jobs/{id} to the owning shard by prefix, /readyz reports
	// it, and a corund_node_info{node=...} metric carries it for
	// fleet-wide aggregation. Empty keeps the single-node "job-%06d"
	// scheme. Keep it stable across restarts of the same data dir:
	// recovered jobs keep the IDs they were acknowledged under.
	NodeID string

	// Char is the offline micro-benchmark characterization; required
	// for the model-based policies (hcs+, hcs, default).
	Char *model.Characterization

	// Cap is the package power cap in watts (0 = uncapped).
	Cap units.Watts

	// Domains are optional RAPL-style per-plane caps enforced alongside
	// Cap: PP0 bounds the CPU cores, PP1 the iGPU. Like Cap they can be
	// changed live (POST /v1/cap) and are journaled/restored.
	Domains apu.DomainCaps

	// Policy plans each epoch; defaults to PolicyHCSPlus.
	Policy online.Policy

	// Seed drives refinement sampling and the Random policy.
	Seed int64

	// MaxQueue bounds admitted-but-unscheduled jobs across all tenants;
	// submissions over the bound get 429. Defaults to 256.
	MaxQueue int

	// TenantQueue bounds each single tenant's admitted-but-unscheduled
	// jobs (0 = no per-tenant bound), so one chatty client cannot fill
	// the global bound and starve everyone else's admission.
	TenantQueue int

	// TenantWeights are per-tenant weighted-fair-queueing weights: a
	// tenant's share of epoch slots under contention, and with it its
	// share of the power-capped node's capacity. Tenants not listed
	// weigh 1; a configured 0 pins a tenant to the admission package's
	// starvation floor (it still makes progress, at the lowest rate).
	TenantWeights map[string]float64

	// MaxBatch bounds how many jobs one epoch claims (0 = unbounded).
	// A bounded batch is what gives priorities teeth: when the batch
	// is full, a higher-priority arrival preempts (requeues) the
	// lowest-priority claimed member at the epoch boundary.
	MaxBatch int

	// EpochGap is a real-time batching window: the scheduler waits this
	// long after finding work before finalizing the claimed batch, so
	// concurrent submitters coalesce into one epoch — and it doubles as
	// the preemption window for higher-priority arrivals. 0 plans
	// immediately.
	EpochGap time.Duration

	// DrainTimeout bounds how long ListenAndServe waits for the drain
	// to finish after cancellation. Defaults to 30s.
	DrainTimeout time.Duration

	// DataDir enables the durable state journal: every acknowledged
	// state change (job admission, lifecycle transition, cap change,
	// policy change) is logged under this directory, and a restart
	// against the same directory restores the cap, policy, clock, and
	// job table, re-enqueuing non-terminal jobs. Empty keeps the
	// daemon purely in-memory (the pre-journal behaviour).
	DataDir string

	// Fsync is the journal durability policy; defaults to
	// journal.FsyncAlways. Ignored without DataDir.
	Fsync journal.FsyncPolicy

	// SnapshotBytes overrides the journal's snapshot-plus-compaction
	// threshold (0 = the journal's default). Ignored without DataDir.
	SnapshotBytes int64

	// JournalBatch bounds how many records the journal writer
	// goroutine coalesces into one commit (one Append, one fsync under
	// FsyncAlways). Defaults to 256. Ignored without DataDir.
	JournalBatch int

	// JournalGather is the writer's group-commit window: when more
	// committers are in flight than the writer has collected, it holds
	// the batch open up to this long so they share one fsync. A lone
	// sequential committer never waits (the gate is the in-flight
	// count, not a fixed delay). Defaults to 1ms; negative disables.
	// Ignored without DataDir.
	JournalGather time.Duration

	// Faults is the failpoint registry checked at the daemon's
	// injection sites (SiteAdmit, SiteEpoch, and the journal's sites);
	// nil uses fault.Default, which costs one atomic load while
	// disarmed. Hits and injections are exported as
	// corund_fault_hits_total / corund_fault_injections_total.
	Faults *fault.Registry

	// JournalRetries bounds how many times a failed journal write is
	// retried (with jittered exponential backoff) before the failure
	// surfaces and counts against the circuit breaker. 0 means the
	// default of 3; negative disables retries.
	JournalRetries int

	// RetryBase and RetryMax shape the retry backoff: delays grow
	// exponentially from RetryBase (default 5ms) toward RetryMax
	// (default 250ms) with ±20% seeded jitter.
	RetryBase time.Duration
	RetryMax  time.Duration

	// BreakerThreshold is how many consecutive journal failures (each
	// already past its retries) trip the circuit breaker into degraded
	// mode: journaling is suspended, submissions and control changes
	// get 503 + Retry-After, and /readyz reports "degraded" until a
	// half-open probe succeeds. 0 means the default of 5; negative
	// disables the breaker.
	BreakerThreshold int

	// BreakerCooldown is how long the breaker sheds before allowing a
	// probe; default 2s.
	BreakerCooldown time.Duration

	// RequestTimeout is the per-request deadline on the HTTP API:
	// Handler wraps the mux so a request that exceeds it gets 503.
	// 0 disables the deadline.
	RequestTimeout time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Machine == nil {
		out.Machine = apu.DefaultConfig()
	}
	if out.Policy == "" {
		out.Policy = online.PolicyHCSPlus
	}
	if out.Mem == nil {
		out.Mem = memsys.Default()
	}
	if out.MaxQueue == 0 {
		out.MaxQueue = 256
	}
	if out.DrainTimeout == 0 {
		out.DrainTimeout = 30 * time.Second
	}
	if out.JournalBatch == 0 {
		out.JournalBatch = 256
	}
	if out.JournalGather == 0 {
		out.JournalGather = time.Millisecond
	}
	if out.Faults == nil {
		out.Faults = fault.Default
	}
	if out.JournalRetries == 0 {
		out.JournalRetries = 3
	}
	if out.RetryBase == 0 {
		out.RetryBase = 5 * time.Millisecond
	}
	if out.RetryMax == 0 {
		out.RetryMax = 250 * time.Millisecond
	}
	if out.BreakerThreshold == 0 {
		out.BreakerThreshold = 5
	}
	if out.BreakerCooldown == 0 {
		out.BreakerCooldown = 2 * time.Second
	}
	return out
}

// PlanView is the JSON form of one epoch's schedule, served by
// GET /v1/plan. Orders reference job IDs. A stored PlanView is
// immutable — updates build and publish a fresh one.
type PlanView struct {
	Epoch  int      `json:"epoch"`
	Policy string   `json:"policy"`
	State  string   `json:"state"` // planning | running | done | failed
	Jobs   []string `json:"jobs"`

	CPUOrder  []string `json:"cpu_order,omitempty"`
	GPUOrder  []string `json:"gpu_order,omitempty"`
	Exclusive []string `json:"exclusive,omitempty"`

	PredictedMakespanS float64 `json:"predicted_makespan_s,omitempty"`
	SimulatedMakespanS float64 `json:"simulated_makespan_s,omitempty"`

	// The power budget of the epoch: the cap it planned under and how
	// much of it execution actually used.
	CapWatts       float64 `json:"cap_watts"`
	AvgPowerWatts  float64 `json:"avg_power_watts,omitempty"`
	MaxPowerWatts  float64 `json:"max_power_watts,omitempty"`
	CapUtilization float64 `json:"cap_utilization,omitempty"`
	EnergyJoules   float64 `json:"energy_joules,omitempty"`

	// Per-plane caps the epoch planned under, the measured plane
	// powers, and the thermal outcome.
	PP0CapWatts       float64 `json:"pp0_cap_watts,omitempty"`
	PP1CapWatts       float64 `json:"pp1_cap_watts,omitempty"`
	AvgPP0Watts       float64 `json:"avg_pp0_watts,omitempty"`
	AvgPP1Watts       float64 `json:"avg_pp1_watts,omitempty"`
	MaxTempC          float64 `json:"max_temp_c,omitempty"`
	Throttles         int     `json:"throttles,omitempty"`
	BindingConstraint string  `json:"binding_constraint,omitempty"`

	ClockStartS float64 `json:"clock_start_s"`
	ClockEndS   float64 `json:"clock_end_s,omitempty"`

	Error string `json:"error,omitempty"`
}

func (p *PlanView) clone() PlanView {
	out := *p
	out.Jobs = append([]string(nil), p.Jobs...)
	out.CPUOrder = append([]string(nil), p.CPUOrder...)
	out.GPUOrder = append([]string(nil), p.GPUOrder...)
	out.Exclusive = append([]string(nil), p.Exclusive...)
	return out
}

// jobsCacheEntry is one immutable encoded GET /v1/jobs response,
// keyed by the table version captured BEFORE the table was iterated
// (see jobsJSON for why that side matters).
type jobsCacheEntry struct {
	version uint64
	body    []byte
}

// planCacheEntry caches the encoded GET /v1/plan body for one stored
// PlanView (matched by pointer identity — stored views are immutable).
type planCacheEntry struct {
	pv   *PlanView
	body []byte
}

// Server is the daemon: job table, scheduler goroutine, metrics, and
// (when configured with a data dir) the durable state journal.
//
// Locking, from hot to cold:
//   - none: job reads (table snapshots), cap/policy/clock/plan reads,
//     the draining fast check — all atomics.
//   - admMu: the admission selector and every decision that must be
//     atomic with it (reserve/enqueue/claim/preempt, the post-journal
//     draining re-check, the loop's exit decision).
//   - jobsCacheMu / traceMu / ctlMu / arena.mu: small, single-purpose.
//
// The scheduler goroutine exclusively owns epochCount and the private
// batch copies it mutates between publishes.
type Server struct {
	cfg    Config
	m      *metrics
	jl     *journal.Journal // nil without Config.DataDir
	jw     *journalWriter   // non-nil exactly when jl is
	faults *fault.Registry
	brk    *fault.Breaker // nil when Config.BreakerThreshold < 0
	bo     fault.Backoff  // journal write retry schedule

	// lastEpochWall is the wall-clock nanoseconds of the most recent
	// epoch's planning+execution, feeding the Retry-After hint on
	// load-shedding responses.
	lastEpochWall atomic.Int64

	// ctlMu serializes cap and policy changes so their journal order
	// matches their in-memory apply order.
	ctlMu sync.Mutex

	// adm owns job ordering and eligibility: tenant queues, priority
	// classes, WFQ arbitration, and both admission bounds. Every adm
	// call is made under admMu, as is every draining decision that
	// must be atomic with the queue (a Queue is not concurrency-safe).
	admMu    sync.Mutex
	adm      admission.Selector
	draining atomic.Bool

	// table is the sharded job table; arena slab-allocates the records
	// it publishes; nextID mints IDs lock-free.
	table    jobTable
	arena    jobArena
	nextID   atomic.Int64
	idPrefix string // "job-" or "<node-id>-job-"

	// Control state read on the request path, written by control calls
	// and the scheduler: float64 bit patterns and pointers.
	capBits   atomic.Uint64            // units.Watts
	pp0Bits   atomic.Uint64            // units.Watts (0 = plane uncapped)
	pp1Bits   atomic.Uint64            // units.Watts (0 = plane uncapped)
	policyV   atomic.Pointer[string]   // online.Policy as string
	simClock  atomic.Uint64            // units.Seconds
	lastPlan  atomic.Pointer[PlanView] // immutable once stored
	planCache atomic.Pointer[planCacheEntry]

	// epochCount is owned by the scheduler goroutine (recovery writes
	// it before the loop starts).
	epochCount int

	// jobsCache is the version-keyed encoded GET /v1/jobs response;
	// jobsCacheMu serializes rebuilds (readers never take it).
	jobsCacheMu sync.Mutex
	jobsCache   atomic.Pointer[jobsCacheEntry]

	// testHookListSnapshot, when set by a test, runs inside jobsJSON
	// after the table snapshot is taken and before the cache entry is
	// stored — the window where the version-capture order matters.
	testHookListSnapshot func()

	traceMu       sync.Mutex
	traceMakespan *trace.Series
	tracePower    *trace.Series
	traceBatch    *trace.Series

	wake      chan struct{}
	stop      chan struct{}
	stopOnce  sync.Once
	startOnce sync.Once
	drained   chan struct{}

	// ready is closed when the scheduler loop starts, i.e. once
	// startup recovery has handed the restored queue to it; GET
	// /readyz reports 503 until then.
	ready     chan struct{}
	readyOnce sync.Once
}

// New validates the configuration and builds a server. Call Start to
// launch the scheduler loop.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	// Reuse the epoch scheduler's own option validation so the daemon
	// rejects exactly what PlanEpoch would.
	probe := online.Options{Cfg: cfg.Machine, Mem: cfg.Mem, Char: cfg.Char, Cap: cfg.Cap, Domains: cfg.Domains, Policy: cfg.Policy}
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Machine.CheckCaps(cfg.Cap, cfg.Domains); err != nil {
		return nil, err
	}
	if cfg.MaxQueue < 0 {
		return nil, fmt.Errorf("server: negative max queue %d", cfg.MaxQueue)
	}
	if cfg.MaxBatch < 0 {
		return nil, fmt.Errorf("server: negative max batch %d", cfg.MaxBatch)
	}
	if err := ValidateNodeID(cfg.NodeID); err != nil {
		return nil, err
	}
	adm, err := admission.New(admission.Config{
		Weights:     cfg.TenantWeights,
		MaxQueue:    cfg.MaxQueue,
		TenantQueue: cfg.TenantQueue,
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:           cfg,
		adm:           adm,
		m:             newMetrics(),
		idPrefix:      "job-",
		traceMakespan: trace.NewSeries("epoch_makespan", "s"),
		tracePower:    trace.NewSeries("epoch_avg_power", "W"),
		traceBatch:    trace.NewSeries("epoch_jobs", "count"),
		wake:          make(chan struct{}, 1),
		stop:          make(chan struct{}),
		drained:       make(chan struct{}),
		ready:         make(chan struct{}),
	}
	s.table.init()
	if cfg.NodeID != "" {
		s.idPrefix = cfg.NodeID + "-job-"
		s.m.nodeInfo.Set(cfg.NodeID, 1)
	}
	s.setCapWatts(cfg.Cap)
	s.setDomainWatts(cfg.Domains)
	s.setPolicyNow(cfg.Policy)
	s.m.capWatts.Set(float64(cfg.Cap))
	s.publishDomainCapGauges(cfg.Domains)
	s.faults = cfg.Faults
	s.faults.Subscribe(func(ev fault.Event) {
		s.m.faultHits.Inc(ev.Site)
		if ev.Injected {
			s.m.faultInjected.Inc(ev.Site)
		}
	})
	s.bo = fault.Backoff{
		Base: cfg.RetryBase, Max: cfg.RetryMax,
		Jitter: 0.2, Seed: cfg.Seed,
		Attempts: 1 + max(0, cfg.JournalRetries),
	}
	if cfg.BreakerThreshold > 0 {
		s.brk = fault.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
		s.brk.OnChange(func(_, to fault.BreakerState) {
			s.m.brkState.Set(float64(to))
			if to == fault.BreakerOpen {
				s.m.brkTrips.Inc()
			}
		})
	}
	if cfg.DataDir != "" {
		if err := s.openJournal(); err != nil {
			return nil, err
		}
		s.jw = newJournalWriter(
			func(recs []journal.Record) error { return s.appendDurable(recs...) },
			cfg.JournalBatch,
			cfg.JournalGather,
			func(reqs, recs int) {
				s.m.jlBatches.Inc()
				s.m.jlBatchRecords.Observe(float64(recs))
			},
		)
	}
	return s, nil
}

// nodeIDPattern admits stable fleet identities that embed cleanly in
// job IDs and metric labels. Dashes are allowed inside (they also
// separate the ID from the "job-%06d" suffix, which parseJobID and the
// coordinator's longest-prefix routing both handle), but a leading or
// trailing dash would make the prefix ambiguous.
var nodeIDPattern = regexp.MustCompile(`^[A-Za-z0-9._](?:[A-Za-z0-9._-]{0,30}[A-Za-z0-9._])?$`)

// ValidateNodeID checks a fleet node identity; empty is valid (the
// single-node daemon has no identity to embed).
func ValidateNodeID(id string) error {
	if id == "" {
		return nil
	}
	if !nodeIDPattern.MatchString(id) {
		return fmt.Errorf("server: invalid node ID %q (1-32 of [A-Za-z0-9._-], no leading/trailing dash)", id)
	}
	return nil
}

// NodeID returns the daemon's configured fleet identity ("" for a
// standalone node).
func (s *Server) NodeID() string { return s.cfg.NodeID }

// mintJobID issues the next job ID, prefixed with the node identity
// when one is configured. Lock-free.
func (s *Server) mintJobID() string {
	n := s.nextID.Add(1) - 1
	buf := make([]byte, 0, len(s.idPrefix)+12)
	buf = append(buf, s.idPrefix...)
	buf = appendPaddedInt(buf, n, 6)
	return string(buf)
}

// Atomic accessors for the control state read on the request path.

func (s *Server) setCapWatts(c units.Watts) { s.capBits.Store(math.Float64bits(float64(c))) }

func (s *Server) capWatts() units.Watts {
	return units.Watts(math.Float64frombits(s.capBits.Load()))
}

func (s *Server) setDomainWatts(dc apu.DomainCaps) {
	s.pp0Bits.Store(math.Float64bits(float64(dc.PP0)))
	s.pp1Bits.Store(math.Float64bits(float64(dc.PP1)))
}

func (s *Server) domainWatts() apu.DomainCaps {
	return apu.DomainCaps{
		PP0: units.Watts(math.Float64frombits(s.pp0Bits.Load())),
		PP1: units.Watts(math.Float64frombits(s.pp1Bits.Load())),
	}
}

func (s *Server) publishDomainCapGauges(dc apu.DomainCaps) {
	s.m.domainCapWatts.Set("pp0", float64(dc.PP0))
	s.m.domainCapWatts.Set("pp1", float64(dc.PP1))
}

func (s *Server) setPolicyNow(p online.Policy) {
	str := string(p)
	s.policyV.Store(&str)
}

func (s *Server) policyNow() online.Policy { return online.Policy(*s.policyV.Load()) }

func (s *Server) setClock(c units.Seconds) { s.simClock.Store(math.Float64bits(float64(c))) }

func (s *Server) clock() units.Seconds {
	return units.Seconds(math.Float64frombits(s.simClock.Load()))
}

// Submit admits one job, returning its initial record. ErrDraining and
// ErrQueueFull report admission refusals (a queue-full error also
// carries the *admission.FullError naming the exhausted bound); other
// errors are invalid specs. With a journal configured, the submission
// record is durable before the job is acknowledged or becomes visible
// to the scheduler — an acked job can never be lost to a crash, and
// the log can never hold a job's state transition ahead of its
// submission.
func (s *Server) Submit(spec workload.JobSpec) (Job, error) {
	j, err := s.submit(spec)
	if err != nil {
		return Job{}, err
	}
	return *j, nil
}

// submit is the hot admission path; the returned *Job is the
// published immutable snapshot (handlers encode straight from it).
func (s *Server) submit(spec workload.JobSpec) (*Job, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	class, _ := admission.ParseClass(spec.Priority) // validated above
	if err := s.faults.Hit(SiteAdmit); err != nil {
		s.m.rejected.Inc()
		return nil, err
	}
	// The reservation holds admission capacity while the journal write
	// is in flight, so concurrent submitters cannot overshoot the
	// global or tenant bound during the unlocked window below.
	s.admMu.Lock()
	if s.draining.Load() {
		s.admMu.Unlock()
		s.m.rejected.Inc()
		return nil, ErrDraining
	}
	if err := s.adm.Reserve(spec.Tenant); err != nil {
		s.admMu.Unlock()
		s.m.rejected.Inc()
		s.m.tenantRejected.Inc(admission.CanonicalTenant(spec.Tenant))
		return nil, fmt.Errorf("%w: %w", ErrQueueFull, err)
	}
	s.admMu.Unlock()

	j := s.arena.get()
	*j = Job{
		ID:          s.mintJobID(),
		Program:     spec.Program,
		Scale:       spec.Scale,
		Label:       spec.Label,
		DeadlineS:   spec.DeadlineS,
		Tenant:      spec.Tenant,
		Priority:    spec.Priority,
		State:       JobQueued,
		SubmittedAt: time.Now().UTC(),
		ArrivedSimS: float64(s.clock()),
		spec:        spec,
	}
	if s.jl != nil {
		// The writer goroutine coalesces this record with every other
		// in-flight submission into one commit (one fsync); the ack
		// waits only for its own batch.
		err := s.jw.submit([]journal.Record{{Type: journal.TypeJobSubmitted, Job: recordFromJob(j)}})
		if err != nil {
			s.admMu.Lock()
			s.adm.Unreserve(spec.Tenant)
			s.admMu.Unlock()
			s.m.rejected.Inc()
			switch {
			case errors.Is(err, journal.ErrClosed):
				return nil, ErrDraining
			case errors.Is(err, ErrDegraded):
				s.m.shed.Inc()
				return nil, ErrDegraded
			}
			return nil, fmt.Errorf("%w: journaling submission: %v", ErrJournal, err)
		}
	}
	s.admMu.Lock()
	// A drain can begin while the journal commit was in flight; the
	// scheduler loop may already have flushed its final round and
	// exited. Enqueuing now would ack a job nothing will ever run, so
	// refuse it. (The submission record is already on disk — restart
	// recovery re-enqueues the job, the documented at-least-once side
	// of the durability guarantee.)
	if s.draining.Load() {
		s.adm.Unreserve(spec.Tenant)
		s.admMu.Unlock()
		s.m.rejected.Inc()
		return nil, ErrDraining
	}
	// Publish before AddReserved: once the entry is selectable the
	// scheduler will publish transitions for it, which requires the
	// table to know the job. From here on j is immutable.
	s.table.insert(j)
	s.adm.AddReserved(admission.Entry{
		ID: j.ID, Tenant: j.Tenant, Class: class,
		EnqueuedAt: j.SubmittedAt, Payload: j,
	})
	depth, tenantDepth := s.adm.Len(), s.adm.TenantDepth(j.Tenant)
	s.admMu.Unlock()
	// The two cheap queue gauges update per admission so depth is
	// observable before the scheduler ever claims; the expensive scan
	// (oldest wait, all-tenant sweep) stays on the claim path.
	s.m.queueDepth.Set(float64(depth))
	s.m.tenantQueued.Set(j.Tenant, float64(tenantDepth))
	s.m.submitted.Inc()
	s.m.tenantAdmitted.Inc(j.Tenant)
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return j, nil
}

// syncQueueGauges refreshes the queue-shape gauges from the admission
// state. Callers hold admMu. Runs only on the scheduler goroutine's
// claim/exit path — never on the request path.
func (s *Server) syncQueueGauges() {
	s.m.queueDepth.Set(float64(s.adm.Len()))
	s.adm.EachDepth(func(tenant string, depth int) {
		s.m.tenantQueued.Set(tenant, float64(depth))
	})
	s.m.oldestWait.Set(s.adm.OldestWait(time.Now().UTC()).Seconds())
}

// Job returns a snapshot of one job by ID.
func (s *Server) Job(id string) (Job, bool) {
	if j := s.table.get(id); j != nil {
		return *j, true
	}
	return Job{}, false
}

// jobRef returns the job's current immutable snapshot (nil if
// unknown); handlers encode from it without copying.
func (s *Server) jobRef(id string) *Job { return s.table.get(id) }

// Jobs returns snapshots of every job in submission order.
func (s *Server) Jobs() []Job { return s.table.snapshotOrdered() }

// jobsJSON returns the encoded GET /v1/jobs response body. The
// encoding is cached against the table version: while no job changes
// state, repeated polls (the dashboard pattern) reuse the same bytes.
// Callers must not mutate the returned slice.
//
// The cache entry is keyed by the version captured BEFORE the table
// is iterated. Under striping the iteration is not atomic — jobs can
// transition mid-walk — so the body may contain state newer than the
// captured version, never older. Keying by the pre-iteration version
// makes that safe: any write acked after the capture bumps the
// version past the key, so the next read misses and rebuilds. Keying
// by a post-iteration version would let a body that MISSED a
// mid-iteration write be served for that write's version — a stale
// read after an acked write (pinned by TestJobsCacheVersionSkew).
func (s *Server) jobsJSON() ([]byte, error) {
	if c := s.jobsCache.Load(); c != nil && c.version == s.table.version.Load() {
		return c.body, nil
	}
	s.jobsCacheMu.Lock()
	defer s.jobsCacheMu.Unlock()
	ver := s.table.version.Load() // BEFORE snapshotOrdered, see above
	if c := s.jobsCache.Load(); c != nil && c.version == ver {
		return c.body, nil
	}
	jobs := s.table.snapshotOrdered()
	if h := s.testHookListSnapshot; h != nil {
		h()
	}
	// Encode outside every lock the serving or scheduling paths take;
	// jobsCacheMu only serializes concurrent re-encoders.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{"jobs": jobs}); err != nil {
		return nil, err
	}
	s.jobsCache.Store(&jobsCacheEntry{version: ver, body: buf.Bytes()})
	return buf.Bytes(), nil
}

// QueueDepth returns the number of admitted-but-unclaimed jobs.
func (s *Server) QueueDepth() int {
	s.admMu.Lock()
	defer s.admMu.Unlock()
	return s.adm.Len()
}

// Cap returns the active power cap.
func (s *Server) Cap() units.Watts { return s.capWatts() }

// DomainCaps returns the active per-plane caps (zero = unenforced).
func (s *Server) DomainCaps() apu.DomainCaps { return s.domainWatts() }

// SetCap changes the package power cap live, leaving any per-plane
// caps as they are; it applies from the next epoch.
func (s *Server) SetCap(cap units.Watts) error {
	return s.SetCaps(cap, s.domainWatts())
}

// SetCaps changes the package and per-plane power caps together; they
// apply from the next epoch. The change is journaled as one record
// before it is acknowledged (or applied), so a restart restores the
// full cap state atomically.
func (s *Server) SetCaps(cap units.Watts, dc apu.DomainCaps) error {
	if err := s.cfg.Machine.CheckCaps(cap, dc); err != nil {
		return err
	}
	s.ctlMu.Lock()
	defer s.ctlMu.Unlock()
	if s.jl != nil {
		if err := s.appendDurable(capRecord(cap, dc)); err != nil {
			if errors.Is(err, ErrDegraded) {
				return err
			}
			return fmt.Errorf("%w: journaling cap change: %v", ErrJournal, err)
		}
	}
	s.setCapWatts(cap)
	s.setDomainWatts(dc)
	s.m.capWatts.Set(float64(cap))
	s.publishDomainCapGauges(dc)
	return nil
}

// capRecord journals the full cap state: the package cap always, each
// plane only when configured (so old-journal replay semantics — no
// pointer, no plane cap — stay symmetric with new writes).
func capRecord(cap units.Watts, dc apu.DomainCaps) journal.Record {
	w := float64(cap)
	r := journal.Record{Type: journal.TypeCapChanged, CapWatts: &w}
	if dc.PP0 > 0 {
		v := float64(dc.PP0)
		r.PP0Watts = &v
	}
	if dc.PP1 > 0 {
		v := float64(dc.PP1)
		r.PP1Watts = &v
	}
	return r
}

// Policy returns the active epoch policy.
func (s *Server) Policy() online.Policy { return s.policyNow() }

// SetPolicy changes the epoch policy live; it applies from the next
// epoch. Model-based policies require the server to hold a
// characterization. The change is journaled before it is acknowledged
// (or applied), so a restart restores it.
func (s *Server) SetPolicy(p online.Policy) error {
	probe := online.Options{Cfg: s.cfg.Machine, Mem: s.cfg.Mem, Char: s.cfg.Char, Policy: p}
	if err := probe.Validate(); err != nil {
		return err
	}
	s.ctlMu.Lock()
	defer s.ctlMu.Unlock()
	if s.jl != nil {
		if err := s.appendDurable(journal.Record{Type: journal.TypePolicyChanged, Policy: p.String()}); err != nil {
			if errors.Is(err, ErrDegraded) {
				return err
			}
			return fmt.Errorf("%w: journaling policy change: %v", ErrJournal, err)
		}
	}
	s.setPolicyNow(p)
	return nil
}

// Plan returns the most recent epoch's schedule, if any epoch has been
// planned yet.
func (s *Server) Plan() (PlanView, bool) {
	pv := s.lastPlan.Load()
	if pv == nil {
		return PlanView{}, false
	}
	return pv.clone(), true
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool { return s.draining.Load() }

// Degraded reports whether the journal circuit breaker is away from
// closed: durability is suspect, submissions and control changes are
// shed, and /readyz reports "degraded". The daemon leaves this state
// through a successful half-open probe once the cooldown elapses —
// i.e. automatically, as soon as the journal works again.
func (s *Server) Degraded() bool {
	return s.brk != nil && s.brk.State() != fault.BreakerClosed
}

// retryAfterSeconds is the Retry-After hint on load-shedding
// responses: the breaker cooldown remainder while degraded, otherwise
// roughly two epochs of the most recent planning+execution latency.
func (s *Server) retryAfterSeconds() int {
	if s.brk != nil {
		if until := s.brk.OpenUntil(); !until.IsZero() {
			if d := time.Until(until); d > 0 {
				return 1 + int(d/time.Second)
			}
		}
	}
	if ns := s.lastEpochWall.Load(); ns > 0 {
		secs := int((2*time.Duration(ns) + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		if secs > 30 {
			secs = 30
		}
		return secs
	}
	return 1
}

// tenantRetryAfterSeconds is the Retry-After hint on a tenant's 429:
// how long until the tenant's own backlog drains one slot, from the
// admission layer's per-tenant drain-rate EWMA. Before any drain has
// been observed it falls back to the global epoch-latency hint.
func (s *Server) tenantRetryAfterSeconds(tenant string) int {
	s.admMu.Lock()
	rate := s.adm.DrainRate(tenant)
	depth := s.adm.TenantDepth(tenant)
	s.admMu.Unlock()
	if rate > 0 {
		secs := int(math.Ceil(float64(depth+1) / rate))
		if secs < 1 {
			secs = 1
		}
		if secs > 30 {
			secs = 30
		}
		return secs
	}
	return s.retryAfterSeconds()
}

// Ready reports whether the scheduler loop has started — i.e.
// startup recovery replay has finished and its re-enqueued queue has
// been handed to the loop. GET /readyz exposes it.
func (s *Server) Ready() bool {
	select {
	case <-s.ready:
		return true
	default:
		return false
	}
}

// Clock returns the node's scheduling clock (simulated seconds).
func (s *Server) Clock() units.Seconds { return s.clock() }

// WriteTrace renders the epoch trace — makespan, average power, and
// batch size per epoch, indexed by the scheduling clock — as CSV or
// JSON.
func (s *Server) WriteTrace(w io.Writer, asJSON bool) error {
	s.traceMu.Lock()
	series := []*trace.Series{
		cloneSeries(s.traceMakespan),
		cloneSeries(s.tracePower),
		cloneSeries(s.traceBatch),
	}
	s.traceMu.Unlock()
	if asJSON {
		return trace.WriteJSON(w, series...)
	}
	return trace.WriteMultiCSV(w, series...)
}

func cloneSeries(s *trace.Series) *trace.Series {
	out := trace.NewSeries(s.Name, s.Unit)
	for _, sm := range s.Samples() {
		out.MustAdd(sm.Time, sm.Value)
	}
	return out
}

// WriteMetrics renders the Prometheus text exposition.
func (s *Server) WriteMetrics(w io.Writer) error { return s.m.reg.Write(w) }

// markDraining stops admission; idempotent. Taken under admMu so it
// serializes against Submit's post-journal re-check and the loop's
// exit decision.
func (s *Server) markDraining() {
	s.admMu.Lock()
	s.draining.Store(true)
	s.admMu.Unlock()
}

// loop is the single scheduler goroutine: it owns the epoch cycle and
// is the only writer of job state transitions past admission.
func (s *Server) loop(ctx context.Context) {
	defer func() {
		// The drain contract: everything journaled during the final
		// flush round is on stable storage before Drained closes.
		if s.jl != nil {
			_ = s.jl.Sync()
		}
		s.m.up.Set(0)
		close(s.drained)
	}()
	s.m.up.Set(1)
	// Startup recovery has handed its re-enqueued queue to this loop;
	// the server is now ready (GET /readyz).
	s.readyOnce.Do(func() { close(s.ready) })
	for {
		if ctx.Err() != nil {
			s.markDraining()
		}
		s.admMu.Lock()
		pending := s.adm.Len()
		draining := s.draining.Load()
		if pending == 0 && draining {
			s.syncQueueGauges()
			s.admMu.Unlock()
			return
		}
		s.admMu.Unlock()
		if pending == 0 {
			select {
			case <-ctx.Done():
			case <-s.stop:
				s.markDraining()
			case <-s.wake:
			}
			continue
		}
		// Claim the initial batch before the gap: the gap then doubles
		// as the preemption window. Arrivals during it either coalesce
		// into the epoch (batch below MaxBatch) or, when strictly
		// higher-priority, displace claimed members at the boundary.
		claimed := s.claimBatch()
		if gap := s.cfg.EpochGap; gap > 0 && !draining {
			t := time.NewTimer(gap)
			select {
			case <-ctx.Done():
			case <-s.stop:
			case <-t.C:
			}
			t.Stop()
		}
		s.runEpoch(claimed)
	}
}

// claimBatch selects the next epoch's initial members through the
// admission layer: strict priority across classes, weighted fair
// queueing across tenants within a class.
func (s *Server) claimBatch() []admission.Entry {
	s.admMu.Lock()
	defer s.admMu.Unlock()
	claimed := s.adm.SelectBatch(s.cfg.MaxBatch, time.Now().UTC())
	s.syncQueueGauges()
	return claimed
}

// publishBatch publishes fresh immutable snapshots for every job in
// the scheduler's private batch, then bumps the table version once so
// the whole transition becomes visible to the list cache atomically
// enough (snapshots first, version last).
func (s *Server) publishBatch(batch []Job) {
	for i := range batch {
		pj := batch[i]
		s.table.publish(&pj)
	}
	s.table.bump()
}

// runEpoch finalizes the claimed batch at the epoch boundary and runs
// one scheduling round.
//
// The scheduler works on private copies of the claimed jobs (the
// admission payloads are published snapshots and immutable); every
// externally meaningful transition is published to the table as a
// fresh snapshot. Only terminal transitions are journaled (in one
// batch at the end of the round) — the intermediate planned/running
// records carried no recovery information, since startup replay
// resets every non-terminal job to queued anyway.
func (s *Server) runEpoch(claimed []admission.Entry) {
	s.admMu.Lock()
	// The boundary decision: absorb gap arrivals up to MaxBatch, then
	// let strictly higher-priority arrivals displace the lowest-
	// priority claimed members. Displaced jobs return to the front of
	// their tenant queue with their original tags — requeued, not
	// resubmitted — and run next epoch.
	kept, requeued := s.adm.Preempt(claimed, s.cfg.MaxBatch, time.Now().UTC())
	s.syncQueueGauges()
	s.admMu.Unlock()
	if len(requeued) > 0 {
		s.m.preemptions.Add(float64(len(requeued)))
	}
	batch := make([]Job, len(kept))
	for i, e := range kept {
		batch[i] = *e.Payload.(*Job)
	}
	epoch := s.epochCount + 1
	capW, policy := s.capWatts(), s.policyNow()
	domains := s.domainWatts()
	clock := s.clock()
	seed := epochSeed(s.cfg.Seed, epoch)
	insts := make([]*workload.Instance, len(batch))
	var specErr error
	for i := range batch {
		j := &batch[i]
		j.State = JobPlanned
		j.Epoch = epoch
		inst, err := j.spec.Instance(i, j.ID)
		if err != nil {
			specErr = err
			break
		}
		insts[i] = inst
	}
	s.publishBatch(batch)
	pv := newPlanView(epoch, policy, capW, domains, clock, batch)
	pv.State = "planning"
	s.lastPlan.Store(&pv)
	if specErr != nil {
		s.finishEpochErr(batch, epoch, specErr)
		return
	}

	// The epoch failpoint: an injected error fails this batch (the
	// daemon stays up, exactly like an unschedulable cap), and a
	// latency rule models a planning-epoch overrun.
	if err := s.faults.Hit(SiteEpoch); err != nil {
		s.finishEpochErr(batch, epoch, err)
		return
	}

	opts := online.Options{
		Cfg: s.cfg.Machine, Mem: s.cfg.Mem, Char: s.cfg.Char,
		Cap: capW, Domains: domains, Policy: policy, Seed: seed,
	}
	opts.Planned = func(plan *core.Schedule, predicted units.Seconds) {
		for i := range batch {
			batch[i].State = JobRunning
			if predicted > 0 {
				batch[i].PredictedFinishSimS = float64(clock + predicted)
			}
		}
		s.publishBatch(batch)
		run := newPlanView(epoch, policy, capW, domains, clock, batch)
		run.State = "running"
		fillPlan(&run, plan, predicted, batch)
		s.lastPlan.Store(&run)
		if predicted > 0 {
			s.m.predMakespan.Set(float64(predicted))
		}
	}

	start := time.Now()
	ep, err := online.PlanEpoch(opts, insts, seed)
	s.m.epochLatency.Observe(time.Since(start).Seconds())
	s.lastEpochWall.Store(int64(time.Since(start)))
	if err != nil {
		s.finishEpochErr(batch, epoch, err)
		return
	}

	res := ep.Result
	partners := partnerMap(res.Completions)
	for _, c := range res.Completions {
		j := &batch[c.Inst.ID]
		j.State = JobDone
		j.StartedSimS = float64(clock + c.Start)
		j.FinishedSimS = float64(clock + c.End)
		j.ResponseS = j.FinishedSimS - j.ArrivedSimS
		j.Device = c.Dev.String()
		if p, ok := partners[c.Inst.ID]; ok {
			j.Partner = batch[p].ID
		}
		if j.DeadlineS > 0 {
			met := j.ResponseS <= j.DeadlineS
			j.DeadlineMet = &met
		}
	}
	for i := range batch {
		// The simulator runs every dispatched job to completion, so a
		// missing completion is a scheduler invariant violation.
		if batch[i].State != JobDone {
			batch[i].State = JobFailed
			batch[i].Error = "no completion recorded"
			s.m.failed.Inc()
		}
	}
	endClock := clock + res.Makespan
	s.setClock(endClock)
	s.epochCount = epoch
	s.publishBatch(batch)

	s.m.epochs.Inc()
	s.m.done.Add(float64(len(res.Completions)))
	s.m.scheduled.Add(policy.String(), float64(len(res.Completions)))
	s.m.energy.Add(res.EnergyJ)
	s.m.simMakespan.Set(float64(res.Makespan))
	s.m.simClock.Set(float64(endClock))
	if capW > 0 {
		s.m.capUtil.Set(float64(res.AvgPower) / float64(capW))
	}
	s.m.domainWatts.Set("pp0", float64(res.AvgPP0))
	s.m.domainWatts.Set("pp1", float64(res.AvgPP1))
	s.m.tempC.Set(res.MaxTempC)
	s.m.throttleTotal.Add(float64(res.Throttles))
	for _, c := range bindingConstraints {
		v := 0.0
		if c == res.Binding.String() {
			v = 1
		}
		s.m.binding.Set(c, v)
	}

	s.traceMu.Lock()
	s.traceMakespan.MustAdd(endClock, float64(res.Makespan))
	s.tracePower.MustAdd(endClock, float64(res.AvgPower))
	s.traceBatch.MustAdd(endClock, float64(len(batch)))
	s.traceMu.Unlock()

	done := newPlanView(epoch, policy, capW, domains, clock, batch)
	done.State = "done"
	fillPlan(&done, ep.Plan, ep.Predicted, batch)
	done.SimulatedMakespanS = float64(res.Makespan)
	done.AvgPowerWatts = float64(res.AvgPower)
	done.MaxPowerWatts = float64(res.MaxSample)
	if capW > 0 {
		done.CapUtilization = float64(res.AvgPower) / float64(capW)
	}
	done.EnergyJoules = res.EnergyJ
	done.AvgPP0Watts = float64(res.AvgPP0)
	done.AvgPP1Watts = float64(res.AvgPP1)
	done.MaxTempC = res.MaxTempC
	done.Throttles = res.Throttles
	done.BindingConstraint = res.Binding.String()
	done.ClockEndS = float64(endClock)
	s.lastPlan.Store(&done)

	var doneRecs []journal.Record
	if s.jl != nil {
		clockEnd := float64(endClock)
		for i := range batch {
			doneRecs = append(doneRecs, stateRecord(&batch[i], clockEnd))
		}
	}
	s.journalAppend(doneRecs)
}

// epochSeed derives the per-epoch RNG seed for randomized policies
// from the configured seed and the epoch number (splitmix64 finalizer).
// Deriving instead of drawing from a shared rand.Rand keeps runs
// reproducible for a given (seed, epoch) regardless of interleaving,
// and leaves nothing for concurrent paths to contend on.
func epochSeed(seed int64, epoch int) int64 {
	z := uint64(seed) + uint64(epoch)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z >> 1)
}

// finishEpochErr marks a failed round. The daemon stays up: one
// unschedulable batch (e.g. the cap was dropped below feasibility
// between admission and planning) must not take the node down.
func (s *Server) finishEpochErr(batch []Job, epoch int, err error) {
	var recs []journal.Record
	for i := range batch {
		batch[i].State = JobFailed
		batch[i].Error = err.Error()
		if s.jl != nil {
			recs = append(recs, stateRecord(&batch[i], 0))
		}
	}
	s.publishBatch(batch)
	s.m.failed.Add(float64(len(batch)))
	s.m.epochs.Inc()
	s.epochCount = epoch
	if pv := s.lastPlan.Load(); pv != nil && pv.Epoch == epoch {
		failed := pv.clone()
		failed.State = "failed"
		failed.Error = err.Error()
		s.lastPlan.Store(&failed)
	}
	s.journalAppend(recs)
}

// bindingConstraints are the label values of corund_binding_constraint,
// pre-registered so dashboards see zeros instead of absent series.
var bindingConstraints = []string{"none", "pp0", "pp1", "package", "thermal"}

func newPlanView(epoch int, policy online.Policy, capW units.Watts, dc apu.DomainCaps, clock units.Seconds, batch []Job) PlanView {
	pv := PlanView{
		Epoch:       epoch,
		Policy:      policy.String(),
		CapWatts:    float64(capW),
		PP0CapWatts: float64(dc.PP0),
		PP1CapWatts: float64(dc.PP1),
		ClockStartS: float64(clock),
	}
	for i := range batch {
		pv.Jobs = append(pv.Jobs, batch[i].ID)
	}
	return pv
}

func fillPlan(pv *PlanView, plan *core.Schedule, predicted units.Seconds, batch []Job) {
	if plan == nil {
		return
	}
	for _, i := range plan.CPUOrder {
		pv.CPUOrder = append(pv.CPUOrder, batch[i].ID)
	}
	for _, i := range plan.GPUOrder {
		pv.GPUOrder = append(pv.GPUOrder, batch[i].ID)
	}
	for _, i := range plan.Jobs() {
		if plan.Exclusive[i] {
			pv.Exclusive = append(pv.Exclusive, batch[i].ID)
		}
	}
	pv.PredictedMakespanS = float64(predicted)
}

// partnerMap pairs each completed job with the opposite-device job it
// overlapped longest with, by instance ID.
func partnerMap(cs []sim.Completion) map[int]int {
	out := map[int]int{}
	for i, a := range cs {
		best, bestOv := -1, units.Seconds(0)
		for j, b := range cs {
			if i == j || a.Dev == b.Dev {
				continue
			}
			ov := minS(a.End, b.End) - maxS(a.Start, b.Start)
			if ov > bestOv {
				bestOv = ov
				best = b.Inst.ID
			}
		}
		if best >= 0 {
			out[a.Inst.ID] = best
		}
	}
	return out
}

func minS(a, b units.Seconds) units.Seconds {
	if a < b {
		return a
	}
	return b
}

func maxS(a, b units.Seconds) units.Seconds {
	if a > b {
		return a
	}
	return b
}
