package server

import (
	"corun/internal/online"
	"corun/internal/promtext"
)

// metrics is the daemon's Prometheus-facing instrumentation, served
// from GET /metrics in the text exposition format.
type metrics struct {
	reg *promtext.Registry

	up           *promtext.Gauge
	queueDepth   *promtext.Gauge
	submitted    *promtext.Counter
	rejected     *promtext.Counter
	done         *promtext.Counter
	failed       *promtext.Counter
	scheduled    *promtext.CounterVec
	epochs       *promtext.Counter
	energy       *promtext.Counter
	epochLatency *promtext.Histogram
	predMakespan *promtext.Gauge
	simMakespan  *promtext.Gauge
	capWatts     *promtext.Gauge
	capUtil      *promtext.Gauge
	simClock     *promtext.Gauge

	// Domain and thermal instrumentation: measured per-plane watts of
	// the most recent epoch, the configured plane caps, the heatsink
	// temperature, throttle events, and which constraint bound the run.
	domainWatts    *promtext.GaugeVec
	domainCapWatts *promtext.GaugeVec
	tempC          *promtext.Gauge
	throttleTotal  *promtext.Counter
	binding        *promtext.GaugeVec

	// Journal instrumentation. Registered unconditionally so
	// dashboards see zeros (not absent series) on in-memory daemons.
	jlAppends       *promtext.Counter
	jlFsyncs        *promtext.Counter
	jlBytes         *promtext.Counter
	jlSnapshots     *promtext.Counter
	jlErrors        *promtext.Counter
	jlRecovered     *promtext.Gauge
	jlTruncated     *promtext.Gauge
	jlAppendLatency *promtext.Summary

	// Failure-handling instrumentation: journal write retries and
	// drops, the circuit breaker, load shedding, and the failpoint
	// registry's per-site counters.
	jlBatches      *promtext.Counter
	jlBatchRecords *promtext.Histogram

	jlRetries     *promtext.Counter
	jlDropped     *promtext.Counter
	jlSnapErrors  *promtext.Counter
	brkState      *promtext.Gauge
	brkTrips      *promtext.Counter
	shed          *promtext.Counter
	faultHits     *promtext.CounterVec
	faultInjected *promtext.CounterVec

	// Multi-tenant admission instrumentation: per-tenant queue depth,
	// admissions, and rejections, plus the preemption count and the
	// starvation signal (age of the oldest queued job).
	tenantQueued   *promtext.GaugeVec
	tenantAdmitted *promtext.CounterVec
	tenantRejected *promtext.CounterVec
	preemptions    *promtext.Counter
	oldestWait     *promtext.Gauge

	// nodeInfo is the build-info-style identity series: constant 1 with
	// the node's stable fleet ID as the label, so fleet-level dashboards
	// can attribute every other series scraped from this daemon. Only
	// set when Config.NodeID is configured.
	nodeInfo *promtext.GaugeVec
}

func newMetrics() *metrics {
	reg := promtext.NewRegistry()
	m := &metrics{
		reg: reg,
		up: reg.NewGauge("corund_up",
			"1 while the scheduler loop accepts work, 0 once drained."),
		queueDepth: reg.NewGauge("corund_queue_depth",
			"Jobs admitted but not yet claimed by an epoch."),
		submitted: reg.NewCounter("corund_jobs_submitted_total",
			"Jobs accepted by POST /v1/jobs."),
		rejected: reg.NewCounter("corund_jobs_rejected_total",
			"Submissions rejected by admission control (full queue or draining)."),
		done: reg.NewCounter("corund_jobs_done_total",
			"Jobs that finished executing."),
		failed: reg.NewCounter("corund_jobs_failed_total",
			"Jobs whose epoch failed to schedule or execute."),
		scheduled: reg.NewCounterVec("corund_jobs_scheduled_total",
			"Jobs scheduled, by epoch policy.", "policy"),
		epochs: reg.NewCounter("corund_epochs_total",
			"Scheduling epochs completed."),
		energy: reg.NewCounter("corund_energy_joules_total",
			"Simulated package energy across all epochs."),
		epochLatency: reg.NewHistogram("corund_epoch_latency_seconds",
			"Wall-clock time to plan and execute one epoch.",
			[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}),
		predMakespan: reg.NewGauge("corund_predicted_makespan_seconds",
			"Model-predicted makespan of the most recent planned epoch."),
		simMakespan: reg.NewGauge("corund_simulated_makespan_seconds",
			"Simulated makespan of the most recent epoch."),
		capWatts: reg.NewGauge("corund_power_cap_watts",
			"Configured package power cap (0 = uncapped)."),
		capUtil: reg.NewGauge("corund_power_cap_utilization",
			"Most recent epoch's average power as a fraction of the cap."),
		simClock: reg.NewGauge("corund_sim_clock_seconds",
			"The node's scheduling clock (sum of epoch makespans)."),
		domainWatts: reg.NewGaugeVec("corund_domain_watts",
			"Most recent epoch's average power by RAPL-style plane (pp0 = CPU cores, pp1 = iGPU).", "domain"),
		domainCapWatts: reg.NewGaugeVec("corund_domain_cap_watts",
			"Configured per-plane power cap (0 = plane uncapped).", "domain"),
		tempC: reg.NewGauge("corund_temp_celsius",
			"Peak heatsink temperature of the most recent epoch (thermal RC model)."),
		throttleTotal: reg.NewCounter("corund_throttle_total",
			"Thermal throttle events: frequency-ceiling steps taken at the trip point."),
		binding: reg.NewGaugeVec("corund_binding_constraint",
			"1 for the constraint that bound the most recent epoch (pp0, pp1, package, thermal, or none).", "constraint"),
		jlAppends: reg.NewCounter("corund_journal_appends_total",
			"Records appended to the durable state journal."),
		jlFsyncs: reg.NewCounter("corund_journal_fsyncs_total",
			"fsync syscalls issued by the journal (group commit shares one across concurrent appends)."),
		jlBytes: reg.NewCounter("corund_journal_bytes_total",
			"Framed bytes written to the journal log."),
		jlSnapshots: reg.NewCounter("corund_journal_snapshots_total",
			"Snapshot-plus-compaction cycles completed by the journal."),
		jlErrors: reg.NewCounter("corund_journal_errors_total",
			"Journal append failures for job lifecycle records (the epoch proceeds; durability of those records is lost)."),
		jlRecovered: reg.NewGauge("corund_journal_recovered_jobs",
			"Non-terminal jobs restored from the journal and re-enqueued at startup."),
		jlTruncated: reg.NewGauge("corund_journal_truncated_tail_bytes",
			"Bytes of torn or corrupt log tail truncated during startup recovery."),
		jlAppendLatency: reg.NewSummary("corund_journal_append_latency_seconds",
			"Latency of journal appends, including any group-commit fsync wait.",
			[]float64{0.5, 0.9, 0.99}),
		jlBatches: reg.NewCounter("corund_journal_batches_total",
			"Commits issued by the journal writer goroutine (each is one Append and at most one fsync, shared by every submission it coalesced)."),
		jlBatchRecords: reg.NewHistogram("corund_journal_batch_records",
			"Records coalesced per journal writer commit.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		jlRetries: reg.NewCounter("corund_journal_retries_total",
			"Journal write retries (backoff attempts past the first)."),
		jlDropped: reg.NewCounter("corund_journal_dropped_records_total",
			"Lifecycle records dropped because journaling failed past its retries or was suspended by the breaker."),
		jlSnapErrors: reg.NewCounter("corund_journal_snapshot_errors_total",
			"Failed snapshot-plus-compaction cycles (retried at the next threshold crossing)."),
		brkState: reg.NewGauge("corund_breaker_state",
			"Journal circuit breaker state: 0 closed, 1 half-open, 2 open."),
		brkTrips: reg.NewCounter("corund_breaker_trips_total",
			"Times the journal circuit breaker tripped open."),
		shed: reg.NewCounter("corund_jobs_shed_total",
			"Submissions shed with 503 + Retry-After while the daemon was degraded."),
		faultHits: reg.NewCounterVec("corund_fault_hits_total",
			"Failpoint hits at armed sites, by site.", "site"),
		faultInjected: reg.NewCounterVec("corund_fault_injections_total",
			"Failpoint hits on which a fault was injected, by site.", "site"),
		tenantQueued: reg.NewGaugeVec("corund_tenant_queued",
			"Jobs admitted but not yet claimed by an epoch, by tenant.", "tenant"),
		tenantAdmitted: reg.NewCounterVec("corund_tenant_admitted_total",
			"Jobs accepted by POST /v1/jobs, by tenant.", "tenant"),
		tenantRejected: reg.NewCounterVec("corund_tenant_rejected_total",
			"Submissions rejected by a full queue bound, by tenant.", "tenant"),
		preemptions: reg.NewCounter("corund_preemptions_total",
			"Claimed batch members requeued at an epoch boundary for a higher-priority arrival."),
		oldestWait: reg.NewGauge("corund_oldest_waiting_job_age_seconds",
			"Age of the oldest queued job (0 when the queue is empty); the starvation signal."),
		nodeInfo: reg.NewGaugeVec("corund_node_info",
			"Constant 1, labeled with the daemon's stable fleet node ID (absent without -node-id).", "node"),
	}
	// Pre-register every policy's series so dashboards see zeros
	// instead of absent series before the first epoch.
	for _, p := range online.Policies() {
		m.scheduled.Add(p.String(), 0)
	}
	for _, d := range []string{"pp0", "pp1"} {
		m.domainWatts.Set(d, 0)
		m.domainCapWatts.Set(d, 0)
	}
	for _, c := range bindingConstraints {
		m.binding.Set(c, 0)
	}
	return m
}
