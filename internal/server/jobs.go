package server

import (
	"time"

	"corun/internal/workload"
)

// JobState is a job's position in its lifecycle.
type JobState string

// Job lifecycle states. A job is queued on admission, planned when the
// scheduler claims its epoch and computes a schedule, running while
// the epoch executes on the simulated machine, and done (or failed)
// afterwards. Epochs are non-preemptive: once planned, a job always
// reaches a terminal state.
const (
	JobQueued  JobState = "queued"
	JobPlanned JobState = "planned"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s == JobDone || s == JobFailed }

// Job is one submitted job and its scheduling outcome, as served by
// GET /v1/jobs/{id}. Fields with the Sim suffix are simulated seconds
// on the node's scheduling clock (which advances by each epoch's
// makespan); SubmittedAt is wall-clock time.
type Job struct {
	ID          string    `json:"id"`
	Program     string    `json:"program"`
	Scale       float64   `json:"scale"`
	Label       string    `json:"label"`
	DeadlineS   float64   `json:"deadline_s,omitempty"`
	State       JobState  `json:"state"`
	SubmittedAt time.Time `json:"submitted_at"`

	// Tenant and Priority are the job's admission coordinates: the
	// tenant queue it waited in and its priority class. Empty only on
	// jobs recovered from journals written before the fields existed.
	Tenant   string `json:"tenant,omitempty"`
	Priority string `json:"priority,omitempty"`

	// Epoch is the 1-based scheduling round that served the job; 0
	// while queued.
	Epoch int `json:"epoch,omitempty"`

	// ArrivedSimS is the scheduling clock at admission; StartedSimS and
	// FinishedSimS bound the job's execution; PredictedFinishSimS is the
	// model's estimate published at planning time (model policies only).
	ArrivedSimS         float64 `json:"arrived_sim_s"`
	StartedSimS         float64 `json:"started_sim_s,omitempty"`
	FinishedSimS        float64 `json:"finished_sim_s,omitempty"`
	PredictedFinishSimS float64 `json:"predicted_finish_sim_s,omitempty"`

	// ResponseS is FinishedSimS - ArrivedSimS for done jobs.
	ResponseS float64 `json:"response_s,omitempty"`

	// Device is where the job ran ("CPU"/"GPU"); Partner is the job ID
	// it co-ran beside for the longest overlap, empty if it ran alone.
	Device  string `json:"device,omitempty"`
	Partner string `json:"partner,omitempty"`

	// DeadlineMet reports the deadline outcome for done jobs that set
	// one; absent otherwise.
	DeadlineMet *bool `json:"deadline_met,omitempty"`

	// Error explains a failed job.
	Error string `json:"error,omitempty"`

	// spec retains the decoded submission for epoch batch building.
	spec workload.JobSpec
}
