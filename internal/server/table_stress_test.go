package server

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"corun/internal/workload"
)

// stateRank orders the job lifecycle for the stress assertions: a
// job's observed state may only ever move forward through this rank
// (queued → planned → running → terminal), and a terminal state never
// changes again.
func stateRank(s JobState) int {
	switch s {
	case JobQueued:
		return 0
	case JobPlanned:
		return 1
	case JobRunning:
		return 2
	case JobDone, JobFailed:
		return 3
	}
	return -1
}

// TestJobTableStress is the sharded job table's linearizability-style
// stress test: with the scheduler live, concurrent submitters, per-job
// pollers, and list readers hammer the table across stripes, and every
// observation must be a legal lifecycle successor of the previous one
// for that job — no backwards transitions, no terminal flip
// (done↔failed), no job vanishing after its ack. Meanwhile the list
// endpoint must never serve a body missing an already-acked job (the
// list cache's version contract). Run with -race to make it a memory-
// model check as well.
func TestJobTableStress(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxQueue = 4096
		c.MaxBatch = 16
		// The cheap policy: the test stresses the table, not the
		// planner, and hcs+ refinement would dominate the runtime.
		c.Policy = "random"
	})
	s.Start(context.Background())
	defer func() {
		s.Drain()
		select {
		case <-s.Drained():
		case <-time.After(60 * time.Second):
			t.Fatal("drain stuck")
		}
	}()

	const submitters, perSub = 8, 20
	var wg sync.WaitGroup
	stopPoll := make(chan struct{})

	// Submitters: each records its acked IDs; pollers chase them.
	ids := make(chan string, submitters*perSub)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSub; i++ {
				j, err := s.Submit(workload.JobSpec{Program: "lud"})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				// An acked job must be immediately visible by ID and in
				// the next list body (never older than the acked write).
				if got := s.jobRef(j.ID); got == nil {
					t.Errorf("acked job %s invisible to Get", j.ID)
					return
				}
				body, err := s.jobsJSON()
				if err != nil {
					t.Errorf("jobsJSON: %v", err)
					return
				}
				if !strings.Contains(string(body), `"`+j.ID+`"`) {
					t.Errorf("list served after ack of %s does not contain it", j.ID)
					return
				}
				ids <- j.ID
			}
		}()
	}

	// Per-job pollers: watch observed states only ever move forward.
	var pollWG sync.WaitGroup
	for p := 0; p < 4; p++ {
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			last := map[string]JobState{}
			var watch []string
			for {
				select {
				case <-stopPoll:
					return
				case id := <-ids:
					watch = append(watch, id)
				default:
				}
				for _, id := range watch {
					j := s.jobRef(id)
					if j == nil {
						t.Errorf("job %s vanished", id)
						return
					}
					if prev, ok := last[id]; ok {
						pr, nr := stateRank(prev), stateRank(j.State)
						if nr < pr {
							t.Errorf("job %s went backwards: %s -> %s", id, prev, j.State)
							return
						}
						if pr == 3 && j.State != prev {
							t.Errorf("job %s changed terminal state: %s -> %s", id, prev, j.State)
							return
						}
					}
					if stateRank(j.State) < 0 {
						t.Errorf("job %s in unknown state %q", id, j.State)
						return
					}
					last[id] = j.State
				}
			}
		}()
	}

	// List readers: every body must parse and every job in it must be
	// in a legal state (the walk may interleave with transitions, but
	// each snapshot it copies is a published one).
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				body, err := s.jobsJSON()
				if err != nil {
					t.Errorf("jobsJSON: %v", err)
					return
				}
				var out struct {
					Jobs []Job `json:"jobs"`
				}
				if err := json.Unmarshal(body, &out); err != nil {
					t.Errorf("list body unparsable: %v", err)
					return
				}
				for i := range out.Jobs {
					if stateRank(out.Jobs[i].State) < 0 {
						t.Errorf("list shows %s in unknown state %q", out.Jobs[i].ID, out.Jobs[i].State)
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(stopPoll)
	pollWG.Wait()

	// Drain flushes the queue; afterwards every submitted job must be
	// terminal, present, and counted exactly once.
	s.Drain()
	select {
	case <-s.Drained():
	case <-time.After(60 * time.Second):
		t.Fatal("drain stuck")
	}
	jobs := s.Jobs()
	if len(jobs) != submitters*perSub {
		t.Fatalf("table holds %d jobs, want %d", len(jobs), submitters*perSub)
	}
	seen := map[string]bool{}
	for i := range jobs {
		j := &jobs[i]
		if seen[j.ID] {
			t.Fatalf("job %s listed twice", j.ID)
		}
		seen[j.ID] = true
		if !j.State.Terminal() {
			t.Errorf("job %s not terminal after drain: %s", j.ID, j.State)
		}
	}
}

// TestJobsCacheVersionSkew is the striping regression test for the
// list cache: a rebuild snapshots the table while other stripes keep
// moving, so the cache key must be the version captured BEFORE the
// iteration. If the implementation keyed the entry by a version read
// after (or during) the walk, a body that missed a concurrent insert
// would be served for that insert's version — i.e. a list read AFTER
// an acked write would not contain it. The test forces exactly that
// interleaving through the test hook.
func TestJobsCacheVersionSkew(t *testing.T) {
	s := newTestServer(t, nil) // scheduler intentionally not started
	if _, err := s.Submit(workload.JobSpec{Program: "lud", Label: "first"}); err != nil {
		t.Fatal(err)
	}

	var hooked *Job
	s.testHookListSnapshot = func() {
		s.testHookListSnapshot = nil // only the first rebuild races
		j, err := s.Submit(workload.JobSpec{Program: "lud", Label: "mid-iteration"})
		if err != nil {
			t.Fatal(err)
		}
		hooked = s.jobRef(j.ID)
	}
	// First list: the snapshot is taken, then the hook acks a new job
	// mid-rebuild. The body legitimately misses it — but the cache
	// entry must be keyed at the pre-iteration version, which the
	// hook's insert has already invalidated.
	body1, err := s.jobsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if hooked == nil {
		t.Fatal("test hook never ran")
	}
	if strings.Contains(string(body1), hooked.ID) {
		// Not an error (the walk could have caught it), but then the
		// interleaving wasn't exercised; with the hook after the
		// snapshot it must not happen.
		t.Fatalf("mid-iteration job unexpectedly present in the racing body")
	}
	// Second list: the write is acked, so serving the first body now
	// would be a stale read. The version mismatch must force a rebuild
	// that includes the job.
	body2, err := s.jobsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body2), hooked.ID) {
		t.Fatalf("list after acked write still misses %s: cache served a skipped-stripe snapshot", hooked.ID)
	}
}
