package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// benchServer builds an in-memory server (no scheduler loop, no
// journal) with `queued` jobs already admitted, so the benchmarks
// isolate the HTTP serving path itself.
func benchServer(b *testing.B, queued int) http.Handler {
	s := newTestServer(b, func(c *Config) { c.MaxQueue = 1 << 20 })
	b.Cleanup(func() { s.Close() })
	h := s.Handler()
	for i := 0; i < queued; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/jobs",
			strings.NewReader(`{"program": "cfd", "scale": 1.1}`)))
		if w.Code != http.StatusAccepted {
			b.Fatalf("prefill submit -> %d: %s", w.Code, w.Body)
		}
	}
	return h
}

// BenchmarkSubmitHandler measures the admission hot path: decode,
// validate, admit, encode the ack.
func BenchmarkSubmitHandler(b *testing.B) {
	h := benchServer(b, 0)
	body := `{"program": "cfd", "scale": 1.1, "label": "bench"}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body)))
		if w.Code != http.StatusAccepted {
			b.Fatalf("submit -> %d: %s", w.Code, w.Body)
		}
	}
}

// BenchmarkJobsHandler measures GET /v1/jobs with a 256-job table —
// the endpoint a dashboard polls — where response encoding dominates.
func BenchmarkJobsHandler(b *testing.B) {
	h := benchServer(b, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/jobs", nil))
		if w.Code != http.StatusOK {
			b.Fatalf("jobs -> %d", w.Code)
		}
	}
}

// BenchmarkJobHandler measures a single job status read.
func BenchmarkJobHandler(b *testing.B) {
	h := benchServer(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/jobs/job-000000", nil))
		if w.Code != http.StatusOK {
			b.Fatalf("job -> %d: %s", w.Code, w.Body)
		}
	}
}
