package model

import (
	"fmt"
	"math"
	"sync/atomic"

	"corun/internal/apu"
	"corun/internal/units"
)

// Oracle is the prediction surface the scheduling algorithms consume —
// a structural mirror of core.Oracle, declared here so the model layer
// can wrap any oracle (Predictor, CalibratedPredictor,
// GroundTruthOracle) without importing the scheduling layer.
type Oracle interface {
	NumJobs() int
	StandaloneTime(i int, d apu.Device, f int) units.Seconds
	StandalonePower(i int, d apu.Device, f int) units.Watts
	Degradation(i int, dev apu.Device, f, j, g int) float64
	CoRunPower(i, f, j, g int) units.Watts
}

// CachedPredictor memoizes the oracle's Degradation queries — the one
// lookup worth caching: the staged-interpolation Predictor pays ~100 ns
// per query and the GroundTruthOracle a whole co-run simulation, and
// every planning pass (epoch after epoch in corund, permutation after
// permutation in the optimal search) asks for the same pairs again.
// The memo is a dense lock-free table indexed by (job, device, level,
// co-runner, level), so a hit costs two atomic loads — a mutex-guarded
// map would cost more than recomputing the prediction. The remaining
// oracle queries are pure table reads (StandaloneTime/Power, and
// CoRunPower, which is the standalone-power sum) at ~4 ns each; they
// are delegated uncached because no memo can beat them.
//
// It is safe for concurrent use. The memo keys on job indices and
// frequency levels only, which makes it cap-independent: changing the
// power cap needs a new scheduling context but may keep the same
// CachedPredictor. Re-profiling or re-characterizing invalidates the
// cached values — build a fresh CachedPredictor over the new oracle.
type CachedPredictor struct {
	base Oracle

	// Dense memo geometry: jobs × devices × levels × jobs × levels,
	// with one shared level stride covering both devices.
	n, fmax int

	// state[k] is 1 once vals[k] holds Float64bits of the prediction.
	// Writers store the value before the flag; with Go's sequentially
	// consistent atomics a reader that observes state 1 therefore
	// observes the value. Two goroutines may race to fill the same
	// slot, but the oracle is deterministic, so they store identical
	// bits.
	state []atomic.Uint32
	vals  []atomic.Uint64

	// Hit/miss counters are striped across padded cache lines and
	// indexed by memo slot: the parallel searches call Degradation from
	// every worker, and a single shared counter would serialize them on
	// one contended line.
	hits   [counterStripes]paddedCounter
	misses [counterStripes]paddedCounter
}

// counterStripes is a power of two so the stripe index is a mask.
const counterStripes = 16

type paddedCounter struct {
	n atomic.Uint64
	_ [56]byte // pad to a 64-byte cache line
}

// NewCachedPredictor wraps an oracle in the memoizing layer; cfg
// bounds the frequency-level axes of the memo table.
func NewCachedPredictor(base Oracle, cfg *apu.Config) (*CachedPredictor, error) {
	if base == nil {
		return nil, fmt.Errorf("model: nil oracle")
	}
	if cfg == nil {
		return nil, fmt.Errorf("model: nil machine config")
	}
	n := base.NumJobs()
	fmax := cfg.NumFreqs(apu.CPU)
	if g := cfg.NumFreqs(apu.GPU); g > fmax {
		fmax = g
	}
	size := n * apu.NumDevices * fmax * n * fmax
	return &CachedPredictor{
		base:  base,
		n:     n,
		fmax:  fmax,
		state: make([]atomic.Uint32, size),
		vals:  make([]atomic.Uint64, size),
	}, nil
}

// Base returns the wrapped oracle.
func (c *CachedPredictor) Base() Oracle { return c.base }

// Unwrap peels the caching layer off an oracle, returning the base
// oracle of a CachedPredictor and every other oracle unchanged.
func Unwrap(o Oracle) Oracle {
	if c, ok := o.(*CachedPredictor); ok {
		return c.base
	}
	return o
}

// NumJobs delegates to the base oracle.
func (c *CachedPredictor) NumJobs() int { return c.base.NumJobs() }

// StandaloneTime delegates to the base oracle (a table read).
func (c *CachedPredictor) StandaloneTime(i int, d apu.Device, f int) units.Seconds {
	return c.base.StandaloneTime(i, d, f)
}

// StandalonePower delegates to the base oracle (a table read).
func (c *CachedPredictor) StandalonePower(i int, d apu.Device, f int) units.Watts {
	return c.base.StandalonePower(i, d, f)
}

// slot maps a degradation query to its memo index, or -1 when the
// query lies outside the table (defensively: the planners only issue
// in-range queries).
func (c *CachedPredictor) slot(i int, dev apu.Device, f, j, g int) int {
	if i < 0 || i >= c.n || j < 0 || j >= c.n ||
		f < 0 || f >= c.fmax || g < 0 || g >= c.fmax ||
		dev != apu.CPU && dev != apu.GPU {
		return -1
	}
	return ((((i*apu.NumDevices)+int(dev))*c.fmax+f)*c.n+j)*c.fmax + g
}

// Degradation memoizes the base oracle's degradation prediction.
func (c *CachedPredictor) Degradation(i int, dev apu.Device, f, j, g int) float64 {
	k := c.slot(i, dev, f, j, g)
	if k < 0 {
		c.misses[0].n.Add(1)
		return c.base.Degradation(i, dev, f, j, g)
	}
	if c.state[k].Load() != 0 {
		c.hits[k&(counterStripes-1)].n.Add(1)
		return math.Float64frombits(c.vals[k].Load())
	}
	c.misses[k&(counterStripes-1)].n.Add(1)
	v := c.base.Degradation(i, dev, f, j, g)
	c.vals[k].Store(math.Float64bits(v))
	c.state[k].Store(1)
	return v
}

// CoRunPower delegates to the base oracle: the paper's power model is
// the sum of two standalone-power table reads, cheaper than any memo
// lookup could be.
func (c *CachedPredictor) CoRunPower(i, f, j, g int) units.Watts {
	return c.base.CoRunPower(i, f, j, g)
}

// CacheStats reports the cache's effectiveness.
type CacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// Stats returns a snapshot of hit/miss counters and the filled memo
// size.
func (c *CachedPredictor) Stats() CacheStats {
	var s CacheStats
	for i := range c.hits {
		s.Hits += c.hits[i].n.Load()
		s.Misses += c.misses[i].n.Load()
	}
	for k := range c.state {
		if c.state[k].Load() != 0 {
			s.Entries++
		}
	}
	return s
}
