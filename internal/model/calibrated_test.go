package model

import (
	"testing"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/profile"
	"corun/internal/sim"
	"corun/internal/units"
	"corun/internal/workload"
)

// Calibration must shrink the model's dominant error: dwt2d's learned
// CPU-side scale is well above 1, and the mean prediction error over
// real pairs drops versus the base model.
func TestCalibratedPredictorImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("full characterization for -short")
	}
	cfg := apu.DefaultConfig()
	mem := memsysDefault()
	char, err := Characterize(CharacterizeOptions{Cfg: cfg, Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	batch := workload.Batch8()
	prof, err := profile.Collect(cfg, mem, batch)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewPredictor(char, prof)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := NewCalibratedPredictor(base, CalibrateOptions{Batch: batch})
	if err != nil {
		t.Fatal(err)
	}

	// dwt2d (index 2) is the latency-sensitive outlier: its CPU-side
	// correction must be substantial.
	if s := cal.Scale(2, apu.CPU); s < 1.5 {
		t.Errorf("dwt2d CPU correction %.2f; expected well above 1", s)
	}
	// Well-modelled programs stay near 1.
	if s := cal.Scale(3, apu.GPU); s < 0.4 || s > 2.5 {
		t.Errorf("hotspot GPU correction %.2f; expected near 1", s)
	}

	// Error over all 64 pairs at max frequencies, base vs calibrated.
	cmax, gmax := cfg.MaxFreqIndex(apu.CPU), cfg.MaxFreqIndex(apu.GPU)
	var baseErr, calErr float64
	n := 0
	for i := range batch {
		for j := range batch {
			target := &workload.Instance{ID: 0, Prog: batch[i].Prog, Scale: 1, Label: batch[i].Label}
			co := &workload.Instance{ID: 1, Prog: batch[j].Prog, Scale: 1, Label: batch[j].Label}
			truth, err := sim.CoRun(sim.Options{Cfg: cfg, Mem: mem}, target, apu.CPU, co, cmax, gmax)
			if err != nil {
				t.Fatal(err)
			}
			b := base.Degradation(i, apu.CPU, cmax, j, gmax)
			c := cal.Degradation(i, apu.CPU, cmax, j, gmax)
			baseErr += units.RelErr(1+b, 1+truth.Degradation)
			calErr += units.RelErr(1+c, 1+truth.Degradation)
			n++
		}
	}
	baseErr /= float64(n)
	calErr /= float64(n)
	t.Logf("mean slowdown-factor error: base %.3f, calibrated %.3f", baseErr, calErr)
	if calErr >= baseErr {
		t.Errorf("calibration did not improve the model: %.3f -> %.3f", baseErr, calErr)
	}
}

func TestCalibratedPredictorValidation(t *testing.T) {
	if _, err := NewCalibratedPredictor(nil, CalibrateOptions{}); err == nil {
		t.Error("nil base accepted")
	}
	cfg := apu.DefaultConfig()
	mem := memsysDefault()
	char, cfgErr := Characterize(CharacterizeOptions{
		Cfg: cfg, Mem: mem,
		Levels:        []units.GBps{0, 5.5, 11},
		CPUFreqLevels: []int{15}, GPUFreqLevels: []int{9},
	})
	if cfgErr != nil {
		t.Fatal(cfgErr)
	}
	batch := workload.Batch8()
	prof, err := profile.Collect(cfg, mem, batch)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewPredictor(char, prof)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCalibratedPredictor(base, CalibrateOptions{Batch: batch[:3]}); err == nil {
		t.Error("mismatched batch accepted")
	}
}

// memsysDefault keeps the test file self-contained.
func memsysDefault() *memsys.Model { return memsys.Default() }
