package model

import (
	"math"
	"testing"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/profile"
	"corun/internal/sim"
	"corun/internal/units"
	"corun/internal/workload"
)

// smallChar builds a cheap characterization for unit tests: 5 bandwidth
// levels, 2x2 frequency grid.
func smallChar(t *testing.T) (*Characterization, *apu.Config, *memsys.Model) {
	t.Helper()
	cfg := apu.DefaultConfig()
	mem := memsys.Default()
	c, err := Characterize(CharacterizeOptions{
		Cfg: cfg, Mem: mem,
		Levels:        []units.GBps{0, 2.75, 5.5, 8.25, 11},
		CPUFreqLevels: []int{0, 15},
		GPUFreqLevels: []int{0, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, cfg, mem
}

func TestBracket(t *testing.T) {
	xs := []float64{0, 2, 4, 8}
	cases := []struct {
		x      float64
		i0, i1 int
		t      float64
	}{
		{-1, 0, 0, 0},
		{0, 0, 0, 0},
		{1, 0, 1, 0.5},
		{2, 0, 1, 1}, // exact grid point expressed as t=1 on the lower cell
		{6, 2, 3, 0.5},
		{8, 3, 3, 0},
		{99, 3, 3, 0},
	}
	for _, c := range cases {
		i0, i1, tt := bracket(xs, c.x)
		if i0 != c.i0 || i1 != c.i1 || math.Abs(tt-c.t) > 1e-12 {
			t.Errorf("bracket(%v) = (%d,%d,%v), want (%d,%d,%v)", c.x, i0, i1, tt, c.i0, c.i1, c.t)
		}
	}
	if i0, i1, tt := bracket([]float64{3}, 5); i0 != 0 || i1 != 0 || tt != 0 {
		t.Error("single-point bracket broken")
	}
}

func TestSurfaceInterpolationExactAtGridPoints(t *testing.T) {
	c, _, _ := smallChar(t)
	s := c.SurfaceAt(1, 1) // max freqs
	for i, cb := range s.CPUBW {
		for j, gb := range s.GPUBW {
			got := s.DegradationCPUAt(cb, gb)
			if math.Abs(got-s.DegCPU[i][j]) > 1e-9 {
				t.Errorf("surface not exact at grid point (%d,%d): %v vs %v", i, j, got, s.DegCPU[i][j])
			}
		}
	}
}

func TestSurfaceShape(t *testing.T) {
	c, _, _ := smallChar(t)
	s := c.SurfaceAt(1, 1)
	if len(s.CPUBW) != 5 || len(s.DegCPU) != 5 || len(s.DegCPU[0]) != 5 {
		t.Fatal("surface dimensions wrong")
	}
	// Degradations are non-negative and the zero-demand row/column is
	// (near) zero: a compute-only kernel suffers no memory contention.
	for i := range s.DegCPU {
		for j := range s.DegCPU[i] {
			if s.DegCPU[i][j] < -1e-9 || s.DegGPU[i][j] < -1e-9 {
				t.Errorf("negative degradation at (%d,%d)", i, j)
			}
		}
	}
	for j := range s.DegCPU[0] {
		if s.DegCPU[0][j] > 1e-6 {
			t.Errorf("compute-only CPU kernel degraded by %v", s.DegCPU[0][j])
		}
	}
	for i := range s.DegGPU {
		if s.DegGPU[i][0] > 1e-6 {
			t.Errorf("compute-only GPU kernel degraded by %v", s.DegGPU[i][0])
		}
	}
}

// The characterized surface reproduces the figures' qualitative
// asymmetry: at the top corner the CPU suffers more than the GPU; both
// worst cases fall in the paper's ranges.
func TestSurfaceMatchesFigures5And6(t *testing.T) {
	c, _, _ := smallChar(t)
	s := c.SurfaceAt(1, 1)
	last := len(s.DegCPU) - 1
	cpuWorst, gpuWorst := s.DegCPU[last][last], s.DegGPU[last][last]
	if cpuWorst <= gpuWorst {
		t.Errorf("CPU worst case %.2f should exceed GPU worst case %.2f", cpuWorst, gpuWorst)
	}
	if cpuWorst < 0.45 || cpuWorst > 0.95 {
		t.Errorf("CPU worst case %.2f outside the ~0.65 region", cpuWorst)
	}
	if gpuWorst < 0.25 || gpuWorst > 0.60 {
		t.Errorf("GPU worst case %.2f outside the ~0.45 region", gpuWorst)
	}
}

func TestCharacterizeValidation(t *testing.T) {
	cfg, mem := apu.DefaultConfig(), memsys.Default()
	if _, err := Characterize(CharacterizeOptions{}); err == nil {
		t.Error("empty options accepted")
	}
	if _, err := Characterize(CharacterizeOptions{Cfg: cfg, Mem: mem,
		CPUFreqLevels: []int{5, 3}}); err == nil {
		t.Error("descending level list accepted")
	}
	if _, err := Characterize(CharacterizeOptions{Cfg: cfg, Mem: mem,
		CPUFreqLevels: []int{99}}); err == nil {
		t.Error("out-of-range level accepted")
	}
	if _, err := Characterize(CharacterizeOptions{Cfg: cfg, Mem: mem,
		GPUFreqLevels: []int{}}); err == nil {
		t.Error("explicit empty GPU level list accepted")
	}
}

func TestStagedFrequencyInterpolation(t *testing.T) {
	c, cfg, _ := smallChar(t)
	// At an intermediate frequency the prediction lies between the
	// values of the characterized extremes.
	cpuBW, gpuBW := 6.0, 7.0
	loF := float64(cfg.Freq(apu.CPU, 0))
	hiF := float64(cfg.Freq(apu.CPU, 15))
	gF := float64(cfg.Freq(apu.GPU, 9))
	dLo := c.Degradation(apu.CPU, cpuBW, gpuBW, loF, gF)
	dHi := c.Degradation(apu.CPU, cpuBW, gpuBW, hiF, gF)
	dMid := c.Degradation(apu.CPU, cpuBW, gpuBW, (loF+hiF)/2, gF)
	lo, hi := math.Min(dLo, dHi), math.Max(dLo, dHi)
	if dMid < lo-1e-9 || dMid > hi+1e-9 {
		t.Errorf("staged interpolation %v outside [%v,%v]", dMid, lo, hi)
	}
}

// End-to-end predictor accuracy: predictions for real-program pairs at
// max frequency land within a plausible error of the simulated ground
// truth. The paper reports ~15% average error; we accept anything
// clearly informative (mean < 0.25 absolute-relative error on
// meaningfully degraded pairs).
func TestPredictorAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization pass is slow for -short")
	}
	cfg := apu.DefaultConfig()
	mem := memsys.Default()
	char, err := Characterize(CharacterizeOptions{Cfg: cfg, Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	batch := workload.Batch8()
	prof, err := profile.Collect(cfg, mem, batch)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := NewPredictor(char, prof)
	if err != nil {
		t.Fatal(err)
	}

	cmax := cfg.MaxFreqIndex(apu.CPU)
	gmax := cfg.MaxFreqIndex(apu.GPU)
	simOpts := sim.Options{Cfg: cfg, Mem: mem}
	var errs []float64
	pairs := [][2]int{{2, 0}, {2, 3}, {5, 0}, {1, 4}, {0, 6}, {7, 3}}
	for _, pr := range pairs {
		i, j := pr[0], pr[1]
		truth, err := sim.CoRun(simOpts, batch[i], apu.CPU, batch[j], cmax, gmax)
		if err != nil {
			t.Fatal(err)
		}
		guess := pred.Degradation(i, apu.CPU, cmax, j, gmax)
		// Compare slowdown factors (1+d), the quantity that matters
		// for makespan prediction.
		e := units.RelErr(1+guess, 1+truth.Degradation)
		errs = append(errs, e)
		t.Logf("%s beside %s: predicted %.3f, truth %.3f", batch[i].Label, batch[j].Label, guess, truth.Degradation)
	}
	sum := 0.0
	for _, e := range errs {
		sum += e
	}
	mean := sum / float64(len(errs))
	if mean > 0.25 {
		t.Errorf("mean slowdown-factor error %.3f too large for a useful model", mean)
	}
}

func TestNewPredictorValidation(t *testing.T) {
	if _, err := NewPredictor(nil, nil); err == nil {
		t.Error("nil inputs accepted")
	}
	if _, err := NewPredictor(&Characterization{}, &profile.Standalone{}); err == nil {
		t.Error("empty characterization accepted")
	}
}

func TestPredictorStandaloneDelegation(t *testing.T) {
	c, cfg, mem := smallChar(t)
	batch := workload.Batch8()
	prof, err := profile.Collect(cfg, mem, batch)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(c, prof)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumJobs() != 8 {
		t.Errorf("NumJobs = %d", p.NumJobs())
	}
	if p.StandaloneTime(2, apu.CPU, 15) != prof.Time(2, apu.CPU, 15) {
		t.Error("StandaloneTime does not delegate to profile")
	}
	if p.StandalonePower(2, apu.CPU, 15) != prof.Power(2, apu.CPU, 15) {
		t.Error("StandalonePower does not delegate to profile")
	}
}

// The sum-of-standalones power prediction is close to the simulated
// co-run power (the paper reports <= 8% error, average 1.92%).
func TestCoRunPowerPrediction(t *testing.T) {
	c, cfg, mem := smallChar(t)
	batch := workload.Batch8()
	prof, err := profile.Collect(cfg, mem, batch)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(c, prof)
	if err != nil {
		t.Fatal(err)
	}
	ci := cfg.ClosestFreqIndex(apu.CPU, 2.2)
	gi := cfg.ClosestFreqIndex(apu.GPU, 0.85)
	truth, err := sim.CoRun(sim.Options{Cfg: cfg, Mem: mem}, batch[2], apu.CPU, batch[0], ci, gi)
	if err != nil {
		t.Fatal(err)
	}
	guess := p.CoRunPower(2, ci, 0, gi)
	if units.RelErr(float64(guess), float64(truth.AvgPower)) > 0.10 {
		t.Errorf("power prediction %v vs truth %v (>10%% off)", guess, truth.AvgPower)
	}
	// Idle-device conventions.
	if got := p.CoRunPower(-1, 0, 0, gi); got != prof.Power(0, apu.GPU, gi) {
		t.Errorf("GPU-only power = %v, want profile value", got)
	}
	if got := p.CoRunPower(2, ci, -1, 0); got != prof.Power(2, apu.CPU, ci) {
		t.Errorf("CPU-only power = %v, want profile value", got)
	}
	if got := p.CoRunPower(-1, 0, -1, 0); got != cfg.IdlePower {
		t.Errorf("all-idle power = %v, want idle", got)
	}
}

func TestGroundTruthOracle(t *testing.T) {
	cfg, mem := apu.DefaultConfig(), memsys.Default()
	batch := workload.Batch8()
	prof, err := profile.Collect(cfg, mem, batch)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewGroundTruthOracle(prof, batch)
	if err != nil {
		t.Fatal(err)
	}
	cmax := cfg.MaxFreqIndex(apu.CPU)
	gmax := cfg.MaxFreqIndex(apu.GPU)
	d1 := o.Degradation(2, apu.CPU, cmax, 0, gmax)
	truth, err := sim.CoRun(sim.Options{Cfg: cfg, Mem: mem}, batch[2], apu.CPU, batch[0], cmax, gmax)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d1-truth.Degradation) > 1e-9 {
		t.Errorf("oracle %v != measured truth %v", d1, truth.Degradation)
	}
	// Memoized second call returns the same value.
	if d2 := o.Degradation(2, apu.CPU, cmax, 0, gmax); d2 != d1 {
		t.Error("memoization broken")
	}
	if _, err := NewGroundTruthOracle(nil, batch); err == nil {
		t.Error("nil profile accepted")
	}
	if _, err := NewGroundTruthOracle(prof, batch[:3]); err == nil {
		t.Error("mismatched batch accepted")
	}
}
