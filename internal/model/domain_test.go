package model

import (
	"math"
	"testing"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/profile"
	"corun/internal/workload"
)

// The plane split must rebuild the package prediction exactly: the
// split is a reattribution of the same watts, not a second model.
func TestCoRunSplitSumsToCoRunPower(t *testing.T) {
	c, cfg, mem := smallChar(t)
	batch := workload.Batch8()
	prof, err := profile.Collect(cfg, mem, batch)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(c, prof)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ i, f, j, g int }{
		{2, cfg.MaxFreqIndex(apu.CPU), 0, cfg.MaxFreqIndex(apu.GPU)},
		{1, 3, 4, 2},
		{2, 5, -1, 0}, // CPU solo
		{-1, 0, 3, 4}, // GPU solo
		{-1, 0, -1, 0},
	}
	for _, tc := range cases {
		s := p.CoRunSplit(tc.i, tc.f, tc.j, tc.g)
		want := p.CoRunPower(tc.i, tc.f, tc.j, tc.g)
		if math.Abs(float64(s.Package()-want)) > 1e-9 {
			t.Errorf("split(%d,%d,%d,%d) sums to %v, CoRunPower says %v",
				tc.i, tc.f, tc.j, tc.g, s.Package(), want)
		}
		if s.Uncore != cfg.IdlePower {
			t.Errorf("uncore %v != idle power %v", s.Uncore, cfg.IdlePower)
		}
		if s.PP0 < 0 || s.PP1 < 0 {
			t.Errorf("negative plane in split %+v", s)
		}
	}
	// Idle planes draw nothing.
	if s := p.CoRunSplit(2, 5, -1, 0); s.PP1 != 0 {
		t.Errorf("idle GPU plane draws %v", s.PP1)
	}
	if s := p.CoRunSplit(-1, 0, 3, 4); s.PP0 != cfg.HostPower(0) {
		t.Errorf("GPU-solo PP0 = %v, want the host thread %v", s.PP0, cfg.HostPower(0))
	}
}

// The cached wrapper must forward CoRunSplit to a domain-aware base.
func TestCachedPredictorForwardsCoRunSplit(t *testing.T) {
	cfg, mem := apu.DefaultConfig(), memsys.Default()
	batch := workload.Batch8()
	prof, err := profile.Collect(cfg, mem, batch)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewGroundTruthOracle(prof, batch)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewCachedPredictor(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := base.CoRunSplit(2, 4, 1, 3)
	if got := cached.CoRunSplit(2, 4, 1, 3); got != want {
		t.Errorf("cached split %+v != base split %+v", got, want)
	}
}
