package model

import (
	"encoding/json"
	"fmt"
	"io"

	"corun/internal/apu"
)

// persistedChar is the on-disk JSON form of a Characterization.
type persistedChar struct {
	Version   int          `json:"version"`
	CPULevels []int        `json:"cpu_levels"`
	GPULevels []int        `json:"gpu_levels"`
	Surfaces  [][]*Surface `json:"surfaces"`
}

// persistVersion guards against silently loading incompatible files.
const persistVersion = 1

// Save writes the characterization as JSON. The offline stage of
// section V is the expensive part of deployment; persisting it lets a
// runtime load the degradation space instead of re-measuring it.
func (c *Characterization) Save(w io.Writer) error {
	if len(c.Surfaces) == 0 {
		return fmt.Errorf("model: refusing to save an empty characterization")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(persistedChar{
		Version:   persistVersion,
		CPULevels: c.CPULevels,
		GPULevels: c.GPULevels,
		Surfaces:  c.Surfaces,
	})
}

// LoadCharacterization reads a characterization saved by Save and
// binds it to the machine description (which supplies the clock values
// of the characterized levels). The machine must have at least as many
// frequency levels as the file references.
func LoadCharacterization(r io.Reader, cfg *apu.Config) (*Characterization, error) {
	var p persistedChar
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("model: decoding characterization: %w", err)
	}
	if p.Version != persistVersion {
		return nil, fmt.Errorf("model: characterization file version %d, want %d", p.Version, persistVersion)
	}
	if err := checkAscending(p.CPULevels, cfg.NumFreqs(apu.CPU)); err != nil {
		return nil, fmt.Errorf("model: CPU levels: %w", err)
	}
	if err := checkAscending(p.GPULevels, cfg.NumFreqs(apu.GPU)); err != nil {
		return nil, fmt.Errorf("model: GPU levels: %w", err)
	}
	if len(p.Surfaces) != len(p.CPULevels) {
		return nil, fmt.Errorf("model: %d surface rows for %d CPU levels", len(p.Surfaces), len(p.CPULevels))
	}
	c := &Characterization{CPULevels: p.CPULevels, GPULevels: p.GPULevels, Surfaces: p.Surfaces}
	for a, row := range p.Surfaces {
		if len(row) != len(p.GPULevels) {
			return nil, fmt.Errorf("model: surface row %d has %d columns for %d GPU levels", a, len(row), len(p.GPULevels))
		}
		for b, s := range row {
			if s == nil {
				return nil, fmt.Errorf("model: missing surface at (%d,%d)", a, b)
			}
			if err := validateSurface(s); err != nil {
				return nil, fmt.Errorf("model: surface (%d,%d): %w", a, b, err)
			}
		}
	}
	for _, l := range p.CPULevels {
		c.cpuFreqGHz = append(c.cpuFreqGHz, float64(cfg.Freq(apu.CPU, l)))
	}
	for _, l := range p.GPULevels {
		c.gpuFreqGHz = append(c.gpuFreqGHz, float64(cfg.Freq(apu.GPU, l)))
	}
	return c, nil
}

// validateSurface checks a loaded surface's internal consistency.
func validateSurface(s *Surface) error {
	n := len(s.CPUBW)
	m := len(s.GPUBW)
	if n == 0 || m == 0 {
		return fmt.Errorf("empty bandwidth grid")
	}
	for i := 1; i < n; i++ {
		if s.CPUBW[i] < s.CPUBW[i-1] {
			return fmt.Errorf("CPU bandwidth grid not ascending")
		}
	}
	for j := 1; j < m; j++ {
		if s.GPUBW[j] < s.GPUBW[j-1] {
			return fmt.Errorf("GPU bandwidth grid not ascending")
		}
	}
	if len(s.DegCPU) != n || len(s.DegGPU) != n {
		return fmt.Errorf("degradation tables have %d/%d rows for %d levels", len(s.DegCPU), len(s.DegGPU), n)
	}
	for i := 0; i < n; i++ {
		if len(s.DegCPU[i]) != m || len(s.DegGPU[i]) != m {
			return fmt.Errorf("degradation row %d has wrong width", i)
		}
	}
	return nil
}
