// Package model implements the paper's co-run performance and power
// prediction (section V): micro-benchmark characterization of the
// degradation space plus staged interpolation.
//
// Characterization runs the controllable micro-kernel at a grid of
// bandwidth levels on each device and co-runs every pair, measuring the
// time degradation of each side on the ground-truth simulator — the
// software analogue of profiling the stressor on real hardware. One
// degradation surface pair (CPU-side, GPU-side) is collected per
// characterized frequency pair.
//
// Prediction is a two-stage interpolation. To predict the degradation
// of job i (on one device at level f) co-running with job j (on the
// other device at level g):
//
//  1. look up both jobs' standalone average bandwidths at their
//     operating points (from the offline profile) and bilinearly
//     interpolate each bracketing characterization surface in the
//     (cpu-bandwidth, gpu-bandwidth) plane;
//  2. bilinearly interpolate those surface values across the
//     characterized frequency grid to the actual frequency pair.
//
// This keeps profiling cost at O(K_c^2 * L^2) micro-kernel co-runs
// (K_c characterized levels per device, L bandwidth levels) instead of
// O(N^2 * K^2) real-program co-runs.
package model

import (
	"fmt"
	"sort"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/microbench"
	"corun/internal/sim"
	"corun/internal/units"
)

// Surface is one characterized degradation surface pair at a fixed
// frequency pair.
type Surface struct {
	// CPUFreq and GPUFreq are the frequency indices this surface was
	// characterized at.
	CPUFreq int
	GPUFreq int

	// CPUBW[i] is the achieved standalone bandwidth of the i-th
	// micro-kernel level on the CPU at CPUFreq (ascending); GPUBW
	// likewise for the GPU.
	CPUBW []float64
	GPUBW []float64

	// DegCPU[i][j] is the time degradation of the CPU-side micro-kernel
	// at level i when the GPU-side runs at level j; DegGPU[i][j] is the
	// GPU side's degradation for the same pair.
	DegCPU [][]float64
	DegGPU [][]float64
}

// valueAt bilinearly interpolates one of the surface's tables at the
// given bandwidth coordinates, clamping outside the grid.
func (s *Surface) valueAt(table [][]float64, cpuBW, gpuBW float64) float64 {
	i0, i1, tx := bracket(s.CPUBW, cpuBW)
	j0, j1, ty := bracket(s.GPUBW, gpuBW)
	v0 := units.Lerp(table[i0][j0], table[i0][j1], ty)
	v1 := units.Lerp(table[i1][j0], table[i1][j1], ty)
	return units.Lerp(v0, v1, tx)
}

// DegradationCPUAt interpolates the CPU-side degradation at the given
// standalone bandwidths.
func (s *Surface) DegradationCPUAt(cpuBW, gpuBW float64) float64 {
	return s.valueAt(s.DegCPU, cpuBW, gpuBW)
}

// DegradationGPUAt interpolates the GPU-side degradation.
func (s *Surface) DegradationGPUAt(cpuBW, gpuBW float64) float64 {
	return s.valueAt(s.DegGPU, cpuBW, gpuBW)
}

// bracket finds indices i0 <= i1 and the interpolation weight t such
// that xs[i0] <= x <= xs[i1] (clamped at the edges). xs is ascending.
func bracket(xs []float64, x float64) (int, int, float64) {
	n := len(xs)
	if n == 1 || x <= xs[0] {
		return 0, 0, 0
	}
	if x >= xs[n-1] {
		return n - 1, n - 1, 0
	}
	hi := sort.SearchFloat64s(xs, x)
	lo := hi - 1
	span := xs[hi] - xs[lo]
	if span <= 0 {
		return lo, hi, 0
	}
	return lo, hi, (x - xs[lo]) / span
}

// Characterization is the full staged characterization: a sparse grid
// of frequency pairs, each with one degradation surface pair.
type Characterization struct {
	// CPULevels and GPULevels are the characterized frequency indices
	// (ascending).
	CPULevels []int
	GPULevels []int

	// Surfaces[a][b] is the surface at (CPULevels[a], GPULevels[b]).
	Surfaces [][]*Surface

	// cpuFreqGHz/gpuFreqGHz cache the clock values of the levels for
	// interpolation weights.
	cpuFreqGHz []float64
	gpuFreqGHz []float64
}

// CharacterizeOptions configures the characterization pass.
type CharacterizeOptions struct {
	Cfg *apu.Config
	Mem *memsys.Model

	// Levels are the micro-kernel bandwidth settings; nil defaults to
	// the paper's 11 settings over 0-11 GB/s.
	Levels []units.GBps

	// CPUFreqLevels and GPUFreqLevels are the frequency indices to
	// characterize at; nil defaults to {min, closest-to-median, max}.
	CPUFreqLevels []int
	GPUFreqLevels []int
}

func defaultFreqLevels(cfg *apu.Config, d apu.Device) []int {
	max := cfg.MaxFreqIndex(d)
	return []int{0, max / 2, max}
}

// Characterize runs the micro-kernel co-run grid on the ground-truth
// simulator and assembles the staged characterization.
func Characterize(opts CharacterizeOptions) (*Characterization, error) {
	if opts.Cfg == nil || opts.Mem == nil {
		return nil, fmt.Errorf("model: nil machine or memory model")
	}
	levels := opts.Levels
	if levels == nil {
		levels = microbench.DefaultLevels()
	}
	cpuLvls := opts.CPUFreqLevels
	if cpuLvls == nil {
		cpuLvls = defaultFreqLevels(opts.Cfg, apu.CPU)
	}
	gpuLvls := opts.GPUFreqLevels
	if gpuLvls == nil {
		gpuLvls = defaultFreqLevels(opts.Cfg, apu.GPU)
	}
	if err := checkAscending(cpuLvls, opts.Cfg.NumFreqs(apu.CPU)); err != nil {
		return nil, fmt.Errorf("model: CPU levels: %w", err)
	}
	if err := checkAscending(gpuLvls, opts.Cfg.NumFreqs(apu.GPU)); err != nil {
		return nil, fmt.Errorf("model: GPU levels: %w", err)
	}

	c := &Characterization{CPULevels: cpuLvls, GPULevels: gpuLvls}
	for _, l := range cpuLvls {
		c.cpuFreqGHz = append(c.cpuFreqGHz, float64(opts.Cfg.Freq(apu.CPU, l)))
	}
	for _, l := range gpuLvls {
		c.gpuFreqGHz = append(c.gpuFreqGHz, float64(opts.Cfg.Freq(apu.GPU, l)))
	}
	c.Surfaces = make([][]*Surface, len(cpuLvls))
	for a, cf := range cpuLvls {
		c.Surfaces[a] = make([]*Surface, len(gpuLvls))
		for b, gf := range gpuLvls {
			s, err := characterizeSurface(opts, levels, cf, gf)
			if err != nil {
				return nil, err
			}
			c.Surfaces[a][b] = s
		}
	}
	return c, nil
}

func checkAscending(levels []int, n int) error {
	if len(levels) == 0 {
		return fmt.Errorf("empty level list")
	}
	for i, l := range levels {
		if l < 0 || l >= n {
			return fmt.Errorf("level %d out of range [0,%d)", l, n)
		}
		if i > 0 && l <= levels[i-1] {
			return fmt.Errorf("levels not strictly ascending")
		}
	}
	return nil
}

// characterizeSurface measures one frequency pair's 2D degradation
// grid.
func characterizeSurface(opts CharacterizeOptions, levels []units.GBps, cf, gf int) (*Surface, error) {
	n := len(levels)
	s := &Surface{
		CPUFreq: cf, GPUFreq: gf,
		CPUBW:  make([]float64, n),
		GPUBW:  make([]float64, n),
		DegCPU: make([][]float64, n),
		DegGPU: make([][]float64, n),
	}
	cfg, mem := opts.Cfg, opts.Mem

	// Grid coordinates: achieved standalone bandwidths at this
	// frequency pair.
	for i, lvl := range levels {
		k, err := microbench.Kernel(lvl, cfg)
		if err != nil {
			return nil, err
		}
		s.CPUBW[i] = float64(k.AvgStandaloneBandwidth(apu.CPU, cfg.Freq(apu.CPU, cf), mem))
		s.GPUBW[i] = float64(k.AvgStandaloneBandwidth(apu.GPU, cfg.Freq(apu.GPU, gf), mem))
	}

	simOpts := sim.Options{Cfg: cfg, Mem: mem}
	for i := range levels {
		s.DegCPU[i] = make([]float64, n)
		s.DegGPU[i] = make([]float64, n)
		for j := range levels {
			cpuInst, err := microbench.Instance(levels[i], cfg, 0)
			if err != nil {
				return nil, err
			}
			gpuInst, err := microbench.Instance(levels[j], cfg, 1)
			if err != nil {
				return nil, err
			}
			cres, err := sim.CoRun(simOpts, cpuInst, apu.CPU, gpuInst, cf, gf)
			if err != nil {
				return nil, err
			}
			s.DegCPU[i][j] = clampTiny(cres.Degradation)
			gres, err := sim.CoRun(simOpts, gpuInst, apu.GPU, cpuInst, cf, gf)
			if err != nil {
				return nil, err
			}
			s.DegGPU[i][j] = clampTiny(gres.Degradation)
		}
	}
	return s, nil
}

// clampTiny zeroes the sub-microscopic negative degradations that the
// event simulator's time tolerance can produce.
func clampTiny(d float64) float64 {
	if d < 0 && d > -1e-6 {
		return 0
	}
	return d
}

// SurfaceAt returns the characterized surface at grid cell (a, b).
func (c *Characterization) SurfaceAt(a, b int) *Surface { return c.Surfaces[a][b] }

// Degradation predicts the degradation of the device-`dev` side of a
// co-run whose CPU side streams cpuBW GB/s standalone and whose GPU
// side streams gpuBW GB/s, at the actual frequency pair (cpuGHz,
// gpuGHz). This is the staged interpolation: bandwidth-plane bilinear
// per surface, then frequency-plane bilinear across surfaces.
func (c *Characterization) Degradation(dev apu.Device, cpuBW, gpuBW, cpuGHz, gpuGHz float64) float64 {
	a0, a1, ta := bracket(c.cpuFreqGHz, cpuGHz)
	b0, b1, tb := bracket(c.gpuFreqGHz, gpuGHz)
	val := func(a, b int) float64 {
		s := c.Surfaces[a][b]
		if dev == apu.CPU {
			return s.DegradationCPUAt(cpuBW, gpuBW)
		}
		return s.DegradationGPUAt(cpuBW, gpuBW)
	}
	v0 := units.Lerp(val(a0, b0), val(a0, b1), tb)
	v1 := units.Lerp(val(a1, b0), val(a1, b1), tb)
	return units.Lerp(v0, v1, ta)
}
