package model

import (
	"fmt"

	"corun/internal/apu"
	"corun/internal/microbench"
	"corun/internal/sim"
	"corun/internal/units"
	"corun/internal/workload"
)

// CalibratedPredictor wraps the staged-interpolation Predictor with
// per-(job, device) correction factors learned from a handful of real
// probe co-runs.
//
// The base model's dominant error is structural: it cannot see a
// program's memory-latency sensitivity, only its bandwidth (the dwt2d
// tail in Figure 7). One measured co-run per job and device against a
// fixed reference stressor reveals how much that job's real degradation
// deviates from the bandwidth-only prediction; scaling subsequent
// predictions by that ratio is exactly the kind of lightweight online
// estimation the paper's section V.C anticipates ("existing lightweight
// methods can be used to estimate those metrics on the fly").
type CalibratedPredictor struct {
	*Predictor

	// scale[i][d] multiplies predicted degradations of job i on device
	// d; 1.0 means uncorrected.
	scale [][]float64
}

// CalibrateOptions configures the probe pass.
type CalibrateOptions struct {
	// Batch is the instance set the profile was collected for.
	Batch []*workload.Instance

	// ProbeTarget is the micro-kernel bandwidth level of the reference
	// co-runner; zero defaults to 8 GB/s (a demanding but not
	// saturating stressor).
	ProbeTarget units.GBps

	// MaxScale clamps the learned corrections; zero defaults to 4.
	MaxScale float64
}

// NewCalibratedPredictor measures one probe co-run per (job, device)
// on the ground-truth simulator and fits the correction factors. The
// probe cost is 2N short runs — far below the O(N^2 K^2) exhaustive
// profiling the model exists to avoid.
func NewCalibratedPredictor(base *Predictor, opts CalibrateOptions) (*CalibratedPredictor, error) {
	if base == nil {
		return nil, fmt.Errorf("model: nil base predictor")
	}
	if len(opts.Batch) != base.NumJobs() {
		return nil, fmt.Errorf("model: batch size %d does not match profile %d", len(opts.Batch), base.NumJobs())
	}
	target := opts.ProbeTarget
	if target <= 0 {
		target = 8
	}
	maxScale := opts.MaxScale
	if maxScale <= 0 {
		maxScale = 4
	}
	cfg, mem := base.Prof.Cfg, base.Prof.Mem

	cmax := cfg.MaxFreqIndex(apu.CPU)
	gmax := cfg.MaxFreqIndex(apu.GPU)
	cp := &CalibratedPredictor{Predictor: base}
	cp.scale = make([][]float64, base.NumJobs())

	// The reference stressor runs on the opposite device; its
	// standalone bandwidth indexes the prediction surface.
	probeProg, err := microbench.Kernel(target, cfg)
	if err != nil {
		return nil, err
	}
	probeBW := map[apu.Device]float64{
		apu.CPU: float64(probeProg.AvgStandaloneBandwidth(apu.CPU, cfg.Freq(apu.CPU, cmax), mem)),
		apu.GPU: float64(probeProg.AvgStandaloneBandwidth(apu.GPU, cfg.Freq(apu.GPU, gmax), mem)),
	}

	for i, inst := range opts.Batch {
		cp.scale[i] = []float64{1, 1}
		for d := apu.CPU; d <= apu.GPU; d++ {
			fSelf, fOther := cmax, gmax
			if d == apu.GPU {
				fSelf, fOther = gmax, cmax
			}
			probe := &workload.Instance{ID: 1, Prog: probeProg, Scale: 1, Label: probeProg.Name}
			cf, gf := fSelf, fOther
			if d == apu.GPU {
				cf, gf = fOther, fSelf
			}
			meas, err := sim.CoRun(sim.Options{Cfg: cfg, Mem: mem}, inst, d, probe, cf, gf)
			if err != nil {
				return nil, err
			}
			// Predict the same configuration with the base model: job
			// bandwidth from the profile, probe bandwidth from its own
			// standalone profile.
			var cpuBW, gpuBW float64
			if d == apu.CPU {
				cpuBW = float64(base.Prof.Bandwidth(i, apu.CPU, fSelf))
				gpuBW = probeBW[apu.GPU]
			} else {
				gpuBW = float64(base.Prof.Bandwidth(i, apu.GPU, fSelf))
				cpuBW = probeBW[apu.CPU]
			}
			pred := base.Char.Degradation(d, cpuBW, gpuBW,
				float64(cfg.Freq(apu.CPU, cf)), float64(cfg.Freq(apu.GPU, gf)))
			if pred > 1e-3 && meas.Degradation > 0 {
				cp.scale[i][d] = units.Clamp(meas.Degradation/pred, 1/maxScale, maxScale)
			}
		}
	}
	return cp, nil
}

// Degradation applies the learned correction on top of the base model.
func (cp *CalibratedPredictor) Degradation(i int, dev apu.Device, f, j, g int) float64 {
	d := cp.Predictor.Degradation(i, dev, f, j, g)
	return d * cp.scale[i][dev]
}

// Scale exposes the learned correction of job i on device d (for
// reports and tests).
func (cp *CalibratedPredictor) Scale(i int, d apu.Device) float64 { return cp.scale[i][d] }
