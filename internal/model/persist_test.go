package model

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"corun/internal/apu"
)

func TestCharacterizationSaveLoadRoundTrip(t *testing.T) {
	c, cfg, _ := smallChar(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCharacterization(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded characterization predicts identically.
	for _, tc := range []struct {
		dev        apu.Device
		cbw, gbw   float64
		cghz, gghz float64
	}{
		{apu.CPU, 6, 7, 3.6, 1.25},
		{apu.GPU, 6, 7, 3.6, 1.25},
		{apu.CPU, 9.5, 2.0, 2.0, 0.6},
		{apu.GPU, 1.0, 10.5, 1.2, 0.35},
	} {
		want := c.Degradation(tc.dev, tc.cbw, tc.gbw, tc.cghz, tc.gghz)
		got := back.Degradation(tc.dev, tc.cbw, tc.gbw, tc.cghz, tc.gghz)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%v at (%v,%v,%v,%v): loaded %v vs original %v",
				tc.dev, tc.cbw, tc.gbw, tc.cghz, tc.gghz, got, want)
		}
	}
}

func TestSaveRejectsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Characterization{}).Save(&buf); err == nil {
		t.Error("empty characterization saved")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cfg := apu.DefaultConfig()
	cases := []string{
		"not json",
		`{"version": 99, "cpu_levels": [0], "gpu_levels": [0], "surfaces": [[]]}`,
		`{"version": 1, "cpu_levels": [99], "gpu_levels": [0], "surfaces": [[]]}`,
		`{"version": 1, "cpu_levels": [0, 15], "gpu_levels": [0], "surfaces": [[]]}`,
		`{"version": 1, "cpu_levels": [0], "gpu_levels": [0], "surfaces": [[null]]}`,
		`{"version": 1, "cpu_levels": [0], "gpu_levels": [0],
		  "surfaces": [[{"CPUFreq":0,"GPUFreq":0,"CPUBW":[],"GPUBW":[],"DegCPU":[],"DegGPU":[]}]]}`,
		`{"version": 1, "cpu_levels": [0], "gpu_levels": [0],
		  "surfaces": [[{"CPUFreq":0,"GPUFreq":0,"CPUBW":[2,1],"GPUBW":[1],"DegCPU":[[0],[0]],"DegGPU":[[0],[0]]}]]}`,
	}
	for i, c := range cases {
		if _, err := LoadCharacterization(strings.NewReader(c), cfg); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestLoadedCharacterizationDrivesPredictor(t *testing.T) {
	c, cfg, mem := smallChar(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCharacterization(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = mem
	if _, err := NewPredictor(back, nil); err == nil {
		t.Error("predictor accepted nil profile")
	}
}
