package model

import (
	"corun/internal/apu"
	"corun/internal/profile"
)

// DomainOracle is the optional per-plane extension of Oracle: oracles
// that can break their co-run power prediction down into RAPL-style
// planes implement it, and the scheduling layer type-asserts for it
// when domain caps are configured (falling back to a conservative
// derivation otherwise).
type DomainOracle interface {
	// CoRunSplit predicts the per-plane power of job i on the CPU at
	// level f co-running with job j on the GPU at level g; negative
	// indices denote an idle device. The split's Package() total
	// equals CoRunPower with the same arguments.
	CoRunSplit(i, f, j, g int) apu.PowerSplit
}

// profileSplit breaks the standalone-sum power model down by plane.
// The profile's conventions (see profile.standalonePower): a CPU solo
// measurement is idle + CPU activity; a GPU solo measurement is idle +
// GPU activity + the host thread at the lowest CPU operating point.
// Subtracting those known terms reassigns every watt to its plane —
// the host thread burns CPU cycles, so PP0 meters it — and the plane
// sums rebuild CoRunPower exactly.
func profileSplit(prof *profile.Standalone, i, f, j, g int) apu.PowerSplit {
	cfg := prof.Cfg
	idle := cfg.IdlePower
	s := apu.PowerSplit{Uncore: idle}
	if i >= 0 {
		s.PP0 += prof.Power(i, apu.CPU, f) - idle
	}
	if j >= 0 {
		host := cfg.HostPower(0)
		s.PP1 += prof.Power(j, apu.GPU, g) - idle - host
		s.PP0 += host
	}
	return s
}

// CoRunSplit implements DomainOracle over the standalone profiles.
func (p *Predictor) CoRunSplit(i, f, j, g int) apu.PowerSplit {
	return profileSplit(p.Prof, i, f, j, g)
}

// CoRunSplit implements DomainOracle; like CoRunPower it uses the
// standalone-sum model (the paper's power model is near-exact, so the
// ground-truth arm only re-measures degradation).
func (o *GroundTruthOracle) CoRunSplit(i, f, j, g int) apu.PowerSplit {
	return profileSplit(o.Prof, i, f, j, g)
}

// CoRunSplit forwards to the wrapped oracle when it is domain-aware;
// plane splits are two table reads, nothing worth memoizing.
func (c *CachedPredictor) CoRunSplit(i, f, j, g int) apu.PowerSplit {
	if d, ok := c.base.(DomainOracle); ok {
		return d.CoRunSplit(i, f, j, g)
	}
	// A non-domain-aware base: attribute everything above idle to the
	// plane of the device that runs it (host thread included in PP1's
	// gross term — conservative for PP0, exact for the package total).
	idle := c.base.CoRunPower(-1, 0, -1, 0)
	s := apu.PowerSplit{Uncore: idle}
	if i >= 0 {
		s.PP0 = c.base.StandalonePower(i, apu.CPU, f) - idle
	}
	if j >= 0 {
		s.PP1 = c.base.StandalonePower(j, apu.GPU, g) - idle
	}
	return s
}
