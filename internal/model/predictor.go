package model

import (
	"fmt"
	"sync"

	"corun/internal/apu"
	"corun/internal/profile"
	"corun/internal/sim"
	"corun/internal/units"
	"corun/internal/workload"
)

// Predictor combines the micro-benchmark characterization with the
// offline standalone profiles into the co-run performance and power
// oracle the scheduling algorithms consume.
//
// It implements the core package's Oracle interface.
type Predictor struct {
	Char *Characterization
	Prof *profile.Standalone
}

// NewPredictor validates and assembles a predictor.
func NewPredictor(char *Characterization, prof *profile.Standalone) (*Predictor, error) {
	if char == nil || prof == nil {
		return nil, fmt.Errorf("model: nil characterization or profile")
	}
	if len(char.Surfaces) == 0 {
		return nil, fmt.Errorf("model: empty characterization")
	}
	return &Predictor{Char: char, Prof: prof}, nil
}

// NumJobs returns the number of jobs in the profiled batch.
func (p *Predictor) NumJobs() int { return p.Prof.NumJobs() }

// StandaloneTime returns the profiled solo time of job i on device d at
// frequency level f.
func (p *Predictor) StandaloneTime(i int, d apu.Device, f int) units.Seconds {
	return p.Prof.Time(i, d, f)
}

// StandalonePower returns the profiled solo package power of job i on
// device d at level f.
func (p *Predictor) StandalonePower(i int, d apu.Device, f int) units.Watts {
	return p.Prof.Power(i, d, f)
}

// Degradation predicts the time degradation of job i running on device
// dev at level f while job j runs on the opposite device at level g.
func (p *Predictor) Degradation(i int, dev apu.Device, f, j, g int) float64 {
	var cpuBW, gpuBW float64
	var cpuGHz, gpuGHz float64
	cfg := p.Prof.Cfg
	if dev == apu.CPU {
		cpuBW = float64(p.Prof.Bandwidth(i, apu.CPU, f))
		gpuBW = float64(p.Prof.Bandwidth(j, apu.GPU, g))
		cpuGHz = float64(cfg.Freq(apu.CPU, f))
		gpuGHz = float64(cfg.Freq(apu.GPU, g))
	} else {
		gpuBW = float64(p.Prof.Bandwidth(i, apu.GPU, f))
		cpuBW = float64(p.Prof.Bandwidth(j, apu.CPU, g))
		gpuGHz = float64(cfg.Freq(apu.GPU, f))
		cpuGHz = float64(cfg.Freq(apu.CPU, g))
	}
	d := p.Char.Degradation(dev, cpuBW, gpuBW, cpuGHz, gpuGHz)
	if d < 0 {
		return 0
	}
	return d
}

// CoRunPower predicts the package power of job i on the CPU at level f
// co-running with job j on the GPU at level g, as the paper does: the
// sum of the standalone powers at the same frequencies (idle counted
// once). Either job index may be negative to denote an idle device.
func (p *Predictor) CoRunPower(i, f, j, g int) units.Watts {
	idle := p.Prof.Cfg.IdlePower
	switch {
	case i < 0 && j < 0:
		return idle
	case i < 0:
		return p.Prof.Power(j, apu.GPU, g)
	case j < 0:
		return p.Prof.Power(i, apu.CPU, f)
	default:
		return p.Prof.Power(i, apu.CPU, f) + p.Prof.Power(j, apu.GPU, g) - idle
	}
}

// GroundTruthOracle answers the same queries as Predictor but by
// actually measuring pairwise co-runs on the simulator (memoized). It
// is the "perfect model" arm of the model-vs-oracle ablation: feeding
// it to the scheduler isolates scheduling error from prediction error.
type GroundTruthOracle struct {
	Prof  *profile.Standalone
	Batch []*workload.Instance

	mu   sync.Mutex
	memo map[gtKey]float64
}

type gtKey struct {
	i   int
	dev apu.Device
	f   int
	j   int
	g   int
}

// NewGroundTruthOracle builds the oracle over a profiled batch.
func NewGroundTruthOracle(prof *profile.Standalone, batch []*workload.Instance) (*GroundTruthOracle, error) {
	if prof == nil {
		return nil, fmt.Errorf("model: nil profile")
	}
	if len(batch) != prof.NumJobs() {
		return nil, fmt.Errorf("model: batch size %d does not match profile %d", len(batch), prof.NumJobs())
	}
	return &GroundTruthOracle{Prof: prof, Batch: batch, memo: map[gtKey]float64{}}, nil
}

// NumJobs returns the batch size.
func (o *GroundTruthOracle) NumJobs() int { return o.Prof.NumJobs() }

// StandaloneTime returns the profiled solo time.
func (o *GroundTruthOracle) StandaloneTime(i int, d apu.Device, f int) units.Seconds {
	return o.Prof.Time(i, d, f)
}

// StandalonePower returns the profiled solo power.
func (o *GroundTruthOracle) StandalonePower(i int, d apu.Device, f int) units.Watts {
	return o.Prof.Power(i, d, f)
}

// Degradation measures the true degradation by simulation.
func (o *GroundTruthOracle) Degradation(i int, dev apu.Device, f, j, g int) float64 {
	key := gtKey{i, dev, f, j, g}
	o.mu.Lock()
	if v, ok := o.memo[key]; ok {
		o.mu.Unlock()
		return v
	}
	o.mu.Unlock()
	cf, gf := f, g
	if dev == apu.GPU {
		cf, gf = g, f
	}
	val := 10.0 // maximal pessimism when measurement fails
	res, err := sim.CoRun(sim.Options{Cfg: o.Prof.Cfg, Mem: o.Prof.Mem},
		o.Batch[i], dev, o.Batch[j], cf, gf)
	if err == nil {
		val = res.Degradation
	}
	o.mu.Lock()
	o.memo[key] = val
	o.mu.Unlock()
	return val
}

// CoRunPower uses the same standalone-sum estimate as the Predictor
// (the paper's power model is already near-exact).
func (o *GroundTruthOracle) CoRunPower(i, f, j, g int) units.Watts {
	idle := o.Prof.Cfg.IdlePower
	switch {
	case i < 0 && j < 0:
		return idle
	case i < 0:
		return o.Prof.Power(j, apu.GPU, g)
	case j < 0:
		return o.Prof.Power(i, apu.CPU, f)
	default:
		return o.Prof.Power(i, apu.CPU, f) + o.Prof.Power(j, apu.GPU, g) - idle
	}
}
