// Package workload defines the benchmark programs used throughout the
// reproduction: analytic stand-ins for the eight Rodinia OpenCL
// programs the paper evaluates (streamcluster, cfd, dwt2d, hotspot,
// srad, lud, leukocyte, heartwall).
//
// Each program's parameters are calibrated so that, on the default
// machine at maximum frequencies, its standalone CPU and GPU execution
// times match Table I of the paper, its processor preference matches
// the paper's labels (six GPU-preferred, dwt2d CPU-preferred, lud
// non-preferred), and its memory-demand ordering reproduces the co-run
// anecdotes of section III.
package workload

import (
	"fmt"
	"sort"

	"corun/internal/kernelsim"
)

// Instance is one job: a program plus an input scale. Two instances of
// the same program with different scales model the paper's "two
// instances ... with different inputs" 16-program experiment.
type Instance struct {
	// ID is unique within a batch and indexes scheduler tables.
	ID int

	// Prog is the program model; instances share Program values.
	Prog *kernelsim.Program

	// Scale multiplies the program's work (input size).
	Scale float64

	// Label names the instance for reports, e.g. "cfd#2".
	Label string
}

// String implements fmt.Stringer.
func (in *Instance) String() string { return in.Label }

// programTable holds the calibrated models. Times quoted in the
// comments are the paper's Table I standalone seconds (CPU @3.6 GHz,
// GPU @1.25 GHz); the parameters reproduce them on the default machine.
var programTable = []kernelsim.Program{
	{
		// streamcluster: 59.71 s CPU / 23.72 s GPU, heavy streaming on
		// the GPU (~8.2 GB/s demand), latency tolerant there.
		Name: "streamcluster", Work: 100,
		CPUEff: 0.4652, GPUEff: 3.3728,
		CPUSens: 0.25, GPUSens: 0.05,
		Phases: []kernelsim.Phase{
			{Frac: 0.75, BytesPerOp: 2.20},
			{Frac: 0.25, BytesPerOp: 1.18},
		},
	},
	{
		// cfd: 49.69 s CPU / 26.32 s GPU, unstructured-grid solver with
		// substantial memory traffic (~6.5 GB/s on GPU).
		Name: "cfd", Work: 100,
		CPUEff: 0.5590, GPUEff: 3.0395,
		CPUSens: 0.30, GPUSens: 0.10,
		Phases: []kernelsim.Phase{
			{Frac: 0.60, BytesPerOp: 2.10},
			{Frac: 0.40, BytesPerOp: 1.10},
		},
	},
	{
		// dwt2d: 24.37 s CPU / 61.66 s GPU — the one CPU-preferred
		// program. Irregular wavelet accesses make it extremely
		// latency sensitive on the CPU (the 81%-slowdown victim of
		// section III).
		Name: "dwt2d", Work: 100,
		CPUEff: 1.1398, GPUEff: 1.2976,
		CPUSens: 1.35, GPUSens: 0.20,
		Phases: []kernelsim.Phase{
			{Frac: 0.70, BytesPerOp: 1.90},
			{Frac: 0.30, BytesPerOp: 0.85},
		},
	},
	{
		// hotspot: 70.24 s CPU / 28.52 s GPU, compute-bound stencil
		// with a small working set (~2 GB/s GPU demand) — the gentle
		// co-runner of section III.
		Name: "hotspot", Work: 100,
		CPUEff: 0.3954, GPUEff: 2.8050,
		CPUSens: 0.20, GPUSens: 0.05,
		Phases: []kernelsim.Phase{
			{Frac: 0.50, BytesPerOp: 0.75},
			{Frac: 0.50, BytesPerOp: 0.39},
		},
	},
	{
		// srad: 51.39 s CPU / 23.71 s GPU, diffusion kernel with high
		// bandwidth appetite (~7 GB/s on GPU).
		Name: "srad", Work: 100,
		CPUEff: 0.5405, GPUEff: 3.3740,
		CPUSens: 0.28, GPUSens: 0.10,
		Phases: []kernelsim.Phase{
			{Frac: 0.65, BytesPerOp: 2.00},
			{Frac: 0.35, BytesPerOp: 1.03},
		},
	},
	{
		// lud: 27.76 s CPU / 24.83 s GPU — the non-preferred program
		// (ratio 1.12, below the 20% threshold).
		Name: "lud", Work: 100,
		CPUEff: 1.0006, GPUEff: 3.2223,
		CPUSens: 0.30, GPUSens: 0.15,
		Phases: []kernelsim.Phase{
			{Frac: 0.50, BytesPerOp: 1.40},
			{Frac: 0.50, BytesPerOp: 0.60},
		},
	},
	{
		// leukocyte: 50.88 s CPU / 23.08 s GPU, tracking kernels with
		// moderate bandwidth (~5 GB/s on GPU).
		Name: "leukocyte", Work: 100,
		CPUEff: 0.5459, GPUEff: 3.4662,
		CPUSens: 0.22, GPUSens: 0.08,
		Phases: []kernelsim.Phase{
			{Frac: 0.55, BytesPerOp: 1.50},
			{Frac: 0.45, BytesPerOp: 0.73},
		},
	},
	{
		// heartwall: 54.68 s CPU / 22.99 s GPU, image-processing
		// pipeline (~6 GB/s GPU demand).
		Name: "heartwall", Work: 100,
		CPUEff: 0.5080, GPUEff: 3.4798,
		CPUSens: 0.25, GPUSens: 0.12,
		Phases: []kernelsim.Phase{
			{Frac: 0.60, BytesPerOp: 1.70},
			{Frac: 0.40, BytesPerOp: 0.90},
		},
	},
}

// Names returns the benchmark names in canonical (paper Table I) order.
func Names() []string {
	out := make([]string, len(programTable))
	for i := range programTable {
		out[i] = programTable[i].Name
	}
	return out
}

// Programs returns fresh copies of all eight program models in
// canonical order. Callers may mutate the copies freely.
func Programs() []*kernelsim.Program {
	out := make([]*kernelsim.Program, len(programTable))
	for i := range programTable {
		p := programTable[i]
		p.Phases = append([]kernelsim.Phase(nil), programTable[i].Phases...)
		out[i] = &p
	}
	return out
}

// ByName returns a fresh copy of the named program model.
func ByName(name string) (*kernelsim.Program, error) {
	for i := range programTable {
		if programTable[i].Name == name {
			p := programTable[i]
			p.Phases = append([]kernelsim.Phase(nil), programTable[i].Phases...)
			return &p, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown program %q", name)
}

// MustByName is ByName for known-good names; it panics otherwise.
func MustByName(name string) *kernelsim.Program {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Batch8 returns the paper's 8-program workload: one instance of each
// benchmark at the reference input size.
func Batch8() []*Instance {
	progs := Programs()
	out := make([]*Instance, len(progs))
	for i, p := range progs {
		out[i] = &Instance{ID: i, Prog: p, Scale: 1.0, Label: p.Name}
	}
	return out
}

// Batch16 returns the paper's 16-program workload: two instances of
// each benchmark with different inputs (the second scaled by 1.15).
func Batch16() []*Instance {
	progs := Programs()
	out := make([]*Instance, 0, 2*len(progs))
	id := 0
	for _, p := range progs {
		out = append(out, &Instance{ID: id, Prog: p, Scale: 1.0, Label: p.Name + "#1"})
		id++
		out = append(out, &Instance{ID: id, Prog: p, Scale: 1.15, Label: p.Name + "#2"})
		id++
	}
	return out
}

// Subset builds a batch from the named programs, in the given order,
// all at the reference input size.
func Subset(names ...string) ([]*Instance, error) {
	out := make([]*Instance, len(names))
	for i, n := range names {
		p, err := ByName(n)
		if err != nil {
			return nil, err
		}
		out[i] = &Instance{ID: i, Prog: p, Scale: 1.0, Label: n}
	}
	return out, nil
}

// Validate checks every program model in the table.
func Validate() error {
	seen := map[string]bool{}
	for i := range programTable {
		p := programTable[i]
		if err := p.Validate(); err != nil {
			return err
		}
		if seen[p.Name] {
			return fmt.Errorf("workload: duplicate program %q", p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}

// SortByID orders a batch by instance ID in place (useful after
// scheduling algorithms shuffle batches).
func SortByID(batch []*Instance) {
	sort.Slice(batch, func(i, j int) bool { return batch[i].ID < batch[j].ID })
}
