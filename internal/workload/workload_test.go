package workload

import (
	"math"
	"testing"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/units"
)

// tableI holds the paper's Table I standalone seconds for calibration
// checks: CPU at 3.6 GHz, GPU at 1.25 GHz.
var tableI = map[string]struct{ cpu, gpu float64 }{
	"streamcluster": {59.71, 23.72},
	"cfd":           {49.69, 26.32},
	"dwt2d":         {24.37, 61.66},
	"hotspot":       {70.24, 28.52},
	"srad":          {51.39, 23.71},
	"lud":           {27.76, 24.83},
	"leukocyte":     {50.88, 23.08},
	"heartwall":     {54.68, 22.99},
}

func TestValidateTable(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatalf("workload table invalid: %v", err)
	}
}

func TestNamesOrder(t *testing.T) {
	want := []string{"streamcluster", "cfd", "dwt2d", "hotspot", "srad", "lud", "leukocyte", "heartwall"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("got %d names, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("name[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// Calibration: standalone times at max frequencies match Table I within
// 10%.
func TestStandaloneTimesMatchTableI(t *testing.T) {
	mem := memsys.Default()
	cfg := apu.DefaultConfig()
	fc := cfg.Freq(apu.CPU, cfg.MaxFreqIndex(apu.CPU))
	fg := cfg.Freq(apu.GPU, cfg.MaxFreqIndex(apu.GPU))
	for _, p := range Programs() {
		want, ok := tableI[p.Name]
		if !ok {
			t.Fatalf("no Table I entry for %s", p.Name)
		}
		gotCPU := float64(p.StandaloneTime(apu.CPU, fc, mem, 1))
		gotGPU := float64(p.StandaloneTime(apu.GPU, fg, mem, 1))
		if units.RelErr(gotCPU, want.cpu) > 0.10 {
			t.Errorf("%s CPU time = %.2f, want %.2f (Table I)", p.Name, gotCPU, want.cpu)
		}
		if units.RelErr(gotGPU, want.gpu) > 0.10 {
			t.Errorf("%s GPU time = %.2f, want %.2f (Table I)", p.Name, gotGPU, want.gpu)
		}
	}
}

// Calibration: preferences match the paper — dwt2d CPU-preferred, lud
// non-preferred (within 20%), everything else GPU-preferred.
func TestPreferencesMatchPaper(t *testing.T) {
	mem := memsys.Default()
	cfg := apu.DefaultConfig()
	fc := cfg.Freq(apu.CPU, cfg.MaxFreqIndex(apu.CPU))
	fg := cfg.Freq(apu.GPU, cfg.MaxFreqIndex(apu.GPU))
	for _, p := range Programs() {
		tc := float64(p.StandaloneTime(apu.CPU, fc, mem, 1))
		tg := float64(p.StandaloneTime(apu.GPU, fg, mem, 1))
		ratio := math.Max(tc, tg) / math.Min(tc, tg)
		switch p.Name {
		case "dwt2d":
			if tc >= tg || ratio <= 1.2 {
				t.Errorf("dwt2d should be CPU-preferred: cpu=%.2f gpu=%.2f", tc, tg)
			}
		case "lud":
			if ratio > 1.2 {
				t.Errorf("lud should be non-preferred: cpu=%.2f gpu=%.2f ratio=%.3f", tc, tg, ratio)
			}
		default:
			if tg >= tc || ratio <= 1.2 {
				t.Errorf("%s should be GPU-preferred: cpu=%.2f gpu=%.2f", p.Name, tc, tg)
			}
		}
	}
}

// Calibration: standalone demands stay below the solo caps at max
// frequency so Table I times are contention-free, and the GPU demand
// ordering supports the section III anecdotes (streamcluster hungry,
// hotspot quiet).
func TestStandaloneDemands(t *testing.T) {
	mem := memsys.Default()
	cfg := apu.DefaultConfig()
	fg := cfg.Freq(apu.GPU, cfg.MaxFreqIndex(apu.GPU))
	bw := map[string]float64{}
	for _, p := range Programs() {
		bw[p.Name] = float64(p.AvgStandaloneBandwidth(apu.GPU, fg, mem))
		if bw[p.Name] >= mem.Params().SoloCapGPU {
			t.Errorf("%s GPU demand %.2f hits the solo cap; Table I calibration would shift", p.Name, bw[p.Name])
		}
	}
	if bw["streamcluster"] <= 2*bw["hotspot"] {
		t.Errorf("streamcluster GPU demand (%.2f) should dwarf hotspot's (%.2f)",
			bw["streamcluster"], bw["hotspot"])
	}
}

func TestProgramsReturnsCopies(t *testing.T) {
	a := Programs()
	a[0].Work = 1
	a[0].Phases[0].BytesPerOp = 99
	b := Programs()
	if b[0].Work == 1 || b[0].Phases[0].BytesPerOp == 99 {
		t.Error("Programs() exposes shared mutable state")
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("dwt2d")
	if err != nil || p.Name != "dwt2d" {
		t.Fatalf("ByName(dwt2d) = %v, %v", p, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("ByName accepted an unknown program")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustByName on unknown program did not panic")
		}
	}()
	MustByName("nonesuch")
}

func TestBatch8(t *testing.T) {
	b := Batch8()
	if len(b) != 8 {
		t.Fatalf("Batch8 has %d instances, want 8", len(b))
	}
	for i, in := range b {
		if in.ID != i {
			t.Errorf("instance %d has ID %d", i, in.ID)
		}
		if in.Scale != 1.0 {
			t.Errorf("instance %s has scale %v, want 1.0", in.Label, in.Scale)
		}
	}
}

func TestBatch16(t *testing.T) {
	b := Batch16()
	if len(b) != 16 {
		t.Fatalf("Batch16 has %d instances, want 16", len(b))
	}
	counts := map[string]int{}
	scales := map[string][]float64{}
	for _, in := range b {
		counts[in.Prog.Name]++
		scales[in.Prog.Name] = append(scales[in.Prog.Name], in.Scale)
	}
	for name, n := range counts {
		if n != 2 {
			t.Errorf("%s appears %d times, want 2", name, n)
		}
		if scales[name][0] == scales[name][1] {
			t.Errorf("%s instances share the same input scale", name)
		}
	}
	// IDs unique.
	seen := map[int]bool{}
	for _, in := range b {
		if seen[in.ID] {
			t.Errorf("duplicate instance ID %d", in.ID)
		}
		seen[in.ID] = true
	}
}

func TestSubset(t *testing.T) {
	b, err := Subset("streamcluster", "cfd", "dwt2d", "hotspot")
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 4 || b[2].Label != "dwt2d" {
		t.Errorf("Subset built wrong batch: %v", b)
	}
	if _, err := Subset("bogus"); err == nil {
		t.Error("Subset accepted an unknown name")
	}
}

func TestSortByID(t *testing.T) {
	b := Batch8()
	b[0], b[7] = b[7], b[0]
	b[3], b[5] = b[5], b[3]
	SortByID(b)
	for i, in := range b {
		if in.ID != i {
			t.Fatalf("SortByID left ID %d at position %d", in.ID, i)
		}
	}
}

func TestInstanceString(t *testing.T) {
	in := &Instance{Label: "cfd#2"}
	if in.String() != "cfd#2" {
		t.Errorf("String() = %q", in.String())
	}
}
