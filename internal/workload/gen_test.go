package workload

import (
	"testing"

	"corun/internal/apu"
	"corun/internal/memsys"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenOptions{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Generate(GenOptions{N: 4, GPUPreferredFrac: 1.5}); err == nil {
		t.Error("fraction above one accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GenOptions{N: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenOptions{N: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Prog.CPUEff != b[i].Prog.CPUEff || len(a[i].Prog.Phases) != len(b[i].Prog.Phases) {
			t.Fatal("same seed gave different programs")
		}
	}
	c, err := Generate(GenOptions{N: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Prog.CPUEff != c[i].Prog.CPUEff {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

// Generated programs are valid, land in the intended time range on
// their preferred device, and stay under the solo bandwidth caps often
// enough to be schedulable.
func TestGeneratePlausible(t *testing.T) {
	mem := memsys.Default()
	cfg := apu.DefaultConfig()
	fc := cfg.Freq(apu.CPU, cfg.MaxFreqIndex(apu.CPU))
	fg := cfg.Freq(apu.GPU, cfg.MaxFreqIndex(apu.GPU))
	batch, err := Generate(GenOptions{N: 32, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	gpuPref := 0
	for i, in := range batch {
		if in.ID != i {
			t.Fatalf("instance %d has ID %d", i, in.ID)
		}
		if err := in.Prog.Validate(); err != nil {
			t.Fatalf("%s: %v", in.Label, err)
		}
		tc := float64(in.Prog.StandaloneTime(apu.CPU, fc, mem, 1))
		tg := float64(in.Prog.StandaloneTime(apu.GPU, fg, mem, 1))
		best := tc
		if tg < tc {
			best = tg
			gpuPref++
		}
		if best < 15 || best > 100 {
			t.Errorf("%s: preferred time %.1f s outside the plausible range", in.Label, best)
		}
	}
	// Roughly the requested share is GPU-preferred (0.7 of 32 ~ 22).
	if gpuPref < 16 || gpuPref > 30 {
		t.Errorf("%d/32 GPU-preferred; expected around 22", gpuPref)
	}
}
