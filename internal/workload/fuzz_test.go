package workload

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// FuzzJobSpecJSON throws arbitrary bytes at the daemon's job-submission
// decoder. DecodeJobSpec sits directly behind POST /v1/jobs, so the
// contract under fuzz is: never panic, never accept a spec that fails
// its own validation, and never reject a spec that round-trips from an
// accepted one.
func FuzzJobSpecJSON(f *testing.F) {
	// Valid specs, one per field shape.
	f.Add([]byte(`{"program":"cfd"}`))
	f.Add([]byte(`{"program":"lud","scale":1.5,"label":"nightly","deadline_s":120}`))
	f.Add([]byte(`{"program":"  hotspot  "}`)) // normalized whitespace
	// Truncated and malformed JSON.
	f.Add([]byte(`{"program":"cfd"`))
	f.Add([]byte(`{"program":`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	// Type confusion: wrong JSON types for each field.
	f.Add([]byte(`{"program":42}`))
	f.Add([]byte(`{"program":"cfd","scale":"big"}`))
	f.Add([]byte(`{"program":"cfd","deadline_s":[1]}`))
	f.Add([]byte(`{"program":{"name":"cfd"}}`))
	// Semantically invalid values and unknown fields.
	f.Add([]byte(`{"program":"nosuch"}`))
	f.Add([]byte(`{"program":"cfd","scale":-1}`))
	f.Add([]byte(`{"program":"cfd","deadline_s":-5}`))
	f.Add([]byte(`{"program":"cfd","dead_line_s":9}`))
	f.Add([]byte(`{"program":"cfd","scale":1e308}`))
	f.Add([]byte(`{"program":"cfd"} trailing`))
	// Out-of-range and denormal numerics: 1e309 overflows float64 (a
	// range error from the decoder), huge negative exponents underflow
	// to 0 (caught by the non-positive check after Normalize skips
	// exact zero only), and deadline overflow must be rejected too.
	f.Add([]byte(`{"program":"cfd","scale":1e309}`))
	f.Add([]byte(`{"program":"cfd","scale":-1e309}`))
	f.Add([]byte(`{"program":"cfd","scale":5e-324}`))
	f.Add([]byte(`{"program":"cfd","deadline_s":1e309}`))
	f.Add([]byte(`{"program":"cfd","scale":1E4932}`))
	// Admission fields: tenant and priority, valid and invalid.
	f.Add([]byte(`{"program":"cfd","tenant":"team-a","priority":"high"}`))
	f.Add([]byte(`{"program":"cfd","tenant":"default","priority":"normal"}`))
	f.Add([]byte(`{"program":"cfd","priority":"LOW"}`))
	f.Add([]byte(`{"program":"cfd","tenant":"bad tenant"}`))
	f.Add([]byte(`{"program":"cfd","tenant":"` + strings.Repeat("x", 65) + `"}`))
	f.Add([]byte(`{"program":"cfd","priority":"urgent"}`))
	f.Add([]byte(`{"program":"cfd","tenant":42}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeJobSpec(strings.NewReader(string(data)))
		if err != nil {
			if spec != (JobSpec{}) {
				t.Fatalf("error %v returned alongside non-zero spec %+v", err, spec)
			}
			return
		}
		// Accepted specs are normalized and pass validation as-is.
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec %+v fails validation: %v", spec, err)
		}
		if spec.Program != strings.TrimSpace(spec.Program) {
			t.Fatalf("accepted spec not normalized: %q", spec.Program)
		}
		if spec.Scale <= 0 || math.IsNaN(spec.Scale) || math.IsInf(spec.Scale, 0) {
			t.Fatalf("accepted spec has unusable scale %v", spec.Scale)
		}
		if spec.DeadlineS < 0 || math.IsNaN(spec.DeadlineS) {
			t.Fatalf("accepted spec has unusable deadline %v", spec.DeadlineS)
		}
		// An accepted spec materializes into an instance.
		if _, err := spec.Instance(0, "job-000000"); err != nil {
			t.Fatalf("accepted spec %+v cannot instantiate: %v", spec, err)
		}
		// Round trip: re-encoding an accepted spec is accepted again
		// and decodes to the same value.
		b, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("re-encoding accepted spec %+v: %v", spec, err)
		}
		again, err := DecodeJobSpec(strings.NewReader(string(b)))
		if err != nil {
			t.Fatalf("round trip of %s rejected: %v", b, err)
		}
		if again != spec {
			t.Fatalf("round trip changed the spec: %+v -> %+v", spec, again)
		}
	})
}
