package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"corun/internal/admission"
)

// JobSpec is the JSON wire form of one submitted job, as accepted by
// the corund daemon's POST /v1/jobs endpoint:
//
//	{"program": "cfd", "scale": 1.15, "label": "nightly", "deadline_s": 120,
//	 "tenant": "team-a", "priority": "high"}
//
// Program must name one of the calibrated benchmarks. Scale defaults
// to 1.0 (the reference input size); Label defaults to the program
// name; DeadlineS is an optional response-time target in simulated
// seconds (0 = none) that the server reports against but does not
// enforce. Tenant scopes the job to an admission queue (defaults to
// the shared "default" tenant) and Priority is its class — "low",
// "normal" (the default), or "high".
type JobSpec struct {
	Program   string  `json:"program"`
	Scale     float64 `json:"scale,omitempty"`
	Label     string  `json:"label,omitempty"`
	DeadlineS float64 `json:"deadline_s,omitempty"`
	Tenant    string  `json:"tenant,omitempty"`
	Priority  string  `json:"priority,omitempty"`
}

// Normalize fills defaulted fields in place.
func (s *JobSpec) Normalize() {
	s.Program = strings.TrimSpace(s.Program)
	if s.Scale == 0 {
		s.Scale = 1.0
	}
	if s.Label == "" {
		s.Label = s.Program
	}
	s.Tenant = admission.CanonicalTenant(strings.TrimSpace(s.Tenant))
	if c, err := admission.ParseClass(s.Priority); err == nil {
		s.Priority = c.String()
	}
}

// Validate checks the spec against the benchmark table. Call Normalize
// first; a zero Scale is rejected here.
func (s JobSpec) Validate() error {
	if s.Program == "" {
		return fmt.Errorf("workload: job spec has no program")
	}
	if _, err := ByName(s.Program); err != nil {
		return fmt.Errorf("workload: job spec: %w (known: %s)", err, strings.Join(Names(), ", "))
	}
	// NaN must be rejected explicitly: NaN <= 0 is false, so it would
	// sail through the sign checks and poison every downstream model
	// computation. JSON cannot carry NaN/Inf, but the Go API can.
	if math.IsNaN(s.Scale) || math.IsInf(s.Scale, 0) {
		return fmt.Errorf("workload: job spec has non-finite scale %v", s.Scale)
	}
	if s.Scale <= 0 {
		return fmt.Errorf("workload: job spec has non-positive scale %v", s.Scale)
	}
	if math.IsNaN(s.DeadlineS) || math.IsInf(s.DeadlineS, 0) {
		return fmt.Errorf("workload: job spec has non-finite deadline %v", s.DeadlineS)
	}
	if s.DeadlineS < 0 {
		return fmt.Errorf("workload: job spec has negative deadline %v", s.DeadlineS)
	}
	if err := admission.ValidateTenant(s.Tenant); err != nil {
		return fmt.Errorf("workload: job spec: %w", err)
	}
	if _, err := admission.ParseClass(s.Priority); err != nil {
		return fmt.Errorf("workload: job spec: %w", err)
	}
	return nil
}

// Instance materializes the spec as a schedulable instance with the
// given batch position and label. The label overrides the spec's
// display label so a server can stamp instances with unique job IDs.
func (s JobSpec) Instance(id int, label string) (*Instance, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	prog, err := ByName(s.Program)
	if err != nil {
		return nil, err
	}
	if label == "" {
		label = s.Label
	}
	return &Instance{ID: id, Prog: prog, Scale: s.Scale, Label: label}, nil
}

// DecodeJobSpec reads one JSON job spec, rejecting unknown fields so
// client typos (e.g. "dead_line_s") surface as 400s instead of
// silently dropped options. The returned spec is normalized and
// validated.
func DecodeJobSpec(r io.Reader) (JobSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	return decodeJobSpec(dec)
}

// DecodeJobSpecBytes decodes one JSON job spec from an in-memory body
// with exactly DecodeJobSpec's semantics. The spec does not alias b —
// decoding copies string fields — so callers may reuse the buffer.
func DecodeJobSpecBytes(b []byte) (JobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	return decodeJobSpec(dec)
}

func decodeJobSpec(dec *json.Decoder) (JobSpec, error) {
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return JobSpec{}, fmt.Errorf("workload: decoding job spec: %w", err)
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return JobSpec{}, err
	}
	return s, nil
}
