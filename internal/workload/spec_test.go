package workload

import (
	"math"
	"strings"
	"testing"
)

func TestDecodeJobSpec(t *testing.T) {
	s, err := DecodeJobSpec(strings.NewReader(`{"program":"cfd","scale":1.2,"deadline_s":90}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Program != "cfd" || s.Scale != 1.2 || s.Label != "cfd" || s.DeadlineS != 90 {
		t.Fatalf("decoded %+v", s)
	}

	// Defaults, including the admission fields: no tenant means the
	// shared default tenant, no priority means the normal class.
	s, err = DecodeJobSpec(strings.NewReader(`{"program":"lud"}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Scale != 1.0 || s.Label != "lud" || s.Tenant != "default" || s.Priority != "normal" {
		t.Fatalf("defaults not applied: %+v", s)
	}

	// Explicit tenant and priority round the decoder intact (priority
	// canonicalized to lowercase).
	s, err = DecodeJobSpec(strings.NewReader(`{"program":"cfd","tenant":"team-a","priority":"HIGH"}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Tenant != "team-a" || s.Priority != "high" {
		t.Fatalf("admission fields: %+v", s)
	}

	bad := []string{
		`{"program":"nope"}`,                // unknown benchmark
		`{"program":""}`,                    // empty program
		`{}`,                                // no program
		`{"program":"cfd","scale":-1}`,      // negative scale
		`{"program":"cfd","dead":1}`,        // unknown field
		`{"program":"cfd","deadline_s":-5}`, // negative deadline
		`{"program":"cfd","scale":1e309}`,   // float64 range overflow
		`{"program":"cfd","deadline_s":1e309}`,
		`not json`,
		`{"program":"cfd","tenant":"bad tenant"}`, // space in tenant
		`{"program":"cfd","tenant":"a/b"}`,        // slash in tenant
		`{"program":"cfd","priority":"urgent"}`,   // unknown class
		`{"program":"cfd","priority":3}`,          // wrong type
		`{"program":"cfd","tenant":"` + strings.Repeat("x", 65) + `"}`, // too long
	}
	for _, in := range bad {
		if _, err := DecodeJobSpec(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %s", in)
		}
	}
}

// TestJobSpecValidateNonFinite covers the programmatic (non-JSON)
// path: JSON cannot encode NaN or Inf, but a Go caller building a
// JobSpec directly can, and NaN in particular passes a plain `<= 0`
// sign check.
func TestJobSpecValidateNonFinite(t *testing.T) {
	for _, tc := range []JobSpec{
		{Program: "cfd", Scale: math.NaN()},
		{Program: "cfd", Scale: math.Inf(1)},
		{Program: "cfd", Scale: math.Inf(-1)},
		{Program: "cfd", Scale: 1, DeadlineS: math.NaN()},
		{Program: "cfd", Scale: 1, DeadlineS: math.Inf(1)},
		{Program: "cfd", Scale: 1, DeadlineS: math.Inf(-1)},
	} {
		spec := tc
		spec.Normalize()
		if err := spec.Validate(); err == nil {
			t.Errorf("Validate accepted non-finite spec %+v", tc)
		}
		if _, err := tc.Instance(0, "job-000000"); err == nil {
			t.Errorf("Instance accepted non-finite spec %+v", tc)
		}
	}
}

func TestJobSpecInstance(t *testing.T) {
	s := JobSpec{Program: "hotspot", Scale: 1.1, Label: "mine"}
	in, err := s.Instance(3, "job-000003")
	if err != nil {
		t.Fatal(err)
	}
	if in.ID != 3 || in.Label != "job-000003" || in.Scale != 1.1 || in.Prog == nil || in.Prog.Name != "hotspot" {
		t.Fatalf("instance %+v", in)
	}
	// Empty override keeps the spec label.
	in, err = s.Instance(0, "")
	if err != nil {
		t.Fatal(err)
	}
	if in.Label != "mine" {
		t.Fatalf("label %q", in.Label)
	}
	if _, err := (JobSpec{Program: "x", Scale: 1}).Instance(0, ""); err == nil {
		t.Error("unknown program accepted")
	}
}
