package workload

import (
	"fmt"
	"math/rand"

	"corun/internal/kernelsim"
)

// GenOptions parameterizes the synthetic workload generator.
type GenOptions struct {
	// N is the number of instances to generate.
	N int
	// Seed drives the generator deterministically.
	Seed int64

	// GPUPreferredFrac is the approximate fraction of programs that
	// run faster on the GPU (the Rodinia batch has 6/8); the rest are
	// CPU-leaning or balanced. Zero defaults to 0.7.
	GPUPreferredFrac float64
}

// Generate produces a batch of synthetic programs with plausible
// parameter ranges: total work sized for tens of simulated seconds,
// device efficiencies spanning 2-3x preferences in either direction,
// one to three phases mixing compute and memory intensity, and latency
// sensitivities in the measured range of the calibrated benchmarks.
// It is the robustness-study workload source: results on the eight
// calibrated programs generalize only if they survive random batches.
func Generate(opts GenOptions) ([]*Instance, error) {
	if opts.N <= 0 {
		return nil, fmt.Errorf("workload: Generate needs N > 0, got %d", opts.N)
	}
	frac := opts.GPUPreferredFrac
	if frac == 0 {
		frac = 0.7
	}
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("workload: GPUPreferredFrac %v outside [0,1]", frac)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	out := make([]*Instance, opts.N)
	for i := range out {
		p, err := genProgram(rng, i, frac)
		if err != nil {
			return nil, err
		}
		out[i] = &Instance{ID: i, Prog: p, Scale: 1, Label: p.Name}
	}
	return out, nil
}

func genProgram(rng *rand.Rand, idx int, gpuFrac float64) (*kernelsim.Program, error) {
	// Target standalone times in the 20-80 s range on the preferred
	// device at max frequency, like the paper's inputs ("large enough
	// ... at least 20 seconds").
	targetTime := 20 + 60*rng.Float64()
	work := 100.0

	// Preference: the preferred device's rate fixes its efficiency;
	// the other device is 1.3-3x slower (or within 20% for balanced
	// programs).
	prefGPU := rng.Float64() < gpuFrac
	ratio := 1.3 + 1.7*rng.Float64()
	if rng.Float64() < 0.15 {
		ratio = 1.0 + 0.2*rng.Float64() // balanced
	}
	var cpuEff, gpuEff float64
	if prefGPU {
		gpuEff = work / targetTime / 1.25
		cpuEff = work / (targetTime * ratio) / 3.6
	} else {
		cpuEff = work / targetTime / 3.6
		gpuEff = work / (targetTime * ratio) / 1.25
	}

	// Phases: 1-3, memory intensity drawn so that peak demand on the
	// preferred device spans quiet (1 GB/s) to heavy (9 GB/s).
	nPhases := 1 + rng.Intn(3)
	fracs := make([]float64, nPhases)
	sum := 0.0
	for i := range fracs {
		fracs[i] = 0.2 + rng.Float64()
		sum += fracs[i]
	}
	prefRate := gpuEff * 1.25
	if !prefGPU {
		prefRate = cpuEff * 3.6
	}
	phases := make([]kernelsim.Phase, nPhases)
	for i := range phases {
		targetBW := 1 + 8*rng.Float64()
		phases[i] = kernelsim.Phase{
			Frac:       fracs[i] / sum,
			BytesPerOp: targetBW / prefRate,
		}
	}

	p := &kernelsim.Program{
		Name:    fmt.Sprintf("synth%02d", idx),
		Work:    100,
		CPUEff:  cpuEff,
		GPUEff:  gpuEff,
		CPUSens: 0.15 + 0.35*rng.Float64(),
		GPUSens: 0.03 + 0.17*rng.Float64(),
		Phases:  phases,
	}
	// Occasionally generate a latency-sensitive outlier like dwt2d.
	if rng.Float64() < 0.1 {
		p.CPUSens = 0.9 + 0.6*rng.Float64()
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
