package journal

import (
	"runtime"
	"testing"
	"time"

	"corun/internal/fault"
)

// openInterval opens a journal with the interval-fsync loop running on
// a short timer.
func openInterval(t *testing.T, faults *fault.Registry) *Journal {
	t.Helper()
	j, _, _, err := Open(Options{
		Dir:           t.TempDir(),
		Fsync:         FsyncInterval,
		FsyncInterval: time.Millisecond,
		Faults:        faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// waitClosed asserts ch closes within a timeout.
func waitClosed(t *testing.T, ch <-chan struct{}, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatalf("%s not closed", what)
	}
}

// TestIntervalLoopStopsOnClose pins the fsync-timer lifecycle: Close
// must stop the interval goroutine (and its ticker) even while the
// loop is actively syncing.
func TestIntervalLoopStopsOnClose(t *testing.T) {
	j := openInterval(t, nil)
	if err := j.Append(jobRecord("job-000001")); err != nil {
		t.Fatal(err)
	}
	// Let the timer fire at least once so Close races a live loop.
	time.Sleep(5 * time.Millisecond)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	waitClosed(t, j.intervalDone, "interval loop done channel")
	// Close is idempotent and must not hang on the already-stopped loop.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIntervalLoopStopsWhenFsyncFails is the degraded-mode shape: the
// interval syncer keeps hitting fsync failures (as it would while the
// server's breaker is open), and Close must still stop it instead of
// leaking the goroutine and ticker. Goroutine-count stability across
// many journal lifetimes is the leak check.
func TestIntervalLoopStopsWhenFsyncFails(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		faults := fault.NewRegistry()
		if err := faults.ArmSpec("journal/fsync=error(every=1)"); err != nil {
			t.Fatal(err)
		}
		j := openInterval(t, faults)
		if err := j.Append(jobRecord("job-000001")); err != nil {
			t.Fatal(err)
		}
		// Give the timer a chance to fire into the armed failpoint so
		// the loop is mid-failure when Close lands.
		time.Sleep(3 * time.Millisecond)
		// Close flushes and fsyncs one final time; with the failpoint
		// still armed that final sync may legitimately error — the
		// contract under test is termination, not a clean sync.
		_ = j.Close()
		waitClosed(t, j.intervalDone, "interval loop done channel")
	}
	// The interval goroutines must all be gone. Allow slack for
	// unrelated runtime goroutines; 20 leaked loops would exceed it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after 20 journal lifetimes",
				before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
