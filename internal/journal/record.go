// Package journal is corund's durability layer: an append-only
// write-ahead log of CRC32-framed, length-prefixed records, plus
// snapshot-with-compaction and crash recovery. Every externally
// acknowledged state change of the daemon — a job admitted, a job
// lifecycle transition, a power-cap change, a policy change — is one
// Record appended to the log; replaying snapshot + log tail rebuilds
// the full server state after a crash or redeploy.
//
// Durability is tunable (FsyncAlways | FsyncInterval | FsyncNever)
// with group commit: concurrent appenders waiting on the same fsync
// share one syscall. Once the log outgrows a size threshold the
// journal writes an atomic snapshot of the materialized State and
// truncates the log. Recovery is tolerant of a torn or corrupt tail
// record — the bad suffix is truncated, never fatal — because a torn
// final write is the expected crash artifact of an append-only log.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"time"
)

// Type tags a Record with the state change it captures.
type Type string

// The journaled event types. A submitted record carries the job's
// full admission-time fields; a state record carries the job's full
// post-transition view (so replay is a plain replace, idempotent
// under re-delivery); cap and policy records carry the new value.
const (
	TypeJobSubmitted  Type = "job_submitted"
	TypeJobState      Type = "job_state"
	TypeCapChanged    Type = "cap_changed"
	TypePolicyChanged Type = "policy_changed"
)

// JobRecord is the journaled view of one job: the admission fields
// plus whatever outcome fields the job has accumulated. It mirrors
// the server's externally visible job record so recovery can restore
// it bit-for-bit.
type JobRecord struct {
	ID          string    `json:"id"`
	Program     string    `json:"program,omitempty"`
	Scale       float64   `json:"scale,omitempty"`
	Label       string    `json:"label,omitempty"`
	DeadlineS   float64   `json:"deadline_s,omitempty"`
	Tenant      string    `json:"tenant,omitempty"`
	Priority    string    `json:"priority,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	ArrivedSimS float64   `json:"arrived_sim_s,omitempty"`

	State string `json:"state,omitempty"`
	Epoch int    `json:"epoch,omitempty"`

	StartedSimS         float64 `json:"started_sim_s,omitempty"`
	FinishedSimS        float64 `json:"finished_sim_s,omitempty"`
	PredictedFinishSimS float64 `json:"predicted_finish_sim_s,omitempty"`
	ResponseS           float64 `json:"response_s,omitempty"`

	Device      string `json:"device,omitempty"`
	Partner     string `json:"partner,omitempty"`
	DeadlineMet *bool  `json:"deadline_met,omitempty"`
	Error       string `json:"error,omitempty"`
}

// Record is one journal entry. Seq is assigned by the journal at
// append time, strictly increasing across snapshots; recovery uses it
// to skip log records already folded into a snapshot.
type Record struct {
	Seq  uint64 `json:"seq,omitempty"`
	Type Type   `json:"type"`

	// Job carries the full job view for TypeJobSubmitted and
	// TypeJobState records.
	Job *JobRecord `json:"job,omitempty"`

	// CapWatts is the new power cap for TypeCapChanged (pointer so an
	// explicit 0 = uncapped survives encoding).
	CapWatts *float64 `json:"cap_watts,omitempty"`

	// PP0Watts and PP1Watts are the per-plane caps accompanying a
	// TypeCapChanged record (nil = that plane unconfigured). Absent on
	// journals written before the domain model existed, which replays
	// as no plane caps.
	PP0Watts *float64 `json:"pp0_watts,omitempty"`
	PP1Watts *float64 `json:"pp1_watts,omitempty"`

	// Policy is the new scheduling policy for TypePolicyChanged.
	Policy string `json:"policy,omitempty"`

	// SimClockS, on TypeJobState records of a finished epoch, is the
	// node's scheduling clock after that epoch; replay keeps the max.
	SimClockS float64 `json:"sim_clock_s,omitempty"`
}

// Validate checks that the record carries the payload its type needs.
func (r Record) Validate() error {
	switch r.Type {
	case TypeJobSubmitted, TypeJobState:
		if r.Job == nil || r.Job.ID == "" {
			return fmt.Errorf("journal: %s record without a job ID", r.Type)
		}
	case TypeCapChanged:
		if r.CapWatts == nil {
			return fmt.Errorf("journal: %s record without a cap", r.Type)
		}
	case TypePolicyChanged:
		if r.Policy == "" {
			return fmt.Errorf("journal: %s record without a policy", r.Type)
		}
	default:
		return fmt.Errorf("journal: unknown record type %q", r.Type)
	}
	return nil
}

// Frame layout: a 4-byte little-endian payload length, a 4-byte
// little-endian IEEE CRC32 of the payload, then the payload (the
// record's JSON encoding). The CRC covers only the payload; a bad
// length is caught by the MaxRecordBytes bound or by the CRC of
// whatever bytes the bogus length selects.
const frameHeader = 8

// MaxRecordBytes bounds one record's payload. Anything larger in the
// length field is corruption, not data — the bound keeps a flipped
// length bit from turning into a multi-gigabyte allocation.
const MaxRecordBytes = 1 << 20

// Framing errors. ErrTornRecord marks an incomplete final frame (the
// classic crash artifact: the process died mid-write); ErrCorrupt
// marks a frame whose bytes are all present but wrong (CRC mismatch,
// absurd length, undecodable payload). Recovery treats both the same
// way — truncate the log from the bad frame on — but callers that
// scan buffers need to tell "feed me more bytes" from "give up".
var (
	ErrTornRecord = errors.New("journal: torn record (short frame)")
	ErrCorrupt    = errors.New("journal: corrupt record")
)

// AppendRecord appends the framed encoding of r to dst and returns
// the extended slice.
func AppendRecord(dst []byte, r Record) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding record: %w", err)
	}
	if len(payload) > MaxRecordBytes {
		return nil, fmt.Errorf("journal: record payload %d bytes exceeds %d", len(payload), MaxRecordBytes)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// DecodeRecord decodes the first framed record in b, returning the
// record and the number of bytes consumed. It never panics on
// arbitrary input: a frame extending past b is ErrTornRecord, and a
// complete frame with a CRC mismatch, oversized length, or payload
// that fails to decode or validate is ErrCorrupt.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHeader {
		return Record{}, 0, ErrTornRecord
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n > MaxRecordBytes {
		return Record{}, 0, fmt.Errorf("%w: length %d exceeds %d", ErrCorrupt, n, MaxRecordBytes)
	}
	if uint32(len(b)-frameHeader) < n {
		return Record{}, 0, ErrTornRecord
	}
	payload := b[frameHeader : frameHeader+int(n)]
	if got := crc32.ChecksumIEEE(payload); got != binary.LittleEndian.Uint32(b[4:8]) {
		return Record{}, 0, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return Record{}, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := r.Validate(); err != nil {
		return Record{}, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return r, frameHeader + int(n), nil
}
