package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func openT(t *testing.T, opts Options) (*Journal, *State, RecoverStats) {
	t.Helper()
	j, st, stats, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, st, stats
}

func TestOpenAppendRecover(t *testing.T) {
	dir := t.TempDir()
	j, st, stats := openT(t, Options{Dir: dir})
	if stats.SnapshotLoaded || stats.RecordsReplayed != 0 || stats.Jobs != 0 {
		t.Fatalf("fresh dir stats %+v", stats)
	}
	if st.CapWatts != nil || len(st.Jobs) != 0 {
		t.Fatalf("fresh state %+v", st)
	}

	if err := j.Append(); err != nil {
		t.Fatalf("empty append: %v", err)
	}
	if err := j.Append(jobRecord("job-000000"), capRecord(18)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypePolicyChanged, Policy: "hcs"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(capRecord(20)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	_, st2, stats2 := openT(t, Options{Dir: dir})
	if stats2.RecordsReplayed != 3 || stats2.TruncatedTailBytes != 0 || stats2.Jobs != 1 {
		t.Fatalf("stats %+v", stats2)
	}
	if st2.CapWatts == nil || *st2.CapWatts != 18 || st2.Policy != "hcs" {
		t.Fatalf("state %+v", st2)
	}
	if _, ok := st2.Job("job-000000"); !ok {
		t.Fatal("job lost")
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	for name, corrupt := range map[string]func([]byte) []byte{
		// The crash artifacts recovery must absorb: a frame cut mid-
		// write, and a complete frame whose bytes rotted.
		"torn":    func(b []byte) []byte { return b[:len(b)-3] },
		"flipped": func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"garbage": func(b []byte) []byte { return append(b, 0xde, 0xad, 0xbe) },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			j, _, _ := openT(t, Options{Dir: dir})
			for i := 0; i < 5; i++ {
				if err := j.Append(jobRecord(fmt.Sprintf("job-%06d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}

			path := filepath.Join(dir, logName)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(b), 0o644); err != nil {
				t.Fatal(err)
			}

			j2, st, stats := openT(t, Options{Dir: dir})
			if stats.TruncatedTailBytes == 0 {
				t.Fatal("no tail truncated")
			}
			want := 5
			if name != "garbage" {
				want = 4 // the final record itself was the casualty
			}
			if len(st.Jobs) != want {
				t.Fatalf("recovered %d jobs, want %d", len(st.Jobs), want)
			}
			// The journal keeps working after the repair, and the next
			// recovery is clean.
			if err := j2.Append(jobRecord("job-000099")); err != nil {
				t.Fatal(err)
			}
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
			_, st3, stats3 := openT(t, Options{Dir: dir})
			if stats3.TruncatedTailBytes != 0 || len(st3.Jobs) != want+1 {
				t.Fatalf("post-repair recovery: %+v, %d jobs", stats3, len(st3.Jobs))
			}
		})
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	var snaps atomic.Int64
	opts := Options{
		Dir:           dir,
		Fsync:         FsyncNever,
		SnapshotBytes: 2048,
		Observer:      Observer{Snapshot: func() { snaps.Add(1) }},
	}
	j, _, _ := openT(t, opts)
	const n = 200
	for i := 0; i < n; i++ {
		if err := j.Append(jobRecord(fmt.Sprintf("job-%06d", i)), capRecord(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if snaps.Load() == 0 {
		t.Fatal("no compaction despite exceeding the threshold")
	}
	if fi, err := os.Stat(filepath.Join(dir, snapName)); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot file: %v", err)
	}
	if fi, err := os.Stat(filepath.Join(dir, logName)); err != nil || fi.Size() > 4096 {
		t.Fatalf("log not compacted: %v bytes", fi.Size())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery = snapshot + tail; everything must be there.
	_, st, stats := openT(t, opts)
	if !stats.SnapshotLoaded {
		t.Fatal("snapshot not loaded")
	}
	if len(st.Jobs) != n {
		t.Fatalf("recovered %d jobs, want %d", len(st.Jobs), n)
	}
	if st.CapWatts == nil || *st.CapWatts != n-1 {
		t.Fatalf("cap %+v", st.CapWatts)
	}
	// Only the records after the last snapshot replay from the log.
	if stats.RecordsReplayed >= 2*n {
		t.Errorf("replayed %d records — compaction did not shorten the log", stats.RecordsReplayed)
	}
}

func TestSnapshotLeftoverLogRecordsSkipped(t *testing.T) {
	// A crash between snapshot rename and log truncate leaves records
	// the snapshot already covers; replay must skip them by sequence
	// number, not double-apply.
	dir := t.TempDir()
	j, _, _ := openT(t, Options{Dir: dir, SnapshotBytes: -1})
	if err := j.Append(jobRecord("job-000000"), capRecord(10)); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, logName)
	if err := j.Append(capRecord(11)); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	tail, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the un-truncated log: pre-snapshot records still in
	// front of the tail.
	pre, err := AppendRecord(nil, Record{Seq: 1, Type: TypeJobSubmitted, Job: &JobRecord{ID: "job-000000", State: "stale"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, append(pre, tail...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, st, stats := openT(t, Options{Dir: dir})
	if stats.RecordsReplayed != 1 {
		t.Fatalf("replayed %d, want just the tail", stats.RecordsReplayed)
	}
	if jr, _ := st.Job("job-000000"); jr.State == "stale" {
		t.Fatal("pre-snapshot record re-applied over the snapshot")
	}
	if st.CapWatts == nil || *st.CapWatts != 11 {
		t.Fatalf("cap %+v", st.CapWatts)
	}
}

func TestCorruptSnapshotIsFatal(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapName), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	var fsyncs, appends atomic.Int64
	j, _, _ := openT(t, Options{
		Dir:   dir,
		Fsync: FsyncAlways,
		Observer: Observer{
			Fsync:  func() { fsyncs.Add(1) },
			Append: func(records, bytes int, _ time.Duration) { appends.Add(int64(records)) },
		},
	})
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := j.Append(jobRecord(fmt.Sprintf("job-%03d%03d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := appends.Load(); got != writers*per {
		t.Fatalf("observed %d appends, want %d", got, writers*per)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Every record an Append acknowledged must recover.
	_, st, _ := openT(t, Options{Dir: dir})
	if len(st.Jobs) != writers*per {
		t.Fatalf("recovered %d jobs, want %d", len(st.Jobs), writers*per)
	}
	t.Logf("group commit: %d records, %d fsyncs", writers*per, fsyncs.Load())
}

func TestFsyncIntervalAndNever(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncInterval, FsyncNever} {
		t.Run(string(pol), func(t *testing.T) {
			dir := t.TempDir()
			j, _, _ := openT(t, Options{Dir: dir, Fsync: pol, FsyncInterval: time.Millisecond})
			for i := 0; i < 10; i++ {
				if err := j.Append(jobRecord(fmt.Sprintf("job-%06d", i))); err != nil {
					t.Fatal(err)
				}
			}
			// Close flushes and fsyncs whatever the policy left behind.
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			_, st, _ := openT(t, Options{Dir: dir})
			if len(st.Jobs) != 10 {
				t.Fatalf("recovered %d jobs", len(st.Jobs))
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"":         FsyncAlways,
		"always":   FsyncAlways,
		" ALWAYS ": FsyncAlways,
		"interval": FsyncInterval,
		"Never\t":  FsyncNever,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %q, %v", in, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestOpenValidation(t *testing.T) {
	if _, _, _, err := Open(Options{}); err == nil {
		t.Error("empty dir accepted")
	}
	if _, _, _, err := Open(Options{Dir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Error("bad fsync policy accepted")
	}
}

func TestAtomicBatch(t *testing.T) {
	// A batch with an invalid record must write nothing.
	dir := t.TempDir()
	j, _, _ := openT(t, Options{Dir: dir})
	if err := j.Append(capRecord(15), Record{Type: "bogus"}); err == nil {
		t.Fatal("bad batch accepted")
	}
	if err := j.Append(capRecord(16)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, st, stats := openT(t, Options{Dir: dir})
	if stats.RecordsReplayed != 1 || st.CapWatts == nil || *st.CapWatts != 16 {
		t.Fatalf("stats %+v cap %+v", stats, st.CapWatts)
	}
}
