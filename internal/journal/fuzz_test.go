package journal

// Fuzz target for the WAL record framing — the bytes the daemon
// trusts after a crash. The seed corpus covers the interesting
// classes (a valid frame, a truncated length, a flipped CRC byte, a
// zero-length payload); additional literal seeds live in
// testdata/fuzz/FuzzDecodeRecord. Properties: DecodeRecord never
// panics on arbitrary input, corrupt or torn input yields an error
// (never a record), and an accepted record validates and survives an
// encode/decode round trip.

import (
	"errors"
	"reflect"
	"testing"
)

func FuzzDecodeRecord(f *testing.F) {
	w := 15.5
	valid, err := AppendRecord(nil, Record{Seq: 7, Type: TypeCapChanged, CapWatts: &w})
	if err != nil {
		f.Fatal(err)
	}
	jobFrame, err := AppendRecord(nil, jobRecord("job-000042"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(jobFrame)
	f.Add(valid[:6])            // truncated length header
	f.Add(valid[:len(valid)-2]) // truncated payload
	flipped := append([]byte(nil), valid...)
	flipped[5] ^= 0xff // flipped CRC byte
	f.Add(flipped)
	f.Add(make([]byte, frameHeader)) // zero-length payload
	f.Add([]byte{})
	f.Add(append(append([]byte(nil), valid...), valid...)) // two frames

	f.Fuzz(func(t *testing.T, b []byte) {
		r, n, err := DecodeRecord(b)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v consumed %d bytes", err, n)
			}
			if !errors.Is(err, ErrTornRecord) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if n < frameHeader || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("decoded record fails validation: %v", err)
		}
		// Accepted records round-trip bit-for-bit through the framing.
		again, err := AppendRecord(nil, r)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		r2, _, err := DecodeRecord(again)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("round trip diverged:\n got %+v\nwant %+v", r2, r)
		}
	})
}
