package journal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"strings"
	"testing"
	"time"
)

func capRecord(w float64) Record {
	return Record{Type: TypeCapChanged, CapWatts: &w}
}

func jobRecord(id string) Record {
	return Record{Type: TypeJobSubmitted, Job: &JobRecord{
		ID: id, Program: "cfd", Scale: 1.25, Label: "nightly", DeadlineS: 90,
		SubmittedAt: time.Date(2026, 8, 6, 12, 0, 0, 123456789, time.UTC),
		ArrivedSimS: 41.5, State: "queued",
	}}
}

func TestRecordRoundTrip(t *testing.T) {
	met := true
	recs := []Record{
		jobRecord("job-000001"),
		{Type: TypeJobState, SimClockS: 77.25, Job: &JobRecord{
			ID: "job-000001", Program: "cfd", State: "done", Epoch: 3,
			StartedSimS: 50, FinishedSimS: 77.25, ResponseS: 35.75,
			Device: "GPU", Partner: "job-000002", DeadlineMet: &met,
		}},
		capRecord(18),
		capRecord(0), // explicit uncapped must survive encoding
		{Type: TypePolicyChanged, Policy: "hcs+"},
	}
	var buf []byte
	for i := range recs {
		recs[i].Seq = uint64(i + 1)
		var err error
		buf, err = AppendRecord(buf, recs[i])
		if err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
	}
	// Decode the concatenated frames back and compare field for field.
	off := 0
	for i := range recs {
		r, n, err := DecodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if !reflect.DeepEqual(r, recs[i]) {
			t.Errorf("record %d round trip:\n got %+v\nwant %+v", i, r, recs[i])
		}
		off += n
	}
	if off != len(buf) {
		t.Errorf("consumed %d of %d bytes", off, len(buf))
	}
}

// TestRecordTenantFields covers the admission fields added for
// multi-tenant scheduling: they round-trip when set and, critically,
// old journals written before the fields existed decode unchanged —
// the fields are omitempty, so a record without tenant/priority
// re-encodes byte-for-byte and replays with both fields empty.
func TestRecordTenantFields(t *testing.T) {
	r := jobRecord("job-000001")
	r.Job.Tenant = "team-a"
	r.Job.Priority = "high"
	buf, err := AppendRecord(nil, r)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Job.Tenant != "team-a" || got.Job.Priority != "high" {
		t.Fatalf("round trip lost admission fields: %+v", got.Job)
	}

	// A pre-field payload (exactly what an old daemon wrote: no tenant,
	// no priority keys) decodes with empty admission fields, and
	// re-encoding it reproduces the original frame bit-for-bit.
	old := jobRecord("job-000002")
	old.Seq = 7
	oldFrame, err := AppendRecord(nil, old)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(oldFrame), "tenant") || strings.Contains(string(oldFrame), "priority") {
		t.Fatalf("empty admission fields leaked into the payload: %s", oldFrame)
	}
	dec, _, err := DecodeRecord(oldFrame)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Job.Tenant != "" || dec.Job.Priority != "" {
		t.Fatalf("pre-field record decoded with admission fields: %+v", dec.Job)
	}
	again, err := AppendRecord(nil, dec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, oldFrame) {
		t.Fatalf("pre-field record did not re-encode bit-for-bit:\n got %s\nwant %s", again, oldFrame)
	}
}

func TestDecodeTornAndCorrupt(t *testing.T) {
	frame, err := AppendRecord(nil, capRecord(15))
	if err != nil {
		t.Fatal(err)
	}

	// Every strict prefix of a frame is torn, never corrupt and never
	// a success: the missing bytes may still be in flight.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := DecodeRecord(frame[:cut]); !errors.Is(err, ErrTornRecord) {
			t.Fatalf("prefix len %d: err %v, want ErrTornRecord", cut, err)
		}
	}

	// Flipping any payload byte must fail the CRC; flipping a CRC byte
	// must too.
	for _, i := range []int{4, frameHeader, len(frame) - 1} {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0xff
		if _, _, err := DecodeRecord(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("flipped byte %d: err %v, want ErrCorrupt", i, err)
		}
	}

	// An absurd length field is corruption, not an allocation.
	bad := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(bad[0:4], MaxRecordBytes+1)
	if _, _, err := DecodeRecord(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized length: err %v, want ErrCorrupt", err)
	}

	// A zero-length payload frames fine but decodes to nothing.
	var zero [frameHeader]byte
	if _, _, err := DecodeRecord(zero[:]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("zero-length payload: err %v, want ErrCorrupt", err)
	}

	// A frame holding valid JSON that fails record validation is
	// corrupt too (framing can't vouch for semantics).
	payload := []byte(`{"type":"job_submitted"}`) // no job
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crcOf(payload))
	if _, _, err := DecodeRecord(append(hdr[:], payload...)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("invalid record: err %v, want ErrCorrupt", err)
	}
}

func TestRecordValidate(t *testing.T) {
	w := 15.0
	bad := []Record{
		{},
		{Type: "rollback"},
		{Type: TypeJobSubmitted},
		{Type: TypeJobState, Job: &JobRecord{}},
		{Type: TypeCapChanged},
		{Type: TypePolicyChanged},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("record %d validated", i)
		}
		if _, err := AppendRecord(nil, r); err == nil {
			t.Errorf("record %d encoded", i)
		}
	}
	good := []Record{
		{Type: TypeCapChanged, CapWatts: &w},
		{Type: TypePolicyChanged, Policy: "hcs"},
		{Type: TypeJobState, Job: &JobRecord{ID: "job-000000"}},
	}
	for i, r := range good {
		if err := r.Validate(); err != nil {
			t.Errorf("record %d: %v", i, err)
		}
	}
}

func TestStateApply(t *testing.T) {
	st := NewState()
	if err := st.Apply(jobRecord("job-000000")); err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(jobRecord("job-000001")); err != nil {
		t.Fatal(err)
	}
	// A state transition replaces the job's record and advances the
	// clock monotonically.
	if err := st.Apply(Record{Type: TypeJobState, SimClockS: 99,
		Job: &JobRecord{ID: "job-000000", Program: "cfd", State: "done"}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(Record{Type: TypeJobState, SimClockS: 40,
		Job: &JobRecord{ID: "job-000001", Program: "cfd", State: "failed"}}); err != nil {
		t.Fatal(err)
	}
	if st.SimClockS != 99 {
		t.Errorf("clock %v, want 99 (monotone max)", st.SimClockS)
	}
	if j, ok := st.Job("job-000000"); !ok || j.State != "done" {
		t.Errorf("job0 %+v", j)
	}
	if len(st.Jobs) != 2 {
		t.Fatalf("jobs %d", len(st.Jobs))
	}
	// A transition for a job whose submission record was truncated
	// away still lands (tolerance, not strictness, during replay).
	if err := st.Apply(Record{Type: TypeJobState,
		Job: &JobRecord{ID: "job-000009", State: "running"}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Job("job-000009"); !ok {
		t.Error("orphan transition dropped")
	}

	st.Apply(capRecord(18))
	st.Apply(Record{Type: TypePolicyChanged, Policy: "hcs"})
	if st.CapWatts == nil || *st.CapWatts != 18 || st.Policy != "hcs" {
		t.Errorf("cap/policy %+v", st)
	}

	// Clone detaches deeply.
	c := st.Clone()
	st.Apply(capRecord(25))
	st.Jobs[0].State = "mutated"
	if *c.CapWatts != 18 || c.Jobs[0].State != "done" {
		t.Error("clone shares memory with the original")
	}
	if j, ok := c.Job("job-000009"); !ok || j.State != "running" {
		t.Error("clone index broken")
	}
}

func TestApplyRejectsUnknownType(t *testing.T) {
	st := NewState()
	if err := st.Apply(Record{Type: "merge"}); err == nil || !strings.Contains(err.Error(), "unknown record type") {
		t.Errorf("err %v", err)
	}
}

func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
