package journal

// Benchmarks for the journal hot paths: the per-append cost under
// each fsync policy (the daemon's submission latency floor), batched
// group appends (the per-epoch transition write), and recovery
// replay (the daemon's restart time). Run via `make bench`.

import (
	"fmt"
	"testing"
)

func benchJournal(b *testing.B, pol FsyncPolicy) *Journal {
	b.Helper()
	// Compaction off so the benchmark measures appends, not snapshots.
	j, _, _, err := Open(Options{Dir: b.TempDir(), Fsync: pol, SnapshotBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { j.Close() })
	return j
}

func BenchmarkAppend(b *testing.B) {
	for _, pol := range []FsyncPolicy{FsyncNever, FsyncInterval, FsyncAlways} {
		b.Run(string(pol), func(b *testing.B) {
			j := benchJournal(b, pol)
			rec := jobRecord("job-000000")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := j.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAppendBatch is the epoch-transition shape: one Append call
// carrying a whole batch of state records, amortizing the fsync.
func BenchmarkAppendBatch(b *testing.B) {
	const batch = 16
	j := benchJournal(b, FsyncAlways)
	recs := make([]Record, batch)
	for i := range recs {
		recs[i] = jobRecord(fmt.Sprintf("job-%06d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append(recs...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendParallel exercises group commit: concurrent
// appenders under FsyncAlways should share fsyncs instead of paying
// one syscall each.
func BenchmarkAppendParallel(b *testing.B) {
	j := benchJournal(b, FsyncAlways)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		rec := jobRecord("job-000001")
		for pb.Next() {
			if err := j.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEncodeRecord(b *testing.B) {
	rec := jobRecord("job-000000")
	rec.Seq = 42
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendRecord(buf[:0], rec)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRecord(b *testing.B) {
	rec := jobRecord("job-000000")
	rec.Seq = 42
	frame, err := AppendRecord(nil, rec)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeRecord(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecover measures replaying a 1k-record log from scratch —
// the restart cost of a daemon that crashed before its first
// compaction.
func BenchmarkRecover(b *testing.B) {
	dir := b.TempDir()
	j, _, _, err := Open(Options{Dir: dir, Fsync: FsyncNever, SnapshotBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1024; i++ {
		if err := j.Append(jobRecord(fmt.Sprintf("job-%06d", i))); err != nil {
			b.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, st, _, err := Open(Options{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if len(st.Jobs) != 1024 {
			b.Fatalf("recovered %d jobs", len(st.Jobs))
		}
		j.Close()
	}
}
