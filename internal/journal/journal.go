package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"corun/internal/fault"
)

// The journal's failpoint sites (internal/fault). SiteAppend is
// checked at the top of Append before anything is written, so an
// injected error there is safe to retry with a fresh Append;
// SiteFsync is checked in place of the fsync syscall, after the
// frames reached the log, so its failures surface as *SyncError and
// must be retried with Sync; SiteSnapshot fails a compaction cycle.
const (
	SiteAppend   = "journal/append"
	SiteFsync    = "journal/fsync"
	SiteSnapshot = "journal/snapshot"
)

// FsyncPolicy selects when appends are forced to stable storage.
type FsyncPolicy string

// The fsync policies. Always makes every Append block until its
// records are fsynced (group commit shares the syscall across
// concurrent appenders); Interval fsyncs on a background timer,
// bounding loss to one interval; Never leaves flushing to the OS —
// a process crash loses nothing, a machine crash loses what the
// kernel had not written back.
const (
	FsyncAlways   FsyncPolicy = "always"
	FsyncInterval FsyncPolicy = "interval"
	FsyncNever    FsyncPolicy = "never"
)

// ParseFsyncPolicy normalizes a policy name; empty means FsyncAlways.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch p := FsyncPolicy(strings.ToLower(strings.TrimSpace(s))); p {
	case "":
		return FsyncAlways, nil
	case FsyncAlways, FsyncInterval, FsyncNever:
		return p, nil
	default:
		return "", fmt.Errorf("journal: unknown fsync policy %q (valid: %s | %s | %s)",
			s, FsyncAlways, FsyncInterval, FsyncNever)
	}
}

// Observer receives journal events for instrumentation. All fields
// are optional; callbacks run on the appending goroutine and must be
// cheap and non-blocking.
type Observer struct {
	// Append reports one Append call: records written, framed bytes,
	// and the call's latency (including any group-commit fsync wait).
	Append func(records, bytes int, latency time.Duration)
	// Fsync reports one fsync syscall on the log.
	Fsync func()
	// Snapshot reports one snapshot-plus-compaction cycle.
	Snapshot func()
	// SnapshotError reports a failed threshold-triggered compaction.
	// Compaction is maintenance — the appended records are already
	// governed by the fsync policy — so Append reports the failure
	// here instead of returning it, and the next append past the
	// threshold retries.
	SnapshotError func(error)
}

// Options configures Open.
type Options struct {
	// Dir is the data directory; it is created if missing. The journal
	// owns Dir/wal.log and Dir/snapshot.json.
	Dir string

	// Fsync is the durability policy; default FsyncAlways.
	Fsync FsyncPolicy

	// FsyncInterval is the FsyncInterval timer period; default 100ms.
	FsyncInterval time.Duration

	// SnapshotBytes is the log size that triggers snapshot-plus-
	// compaction; default 4 MiB, negative disables compaction.
	SnapshotBytes int64

	// Observer hooks instrumentation into appends and fsyncs.
	Observer Observer

	// Faults is the failpoint registry checked at the journal's
	// injection sites (SiteAppend, SiteFsync, SiteSnapshot); nil uses
	// fault.Default, which is free while disarmed.
	Faults *fault.Registry
}

// RecoverStats reports what Open found and repaired.
type RecoverStats struct {
	// SnapshotLoaded reports whether a snapshot file seeded the state.
	SnapshotLoaded bool
	// RecordsReplayed counts log records applied on top of the
	// snapshot (records already covered by the snapshot are skipped).
	RecordsReplayed int
	// TruncatedTailBytes is the size of the torn or corrupt log
	// suffix that recovery cut off; 0 for a clean log.
	TruncatedTailBytes int64
	// Jobs is the number of jobs in the recovered state.
	Jobs int
}

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("journal: closed")

// SyncError reports a durability failure after an append's frames
// reached the log: the records are written (and applied to the
// mirror) but not yet known stable. The caller must re-drive
// durability with Sync rather than re-append — a second Append would
// duplicate the records.
type SyncError struct{ Err error }

// Error implements error.
func (e *SyncError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying failure.
func (e *SyncError) Unwrap() error { return e.Err }

const (
	logName  = "wal.log"
	snapName = "snapshot.json"
)

// Journal is an open write-ahead log. All methods are safe for
// concurrent use.
type Journal struct {
	opts Options
	dir  string

	mu       sync.Mutex // writer state: buffer, seq, mirror
	f        *os.File
	bw       *bufio.Writer
	seq      uint64 // last assigned sequence number
	logBytes int64  // log size including still-buffered bytes
	state    *State // replay mirror, source of snapshots
	encBuf   []byte // frame-encoding scratch, reused across Appends
	closed   bool

	syncMu  sync.Mutex    // serializes fsync and compaction
	durable atomic.Uint64 // last seq known flushed and fsynced

	stopInterval chan struct{}
	intervalDone chan struct{}
}

// Open recovers the journal in opts.Dir — loading the snapshot if
// present, replaying the log tail, and truncating a torn or corrupt
// final record — and returns the open journal, the recovered state
// (an independent copy), and recovery statistics.
func Open(opts Options) (*Journal, *State, RecoverStats, error) {
	var stats RecoverStats
	if opts.Dir == "" {
		return nil, nil, stats, errors.New("journal: no directory")
	}
	if opts.Fsync == "" {
		opts.Fsync = FsyncAlways
	}
	if _, err := ParseFsyncPolicy(string(opts.Fsync)); err != nil {
		return nil, nil, stats, err
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 100 * time.Millisecond
	}
	if opts.SnapshotBytes == 0 {
		opts.SnapshotBytes = 4 << 20
	}
	if opts.Faults == nil {
		opts.Faults = fault.Default
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, stats, fmt.Errorf("journal: %w", err)
	}

	st := NewState()
	var lastSeq uint64
	snapPath := filepath.Join(opts.Dir, snapName)
	if b, err := os.ReadFile(snapPath); err == nil {
		var sf snapshotFile
		// A corrupt snapshot is not recoverable by truncation — it is
		// the compacted history — so unlike a torn log tail it is
		// fatal.
		if err := json.Unmarshal(b, &sf); err != nil {
			return nil, nil, stats, fmt.Errorf("journal: corrupt snapshot %s: %w", snapPath, err)
		}
		if sf.State != nil {
			st = sf.State
			st.reindex()
		}
		lastSeq = sf.LastSeq
		stats.SnapshotLoaded = true
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, stats, fmt.Errorf("journal: %w", err)
	}

	f, err := os.OpenFile(filepath.Join(opts.Dir, logName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, stats, fmt.Errorf("journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, stats, fmt.Errorf("journal: reading log: %w", err)
	}
	off := 0
	for off < len(data) {
		r, n, err := DecodeRecord(data[off:])
		if err != nil {
			// Torn or corrupt tail: every frame past this point is
			// unframed noise, so cut the log here and carry on from
			// the last good record.
			stats.TruncatedTailBytes = int64(len(data) - off)
			if err := f.Truncate(int64(off)); err != nil {
				f.Close()
				return nil, nil, stats, fmt.Errorf("journal: truncating torn tail: %w", err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, nil, stats, fmt.Errorf("journal: %w", err)
			}
			break
		}
		if r.Seq > lastSeq {
			if err := st.Apply(r); err != nil {
				f.Close()
				return nil, nil, stats, err
			}
			lastSeq = r.Seq
			stats.RecordsReplayed++
		}
		off += n
	}
	if _, err := f.Seek(int64(off), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, stats, fmt.Errorf("journal: %w", err)
	}
	stats.Jobs = len(st.Jobs)

	j := &Journal{
		opts:     opts,
		dir:      opts.Dir,
		f:        f,
		bw:       bufio.NewWriter(f),
		seq:      lastSeq,
		logBytes: int64(off),
		state:    st,
	}
	j.durable.Store(lastSeq)
	if opts.Fsync == FsyncInterval {
		j.stopInterval = make(chan struct{})
		j.intervalDone = make(chan struct{})
		go j.intervalLoop()
	}
	return j, st.Clone(), stats, nil
}

// snapshotFile is the on-disk snapshot document.
type snapshotFile struct {
	Version int    `json:"version"`
	LastSeq uint64 `json:"last_seq"`
	State   *State `json:"state"`
}

// Append journals the records as one group: sequence numbers are
// assigned, all frames are written together, and — under FsyncAlways
// — the call blocks until they are on stable storage. Concurrent
// Appends waiting on durability share one fsync (group commit).
// Either every record in the call is written or none is.
//
// Errors come in two classes: a *SyncError means the frames reached
// the log but durability failed (retry with Sync); any other error
// means nothing was written (retry with Append, if at all).
func (j *Journal) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	if err := j.opts.Faults.Hit(SiteAppend); err != nil {
		return err
	}
	start := time.Now()
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	// Encode every frame before writing any, so a bad record cannot
	// leave a partial batch in the log. The scratch buffer lives on the
	// journal and is reused across Appends — encoding is under j.mu, so
	// no two Appends can hold it at once.
	startSeq := j.seq
	buf := j.encBuf[:0]
	var err error
	for i := range recs {
		j.seq++
		recs[i].Seq = j.seq
		buf, err = AppendRecord(buf, recs[i])
		if err != nil {
			j.seq = startSeq
			j.encBuf = buf
			j.mu.Unlock()
			return err
		}
	}
	j.encBuf = buf
	if _, err := j.bw.Write(buf); err != nil {
		j.mu.Unlock()
		return fmt.Errorf("journal: write: %w", err)
	}
	j.logBytes += int64(len(buf))
	for i := range recs {
		// The mirror only sees records that passed Validate in
		// AppendRecord, so Apply cannot fail here.
		_ = j.state.Apply(recs[i])
	}
	target := j.seq
	needSnap := j.opts.SnapshotBytes > 0 && j.logBytes >= j.opts.SnapshotBytes
	j.mu.Unlock()

	if j.opts.Fsync == FsyncAlways {
		err = j.syncTo(target)
	}
	if err == nil && needSnap {
		// Compaction failure does not fail the append: the records are
		// already as durable as the fsync policy promises, and a caller
		// retrying an "append error" would duplicate them. The failure
		// is reported, and the next append past the threshold retries.
		if cerr := j.Compact(); cerr != nil {
			if obs := j.opts.Observer.SnapshotError; obs != nil {
				obs(cerr)
			}
		}
	}
	if obs := j.opts.Observer.Append; obs != nil {
		obs(len(recs), len(buf), time.Since(start))
	}
	return err
}

// Sync flushes and fsyncs everything appended so far, regardless of
// the fsync policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	target := j.seq
	j.mu.Unlock()
	return j.syncTo(target)
}

// DurableSeq returns the highest sequence number known flushed and
// fsynced — the durability watermark an acknowledged write can be
// checked against. Safe for concurrent use.
func (j *Journal) DurableSeq() uint64 { return j.durable.Load() }

// LastSeq returns the highest sequence number assigned so far
// (appended, though not necessarily durable yet).
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// syncTo makes every record up to target durable. The double-checked
// durable watermark is the group commit: an appender that arrives
// while another's fsync is in flight blocks on syncMu, and by the
// time it gets the lock that fsync usually covered its records too,
// so it returns without a second syscall.
func (j *Journal) syncTo(target uint64) error {
	if j.durable.Load() >= target {
		return nil
	}
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	if j.durable.Load() >= target {
		return nil
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	err := j.bw.Flush()
	flushed := j.seq
	f := j.f
	j.mu.Unlock()
	if err != nil {
		return &SyncError{Err: fmt.Errorf("journal: flush: %w", err)}
	}
	if err := j.opts.Faults.Hit(SiteFsync); err != nil {
		return &SyncError{Err: err}
	}
	if err := f.Sync(); err != nil {
		return &SyncError{Err: fmt.Errorf("journal: fsync: %w", err)}
	}
	j.durable.Store(flushed)
	if obs := j.opts.Observer.Fsync; obs != nil {
		obs()
	}
	return nil
}

// Compact writes an atomic snapshot of the materialized state (write
// to a temp file, fsync, rename, fsync the directory) and truncates
// the log. A crash between the rename and the truncate is safe: the
// leftover log records carry sequence numbers at or below the
// snapshot's LastSeq, and recovery skips them.
func (j *Journal) Compact() error {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.compactLocked()
}

func (j *Journal) compactLocked() error {
	if err := j.opts.Faults.Hit(SiteSnapshot); err != nil {
		return err
	}
	if err := j.bw.Flush(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	b, err := json.Marshal(&snapshotFile{Version: 1, LastSeq: j.seq, State: j.state})
	if err != nil {
		return fmt.Errorf("journal: encoding snapshot: %w", err)
	}
	tmp := filepath.Join(j.dir, snapName+".tmp")
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := tf.Write(b); err == nil {
		err = tf.Sync()
	}
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := syncDir(j.dir); err != nil {
		return err
	}
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: truncating compacted log: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.logBytes = 0
	j.durable.Store(j.seq)
	if obs := j.opts.Observer.Snapshot; obs != nil {
		obs()
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("journal: syncing dir: %w", err)
	}
	return nil
}

// Close flushes, fsyncs, and closes the log; it is idempotent, and
// further appends return ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.mu.Unlock()
	// Stop the interval syncer before taking syncMu: it may be inside
	// Sync, which needs the lock to finish.
	if j.stopInterval != nil {
		close(j.stopInterval)
		<-j.intervalDone
	}
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	j.mu.Lock()
	err := j.bw.Flush()
	j.mu.Unlock()
	if serr := j.f.Sync(); err == nil {
		err = serr
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (j *Journal) intervalLoop() {
	defer close(j.intervalDone)
	t := time.NewTicker(j.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-j.stopInterval:
			return
		case <-t.C:
			// ErrClosed here only means Close won the race; its own
			// final flush-and-sync covers the tail.
			_ = j.Sync()
		}
	}
}
