package journal

import "fmt"

// State is the materialized view a journal replays into: the last
// journaled power cap and policy, the scheduling clock, and every
// job's most recent record in journal order. The journal maintains
// its own State mirror (for snapshots); Open hands callers an
// independent clone to restore from.
type State struct {
	// CapWatts is nil until a cap record has been journaled; a
	// pointer, not a zero value, because 0 is a meaningful cap
	// (uncapped). PP0Watts/PP1Watts mirror the per-plane caps of the
	// last cap record (nil = plane unconfigured).
	CapWatts  *float64     `json:"cap_watts,omitempty"`
	PP0Watts  *float64     `json:"pp0_watts,omitempty"`
	PP1Watts  *float64     `json:"pp1_watts,omitempty"`
	Policy    string       `json:"policy,omitempty"`
	SimClockS float64      `json:"sim_clock_s,omitempty"`
	Jobs      []*JobRecord `json:"jobs,omitempty"`

	byID map[string]int // Jobs index, rebuilt on decode
}

// NewState returns an empty state ready for Apply.
func NewState() *State {
	return &State{byID: map[string]int{}}
}

// reindex rebuilds the job index after the struct was populated by
// JSON decoding (the index is derived, never serialized).
func (st *State) reindex() {
	st.byID = map[string]int{}
	for i, j := range st.Jobs {
		st.byID[j.ID] = i
	}
}

// Apply folds one record into the state. Both submitted and state
// records carry the job's full view, so applying is a plain replace:
// replay is idempotent and tolerates a transition arriving for a job
// whose submission record was lost to a truncated tail.
func (st *State) Apply(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	switch r.Type {
	case TypeJobSubmitted, TypeJobState:
		jr := *r.Job
		if i, ok := st.byID[jr.ID]; ok {
			st.Jobs[i] = &jr
		} else {
			st.byID[jr.ID] = len(st.Jobs)
			st.Jobs = append(st.Jobs, &jr)
		}
		if r.SimClockS > st.SimClockS {
			st.SimClockS = r.SimClockS
		}
	case TypeCapChanged:
		v := *r.CapWatts
		st.CapWatts = &v
		// Each cap record carries the full cap state, so the planes
		// replace too: a record without them clears any prior caps.
		st.PP0Watts = copyFloat(r.PP0Watts)
		st.PP1Watts = copyFloat(r.PP1Watts)
	case TypePolicyChanged:
		st.Policy = r.Policy
	default:
		return fmt.Errorf("journal: unknown record type %q", r.Type)
	}
	return nil
}

func copyFloat(p *float64) *float64 {
	if p == nil {
		return nil
	}
	v := *p
	return &v
}

// Job returns the most recent record for one job ID.
func (st *State) Job(id string) (JobRecord, bool) {
	i, ok := st.byID[id]
	if !ok {
		return JobRecord{}, false
	}
	return *st.Jobs[i], true
}

// Clone returns an independent deep copy, detaching the caller from
// the journal's internal replay mirror (which keeps mutating as
// records are appended).
func (st *State) Clone() *State {
	out := &State{
		Policy:    st.Policy,
		SimClockS: st.SimClockS,
		byID:      make(map[string]int, len(st.Jobs)),
		Jobs:      make([]*JobRecord, len(st.Jobs)),
	}
	out.CapWatts = copyFloat(st.CapWatts)
	out.PP0Watts = copyFloat(st.PP0Watts)
	out.PP1Watts = copyFloat(st.PP1Watts)
	for i, jr := range st.Jobs {
		c := *jr
		if jr.DeadlineMet != nil {
			b := *jr.DeadlineMet
			c.DeadlineMet = &b
		}
		out.Jobs[i] = &c
		out.byID[c.ID] = i
	}
	return out
}
