package exp

import (
	"fmt"
	"io"

	"corun/internal/online"
	"corun/internal/units"
)

// OnlineRow is one serving policy's outcome on the arrival stream.
type OnlineRow struct {
	Policy       string
	Done         units.Seconds
	MeanResponse units.Seconds
	MaxResponse  units.Seconds
	EnergyJ      float64
	Epochs       int
}

// OnlineResult is the arrival-driven serving study (EX-ONL): one
// bursty stream, each policy scheduling every epoch's queue.
type OnlineResult struct {
	Jobs int
	Rows []OnlineRow
}

// Online runs the study: 24 jobs, ~20 s mean inter-arrival gaps, 15 W.
func (s *Suite) Online() (*OnlineResult, error) {
	arrivals, err := online.GenerateArrivals(24, 20, 42)
	if err != nil {
		return nil, err
	}
	res := &OnlineResult{Jobs: len(arrivals)}
	for _, pol := range []online.Policy{
		online.PolicyHCSPlus, online.PolicyHCS, online.PolicyDefault, online.PolicyRandom,
	} {
		r, err := online.Serve(online.Options{
			Cfg: s.Cfg, Mem: s.Mem, Char: s.Char, Cap: 15,
			Policy: pol, Seed: 1,
		}, arrivals)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, OnlineRow{
			Policy:       pol.String(),
			Done:         r.Done,
			MeanResponse: r.MeanResponse,
			MaxResponse:  r.MaxResponse,
			EnergyJ:      r.EnergyJ,
			Epochs:       r.Epochs,
		})
	}
	return res, nil
}

// WriteText renders the study.
func (r *OnlineResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%d arriving jobs, 15 W cap, epoch scheduling:\n", r.Jobs); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-8s %8s %12s %12s %10s %7s\n",
		"policy", "done(s)", "mean resp(s)", "max resp(s)", "energy(J)", "epochs"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "  %-8s %8.1f %12.1f %12.1f %10.0f %7d\n",
			row.Policy, float64(row.Done), float64(row.MeanResponse),
			float64(row.MaxResponse), row.EnergyJ, row.Epochs); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "per-epoch co-scheduling cuts job latency, completion time, and energy at once.")
	return err
}
