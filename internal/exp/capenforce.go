package exp

import (
	"fmt"
	"io"

	"corun/internal/core"
	"corun/internal/sim"
	"corun/internal/units"
	"corun/internal/workload"
)

// CapEnforceRow is one enforcement mechanism's outcome.
type CapEnforceRow struct {
	Mechanism  string
	Makespan   units.Seconds
	AvgPower   units.Watts
	Violations int
	MaxExcess  units.Watts
}

// CapEnforceResult compares the three ways a power cap can be met
// (section VII's hardware/software/hybrid spectrum, cf. Zhang &
// Hoffmann): model-based planning (HCS+ picks frequencies that fit by
// prediction), a reactive software governor, and RAPL-style hardware
// clamping — all on the same 8-program batch at 15 W.
type CapEnforceResult struct {
	Cap  units.Watts
	Rows []CapEnforceRow
}

// CapEnforcement runs the comparison.
func (s *Suite) CapEnforcement() (*CapEnforceResult, error) {
	const cap = 15
	batch := workload.Batch8()
	cx, _, err := s.context(batch, cap)
	if err != nil {
		return nil, err
	}
	res := &CapEnforceResult{Cap: cap}
	add := func(name string, r *sim.Result, err error) error {
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, CapEnforceRow{
			Mechanism:  name,
			Makespan:   r.Makespan,
			AvgPower:   r.AvgPower,
			Violations: r.CapViolations,
			MaxExcess:  r.MaxExcess,
		})
		return nil
	}

	// Model-based planning: HCS+ chooses cap-feasible frequencies.
	plan, _, err := cx.HCSPlus(core.HCSOptions{}, core.RefineOptions{Seed: 7})
	if err != nil {
		return nil, err
	}
	planned, err := cx.Execute(plan, batch, s.execOptions(cap))
	if err := add("planned (HCS+)", planned, err); err != nil {
		return nil, err
	}

	// Reactive software governor on the same dispatch order: run the
	// HCS+ queues but let the biased governor pick frequencies.
	var cpuQ, gpuQ []*workload.Instance
	for _, j := range plan.CPUOrder {
		cpuQ = append(cpuQ, batch[j])
	}
	for _, j := range plan.GPUOrder {
		gpuQ = append(gpuQ, batch[j])
	}
	reactive, err := sim.Run(sim.Options{
		Cfg: s.Cfg, Mem: s.Mem, PowerCap: cap,
		Governor: &sim.BiasedGovernor{Cap: cap, Bias: sim.GPUBiased},
	}, sim.NewQueueDispatcher(cpuQ, gpuQ, nil))
	if err := add("reactive governor", reactive, err); err != nil {
		return nil, err
	}

	// Hardware clamp, no software control at all.
	hard, err := sim.Run(sim.Options{
		Cfg: s.Cfg, Mem: s.Mem, PowerCap: cap,
		HardCap: true, HardCapBias: sim.GPUBiased,
	}, sim.NewQueueDispatcher(cloneBatchQ(batch, plan.CPUOrder), cloneBatchQ(batch, plan.GPUOrder), nil))
	if err := add("hardware clamp", hard, err); err != nil {
		return nil, err
	}
	return res, nil
}

func cloneBatchQ(batch []*workload.Instance, order []int) []*workload.Instance {
	out := make([]*workload.Instance, len(order))
	for i, j := range order {
		out[i] = batch[j]
	}
	return out
}

// WriteText renders the comparison.
func (r *CapEnforceResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "cap %.0f W, same dispatch order, three enforcement mechanisms:\n", float64(r.Cap)); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "  %-18s makespan %7.1fs  avg %5.2f W  violations %3d  max excess %.2f W\n",
			row.Mechanism, float64(row.Makespan), float64(row.AvgPower), row.Violations, float64(row.MaxExcess)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "model-based planning converts the cap into throughput; reactive and\nhardware enforcement pay for their blindness with lower clocks or excursions.")
	return err
}
