package exp

import (
	"fmt"
	"io"
	"math/rand"

	"corun/internal/sim"
	"corun/internal/trace"
	"corun/internal/units"
	"corun/internal/workload"
)

// Fig9Trace is one co-run pair's power trace.
type Fig9Trace struct {
	Label      string
	Trace      *trace.Series
	AvgPower   units.Watts
	Violations int
	MaxExcess  units.Watts
}

// Fig9Result reproduces Figure 9: 1 Hz power samples of four randomly
// selected co-run pairs under a 16 W cap.
type Fig9Result struct {
	Cap    units.Watts
	Traces []Fig9Trace
}

// Figure9 picks four seeded-random pairs (A on CPU, B on GPU), runs
// each co-run at its best cap-feasible frequency pair, and records the
// power samples.
func (s *Suite) Figure9() (*Fig9Result, error) {
	const cap = 16
	batch := workload.Batch8()
	cx, _, err := s.context(batch, cap)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(9)) // figure number as seed
	res := &Fig9Result{Cap: cap}
	for len(res.Traces) < 4 {
		i := rng.Intn(len(batch))
		j := rng.Intn(len(batch))
		if i == j {
			continue
		}
		fp, _, _, ok := cx.ChoosePairFreqs(i, j)
		if !ok {
			continue
		}
		target := &workload.Instance{ID: 0, Prog: batch[i].Prog, Scale: 1, Label: batch[i].Label}
		co := &workload.Instance{ID: 1, Prog: batch[j].Prog, Scale: 1, Label: batch[j].Label}

		opts := sim.Options{
			Cfg: s.Cfg, Mem: s.Mem, PowerCap: cap,
			InitCPUFreq: sim.Pin(fp.CPU), InitGPUFreq: sim.Pin(fp.GPU),
			StopInstance: target,
		}
		var cpuQ, gpuQ []*workload.Instance
		cpuQ = []*workload.Instance{target}
		gpuQ = []*workload.Instance{co}
		r, err := sim.Run(opts, sim.NewQueueDispatcher(cpuQ, gpuQ, nil))
		if err != nil {
			return nil, err
		}
		res.Traces = append(res.Traces, Fig9Trace{
			Label:      fmt.Sprintf("%s-%s", batch[i].Label, batch[j].Label),
			Trace:      r.Power,
			AvgPower:   r.AvgPower,
			Violations: r.CapViolations,
			MaxExcess:  r.MaxExcess,
		})
	}
	return res, nil
}

// WriteText renders summary lines; WriteCSV renders the raw samples.
func (r *Fig9Result) WriteText(w io.Writer) error {
	for _, tr := range r.Traces {
		if _, err := fmt.Fprintf(w, "%-28s avg %5.2f W, %d/%d samples above %.0f W cap (max excess %.2f W)\n",
			tr.Label, float64(tr.AvgPower), tr.Violations, tr.Trace.Len(), float64(r.Cap), float64(tr.MaxExcess)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "[paper: below cap most of the time; excursions typically < 2 W]")
	return err
}

// WriteCSV renders all four traces against a shared time base.
func (r *Fig9Result) WriteCSV(w io.Writer) error {
	series := make([]*trace.Series, len(r.Traces))
	for i, tr := range r.Traces {
		s := trace.NewSeries(tr.Label, "w")
		for k := 0; k < tr.Trace.Len(); k++ {
			sm := tr.Trace.At(k)
			s.MustAdd(sm.Time, sm.Value)
		}
		series[i] = s
	}
	return trace.WriteMultiCSV(w, series...)
}
