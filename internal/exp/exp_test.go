package exp

import (
	"strings"
	"sync"
	"testing"
)

var (
	suiteOnce sync.Once
	suiteVal  *Suite
	suiteErr  error
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() { suiteVal, suiteErr = NewSuite() })
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suiteVal
}

func TestFigure2(t *testing.T) {
	s := testSuite(t)
	r, err := s.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		wantGPU := row.Name != "dwt2d"
		if row.PrefersGPU != wantGPU {
			t.Errorf("%s prefersGPU=%v, want %v", row.Name, row.PrefersGPU, wantGPU)
		}
		// Figure 2's speedups are 1.8x-2.5x on the preferred device.
		if row.SpeedupOnPreferred < 1.5 || row.SpeedupOnPreferred > 3.0 {
			t.Errorf("%s preferred-device speedup %.2f outside [1.5,3.0]", row.Name, row.SpeedupOnPreferred)
		}
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dwt2d") {
		t.Error("render missing program name")
	}
}

func TestExample3(t *testing.T) {
	s := testSuite(t)
	r, err := s.Example3()
	if err != nil {
		t.Fatal(err)
	}
	// Section III anecdotes: heavy pairing hurts dwt2d far more than
	// the mild pairing; GPU co-runners barely notice.
	if r.Heavy < 0.55 || r.Heavy > 1.15 {
		t.Errorf("heavy slowdown %.2f, want ~0.81", r.Heavy)
	}
	if r.Mild < 0.05 || r.Mild > 0.35 {
		t.Errorf("mild slowdown %.2f, want ~0.17", r.Mild)
	}
	if r.HeavyCo > 0.15 || r.MildCo > 0.15 {
		t.Errorf("GPU-side slowdowns %.2f/%.2f, want small", r.HeavyCo, r.MildCo)
	}
	// The enumeration's best/worst spread is large (paper: 2.3x).
	if r.Ratio < 1.6 {
		t.Errorf("best/worst co-schedule ratio %.2f, want > 1.6 (paper 2.3)", r.Ratio)
	}
	if r.NumSchedules < 100 {
		t.Errorf("only %d configurations enumerated", r.NumSchedules)
	}
}

func TestFigures5And6(t *testing.T) {
	s := testSuite(t)
	r, err := s.Figures5And6()
	if err != nil {
		t.Fatal(err)
	}
	if r.CPUMax <= r.GPUMax {
		t.Errorf("CPU max degradation %.2f should exceed GPU max %.2f", r.CPUMax, r.GPUMax)
	}
	if r.CPUMax < 0.40 || r.CPUMax > 0.90 {
		t.Errorf("CPU max %.2f outside the ~65%% region", r.CPUMax)
	}
	if r.GPUMax < 0.25 || r.GPUMax > 0.60 {
		t.Errorf("GPU max %.2f outside the ~45%% region", r.GPUMax)
	}
	// A sizable portion of the contended space leaves the CPU below
	// 20% degradation (paper: about half).
	if r.CPUFracBelow20 < 0.30 {
		t.Errorf("CPU <=20%% fraction %.2f too small", r.CPUFracBelow20)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 5") || !strings.Contains(b.String(), "Figure 6") {
		t.Error("render missing figure headers")
	}
}

func TestFigure7(t *testing.T) {
	s := testSuite(t)
	r, err := s.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range []Fig7Setting{r.High, r.Medium} {
		if len(set.Pairs) != 64 {
			t.Fatalf("%s: %d pairs, want 64", set.Label, len(set.Pairs))
		}
		// The model must be clearly informative: most pairs within 20%
		// (paper: >70%) and a meaningful share within 10%.
		if set.Below20 < 0.55 {
			t.Errorf("%s: only %.0f%% of pairs below 20%% error", set.Label, 100*set.Below20)
		}
		if set.Below10 < 0.30 {
			t.Errorf("%s: only %.0f%% of pairs below 10%% error", set.Label, 100*set.Below10)
		}
		if set.Mean > 0.30 {
			t.Errorf("%s: mean error %.0f%% too large", set.Label, 100*set.Mean)
		}
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if err := r.High.WriteWorst(&b, 3); err != nil {
		t.Fatal(err)
	}
}

func TestFigure8(t *testing.T) {
	s := testSuite(t)
	r, err := s.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pairs) != 64 {
		t.Fatalf("%d pairs, want 64", len(r.Pairs))
	}
	if r.Mean > 0.05 {
		t.Errorf("mean power error %.1f%%, paper reports ~1.92%%", 100*r.Mean)
	}
	if r.MaxErr > 0.10 {
		t.Errorf("max power error %.1f%%, paper reports none above 8%%", 100*r.MaxErr)
	}
	if r.Below2 < 0.40 {
		t.Errorf("only %.0f%% of pairs below 2%% error (paper: 69%%)", 100*r.Below2)
	}
}

func TestFigure9(t *testing.T) {
	s := testSuite(t)
	r, err := s.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Traces) != 4 {
		t.Fatalf("%d traces, want 4", len(r.Traces))
	}
	for _, tr := range r.Traces {
		if tr.Trace.Len() < 5 {
			t.Errorf("%s: only %d samples", tr.Label, tr.Trace.Len())
		}
		if float64(tr.AvgPower) > float64(r.Cap) {
			t.Errorf("%s: average power %v above the cap", tr.Label, tr.AvgPower)
		}
		// Excursions above the cap stay small (paper: < 2 W).
		if float64(tr.MaxExcess) > 2 {
			t.Errorf("%s: max excess %v above 2 W", tr.Label, tr.MaxExcess)
		}
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "time_s,") {
		t.Error("CSV header missing")
	}
}

func TestTableI(t *testing.T) {
	s := testSuite(t)
	r, err := s.TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MinCoRunCPU < row.StandaloneCPU || row.MinCoRunGPU < row.StandaloneGPU {
			t.Errorf("%s: min co-run below standalone", row.Name)
		}
		want := "GPU"
		switch row.Name {
		case "dwt2d":
			want = "CPU"
		case "lud":
			want = "Non"
		}
		if row.Preference.String() != want {
			t.Errorf("%s preference %v, want %s", row.Name, row.Preference, want)
		}
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Preferred") {
		t.Error("render missing preference row")
	}
}

func TestFigure10Shape(t *testing.T) {
	s := testSuite(t)
	r, err := s.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	// Paper ordering: HCS+ >= HCS > Default_G >= Default_C > Random.
	// The refinement optimizes the predicted metric; allow a little
	// execution noise.
	if float64(r.HCSPlus) > float64(r.HCS)*1.02 {
		t.Errorf("HCS+ (%v) worse than HCS (%v)", r.HCSPlus, r.HCS)
	}
	if r.HCS >= r.DefaultG {
		t.Errorf("HCS (%v) should beat Default_G (%v)", r.HCS, r.DefaultG)
	}
	if r.DefaultG > r.DefaultC {
		t.Errorf("Default_G (%v) should not lose to Default_C (%v)", r.DefaultG, r.DefaultC)
	}
	if s10 := r.SpeedupOverRandom(r.HCSPlus); s10 < 0.25 {
		t.Errorf("HCS+ speedup over Random %.0f%%, want >25%% (paper 41%%)", 100*s10)
	}
	if r.Bound > r.HCSPlus {
		t.Errorf("lower bound %v above HCS+ %v", r.Bound, r.HCSPlus)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
}

func TestFigure11Shape(t *testing.T) {
	s := testSuite(t)
	r, err := s.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 16 {
		t.Fatalf("N = %d", r.N)
	}
	// Defaults fall below Random at 16 instances.
	if r.SpeedupOverRandom(r.DefaultG) > 0 {
		t.Errorf("Default_G should degrade vs Random, got %s", pct(r.SpeedupOverRandom(r.DefaultG)))
	}
	if r.SpeedupOverRandom(r.DefaultC) > 0 {
		t.Errorf("Default_C should degrade vs Random, got %s", pct(r.SpeedupOverRandom(r.DefaultC)))
	}
	if sp := r.SpeedupOverRandom(r.HCSPlus); sp < 0.25 {
		t.Errorf("HCS+ speedup %.0f%%, want >25%% (paper 37%%)", 100*sp)
	}
	// The headline: HCS+ over the default schedules by ~46%.
	if gain := float64(r.DefaultG)/float64(r.HCSPlus) - 1; gain < 0.35 {
		t.Errorf("HCS+ over Default_G %.0f%%, want >35%% (paper 46%%)", 100*gain)
	}
}

func TestOverheadTiny(t *testing.T) {
	s := testSuite(t)
	r, err := s.Overhead()
	if err != nil {
		t.Fatal(err)
	}
	// The simulated makespan is hundreds of seconds; the scheduler must
	// be a negligible fraction of it even compared to wall time.
	if r.Fraction > 0.005 {
		t.Errorf("scheduling overhead fraction %.4f too large", r.Fraction)
	}
}

func TestAblations(t *testing.T) {
	s := testSuite(t)
	r, err := s.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 7 {
		t.Fatalf("only %d ablation rows", len(r.Rows))
	}
	byName := map[string]AblationRow{}
	for _, row := range r.Rows {
		byName[row.Name] = row
		if row.Makespan <= 0 {
			t.Errorf("%s: non-positive makespan", row.Name)
		}
	}
	// Removing refinement must not help (it only keeps improvements on
	// the predicted metric; allow small execution-noise slack).
	if row := byName["no-refinement"]; row.DeltaVsFull < -0.05 {
		t.Errorf("removing refinement improved execution by %s; suspicious", pct(-row.DeltaVsFull))
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
}
