package exp

import (
	"fmt"
	"io"

	"corun/internal/core"
	"corun/internal/sim"
	"corun/internal/units"
	"corun/internal/workload"
)

// EnergyRow is one policy's energy accounting.
type EnergyRow struct {
	Policy   string
	Makespan units.Seconds
	EnergyJ  float64
	// EDP is the energy-delay product (J*s), the efficiency metric
	// that rewards both finishing fast and finishing cheap.
	EDP float64
	// AvgPower is EnergyJ / Makespan.
	AvgPower units.Watts
}

// EnergyResult studies the energy dimension the paper's introduction
// motivates (power caps exist "for energy efficiency and reliability"):
// under the same 15 W cap, how do the policies compare in energy and
// energy-delay product, not just makespan?
type EnergyResult struct {
	N    int
	Cap  units.Watts
	Rows []EnergyRow
}

// Energy runs the comparison on the 8-program batch.
func (s *Suite) Energy() (*EnergyResult, error) {
	const cap = 15
	batch := workload.Batch8()
	cx, _, err := s.context(batch, cap)
	if err != nil {
		return nil, err
	}
	opts := s.execOptions(cap)
	res := &EnergyResult{N: len(batch), Cap: cap}

	add := func(policy string, r *sim.Result, err error) error {
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, EnergyRow{
			Policy:   policy,
			Makespan: r.Makespan,
			EnergyJ:  r.EnergyJ,
			EDP:      r.EnergyJ * float64(r.Makespan),
			AvgPower: r.AvgPower,
		})
		return nil
	}

	rnd, err := core.ExecuteRandom(opts, batch, 1, sim.GPUBiased)
	if err := add("Random", rnd, err); err != nil {
		return nil, err
	}
	def, err := core.ExecuteDefault(opts, batch, cx.Oracle, sim.GPUBiased)
	if err := add("Default_G", def, err); err != nil {
		return nil, err
	}
	hcs, err := cx.HCS(core.HCSOptions{})
	if err != nil {
		return nil, err
	}
	hr, err := cx.Execute(hcs, batch, opts)
	if err := add("HCS", hr, err); err != nil {
		return nil, err
	}
	plan, _, err := cx.Refine(hcs, core.RefineOptions{Seed: 7})
	if err != nil {
		return nil, err
	}
	pr, err := cx.Execute(plan, batch, opts)
	if err := add("HCS+", pr, err); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteText renders the comparison.
func (r *EnergyResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%d instances, cap %.0f W:\n", r.N, float64(r.Cap)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-10s %10s %10s %14s %9s\n",
		"policy", "makespan", "energy(J)", "EDP(kJ*s)", "avg W"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "  %-10s %9.1fs %10.0f %14.0f %9.2f\n",
			row.Policy, float64(row.Makespan), row.EnergyJ, row.EDP/1000, float64(row.AvgPower)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "co-scheduling converts the fixed power budget into throughput:\nsimilar energy, much lower energy-delay product.")
	return err
}
