package exp

import (
	"fmt"
	"io"

	"corun/internal/apu"
	"corun/internal/model"
	"corun/internal/sim"
	"corun/internal/stats"
	"corun/internal/workload"
)

// PairError is one co-run pair's prediction-accuracy record.
type PairError struct {
	CPUJob, GPUJob string
	Predicted      float64 // predicted degradation of the CPU-side job
	Actual         float64 // measured degradation of the CPU-side job
	// Err is the relative error of the predicted degradation against
	// the measured one, the paper's Figure 7 metric. Denominators are
	// floored at 0.05 so near-zero degradations don't blow up the
	// statistic (documented in EXPERIMENTS.md).
	Err float64
}

// Fig7Setting is the error distribution at one frequency setting.
type Fig7Setting struct {
	Label     string
	Pairs     []PairError
	Histogram *stats.Histogram
	Mean      float64
	Below10   float64
	Below20   float64
}

// Fig7Result reproduces Figure 7: the performance-model error
// distribution over all 64 ordered pairs at the high and medium
// frequency settings.
type Fig7Result struct {
	High   Fig7Setting
	Medium Fig7Setting
}

// errFloor keeps the relative-error denominator away from zero.
const errFloor = 0.05

// degradationFunc predicts the CPU-side degradation of job i beside
// job j at the given levels.
type degradationFunc func(i, fc, j, fg int) float64

// Figure7 measures every ordered pair (i on CPU, j on GPU) of the
// 8-program batch on the ground-truth simulator, predicts each
// degradation with the staged-interpolation model, and bins the
// relative errors.
func (s *Suite) Figure7() (*Fig7Result, error) {
	batch := workload.Batch8()
	_, pred, err := s.context(batch, 0)
	if err != nil {
		return nil, err
	}
	return s.figure7With(batch, func(i, fc, j, fg int) float64 {
		return pred.Degradation(i, apu.CPU, fc, j, fg)
	})
}

// Figure7Calibrated is Figure 7 with the online-calibrated model
// (EX-CAL): the same 64 pairs, predictions corrected by 2N probe
// co-runs.
func (s *Suite) Figure7Calibrated() (*Fig7Result, error) {
	batch := workload.Batch8()
	_, pred, err := s.context(batch, 0)
	if err != nil {
		return nil, err
	}
	cal, err := model.NewCalibratedPredictor(pred, model.CalibrateOptions{Batch: batch})
	if err != nil {
		return nil, err
	}
	return s.figure7With(batch, func(i, fc, j, fg int) float64 {
		return cal.Degradation(i, apu.CPU, fc, j, fg)
	})
}

func (s *Suite) figure7With(batch []*workload.Instance, predict degradationFunc) (*Fig7Result, error) {
	cmax, gmax := s.maxFreqs()
	cmed, gmed := s.mediumFreqs()

	measure := func(label string, fc, fg int) (Fig7Setting, error) {
		set := Fig7Setting{Label: label, Histogram: stats.NewHistogram(0.10, 5)}
		var errs []float64
		for i := range batch {
			for j := range batch {
				target := &workload.Instance{ID: 0, Prog: batch[i].Prog, Scale: 1, Label: batch[i].Label}
				co := &workload.Instance{ID: 1, Prog: batch[j].Prog, Scale: 1, Label: batch[j].Label}
				truth, err := sim.CoRun(sim.Options{Cfg: s.Cfg, Mem: s.Mem}, target, apu.CPU, co, fc, fg)
				if err != nil {
					return set, err
				}
				p := predict(i, fc, j, fg)
				e := abs(p-truth.Degradation) / maxf(truth.Degradation, errFloor)
				set.Pairs = append(set.Pairs, PairError{
					CPUJob: batch[i].Label, GPUJob: batch[j].Label,
					Predicted: p, Actual: truth.Degradation, Err: e,
				})
				errs = append(errs, e)
			}
		}
		set.Histogram.AddAll(errs)
		set.Mean = stats.Summarize(errs).Mean
		set.Below10 = set.Histogram.FractionBelow(0.10)
		set.Below20 = set.Histogram.FractionBelow(0.20)
		return set, nil
	}

	high, err := measure("high (3.6 GHz / 1.25 GHz)", cmax, gmax)
	if err != nil {
		return nil, err
	}
	med, err := measure("medium (2.2 GHz / 0.85 GHz)", cmed, gmed)
	if err != nil {
		return nil, err
	}
	return &Fig7Result{High: high, Medium: med}, nil
}

// WriteText renders both distributions.
func (r *Fig7Result) WriteText(w io.Writer) error {
	for _, set := range []Fig7Setting{r.High, r.Medium} {
		if _, err := fmt.Fprintf(w, "Setting %s: mean error %.0f%%, <10%%: %.0f%% of pairs, <20%%: %.0f%%\n",
			set.Label, 100*set.Mean, 100*set.Below10, 100*set.Below20); err != nil {
			return err
		}
		if err := set.Histogram.WriteTable(w, true); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "[paper: ~half below 10%, >70% below 20%; mean 15% high / 11% medium]")
	return err
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// worstPairs returns the k pairs with the largest error, for reports.
func (set Fig7Setting) worstPairs(k int) []PairError {
	out := append([]PairError(nil), set.Pairs...)
	for i := 0; i < len(out) && i < k; i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].Err > out[i].Err {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// WriteWorst renders the k worst-predicted pairs of a setting.
func (set Fig7Setting) WriteWorst(w io.Writer, k int) error {
	for _, p := range set.worstPairs(k) {
		if _, err := fmt.Fprintf(w, "  %s(CPU) x %s(GPU): predicted %.2f actual %.2f (err %.0f%%)\n",
			p.CPUJob, p.GPUJob, p.Predicted, p.Actual, 100*p.Err); err != nil {
			return err
		}
	}
	return nil
}
