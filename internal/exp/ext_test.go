package exp

import (
	"corun/internal/workload"
	"strings"
	"testing"
)

func TestEnergy(t *testing.T) {
	s := testSuite(t)
	r, err := s.Energy()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(r.Rows))
	}
	byName := map[string]EnergyRow{}
	for _, row := range r.Rows {
		byName[row.Policy] = row
		if row.EnergyJ <= 0 || row.EDP <= 0 {
			t.Errorf("%s: non-positive energy/EDP", row.Policy)
		}
		// Under a binding cap, average power stays below it.
		if float64(row.AvgPower) > float64(r.Cap) {
			t.Errorf("%s: avg power %v above cap", row.Policy, row.AvgPower)
		}
	}
	// Faster schedules at a similar power level mean lower EDP: the
	// co-scheduler must clearly win the efficiency metric.
	if byName["HCS+"].EDP >= byName["Random"].EDP {
		t.Errorf("HCS+ EDP %v should beat Random %v", byName["HCS+"].EDP, byName["Random"].EDP)
	}
	if byName["HCS+"].EnergyJ > byName["Random"].EnergyJ*1.1 {
		t.Errorf("HCS+ energy %v should not exceed Random %v by >10%%",
			byName["HCS+"].EnergyJ, byName["Random"].EnergyJ)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "EDP") {
		t.Error("render missing EDP column")
	}
}

func TestSplitStudy(t *testing.T) {
	s := testSuite(t)
	r, err := s.Split()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(r.Rows))
	}
	// Slow synchronization must shrink the winner set (the cited
	// study's regime).
	if r.WinsSlowSync > r.WinsDefault {
		t.Errorf("slow sync has %d winners vs %d default; costs should hurt",
			r.WinsSlowSync, r.WinsDefault)
	}
	if r.WinsSlowSync > 2 {
		t.Errorf("%d winners under slow sync; splitting should rarely win there", r.WinsSlowSync)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
}

func TestRobustness(t *testing.T) {
	s := testSuite(t)
	r, err := s.Robustness(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(r.Rows))
	}
	// The co-scheduler must win on workloads it was never calibrated
	// for — in every sampled batch.
	if r.Wins != len(r.Rows) {
		t.Errorf("HCS+ won only %d/%d random workloads", r.Wins, len(r.Rows))
	}
	if r.Summary.Mean < 0.15 {
		t.Errorf("mean speedup %.0f%% on random workloads; expected a clear win", 100*r.Summary.Mean)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Robustness(0, 1); err == nil {
		t.Error("zero workloads accepted")
	}
}

func TestFairness(t *testing.T) {
	s := testSuite(t)
	r, err := s.Fairness()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(r.Rows))
	}
	byName := map[string]FairnessRow{}
	for _, row := range r.Rows {
		byName[row.Policy] = row
		if row.ANTT < 1 {
			t.Errorf("%s: ANTT %.2f below 1; turnaround cannot beat solo", row.Policy, row.ANTT)
		}
		if row.WorstNTT < row.ANTT {
			t.Errorf("%s: worst NTT below the average", row.Policy)
		}
		if row.STP <= 0 || row.STP > float64(r.N) {
			t.Errorf("%s: STP %.2f outside (0, %d]", row.Policy, row.STP, r.N)
		}
	}
	// The co-scheduler's makespan win must not come from starving
	// jobs: it wins ANTT and STP too.
	if byName["HCS+"].ANTT >= byName["Random"].ANTT {
		t.Errorf("HCS+ ANTT %.2f should beat Random %.2f", byName["HCS+"].ANTT, byName["Random"].ANTT)
	}
	if byName["HCS+"].STP <= byName["Random"].STP {
		t.Errorf("HCS+ STP %.2f should beat Random %.2f", byName["HCS+"].STP, byName["Random"].STP)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ANTT") {
		t.Error("render missing ANTT")
	}
}

func TestSensitivity(t *testing.T) {
	s := testSuite(t)
	r, err := s.Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 7 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	if !r.AllHold {
		for _, row := range r.Rows {
			t.Logf("%s: %+.1f%%", row.Name, 100*row.Speedup)
		}
		t.Error("a contention-model perturbation broke the headline conclusion")
	}
	// Every perturbed machine still shows a solid gain.
	for _, row := range r.Rows {
		if row.Speedup < 0.10 {
			t.Errorf("%s: HCS+ gain %.1f%% too thin", row.Name, 100*row.Speedup)
		}
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
}

func TestScalability(t *testing.T) {
	s := testSuite(t)
	r, err := s.Scalability([]int{4, 8, 16}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Speedup < 0.05 {
			t.Errorf("N=%d: HCS+ gain %.1f%% too thin", row.N, 100*row.Speedup)
		}
		// Planning is near-linear: even 16 jobs plan in well under a
		// second of wall time.
		if row.PlanTime.Seconds() > 2 {
			t.Errorf("N=%d: planning took %v", row.N, row.PlanTime)
		}
	}
	// Makespans grow with batch size.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].HCSPlus <= r.Rows[i-1].HCSPlus {
			t.Errorf("HCS+ makespan did not grow from N=%d to N=%d", r.Rows[i-1].N, r.Rows[i].N)
		}
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
}

func TestCapEnforcement(t *testing.T) {
	s := testSuite(t)
	r, err := s.CapEnforcement()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	byName := map[string]CapEnforceRow{}
	for _, row := range r.Rows {
		byName[row.Mechanism] = row
	}
	planned := byName["planned (HCS+)"]
	hard := byName["hardware clamp"]
	// The hardware clamp never lets a sample over the cap.
	if hard.Violations != 0 {
		t.Errorf("hardware clamp left %d violations", hard.Violations)
	}
	// Model-based planning should not lose to blind enforcement on the
	// same dispatch order.
	if float64(planned.Makespan) > float64(hard.Makespan)*1.05 {
		t.Errorf("planned %v clearly worse than hardware clamp %v", planned.Makespan, hard.Makespan)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
}

func TestCluster(t *testing.T) {
	s := testSuite(t)
	r, err := s.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 6 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	byLabel := map[string]ClusterRow{}
	for _, row := range r.Rows {
		byLabel[row.Label] = row
		if row.Done <= 0 || row.MeanResponse <= 0 {
			t.Errorf("%s: empty outcome", row.Label)
		}
	}
	// Fleet scaling helps.
	if byLabel["4-node hcs+ affinity"].Done >= byLabel["1-node hcs+ affinity"].Done {
		t.Error("4 nodes not faster than 1")
	}
	// Per-node co-scheduling beats random on the same fleet.
	if byLabel["3-node hcs+ affinity"].MeanResponse >= byLabel["3-node random affinity"].MeanResponse {
		t.Error("HCS+ per node not better than random per node")
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
}

// Every experiment result renders without error (the renderers are the
// CLI's surface; this pins them all).
func TestAllRenderersRun(t *testing.T) {
	s := testSuite(t)
	var b strings.Builder
	if r, err := s.Example3(); err != nil {
		t.Fatal(err)
	} else if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if r, err := s.Figure8(); err != nil {
		t.Fatal(err)
	} else if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if r, err := s.Figure9(); err != nil {
		t.Fatal(err)
	} else if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if r, err := s.Overhead(); err != nil {
		t.Fatal(err)
	} else if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() == 0 {
		t.Error("renderers produced nothing")
	}
}

// The generalized speedup study works on custom workloads and caps.
func TestSpeedupStudyCustom(t *testing.T) {
	s := testSuite(t)
	batch, err := workload.Generate(workload.GenOptions{N: 6, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.SpeedupStudy(batch, 18, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 6 || r.Cap != 18 {
		t.Errorf("study metadata wrong: %+v", r)
	}
	if r.SpeedupOverRandom(r.HCSPlus) <= 0 {
		t.Errorf("HCS+ did not beat Random on the custom batch")
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
}

// Calibration measurably improves the Figure 7 error distribution.
func TestFigure7Calibrated(t *testing.T) {
	s := testSuite(t)
	base, err := s.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	cal, err := s.Figure7Calibrated()
	if err != nil {
		t.Fatal(err)
	}
	if cal.High.Mean >= base.High.Mean {
		t.Errorf("calibration did not improve high-setting mean: %.3f -> %.3f",
			base.High.Mean, cal.High.Mean)
	}
	if cal.High.Below20 < base.High.Below20 {
		t.Errorf("calibration shrank the <20%% share: %.2f -> %.2f",
			base.High.Below20, cal.High.Below20)
	}
	t.Logf("Fig7 high-setting mean error: base %.1f%%, calibrated %.1f%%",
		100*base.High.Mean, 100*cal.High.Mean)
}

func TestOnlineStudy(t *testing.T) {
	s := testSuite(t)
	r, err := s.Online()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	byName := map[string]OnlineRow{}
	for _, row := range r.Rows {
		byName[row.Policy] = row
	}
	if byName["hcs+"].MeanResponse >= byName["random"].MeanResponse {
		t.Errorf("hcs+ response %v should beat random %v",
			byName["hcs+"].MeanResponse, byName["random"].MeanResponse)
	}
	if byName["hcs+"].EnergyJ >= byName["random"].EnergyJ {
		t.Errorf("hcs+ energy %v should beat random %v",
			byName["hcs+"].EnergyJ, byName["random"].EnergyJ)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
}
