package exp

import (
	"fmt"
	"io"

	"corun/internal/core"
	"corun/internal/model"
	"corun/internal/profile"
	"corun/internal/units"
	"corun/internal/workload"
)

// AblationRow is one design-choice ablation outcome.
type AblationRow struct {
	Name     string
	Makespan units.Seconds
	// DeltaVsFull is the fractional makespan change versus the full
	// HCS+ pipeline (positive = worse).
	DeltaVsFull float64
}

// AblationResult collects the ablation study of DESIGN.md §4 on the
// 16-instance batch under a 15 W cap: each row disables one design
// choice of the full pipeline and executes the resulting schedule on
// the ground-truth simulator.
type AblationResult struct {
	Full units.Seconds
	Rows []AblationRow
}

// Ablations runs the study.
func (s *Suite) Ablations() (*AblationResult, error) {
	const cap = 15
	batch := workload.Batch16()
	cx, _, err := s.context(batch, cap)
	if err != nil {
		return nil, err
	}
	opts := s.execOptions(cap)

	runPlan := func(cx *core.Context, hcsOpts core.HCSOptions, refOpts *core.RefineOptions) (units.Seconds, error) {
		plan, err := cx.HCS(hcsOpts)
		if err != nil {
			return 0, err
		}
		if refOpts != nil {
			plan, _, err = cx.Refine(plan, *refOpts)
			if err != nil {
				return 0, err
			}
		}
		res, err := cx.Execute(plan, batch, opts)
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	}

	ref := core.RefineOptions{Seed: 7}
	full, err := runPlan(cx, core.HCSOptions{}, &ref)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{Full: full}
	add := func(name string, m units.Seconds, err error) error {
		if err != nil {
			return fmt.Errorf("exp: ablation %s: %w", name, err)
		}
		out.Rows = append(out.Rows, AblationRow{
			Name: name, Makespan: m, DeltaVsFull: float64(m)/float64(full) - 1,
		})
		return nil
	}

	// No Co-Run Theorem partition (step 1 off).
	m, err := runPlan(cx, core.HCSOptions{DisablePartition: true}, &ref)
	if err := add("no-corun-theorem", m, err); err != nil {
		return nil, err
	}
	// No preference categorization (step 2 off).
	m, err = runPlan(cx, core.HCSOptions{DisablePreference: true}, &ref)
	if err := add("no-preference", m, err); err != nil {
		return nil, err
	}
	// No refinement at all (plain HCS).
	m, err = runPlan(cx, core.HCSOptions{}, nil)
	if err := add("no-refinement", m, err); err != nil {
		return nil, err
	}
	// Individual refinement steps.
	for _, step := range []struct {
		name string
		opts core.RefineOptions
	}{
		{"refine-adjacent-only", core.RefineOptions{Seed: 7, SkipRandomInQueue: true, SkipCross: true}},
		{"refine-inqueue-only", core.RefineOptions{Seed: 7, SkipAdjacent: true, SkipCross: true}},
		{"refine-cross-only", core.RefineOptions{Seed: 7, SkipAdjacent: true, SkipRandomInQueue: true}},
	} {
		stepOpts := step.opts
		m, err = runPlan(cx, core.HCSOptions{}, &stepOpts)
		if err := add(step.name, m, err); err != nil {
			return nil, err
		}
	}

	// Coarse frequency traversal (every 4th level).
	coarse, _, err := s.context(batch, cap)
	if err != nil {
		return nil, err
	}
	coarse.FreqStride = 4
	m, err = runPlan(coarse, core.HCSOptions{}, &ref)
	if err := add("freq-stride-4", m, err); err != nil {
		return nil, err
	}

	// Stride-matched model arm: the predictor at the same coarse
	// traversal the oracle uses below, so oracle-vs-model compares
	// prediction quality alone.
	strided, _, err := s.context(batch, cap)
	if err != nil {
		return nil, err
	}
	strided.FreqStride = 5
	m, err = runPlan(strided, core.HCSOptions{}, &ref)
	if err := add("model-stride-5", m, err); err != nil {
		return nil, err
	}

	// Online-calibrated model (section V.C's "lightweight methods ...
	// on the fly" realized): per-job corrections from 2N probe co-runs.
	calProf, err := profile.Collect(s.Cfg, s.Mem, batch)
	if err != nil {
		return nil, err
	}
	calBase, err := model.NewPredictor(s.Char, calProf)
	if err != nil {
		return nil, err
	}
	calPred, err := model.NewCalibratedPredictor(calBase, model.CalibrateOptions{Batch: batch})
	if err != nil {
		return nil, err
	}
	calCx, err := core.NewContext(calPred, s.Cfg, cap)
	if err != nil {
		return nil, err
	}
	m, err = runPlan(calCx, core.HCSOptions{}, &ref)
	if err := add("calibrated-model", m, err); err != nil {
		return nil, err
	}

	// Ground-truth oracle instead of the predictive model: isolates
	// prediction error from scheduling error.
	prof, err := profile.Collect(s.Cfg, s.Mem, batch)
	if err != nil {
		return nil, err
	}
	gt, err := model.NewGroundTruthOracle(prof, batch)
	if err != nil {
		return nil, err
	}
	gtCx, err := core.NewContext(gt, s.Cfg, cap)
	if err != nil {
		return nil, err
	}
	gtCx.FreqStride = 5 // the oracle measures by simulation; keep it tractable
	m, err = runPlan(gtCx, core.HCSOptions{}, &ref)
	if err := add("oracle-degradations", m, err); err != nil {
		return nil, err
	}

	return out, nil
}

// WriteText renders the study.
func (r *AblationResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "full HCS+ pipeline: %.1fs\n", float64(r.Full)); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "  %-22s %8.1fs (%s vs full)\n",
			row.Name, float64(row.Makespan), pct(row.DeltaVsFull)); err != nil {
			return err
		}
	}
	return nil
}
