package exp

import (
	"fmt"
	"io"

	"corun/internal/model"
)

// SurfacesResult reproduces Figures 5 and 6: the micro-benchmark co-run
// degradation spectra at maximum frequencies.
type SurfacesResult struct {
	// Surface is the characterized max-frequency surface: CPUBW/GPUBW
	// grid coordinates with DegCPU (Figure 5) and DegGPU (Figure 6).
	Surface *model.Surface

	// Summary statistics of each figure.
	CPUMax, GPUMax              float64
	CPUFracBelow20, GPUIn20To40 float64
}

// Figures5And6 extracts the maximum-frequency characterization surface
// and its summary statistics.
func (s *Suite) Figures5And6() (*SurfacesResult, error) {
	a := len(s.Char.CPULevels) - 1
	b := len(s.Char.GPULevels) - 1
	surf := s.Char.SurfaceAt(a, b)
	res := &SurfacesResult{Surface: surf}

	nCPU, nBoth := 0, 0
	nGPU, nGPUBand := 0, 0
	for i := range surf.DegCPU {
		for j := range surf.DegCPU[i] {
			if d := surf.DegCPU[i][j]; d > res.CPUMax {
				res.CPUMax = d
			}
			if surf.CPUBW[i] > 0 && surf.GPUBW[j] > 0 {
				nCPU++
				if surf.DegCPU[i][j] <= 0.20 {
					nBoth++
				}
				nGPU++
				if d := surf.DegGPU[i][j]; d >= 0.20 && d <= 0.40 {
					nGPUBand++
				}
			}
			if d := surf.DegGPU[i][j]; d > res.GPUMax {
				res.GPUMax = d
			}
		}
	}
	if nCPU > 0 {
		res.CPUFracBelow20 = float64(nBoth) / float64(nCPU)
	}
	if nGPU > 0 {
		res.GPUIn20To40 = float64(nGPUBand) / float64(nGPU)
	}
	return res, nil
}

// WriteText renders both spectra as grids plus the headline statistics.
func (r *SurfacesResult) WriteText(w io.Writer) error {
	writeGrid := func(title string, table [][]float64) error {
		if _, err := fmt.Fprintf(w, "%s (rows: CPU micro-kernel GB/s; cols: GPU micro-kernel GB/s)\n", title); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%7s", ""); err != nil {
			return err
		}
		for _, g := range r.Surface.GPUBW {
			if _, err := fmt.Fprintf(w, "%6.1f", g); err != nil {
				return err
			}
		}
		fmt.Fprintln(w)
		for i, row := range table {
			if _, err := fmt.Fprintf(w, "%6.1f ", r.Surface.CPUBW[i]); err != nil {
				return err
			}
			for _, v := range row {
				if _, err := fmt.Fprintf(w, "%5.0f%%", 100*v); err != nil {
					return err
				}
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	if err := writeGrid("Figure 5: CPU-side degradation", r.Surface.DegCPU); err != nil {
		return err
	}
	if err := writeGrid("Figure 6: GPU-side degradation", r.Surface.DegGPU); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"CPU max degradation %.0f%% [paper ~65%%]; CPU <=20%% in %.0f%% of contended cells [paper ~half]\n"+
			"GPU max degradation %.0f%% [paper ~45%%]; GPU in 20-40%% band for %.0f%% of contended cells\n",
		100*r.CPUMax, 100*r.CPUFracBelow20, 100*r.GPUMax, 100*r.GPUIn20To40)
	return err
}
