package exp

import (
	"fmt"
	"io"

	"corun/internal/core"
	"corun/internal/sim"
	"corun/internal/units"
	"corun/internal/workload"
)

// FairnessRow is one policy's multiprogramming metrics.
type FairnessRow struct {
	Policy   string
	Makespan units.Seconds
	// ANTT is the average normalized turnaround time: mean over jobs
	// of (batch-relative completion time / best cap-feasible
	// standalone time). Lower is better; 1.0 would mean every job ran
	// as if alone and first.
	ANTT float64
	// STP is the system throughput: sum over jobs of (standalone time /
	// turnaround). Higher is better; the job count bounds it, and
	// early completions contribute near 1 each.
	STP float64
	// WorstNTT is the most delayed job's normalized turnaround — the
	// fairness tail.
	WorstNTT float64
}

// FairnessResult evaluates the policies on the ANTT/STP metrics of the
// multiprogramming literature, complementing the paper's makespan-only
// comparison: a schedule could win makespan while starving individual
// jobs, and these metrics expose that.
type FairnessResult struct {
	N    int
	Cap  units.Watts
	Rows []FairnessRow
}

// Fairness runs the comparison on the 16-instance batch at 15 W.
func (s *Suite) Fairness() (*FairnessResult, error) {
	const cap = 15
	batch := workload.Batch16()
	cx, _, err := s.context(batch, cap)
	if err != nil {
		return nil, err
	}
	opts := s.execOptions(cap)
	res := &FairnessResult{N: len(batch), Cap: cap}

	solo := make([]float64, len(batch))
	for i := range batch {
		_, _, t, ok := cx.BestSoloAnywhere(i)
		if !ok {
			return nil, fmt.Errorf("exp: job %d infeasible under cap", i)
		}
		solo[i] = float64(t)
	}

	add := func(policy string, r *sim.Result, err error) error {
		if err != nil {
			return err
		}
		row := FairnessRow{Policy: policy, Makespan: r.Makespan}
		sumNTT, sumTP := 0.0, 0.0
		for _, c := range r.Completions {
			ntt := float64(c.End) / solo[c.Inst.ID]
			sumNTT += ntt
			sumTP += 1 / ntt
			if ntt > row.WorstNTT {
				row.WorstNTT = ntt
			}
		}
		row.ANTT = sumNTT / float64(len(r.Completions))
		row.STP = sumTP
		res.Rows = append(res.Rows, row)
		return nil
	}

	rnd, err := core.ExecuteRandom(opts, batch, 1, sim.GPUBiased)
	if err := add("Random", rnd, err); err != nil {
		return nil, err
	}
	def, err := core.ExecuteDefault(opts, batch, cx.Oracle, sim.GPUBiased)
	if err := add("Default_G", def, err); err != nil {
		return nil, err
	}
	plan, _, err := cx.HCSPlus(core.HCSOptions{}, core.RefineOptions{Seed: 7})
	if err != nil {
		return nil, err
	}
	pr, err := cx.Execute(plan, batch, opts)
	if err := add("HCS+", pr, err); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteText renders the comparison.
func (r *FairnessResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%d instances, cap %.0f W:\n", r.N, float64(r.Cap)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-10s %10s %8s %8s %10s\n", "policy", "makespan", "ANTT", "STP", "worst NTT"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "  %-10s %9.1fs %8.2f %8.2f %10.2f\n",
			row.Policy, float64(row.Makespan), row.ANTT, row.STP, row.WorstNTT); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "the co-scheduler's makespan win does not come from starving jobs:\nANTT drops and STP rises together.")
	return err
}
