package exp

import (
	"fmt"
	"io"
	"sort"

	"corun/internal/apu"
	"corun/internal/sim"
	"corun/internal/units"
	"corun/internal/workload"
)

// Fig2Row is one program's standalone CPU-vs-GPU comparison.
type Fig2Row struct {
	Name    string
	CPUTime units.Seconds
	GPUTime units.Seconds
	// SpeedupOnPreferred is how much faster the preferred device is.
	SpeedupOnPreferred float64
	PrefersGPU         bool
}

// Fig2Result reproduces Figure 2: the standalone performance of
// streamcluster, cfd, dwt2d, and hotspot on each device.
type Fig2Result struct {
	Rows []Fig2Row
}

// Figure2 measures the four motivating programs standalone on both
// devices at maximum frequency (no cap), on the ground-truth simulator.
func (s *Suite) Figure2() (*Fig2Result, error) {
	batch, err := workload.Subset("streamcluster", "cfd", "dwt2d", "hotspot")
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{}
	for _, inst := range batch {
		cpu, err := sim.StandaloneRun(sim.Options{Cfg: s.Cfg, Mem: s.Mem}, inst, apu.CPU)
		if err != nil {
			return nil, err
		}
		gpu, err := sim.StandaloneRun(sim.Options{Cfg: s.Cfg, Mem: s.Mem}, inst, apu.GPU)
		if err != nil {
			return nil, err
		}
		row := Fig2Row{Name: inst.Label, CPUTime: cpu.Makespan, GPUTime: gpu.Makespan}
		if row.GPUTime < row.CPUTime {
			row.PrefersGPU = true
			row.SpeedupOnPreferred = float64(row.CPUTime) / float64(row.GPUTime)
		} else {
			row.SpeedupOnPreferred = float64(row.GPUTime) / float64(row.CPUTime)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteText renders the comparison.
func (r *Fig2Result) WriteText(w io.Writer) error {
	for _, row := range r.Rows {
		dev := "CPU"
		if row.PrefersGPU {
			dev = "GPU"
		}
		if _, err := fmt.Fprintf(w, "%-14s CPU %7.2fs  GPU %7.2fs  prefers %s (%.1fx)\n",
			row.Name, float64(row.CPUTime), float64(row.GPUTime), dev, row.SpeedupOnPreferred); err != nil {
			return err
		}
	}
	return nil
}

// Example3Result reproduces the section III motivating example.
type Example3Result struct {
	// Heavy and Mild are the dwt2d-side slowdowns beside streamcluster
	// and hotspot; HeavyCo and MildCo the GPU co-runners' slowdowns.
	Heavy, HeavyCo float64
	Mild, MildCo   float64

	// BestMakespan and WorstMakespan bound the enumerated co-schedules
	// of the four programs under the 15 W cap; Ratio = worst/best.
	BestMakespan  units.Seconds
	WorstMakespan units.Seconds
	Ratio         float64

	// NumSchedules is how many (schedule, frequency) configurations
	// were enumerated.
	NumSchedules int
}

// Example3 measures the pairwise anecdotes and enumerates every
// ordered CPU/GPU split of the four motivating programs under a 15 W
// cap, at a coarse grid of cap-feasible fixed frequency pairs, to
// reproduce the "optimal setting is 2.3X better than the worst
// co-schedule" observation.
func (s *Suite) Example3() (*Example3Result, error) {
	cmax, gmax := s.maxFreqs()
	mk := func(name string) *workload.Instance {
		return &workload.Instance{Prog: workload.MustByName(name), Scale: 1, Label: name}
	}
	opts := sim.Options{Cfg: s.Cfg, Mem: s.Mem}

	res := &Example3Result{}
	heavy, err := sim.CoRun(opts, mk("dwt2d"), apu.CPU, mk("streamcluster"), cmax, gmax)
	if err != nil {
		return nil, err
	}
	res.Heavy = heavy.Degradation
	hc, err := sim.CoRun(opts, mk("streamcluster"), apu.GPU, mk("dwt2d"), cmax, gmax)
	if err != nil {
		return nil, err
	}
	res.HeavyCo = hc.Degradation
	mild, err := sim.CoRun(opts, mk("dwt2d"), apu.CPU, mk("hotspot"), cmax, gmax)
	if err != nil {
		return nil, err
	}
	res.Mild = mild.Degradation
	mc, err := sim.CoRun(opts, mk("hotspot"), apu.GPU, mk("dwt2d"), cmax, gmax)
	if err != nil {
		return nil, err
	}
	res.MildCo = mc.Degradation

	// Enumerate schedules x frequency settings under a 15 W cap.
	const cap = 15
	names := []string{"streamcluster", "cfd", "dwt2d", "hotspot"}
	freqPairs := s.capFeasibleGrid(cap)
	best, worst := -1.0, -1.0
	for _, split := range allSplits(len(names)) {
		for _, fp := range freqPairs {
			batch := make([]*workload.Instance, len(names))
			for i, n := range names {
				batch[i] = &workload.Instance{ID: i, Prog: workload.MustByName(n), Scale: 1, Label: n}
			}
			var cpuQ, gpuQ []*workload.Instance
			for _, i := range split.cpu {
				cpuQ = append(cpuQ, batch[i])
			}
			for _, i := range split.gpu {
				gpuQ = append(gpuQ, batch[i])
			}
			simOpts := sim.Options{
				Cfg: s.Cfg, Mem: s.Mem, PowerCap: cap,
				InitCPUFreq: sim.Pin(fp[0]), InitGPUFreq: sim.Pin(fp[1]),
			}
			r, err := sim.Run(simOpts, sim.NewQueueDispatcher(cpuQ, gpuQ, nil))
			if err != nil {
				return nil, err
			}
			m := float64(r.Makespan)
			if best < 0 || m < best {
				best = m
			}
			if m > worst {
				worst = m
			}
			res.NumSchedules++
		}
	}
	res.BestMakespan = units.Seconds(best)
	res.WorstMakespan = units.Seconds(worst)
	if best > 0 {
		res.Ratio = worst / best
	}
	return res, nil
}

// capFeasibleGrid returns a coarse grid of fixed frequency pairs whose
// full-load package power fits the cap.
func (s *Suite) capFeasibleGrid(cap units.Watts) [][2]int {
	var out [][2]int
	for fc := s.Cfg.MaxFreqIndex(apu.CPU); fc >= 0; fc -= 3 {
		for fg := s.Cfg.MaxFreqIndex(apu.GPU); fg >= 0; fg -= 2 {
			if s.Cfg.PackagePower(fc, fg, 1, 1, true) <= cap {
				out = append(out, [2]int{fc, fg})
			}
		}
	}
	return out
}

// qsplit is one assignment of job indices to ordered device queues.
type qsplit struct {
	cpu []int
	gpu []int
}

// allSplits enumerates every (ordered CPU queue, ordered GPU queue)
// partition of n jobs.
func allSplits(n int) []qsplit {
	jobs := make([]int, n)
	for i := range jobs {
		jobs[i] = i
	}
	var out []qsplit
	// Choose a subset for the CPU, then order both sides.
	for mask := 0; mask < 1<<n; mask++ {
		var cpu, gpu []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				cpu = append(cpu, jobs[i])
			} else {
				gpu = append(gpu, jobs[i])
			}
		}
		for _, cp := range permutations(cpu) {
			for _, gp := range permutations(gpu) {
				out = append(out, qsplit{cpu: cp, gpu: gp})
			}
		}
	}
	return out
}

// permutations returns all orderings of xs (including the empty one).
func permutations(xs []int) [][]int {
	if len(xs) == 0 {
		return [][]int{nil}
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	var out [][]int
	var rec func(cur []int, rest []int)
	rec = func(cur, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := range rest {
			next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			rec(append(cur, rest[i]), next)
		}
	}
	rec(nil, sorted)
	return out
}

// WriteText renders the example.
func (r *Example3Result) WriteText(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"dwt2d beside streamcluster: %s (streamcluster: %s)   [paper: +81%% / +5%%]\n"+
			"dwt2d beside hotspot:       %s (hotspot: %s)   [paper: +17%% / +5%%]\n"+
			"4-program enumeration under 15 W: %d configurations, best %.1fs, worst %.1fs, ratio %.2fx [paper: 2.3x]\n",
		pct(r.Heavy), pct(r.HeavyCo), pct(r.Mild), pct(r.MildCo),
		r.NumSchedules, float64(r.BestMakespan), float64(r.WorstMakespan), r.Ratio)
	return err
}
