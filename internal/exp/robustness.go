package exp

import (
	"fmt"
	"io"

	"corun/internal/core"
	"corun/internal/sim"
	"corun/internal/stats"
	"corun/internal/units"
	"corun/internal/workload"
)

// RobustnessRow is one random workload's outcome.
type RobustnessRow struct {
	Seed    int64
	Random  units.Seconds
	HCSPlus units.Seconds
	// Speedup is Random/HCSPlus - 1.
	Speedup float64
}

// RobustnessResult extends the evaluation beyond the eight calibrated
// benchmarks: HCS+ against Random over many seeded synthetic workloads
// (8 jobs each) under a 15 W cap. The paper's claims only generalize
// if the gains survive workloads the models were not calibrated on.
type RobustnessResult struct {
	Rows    []RobustnessRow
	Summary stats.Summary
	// Wins counts workloads where HCS+ beat the Random average.
	Wins int
}

// Robustness runs the study over `workloads` random batches.
func (s *Suite) Robustness(workloads int, randomSeeds int) (*RobustnessResult, error) {
	if workloads <= 0 {
		return nil, fmt.Errorf("exp: need at least one workload")
	}
	if randomSeeds <= 0 {
		randomSeeds = 5
	}
	const cap = 15
	res := &RobustnessResult{}
	var speedups []float64
	for w := 0; w < workloads; w++ {
		seed := int64(100 + w)
		batch, err := workload.Generate(workload.GenOptions{N: 8, Seed: seed})
		if err != nil {
			return nil, err
		}
		cx, _, err := s.context(batch, cap)
		if err != nil {
			return nil, err
		}
		opts := s.execOptions(cap)
		randAvg, _, err := core.RandomAverage(opts, batch, randomSeeds, 1, sim.GPUBiased)
		if err != nil {
			return nil, err
		}
		plan, _, err := cx.HCSPlus(core.HCSOptions{}, core.RefineOptions{Seed: seed})
		if err != nil {
			return nil, err
		}
		pr, err := cx.Execute(plan, batch, opts)
		if err != nil {
			return nil, err
		}
		row := RobustnessRow{
			Seed:    seed,
			Random:  randAvg,
			HCSPlus: pr.Makespan,
			Speedup: float64(randAvg)/float64(pr.Makespan) - 1,
		}
		if row.Speedup > 0 {
			res.Wins++
		}
		res.Rows = append(res.Rows, row)
		speedups = append(speedups, row.Speedup)
	}
	res.Summary = stats.Summarize(speedups)
	return res, nil
}

// WriteText renders the study.
func (r *RobustnessResult) WriteText(w io.Writer) error {
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "  seed %4d: Random %7.1fs  HCS+ %7.1fs  speedup %s\n",
			row.Seed, float64(row.Random), float64(row.HCSPlus), pct(row.Speedup)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d/%d workloads improved; speedup mean %s, min %s, max %s\n",
		r.Wins, len(r.Rows), pct(r.Summary.Mean), pct(r.Summary.Min), pct(r.Summary.Max))
	return err
}
