// Package exp is the evaluation harness: one entry point per table and
// figure of the paper's evaluation (section VI), each returning a typed
// result with a text renderer, so that cmd/experiments and the root
// benchmarks can regenerate the entire evaluation.
//
// The per-experiment index lives in DESIGN.md; EXPERIMENTS.md records
// paper-versus-measured values produced by this package.
package exp

import (
	"fmt"

	"corun/internal/apu"
	"corun/internal/core"
	"corun/internal/memsys"
	"corun/internal/model"
	"corun/internal/profile"
	"corun/internal/units"
	"corun/internal/workload"
)

// Suite bundles the machine, the contention model, and the one-time
// micro-benchmark characterization that all experiments share.
type Suite struct {
	Cfg  *apu.Config
	Mem  *memsys.Model
	Char *model.Characterization
}

// NewSuite builds the default machine and runs the characterization
// pass (the offline stage of section V).
func NewSuite() (*Suite, error) {
	cfg := apu.DefaultConfig()
	mem := memsys.Default()
	char, err := model.Characterize(model.CharacterizeOptions{Cfg: cfg, Mem: mem})
	if err != nil {
		return nil, err
	}
	return &Suite{Cfg: cfg, Mem: mem, Char: char}, nil
}

// context assembles the prediction pipeline and scheduling context for
// a batch under a cap.
func (s *Suite) context(batch []*workload.Instance, cap units.Watts) (*core.Context, *model.Predictor, error) {
	prof, err := profile.Collect(s.Cfg, s.Mem, batch)
	if err != nil {
		return nil, nil, err
	}
	pred, err := model.NewPredictor(s.Char, prof)
	if err != nil {
		return nil, nil, err
	}
	cx, err := core.NewContext(pred, s.Cfg, cap)
	if err != nil {
		return nil, nil, err
	}
	return cx, pred, nil
}

// execOptions builds the simulator-facing execution options.
func (s *Suite) execOptions(cap units.Watts) core.ExecOptions {
	return core.ExecOptions{Cfg: s.Cfg, Mem: s.Mem, Cap: cap}
}

// maxFreqs returns the maximum frequency indices of both devices.
func (s *Suite) maxFreqs() (int, int) {
	return s.Cfg.MaxFreqIndex(apu.CPU), s.Cfg.MaxFreqIndex(apu.GPU)
}

// mediumFreqs returns the paper's medium setting: 2.2 GHz CPU,
// 0.85 GHz GPU.
func (s *Suite) mediumFreqs() (int, int) {
	return s.Cfg.ClosestFreqIndex(apu.CPU, 2.2), s.Cfg.ClosestFreqIndex(apu.GPU, 0.85)
}

// pct formats a fraction as a signed percentage.
func pct(f float64) string { return fmt.Sprintf("%+.1f%%", 100*f) }
