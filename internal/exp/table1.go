package exp

import (
	"fmt"
	"io"

	"corun/internal/apu"
	"corun/internal/core"
	"corun/internal/units"
	"corun/internal/workload"
)

// TableIRow is one benchmark's profile line, mirroring Table I.
type TableIRow struct {
	Name string

	// StandaloneCPU/GPU are solo times at maximum frequencies.
	StandaloneCPU units.Seconds
	StandaloneGPU units.Seconds

	// MinCoRunCPU/GPU are the model-predicted co-run times with the
	// least-interfering partner at maximum frequencies.
	MinCoRunCPU units.Seconds
	MinCoRunGPU units.Seconds

	// Preference is the step-2 label.
	Preference core.Preference
}

// TableIResult reproduces Table I.
type TableIResult struct {
	Rows []TableIRow
}

// TableI regenerates Table I: offline standalone profiles, predicted
// min co-run times, and preference labels for the 8-program batch.
func (s *Suite) TableI() (*TableIResult, error) {
	batch := workload.Batch8()
	cx, pred, err := s.context(batch, 0) // Table I is uncapped
	if err != nil {
		return nil, err
	}
	cmax, gmax := s.maxFreqs()
	prefs, err := cx.Categorize(jobIndices(len(batch)), 0)
	if err != nil {
		return nil, err
	}

	res := &TableIResult{}
	for i, inst := range batch {
		row := TableIRow{
			Name:          inst.Label,
			StandaloneCPU: pred.StandaloneTime(i, apu.CPU, cmax),
			StandaloneGPU: pred.StandaloneTime(i, apu.GPU, gmax),
			Preference:    prefs[i],
		}
		// Min co-run time at max frequencies: least-interfering
		// partner as predicted by the model (the paper's Table I
		// caption states exactly this construction).
		row.MinCoRunCPU = minCoRunAtMax(pred, i, apu.CPU, cmax, gmax, len(batch))
		row.MinCoRunGPU = minCoRunAtMax(pred, i, apu.GPU, gmax, cmax, len(batch))
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// minCoRunAtMax finds the predicted co-run time of job i on device d at
// max frequency with its least-interfering partner, both at max.
func minCoRunAtMax(o core.Oracle, i int, d apu.Device, fSelf, fOther, n int) units.Seconds {
	best := -1.0
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		t := float64(o.StandaloneTime(i, d, fSelf)) * (1 + o.Degradation(i, d, fSelf, j, fOther))
		if best < 0 || t < best {
			best = t
		}
	}
	if best < 0 {
		return o.StandaloneTime(i, d, fSelf)
	}
	return units.Seconds(best)
}

func jobIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// WriteText renders the table.
func (r *TableIResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-22s", "Job Name"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%14s", row.Name); err != nil {
			return err
		}
	}
	fmt.Fprintln(w)
	lines := []struct {
		label string
		get   func(TableIRow) string
	}{
		{"Min. co-run time (CPU)", func(r TableIRow) string { return fmt.Sprintf("%.2f", float64(r.MinCoRunCPU)) }},
		{"Min. co-run time (GPU)", func(r TableIRow) string { return fmt.Sprintf("%.2f", float64(r.MinCoRunGPU)) }},
		{"Standalone time (CPU)", func(r TableIRow) string { return fmt.Sprintf("%.2f", float64(r.StandaloneCPU)) }},
		{"Standalone time (GPU)", func(r TableIRow) string { return fmt.Sprintf("%.2f", float64(r.StandaloneGPU)) }},
		{"Preferred", func(r TableIRow) string { return r.Preference.String() }},
	}
	for _, ln := range lines {
		if _, err := fmt.Fprintf(w, "%-22s", ln.label); err != nil {
			return err
		}
		for _, row := range r.Rows {
			if _, err := fmt.Fprintf(w, "%14s", ln.get(row)); err != nil {
				return err
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}
