package exp

import (
	"fmt"
	"io"

	"corun/internal/core"
	"corun/internal/policy"
	"corun/internal/units"
	"corun/internal/workload"
)

// PolicyOutcome is one registered policy's plan on the sweep batch.
type PolicyOutcome struct {
	Policy    string        `json:"policy"`
	Predicted units.Seconds `json:"predicted_makespan_s"`
	Simulated units.Seconds `json:"simulated_makespan_s"`
	Error     string        `json:"error,omitempty"`
}

// PolicySweepResult compares every policy in the registry — the sweep
// enumerates the registry rather than a hand-maintained list, so a
// newly registered policy joins the comparison automatically.
type PolicySweepResult struct {
	N        int             `json:"n"`
	CapWatts float64         `json:"cap_watts"`
	Outcomes []PolicyOutcome `json:"outcomes"`
}

// PolicySweep plans a 6-job batch (small enough for the optimal bound)
// under every registered policy on one shared scheduling context, then
// executes each plan, reporting predicted and simulated makespans.
func (s *Suite) PolicySweep() (*PolicySweepResult, error) {
	batch, err := workload.Subset("streamcluster", "cfd", "dwt2d", "hotspot", "srad", "lud")
	if err != nil {
		return nil, err
	}
	const cap = units.Watts(15)
	cx, _, err := s.context(batch, cap)
	if err != nil {
		return nil, err
	}
	out := &PolicySweepResult{N: len(batch), CapWatts: float64(cap)}
	for _, name := range policy.Names() {
		oc := PolicyOutcome{Policy: name}
		plan, err := policy.Plan(name, cx, policy.Options{Seed: 7})
		if err != nil {
			oc.Error = err.Error()
			out.Outcomes = append(out.Outcomes, oc)
			continue
		}
		if oc.Predicted, err = cx.PredictedMakespan(plan); err != nil {
			oc.Error = err.Error()
			out.Outcomes = append(out.Outcomes, oc)
			continue
		}
		res, err := cx.Execute(plan, batch, core.ExecOptions{Cfg: s.Cfg, Mem: s.Mem, Cap: cap})
		if err != nil {
			oc.Error = err.Error()
			out.Outcomes = append(out.Outcomes, oc)
			continue
		}
		oc.Simulated = res.Makespan
		out.Outcomes = append(out.Outcomes, oc)
	}
	return out, nil
}

// WriteText renders the sweep as a table.
func (r *PolicySweepResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%d jobs under a %gW cap, every registered policy:\n", r.N, r.CapWatts); err != nil {
		return err
	}
	for _, oc := range r.Outcomes {
		if oc.Error != "" {
			if _, err := fmt.Fprintf(w, "  %-10s error: %s\n", oc.Policy, oc.Error); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "  %-10s predicted %6.1fs  simulated %6.1fs\n",
			oc.Policy, float64(oc.Predicted), float64(oc.Simulated)); err != nil {
			return err
		}
	}
	return nil
}
