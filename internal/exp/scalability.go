package exp

import (
	"fmt"
	"io"
	"time"

	"corun/internal/core"
	"corun/internal/sim"
	"corun/internal/units"
	"corun/internal/workload"
)

// ScalabilityRow is one batch size's outcome.
type ScalabilityRow struct {
	N        int
	Random   units.Seconds
	HCSPlus  units.Seconds
	Speedup  float64
	PlanTime time.Duration
}

// ScalabilityResult extends the paper's 8-vs-16 scalability analysis
// (section VI.D) across a sweep of batch sizes: the co-scheduling gain
// should grow or hold as queues deepen, while planning cost stays
// negligible (the algorithm is near-linear).
type ScalabilityResult struct {
	Rows []ScalabilityRow
}

// Scalability sweeps synthetic batches of the given sizes at 15 W.
func (s *Suite) Scalability(sizes []int, randomSeeds int) (*ScalabilityResult, error) {
	if len(sizes) == 0 {
		sizes = []int{4, 8, 12, 16, 24, 32}
	}
	if randomSeeds <= 0 {
		randomSeeds = 5
	}
	const cap = 15
	res := &ScalabilityResult{}
	for _, n := range sizes {
		batch, err := workload.Generate(workload.GenOptions{N: n, Seed: int64(1000 + n)})
		if err != nil {
			return nil, err
		}
		cx, _, err := s.context(batch, cap)
		if err != nil {
			return nil, err
		}
		opts := s.execOptions(cap)
		randAvg, _, err := core.RandomAverage(opts, batch, randomSeeds, 1, sim.GPUBiased)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		plan, _, err := cx.HCSPlus(core.HCSOptions{}, core.RefineOptions{Seed: 7})
		if err != nil {
			return nil, err
		}
		planTime := time.Since(start)
		pr, err := cx.Execute(plan, batch, opts)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ScalabilityRow{
			N:        n,
			Random:   randAvg,
			HCSPlus:  pr.Makespan,
			Speedup:  float64(randAvg)/float64(pr.Makespan) - 1,
			PlanTime: planTime,
		})
	}
	return res, nil
}

// WriteText renders the sweep.
func (r *ScalabilityResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "  %4s %10s %10s %10s %12s\n", "N", "Random(s)", "HCS+(s)", "speedup", "plan time"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "  %4d %10.1f %10.1f %10s %12v\n",
			row.N, float64(row.Random), float64(row.HCSPlus), pct(row.Speedup), row.PlanTime.Round(time.Millisecond)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "co-scheduling gains hold as queues deepen; planning stays negligible.")
	return err
}
