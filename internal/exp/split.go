package exp

import (
	"fmt"
	"io"

	"corun/internal/split"
	"corun/internal/workload"
)

// SplitResult is the kernel-splitting study (the fine-grained
// alternative the paper scopes out in section II; see package split).
type SplitResult struct {
	Rows []*split.Study
	// WinsDefault / WinsSlowSync count programs gaining >5% under the
	// default and the pessimistic-synchronization cost models.
	WinsDefault  int
	WinsSlowSync int
}

// Split evaluates the best work split of every benchmark against its
// best single-device run, under the default and the slow-sync cost
// models.
func (s *Suite) Split() (*SplitResult, error) {
	res := &SplitResult{}
	def := split.Options{Cfg: s.Cfg, Mem: s.Mem}
	slow := split.Options{Cfg: s.Cfg, Mem: s.Mem, SyncLoss: 0.30}
	for _, name := range workload.Names() {
		prog, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		st, err := split.Evaluate(def, prog, 1, 10)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, st)
		if st.Gain > 0.05 {
			res.WinsDefault++
		}
		slowSt, err := split.Evaluate(slow, prog, 1, 10)
		if err != nil {
			return nil, err
		}
		if slowSt.Gain > 0.05 {
			res.WinsSlowSync++
		}
	}
	return res, nil
}

// WriteText renders the study.
func (r *SplitResult) WriteText(w io.Writer) error {
	for _, st := range r.Rows {
		if _, err := fmt.Fprintf(w, "  %-14s single %7.2fs (%v)  best split %7.2fs @ alpha %.1f  gain %s\n",
			st.Name, float64(st.BestSingle), st.BestSingleDev,
			float64(st.BestSplit), st.BestAlpha, pct(st.Gain)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d/%d programs gain >5%% with default costs; %d/%d under slow synchronization.\n"+
		"Splitting is program-dependent — whole-job co-scheduling is the safe general policy (section II).\n",
		r.WinsDefault, len(r.Rows), r.WinsSlowSync, len(r.Rows))
	return err
}
