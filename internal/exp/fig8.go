package exp

import (
	"fmt"
	"io"

	"corun/internal/apu"
	"corun/internal/sim"
	"corun/internal/stats"
	"corun/internal/units"
	"corun/internal/workload"
)

// PowerError is one pair's power-prediction record.
type PowerError struct {
	CPUJob, GPUJob string
	Freqs          [2]int
	Predicted      units.Watts
	Actual         units.Watts
	Err            float64
}

// Fig8Result reproduces Figure 8: the power-model error distribution
// over the 64 pairs, each at the best-performing frequency pair under
// a 16 W cap.
type Fig8Result struct {
	Pairs     []PowerError
	Histogram *stats.Histogram
	Mean      float64
	Below2    float64
	MaxErr    float64
}

// Figure8 predicts each pair's co-run power as the sum of standalone
// powers (the paper's model) and compares against the simulated co-run
// power at the same frequencies.
func (s *Suite) Figure8() (*Fig8Result, error) {
	const cap = 16
	batch := workload.Batch8()
	cx, pred, err := s.context(batch, cap)
	if err != nil {
		return nil, err
	}

	res := &Fig8Result{Histogram: stats.NewHistogram(0.02, 5)}
	var errs []float64
	for i := range batch {
		for j := range batch {
			fp, _, _, ok := cx.ChoosePairFreqs(i, j)
			if !ok {
				return nil, fmt.Errorf("exp: pair (%d,%d) infeasible under %d W", i, j, cap)
			}
			predicted := pred.CoRunPower(i, fp.CPU, j, fp.GPU)

			target := &workload.Instance{ID: 0, Prog: batch[i].Prog, Scale: 1, Label: batch[i].Label}
			co := &workload.Instance{ID: 1, Prog: batch[j].Prog, Scale: 1, Label: batch[j].Label}
			truth, err := sim.CoRun(sim.Options{Cfg: s.Cfg, Mem: s.Mem}, target, apu.CPU, co, fp.CPU, fp.GPU)
			if err != nil {
				return nil, err
			}
			e := units.RelErr(float64(predicted), float64(truth.AvgPower))
			res.Pairs = append(res.Pairs, PowerError{
				CPUJob: batch[i].Label, GPUJob: batch[j].Label,
				Freqs: [2]int{fp.CPU, fp.GPU}, Predicted: predicted, Actual: truth.AvgPower, Err: e,
			})
			errs = append(errs, e)
			if e > res.MaxErr {
				res.MaxErr = e
			}
		}
	}
	res.Histogram.AddAll(errs)
	res.Mean = stats.Summarize(errs).Mean
	res.Below2 = res.Histogram.FractionBelow(0.02)
	return res, nil
}

// WriteText renders the distribution.
func (r *Fig8Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Power model over %d pairs @16 W: mean error %.2f%%, max %.1f%%, <2%%: %.0f%% of pairs\n",
		len(r.Pairs), 100*r.Mean, 100*r.MaxErr, 100*r.Below2); err != nil {
		return err
	}
	if err := r.Histogram.WriteTable(w, true); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "[paper: mean 1.92%, none above 8%, 69% below 2%]")
	return err
}
