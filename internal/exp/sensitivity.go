package exp

import (
	"fmt"
	"io"

	"corun/internal/core"
	"corun/internal/memsys"
	"corun/internal/model"
	"corun/internal/profile"
	"corun/internal/sim"
	"corun/internal/units"
	"corun/internal/workload"
)

// SensitivityRow is one perturbed-machine outcome.
type SensitivityRow struct {
	Name    string
	Random  units.Seconds
	HCSPlus units.Seconds
	Speedup float64
}

// SensitivityResult asks whether the headline conclusion — HCS+ beats
// Random under a cap — depends on the calibration constants of the
// contention model. Every row perturbs one constant substantially,
// re-characterizes the degradation space on the perturbed machine
// (model and ground truth move together, as they would on different
// hardware), and re-runs the 8-program comparison.
type SensitivityResult struct {
	Rows []SensitivityRow
	// AllHold reports whether HCS+ won on every perturbed machine.
	AllHold bool
}

// Sensitivity runs the study.
func (s *Suite) Sensitivity() (*SensitivityResult, error) {
	const cap = 15
	variants := []struct {
		name string
		mut  func(*memsys.Params)
	}{
		{"baseline", func(p *memsys.Params) {}},
		{"peak-20%", func(p *memsys.Params) { p.CombinedPeak *= 0.8; p.SoloCapCPU *= 0.8; p.SoloCapGPU *= 0.8 }},
		{"peak+20%", func(p *memsys.Params) { p.CombinedPeak *= 1.2 }},
		{"kappa-x2", func(p *memsys.Params) { p.Kappa *= 2 }},
		{"queue-x2", func(p *memsys.Params) { p.CPUQueueBase *= 2; p.GPUQueueBase *= 2 }},
		{"gpu-favour-off", func(p *memsys.Params) { p.BetaCPU = p.BetaGPU }},
		{"llc-x4", func(p *memsys.Params) { p.LLCWeight *= 4 }},
	}

	res := &SensitivityResult{AllHold: true}
	for _, v := range variants {
		params := memsys.DefaultParams()
		v.mut(&params)
		mem, err := memsys.New(params)
		if err != nil {
			return nil, err
		}
		char, err := model.Characterize(model.CharacterizeOptions{Cfg: s.Cfg, Mem: mem})
		if err != nil {
			return nil, err
		}
		batch := workload.Batch8()
		prof, err := profile.Collect(s.Cfg, mem, batch)
		if err != nil {
			return nil, err
		}
		pred, err := model.NewPredictor(char, prof)
		if err != nil {
			return nil, err
		}
		cx, err := core.NewContext(pred, s.Cfg, cap)
		if err != nil {
			return nil, err
		}
		opts := core.ExecOptions{Cfg: s.Cfg, Mem: mem, Cap: cap}
		randAvg, _, err := core.RandomAverage(opts, batch, 5, 1, sim.GPUBiased)
		if err != nil {
			return nil, err
		}
		plan, _, err := cx.HCSPlus(core.HCSOptions{}, core.RefineOptions{Seed: 7})
		if err != nil {
			return nil, err
		}
		pr, err := cx.Execute(plan, batch, opts)
		if err != nil {
			return nil, err
		}
		row := SensitivityRow{
			Name:    v.name,
			Random:  randAvg,
			HCSPlus: pr.Makespan,
			Speedup: float64(randAvg)/float64(pr.Makespan) - 1,
		}
		if row.Speedup <= 0 {
			res.AllHold = false
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteText renders the study.
func (r *SensitivityResult) WriteText(w io.Writer) error {
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "  %-16s Random %7.1fs  HCS+ %7.1fs  speedup %s\n",
			row.Name, float64(row.Random), float64(row.HCSPlus), pct(row.Speedup)); err != nil {
			return err
		}
	}
	verdict := "the headline conclusion holds under every perturbation."
	if !r.AllHold {
		verdict = "WARNING: some perturbation broke the headline conclusion."
	}
	_, err := fmt.Fprintln(w, verdict)
	return err
}
