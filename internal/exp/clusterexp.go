package exp

import (
	"fmt"
	"io"

	"corun/internal/cluster"
	"corun/internal/online"
	"corun/internal/units"
)

// ClusterRow is one fleet configuration's outcome.
type ClusterRow struct {
	Label        string
	Nodes        int
	Done         units.Seconds
	MeanResponse units.Seconds
	EnergyJ      float64
	Imbalance    float64
}

// ClusterResult is the fleet study (EX-CLU): the data-center setting
// the paper's introduction motivates. One bursty stream, three fleet
// sizes, three balancers, and the HCS+-vs-random per-node policy
// comparison.
type ClusterResult struct {
	Rows []ClusterRow
}

// Cluster runs the study.
func (s *Suite) Cluster() (*ClusterResult, error) {
	arrivals, err := online.GenerateArrivals(36, 6, 11)
	if err != nil {
		return nil, err
	}
	res := &ClusterResult{}
	run := func(label string, nodes int, bal cluster.Balancer, pol online.Policy) error {
		r, err := cluster.Serve(cluster.Options{
			Cfg: s.Cfg, Mem: s.Mem, Char: s.Char,
			Nodes: nodes, CapPerNode: 15, Balancer: bal, Policy: string(pol), Seed: 1,
		}, arrivals)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, ClusterRow{
			Label: label, Nodes: nodes, Done: r.Done,
			MeanResponse: r.MeanResponse, EnergyJ: r.TotalEnergyJ, Imbalance: r.Imbalance,
		})
		return nil
	}
	for _, n := range []int{1, 2, 4} {
		if err := run(fmt.Sprintf("%d-node hcs+ affinity", n), n, cluster.AffinityAware, online.PolicyHCSPlus); err != nil {
			return nil, err
		}
	}
	for _, bal := range []cluster.Balancer{cluster.RoundRobin, cluster.LeastLoaded} {
		if err := run("3-node hcs+ "+bal.String(), 3, bal, online.PolicyHCSPlus); err != nil {
			return nil, err
		}
	}
	if err := run("3-node random affinity", 3, cluster.AffinityAware, online.PolicyRandom); err != nil {
		return nil, err
	}
	if err := run("3-node hcs+ affinity", 3, cluster.AffinityAware, online.PolicyHCSPlus); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteText renders the study.
func (r *ClusterResult) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "  %-24s %10s %14s %10s %10s\n",
		"configuration", "done(s)", "mean resp(s)", "energy(J)", "imbalance"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "  %-24s %10.1f %14.1f %10.0f %9.0f%%\n",
			row.Label, float64(row.Done), float64(row.MeanResponse), row.EnergyJ, 100*row.Imbalance); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "per-node co-scheduling compounds with fleet scaling; balancing policy is secondary.")
	return err
}
