package exp

import (
	"fmt"
	"io"

	"corun/internal/core"
	"corun/internal/sim"
	"corun/internal/units"
	"corun/internal/workload"
)

// SpeedupResult reproduces Figure 10 (8 instances) or Figure 11 (16
// instances): makespans of every policy and their speedups over the
// Random baseline, under a 15 W cap.
type SpeedupResult struct {
	N   int
	Cap units.Watts

	RandomAvg units.Seconds
	DefaultG  units.Seconds
	DefaultC  units.Seconds
	HCS       units.Seconds
	HCSPlus   units.Seconds
	Bound     units.Seconds

	// HCSViolations/HCSPlusViolations report the cap behaviour of the
	// planned schedules during execution.
	HCSViolations     int
	HCSPlusViolations int
	HCSPlusMaxExcess  units.Watts
}

// SpeedupOverRandom returns a policy's fractional gain over Random.
func (r *SpeedupResult) SpeedupOverRandom(m units.Seconds) float64 {
	if m <= 0 {
		return 0
	}
	return float64(r.RandomAvg)/float64(m) - 1
}

// Figure10 runs the 8-instance comparison.
func (s *Suite) Figure10() (*SpeedupResult, error) {
	return s.speedupStudy(workload.Batch8(), 15, 20)
}

// Figure11 runs the 16-instance scalability comparison.
func (s *Suite) Figure11() (*SpeedupResult, error) {
	return s.speedupStudy(workload.Batch16(), 15, 20)
}

// SpeedupStudy runs the full policy comparison on an arbitrary batch —
// the generalized Figures 10/11 machinery exposed for custom caps and
// workloads.
func (s *Suite) SpeedupStudy(batch []*workload.Instance, cap units.Watts, randomSeeds int) (*SpeedupResult, error) {
	return s.speedupStudy(batch, cap, randomSeeds)
}

func (s *Suite) speedupStudy(batch []*workload.Instance, cap units.Watts, randomSeeds int) (*SpeedupResult, error) {
	cx, _, err := s.context(batch, cap)
	if err != nil {
		return nil, err
	}
	opts := s.execOptions(cap)
	res := &SpeedupResult{N: len(batch), Cap: cap}

	res.RandomAvg, _, err = core.RandomAverage(opts, batch, randomSeeds, 1, sim.GPUBiased)
	if err != nil {
		return nil, err
	}
	dg, err := core.ExecuteDefault(opts, batch, cx.Oracle, sim.GPUBiased)
	if err != nil {
		return nil, err
	}
	res.DefaultG = dg.Makespan
	dc, err := core.ExecuteDefault(opts, batch, cx.Oracle, sim.CPUBiased)
	if err != nil {
		return nil, err
	}
	res.DefaultC = dc.Makespan

	hcs, err := cx.HCS(core.HCSOptions{})
	if err != nil {
		return nil, err
	}
	hr, err := cx.Execute(hcs, batch, opts)
	if err != nil {
		return nil, err
	}
	res.HCS = hr.Makespan
	res.HCSViolations = hr.CapViolations

	plus, _, err := cx.Refine(hcs, core.RefineOptions{Seed: 7})
	if err != nil {
		return nil, err
	}
	pr, err := cx.Execute(plus, batch, opts)
	if err != nil {
		return nil, err
	}
	res.HCSPlus = pr.Makespan
	res.HCSPlusViolations = pr.CapViolations
	res.HCSPlusMaxExcess = pr.MaxExcess

	res.Bound, err = cx.LowerBound()
	if err != nil {
		return nil, err
	}
	return res, nil
}

// WriteText renders the comparison in the paper's terms.
func (r *SpeedupResult) WriteText(w io.Writer) error {
	rows := []struct {
		name string
		m    units.Seconds
	}{
		{"Random (avg)", r.RandomAvg},
		{"Default_G", r.DefaultG},
		{"Default_C", r.DefaultC},
		{"HCS", r.HCS},
		{"HCS+", r.HCSPlus},
		{"Lower bound", r.Bound},
	}
	if _, err := fmt.Fprintf(w, "%d instances, cap %.0f W:\n", r.N, float64(r.Cap)); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintf(w, "  %-14s %8.1fs  speedup over Random %s\n",
			row.name, float64(row.m), pct(r.SpeedupOverRandom(row.m))); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "  HCS+ over Default_G: %s; cap violations HCS/HCS+: %d/%d (max excess %.2f W)\n",
		pct(float64(r.DefaultG)/float64(r.HCSPlus)-1), r.HCSViolations, r.HCSPlusViolations, float64(r.HCSPlusMaxExcess))
	return err
}
