package exp

import (
	"fmt"
	"io"
	"time"

	"corun/internal/core"
	"corun/internal/units"
	"corun/internal/workload"
)

// OverheadResult reproduces the section VI-D scheduling-overhead
// observation: the algorithm's wall time relative to the makespan it
// schedules.
type OverheadResult struct {
	N             int
	SchedulerTime time.Duration
	Makespan      units.Seconds
	// Fraction is scheduler seconds over simulated makespan seconds.
	// The paper reports < 0.1%.
	Fraction float64
}

// Overhead times HCS+ (including refinement) on the 16-instance batch
// and relates it to the executed makespan.
func (s *Suite) Overhead() (*OverheadResult, error) {
	batch := workload.Batch16()
	cx, _, err := s.context(batch, 15)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	plan, _, err := cx.HCSPlus(core.HCSOptions{}, core.RefineOptions{Seed: 7})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	res, err := cx.Execute(plan, batch, s.execOptions(15))
	if err != nil {
		return nil, err
	}
	out := &OverheadResult{
		N:             len(batch),
		SchedulerTime: elapsed,
		Makespan:      res.Makespan,
	}
	if res.Makespan > 0 {
		out.Fraction = elapsed.Seconds() / float64(res.Makespan)
	}
	return out, nil
}

// WriteText renders the observation.
func (r *OverheadResult) WriteText(w io.Writer) error {
	_, err := fmt.Fprintf(w, "scheduling %d jobs took %v against a %.1fs makespan: %.4f%% [paper: <0.1%%]\n",
		r.N, r.SchedulerTime, float64(r.Makespan), 100*r.Fraction)
	return err
}
