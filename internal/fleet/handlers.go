package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"corun/internal/cluster"
	"corun/internal/policy"
	"corun/internal/workload"
)

// Handler returns the coordinator's HTTP API — the same /v1/* surface
// a single corund daemon speaks, served fleet-wide:
//
//	POST /v1/jobs      place and forward a submission (retry-or-reroute)
//	GET  /v1/jobs      fan-out merge of every node's job table
//	GET  /v1/jobs/{id} proxied to the owning shard (ID-prefix routing)
//	GET  /v1/plan      aggregated per-node plans + fleet power summary
//	GET  /v1/cap       the fleet-wide power budget
//	POST /v1/cap       change the budget and repartition immediately
//	GET  /v1/policies  policy registry (proxied from a healthy node)
//	POST /v1/policy    broadcast a policy change to every healthy node
//	GET  /v1/nodes     per-node fleet state (health, shares, routing)
//	GET  /healthz      coordinator process liveness
//	GET  /readyz       200 while at least one node is in rotation
//	GET  /metrics      fleet_* Prometheus series
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", c.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	mux.HandleFunc("GET /v1/plan", c.handlePlan)
	mux.HandleFunc("GET /v1/cap", c.handleGetCap)
	mux.HandleFunc("POST /v1/cap", c.handleSetCap)
	mux.HandleFunc("GET /v1/policies", c.handlePolicies)
	mux.HandleFunc("POST /v1/policy", c.handleSetPolicy)
	mux.HandleFunc("GET /v1/nodes", c.handleNodes)
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("GET /readyz", c.handleReady)
	mux.Handle("GET /metrics", c.m.reg.Handler())
	if c.cfg.RequestTimeout > 0 {
		th := http.TimeoutHandler(mux, c.cfg.RequestTimeout,
			`{"error": "fleet: request deadline exceeded"}`)
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			th.ServeHTTP(w, r)
		})
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// forward proxies one request to a node. A non-nil body is sent as
// JSON.
func (c *Coordinator) forward(ctx context.Context, method, url string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.client.Do(req)
}

// place runs the placer over the current fleet snapshot, excluding
// nodes already tried this submission, and optimistically folds the
// job into the winner's load estimate (rolled back by unplace if the
// forward fails) so concurrent submissions see each other.
func (c *Coordinator) place(hint cluster.JobHint, tried map[*member]bool) *member {
	c.mu.Lock()
	defer c.mu.Unlock()
	nodes := make([]cluster.NodeState, len(c.members))
	for i, mb := range c.members {
		headroom := mb.reportedCapW
		if c.budgetW > 0 {
			headroom = mb.shareW
		}
		nodes[i] = cluster.NodeState{
			Load:      float64(mb.queueDepth + mb.placedSincePoll),
			BiasGPU:   mb.biasGPU,
			HeadroomW: headroom,
			Unhealthy: !mb.healthy || tried[mb],
		}
	}
	idx, err := c.placer.Pick(hint, nodes)
	if err != nil {
		return nil
	}
	mb := c.members[idx]
	mb.placedSincePoll++
	mb.biasGPU += hint.BiasGPU()
	return mb
}

// unplace rolls back place's optimistic accounting after a submission
// was not accepted by the node.
func (c *Coordinator) unplace(mb *member, hint cluster.JobHint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if mb.placedSincePoll > 0 {
		mb.placedSincePoll--
	}
	mb.biasGPU -= hint.BiasGPU()
}

// recordPlacement finalizes the routing counters once a node
// acknowledged the job.
func (c *Coordinator) recordPlacement(mb *member, hint cluster.JobHint) {
	c.mu.Lock()
	mb.routed++
	if hint.BiasGPU() > 0 {
		mb.placedGPU++
	} else {
		mb.placedCPU++
	}
	c.mu.Unlock()
	c.m.routed.Inc(mb.id)
	if hint.BiasGPU() > 0 {
		c.m.placedGPU.Inc(mb.id)
	} else {
		c.m.placedCPU.Inc(mb.id)
	}
}

// handleSubmit places a job and forwards it. Transport errors and
// 5xxs from the chosen node suspend it and reroute to the next-best
// healthy node; a node's own 4xx verdicts (bad spec, 429 queue-full)
// pass through — rerouting a full queue would defeat the node's
// admission control, and the coordinator's Retry-After passthrough
// keeps the client's backoff honest.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := workload.DecodeJobSpec(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	hint, err := c.hintFor(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	payload, err := json.Marshal(spec)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	tried := make(map[*member]bool)
	for {
		mb := c.place(hint, tried)
		if mb == nil {
			break
		}
		resp, err := c.forward(r.Context(), http.MethodPost, mb.url+"/v1/jobs", payload)
		if err != nil {
			c.unplace(mb, hint)
			c.suspend(mb, err)
			tried[mb] = true
			c.m.rerouted.Inc()
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			c.unplace(mb, hint)
			c.suspend(mb, fmt.Errorf("fleet: node %s: submit failed: %s", mb.id, resp.Status))
			tried[mb] = true
			c.m.rerouted.Inc()
			continue
		}
		if resp.StatusCode == http.StatusAccepted {
			c.recordPlacement(mb, hint)
		} else {
			c.unplace(mb, hint)
		}
		copyHeaders(w, resp, "Location", "Retry-After", "Content-Type")
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(body)
		return
	}
	c.m.routingFailed.Inc()
	writeErr(w, http.StatusServiceUnavailable,
		fmt.Errorf("fleet: no healthy node accepted the job"))
}

func copyHeaders(w http.ResponseWriter, resp *http.Response, keys ...string) {
	for _, k := range keys {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
}

// ownerOf routes a job ID to its shard by longest node-ID prefix
// match (IDs are minted as "<node-id>-job-%06d" by the owning node).
// Longest-prefix matters because node IDs may nest: with nodes "a"
// and "a-b", job "a-b-job-000001" belongs to "a-b".
func (c *Coordinator) ownerOf(id string) *member {
	var best *member
	for _, mb := range c.members {
		if len(id) > len(mb.id)+1 && id[:len(mb.id)] == mb.id && id[len(mb.id)] == '-' {
			if best == nil || len(mb.id) > len(best.id) {
				best = mb
			}
		}
	}
	return best
}

// handleJob proxies a job lookup to its owning shard. The proxy is
// attempted even when the shard is marked unhealthy — a draining or
// flapping node can still answer reads — and only a transport failure
// yields the shard-unavailable 503.
func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	mb := c.ownerOf(id)
	if mb == nil {
		writeErr(w, http.StatusNotFound,
			fmt.Errorf("fleet: unknown job %q (no node owns this ID prefix)", id))
		return
	}
	resp, err := c.forward(r.Context(), http.MethodGet, mb.url+"/v1/jobs/"+id, nil)
	if err != nil {
		c.m.proxyErrors.Inc()
		c.suspend(mb, err)
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Errorf("fleet: shard %s unavailable: %v", mb.id, err))
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	copyHeaders(w, resp, "Retry-After", "Content-Type")
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// handleJobs merges every node's job table. Unreachable nodes are
// reported by ID in "unavailable" rather than failing the whole list:
// a partial fleet view with provenance beats a 503.
func (c *Coordinator) handleJobs(w http.ResponseWriter, r *http.Request) {
	type nodeJobs struct {
		jobs        []json.RawMessage
		unavailable bool
	}
	results := make([]nodeJobs, len(c.members))
	var wg sync.WaitGroup
	for i, mb := range c.members {
		wg.Add(1)
		go func(i int, mb *member) {
			defer wg.Done()
			resp, err := c.forward(r.Context(), http.MethodGet, mb.url+"/v1/jobs", nil)
			if err != nil {
				c.m.proxyErrors.Inc()
				results[i].unavailable = true
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				c.m.proxyErrors.Inc()
				results[i].unavailable = true
				return
			}
			var out struct {
				Jobs []json.RawMessage `json:"jobs"`
			}
			if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&out); err != nil {
				c.m.proxyErrors.Inc()
				results[i].unavailable = true
				return
			}
			results[i].jobs = out.Jobs
		}(i, mb)
	}
	wg.Wait()
	merged := struct {
		Jobs        []json.RawMessage `json:"jobs"`
		Unavailable []string          `json:"unavailable,omitempty"`
	}{Jobs: []json.RawMessage{}}
	for i, res := range results {
		if res.unavailable {
			merged.Unavailable = append(merged.Unavailable, c.members[i].id)
			continue
		}
		merged.Jobs = append(merged.Jobs, res.jobs...)
	}
	writeJSON(w, http.StatusOK, merged)
}

// planNode is one node's slice of the aggregated plan view.
type planNode struct {
	Healthy        bool            `json:"healthy"`
	CapShareWatts  float64         `json:"cap_share_watts,omitempty"`
	Plan           json.RawMessage `json:"plan,omitempty"`
	AvgPowerWatts  float64         `json:"avg_power_watts,omitempty"`
	CapWatts       float64         `json:"cap_watts,omitempty"`
	CapUtilization float64         `json:"cap_utilization,omitempty"`
}

// handlePlan serves the fleet-wide plan aggregate: the budget, a
// power roll-up, and each node's latest epoch plan verbatim. The
// fan-out result is cached for PlanCacheTTL so N dashboards polling
// the coordinator do not turn into N×nodes upstream request streams.
func (c *Coordinator) handlePlan(w http.ResponseWriter, r *http.Request) {
	c.planMu.Lock()
	defer c.planMu.Unlock()
	if c.planCached != nil && time.Since(c.planAt) < c.cfg.PlanCacheTTL {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(c.planCached)
		return
	}
	body := c.buildPlan(r.Context())
	c.planCached = body
	c.planAt = time.Now()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (c *Coordinator) buildPlan(ctx context.Context) []byte {
	plans := make([]json.RawMessage, len(c.members))
	var wg sync.WaitGroup
	for i, mb := range c.members {
		wg.Add(1)
		go func(i int, mb *member) {
			defer wg.Done()
			resp, err := c.forward(ctx, http.MethodGet, mb.url+"/v1/plan", nil)
			if err != nil {
				c.m.proxyErrors.Inc()
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				// 404 just means no epoch planned yet; not an error.
				if resp.StatusCode != http.StatusNotFound {
					c.m.proxyErrors.Inc()
				}
				return
			}
			raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
			if err != nil {
				c.m.proxyErrors.Inc()
				return
			}
			plans[i] = raw
		}(i, mb)
	}
	wg.Wait()

	c.mu.Lock()
	view := struct {
		BudgetWatts   float64             `json:"budget_watts"`
		NodesTotal    int                 `json:"nodes_total"`
		NodesHealthy  int                 `json:"nodes_healthy"`
		AvgPowerWatts float64             `json:"avg_power_watts"`
		Nodes         map[string]planNode `json:"nodes"`
	}{
		BudgetWatts: c.budgetW,
		NodesTotal:  len(c.members),
		Nodes:       make(map[string]planNode, len(c.members)),
	}
	for i, mb := range c.members {
		if mb.healthy {
			view.NodesHealthy++
		}
		pn := planNode{Healthy: mb.healthy, CapShareWatts: mb.shareW}
		if plans[i] != nil {
			pn.Plan = plans[i]
			var summary struct {
				AvgPowerWatts  float64 `json:"avg_power_watts"`
				CapWatts       float64 `json:"cap_watts"`
				CapUtilization float64 `json:"cap_utilization"`
			}
			if json.Unmarshal(plans[i], &summary) == nil {
				pn.AvgPowerWatts = summary.AvgPowerWatts
				pn.CapWatts = summary.CapWatts
				pn.CapUtilization = summary.CapUtilization
				view.AvgPowerWatts += summary.AvgPowerWatts
			}
		}
		view.Nodes[mb.id] = pn
	}
	c.mu.Unlock()
	buf, _ := json.MarshalIndent(view, "", "  ")
	return append(buf, '\n')
}

func (c *Coordinator) handleGetCap(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]float64{"cap_watts": c.BudgetW()})
}

func (c *Coordinator) handleSetCap(w http.ResponseWriter, r *http.Request) {
	var req struct {
		CapWatts *float64 `json:"cap_watts"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil || req.CapWatts == nil {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf(`fleet: body must be {"cap_watts": <number>} (the fleet-wide budget; 0 = unmanaged)`))
		return
	}
	if err := c.SetBudgetW(r.Context(), *req.CapWatts); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"cap_watts": c.BudgetW()})
}

// handlePolicies proxies the registry listing from any healthy node —
// the registry is compiled into the binary, so every node answers the
// same.
func (c *Coordinator) handlePolicies(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	var target *member
	for _, mb := range c.members {
		if mb.healthy {
			target = mb
			break
		}
	}
	c.mu.Unlock()
	if target == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("fleet: no healthy node"))
		return
	}
	resp, err := c.forward(r.Context(), http.MethodGet, target.url+"/v1/policies", nil)
	if err != nil {
		c.m.proxyErrors.Inc()
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("fleet: node %s unavailable: %v", target.id, err))
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	copyHeaders(w, resp, "Content-Type")
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// handleSetPolicy broadcasts a policy change to every healthy node.
// Partial application is reported per node with a 502: the caller
// must know the fleet is split-brained on policy until the stragglers
// are retried.
func (c *Coordinator) handleSetPolicy(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Policy string `json:"policy"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf(`fleet: body must be {"policy": "<name>"}; GET /v1/policies lists the registered names`))
		return
	}
	canonical, err := policy.Canonical(req.Policy)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	c.mu.Lock()
	var targets []*member
	for _, mb := range c.members {
		if mb.healthy {
			targets = append(targets, mb)
		}
	}
	c.mu.Unlock()
	if len(targets) == 0 {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("fleet: no healthy node"))
		return
	}
	payload := []byte(fmt.Sprintf(`{"policy": %q}`, canonical))
	applied := []string{}
	failed := map[string]string{}
	for _, mb := range targets {
		resp, err := c.forward(r.Context(), http.MethodPost, mb.url+"/v1/policy", payload)
		if err != nil {
			failed[mb.id] = err.Error()
			c.suspend(mb, err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			failed[mb.id] = fmt.Sprintf("%s: %s", resp.Status, bytes.TrimSpace(body))
		} else {
			applied = append(applied, mb.id)
		}
		resp.Body.Close()
	}
	status := http.StatusOK
	if len(failed) > 0 {
		status = http.StatusBadGateway
	}
	writeJSON(w, status, map[string]any{
		"policy":  canonical,
		"applied": applied,
		"failed":  failed,
	})
}

// nodeView is one row of GET /v1/nodes.
type nodeView struct {
	ID            string  `json:"id"`
	URL           string  `json:"url"`
	Healthy       bool    `json:"healthy"`
	Status        string  `json:"status"`
	QueueDepth    int     `json:"queue_depth"`
	CapShareWatts float64 `json:"cap_share_watts"`
	CapWatts      float64 `json:"cap_watts"`
	Routed        uint64  `json:"routed"`
	PlacedCPUPref uint64  `json:"placed_cpu_pref"`
	PlacedGPUPref uint64  `json:"placed_gpu_pref"`
	LastError     string  `json:"last_error,omitempty"`
}

// handleNodes reports the coordinator's live member table — the
// operator's fleet dashboard and the load harness's per-node
// placement evidence.
func (c *Coordinator) handleNodes(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	views := make([]nodeView, 0, len(c.members))
	for _, mb := range c.members {
		views = append(views, nodeView{
			ID:            mb.id,
			URL:           mb.url,
			Healthy:       mb.healthy,
			Status:        mb.status,
			QueueDepth:    mb.queueDepth + mb.placedSincePoll,
			CapShareWatts: mb.shareW,
			CapWatts:      mb.reportedCapW,
			Routed:        mb.routed,
			PlacedCPUPref: mb.placedCPU,
			PlacedGPUPref: mb.placedGPU,
			LastError:     mb.lastErr,
		})
	}
	c.mu.Unlock()
	sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{
		"balancer": c.placer.Strategy().String(),
		"nodes":    views,
	})
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the fleet readiness gate: 200 while at least one
// node is in rotation, with every node's last probe status attached.
func (c *Coordinator) handleReady(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	nodes := make(map[string]string, len(c.members))
	healthy := 0
	for _, mb := range c.members {
		st := mb.status
		if st == "" {
			st = "unknown"
		}
		nodes[mb.id] = st
		if mb.healthy {
			healthy++
		}
	}
	c.mu.Unlock()
	body := map[string]any{
		"status":        "ready",
		"nodes_healthy": healthy,
		"nodes":         nodes,
	}
	if healthy == 0 {
		body["status"] = "unavailable"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}
