package fleet

import "corun/internal/promtext"

// metrics is the coordinator's own instrumentation, served from its
// GET /metrics — fleet-level series (prefix fleet_) distinct from the
// per-node corund_* series each member exposes itself.
type metrics struct {
	reg *promtext.Registry

	nodes      *promtext.Gauge
	healthy    *promtext.Gauge
	budget     *promtext.Gauge
	nodeUp     *promtext.GaugeVec
	capShare   *promtext.GaugeVec
	queueDepth *promtext.GaugeVec

	routed        *promtext.CounterVec
	placedCPU     *promtext.CounterVec
	placedGPU     *promtext.CounterVec
	rerouted      *promtext.Counter
	routingFailed *promtext.Counter
	proxyErrors   *promtext.Counter

	probeFailures *promtext.CounterVec
	rebalances    *promtext.Counter
	capPushErrors *promtext.CounterVec
}

func newMetrics() *metrics {
	reg := promtext.NewRegistry()
	return &metrics{
		reg: reg,
		nodes: reg.NewGauge("fleet_nodes",
			"Configured member nodes."),
		healthy: reg.NewGauge("fleet_nodes_healthy",
			"Member nodes currently in routing rotation."),
		budget: reg.NewGauge("fleet_power_budget_watts",
			"Fleet-wide power budget partitioned across nodes (0 = unmanaged)."),
		nodeUp: reg.NewGaugeVec("fleet_node_up",
			"1 while the node is healthy and in rotation, by node.", "node"),
		capShare: reg.NewGaugeVec("fleet_node_cap_share_watts",
			"Power-budget share most recently assigned to the node.", "node"),
		queueDepth: reg.NewGaugeVec("fleet_node_queue_depth",
			"Estimated pending jobs on the node (last reported depth plus jobs routed since).", "node"),
		routed: reg.NewCounterVec("fleet_jobs_routed_total",
			"Jobs accepted by the fleet, by owning node.", "node"),
		placedCPU: reg.NewCounterVec("fleet_placed_cpu_pref_total",
			"Routed jobs whose standalone time favors the CPU, by node.", "node"),
		placedGPU: reg.NewCounterVec("fleet_placed_gpu_pref_total",
			"Routed jobs whose standalone time favors the GPU, by node.", "node"),
		rerouted: reg.NewCounter("fleet_jobs_rerouted_total",
			"Submissions re-placed on another node after the first choice failed."),
		routingFailed: reg.NewCounter("fleet_routing_failures_total",
			"Submissions refused with 503 because no healthy node accepted them."),
		proxyErrors: reg.NewCounter("fleet_proxy_errors_total",
			"Proxied reads (job lookups, fan-outs) that failed upstream."),
		probeFailures: reg.NewCounterVec("fleet_health_probe_failures_total",
			"Failed /readyz probes (transport error or identity mismatch), by node.", "node"),
		rebalances: reg.NewCounter("fleet_rebalances_total",
			"Power-budget repartition rounds completed."),
		capPushErrors: reg.NewCounterVec("fleet_cap_push_errors_total",
			"Failed attempts to apply a budget share via the node's POST /v1/cap, by node.", "node"),
	}
}
