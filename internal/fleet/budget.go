package fleet

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net/http"
)

// Partition splits a fleet-wide power budget across nodes in
// proportion to demand: every healthy node gets the floor, and the
// remainder is divided by demand share (each node weighted demand+1,
// so an idle fleet still splits the budget evenly instead of by
// division-by-zero luck). Unhealthy nodes get 0 — their watts are
// reclaimed and redistributed, which is what lets the survivors speed
// up when a node dies.
//
// If the budget cannot cover the floors, the floors are abandoned and
// the whole budget is split by demand share alone: an over-subscribed
// fleet degrades proportionally rather than over-committing the cap.
func Partition(budgetW, floorW float64, demand []float64, healthy []bool) []float64 {
	shares := make([]float64, len(demand))
	if budgetW <= 0 {
		return shares
	}
	nHealthy := 0
	sumD := 0.0
	for i, h := range healthy {
		if !h {
			continue
		}
		nHealthy++
		sumD += math.Max(demand[i], 0) + 1
	}
	if nHealthy == 0 {
		return shares
	}
	floor := floorW
	if floor*float64(nHealthy) > budgetW {
		floor = 0
	}
	extra := budgetW - floor*float64(nHealthy)
	for i, h := range healthy {
		if !h {
			continue
		}
		shares[i] = floor + extra*(math.Max(demand[i], 0)+1)/sumD
	}
	return shares
}

// rebalance recomputes the budget partition from the latest load
// snapshot and pushes changed shares to the nodes via POST /v1/cap.
// Shares within 0.25 W of what a node already runs are left alone
// (hysteresis): constant micro-adjustments would churn every node's
// journal for no scheduling effect.
func (c *Coordinator) rebalance(ctx context.Context) {
	c.mu.Lock()
	budget := c.budgetW
	if budget <= 0 {
		c.mu.Unlock()
		return
	}
	demand := make([]float64, len(c.members))
	healthy := make([]bool, len(c.members))
	for i, mb := range c.members {
		demand[i] = float64(mb.queueDepth + mb.placedSincePoll)
		healthy[i] = mb.healthy
	}
	shares := Partition(budget, c.cfg.FloorW, demand, healthy)
	type push struct {
		mb *member
		w  float64
	}
	var pushes []push
	for i, mb := range c.members {
		mb.shareW = shares[i]
		c.m.capShare.Set(mb.id, shares[i])
		if !healthy[i] {
			continue
		}
		if math.Abs(shares[i]-mb.appliedW) > 0.25 {
			pushes = append(pushes, push{mb, shares[i]})
		}
	}
	c.mu.Unlock()

	for _, p := range pushes {
		if err := c.pushCap(ctx, p.mb.url, p.w); err != nil {
			c.m.capPushErrors.Inc(p.mb.id)
			continue
		}
		c.mu.Lock()
		p.mb.appliedW = p.w
		c.mu.Unlock()
	}
	c.m.rebalances.Inc()
}

// pushCap applies one node's share through its live cap endpoint.
func (c *Coordinator) pushCap(ctx context.Context, baseURL string, w float64) error {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.RebalanceInterval)
	defer cancel()
	body := fmt.Sprintf(`{"cap_watts": %g}`, w)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/cap", bytes.NewReader([]byte(body)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: node rejected cap %g W: %s", w, resp.Status)
	}
	return nil
}
