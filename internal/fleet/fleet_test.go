package fleet_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"corun/internal/fleet"
	"corun/internal/online"
	"corun/internal/server"
)

// testNode is one in-process corund daemon behind a real TCP
// listener (the coordinator talks HTTP, so httptest is not enough —
// the restart test needs to re-listen on the same port).
type testNode struct {
	id      string
	dataDir string
	s       *server.Server
	srv     *http.Server
	addr    string
	url     string
	stopped bool
}

// startNode launches a daemon with the random policy (no
// characterization needed) and a fast epoch loop. addr "" picks a
// fresh loopback port; passing a previous node's addr re-listens on
// it, which is how a restarted node keeps its URL.
func startNode(t testing.TB, id, dataDir, addr string) *testNode {
	t.Helper()
	s, err := server.New(server.Config{
		Cap:      15,
		Policy:   online.PolicyRandom,
		Seed:     1,
		EpochGap: 2 * time.Millisecond,
		NodeID:   id,
		DataDir:  dataDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if attempt > 50 {
			t.Fatalf("listening on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond) // a just-closed port can linger briefly
	}
	s.Start(context.Background())
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	n := &testNode{
		id: id, dataDir: dataDir, s: s, srv: srv,
		addr: ln.Addr().String(), url: "http://" + ln.Addr().String(),
	}
	t.Cleanup(func() { n.kill() })
	return n
}

// stopGracefully drains and closes the node — the clean restart path,
// which flushes the journal.
func (n *testNode) stopGracefully(t testing.TB) {
	t.Helper()
	if n.stopped {
		return
	}
	n.stopped = true
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := n.s.DrainAndWait(ctx); err != nil {
		t.Fatalf("draining %s: %v", n.id, err)
	}
	if err := n.s.Close(); err != nil {
		t.Fatalf("closing %s: %v", n.id, err)
	}
	n.srv.Close()
}

// kill drops the node abruptly: listener and connections die, the
// scheduler goroutine is left to the process exit — the crash path.
func (n *testNode) kill() {
	if n.stopped {
		return
	}
	n.stopped = true
	n.srv.Close()
	n.s.Close()
}

// startFleet fronts the nodes with a coordinator on fast intervals
// and waits for every node to enter rotation.
func startFleet(t testing.TB, nodes []*testNode, budgetW float64) (*fleet.Coordinator, string) {
	t.Helper()
	cfgNodes := make([]fleet.NodeConfig, len(nodes))
	for i, n := range nodes {
		cfgNodes[i] = fleet.NodeConfig{ID: n.id, URL: n.url}
	}
	co, err := fleet.New(fleet.Config{
		Nodes:             cfgNodes,
		BudgetW:           budgetW,
		HealthInterval:    50 * time.Millisecond,
		RebalanceInterval: 100 * time.Millisecond,
		PlanCacheTTL:      20 * time.Millisecond,
		Client:            &http.Client{Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	co.Start(ctx)
	t.Cleanup(func() { cancel(); co.Stop() })
	ts := httptest.NewServer(co.Handler())
	t.Cleanup(ts.Close)
	waitFor(t, 5*time.Second, func() bool { return co.HealthyNodes() == len(nodes) },
		"all nodes healthy")
	return co, ts.URL
}

func waitFor(t testing.TB, within time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func submitJob(t testing.TB, baseURL, program string) (string, int) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json",
		strings.NewReader(fmt.Sprintf(`{"program": %q}`, program)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return "", resp.StatusCode
	}
	var j struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &j); err != nil || j.ID == "" {
		t.Fatalf("submit: bad body %s", body)
	}
	return j.ID, resp.StatusCode
}

func getStatus(t testing.TB, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestParseNodes(t *testing.T) {
	nodes, err := fleet.ParseNodes("n0=http://a:1, n1=http://b:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0].ID != "n0" || nodes[1].URL != "http://b:2" {
		t.Fatalf("ParseNodes = %+v", nodes)
	}
	nodes, err = fleet.ParseNodes("http://a:1,http://b:2")
	if err != nil {
		t.Fatal(err)
	}
	if nodes[0].ID != "n0" || nodes[1].ID != "n1" {
		t.Fatalf("bare URLs should get positional IDs, got %+v", nodes)
	}
	for _, bad := range []string{"", "  ", "a=http://x,,b=http://y"} {
		if _, err := fleet.ParseNodes(bad); err == nil {
			t.Errorf("ParseNodes(%q) should fail", bad)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	base := func() fleet.Config {
		return fleet.Config{Nodes: []fleet.NodeConfig{{ID: "n0", URL: "http://a:1"}}}
	}
	if _, err := fleet.New(base()); err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
	bad := base()
	bad.Nodes = nil
	if _, err := fleet.New(bad); err == nil {
		t.Error("empty node set accepted")
	}
	bad = base()
	bad.Nodes = append(bad.Nodes, fleet.NodeConfig{ID: "n0", URL: "http://b:2"})
	if _, err := fleet.New(bad); err == nil {
		t.Error("duplicate node ID accepted")
	}
	bad = base()
	bad.Nodes[0].URL = "ftp://a:1"
	if _, err := fleet.New(bad); err == nil {
		t.Error("non-http URL accepted")
	}
	bad = base()
	bad.Nodes[0].ID = "has spaces"
	if _, err := fleet.New(bad); err == nil {
		t.Error("invalid node ID accepted")
	}
	bad = base()
	bad.BudgetW = -1
	if _, err := fleet.New(bad); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestPartition(t *testing.T) {
	sum := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s
	}
	// Demand-proportional on top of floors, summing to the budget.
	shares := fleet.Partition(40, 5, []float64{0, 10, 30}, []bool{true, true, true})
	if math.Abs(sum(shares)-40) > 1e-9 {
		t.Fatalf("shares %v sum to %v, want 40", shares, sum(shares))
	}
	for i, s := range shares {
		if s < 5 {
			t.Fatalf("node %d share %v below the 5W floor", i, s)
		}
	}
	if !(shares[2] > shares[1] && shares[1] > shares[0]) {
		t.Fatalf("shares %v should increase with demand", shares)
	}

	// Unhealthy nodes get nothing; their watts go to the survivors.
	shares = fleet.Partition(40, 5, []float64{10, 10, 10}, []bool{true, false, true})
	if shares[1] != 0 {
		t.Fatalf("unhealthy node got %v W", shares[1])
	}
	if math.Abs(sum(shares)-40) > 1e-9 {
		t.Fatalf("shares %v should still sum to the budget", shares)
	}
	if math.Abs(shares[0]-20) > 1e-9 || math.Abs(shares[2]-20) > 1e-9 {
		t.Fatalf("equal-demand survivors should split evenly, got %v", shares)
	}

	// A budget below the floors degrades proportionally instead of
	// over-committing.
	shares = fleet.Partition(6, 5, []float64{0, 0}, []bool{true, true})
	if math.Abs(sum(shares)-6) > 1e-9 {
		t.Fatalf("over-subscribed shares %v exceed the budget", shares)
	}

	// Nothing healthy, or no budget: all zeros.
	for _, shares := range [][]float64{
		fleet.Partition(40, 5, []float64{1, 1}, []bool{false, false}),
		fleet.Partition(0, 5, []float64{1, 1}, []bool{true, true}),
	} {
		if sum(shares) != 0 {
			t.Fatalf("expected zero shares, got %v", shares)
		}
	}
}

// TestRoutingInvariant is the core shard-consistency property: every
// job ID the fleet hands out resolves on exactly one node, that node
// is the one its ID prefix names, and the coordinator's answer for it
// matches the owning node's own.
func TestRoutingInvariant(t *testing.T) {
	nodes := []*testNode{
		startNode(t, "n0", "", ""),
		startNode(t, "n1", "", ""),
		startNode(t, "n2", "", ""),
	}
	_, coURL := startFleet(t, nodes, 0)

	var ids []string
	for i := 0; i < 30; i++ {
		id, status := submitJob(t, coURL, "lud")
		if status != http.StatusAccepted {
			t.Fatalf("submit %d -> %d", i, status)
		}
		ids = append(ids, id)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate job ID %s across the fleet", id)
		}
		seen[id] = true
		owners := 0
		var direct string
		for _, n := range nodes {
			status, body := getStatus(t, n.url+"/v1/jobs/"+id)
			switch status {
			case http.StatusOK:
				owners++
				direct = body
				if !strings.HasPrefix(id, n.id+"-") {
					t.Fatalf("job %s resolved on node %s, which its prefix does not name", id, n.id)
				}
			case http.StatusNotFound:
			default:
				t.Fatalf("direct GET %s on %s -> %d", id, n.id, status)
			}
		}
		if owners != 1 {
			t.Fatalf("job %s resolves on %d nodes, want exactly 1", id, owners)
		}
		status, viaCo := getStatus(t, coURL+"/v1/jobs/"+id)
		if status != http.StatusOK {
			t.Fatalf("coordinator GET %s -> %d", id, status)
		}
		var a, b struct {
			ID      string `json:"id"`
			Program string `json:"program"`
		}
		if err := json.Unmarshal([]byte(viaCo), &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal([]byte(direct), &b); err != nil {
			t.Fatal(err)
		}
		if a.ID != b.ID || a.Program != b.Program {
			t.Fatalf("coordinator and owning node disagree on %s: %+v vs %+v", id, a, b)
		}
	}

	// An ID no node's prefix matches is a clean 404, not a proxy shrug.
	if status, _ := getStatus(t, coURL+"/v1/jobs/zz-job-000001"); status != http.StatusNotFound {
		t.Fatalf("unroutable job ID -> %d, want 404", status)
	}

	// The fan-out list sees every job.
	status, body := getStatus(t, coURL+"/v1/jobs")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/jobs -> %d", status)
	}
	var list struct {
		Jobs []struct {
			ID string `json:"id"`
		} `json:"jobs"`
		Unavailable []string `json:"unavailable"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Unavailable) != 0 {
		t.Fatalf("healthy fleet reported unavailable nodes: %v", list.Unavailable)
	}
	listed := map[string]bool{}
	for _, j := range list.Jobs {
		listed[j.ID] = true
	}
	for _, id := range ids {
		if !listed[id] {
			t.Fatalf("job %s missing from the fleet-wide list", id)
		}
	}

	// The aggregated plan view carries the fleet summary.
	status, body = getStatus(t, coURL+"/v1/plan")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/plan -> %d", status)
	}
	var plan struct {
		NodesTotal   int                        `json:"nodes_total"`
		NodesHealthy int                        `json:"nodes_healthy"`
		Nodes        map[string]json.RawMessage `json:"nodes"`
	}
	if err := json.Unmarshal([]byte(body), &plan); err != nil {
		t.Fatal(err)
	}
	if plan.NodesTotal != 3 || plan.NodesHealthy != 3 || len(plan.Nodes) != 3 {
		t.Fatalf("plan summary %s", body)
	}
}

// TestNodeFailureIsolation kills one node and checks the blast
// radius: only that shard's jobs 503, the rest keep serving, and new
// submissions flow to the survivors.
func TestNodeFailureIsolation(t *testing.T) {
	nodes := []*testNode{
		startNode(t, "n0", "", ""),
		startNode(t, "n1", "", ""),
		startNode(t, "n2", "", ""),
	}
	co, coURL := startFleet(t, nodes, 0)

	var ids []string
	for i := 0; i < 30; i++ {
		id, status := submitJob(t, coURL, "hotspot")
		if status != http.StatusAccepted {
			t.Fatalf("submit %d -> %d", i, status)
		}
		ids = append(ids, id)
	}
	perNode := map[string]int{}
	for _, id := range ids {
		perNode[strings.SplitN(id, "-job-", 2)[0]]++
	}
	for _, n := range nodes {
		if perNode[n.id] == 0 {
			t.Fatalf("node %s got no jobs before the failure (placement %v)", n.id, perNode)
		}
	}

	nodes[1].kill()
	waitFor(t, 5*time.Second, func() bool { return co.HealthyNodes() == 2 },
		"the killed node to leave rotation")

	for _, id := range ids {
		status, _ := getStatus(t, coURL+"/v1/jobs/"+id)
		if strings.HasPrefix(id, "n1-") {
			if status != http.StatusServiceUnavailable {
				t.Fatalf("dead shard's job %s -> %d, want 503", id, status)
			}
		} else if status != http.StatusOK {
			t.Fatalf("surviving shard's job %s -> %d, want 200", id, status)
		}
	}

	for i := 0; i < 12; i++ {
		id, status := submitJob(t, coURL, "hotspot")
		if status != http.StatusAccepted {
			t.Fatalf("post-failure submit %d -> %d", i, status)
		}
		if strings.HasPrefix(id, "n1-") {
			t.Fatalf("job %s routed to the dead node", id)
		}
	}

	// The fleet stays ready with one node down; the list degrades to a
	// partial view that names the missing shard.
	if status, _ := getStatus(t, coURL+"/readyz"); status != http.StatusOK {
		t.Fatalf("fleet /readyz -> %d with survivors up", status)
	}
	status, body := getStatus(t, coURL+"/v1/jobs")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/jobs -> %d", status)
	}
	var list struct {
		Unavailable []string `json:"unavailable"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Unavailable) != 1 || list.Unavailable[0] != "n1" {
		t.Fatalf("unavailable = %v, want [n1]", list.Unavailable)
	}
}

// TestRestartRecovery restarts a journaled node on its old port and
// checks the coordinator serves its recovered records — the same
// answer via the fleet API as from the node directly.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	n0 := startNode(t, "n0", dir, "")
	rest := []*testNode{startNode(t, "n1", "", ""), startNode(t, "n2", "", "")}
	co, coURL := startFleet(t, []*testNode{n0, rest[0], rest[1]}, 0)

	var n0IDs []string
	for i := 0; i < 18; i++ {
		id, status := submitJob(t, coURL, "lud")
		if status != http.StatusAccepted {
			t.Fatalf("submit %d -> %d", i, status)
		}
		if strings.HasPrefix(id, "n0-") {
			n0IDs = append(n0IDs, id)
		}
	}
	if len(n0IDs) == 0 {
		t.Fatal("no job landed on the journaled node")
	}

	addr := n0.addr
	n0.stopGracefully(t)
	waitFor(t, 5*time.Second, func() bool { return co.HealthyNodes() == 2 },
		"the stopped node to leave rotation")

	restarted := startNode(t, "n0", dir, addr)
	waitFor(t, 5*time.Second, func() bool { return co.HealthyNodes() == 3 },
		"the restarted node to rejoin")

	// Let the recovered queue drain so both reads see a settled record.
	waitFor(t, 10*time.Second, func() bool {
		for _, j := range restarted.s.Jobs() {
			if !j.State.Terminal() {
				return false
			}
		}
		return true
	}, "recovered jobs to finish")

	for _, id := range n0IDs {
		coStatus, viaCo := getStatus(t, coURL+"/v1/jobs/"+id)
		dStatus, direct := getStatus(t, restarted.url+"/v1/jobs/"+id)
		if coStatus != http.StatusOK || dStatus != http.StatusOK {
			t.Fatalf("recovered job %s: coordinator %d, direct %d", id, coStatus, dStatus)
		}
		if viaCo != direct {
			t.Fatalf("recovered job %s: coordinator and node answers differ:\n%s\nvs\n%s", id, viaCo, direct)
		}
	}

	// The restarted node resumes its ID sequence: new submissions mint
	// fresh n0-prefixed IDs, never reusing a recovered one.
	known := map[string]bool{}
	for _, id := range n0IDs {
		known[id] = true
	}
	for i := 0; i < 9; i++ {
		id, status := submitJob(t, coURL, "lud")
		if status != http.StatusAccepted {
			t.Fatalf("post-restart submit -> %d", status)
		}
		if known[id] {
			t.Fatalf("restarted node re-minted recovered ID %s", id)
		}
	}
}

// TestBudgetPartitionLive checks the coordinator actually drives the
// nodes' caps: an idle fleet splits the budget evenly, and changing
// the budget through the fleet API repartitions immediately.
func TestBudgetPartitionLive(t *testing.T) {
	nodes := []*testNode{startNode(t, "n0", "", ""), startNode(t, "n1", "", "")}
	_, coURL := startFleet(t, nodes, 40)

	nodeCap := func(n *testNode) float64 {
		status, body := getStatus(t, n.url+"/readyz")
		if status != http.StatusOK {
			return -1
		}
		var st struct {
			CapWatts float64 `json:"cap_watts"`
		}
		if json.Unmarshal([]byte(body), &st) != nil {
			return -1
		}
		return st.CapWatts
	}
	waitFor(t, 5*time.Second, func() bool {
		return math.Abs(nodeCap(nodes[0])-20) < 0.5 && math.Abs(nodeCap(nodes[1])-20) < 0.5
	}, "the idle fleet to split the budget evenly")

	status, body := getStatus(t, coURL+"/v1/cap")
	if status != http.StatusOK || !strings.Contains(body, "40") {
		t.Fatalf("GET /v1/cap -> %d %s", status, body)
	}
	resp, err := http.Post(coURL+"/v1/cap", "application/json", strings.NewReader(`{"cap_watts": 12}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/cap -> %d", resp.StatusCode)
	}
	waitFor(t, 5*time.Second, func() bool {
		return math.Abs(nodeCap(nodes[0])-6) < 0.5 && math.Abs(nodeCap(nodes[1])-6) < 0.5
	}, "the new budget to reach the nodes")
}

// TestIdentityMismatch keeps a mis-wired node out of rotation: the
// daemon answers /readyz, but as a different identity than the
// coordinator was configured to expect.
func TestIdentityMismatch(t *testing.T) {
	n := startNode(t, "actual", "", "")
	co, err := fleet.New(fleet.Config{
		Nodes:          []fleet.NodeConfig{{ID: "expected", URL: n.url}},
		HealthInterval: 50 * time.Millisecond,
		Client:         &http.Client{Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	co.Start(ctx)
	defer co.Stop()
	if co.HealthyNodes() != 0 {
		t.Fatal("identity-mismatched node entered rotation")
	}
	ts := httptest.NewServer(co.Handler())
	defer ts.Close()
	if status, _ := getStatus(t, ts.URL+"/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("fleet /readyz -> %d with no trusted node, want 503", status)
	}
	if _, status := submitJob(t, ts.URL, "lud"); status != http.StatusServiceUnavailable {
		t.Fatalf("submit with no trusted node -> %d, want 503", status)
	}
}
