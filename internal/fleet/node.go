package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// member is the coordinator's live view of one corund node. All
// mutable fields are guarded by the Coordinator mutex.
type member struct {
	id  string
	url string

	healthy bool
	status  string // last reported /readyz status ("ready", "degraded", ...)
	lastErr string
	fails   int // consecutive probe transport failures

	// Load signal for placement: the queue depth the node last
	// reported, plus everything routed to it since that report (the
	// poll-interval blind spot). biasGPU is the device-preference mix
	// of the pending backlog estimate; it resets when the node reports
	// an empty queue.
	queueDepth      int
	placedSincePoll int
	biasGPU         float64

	// Power bookkeeping: the cap the node reported on /readyz, the
	// share the partitioner last assigned, and the share last actually
	// applied (hysteresis reference).
	reportedCapW float64
	shareW       float64
	appliedW     float64

	// Routing counters (mirrored to /metrics and GET /v1/nodes).
	routed    uint64
	placedCPU uint64
	placedGPU uint64
}

// nodeReady mirrors the corund /readyz body (server.readyStatus).
type nodeReady struct {
	Status     string  `json:"status"`
	Node       string  `json:"node"`
	QueueDepth int     `json:"queue_depth"`
	CapWatts   float64 `json:"cap_watts"`
}

// probeAll refreshes every member's health and load snapshot in
// parallel and updates the fleet gauges.
func (c *Coordinator) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, mb := range c.members {
		wg.Add(1)
		go func(mb *member) {
			defer wg.Done()
			c.probe(ctx, mb)
		}(mb)
	}
	wg.Wait()

	c.mu.Lock()
	healthy := 0
	for _, mb := range c.members {
		if mb.healthy {
			healthy++
		}
		c.m.queueDepth.Set(mb.id, float64(mb.queueDepth+mb.placedSincePoll))
		h := 0.0
		if mb.healthy {
			h = 1
		}
		c.m.nodeUp.Set(mb.id, h)
	}
	c.mu.Unlock()
	c.m.healthy.Set(float64(healthy))
}

// probe hits one node's /readyz. A well-formed answer takes effect
// immediately (ready → healthy, draining/degraded/starting →
// unhealthy); transport errors flip the node only after
// HealthFailures consecutive misses, so one dropped packet does not
// eject a serving node. An answer claiming a different node identity
// is a mis-wiring (two fleets sharing a port, a stale DNS entry) and
// keeps the node out of rotation.
func (c *Coordinator) probe(ctx context.Context, mb *member) {
	st, err := c.fetchReady(ctx, mb.url)

	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		mb.fails++
		mb.lastErr = err.Error()
		c.m.probeFailures.Inc(mb.id)
		if mb.fails >= c.cfg.HealthFailures {
			mb.healthy = false
			mb.status = "unreachable"
		}
		return
	}
	mb.fails = 0
	mb.status = st.Status
	mb.queueDepth = st.QueueDepth
	mb.placedSincePoll = 0
	if st.QueueDepth == 0 {
		mb.biasGPU = 0
	}
	mb.reportedCapW = st.CapWatts
	switch {
	case st.Node != mb.id:
		mb.healthy = false
		mb.lastErr = fmt.Sprintf("node identity mismatch: probe of %s answered as %q", mb.id, st.Node)
		mb.status = "misconfigured"
		c.m.probeFailures.Inc(mb.id)
	case st.Status == "ready":
		mb.healthy = true
		mb.lastErr = ""
	default:
		mb.healthy = false
		mb.lastErr = ""
	}
}

// fetchReady performs the /readyz request and decodes the body
// regardless of status code — a 503 "draining" answer still carries
// the node's identity and stats.
func (c *Coordinator) fetchReady(ctx context.Context, baseURL string) (nodeReady, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.HealthInterval*2+time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/readyz", nil)
	if err != nil {
		return nodeReady{}, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nodeReady{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return nodeReady{}, err
	}
	var st nodeReady
	if err := json.Unmarshal(body, &st); err != nil {
		return nodeReady{}, fmt.Errorf("bad /readyz body: %w", err)
	}
	if st.Status == "" {
		return nodeReady{}, fmt.Errorf("bad /readyz body: no status")
	}
	return st, nil
}

// suspend marks a member unhealthy after a routing failure (transport
// error or 5xx on a forwarded request) without waiting for the next
// probe round, so the very next placement already avoids it. The
// health loop re-admits it when /readyz answers ready again.
func (c *Coordinator) suspend(mb *member, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	mb.healthy = false
	mb.status = "unreachable"
	if err != nil {
		mb.lastErr = err.Error()
	}
	c.m.nodeUp.Set(mb.id, 0)
}
