// Package fleet shards corund into a power-partitioned multi-node
// cluster. A Coordinator fronts N independent corund daemons — each
// with its own journal, cap, admission selector, and epoch loop — and
// speaks the same /v1/* JSON API outward while routing inward over
// HTTP:
//
//   - Placement is fragmentation-aware: the coordinator scores nodes
//     with internal/cluster's Placer (headroom-aware by default),
//     weighing each node's pending backlog against its live share of
//     the global power budget and balancing CPU- vs GPU-preferred work
//     per node so cap headroom is spent on co-run pairings instead of
//     fragmenting across one-sided backlogs ("Power- and
//     Fragmentation-aware Online Scheduling for GPU Datacenters",
//     PAPERS.md, is the motivating placement objective).
//   - The global power budget is partitioned across nodes and
//     rebalanced as load shifts: every rebalance interval each healthy
//     node gets a floor plus a demand-proportional slice, applied live
//     through the nodes' POST /v1/cap.
//   - Routing is consistent: nodes mint job IDs under their own stable
//     identity ("<node-id>-job-%06d", corund's -node-id flag), so
//     GET /v1/jobs/{id} resolves its owning shard by longest ID-prefix
//     match — the same record whether asked via the coordinator or the
//     node directly, including after a node restarts and recovers from
//     its journal.
//   - Health is tracked per node by polling /readyz (which doubles as
//     the stats feed: identity, queue depth, applied cap); submissions
//     retry-or-reroute across the remaining healthy nodes when a node
//     fails, and a dead node 503s only its own shard's reads.
package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"corun/internal/apu"
	"corun/internal/cluster"
	"corun/internal/memsys"
	"corun/internal/server"
	"corun/internal/workload"
)

// NodeConfig names one member daemon: its stable identity (the
// corund -node-id, embedded in the jobs IDs it mints) and its base
// URL.
type NodeConfig struct {
	ID  string
	URL string
}

// ParseNodes parses the -nodes flag grammar: a comma list of id=url
// terms (e.g. "n0=http://127.0.0.1:8081,n1=http://127.0.0.1:8082").
// Bare URLs are assigned positional IDs n0, n1, ... — only correct if
// the daemons were started with matching -node-id values.
func ParseNodes(spec string) ([]NodeConfig, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("fleet: empty node list")
	}
	var out []NodeConfig
	for i, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			return nil, fmt.Errorf("fleet: empty node term")
		}
		id, url, ok := strings.Cut(term, "=")
		if !ok {
			id, url = fmt.Sprintf("n%d", i), term
		}
		out = append(out, NodeConfig{ID: strings.TrimSpace(id), URL: strings.TrimSpace(url)})
	}
	return out, nil
}

// Config configures a Coordinator.
type Config struct {
	// Nodes is the member set. IDs must be valid corund node IDs,
	// mutually distinct, and match each daemon's -node-id (verified on
	// every health probe; a mismatch keeps the node out of rotation).
	Nodes []NodeConfig

	// BudgetW is the fleet-wide power budget partitioned across healthy
	// nodes. 0 disables power management: nodes keep whatever cap they
	// were started with, and placement headroom falls back to the cap
	// each node reports on /readyz.
	BudgetW float64

	// FloorW is the minimum share a healthy node is ever assigned
	// (default 5 W — above the default machine's minimum co-run power,
	// so a floored node still schedules). Demand-proportional slices
	// are handed out on top of the floors.
	FloorW float64

	// Balancer picks the placement policy; defaults to
	// cluster.HeadroomAware, the fragmentation-aware scorer.
	Balancer cluster.Balancer

	// Machine and Mem drive placement hints (standalone-time estimates
	// at max frequency — no characterization needed); they default to
	// the paper's Ivy Bridge-like node and should match the members.
	Machine *apu.Config
	Mem     *memsys.Model

	// HealthInterval is the /readyz poll period (default 500ms);
	// HealthFailures is how many consecutive probe transport errors
	// mark a node unhealthy (default 2; a well-formed not-ready answer
	// takes effect immediately).
	HealthInterval time.Duration
	HealthFailures int

	// RebalanceInterval is the power-budget repartition period
	// (default 2s). Ignored when BudgetW is 0.
	RebalanceInterval time.Duration

	// PlanCacheTTL bounds the staleness of the aggregated GET /v1/plan
	// fan-out (default 100ms): fleet-wide reads are served from a
	// cached aggregate so dashboards polling the coordinator do not
	// multiply into N upstream requests each.
	PlanCacheTTL time.Duration

	// RequestTimeout is the per-request deadline on the coordinator's
	// own API (default 0 = none); Client overrides the upstream HTTP
	// client (default: 5s timeout).
	RequestTimeout time.Duration
	Client         *http.Client
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.FloorW == 0 {
		out.FloorW = 5
	}
	if out.Balancer == 0 && out.BudgetW != 0 {
		// The zero Balancer value is RoundRobin; a power-managed fleet
		// wants the fragmentation-aware default unless explicitly asked
		// otherwise (use NewWithBalancer semantics via Config.Balancer).
		out.Balancer = cluster.HeadroomAware
	}
	if out.Machine == nil {
		out.Machine = apu.DefaultConfig()
	}
	if out.Mem == nil {
		out.Mem = memsys.Default()
	}
	if out.HealthInterval == 0 {
		out.HealthInterval = 500 * time.Millisecond
	}
	if out.HealthFailures == 0 {
		out.HealthFailures = 2
	}
	if out.RebalanceInterval == 0 {
		out.RebalanceInterval = 2 * time.Second
	}
	if out.PlanCacheTTL == 0 {
		out.PlanCacheTTL = 100 * time.Millisecond
	}
	if out.Client == nil {
		// Every data-path request is proxied to a handful of node URLs,
		// so the stock two-idle-conns-per-host transport would churn TCP
		// connections under any real concurrency. Pool generously.
		out.Client = &http.Client{
			Timeout: 5 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	return out
}

// Coordinator fronts the fleet: it owns the member table, the placer,
// the power-budget partition, and the outward /v1/* API.
type Coordinator struct {
	cfg    Config
	client *http.Client
	m      *metrics

	mu      sync.Mutex
	members []*member
	placer  *cluster.Placer
	budgetW float64

	planMu     sync.Mutex
	planCached []byte
	planAt     time.Time

	cmax, gmax int // cached max frequency indices for placement hints

	stop     chan struct{}
	stopOnce sync.Once
	started  sync.Once
}

// New validates the configuration and builds a coordinator. Call
// Start to launch the health and rebalance loops.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("fleet: no nodes configured")
	}
	if cfg.BudgetW < 0 {
		return nil, fmt.Errorf("fleet: negative power budget %g", cfg.BudgetW)
	}
	if cfg.FloorW < 0 {
		return nil, fmt.Errorf("fleet: negative node floor %g", cfg.FloorW)
	}
	placer, err := cluster.NewPlacer(cfg.Balancer)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		client:  cfg.Client,
		m:       newMetrics(),
		placer:  placer,
		budgetW: cfg.BudgetW,
		stop:    make(chan struct{}),
		cmax:    cfg.Machine.MaxFreqIndex(apu.CPU),
		gmax:    cfg.Machine.MaxFreqIndex(apu.GPU),
	}
	seenID, seenURL := map[string]bool{}, map[string]bool{}
	for _, nc := range cfg.Nodes {
		if nc.ID == "" || server.ValidateNodeID(nc.ID) != nil {
			return nil, fmt.Errorf("fleet: invalid node ID %q", nc.ID)
		}
		if !strings.HasPrefix(nc.URL, "http://") && !strings.HasPrefix(nc.URL, "https://") {
			return nil, fmt.Errorf("fleet: node %s: URL %q must be http(s)", nc.ID, nc.URL)
		}
		if seenID[nc.ID] || seenURL[nc.URL] {
			return nil, fmt.Errorf("fleet: duplicate node %s (%s)", nc.ID, nc.URL)
		}
		seenID[nc.ID], seenURL[nc.URL] = true, true
		c.members = append(c.members, &member{
			id:  nc.ID,
			url: strings.TrimRight(nc.URL, "/"),
		})
	}
	c.m.nodes.Set(float64(len(c.members)))
	c.m.budget.Set(c.budgetW)
	return c, nil
}

// Start probes every node once (synchronously, so routing can begin
// against whatever is already up) and launches the health and
// rebalance loops. Idempotent.
func (c *Coordinator) Start(ctx context.Context) {
	c.started.Do(func() {
		c.probeAll(ctx)
		c.rebalance(ctx)
		go c.healthLoop(ctx)
		if c.cfg.BudgetW > 0 {
			go c.rebalanceLoop(ctx)
		}
	})
}

// Stop ends the background loops; idempotent.
func (c *Coordinator) Stop() { c.stopOnce.Do(func() { close(c.stop) }) }

// WaitReady blocks until at least one node is healthy or the deadline
// passes — the readiness gate fleet clients (and corunbench's fleet
// mode) poll instead of sleeping a fixed interval.
func (c *Coordinator) WaitReady(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if c.HealthyNodes() > 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: no node became ready within %v", timeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// HealthyNodes counts members currently in rotation.
func (c *Coordinator) HealthyNodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, mb := range c.members {
		if mb.healthy {
			n++
		}
	}
	return n
}

// BudgetW returns the fleet-wide power budget.
func (c *Coordinator) BudgetW() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budgetW
}

// SetBudgetW changes the fleet-wide power budget and repartitions it
// immediately.
func (c *Coordinator) SetBudgetW(ctx context.Context, w float64) error {
	if w < 0 {
		return fmt.Errorf("fleet: negative power budget %g", w)
	}
	c.mu.Lock()
	c.budgetW = w
	c.mu.Unlock()
	c.m.budget.Set(w)
	if w > 0 {
		c.rebalance(ctx)
	}
	return nil
}

// healthLoop drives the periodic /readyz probes.
func (c *Coordinator) healthLoop(ctx context.Context) {
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.stop:
			return
		case <-t.C:
			c.probeAll(ctx)
		}
	}
}

// rebalanceLoop repartitions the power budget as load shifts.
func (c *Coordinator) rebalanceLoop(ctx context.Context) {
	t := time.NewTicker(c.cfg.RebalanceInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.stop:
			return
		case <-t.C:
			c.rebalance(ctx)
		}
	}
}

// hintFor estimates a job's standalone runtimes on each device at max
// frequency — the placement signal. No characterization is needed:
// the analytic kernel model answers directly.
func (c *Coordinator) hintFor(spec workload.JobSpec) (cluster.JobHint, error) {
	prog, err := workload.ByName(spec.Program)
	if err != nil {
		return cluster.JobHint{}, err
	}
	scale := spec.Scale
	if scale <= 0 {
		scale = 1
	}
	return cluster.JobHint{
		CPUTimeS: float64(prog.StandaloneTime(apu.CPU, c.cfg.Machine.Freq(apu.CPU, c.cmax), c.cfg.Mem, scale)),
		GPUTimeS: float64(prog.StandaloneTime(apu.GPU, c.cfg.Machine.Freq(apu.GPU, c.gmax), c.cfg.Mem, scale)),
	}, nil
}

// ListenAndServe runs the coordinator at addr until ctx is cancelled.
func (c *Coordinator) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	c.Start(ctx)
	srv := &http.Server{Handler: c.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return fmt.Errorf("fleet: listener failed: %w", err)
	case <-ctx.Done():
	}
	c.Stop()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}
