package microbench

import (
	"math"
	"testing"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/units"
)

func TestKernelDemandMatchesTarget(t *testing.T) {
	cfg := apu.DefaultConfig()
	mem := memsys.Default()
	for _, target := range []units.GBps{1, 4.4, 8.8, 11} {
		p, err := Kernel(target, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []apu.Device{apu.CPU, apu.GPU} {
			f := cfg.Freq(d, cfg.MaxFreqIndex(d))
			got := float64(p.AvgStandaloneBandwidth(d, f, mem))
			if units.RelErr(got, float64(target)) > 1e-9 {
				t.Errorf("target %v on %v: achieved %v", target, d, got)
			}
		}
	}
}

func TestKernelZeroTargetIsComputeOnly(t *testing.T) {
	cfg := apu.DefaultConfig()
	mem := memsys.Default()
	p, err := Kernel(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.AvgStandaloneBandwidth(apu.CPU, 3.6, mem); got != 0 {
		t.Errorf("zero-target kernel moves %v", got)
	}
	if u := p.StandaloneUtilization(apu.CPU, 3.6, mem); math.Abs(u-1) > 1e-12 {
		t.Errorf("zero-target kernel utilization %v, want 1", u)
	}
}

func TestKernelRejectsNegative(t *testing.T) {
	if _, err := Kernel(-1, apu.DefaultConfig()); err == nil {
		t.Error("negative target accepted")
	}
}

// Demand scales with frequency: at half the clock the kernel demands
// half the bandwidth, exactly like the real stressor.
func TestDemandScalesWithFrequency(t *testing.T) {
	cfg := apu.DefaultConfig()
	mem := memsys.Default()
	p, err := Kernel(8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hi := float64(p.AvgStandaloneBandwidth(apu.CPU, 3.6, mem))
	lo := float64(p.AvgStandaloneBandwidth(apu.CPU, 1.8, mem))
	if units.RelErr(lo, hi/2) > 1e-9 {
		t.Errorf("demand at half clock = %v, want %v", lo, hi/2)
	}
}

func TestInstance(t *testing.T) {
	in, err := Instance(5.5, apu.DefaultConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if in.ID != 42 || in.Scale != 1 || in.Prog == nil {
		t.Errorf("bad instance %+v", in)
	}
}

func TestLevels(t *testing.T) {
	ls := DefaultLevels()
	if len(ls) != 11 {
		t.Fatalf("DefaultLevels has %d entries, want 11", len(ls))
	}
	if ls[0] != 0 || ls[10] != 11 {
		t.Errorf("levels span [%v,%v], want [0,11]", ls[0], ls[10])
	}
	for i := 1; i < len(ls); i++ {
		if ls[i] <= ls[i-1] {
			t.Fatalf("levels not ascending at %d", i)
		}
	}
	if one := Levels(1, 5); len(one) != 1 || one[0] != 0 {
		t.Errorf("Levels(1,5) = %v", one)
	}
}

func TestSensitivitiesApplied(t *testing.T) {
	p, err := Kernel(5, apu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.CPUSens != CPUSens || p.GPUSens != GPUSens {
		t.Errorf("sensitivities %v/%v, want %v/%v", p.CPUSens, p.GPUSens, CPUSens, GPUSens)
	}
}
