// Package microbench implements the paper's controllable micro-kernel
// (section V.A): a software stressor that applies a tunable amount of
// pressure to the shared memory system and runs on either device.
//
// The real kernel streams two input arrays, performs a register-only
// compute loop, and writes one output array; array sizes and loop trip
// counts set the memory demand. The analytic equivalent is a
// single-phase program whose bytes-per-op is chosen so that its
// unconstrained bandwidth demand at maximum frequency equals the target
// level. Lowering the frequency lowers the demand proportionally, just
// as it does for the real kernel.
package microbench

import (
	"fmt"

	"corun/internal/apu"
	"corun/internal/kernelsim"
	"corun/internal/units"
	"corun/internal/workload"
)

// Latency sensitivities of the micro-kernel. The CPU side is a friendly
// streaming loop; the GPU side is penalized by the immature open-source
// driver's scheduling, matching the broad 20-40% degradation band of
// Figure 6.
const (
	CPUSens = 0.25
	GPUSens = 0.30
)

// refRate is the micro-kernel's stall-free execution rate in Gops/s at
// maximum frequency on either device; the bytes-per-op for a target
// bandwidth follows from it.
const refRate = 7.2

// Kernel builds a micro-benchmark program whose unconstrained memory
// demand at the machine's maximum frequency equals target GB/s on both
// devices. A zero target yields a pure compute kernel.
func Kernel(target units.GBps, cfg *apu.Config) (*kernelsim.Program, error) {
	if target < 0 {
		return nil, fmt.Errorf("microbench: negative target bandwidth %v", target)
	}
	maxCPU := float64(cfg.Freq(apu.CPU, cfg.MaxFreqIndex(apu.CPU)))
	maxGPU := float64(cfg.Freq(apu.GPU, cfg.MaxFreqIndex(apu.GPU)))
	p := &kernelsim.Program{
		Name:    fmt.Sprintf("micro-%.1fgbps", float64(target)),
		Work:    20,
		CPUEff:  refRate / maxCPU,
		GPUEff:  refRate / maxGPU,
		CPUSens: CPUSens,
		GPUSens: GPUSens,
		Phases:  []kernelsim.Phase{{Frac: 1, BytesPerOp: float64(target) / refRate}},
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Instance wraps Kernel into a workload instance ready for simulation.
func Instance(target units.GBps, cfg *apu.Config, id int) (*workload.Instance, error) {
	p, err := Kernel(target, cfg)
	if err != nil {
		return nil, err
	}
	return &workload.Instance{ID: id, Prog: p, Scale: 1, Label: p.Name}, nil
}

// Levels returns the paper's characterization grid: n bandwidth
// settings evenly covering [0, max] GB/s (the paper uses 11 settings
// over 0-11 GB/s).
func Levels(n int, max units.GBps) []units.GBps {
	if n < 2 {
		return []units.GBps{0}
	}
	out := make([]units.GBps, n)
	step := float64(max) / float64(n-1)
	for i := range out {
		out[i] = units.GBps(step * float64(i))
	}
	return out
}

// DefaultLevels is Levels(11, 11): the paper's grid.
func DefaultLevels() []units.GBps { return Levels(11, 11) }
