package cluster

import (
	"sync"
	"testing"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/model"
	"corun/internal/online"
)

var (
	charOnce sync.Once
	charVal  *model.Characterization
	charErr  error
)

func testOptions(t *testing.T, nodes int, bal Balancer) Options {
	t.Helper()
	cfg := apu.DefaultConfig()
	mem := memsys.Default()
	charOnce.Do(func() {
		charVal, charErr = model.Characterize(model.CharacterizeOptions{Cfg: cfg, Mem: mem})
	})
	if charErr != nil {
		t.Fatal(charErr)
	}
	return Options{
		Cfg: cfg, Mem: mem, Char: charVal,
		Nodes: nodes, CapPerNode: 15,
		Balancer: bal, Policy: "hcs+", Seed: 1,
	}
}

func arrivals(t *testing.T, n int, gap float64, seed int64) []online.Arrival {
	t.Helper()
	as, err := online.GenerateArrivals(n, gap, seed)
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func TestServeValidation(t *testing.T) {
	if _, err := Serve(Options{Nodes: 0}, nil); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := Serve(Options{Nodes: 2}, nil); err == nil {
		t.Error("nil machine accepted")
	}
	bad := testOptions(t, 2, Balancer(99))
	if _, err := Serve(bad, arrivals(t, 4, 10, 1)); err == nil {
		t.Error("unknown balancer accepted")
	}
}

func TestServeAllJobsAcrossNodes(t *testing.T) {
	opts := testOptions(t, 3, RoundRobin)
	as := arrivals(t, 18, 5, 2)
	res, err := Serve(opts, as)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, nr := range res.PerNode {
		total += len(nr.Result.Outcomes)
		if nr.Jobs != len(nr.Result.Outcomes) {
			t.Errorf("node %d: %d assigned vs %d served", nr.Node, nr.Jobs, len(nr.Result.Outcomes))
		}
	}
	if total != 18 {
		t.Fatalf("%d of 18 jobs served", total)
	}
	if res.Done <= 0 || res.MeanResponse <= 0 || res.TotalEnergyJ <= 0 {
		t.Errorf("summary broken: %+v", res)
	}
	// Round robin splits 18 jobs 6/6/6.
	for _, nr := range res.PerNode {
		if nr.Jobs != 6 {
			t.Errorf("round robin gave node %d %d jobs", nr.Node, nr.Jobs)
		}
	}
}

// More nodes drain a bursty stream faster.
func TestMoreNodesFaster(t *testing.T) {
	as := arrivals(t, 16, 2, 3) // heavy burst
	one, err := Serve(testOptions(t, 1, LeastLoaded), as)
	if err != nil {
		t.Fatal(err)
	}
	four, err := Serve(testOptions(t, 4, LeastLoaded), as)
	if err != nil {
		t.Fatal(err)
	}
	if four.Done >= one.Done {
		t.Errorf("4 nodes (%v) should finish before 1 node (%v)", four.Done, one.Done)
	}
	if four.MeanResponse >= one.MeanResponse {
		t.Errorf("4 nodes mean response %v should beat 1 node %v", four.MeanResponse, one.MeanResponse)
	}
}

// Load-aware balancing beats round robin on response time for skewed
// streams.
func TestLeastLoadedBeatsRoundRobin(t *testing.T) {
	as := arrivals(t, 20, 3, 5)
	rr, err := Serve(testOptions(t, 3, RoundRobin), as)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := Serve(testOptions(t, 3, LeastLoaded), as)
	if err != nil {
		t.Fatal(err)
	}
	// Least-loaded should not be meaningfully worse; usually better.
	if float64(ll.MeanResponse) > float64(rr.MeanResponse)*1.1 {
		t.Errorf("least-loaded response %v clearly worse than round robin %v",
			ll.MeanResponse, rr.MeanResponse)
	}
	if ll.Imbalance > rr.Imbalance+0.15 {
		t.Errorf("least-loaded imbalance %.2f clearly worse than round robin %.2f",
			ll.Imbalance, rr.Imbalance)
	}
}

// The affinity-aware policy serves at least as well as plain
// least-loaded on mixed streams (it preserves co-run pairings).
func TestAffinityAwareCompetitive(t *testing.T) {
	as := arrivals(t, 24, 3, 7)
	ll, err := Serve(testOptions(t, 3, LeastLoaded), as)
	if err != nil {
		t.Fatal(err)
	}
	aa, err := Serve(testOptions(t, 3, AffinityAware), as)
	if err != nil {
		t.Fatal(err)
	}
	if float64(aa.MeanResponse) > float64(ll.MeanResponse)*1.15 {
		t.Errorf("affinity-aware response %v clearly worse than least-loaded %v",
			aa.MeanResponse, ll.MeanResponse)
	}
}

func TestBalancerString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || LeastLoaded.String() != "least-loaded" ||
		AffinityAware.String() != "affinity-aware" {
		t.Error("balancer names wrong")
	}
	if Balancer(9).String() == "" {
		t.Error("unknown balancer renders empty")
	}
}

func TestEmptyStream(t *testing.T) {
	res, err := Serve(testOptions(t, 2, RoundRobin), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 0 || len(res.PerNode) != 2 {
		t.Errorf("empty stream: %+v", res)
	}
}
