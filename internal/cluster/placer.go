package cluster

import (
	"fmt"
	"strings"
)

// This file is the placement core: pure scoring over node snapshots,
// with no dependency on the simulation stack. The offline Serve path
// (cluster.go) and the live fleet coordinator (internal/fleet) both
// route arrivals through a Placer, so "which node gets this job" is
// decided by exactly one piece of code whether the nodes are simulated
// in-process or real daemons across a network.

// Balancer selects the node for each arriving job.
type Balancer int

// Balancing policies.
const (
	// RoundRobin assigns arrivals to nodes cyclically.
	RoundRobin Balancer = iota
	// LeastLoaded assigns each arrival to the node with the least
	// pending work (sum of queued jobs' best solo times, estimated at
	// max frequency).
	LeastLoaded
	// AffinityAware is LeastLoaded with a tiebreak that balances each
	// node's mix of CPU- and GPU-preferred jobs, preserving co-run
	// pairing opportunities.
	AffinityAware
	// HeadroomAware generalizes AffinityAware to live power headroom:
	// pending work is weighed against each node's share of the global
	// power budget (a node with twice the headroom drains twice as
	// fast), and the affinity tiebreak keeps each node's CPU/GPU mix
	// pairable so cap headroom is spent on co-runs instead of
	// fragmenting across one-sided backlogs.
	HeadroomAware
)

// String implements fmt.Stringer.
func (b Balancer) String() string {
	switch b {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case AffinityAware:
		return "affinity-aware"
	case HeadroomAware:
		return "headroom-aware"
	default:
		return fmt.Sprintf("Balancer(%d)", int(b))
	}
}

// ParseBalancer resolves a balancer name ("round-robin", "least-loaded",
// "affinity-aware", "headroom-aware"; the "-aware" suffix is optional).
func ParseBalancer(s string) (Balancer, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "round-robin", "roundrobin", "rr":
		return RoundRobin, nil
	case "least-loaded", "leastloaded":
		return LeastLoaded, nil
	case "affinity-aware", "affinity":
		return AffinityAware, nil
	case "headroom-aware", "headroom":
		return HeadroomAware, nil
	default:
		return 0, fmt.Errorf("cluster: unknown balancer %q (round-robin | least-loaded | affinity-aware | headroom-aware)", s)
	}
}

// NodeState is one candidate node's placement-relevant snapshot. The
// caller owns the bookkeeping: after a Pick it should fold the placed
// job into the chosen node's Load and BiasGPU (and, for a live fleet,
// refresh both from the node's own reporting on the next poll).
type NodeState struct {
	// Load is the node's pending work estimate, in whatever unit the
	// caller uses consistently (solo seconds offline, queued jobs live).
	Load float64
	// BiasGPU is the net device preference of the node's backlog:
	// +1 per GPU-preferred pending job, -1 per CPU-preferred one.
	BiasGPU float64
	// HeadroomW is the node's share of the global power budget, in
	// watts. Only HeadroomAware reads it; zero means "no headroom" and
	// makes the node maximally unattractive (but still eligible).
	HeadroomW float64
	// Unhealthy nodes are skipped entirely.
	Unhealthy bool
}

// JobHint describes one arriving job to the placer: its estimated
// standalone runtimes on each device (at max frequency, uncapped).
type JobHint struct {
	CPUTimeS float64
	GPUTimeS float64
}

// BiasGPU is the job's device preference: +1 GPU-preferred (ties go to
// the GPU, matching the offline balancer), -1 CPU-preferred.
func (h JobHint) BiasGPU() float64 {
	if h.CPUTimeS < h.GPUTimeS {
		return -1
	}
	return 1
}

// BestTimeS is the job's best solo time — the load it adds to the node
// that wins it.
func (h JobHint) BestTimeS() float64 {
	if h.CPUTimeS < h.GPUTimeS {
		return h.CPUTimeS
	}
	return h.GPUTimeS
}

// Placer picks nodes for arriving jobs under one balancing policy. It
// is not safe for concurrent use; callers serialize Picks (both the
// offline Serve loop and the fleet coordinator place one job at a
// time under their own lock).
type Placer struct {
	strategy Balancer
	next     int // round-robin cursor
}

// NewPlacer builds a placer for the given policy.
func NewPlacer(b Balancer) (*Placer, error) {
	switch b {
	case RoundRobin, LeastLoaded, AffinityAware, HeadroomAware:
		return &Placer{strategy: b}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown balancer %v", b)
	}
}

// Strategy returns the placer's balancing policy.
func (p *Placer) Strategy() Balancer { return p.strategy }

// Pick selects the node for one job, returning its index into nodes.
// Unhealthy nodes are never picked; if no node is healthy, Pick
// returns an error.
func (p *Placer) Pick(hint JobHint, nodes []NodeState) (int, error) {
	healthy := 0
	for _, n := range nodes {
		if !n.Unhealthy {
			healthy++
		}
	}
	if healthy == 0 {
		return 0, fmt.Errorf("cluster: no healthy node among %d", len(nodes))
	}
	switch p.strategy {
	case RoundRobin:
		for {
			i := p.next % len(nodes)
			p.next++
			if !nodes[i].Unhealthy {
				return i, nil
			}
		}
	case LeastLoaded:
		return argminLoad(nodes), nil
	case AffinityAware:
		return pickAffinity(hint, nodes, rawLoad), nil
	case HeadroomAware:
		return pickAffinity(hint, nodes, headroomLoad), nil
	}
	return 0, fmt.Errorf("cluster: unknown balancer %v", p.strategy)
}

// rawLoad and headroomLoad are the two load views the affinity scorer
// ranks by: pending work as-is, or pending work normalized by the
// node's power share (the "time to drain this backlog under my slice
// of the budget" view — a node with half the headroom is treated as
// twice as loaded).
func rawLoad(n NodeState) float64 { return n.Load }

func headroomLoad(n NodeState) float64 {
	// A powerless node drains arbitrarily slowly; clamp so the score
	// stays finite and such nodes rank strictly last.
	const minHeadroomW = 0.1
	h := n.HeadroomW
	if h < minHeadroomW {
		h = minHeadroomW
	}
	return n.Load / h
}

func argminLoad(nodes []NodeState) int {
	best := -1
	for i, n := range nodes {
		if n.Unhealthy {
			continue
		}
		if best < 0 || n.Load < nodes[best].Load {
			best = i
		}
	}
	return best
}

// pickAffinity is the shared affinity scorer: among nodes within 10%
// of the lightest (view-adjusted) load, pick the one whose backlog mix
// this job balances best — a GPU-preferred job prefers a CPU-heavy
// backlog and vice versa, preserving each node's co-run pairing
// opportunities.
func pickAffinity(hint JobHint, nodes []NodeState, view func(NodeState) float64) int {
	least := -1
	for i, n := range nodes {
		if n.Unhealthy {
			continue
		}
		if least < 0 || view(n) < view(nodes[least]) {
			least = i
		}
	}
	jobBias := hint.BiasGPU()
	minLoad := view(nodes[least])
	best := least
	bestScore := placeScore(minLoad, minLoad, nodes[least].BiasGPU, jobBias)
	for i, n := range nodes {
		if n.Unhealthy {
			continue
		}
		if view(n) > minLoad*1.1+1 {
			continue
		}
		if sc := placeScore(view(n), minLoad, n.BiasGPU, jobBias); sc < bestScore {
			bestScore, best = sc, i
		}
	}
	return best
}

// placeScore ranks a candidate node: load dominates, the affinity
// mismatch breaks ties (a GPU-preferred job prefers a CPU-heavy
// backlog and vice versa).
func placeScore(load, minLoad, bias, jobBias float64) float64 {
	rel := 0.0
	if minLoad > 0 {
		rel = (load - minLoad) / minLoad
	}
	return rel + 0.02*bias*jobBias
}
