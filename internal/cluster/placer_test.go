package cluster

import "testing"

func TestParseBalancer(t *testing.T) {
	cases := map[string]Balancer{
		"round-robin": RoundRobin, "rr": RoundRobin,
		"least-loaded": LeastLoaded, "leastloaded": LeastLoaded,
		"affinity-aware": AffinityAware, "affinity": AffinityAware,
		"headroom-aware": HeadroomAware, "headroom": HeadroomAware,
		" Headroom ": HeadroomAware,
	}
	for in, want := range cases {
		got, err := ParseBalancer(in)
		if err != nil || got != want {
			t.Errorf("ParseBalancer(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseBalancer("banana"); err == nil {
		t.Fatalf("ParseBalancer accepted an unknown name")
	}
	if _, err := NewPlacer(Balancer(99)); err == nil {
		t.Fatalf("NewPlacer accepted an unknown balancer")
	}
}

func TestJobHint(t *testing.T) {
	cpu := JobHint{CPUTimeS: 1, GPUTimeS: 2}
	if cpu.BiasGPU() != -1 || cpu.BestTimeS() != 1 {
		t.Fatalf("CPU-preferred hint: bias %v best %v", cpu.BiasGPU(), cpu.BestTimeS())
	}
	gpu := JobHint{CPUTimeS: 3, GPUTimeS: 2}
	if gpu.BiasGPU() != 1 || gpu.BestTimeS() != 2 {
		t.Fatalf("GPU-preferred hint: bias %v best %v", gpu.BiasGPU(), gpu.BestTimeS())
	}
	// Ties go to the GPU, matching the offline balancer's historical
	// behavior.
	if (JobHint{CPUTimeS: 2, GPUTimeS: 2}).BiasGPU() != 1 {
		t.Fatalf("tied hint should prefer the GPU")
	}
}

func TestRoundRobinSkipsUnhealthy(t *testing.T) {
	p, err := NewPlacer(RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	nodes := []NodeState{{}, {Unhealthy: true}, {}}
	var got []int
	for i := 0; i < 4; i++ {
		idx, err := p.Pick(JobHint{CPUTimeS: 1, GPUTimeS: 2}, nodes)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, idx)
	}
	want := []int{0, 2, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin over {ok, down, ok} picked %v, want %v", got, want)
		}
	}
}

func TestPickNoHealthyNode(t *testing.T) {
	for _, b := range []Balancer{RoundRobin, LeastLoaded, AffinityAware, HeadroomAware} {
		p, err := NewPlacer(b)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Pick(JobHint{CPUTimeS: 1, GPUTimeS: 1}, []NodeState{{Unhealthy: true}, {Unhealthy: true}}); err == nil {
			t.Errorf("%v: Pick over all-unhealthy nodes should error", b)
		}
	}
}

func TestLeastLoadedPicksLightest(t *testing.T) {
	p, _ := NewPlacer(LeastLoaded)
	nodes := []NodeState{{Load: 5}, {Load: 1, Unhealthy: true}, {Load: 2}}
	idx, err := p.Pick(JobHint{CPUTimeS: 1, GPUTimeS: 1}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("least-loaded picked node %d, want 2 (lightest healthy)", idx)
	}
}

func TestAffinityBalancesMix(t *testing.T) {
	p, _ := NewPlacer(AffinityAware)
	// Equal loads; node 0's backlog is GPU-heavy, node 1's CPU-heavy. A
	// GPU-preferred job should land on the CPU-heavy backlog.
	nodes := []NodeState{{Load: 10, BiasGPU: 3}, {Load: 10, BiasGPU: -3}}
	idx, err := p.Pick(JobHint{CPUTimeS: 5, GPUTimeS: 2}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("GPU-preferred job placed on GPU-heavy node %d, want 1", idx)
	}
	// And a CPU-preferred job the other way around.
	idx, err = p.Pick(JobHint{CPUTimeS: 2, GPUTimeS: 5}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("CPU-preferred job placed on CPU-heavy node %d, want 0", idx)
	}
}

func TestHeadroomAwareWeighsPowerShare(t *testing.T) {
	p, _ := NewPlacer(HeadroomAware)
	// Node 0 carries half the pending work but has a quarter of the
	// power: headroom-normalized it is the slower drain, so the job
	// must go to node 1 — which plain affinity (raw load) would not do.
	nodes := []NodeState{
		{Load: 5, HeadroomW: 5},
		{Load: 10, HeadroomW: 20},
	}
	idx, err := p.Pick(JobHint{CPUTimeS: 1, GPUTimeS: 2}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("headroom-aware picked node %d, want 1 (more watts per unit of backlog)", idx)
	}
	raw, _ := NewPlacer(AffinityAware)
	idx, err = raw.Pick(JobHint{CPUTimeS: 1, GPUTimeS: 2}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("affinity-aware control picked node %d, want 0 (raw load ignores headroom)", idx)
	}
}

func TestHeadroomAwareZeroHeadroomRanksLast(t *testing.T) {
	p, _ := NewPlacer(HeadroomAware)
	nodes := []NodeState{
		{Load: 1, HeadroomW: 0}, // powerless: clamped, drains "never"
		{Load: 50, HeadroomW: 15},
	}
	idx, err := p.Pick(JobHint{CPUTimeS: 1, GPUTimeS: 2}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("job placed on powerless node %d, want 1", idx)
	}
}
