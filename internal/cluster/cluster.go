// Package cluster scales the co-scheduling runtime from one APU node to
// a fleet: arriving jobs are balanced across nodes, and each node runs
// the online epoch scheduler (package online) under its own power cap.
//
// The paper motivates job co-scheduling as "a cheap (virtually free)
// way to significantly improve system throughput for shared servers,
// workstation clusters, and data centers"; this package is the cluster
// piece of that story. It also exposes the interaction between
// balancing and co-scheduling: a balancer that spreads complementary
// jobs apart starves each node's co-run pairing opportunities, so the
// affinity-aware policy groups CPU- and GPU-preferred work.
package cluster

import (
	"fmt"
	"sort"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/model"
	"corun/internal/online"
	"corun/internal/units"
)

// Balancer selects the node for each arriving job.
type Balancer int

// Balancing policies.
const (
	// RoundRobin assigns arrivals to nodes cyclically.
	RoundRobin Balancer = iota
	// LeastLoaded assigns each arrival to the node with the least
	// pending work (sum of queued jobs' best solo times, estimated at
	// max frequency).
	LeastLoaded
	// AffinityAware is LeastLoaded with a tiebreak that balances each
	// node's mix of CPU- and GPU-preferred jobs, preserving co-run
	// pairing opportunities.
	AffinityAware
)

// String implements fmt.Stringer.
func (b Balancer) String() string {
	switch b {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case AffinityAware:
		return "affinity-aware"
	default:
		return fmt.Sprintf("Balancer(%d)", int(b))
	}
}

// Options configures a cluster run.
type Options struct {
	Cfg  *apu.Config
	Mem  *memsys.Model
	Char *model.Characterization

	// Nodes is the fleet size.
	Nodes int
	// CapPerNode is each node's package power cap.
	CapPerNode units.Watts
	// Balancer picks the placement policy.
	Balancer Balancer
	// Policy is each node's epoch scheduling policy.
	Policy online.Policy
	// Seed drives stochastic components.
	Seed int64
}

// NodeResult is one node's served outcome.
type NodeResult struct {
	Node   int
	Jobs   int
	Result *online.Result
}

// Result summarizes a cluster run.
type Result struct {
	PerNode []NodeResult
	// Done is when the last node finished.
	Done units.Seconds
	// MeanResponse averages over all jobs in the cluster.
	MeanResponse units.Seconds
	// TotalEnergyJ sums node energies.
	TotalEnergyJ float64
	// Imbalance is (max node finish - min node finish) / max: 0 is a
	// perfectly balanced fleet.
	Imbalance float64
}

// Serve balances the arrival stream across the fleet and serves each
// node's share with the online scheduler.
func Serve(opts Options, arrivals []online.Arrival) (*Result, error) {
	if opts.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", opts.Nodes)
	}
	if opts.Cfg == nil || opts.Mem == nil {
		return nil, fmt.Errorf("cluster: nil machine or memory model")
	}
	perNode := make([][]online.Arrival, opts.Nodes)
	loads := make([]float64, opts.Nodes)
	prefBias := make([]float64, opts.Nodes) // >0: GPU-heavy backlog

	sorted := append([]online.Arrival(nil), arrivals...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	cmax := opts.Cfg.MaxFreqIndex(apu.CPU)
	gmax := opts.Cfg.MaxFreqIndex(apu.GPU)
	for i, a := range sorted {
		node := 0
		switch opts.Balancer {
		case RoundRobin:
			node = i % opts.Nodes
		case LeastLoaded, AffinityAware:
			for n := 1; n < opts.Nodes; n++ {
				if loads[n] < loads[node] {
					node = n
				}
			}
			if opts.Balancer == AffinityAware {
				// Among nodes within 10% of the lightest load, pick
				// the one whose backlog mix this job balances best.
				tc := float64(a.Prog.StandaloneTime(apu.CPU, opts.Cfg.Freq(apu.CPU, cmax), opts.Mem, a.Scale))
				tg := float64(a.Prog.StandaloneTime(apu.GPU, opts.Cfg.Freq(apu.GPU, gmax), opts.Mem, a.Scale))
				jobBias := 1.0 // GPU-preferred
				if tc < tg {
					jobBias = -1
				}
				bestScore := clusterScore(loads[node], loads[node], prefBias[node], jobBias)
				for n := 0; n < opts.Nodes; n++ {
					if loads[n] > loads[node]*1.1+1 {
						continue
					}
					if sc := clusterScore(loads[n], loads[node], prefBias[n], jobBias); sc < bestScore {
						bestScore, node = sc, n
					}
				}
				prefBias[node] += jobBias
			}
		default:
			return nil, fmt.Errorf("cluster: unknown balancer %v", opts.Balancer)
		}
		perNode[node] = append(perNode[node], a)
		// Load estimate: the job's best solo time at max frequency.
		tc := float64(a.Prog.StandaloneTime(apu.CPU, opts.Cfg.Freq(apu.CPU, cmax), opts.Mem, a.Scale))
		tg := float64(a.Prog.StandaloneTime(apu.GPU, opts.Cfg.Freq(apu.GPU, gmax), opts.Mem, a.Scale))
		if tg < tc {
			tc = tg
		}
		loads[node] += tc
	}

	res := &Result{}
	var sumResp, nJobs float64
	minDone, maxDone := -1.0, 0.0
	for n := 0; n < opts.Nodes; n++ {
		nodeRes, err := online.Serve(online.Options{
			Cfg: opts.Cfg, Mem: opts.Mem, Char: opts.Char,
			Cap: opts.CapPerNode, Policy: opts.Policy, Seed: opts.Seed + int64(n),
		}, perNode[n])
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", n, err)
		}
		res.PerNode = append(res.PerNode, NodeResult{Node: n, Jobs: len(perNode[n]), Result: nodeRes})
		res.TotalEnergyJ += nodeRes.EnergyJ
		for _, o := range nodeRes.Outcomes {
			sumResp += float64(o.Response())
			nJobs++
		}
		d := float64(nodeRes.Done)
		if d > maxDone {
			maxDone = d
		}
		if minDone < 0 || d < minDone {
			minDone = d
		}
		if nodeRes.Done > res.Done {
			res.Done = nodeRes.Done
		}
	}
	if nJobs > 0 {
		res.MeanResponse = units.Seconds(sumResp / nJobs)
	}
	if maxDone > 0 {
		res.Imbalance = (maxDone - minDone) / maxDone
	}
	return res, nil
}

// clusterScore ranks a candidate node: load dominates, the affinity
// mismatch breaks ties (a GPU-preferred job prefers a CPU-heavy
// backlog and vice versa).
func clusterScore(load, minLoad, bias, jobBias float64) float64 {
	rel := 0.0
	if minLoad > 0 {
		rel = (load - minLoad) / minLoad
	}
	return rel + 0.02*bias*jobBias
}
