// Package cluster is the placement library that scales the
// co-scheduling runtime from one APU node to a fleet: arriving jobs
// are balanced across nodes by a Placer (placer.go, the pure scoring
// core shared with the live fleet coordinator in internal/fleet), and
// each node runs the online epoch scheduler under its own power cap.
//
// The paper motivates job co-scheduling as "a cheap (virtually free)
// way to significantly improve system throughput for shared servers,
// workstation clusters, and data centers"; this package is the cluster
// piece of that story. It also exposes the interaction between
// balancing and co-scheduling: a balancer that spreads complementary
// jobs apart starves each node's co-run pairing opportunities, so the
// affinity-aware policy groups CPU- and GPU-preferred work — and the
// headroom-aware policy extends that to uneven per-node power budgets.
//
// Scheduling policies are plain registry names (internal/policy), so
// any registered planner can serve the fleet's epochs; the package no
// longer couples to internal/online's policy type.
package cluster

import (
	"fmt"
	"sort"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/model"
	"corun/internal/online"
	"corun/internal/policy"
	"corun/internal/units"
)

// Options configures a cluster run.
type Options struct {
	Cfg  *apu.Config
	Mem  *memsys.Model
	Char *model.Characterization

	// Nodes is the fleet size.
	Nodes int
	// CapPerNode is each node's package power cap.
	CapPerNode units.Watts
	// Balancer picks the placement policy.
	Balancer Balancer
	// Policy names each node's epoch scheduling policy in the
	// internal/policy registry (canonical name or alias); empty means
	// the registry's "hcs+".
	Policy string
	// Seed drives stochastic components.
	Seed int64
}

// NodeResult is one node's served outcome.
type NodeResult struct {
	Node   int
	Jobs   int
	Result *online.Result
}

// Result summarizes a cluster run.
type Result struct {
	PerNode []NodeResult
	// Done is when the last node finished.
	Done units.Seconds
	// MeanResponse averages over all jobs in the cluster.
	MeanResponse units.Seconds
	// TotalEnergyJ sums node energies.
	TotalEnergyJ float64
	// Imbalance is (max node finish - min node finish) / max: 0 is a
	// perfectly balanced fleet.
	Imbalance float64
}

// Serve balances the arrival stream across the fleet with a Placer and
// serves each node's share with the online scheduler.
func Serve(opts Options, arrivals []online.Arrival) (*Result, error) {
	if opts.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", opts.Nodes)
	}
	if opts.Cfg == nil || opts.Mem == nil {
		return nil, fmt.Errorf("cluster: nil machine or memory model")
	}
	polName := opts.Policy
	if polName == "" {
		polName = string(online.PolicyHCSPlus)
	}
	canonical, err := policy.Canonical(polName)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	placer, err := NewPlacer(opts.Balancer)
	if err != nil {
		return nil, err
	}

	perNode := make([][]online.Arrival, opts.Nodes)
	nodes := make([]NodeState, opts.Nodes)
	for n := range nodes {
		nodes[n].HeadroomW = float64(opts.CapPerNode)
	}

	sorted := append([]online.Arrival(nil), arrivals...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	cmax := opts.Cfg.MaxFreqIndex(apu.CPU)
	gmax := opts.Cfg.MaxFreqIndex(apu.GPU)
	for _, a := range sorted {
		hint := JobHint{
			CPUTimeS: float64(a.Prog.StandaloneTime(apu.CPU, opts.Cfg.Freq(apu.CPU, cmax), opts.Mem, a.Scale)),
			GPUTimeS: float64(a.Prog.StandaloneTime(apu.GPU, opts.Cfg.Freq(apu.GPU, gmax), opts.Mem, a.Scale)),
		}
		node, err := placer.Pick(hint, nodes)
		if err != nil {
			return nil, err
		}
		perNode[node] = append(perNode[node], a)
		// Fold the job into the winner's snapshot: its best solo time as
		// load, its device preference into the backlog mix.
		nodes[node].Load += hint.BestTimeS()
		nodes[node].BiasGPU += hint.BiasGPU()
	}

	res := &Result{}
	var sumResp, nJobs float64
	minDone, maxDone := -1.0, 0.0
	for n := 0; n < opts.Nodes; n++ {
		nodeRes, err := online.Serve(online.Options{
			Cfg: opts.Cfg, Mem: opts.Mem, Char: opts.Char,
			Cap: opts.CapPerNode, Policy: online.Policy(canonical), Seed: opts.Seed + int64(n),
		}, perNode[n])
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", n, err)
		}
		res.PerNode = append(res.PerNode, NodeResult{Node: n, Jobs: len(perNode[n]), Result: nodeRes})
		res.TotalEnergyJ += nodeRes.EnergyJ
		for _, o := range nodeRes.Outcomes {
			sumResp += float64(o.Response())
			nJobs++
		}
		d := float64(nodeRes.Done)
		if d > maxDone {
			maxDone = d
		}
		if minDone < 0 || d < minDone {
			minDone = d
		}
		if nodeRes.Done > res.Done {
			res.Done = nodeRes.Done
		}
	}
	if nJobs > 0 {
		res.MeanResponse = units.Seconds(sumResp / nJobs)
	}
	if maxDone > 0 {
		res.Imbalance = (maxDone - minDone) / maxDone
	}
	return res, nil
}
