package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6, 8})
	if s.N != 4 || s.Mean != 5 || s.Min != 2 || s.Max != 8 || s.Median != 5 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(5)) > 1e-12 {
		t.Errorf("StdDev = %v, want sqrt(5)", s.StdDev)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Errorf("Median = %v, want 5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty Summarize = %+v", s)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0.1, 5) // bins: [0,.1) [.1,.2) [.2,.3) [.3,.4) [.4,inf)
	h.AddAll([]float64{0.05, 0.15, 0.15, 0.35, 0.95, -0.2})
	if h.Total() != 6 {
		t.Fatalf("Total = %d, want 6", h.Total())
	}
	want := []int{2, 2, 0, 1, 1} // -0.2 clamps into bin 0
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
}

func TestHistogramFractions(t *testing.T) {
	h := NewHistogram(0.1, 3)
	h.AddAll([]float64{0.05, 0.05, 0.15, 0.25})
	if got := h.Fraction(0); got != 0.5 {
		t.Errorf("Fraction(0) = %v, want 0.5", got)
	}
	if got := h.FractionBelow(0.2); got != 0.75 {
		t.Errorf("FractionBelow(0.2) = %v, want 0.75", got)
	}
}

func TestHistogramEmptyFractions(t *testing.T) {
	h := NewHistogram(0.1, 3)
	if h.Fraction(0) != 0 || h.FractionBelow(1) != 0 {
		t.Error("empty histogram fractions should be 0")
	}
}

func TestHistogramLabels(t *testing.T) {
	h := NewHistogram(0.1, 3)
	if got := h.BinLabel(0, true); got != "0-10%" {
		t.Errorf("BinLabel(0) = %q", got)
	}
	if got := h.BinLabel(2, true); got != ">20%" {
		t.Errorf("BinLabel(last) = %q", got)
	}
	if got := h.BinLabel(1, false); got != "0-0" {
		// non-percent labels of fractional bins round to integers;
		// just ensure no crash and stable output
		_ = got
	}
}

func TestHistogramWriteTable(t *testing.T) {
	h := NewHistogram(0.1, 2)
	h.AddAll([]float64{0.05, 0.15})
	var b strings.Builder
	if err := h.WriteTable(&b, true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "0-10%") || !strings.Contains(out, "50.0%") {
		t.Errorf("table output malformed: %q", out)
	}
}

func TestNewHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(0,0) did not panic")
		}
	}()
	NewHistogram(0, 0)
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4})
	if err != nil || math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %v, %v", g, err)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("GeoMean of empty set accepted")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("GeoMean of negative values accepted")
	}
}

func TestSpeedupOver(t *testing.T) {
	if got := SpeedupOver(150, 100); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SpeedupOver(150,100) = %v, want 0.5", got)
	}
	if got := SpeedupOver(100, 0); got != 0 {
		t.Errorf("SpeedupOver with zero improved = %v, want 0", got)
	}
}

// Property: histogram bin counts always sum to the number of inserted
// values, and FractionBelow is monotone.
func TestHistogramProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		h := NewHistogram(0.05, 8)
		for _, r := range raw {
			h.Add(float64(r) / 65535)
		}
		sum := 0
		for _, c := range h.Counts {
			sum += c
		}
		if sum != len(raw) || h.Total() != len(raw) {
			return false
		}
		prev := -1.0
		for th := 0.0; th <= 0.4; th += 0.05 {
			fb := h.FractionBelow(th)
			if fb < prev-1e-12 {
				return false
			}
			prev = fb
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Summarize respects ordering invariants: Min <= Median <=
// Max and Min <= Mean <= Max.
func TestSummarizeProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9 &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
