// Package stats provides the small statistical toolkit the evaluation
// needs: error histograms (Figures 7 and 8), summary statistics, and
// deterministic aggregation helpers.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample set.
type Summary struct {
	N              int
	Mean, Min, Max float64
	Median         float64
	StdDev         float64
}

// Summarize computes descriptive statistics. An empty input yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	s.StdDev = math.Sqrt(varSum / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Histogram is a fixed-bin histogram over [0, +inf) with uniform bin
// width; the last bin is open-ended. It renders the error-rate
// distributions of Figures 7 and 8.
type Histogram struct {
	// BinWidth is the width of each closed bin.
	BinWidth float64
	// Counts[i] counts values in [i*BinWidth, (i+1)*BinWidth), except
	// the last bin which also absorbs everything above it.
	Counts []int

	total int
}

// NewHistogram creates a histogram with n bins of the given width.
func NewHistogram(binWidth float64, n int) *Histogram {
	if binWidth <= 0 || n <= 0 {
		panic(fmt.Sprintf("stats: invalid histogram shape width=%v bins=%d", binWidth, n))
	}
	return &Histogram{BinWidth: binWidth, Counts: make([]int, n)}
}

// Add inserts a value. Negative values clamp into the first bin.
func (h *Histogram) Add(v float64) {
	i := int(math.Floor(v / h.BinWidth))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// AddAll inserts every value.
func (h *Histogram) AddAll(vs []float64) {
	for _, v := range vs {
		h.Add(v)
	}
}

// Total returns the number of inserted values.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of values in bin i, or 0 when empty.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// FractionBelow returns the fraction of values falling strictly below
// the given threshold, computed from bins (threshold should align with
// a bin edge for exact results).
func (h *Histogram) FractionBelow(threshold float64) float64 {
	if h.total == 0 {
		return 0
	}
	n := 0
	for i, c := range h.Counts {
		hi := float64(i+1) * h.BinWidth
		if hi <= threshold+1e-12 {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}

// BinLabel returns a human-readable range label for bin i, e.g.
// "10-20%" for percentage-scaled histograms.
func (h *Histogram) BinLabel(i int, percent bool) string {
	lo := float64(i) * h.BinWidth
	hi := lo + h.BinWidth
	scale := 1.0
	suffix := ""
	if percent {
		scale = 100
		suffix = "%"
	}
	if i == len(h.Counts)-1 {
		return fmt.Sprintf(">%.0f%s", lo*scale, suffix)
	}
	return fmt.Sprintf("%.0f-%.0f%s", lo*scale, hi*scale, suffix)
}

// WriteTable renders the histogram as "range fraction" rows.
func (h *Histogram) WriteTable(w io.Writer, percent bool) error {
	for i := range h.Counts {
		if _, err := fmt.Fprintf(w, "%-10s %6.1f%%\n", h.BinLabel(i, percent), 100*h.Fraction(i)); err != nil {
			return err
		}
	}
	return nil
}

// Mean of absolute values inserted is not recoverable from bins, so
// evaluation code keeps raw slices; GeoMean and SpeedupOver help there.

// GeoMean returns the geometric mean of positive values; zero or
// negative inputs are rejected with an error.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: geomean of empty set")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean requires positive values, got %v", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// SpeedupOver converts a baseline and an improved makespan to the
// fractional speedup the paper quotes: baseline/improved - 1.
func SpeedupOver(baseline, improved float64) float64 {
	if improved <= 0 {
		return 0
	}
	return baseline/improved - 1
}
