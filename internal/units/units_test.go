package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStringers(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{GHz(3.6).String(), "3.60GHz"},
		{Watts(15).String(), "15.00W"},
		{GBps(11.25).String(), "11.25GB/s"},
		{Seconds(59.71).String(), "59.71s"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestMHz(t *testing.T) {
	if got := GHz(1.25).MHz(); got != 1250 {
		t.Errorf("GHz(1.25).MHz() = %v, want 1250", got)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("values within tolerance reported unequal")
	}
	if ApproxEqual(1.0, 1.1, 1e-3) {
		t.Error("values outside tolerance reported equal")
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr(110,100) = %v, want 0.1", got)
	}
	if got := RelErr(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr(90,100) = %v, want 0.1", got)
	}
	// Near-zero actual falls back to absolute error.
	if got := RelErr(0.5, 0); got != 0.5 {
		t.Errorf("RelErr(0.5,0) = %v, want 0.5", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(2, 4, 0.5); got != 3 {
		t.Errorf("Lerp(2,4,0.5) = %v, want 3", got)
	}
	if got := Lerp(2, 4, 0); got != 2 {
		t.Errorf("Lerp endpoints broken: t=0 gives %v", got)
	}
	if got := Lerp(2, 4, 1); got != 4 {
		t.Errorf("Lerp endpoints broken: t=1 gives %v", got)
	}
}

func TestSafeDiv(t *testing.T) {
	if got := SafeDiv(10, 2); got != 5 {
		t.Errorf("SafeDiv(10,2) = %v, want 5", got)
	}
	if got := SafeDiv(10, 0); got != 0 {
		t.Errorf("SafeDiv(10,0) = %v, want 0", got)
	}
}

// Property: Clamp always returns a value inside [lo, hi] when lo <= hi.
func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		if math.IsNaN(v) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		got := Clamp(v, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RelErr is symmetric in sign of deviation and non-negative.
func TestRelErrProperty(t *testing.T) {
	f := func(actual, dev float64) bool {
		if math.IsNaN(actual) || math.IsNaN(dev) || math.IsInf(actual, 0) || math.IsInf(dev, 0) {
			return true
		}
		if math.Abs(actual) < 1e-6 || math.Abs(actual) > 1e12 || math.Abs(dev) > 1e12 {
			return true
		}
		up := RelErr(actual+dev, actual)
		down := RelErr(actual-dev, actual)
		return up >= 0 && down >= 0 && math.Abs(up-down) < 1e-9*(1+up)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Lerp(a,b,t) lies between a and b for t in [0,1].
func TestLerpProperty(t *testing.T) {
	f := func(a, b float64, tRaw uint8) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if math.Abs(a) > 1e12 || math.Abs(b) > 1e12 {
			return true
		}
		tt := float64(tRaw) / 255
		got := Lerp(a, b, tt)
		lo, hi := math.Min(a, b), math.Max(a, b)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
