// Package units provides the physical quantity types shared across the
// co-run scheduling simulator: frequencies, power, bandwidth, and time.
//
// All quantities are plain float64 named types so they stay cheap in the
// inner simulation loops while still documenting intent at API boundaries.
package units

import (
	"fmt"
	"math"
)

// GHz is a clock frequency in gigahertz.
type GHz float64

// Watts is electrical power in watts.
type Watts float64

// GBps is memory bandwidth in gigabytes per second.
type GBps float64

// Seconds is a duration in (simulated) seconds.
type Seconds float64

// GOps is an abstract amount of work in giga-operations.
type GOps float64

// String implements fmt.Stringer.
func (f GHz) String() string { return fmt.Sprintf("%.2fGHz", float64(f)) }

// String implements fmt.Stringer.
func (w Watts) String() string { return fmt.Sprintf("%.2fW", float64(w)) }

// String implements fmt.Stringer.
func (b GBps) String() string { return fmt.Sprintf("%.2fGB/s", float64(b)) }

// String implements fmt.Stringer.
func (s Seconds) String() string { return fmt.Sprintf("%.2fs", float64(s)) }

// MHz converts the frequency to megahertz.
func (f GHz) MHz() float64 { return float64(f) * 1000 }

// Epsilon is the default tolerance used when comparing simulated quantities.
const Epsilon = 1e-9

// ApproxEqual reports whether a and b differ by at most tol.
func ApproxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// RelErr returns the relative error of predicted with respect to actual,
// |predicted-actual| / |actual|. When actual is (near) zero it falls back to
// the absolute error to avoid dividing by zero.
func RelErr(predicted, actual float64) float64 {
	if math.Abs(actual) < Epsilon {
		return math.Abs(predicted - actual)
	}
	return math.Abs(predicted-actual) / math.Abs(actual)
}

// Clamp limits v to the inclusive range [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// SafeDiv divides a by b, returning 0 when b is (near) zero.
func SafeDiv(a, b float64) float64 {
	if math.Abs(b) < Epsilon {
		return 0
	}
	return a / b
}
