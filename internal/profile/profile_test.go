package profile

import (
	"testing"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/sim"
	"corun/internal/units"
	"corun/internal/workload"
)

func collect(t *testing.T, batch []*workload.Instance) *Standalone {
	t.Helper()
	s, err := Collect(apu.DefaultConfig(), memsys.Default(), batch)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCollectShapes(t *testing.T) {
	s := collect(t, workload.Batch8())
	if s.NumJobs() != 8 {
		t.Fatalf("NumJobs = %d", s.NumJobs())
	}
	if len(s.Entries[0][apu.CPU]) != 16 || len(s.Entries[0][apu.GPU]) != 10 {
		t.Error("frequency dimensions wrong")
	}
}

func TestCollectRejectsBadInput(t *testing.T) {
	cfg, mem := apu.DefaultConfig(), memsys.Default()
	if _, err := Collect(nil, mem, nil); err == nil {
		t.Error("nil config accepted")
	}
	if _, err := Collect(cfg, nil, nil); err == nil {
		t.Error("nil memory model accepted")
	}
	if _, err := Collect(cfg, mem, []*workload.Instance{nil}); err == nil {
		t.Error("nil instance accepted")
	}
	bad := workload.Batch8()[:1]
	bad[0].Scale = 0
	if _, err := Collect(cfg, mem, bad); err == nil {
		t.Error("zero scale accepted")
	}
}

// The analytic profile must agree with actually simulating the
// standalone run, both in time and in average power.
func TestProfileMatchesSimulation(t *testing.T) {
	batch := workload.Batch8()
	s := collect(t, batch)
	opts := sim.Options{Cfg: s.Cfg, Mem: s.Mem}
	cases := []struct {
		i int
		d apu.Device
		f int
	}{
		{0, apu.GPU, 9},  // streamcluster GPU max
		{2, apu.CPU, 15}, // dwt2d CPU max
		{3, apu.GPU, 4},  // hotspot GPU mid
		{5, apu.CPU, 6},  // lud CPU mid
	}
	for _, c := range cases {
		o := opts
		if c.d == apu.CPU {
			o.InitCPUFreq = sim.Pin(c.f)
			o.InitGPUFreq = sim.Pin(0)
		} else {
			o.InitGPUFreq = sim.Pin(c.f)
			o.InitCPUFreq = sim.Pin(0)
		}
		res, err := sim.StandaloneRun(o, batch[c.i], c.d)
		if err != nil {
			t.Fatal(err)
		}
		e := s.At(c.i, c.d, c.f)
		if units.RelErr(float64(res.Makespan), float64(e.Time)) > 1e-6 {
			t.Errorf("%s on %v@%d: time sim %v vs profile %v",
				batch[c.i].Label, c.d, c.f, res.Makespan, e.Time)
		}
		if units.RelErr(float64(res.AvgPower), float64(e.Power)) > 0.02 {
			t.Errorf("%s on %v@%d: power sim %v vs profile %v",
				batch[c.i].Label, c.d, c.f, res.AvgPower, e.Power)
		}
	}
}

func TestTimesDecreaseWithFrequency(t *testing.T) {
	s := collect(t, workload.Batch8())
	for i := 0; i < s.NumJobs(); i++ {
		for d := apu.CPU; d <= apu.GPU; d++ {
			for f := 1; f < s.Cfg.NumFreqs(d); f++ {
				if s.Time(i, d, f) > s.Time(i, d, f-1)+1e-9 {
					t.Errorf("%s on %v: time rose from level %d to %d",
						s.Batch[i].Label, d, f-1, f)
				}
			}
		}
	}
}

func TestPowersIncreaseWithFrequency(t *testing.T) {
	s := collect(t, workload.Batch8())
	for i := 0; i < s.NumJobs(); i++ {
		for d := apu.CPU; d <= apu.GPU; d++ {
			for f := 1; f < s.Cfg.NumFreqs(d); f++ {
				if s.Power(i, d, f) < s.Power(i, d, f-1)-1e-9 {
					t.Errorf("%s on %v: power fell from level %d to %d",
						s.Batch[i].Label, d, f-1, f)
				}
			}
		}
	}
}

func TestBestFreqUnderCap(t *testing.T) {
	s := collect(t, workload.Batch8())
	// Uncapped: max level.
	f, ok := s.BestFreqUnderCap(0, apu.CPU, 0)
	if !ok || f != s.Cfg.MaxFreqIndex(apu.CPU) {
		t.Errorf("uncapped best = %d,%v", f, ok)
	}
	// A generous cap also allows the max level.
	f, ok = s.BestFreqUnderCap(0, apu.CPU, 100)
	if !ok || f != s.Cfg.MaxFreqIndex(apu.CPU) {
		t.Errorf("generous cap best = %d,%v", f, ok)
	}
	// A 15 W cap forces the CPU below max (max-power CPU runs exceed it).
	f15, ok := s.BestFreqUnderCap(0, apu.CPU, 15)
	if !ok {
		t.Fatal("15 W cap infeasible for a solo CPU run")
	}
	if f15 >= s.Cfg.MaxFreqIndex(apu.CPU) {
		t.Errorf("15 W cap should force CPU below max, got level %d", f15)
	}
	if got := s.Power(0, apu.CPU, f15); got > 15 {
		t.Errorf("chosen level power %v exceeds cap", got)
	}
	// An absurd cap below idle is infeasible.
	if _, ok := s.BestFreqUnderCap(0, apu.CPU, 1); ok {
		t.Error("1 W cap reported feasible")
	}
}

func TestBestTimeUnderCap(t *testing.T) {
	s := collect(t, workload.Batch8())
	// streamcluster prefers the GPU uncapped.
	d, f, tm, ok := s.BestTimeUnderCap(0, 0)
	if !ok || d != apu.GPU || f != s.Cfg.MaxFreqIndex(apu.GPU) {
		t.Errorf("streamcluster best = %v@%d, want GPU@max", d, f)
	}
	if tm <= 0 {
		t.Error("non-positive best time")
	}
	// dwt2d prefers the CPU uncapped.
	d, _, _, ok = s.BestTimeUnderCap(2, 0)
	if !ok || d != apu.CPU {
		t.Errorf("dwt2d best device = %v, want CPU", d)
	}
	// Infeasible cap.
	if _, _, _, ok := s.BestTimeUnderCap(0, 1); ok {
		t.Error("1 W cap reported feasible")
	}
}

// GPU-preferred programs must remain GPU-preferred under a 15 W cap —
// the preference categorization the scheduler relies on.
func TestPreferencesStableUnderCap(t *testing.T) {
	s := collect(t, workload.Batch8())
	d, _, _, ok := s.BestTimeUnderCap(0, 15) // streamcluster
	if !ok || d != apu.GPU {
		t.Errorf("streamcluster under 15 W prefers %v, want GPU", d)
	}
	d, _, _, ok = s.BestTimeUnderCap(2, 15) // dwt2d
	if !ok || d != apu.CPU {
		t.Errorf("dwt2d under 15 W prefers %v, want CPU", d)
	}
}
