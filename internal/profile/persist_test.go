package profile

import (
	"bytes"
	"strings"
	"testing"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/workload"
)

func TestProfileSaveLoadRoundTrip(t *testing.T) {
	batch := workload.Batch8()
	orig := collect(t, batch)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, orig.Cfg, orig.Mem, batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < orig.NumJobs(); i++ {
		for d := apu.CPU; d <= apu.GPU; d++ {
			for f := 0; f < orig.Cfg.NumFreqs(d); f++ {
				a, b := orig.At(i, d, f), back.At(i, d, f)
				if a.Time != b.Time || a.Power != b.Power || a.Bandwidth != b.Bandwidth || a.Util != b.Util {
					t.Fatalf("entry (%d,%v,%d) mangled: %+v vs %+v", i, d, f, a, b)
				}
			}
		}
	}
}

func TestProfileSaveEmptyRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Standalone{}).Save(&buf); err == nil {
		t.Error("empty profile saved")
	}
}

func TestProfileLoadRejectsMismatches(t *testing.T) {
	batch := workload.Batch8()
	orig := collect(t, batch)
	cfg, mem := orig.Cfg, orig.Mem

	save := func() *bytes.Buffer {
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}

	if _, err := Load(strings.NewReader("junk"), cfg, mem, batch); err == nil {
		t.Error("junk accepted")
	}
	// Wrong batch length.
	if _, err := Load(save(), cfg, mem, batch[:4]); err == nil {
		t.Error("shorter batch accepted")
	}
	// Reordered batch (labels mismatch).
	shuffled := append([]*workload.Instance(nil), batch...)
	shuffled[0], shuffled[1] = shuffled[1], shuffled[0]
	if _, err := Load(save(), cfg, mem, shuffled); err == nil {
		t.Error("reordered batch accepted")
	}
	// Machine with a different frequency table.
	kaveri := apu.KaveriConfig()
	if _, err := Load(save(), kaveri, memsys.Default(), batch); err == nil {
		t.Error("mismatched machine accepted")
	}
}
