package profile

import (
	"encoding/json"
	"fmt"
	"io"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/units"
	"corun/internal/workload"
)

// persistedProfile is the on-disk JSON form of a Standalone profile.
// Program models are not persisted — profiles are data about a batch,
// and the loader re-binds them to the caller's batch by label.
type persistedProfile struct {
	Version int             `json:"version"`
	Labels  []string        `json:"labels"`
	Entries [][][]entryJSON `json:"entries"`
}

type entryJSON struct {
	T  float64 `json:"t"`
	P  float64 `json:"p"`
	BW float64 `json:"bw"`
	U  float64 `json:"u"`
}

const persistVersion = 1

// Save writes the profile tables as JSON. In a deployment where
// profiling is measurement (not analytic evaluation), this is the
// artifact the offline stage produces for the runtime to load.
func (s *Standalone) Save(w io.Writer) error {
	if s.NumJobs() == 0 {
		return fmt.Errorf("profile: refusing to save an empty profile")
	}
	out := persistedProfile{Version: persistVersion}
	for _, in := range s.Batch {
		out.Labels = append(out.Labels, in.Label)
	}
	out.Entries = make([][][]entryJSON, len(s.Entries))
	for i := range s.Entries {
		out.Entries[i] = make([][]entryJSON, len(s.Entries[i]))
		for d := range s.Entries[i] {
			for _, e := range s.Entries[i][d] {
				out.Entries[i][d] = append(out.Entries[i][d], entryJSON{
					T: float64(e.Time), P: float64(e.Power), BW: float64(e.Bandwidth), U: e.Util,
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Load reads a profile saved by Save and binds it to the given batch
// and machine. The batch must match the saved one in length and labels
// (order included) — loading someone else's profile is a deployment
// error worth failing loudly on.
func Load(r io.Reader, cfg *apu.Config, mem *memsys.Model, batch []*workload.Instance) (*Standalone, error) {
	var in persistedProfile
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("profile: decoding: %w", err)
	}
	if in.Version != persistVersion {
		return nil, fmt.Errorf("profile: file version %d, want %d", in.Version, persistVersion)
	}
	if len(in.Labels) != len(batch) {
		return nil, fmt.Errorf("profile: file has %d jobs, batch has %d", len(in.Labels), len(batch))
	}
	for i, l := range in.Labels {
		if batch[i].Label != l {
			return nil, fmt.Errorf("profile: job %d is %q in the file but %q in the batch", i, l, batch[i].Label)
		}
	}
	s := &Standalone{Cfg: cfg, Mem: mem, Batch: batch}
	s.Entries = make([][][]Entry, len(batch))
	for i := range batch {
		if len(in.Entries) <= i || len(in.Entries[i]) != apu.NumDevices {
			return nil, fmt.Errorf("profile: job %d has malformed device tables", i)
		}
		s.Entries[i] = make([][]Entry, apu.NumDevices)
		for d := apu.CPU; d <= apu.GPU; d++ {
			want := cfg.NumFreqs(d)
			if len(in.Entries[i][d]) != want {
				return nil, fmt.Errorf("profile: job %d device %v has %d levels, machine has %d",
					i, d, len(in.Entries[i][d]), want)
			}
			for _, e := range in.Entries[i][d] {
				if e.T <= 0 {
					return nil, fmt.Errorf("profile: job %d device %v has a non-positive time", i, d)
				}
				s.Entries[i][d] = append(s.Entries[i][d], Entry{
					Time:      units.Seconds(e.T),
					Power:     units.Watts(e.P),
					Bandwidth: units.GBps(e.BW),
					Util:      e.U,
				})
			}
		}
	}
	return s, nil
}
