// Package profile is the offline profiler: it produces each job's
// standalone execution time, average package power, achieved memory
// bandwidth, and utilization at every (device, frequency) operating
// point.
//
// The paper gathers the same tables by profiling real runs offline
// (section V.C notes that lightweight online estimators could replace
// this step in production). Here the profiler evaluates the analytic
// program models directly — the results are identical to running the
// event simulator standalone, which a test verifies.
package profile

import (
	"fmt"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/units"
	"corun/internal/workload"
)

// Entry is one operating point's standalone profile.
type Entry struct {
	Time      units.Seconds
	Power     units.Watts
	Bandwidth units.GBps
	Util      float64
}

// Standalone holds profiles for a batch of instances: Entries[i][d][f]
// is instance i on device d at frequency level f.
type Standalone struct {
	Cfg     *apu.Config
	Mem     *memsys.Model
	Batch   []*workload.Instance
	Entries [][][]Entry
}

// Collect profiles every instance of the batch at every operating
// point.
func Collect(cfg *apu.Config, mem *memsys.Model, batch []*workload.Instance) (*Standalone, error) {
	if cfg == nil || mem == nil {
		return nil, fmt.Errorf("profile: nil machine or memory model")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Standalone{Cfg: cfg, Mem: mem, Batch: batch}
	s.Entries = make([][][]Entry, len(batch))
	for i, inst := range batch {
		if inst == nil || inst.Prog == nil {
			return nil, fmt.Errorf("profile: batch entry %d is nil", i)
		}
		if err := inst.Prog.Validate(); err != nil {
			return nil, err
		}
		if inst.Scale <= 0 {
			return nil, fmt.Errorf("profile: %s has non-positive scale %v", inst.Label, inst.Scale)
		}
		s.Entries[i] = make([][]Entry, apu.NumDevices)
		for d := apu.CPU; d <= apu.GPU; d++ {
			n := cfg.NumFreqs(d)
			s.Entries[i][d] = make([]Entry, n)
			for f := 0; f < n; f++ {
				s.Entries[i][d][f] = profileOne(cfg, mem, inst, d, f)
			}
		}
	}
	return s, nil
}

// profileOne evaluates one operating point analytically.
func profileOne(cfg *apu.Config, mem *memsys.Model, inst *workload.Instance, d apu.Device, f int) Entry {
	freq := cfg.Freq(d, f)
	prog := inst.Prog
	e := Entry{
		Time:      prog.StandaloneTime(d, freq, mem, inst.Scale),
		Bandwidth: prog.AvgStandaloneBandwidth(d, freq, mem),
		Util:      prog.StandaloneUtilization(d, freq, mem),
	}
	e.Power = standalonePower(cfg, d, f, e.Util)
	return e
}

// standalonePower composes the package power of a solo run: idle plus
// the active device's dynamic power at its utilization, plus the host
// thread when the GPU runs. A solo run leaves the opposite device at
// its floor frequency, so its contribution is zero (idle covers the
// uncore).
func standalonePower(cfg *apu.Config, d apu.Device, f int, util float64) units.Watts {
	if d == apu.CPU {
		return cfg.PackagePower(f, 0, util, -1, false)
	}
	// GPU job: CPU hosts at its floor frequency.
	return cfg.PackagePower(0, f, -1, util, true)
}

// NumJobs returns the batch size.
func (s *Standalone) NumJobs() int { return len(s.Batch) }

// At returns the profile entry of instance i on device d at level f.
func (s *Standalone) At(i int, d apu.Device, f int) Entry { return s.Entries[i][d][f] }

// Time is a convenience accessor for the standalone execution time.
func (s *Standalone) Time(i int, d apu.Device, f int) units.Seconds {
	return s.Entries[i][d][f].Time
}

// Power is a convenience accessor for the standalone package power.
func (s *Standalone) Power(i int, d apu.Device, f int) units.Watts {
	return s.Entries[i][d][f].Power
}

// Bandwidth is a convenience accessor for the achieved bandwidth.
func (s *Standalone) Bandwidth(i int, d apu.Device, f int) units.GBps {
	return s.Entries[i][d][f].Bandwidth
}

// BestFreqUnderCap returns the highest frequency level of device d at
// which instance i's standalone package power stays within the cap,
// and whether any level qualifies. A zero cap means uncapped: the
// maximum level always qualifies.
func (s *Standalone) BestFreqUnderCap(i int, d apu.Device, cap units.Watts) (int, bool) {
	n := s.Cfg.NumFreqs(d)
	if cap <= 0 {
		return n - 1, true
	}
	for f := n - 1; f >= 0; f-- {
		if s.Entries[i][d][f].Power <= cap {
			return f, true
		}
	}
	return 0, false
}

// BestTimeUnderCap returns the fastest standalone (device, level) for
// instance i under the cap. The boolean reports whether any operating
// point fits.
func (s *Standalone) BestTimeUnderCap(i int, cap units.Watts) (apu.Device, int, units.Seconds, bool) {
	bestDev, bestF := apu.CPU, -1
	bestT := units.Seconds(0)
	found := false
	for d := apu.CPU; d <= apu.GPU; d++ {
		f, ok := s.BestFreqUnderCap(i, d, cap)
		if !ok {
			continue
		}
		t := s.Entries[i][d][f].Time
		if !found || t < bestT {
			bestDev, bestF, bestT, found = d, f, t, true
		}
	}
	return bestDev, bestF, bestT, found
}
