package memsys

import (
	"math"
	"testing"

	"corun/internal/units"
)

// FuzzArbitrate checks the arbitration invariants over arbitrary
// demands and sensitivities (run `go test -fuzz=FuzzArbitrate` to
// explore beyond the seed corpus).
func FuzzArbitrate(f *testing.F) {
	f.Add(5.0, 5.0, 0.2, 0.1)
	f.Add(11.0, 11.0, 0.25, 0.3)
	f.Add(0.0, 8.0, 0.0, 0.0)
	f.Add(6.5, 8.2, 1.35, 0.0)
	f.Add(-3.0, 4.0, 0.5, 0.5)
	m := Default()
	f.Fuzz(func(t *testing.T, dc, dg, cs, gs float64) {
		for _, v := range []float64{dc, dg, cs, gs} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				t.Skip()
			}
		}
		d := Demand{CPU: units.GBps(dc), GPU: units.GBps(dg), CPUSens: cs, GPUSens: gs}
		g := m.Arbitrate(d)
		if g.CPU < 0 || g.GPU < 0 {
			t.Fatalf("negative grant %+v for %+v", g, d)
		}
		if math.IsNaN(float64(g.CPU)) || math.IsNaN(float64(g.GPU)) {
			t.Fatalf("NaN grant %+v for %+v", g, d)
		}
		clippedC := math.Min(math.Max(dc, 0), m.Params().SoloCapCPU)
		clippedG := math.Min(math.Max(dg, 0), m.Params().SoloCapGPU)
		if float64(g.CPU) > clippedC+1e-9 || float64(g.GPU) > clippedG+1e-9 {
			t.Fatalf("grant %+v exceeds clipped demand (%v,%v)", g, clippedC, clippedG)
		}
		if float64(g.CPU+g.GPU) > m.Params().CombinedPeak+1e-9 {
			t.Fatalf("total grant %v exceeds peak", g.CPU+g.GPU)
		}
		// Sensitivities outside the calibrated range may make the
		// degradation definitions meaningless, but never non-finite.
		dcpu := m.DegradationCPU(d)
		dgpu := m.DegradationGPU(d)
		if math.IsNaN(dcpu) || math.IsNaN(dgpu) {
			t.Fatalf("NaN degradation for %+v", d)
		}
	})
}
