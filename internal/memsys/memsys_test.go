package memsys

import (
	"math"
	"testing"
	"testing/quick"

	"corun/internal/units"
)

// microSens are the latency sensitivities of the micro-benchmark used
// to characterize the degradation space (streaming code: low on CPU,
// moderate on GPU because of the immature driver's scheduling).
const (
	microCPUSens = 0.25
	microGPUSens = 0.30
)

func microDemand(dc, dg float64) Demand {
	return Demand{CPU: units.GBps(dc), GPU: units.GBps(dg), CPUSens: microCPUSens, GPUSens: microGPUSens}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero peak", func(p *Params) { p.CombinedPeak = 0 }},
		{"solo above peak", func(p *Params) { p.SoloCapCPU = p.CombinedPeak + 1 }},
		{"negative kappa", func(p *Params) { p.Kappa = -0.1 }},
		{"kappa one", func(p *Params) { p.Kappa = 1 }},
		{"negative queue", func(p *Params) { p.CPUQueueBase = -1 }},
		{"zero beta", func(p *Params) { p.BetaGPU = 0 }},
	}
	for _, m := range mutations {
		p := DefaultParams()
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted broken params", m.name)
		}
		if _, err := New(p); err == nil {
			t.Errorf("%s: New accepted broken params", m.name)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew on invalid params did not panic")
		}
	}()
	MustNew(Params{})
}

func TestSoloClipping(t *testing.T) {
	m := Default()
	if got := m.Solo(SoloCPU, 5); got != 5 {
		t.Errorf("Solo below cap = %v, want 5", got)
	}
	if got := m.Solo(SoloCPU, 20); float64(got) != m.Params().SoloCapCPU {
		t.Errorf("Solo above cap = %v, want %v", got, m.Params().SoloCapCPU)
	}
}

func TestArbitrateDegenerate(t *testing.T) {
	m := Default()
	if g := m.Arbitrate(Demand{}); g.CPU != 0 || g.GPU != 0 {
		t.Errorf("no demand should grant nothing, got %+v", g)
	}
	g := m.Arbitrate(Demand{CPU: 7})
	if g.CPU != 7 || g.GPU != 0 {
		t.Errorf("CPU-only demand: got %+v, want CPU 7", g)
	}
	g = m.Arbitrate(Demand{GPU: 9})
	if g.GPU != 9 || g.CPU != 0 {
		t.Errorf("GPU-only demand: got %+v, want GPU 9", g)
	}
	// Negative demands are treated as zero.
	g = m.Arbitrate(Demand{CPU: -3, GPU: 4})
	if g.CPU != 0 || g.GPU != 4 {
		t.Errorf("negative demand: got %+v, want CPU 0 GPU 4", g)
	}
}

func TestGrantsNeverExceedDemand(t *testing.T) {
	m := Default()
	for dc := 0.0; dc <= 11; dc += 1.1 {
		for dg := 0.0; dg <= 11; dg += 1.1 {
			g := m.Arbitrate(microDemand(dc, dg))
			if float64(g.CPU) > dc+1e-9 {
				t.Fatalf("CPU grant %v exceeds demand %v", g.CPU, dc)
			}
			if float64(g.GPU) > dg+1e-9 {
				t.Fatalf("GPU grant %v exceeds demand %v", g.GPU, dg)
			}
		}
	}
}

func TestGrantsNeverExceedCombinedPeak(t *testing.T) {
	m := Default()
	for dc := 0.0; dc <= 11; dc += 0.5 {
		for dg := 0.0; dg <= 11; dg += 0.5 {
			g := m.Arbitrate(microDemand(dc, dg))
			if float64(g.CPU+g.GPU) > m.Params().CombinedPeak+1e-9 {
				t.Fatalf("total grant %v exceeds combined peak at (%v,%v)", g.CPU+g.GPU, dc, dg)
			}
		}
	}
}

// Figure 5/6 calibration: at the top corner of the micro-benchmark grid
// (11,11 GB/s) the CPU's slowdown must clearly exceed the GPU's, with
// the CPU in the paper's ~65% degradation region and the GPU in ~45%.
// Slowdown here is demand/grant - 1 for a bandwidth-bound kernel.
func TestTopCornerAsymmetry(t *testing.T) {
	m := Default()
	g := m.Arbitrate(microDemand(11, 11))
	cpuSlow := 11/float64(g.CPU) - 1
	gpuSlow := 11/float64(g.GPU) - 1
	if cpuSlow <= gpuSlow {
		t.Errorf("CPU slowdown %.2f should exceed GPU slowdown %.2f at saturation", cpuSlow, gpuSlow)
	}
	if cpuSlow < 0.50 || cpuSlow > 0.90 {
		t.Errorf("CPU worst-case slowdown = %.2f, want around 0.65 (in [0.50,0.90])", cpuSlow)
	}
	if gpuSlow < 0.30 || gpuSlow > 0.55 {
		t.Errorf("GPU worst-case slowdown = %.2f, want around 0.45 (in [0.30,0.55])", gpuSlow)
	}
}

// The GPU suffers moderate degradation across the mid demand range
// (the 20-40% band of Figure 6) once contention is meaningful.
func TestGPUMidRangeBand(t *testing.T) {
	m := Default()
	g := m.Arbitrate(microDemand(9, 9))
	gpuSlow := 9/float64(g.GPU) - 1
	if gpuSlow < 0.15 || gpuSlow > 0.45 {
		t.Errorf("GPU slowdown at (9,9) = %.2f, want in [0.15,0.45]", gpuSlow)
	}
}

// The CPU tolerates light-to-moderate co-run traffic: below saturation
// its slowdown stays modest (the <=20% half of Figure 5).
func TestCPULightTrafficTolerance(t *testing.T) {
	m := Default()
	for _, dg := range []float64{2, 4, 5.5} {
		g := m.Arbitrate(microDemand(4, dg))
		slow := 4/float64(g.CPU) - 1
		if slow > 0.20 {
			t.Errorf("CPU slowdown at (4,%v) = %.2f, want <= 0.20", dg, slow)
		}
	}
}

// Higher-throughput executions suffer larger slowdowns (the paper's
// observation about both figures): degradation grows with the
// co-runner's demand.
func TestDegradationMonotoneInCoRunnerDemand(t *testing.T) {
	m := Default()
	prevCPU, prevGPU := -1.0, -1.0
	for dg := 0.0; dg <= 11; dg += 1.0 {
		dcpu := m.DegradationCPU(microDemand(8, dg))
		if dcpu+1e-9 < prevCPU {
			t.Fatalf("CPU degradation decreased as GPU demand grew: %v -> %v at dg=%v", prevCPU, dcpu, dg)
		}
		prevCPU = dcpu
		dgpu := m.DegradationGPU(microDemand(dg, 8))
		if dgpu+1e-9 < prevGPU {
			t.Fatalf("GPU degradation decreased as CPU demand grew: %v -> %v at dc=%v", prevGPU, dgpu, dg)
		}
		prevGPU = dgpu
	}
}

// A high-sensitivity CPU program (dwt2d-like) is crushed by a heavy GPU
// streamer while the streamer barely notices — the section III anecdote
// (81% vs 5% slowdown).
func TestLatencySensitiveCPUCrushed(t *testing.T) {
	m := Default()
	d := Demand{CPU: 6.5, GPU: 8.2, CPUSens: 1.35, GPUSens: 0}
	g := m.Arbitrate(d)
	cpuSlow := 6.5/float64(g.CPU) - 1
	gpuSlow := 8.2/float64(g.GPU) - 1
	if cpuSlow < 0.60 || cpuSlow > 1.10 {
		t.Errorf("sensitive CPU slowdown = %.2f, want around 0.81 (in [0.60,1.10])", cpuSlow)
	}
	if gpuSlow > 0.12 {
		t.Errorf("tolerant GPU slowdown = %.2f, want <= 0.12", gpuSlow)
	}
}

// The same sensitive CPU program beside a low-demand GPU job (hotspot-
// like) suffers only mildly — the paper's 17% pairing.
func TestLatencySensitiveCPUWithQuietCoRunner(t *testing.T) {
	m := Default()
	d := Demand{CPU: 6.5, GPU: 2.0, CPUSens: 1.35, GPUSens: 0}
	g := m.Arbitrate(d)
	cpuSlow := 6.5/float64(g.CPU) - 1
	if cpuSlow < 0.05 || cpuSlow > 0.30 {
		t.Errorf("sensitive CPU slowdown beside quiet GPU = %.2f, want around 0.17", cpuSlow)
	}
}

// The LLC interference term is secondary: zeroing it shifts
// degradations by only a few points, reproducing the paper's claim
// that memory-access contention (not LLC contention) dominates.
func TestLLCTermSecondary(t *testing.T) {
	withLLC := Default()
	noLLCParams := DefaultParams()
	noLLCParams.LLCWeight = 0
	noLLC := MustNew(noLLCParams)
	maxDelta := 0.0
	for dc := 1.1; dc <= 11; dc += 2.2 {
		for dg := 1.1; dg <= 11; dg += 2.2 {
			d := microDemand(dc, dg)
			deltaCPU := math.Abs(withLLC.DegradationCPU(d) - noLLC.DegradationCPU(d))
			deltaGPU := math.Abs(withLLC.DegradationGPU(d) - noLLC.DegradationGPU(d))
			maxDelta = math.Max(maxDelta, math.Max(deltaCPU, deltaGPU))
		}
	}
	if maxDelta > 0.06 {
		t.Errorf("LLC term shifts degradations by up to %.3f; it should be secondary (<0.06)", maxDelta)
	}
	if maxDelta == 0 {
		t.Error("LLC term has no effect at all; the weight is not wired in")
	}
}

// Negative LLC weights are rejected.
func TestLLCWeightValidation(t *testing.T) {
	p := DefaultParams()
	p.LLCWeight = -0.1
	if err := p.Validate(); err == nil {
		t.Error("negative LLC weight accepted")
	}
}

// Together the devices extract more bandwidth than the solo cap when
// both are saturated (bank-level parallelism).
func TestCombinedExceedsSoloCap(t *testing.T) {
	m := Default()
	g := m.Arbitrate(microDemand(11, 11))
	if total := float64(g.CPU + g.GPU); total <= m.Params().SoloCapCPU {
		t.Errorf("combined grant %v should exceed the solo cap %v", total, m.Params().SoloCapCPU)
	}
}

func TestDegradationZeroWhenIdle(t *testing.T) {
	m := Default()
	if d := m.DegradationCPU(Demand{GPU: 11}); d != 0 {
		t.Errorf("idle CPU degradation = %v, want 0", d)
	}
	if d := m.DegradationGPU(Demand{CPU: 11}); d != 0 {
		t.Errorf("idle GPU degradation = %v, want 0", d)
	}
}

// Property: grants are non-negative, never exceed (clipped) demand,
// never exceed the combined peak, and degradations stay in [0,1] for
// arbitrary demands and sensitivities.
func TestArbitrateInvariantsProperty(t *testing.T) {
	m := Default()
	f := func(dcRaw, dgRaw, csRaw, gsRaw uint16) bool {
		d := Demand{
			CPU:     units.GBps(float64(dcRaw) / 65535 * 14),
			GPU:     units.GBps(float64(dgRaw) / 65535 * 14),
			CPUSens: float64(csRaw) / 65535 * 2,
			GPUSens: float64(gsRaw) / 65535 * 2,
		}
		g := m.Arbitrate(d)
		if g.CPU < 0 || g.GPU < 0 {
			return false
		}
		if float64(g.CPU) > math.Min(float64(d.CPU), m.Params().SoloCapCPU)+1e-9 {
			return false
		}
		if float64(g.GPU) > math.Min(float64(d.GPU), m.Params().SoloCapGPU)+1e-9 {
			return false
		}
		if float64(g.CPU+g.GPU) > m.Params().CombinedPeak+1e-9 {
			return false
		}
		dc := m.DegradationCPU(d)
		dg := m.DegradationGPU(d)
		return dc >= 0 && dc <= 1 && dg >= 0 && dg <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: a more sensitive CPU program never receives more bandwidth
// than a less sensitive one under identical demands.
func TestSensitivityMonotoneProperty(t *testing.T) {
	m := Default()
	f := func(dcRaw, dgRaw, s1Raw, s2Raw uint16) bool {
		dc := float64(dcRaw)/65535*10 + 0.5
		dg := float64(dgRaw)/65535*10 + 0.5
		s1 := float64(s1Raw) / 65535 * 2
		s2 := float64(s2Raw) / 65535 * 2
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		g1 := m.Arbitrate(Demand{CPU: units.GBps(dc), GPU: units.GBps(dg), CPUSens: s1})
		g2 := m.Arbitrate(Demand{CPU: units.GBps(dc), GPU: units.GBps(dg), CPUSens: s2})
		return g2.CPU <= g1.CPU+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
