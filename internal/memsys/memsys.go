// Package memsys models the shared memory system of the integrated
// processor: the single path from both devices through the last-level
// cache to DRAM.
//
// The model reproduces the asymmetric contention behaviour the paper
// measures on real hardware (Figures 5 and 6):
//
//   - the GPU, whose in-order SIMD units hide latency with massive
//     threading, degrades moderately (20-40%) across most of the demand
//     space but is favoured by the memory controller under saturation;
//   - the CPU tolerates light co-run traffic well (under 20% degradation
//     in about half the space) but collapses when the combined demand
//     saturates the controller, with worst-case degradation exceeding
//     the GPU's worst case;
//   - two devices together can extract more total bandwidth from the
//     controller than either alone (more bank-level parallelism), so
//     the combined capacity exceeds the solo streaming cap.
//
// The model is intentionally richer than the bilinear degradation space
// the paper's predictive model assumes: per-program latency sensitivity
// and the saturation nonlinearity are invisible to a predictor that only
// knows average standalone bandwidth, which is exactly the source of the
// prediction error the paper reports in Figure 7.
package memsys

import (
	"fmt"
	"math"

	"corun/internal/units"
)

// Params are the calibration constants of the contention model. See
// DESIGN.md §5 for the calibration targets.
type Params struct {
	// CombinedPeak is the total bandwidth (GB/s) the controller can
	// serve when both devices stream together (bank-level parallelism
	// exceeds the single-device cap).
	CombinedPeak float64

	// SoloCapCPU and SoloCapGPU are the maximum bandwidths a single
	// device can extract on its own.
	SoloCapCPU float64
	SoloCapGPU float64

	// Kappa is the fractional capacity loss caused by row-buffer
	// conflicts between interleaved request streams; it scales with
	// the smaller of the two demands.
	Kappa float64

	// CPUQueueBase and GPUQueueBase are the baseline queueing
	// sensitivities of each device; a program's own MemSensitivity is
	// added on top.
	CPUQueueBase float64
	GPUQueueBase float64

	// BetaCPU and BetaGPU shape how each device's service shrinks
	// under saturation: the grant scales with scarcity^beta, so a
	// larger beta means the device loses more. BetaCPU > BetaGPU
	// encodes the controller's GPU-favouring arbitration.
	BetaCPU float64
	BetaGPU float64

	// LLCWeight scales the shared last-level-cache interference term:
	// a co-runner's traffic evicts lines and costs extra DRAM trips.
	// The paper (citing Zhuravlev et al. and confirming on both Intel
	// and AMD parts) finds this secondary to memory-access contention;
	// the default is calibrated accordingly and a test pins the claim.
	LLCWeight float64
}

// DefaultParams returns the calibrated contention constants.
func DefaultParams() Params {
	return Params{
		CombinedPeak: 15.5,
		SoloCapCPU:   11.0,
		SoloCapGPU:   11.0,
		Kappa:        0.12,
		CPUQueueBase: 0.15,
		GPUQueueBase: 0.10,
		BetaCPU:      1.1,
		BetaGPU:      0.4,
		LLCWeight:    0.03,
	}
}

// Validate checks the parameters for consistency.
func (p Params) Validate() error {
	if p.CombinedPeak <= 0 || p.SoloCapCPU <= 0 || p.SoloCapGPU <= 0 {
		return fmt.Errorf("memsys: bandwidth caps must be positive")
	}
	if p.SoloCapCPU > p.CombinedPeak || p.SoloCapGPU > p.CombinedPeak {
		return fmt.Errorf("memsys: solo caps must not exceed the combined peak")
	}
	if p.Kappa < 0 || p.Kappa >= 1 {
		return fmt.Errorf("memsys: Kappa %v outside [0,1)", p.Kappa)
	}
	if p.CPUQueueBase < 0 || p.GPUQueueBase < 0 {
		return fmt.Errorf("memsys: queue sensitivities must be non-negative")
	}
	if p.BetaCPU <= 0 || p.BetaGPU <= 0 {
		return fmt.Errorf("memsys: beta exponents must be positive")
	}
	if p.LLCWeight < 0 {
		return fmt.Errorf("memsys: negative LLCWeight %v", p.LLCWeight)
	}
	return nil
}

// Model arbitrates memory bandwidth between the two devices.
type Model struct {
	p Params
}

// New returns a contention model with the given parameters.
func New(p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{p: p}, nil
}

// MustNew is New for known-good parameters; it panics on invalid input.
func MustNew(p Params) *Model {
	m, err := New(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Default returns a model with DefaultParams.
func Default() *Model { return MustNew(DefaultParams()) }

// Params returns a copy of the model's calibration constants.
func (m *Model) Params() Params { return m.p }

// Demand describes the instantaneous bandwidth appetite of the two
// devices. A zero demand means the device is idle or compute-only.
type Demand struct {
	// CPU and GPU are the unconstrained bandwidth demands in GB/s:
	// what each device would consume were the memory system infinitely
	// fast.
	CPU units.GBps
	GPU units.GBps

	// CPUSens and GPUSens are the latency sensitivities of the
	// programs currently running on each device (>= 0). A pointer-
	// chasing CPU code has high sensitivity; a massively threaded GPU
	// kernel has low sensitivity.
	CPUSens float64
	GPUSens float64
}

// Grant is the bandwidth actually served to each device.
type Grant struct {
	CPU units.GBps
	GPU units.GBps
}

// Solo returns the bandwidth granted to a single device running alone
// with the given demand: the demand clipped to the solo streaming cap.
func (m *Model) Solo(dev SoloDevice, demand units.GBps) units.GBps {
	cap := m.p.SoloCapCPU
	if dev == SoloGPU {
		cap = m.p.SoloCapGPU
	}
	return units.GBps(math.Min(float64(demand), cap))
}

// SoloDevice selects the device for Solo without importing apu (memsys
// sits below apu consumers in the dependency order).
type SoloDevice int

// Solo device selectors.
const (
	SoloCPU SoloDevice = iota
	SoloGPU
)

// Arbitrate returns the bandwidth granted to each device under co-run
// contention. The model proceeds in three steps:
//
//  1. solo clipping — neither device can exceed its solo streaming cap;
//  2. queueing interference — each device's achievable service shrinks
//     by a latency factor that grows with the other device's traffic
//     and the device's own sensitivity;
//  3. saturation — if the latency-adjusted demands exceed the co-run
//     capacity, both shrink with scarcity^beta (GPU-favouring) and are
//     rescaled to exactly fill the capacity.
func (m *Model) Arbitrate(d Demand) Grant {
	dc := math.Min(math.Max(float64(d.CPU), 0), m.p.SoloCapCPU)
	dg := math.Min(math.Max(float64(d.GPU), 0), m.p.SoloCapGPU)

	// Degenerate cases: only one device is demanding bandwidth.
	if dc == 0 && dg == 0 {
		return Grant{}
	}
	if dg == 0 {
		return Grant{CPU: units.GBps(dc)}
	}
	if dc == 0 {
		return Grant{GPU: units.GBps(dg)}
	}

	peak := m.p.CombinedPeak

	// Step 2: queueing interference, plus the (secondary) LLC
	// eviction term: the co-runner's traffic costs extra DRAM trips.
	cpuCoef := (m.p.CPUQueueBase+math.Max(d.CPUSens, 0))*(dg/peak) + m.p.LLCWeight*(dg/peak)
	gpuCoef := (m.p.GPUQueueBase+math.Max(d.GPUSens, 0))*(dg/peak)*(dc/peak) + m.p.LLCWeight*(dc/peak)
	ac := dc / (1 + cpuCoef)
	ag := dg / (1 + gpuCoef)

	// Step 3: saturation against the conflict-reduced capacity.
	capacity := peak * (1 - m.p.Kappa*math.Min(dc, dg)/peak)
	total := ac + ag
	if total <= capacity {
		return Grant{CPU: units.GBps(ac), GPU: units.GBps(ag)}
	}
	scarcity := capacity / total
	rc := ac * math.Pow(scarcity, m.p.BetaCPU)
	rg := ag * math.Pow(scarcity, m.p.BetaGPU)
	scale := capacity / (rc + rg)
	gc := math.Min(rc*scale, ac)
	gg := math.Min(rg*scale, ag)
	return Grant{CPU: units.GBps(gc), GPU: units.GBps(gg)}
}

// DegradationCPU returns the fractional bandwidth loss of the CPU side
// under the given co-run demand: 1 - grant/demand, in [0,1]. Demands at
// or below zero degrade by definition zero.
func (m *Model) DegradationCPU(d Demand) float64 {
	if d.CPU <= 0 {
		return 0
	}
	solo := m.Solo(SoloCPU, d.CPU)
	g := m.Arbitrate(d)
	return units.Clamp(1-float64(g.CPU)/float64(solo), 0, 1)
}

// DegradationGPU is DegradationCPU for the GPU side.
func (m *Model) DegradationGPU(d Demand) float64 {
	if d.GPU <= 0 {
		return 0
	}
	solo := m.Solo(SoloGPU, d.GPU)
	g := m.Arbitrate(d)
	return units.Clamp(1-float64(g.GPU)/float64(solo), 0, 1)
}
