// Package split implements the fine-grained alternative the paper
// scopes out in section II: splitting a single kernel's work across the
// CPU and the GPU so both devices execute parts of one job
// concurrently.
//
// The paper cites prior work (Zhang et al., MASCOTS'15, "To co-run or
// not to co-run") finding that "due to the complexity in data
// partitioning and communications, such partitioning often yields even
// worse performance than using a single processor" on integrated
// architectures. This package makes that trade-off measurable: a split
// job becomes two fragments that
//
//   - contend for the shared memory system (both sides of the same
//     die pull from one controller);
//   - exchange boundary data every iteration, inflating each
//     fragment's memory intensity (Boundary);
//   - synchronize at every kernel launch, so within each phase the
//     slower fragment gates progress and a residual sync loss applies
//     (SyncLoss);
//   - pay a one-time partition/merge cost (PartitionCost).
//
// The outcome per program answers "to split or not to split": balanced
// compute-bound kernels can win, memory-bound or strongly device-
// preferred ones rarely do — which is why the paper schedules whole
// jobs.
package split

import (
	"fmt"
	"math"

	"corun/internal/apu"
	"corun/internal/kernelsim"
	"corun/internal/memsys"
	"corun/internal/units"
)

// Default cost parameters, sized to the overheads the cited study
// attributes to manual CPU+GPU work partitioning on integrated parts.
const (
	// DefaultSyncLoss is the residual per-iteration barrier loss
	// (launch overhead, imbalance jitter the static partition cannot
	// absorb).
	DefaultSyncLoss = 0.12

	// DefaultBoundary is the fractional extra memory traffic each
	// fragment moves for halo/boundary data it would not touch in a
	// whole-device run.
	DefaultBoundary = 0.20

	// DefaultPartitionCost is the one-time input-partitioning and
	// output-merge cost, as a fraction of the best single-device time.
	DefaultPartitionCost = 0.04
)

// Options configures a split evaluation.
type Options struct {
	Cfg *apu.Config
	Mem *memsys.Model

	// SyncLoss, Boundary, PartitionCost override the default cost
	// parameters; negative values are rejected, zero selects the
	// default. Use a tiny positive value (e.g. 1e-12) for "free".
	SyncLoss      float64
	Boundary      float64
	PartitionCost float64

	// CPUFreq and GPUFreq pin the frequency indices; nil means maximum.
	CPUFreq *int
	GPUFreq *int
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.Cfg == nil || out.Mem == nil {
		return out, fmt.Errorf("split: nil machine or memory model")
	}
	for _, v := range []struct {
		name string
		p    *float64
		def  float64
	}{
		{"SyncLoss", &out.SyncLoss, DefaultSyncLoss},
		{"Boundary", &out.Boundary, DefaultBoundary},
		{"PartitionCost", &out.PartitionCost, DefaultPartitionCost},
	} {
		if *v.p < 0 {
			return out, fmt.Errorf("split: negative %s %v", v.name, *v.p)
		}
		if *v.p == 0 {
			*v.p = v.def
		}
	}
	return out, nil
}

func (o *Options) freqs() (units.GHz, units.GHz) {
	fc := o.Cfg.MaxFreqIndex(apu.CPU)
	if o.CPUFreq != nil {
		fc = *o.CPUFreq
	}
	fg := o.Cfg.MaxFreqIndex(apu.GPU)
	if o.GPUFreq != nil {
		fg = *o.GPUFreq
	}
	return o.Cfg.Freq(apu.CPU, fc), o.Cfg.Freq(apu.GPU, fg)
}

// Time returns the execution time of the program with fraction alpha
// of its work on the CPU and the rest on the GPU, fragments advancing
// phase by phase in lockstep (per-iteration barriers), including all
// split costs. The endpoints alpha=0 and alpha=1 are clean
// single-device runs with no split cost.
func Time(opts Options, prog *kernelsim.Program, scale, alpha float64) (units.Seconds, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return 0, err
	}
	if err := prog.Validate(); err != nil {
		return 0, err
	}
	if scale <= 0 {
		return 0, fmt.Errorf("split: non-positive scale %v", scale)
	}
	if alpha < 0 || alpha > 1 {
		return 0, fmt.Errorf("split: alpha %v outside [0,1]", alpha)
	}
	fc, fg := o.freqs()
	if alpha == 0 {
		return prog.StandaloneTime(apu.GPU, fg, o.Mem, scale), nil
	}
	if alpha == 1 {
		return prog.StandaloneTime(apu.CPU, fc, o.Mem, scale), nil
	}

	rc := prog.PotentialRate(apu.CPU, fc)
	rg := prog.PotentialRate(apu.GPU, fg)
	total := 0.0
	for _, ph := range prog.Phases {
		work := float64(prog.Work) * scale * ph.Frac
		bpo := ph.BytesPerOp * (1 + o.Boundary)
		grant := o.Mem.Arbitrate(memsys.Demand{
			CPU:     units.GBps(rc * bpo),
			GPU:     units.GBps(rg * bpo),
			CPUSens: prog.CPUSens,
			GPUSens: prog.GPUSens,
		})
		rateC := kernelsim.RateGivenGrant(rc, bpo, grant.CPU)
		rateG := kernelsim.RateGivenGrant(rg, bpo, grant.GPU)
		// Barriered: the phase lasts as long as its slower fragment.
		tC := alpha * work / rateC
		tG := (1 - alpha) * work / rateG
		total += math.Max(tC, tG)
	}
	total *= 1 + o.SyncLoss

	single := math.Min(
		float64(prog.StandaloneTime(apu.CPU, fc, o.Mem, scale)),
		float64(prog.StandaloneTime(apu.GPU, fg, o.Mem, scale)))
	total += o.PartitionCost * single
	return units.Seconds(total), nil
}

// Study is the outcome of a split evaluation for one program.
type Study struct {
	Name string

	// BestSingle is the better single-device time; BestSingleDev names
	// the device.
	BestSingle    units.Seconds
	BestSingleDev apu.Device

	// BestAlpha and BestSplit are the best work fraction and its time
	// (split costs included).
	BestAlpha float64
	BestSplit units.Seconds

	// Gain is BestSingle/BestSplit - 1: positive when splitting wins.
	Gain float64
}

// Evaluate scans alpha over a grid and reports whether splitting the
// program ever beats the best single-device execution.
func Evaluate(opts Options, prog *kernelsim.Program, scale float64, steps int) (*Study, error) {
	if steps < 2 {
		return nil, fmt.Errorf("split: need at least 2 alpha steps")
	}
	cpuOnly, err := Time(opts, prog, scale, 1)
	if err != nil {
		return nil, err
	}
	gpuOnly, err := Time(opts, prog, scale, 0)
	if err != nil {
		return nil, err
	}
	st := &Study{Name: prog.Name, BestSingle: cpuOnly, BestSingleDev: apu.CPU, BestAlpha: 1}
	if gpuOnly < cpuOnly {
		st.BestSingle, st.BestSingleDev, st.BestAlpha = gpuOnly, apu.GPU, 0
	}
	st.BestSplit = st.BestSingle
	for i := 1; i < steps; i++ {
		alpha := float64(i) / float64(steps)
		t, err := Time(opts, prog, scale, alpha)
		if err != nil {
			return nil, err
		}
		if t < st.BestSplit {
			st.BestSplit, st.BestAlpha = t, alpha
		}
	}
	st.Gain = float64(st.BestSingle)/float64(st.BestSplit) - 1
	return st, nil
}
