package split

import (
	"math"
	"testing"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/units"
	"corun/internal/workload"
)

func opts() Options {
	return Options{Cfg: apu.DefaultConfig(), Mem: memsys.Default()}
}

func TestValidation(t *testing.T) {
	prog := workload.MustByName("lud")
	if _, err := Time(Options{}, prog, 1, 0.5); err == nil {
		t.Error("empty options accepted")
	}
	if _, err := Time(opts(), prog, 0, 0.5); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := Time(opts(), prog, 1, -0.1); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := Time(opts(), prog, 1, 1.1); err == nil {
		t.Error("alpha above one accepted")
	}
	bad := opts()
	bad.SyncLoss = -1
	if _, err := Time(bad, prog, 1, 0.5); err == nil {
		t.Error("negative sync loss accepted")
	}
	bad2 := opts()
	bad2.Boundary = -1
	if _, err := Time(bad2, prog, 1, 0.5); err == nil {
		t.Error("negative boundary accepted")
	}
	if _, err := Evaluate(opts(), prog, 1, 1); err == nil {
		t.Error("single-step evaluation accepted")
	}
}

// The degenerate endpoints equal the standalone runs exactly.
func TestEndpointsMatchStandalone(t *testing.T) {
	prog := workload.MustByName("hotspot")
	mem := memsys.Default()
	cfg := apu.DefaultConfig()
	cpuWant := prog.StandaloneTime(apu.CPU, cfg.Freq(apu.CPU, cfg.MaxFreqIndex(apu.CPU)), mem, 1)
	gpuWant := prog.StandaloneTime(apu.GPU, cfg.Freq(apu.GPU, cfg.MaxFreqIndex(apu.GPU)), mem, 1)
	gotCPU, err := Time(opts(), prog, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotGPU, err := Time(opts(), prog, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if units.RelErr(float64(gotCPU), float64(cpuWant)) > 1e-6 {
		t.Errorf("alpha=1 time %v, want %v", gotCPU, cpuWant)
	}
	if units.RelErr(float64(gotGPU), float64(gpuWant)) > 1e-6 {
		t.Errorf("alpha=0 time %v, want %v", gotGPU, gpuWant)
	}
}

// Splitting carries the overhead: with a huge overhead no split can
// win.
func TestOverheadDominates(t *testing.T) {
	heavy := opts()
	heavy.SyncLoss = 3.0
	st, err := Evaluate(heavy, workload.MustByName("hotspot"), 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Gain > 1e-9 {
		t.Errorf("split won (%v) despite 300%% overhead", st.Gain)
	}
	// The best configuration degenerates to a single device.
	if st.BestAlpha != 0 && st.BestAlpha != 1 {
		t.Errorf("best alpha %v should be an endpoint", st.BestAlpha)
	}
}

// The cited study's finding is program-dependent ("to co-run or not to
// co-run"): strongly device-preferred or memory-heavy kernels gain
// little or nothing from splitting, while a balanced compute-bound
// kernel (lud) can win. The scheduler-facing conclusion — whole-job
// scheduling is the safe general policy — follows from the first group.
func TestSplitProgramDependent(t *testing.T) {
	gains := map[string]float64{}
	for _, name := range workload.Names() {
		st, err := Evaluate(opts(), workload.MustByName(name), 1, 10)
		if err != nil {
			t.Fatal(err)
		}
		if st.BestSplit > st.BestSingle+1e-9 {
			t.Errorf("%s: best split %v worse than best single %v (Evaluate must include endpoints)",
				name, st.BestSplit, st.BestSingle)
		}
		gains[name] = st.Gain
		t.Logf("%-14s single %7.2fs on %v, best split %7.2fs at alpha=%.1f (gain %+.1f%%)",
			name, float64(st.BestSingle), st.BestSingleDev, float64(st.BestSplit), st.BestAlpha, 100*st.Gain)
	}
	// Memory-heavy / strongly-preferred programs: splitting is not
	// worthwhile (the group that motivates whole-job scheduling).
	for _, name := range []string{"dwt2d", "streamcluster", "heartwall"} {
		if gains[name] > 0.05 {
			t.Errorf("%s gains %+.1f%% from splitting; expected <= 5%%", name, 100*gains[name])
		}
	}
	// The balanced non-preferred program is the one that genuinely
	// benefits — program-dependence, not a universal win.
	if gains["lud"] < math.Max(gains["dwt2d"], gains["streamcluster"])+0.10 {
		t.Errorf("lud (%.1f%%) should clearly out-gain the memory-heavy group", 100*gains["lud"])
	}
}

// With pessimistic per-launch synchronization (slow early OpenCL
// drivers), splitting loses for the large majority — the regime the
// cited study measured.
func TestSplitLosesUnderSlowSync(t *testing.T) {
	slow := opts()
	slow.SyncLoss = 0.30
	wins := 0
	for _, name := range workload.Names() {
		st, err := Evaluate(slow, workload.MustByName(name), 1, 10)
		if err != nil {
			t.Fatal(err)
		}
		if st.Gain > 0.05 {
			wins++
		}
	}
	if wins > 2 {
		t.Errorf("%d of 8 programs still gain >5%% under slow sync", wins)
	}
}

// Without overhead, splitting a compute-bound program approaches the
// combined-throughput ideal — the mechanism itself works.
func TestFreeSplitOfComputeBoundGains(t *testing.T) {
	free := opts()
	free.SyncLoss = 1e-12
	free.Boundary = 1e-12
	free.PartitionCost = 1e-12
	st, err := Evaluate(free, workload.MustByName("hotspot"), 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if st.Gain < 0.10 {
		t.Errorf("free split of hotspot gains only %+.1f%%; the fragments should add throughput", 100*st.Gain)
	}
	if st.BestAlpha <= 0 || st.BestAlpha >= 1 {
		t.Errorf("free split best alpha %v should be interior", st.BestAlpha)
	}
}
