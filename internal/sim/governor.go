package sim

import (
	"corun/internal/apu"
	"corun/internal/units"
)

// Bias selects which device a reactive governor sacrifices first when
// the power cap is exceeded (section VI.A of the paper).
type Bias int

// Governor biases.
const (
	// GPUBiased keeps the GPU fast: it lowers the CPU frequency first
	// and raises the GPU frequency first.
	GPUBiased Bias = iota
	// CPUBiased is the opposite policy.
	CPUBiased
)

// String implements fmt.Stringer.
func (b Bias) String() string {
	if b == GPUBiased {
		return "GPU-biased"
	}
	return "CPU-biased"
}

// BiasedGovernor is the paper's reactive frequency controller for the
// Random and Default baselines: it has no model, only the measured
// power, and steps one DVFS level per sample tick.
type BiasedGovernor struct {
	// Cap is the package power cap to enforce.
	Cap units.Watts
	// Domains are optional RAPL-style per-plane caps enforced on top
	// of Cap: PP0 meters the CPU cores, PP1 the iGPU, and a Package
	// entry tightens Cap. Zero planes are unenforced.
	Domains apu.DomainCaps
	// Bias picks the sacrificial device.
	Bias Bias
	// RaiseHeadroom is how far below the cap the measured power must
	// fall before the governor raises a frequency; zero defaults to
	// an estimate of one DVFS step's power.
	RaiseHeadroom units.Watts
}

// packageCap returns the effective package limit: the tighter of Cap
// and the Domains' package plane (zero = uncapped).
func (g *BiasedGovernor) packageCap() units.Watts {
	c := g.Cap
	if p := g.Domains.Package; p > 0 && (c <= 0 || p < c) {
		c = p
	}
	return c
}

// Adjust implements Governor.
func (g *BiasedGovernor) Adjust(power units.Watts, view *View, cfg *apu.Config) (int, int) {
	cf, gf := view.CPUFreq, view.GPUFreq
	pkgCap := g.packageCap()
	if pkgCap <= 0 && g.Domains.PP0 <= 0 && g.Domains.PP1 <= 0 {
		return cf, gf
	}
	// Plane overdraws first: a plane cap meters exactly one device, so
	// the only remedy is stepping that device down — there is no
	// cross-device trade like the package cap allows.
	lowered := false
	if g.Domains.PP0 > 0 && view.PP0 > g.Domains.PP0 && cf > 0 {
		cf--
		lowered = true
	}
	if g.Domains.PP1 > 0 && view.PP1 > g.Domains.PP1 && gf > 0 {
		gf--
		lowered = true
	}
	if lowered {
		return cf, gf
	}
	if pkgCap > 0 && power > pkgCap {
		return g.lower(power, cf, gf, cfg)
	}
	return g.raise(power, view, cf, gf, cfg)
}

// lower steps frequencies down until the estimated power fits under the
// cap (or both devices hit their floors), sacrificing the bias's
// non-preferred device first. The per-step saving is estimated from the
// full-activity power curve, which overestimates savings slightly — the
// residual is the small cap excursion the paper observes in Figure 9.
func (g *BiasedGovernor) lower(power units.Watts, cf, gf int, cfg *apu.Config) (int, int) {
	pkgCap := g.packageCap()
	est := power
	stepDown := func(dev apu.Device, idx int) (int, bool) {
		if idx <= 0 {
			return idx, false
		}
		est -= cfg.DynPower(dev, idx) - cfg.DynPower(dev, idx-1)
		return idx - 1, true
	}
	for est > pkgCap {
		var ok bool
		if g.Bias == GPUBiased {
			if cf, ok = stepDown(apu.CPU, cf); ok {
				continue
			}
			if gf, ok = stepDown(apu.GPU, gf); ok {
				continue
			}
		} else {
			if gf, ok = stepDown(apu.GPU, gf); ok {
				continue
			}
			if cf, ok = stepDown(apu.CPU, cf); ok {
				continue
			}
		}
		break // both at floor
	}
	return cf, gf
}

// raise steps frequencies up when the measured power plus the step's
// estimated cost still fits every cap with RaiseHeadroom to spare. The
// policy "always raises the GPU's frequency if it's not the highest
// yet" (symmetrically for CPU-biased): the non-preferred device is
// only considered once the preferred one sits at its maximum level.
func (g *BiasedGovernor) raise(power units.Watts, view *View, cf, gf int, cfg *apu.Config) (int, int) {
	pkgCap := g.packageCap()
	fits := func(dev apu.Device, delta units.Watts) bool {
		h := g.RaiseHeadroom
		if h <= 0 {
			// The documented default: one DVFS step's estimated power
			// of slack beyond the step itself. The raise estimate
			// undercounts the true cost (activity scaling and the host
			// thread ride on the raised clock), so raising whenever
			// power+delta fit would land above the cap and be lowered
			// right back — a raise/lower flap every governor tick.
			h = delta
		}
		if pkgCap > 0 && power+delta+h > pkgCap {
			return false
		}
		planeCap, planeW := g.Domains.PP0, view.PP0
		if dev == apu.GPU {
			planeCap, planeW = g.Domains.PP1, view.PP1
		}
		if planeCap > 0 && planeW+delta+h > planeCap {
			return false
		}
		return true
	}
	if g.Bias == GPUBiased {
		if gf < cfg.MaxFreqIndex(apu.GPU) {
			if fits(apu.GPU, cfg.DynPower(apu.GPU, gf+1)-cfg.DynPower(apu.GPU, gf)) {
				return cf, gf + 1
			}
			return cf, gf
		}
		if cf < cfg.MaxFreqIndex(apu.CPU) && fits(apu.CPU, cfg.DynPower(apu.CPU, cf+1)-cfg.DynPower(apu.CPU, cf)) {
			return cf + 1, gf
		}
		return cf, gf
	}
	if cf < cfg.MaxFreqIndex(apu.CPU) {
		if fits(apu.CPU, cfg.DynPower(apu.CPU, cf+1)-cfg.DynPower(apu.CPU, cf)) {
			return cf + 1, gf
		}
		return cf, gf
	}
	if gf < cfg.MaxFreqIndex(apu.GPU) && fits(apu.GPU, cfg.DynPower(apu.GPU, gf+1)-cfg.DynPower(apu.GPU, gf)) {
		return cf, gf + 1
	}
	return cf, gf
}

// PinnedGovernor holds frequencies fixed; useful to make intent
// explicit where a nil governor would do.
type PinnedGovernor struct{}

// Adjust implements Governor.
func (PinnedGovernor) Adjust(power units.Watts, view *View, cfg *apu.Config) (int, int) {
	return view.CPUFreq, view.GPUFreq
}
