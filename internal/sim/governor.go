package sim

import (
	"corun/internal/apu"
	"corun/internal/units"
)

// Bias selects which device a reactive governor sacrifices first when
// the power cap is exceeded (section VI.A of the paper).
type Bias int

// Governor biases.
const (
	// GPUBiased keeps the GPU fast: it lowers the CPU frequency first
	// and raises the GPU frequency first.
	GPUBiased Bias = iota
	// CPUBiased is the opposite policy.
	CPUBiased
)

// String implements fmt.Stringer.
func (b Bias) String() string {
	if b == GPUBiased {
		return "GPU-biased"
	}
	return "CPU-biased"
}

// BiasedGovernor is the paper's reactive frequency controller for the
// Random and Default baselines: it has no model, only the measured
// power, and steps one DVFS level per sample tick.
type BiasedGovernor struct {
	// Cap is the package power cap to enforce.
	Cap units.Watts
	// Bias picks the sacrificial device.
	Bias Bias
	// RaiseHeadroom is how far below the cap the measured power must
	// fall before the governor raises a frequency; zero defaults to
	// an estimate of one DVFS step's power.
	RaiseHeadroom units.Watts
}

// Adjust implements Governor.
func (g *BiasedGovernor) Adjust(power units.Watts, view *View, cfg *apu.Config) (int, int) {
	cf, gf := view.CPUFreq, view.GPUFreq
	if g.Cap <= 0 {
		return cf, gf
	}
	if power > g.Cap {
		return g.lower(power, cf, gf, cfg)
	}
	return g.raise(power, cf, gf, cfg)
}

// lower steps frequencies down until the estimated power fits under the
// cap (or both devices hit their floors), sacrificing the bias's
// non-preferred device first. The per-step saving is estimated from the
// full-activity power curve, which overestimates savings slightly — the
// residual is the small cap excursion the paper observes in Figure 9.
func (g *BiasedGovernor) lower(power units.Watts, cf, gf int, cfg *apu.Config) (int, int) {
	est := power
	stepDown := func(dev apu.Device, idx int) (int, bool) {
		if idx <= 0 {
			return idx, false
		}
		est -= cfg.DynPower(dev, idx) - cfg.DynPower(dev, idx-1)
		return idx - 1, true
	}
	for est > g.Cap {
		var ok bool
		if g.Bias == GPUBiased {
			if cf, ok = stepDown(apu.CPU, cf); ok {
				continue
			}
			if gf, ok = stepDown(apu.GPU, gf); ok {
				continue
			}
		} else {
			if gf, ok = stepDown(apu.GPU, gf); ok {
				continue
			}
			if cf, ok = stepDown(apu.CPU, cf); ok {
				continue
			}
		}
		break // both at floor
	}
	return cf, gf
}

// raise steps frequencies up when the measured power plus the step's
// estimated cost still fits the cap. The policy "always raises the
// GPU's frequency if it's not the highest yet" (symmetrically for
// CPU-biased): the non-preferred device is only considered once the
// preferred one sits at its maximum level.
func (g *BiasedGovernor) raise(power units.Watts, cf, gf int, cfg *apu.Config) (int, int) {
	fits := func(delta units.Watts) bool { return power+delta+g.RaiseHeadroom <= g.Cap }
	if g.Bias == GPUBiased {
		if gf < cfg.MaxFreqIndex(apu.GPU) {
			if fits(cfg.DynPower(apu.GPU, gf+1) - cfg.DynPower(apu.GPU, gf)) {
				return cf, gf + 1
			}
			return cf, gf
		}
		if cf < cfg.MaxFreqIndex(apu.CPU) && fits(cfg.DynPower(apu.CPU, cf+1)-cfg.DynPower(apu.CPU, cf)) {
			return cf + 1, gf
		}
		return cf, gf
	}
	if cf < cfg.MaxFreqIndex(apu.CPU) {
		if fits(cfg.DynPower(apu.CPU, cf+1) - cfg.DynPower(apu.CPU, cf)) {
			return cf + 1, gf
		}
		return cf, gf
	}
	if gf < cfg.MaxFreqIndex(apu.GPU) && fits(cfg.DynPower(apu.GPU, gf+1)-cfg.DynPower(apu.GPU, gf)) {
		return cf, gf + 1
	}
	return cf, gf
}

// PinnedGovernor holds frequencies fixed; useful to make intent
// explicit where a nil governor would do.
type PinnedGovernor struct{}

// Adjust implements Governor.
func (PinnedGovernor) Adjust(power units.Watts, view *View, cfg *apu.Config) (int, int) {
	return view.CPUFreq, view.GPUFreq
}
