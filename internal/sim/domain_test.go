package sim

import (
	"math"
	"testing"

	"corun/internal/apu"
	"corun/internal/units"
	"corun/internal/workload"
)

// Regression test for the RaiseHeadroom zero-value bug: the doc
// promises "zero defaults to an estimate of one DVFS step's power",
// but the code used the raw zero, so a cap sitting between the raise
// estimate (power + one step of dynamic power) and the true cost of
// the raise (the step plus activity scaling and the host thread)
// made the governor raise one tick and lower the next, forever.
//
// The loop below drives Adjust against the analytic package power of
// whatever operating point the governor picks, with the cap placed
// inside exactly that flap band: from (cpu 8, gpu max) a CPU raise is
// estimated at delta = DynPower(9)-DynPower(8) but truly costs
// 1.06*delta (HostPowerFrac rides the CPU clock), and the cap sits at
// power + 1.03*delta. Pre-fix the governor oscillates (8,max) <->
// (9,max) every tick; post-fix it must reach a fixed point.
func TestGovernorSteadyStateNoOscillation(t *testing.T) {
	cfg := apu.DefaultConfig()
	cf, gf := 8, cfg.MaxFreqIndex(apu.GPU)
	delta := cfg.DynPower(apu.CPU, cf+1) - cfg.DynPower(apu.CPU, cf)
	base := cfg.PackagePower(cf, gf, 1, 1, true)
	cap := base + units.Watts(1.03*float64(delta))

	g := &BiasedGovernor{Cap: cap, Bias: GPUBiased}
	view := &View{}
	var hist [][2]int
	for tick := 0; tick < 50; tick++ {
		power := cfg.PackagePower(cf, gf, 1, 1, true)
		view.CPUFreq, view.GPUFreq = cf, gf
		view.PP0, view.PP1 = 0, 0
		cf, gf = g.Adjust(power, view, cfg)
		hist = append(hist, [2]int{cf, gf})
	}
	// After a settling prefix the operating point must be a fixed
	// point: no raise/lower flapping across consecutive ticks.
	settled := hist[9]
	for tick := 10; tick < len(hist); tick++ {
		if hist[tick] != settled {
			t.Fatalf("governor oscillates at tick %d: %v != %v (history tail %v)",
				tick, hist[tick], settled, hist[8:13])
		}
	}
	// And the settled point must actually fit the cap.
	if p := cfg.PackagePower(settled[0], settled[1], 1, 1, true); p > cap {
		t.Fatalf("settled point (%d,%d) burns %v over the cap %v", settled[0], settled[1], p, cap)
	}
}

// An explicitly configured RaiseHeadroom must still be honored as-is.
func TestGovernorExplicitHeadroom(t *testing.T) {
	cfg := apu.DefaultConfig()
	// A huge headroom forbids every raise, whatever the cap.
	g := &BiasedGovernor{Cap: 100, Bias: GPUBiased, RaiseHeadroom: 1000}
	view := &View{CPUFreq: 3, GPUFreq: 4}
	cf, gf := g.Adjust(10, view, cfg)
	if cf != 3 || gf != 4 {
		t.Fatalf("Adjust with prohibitive headroom moved (3,4) -> (%d,%d)", cf, gf)
	}
}

// A PP1-only cap and an equal package cap must produce different
// frequency decisions on the same trace: the plane cap slows only the
// GPU, the package cap trades both devices (acceptance criterion).
func TestDomainCapDiffersFromPackageCap(t *testing.T) {
	run := func(g Governor, dc apu.DomainCaps, pkgCap units.Watts) *Result {
		t.Helper()
		batch, err := workload.Generate(workload.GenOptions{N: 6, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		var cpuQ, gpuQ []*workload.Instance
		for i, in := range batch {
			if i%2 == 0 {
				cpuQ = append(cpuQ, in)
			} else {
				gpuQ = append(gpuQ, in)
			}
		}
		opts := baseOpts()
		opts.Governor = g
		opts.DomainCaps = dc
		opts.PowerCap = pkgCap
		res, err := Run(opts, NewQueueDispatcher(cpuQ, gpuQ, nil))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	const capW = 9
	pp1 := run(&BiasedGovernor{Domains: apu.DomainCaps{PP1: capW}, Bias: GPUBiased},
		apu.DomainCaps{PP1: capW}, 0)
	pkg := run(&BiasedGovernor{Cap: capW, Bias: GPUBiased}, apu.DomainCaps{}, capW)

	same := pp1.CPUFreq.Len() == pkg.CPUFreq.Len()
	if same {
		for i := 0; i < pp1.CPUFreq.Len(); i++ {
			if pp1.CPUFreq.At(i).Value != pkg.CPUFreq.At(i).Value ||
				pp1.GPUFreq.At(i).Value != pkg.GPUFreq.At(i).Value {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("PP1-only cap and equal package cap produced identical frequency traces")
	}
	if pp1.Binding != apu.ConstraintPP1 {
		t.Errorf("PP1-capped run reports binding %v, want pp1", pp1.Binding)
	}
	if pkg.Binding != apu.ConstraintPackage {
		t.Errorf("package-capped run reports binding %v, want package", pkg.Binding)
	}
}

// Invariant: at every sample, the per-plane powers plus the constant
// uncore (idle) power reconstruct the package power.
func TestInvariantDomainSplitSumsToPackage(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		res, _ := randomBatchRun(t, seed, 2, &BiasedGovernor{Cap: 13, Bias: GPUBiased}, 13)
		cfg := apu.DefaultConfig()
		if res.PP0.Len() != res.Power.Len() || res.PP1.Len() != res.Power.Len() {
			t.Fatalf("seed %d: series lengths differ: pp0 %d, pp1 %d, package %d",
				seed, res.PP0.Len(), res.PP1.Len(), res.Power.Len())
		}
		for i := 0; i < res.Power.Len(); i++ {
			pkg := res.Power.At(i).Value
			sum := res.PP0.At(i).Value + res.PP1.At(i).Value + float64(cfg.IdlePower)
			if math.Abs(pkg-sum) > 1e-6 {
				t.Fatalf("seed %d sample %d: pp0+pp1+uncore = %v != package %v",
					seed, i, sum, pkg)
			}
		}
		// Run-wide averages must decompose the same way.
		if res.Makespan > 0 {
			sum := float64(res.AvgPP0) + float64(res.AvgPP1) + float64(cfg.IdlePower)
			if math.Abs(sum-float64(res.AvgPower)) > 1e-6 {
				t.Fatalf("seed %d: avg pp0+pp1+uncore = %v != avg power %v", seed, sum, res.AvgPower)
			}
		}
	}
}

// Invariant: the thermal throttle holds the heatsink node at T_max —
// temperature may overshoot by at most one tick's worth of heat input
// (the model reacts after the segment that crossed the trip point).
func TestInvariantThermalThrottleBoundsTemperature(t *testing.T) {
	cfg := apu.DefaultConfig()
	cfg.Thermal.TMaxC = 60
	cfg.Thermal.HysteresisC = 2

	batch, err := workload.Generate(workload.GenOptions{N: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var cpuQ, gpuQ []*workload.Instance
	for i, in := range batch {
		if i%2 == 0 {
			cpuQ = append(cpuQ, in)
		} else {
			gpuQ = append(gpuQ, in)
		}
	}
	opts := baseOpts()
	opts.Cfg = cfg
	res, err := Run(opts, NewQueueDispatcher(cpuQ, gpuQ, nil))
	if err != nil {
		t.Fatal(err)
	}

	// At full tilt the machine steadies near 81 C, far over the 60 C
	// trip — the run must throttle and report the thermal constraint.
	if res.Throttles == 0 {
		t.Fatalf("hot run never throttled (max temp %.1f C)", res.MaxTempC)
	}
	if res.Binding != apu.ConstraintThermal {
		t.Errorf("binding = %v, want thermal", res.Binding)
	}

	// One tick's worth of heat: the largest temperature step a single
	// sample interval at max package power can produce.
	maxP := cfg.PackagePower(cfg.MaxFreqIndex(apu.CPU), cfg.MaxFreqIndex(apu.GPU), 1, 1, true)
	oneTick := float64(maxP) * float64(opts.SampleInterval) / cfg.Thermal.CThermal
	if opts.SampleInterval <= 0 {
		oneTick = float64(maxP) * 1 / cfg.Thermal.CThermal
	}
	if res.MaxTempC > cfg.Thermal.TMaxC+oneTick {
		t.Errorf("max temp %.3f C exceeds TMax %.1f C by more than one tick's heat %.3f C",
			res.MaxTempC, cfg.Thermal.TMaxC, oneTick)
	}
	for i := 0; i < res.TempC.Len(); i++ {
		if v := res.TempC.At(i).Value; v > cfg.Thermal.TMaxC+oneTick {
			t.Errorf("sample %d: temp %.3f C over the throttle bound", i, v)
		}
	}

	// The untouched default machine must never throttle.
	cool, _ := randomBatchRun(t, 5, 1, nil, 0)
	if cool.Throttles != 0 {
		t.Errorf("default machine throttled %d times", cool.Throttles)
	}
	if cool.Binding != apu.ConstraintNone {
		t.Errorf("unconstrained run reports binding %v", cool.Binding)
	}
}

// HardCap with domain caps clamps each plane within the event, so no
// sample may exceed its plane cap.
func TestHardCapEnforcesDomainCaps(t *testing.T) {
	batch, err := workload.Generate(workload.GenOptions{N: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var cpuQ, gpuQ []*workload.Instance
	for i, in := range batch {
		if i%2 == 0 {
			cpuQ = append(cpuQ, in)
		} else {
			gpuQ = append(gpuQ, in)
		}
	}
	dc := apu.DomainCaps{PP0: 6, PP1: 5}
	opts := baseOpts()
	opts.HardCap = true
	opts.DomainCaps = dc
	res, err := Run(opts, NewQueueDispatcher(cpuQ, gpuQ, nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.PP0.Len(); i++ {
		if w := res.PP0.At(i).Value; w > float64(dc.PP0)+1e-6 {
			t.Errorf("sample %d: pp0 %v W over its %v W cap under HardCap", i, w, dc.PP0)
		}
		if w := res.PP1.At(i).Value; w > float64(dc.PP1)+1e-6 {
			t.Errorf("sample %d: pp1 %v W over its %v W cap under HardCap", i, w, dc.PP1)
		}
	}
	if res.DomainViolations != 0 {
		t.Errorf("HardCap run still recorded %d domain violations", res.DomainViolations)
	}
}
