package sim

import (
	"corun/internal/apu"
	"corun/internal/units"
	"corun/internal/workload"
)

// FreqPlanFunc chooses frequency indices when a job is dispatched to a
// device while `other` (possibly nil) occupies the opposite device.
// Return values below zero leave the respective frequency untouched.
type FreqPlanFunc func(dev apu.Device, inst, other *workload.Instance) (cpuFreq, gpuFreq int)

// QueueDispatcher feeds two fixed job sequences to the devices, in
// order, optionally consulting a frequency plan at each dispatch. It is
// how planned co-schedules (HCS, HCS+, Default's GPU side) execute.
type QueueDispatcher struct {
	CPUQueue []*workload.Instance
	GPUQueue []*workload.Instance
	FreqPlan FreqPlanFunc

	cpuNext, gpuNext int
}

// NewQueueDispatcher builds a dispatcher over copies of the queues.
func NewQueueDispatcher(cpu, gpu []*workload.Instance, plan FreqPlanFunc) *QueueDispatcher {
	return &QueueDispatcher{
		CPUQueue: append([]*workload.Instance(nil), cpu...),
		GPUQueue: append([]*workload.Instance(nil), gpu...),
		FreqPlan: plan,
	}
}

// Next implements Dispatcher.
func (q *QueueDispatcher) Next(dev apu.Device, view *View) *Dispatch {
	var inst *workload.Instance
	switch dev {
	case apu.CPU:
		if q.cpuNext >= len(q.CPUQueue) {
			return nil
		}
		inst = q.CPUQueue[q.cpuNext]
		q.cpuNext++
	case apu.GPU:
		if q.gpuNext >= len(q.GPUQueue) {
			return nil
		}
		inst = q.GPUQueue[q.gpuNext]
		q.gpuNext++
	default:
		return nil
	}
	d := &Dispatch{Inst: inst, CPUFreq: -1, GPUFreq: -1}
	if q.FreqPlan != nil {
		other := view.GPUJob
		if dev == apu.GPU {
			other = nil
			if len(view.CPUJobs) > 0 {
				other = view.CPUJobs[0]
			}
		}
		d.CPUFreq, d.GPUFreq = q.FreqPlan(dev, inst, other)
	}
	return d
}

// Remaining reports how many queued jobs have not been dispatched yet.
func (q *QueueDispatcher) Remaining() int {
	return (len(q.CPUQueue) - q.cpuNext) + (len(q.GPUQueue) - q.gpuNext)
}

// repeatDispatcher runs a target instance once on its device while
// continuously re-launching copies of a co-runner on the other device.
// Combined with Options.StopInstance it measures pairwise co-run
// degradation the way the paper does: the target runs start-to-finish
// under constant interference.
type repeatDispatcher struct {
	target    *workload.Instance
	targetDev apu.Device
	co        *workload.Instance
	started   bool
	coCount   int
}

// Next implements Dispatcher.
func (r *repeatDispatcher) Next(dev apu.Device, view *View) *Dispatch {
	if dev == r.targetDev {
		if r.started {
			return nil
		}
		r.started = true
		return &Dispatch{Inst: r.target, CPUFreq: -1, GPUFreq: -1}
	}
	if r.co == nil {
		return nil
	}
	// Fresh copy so completions are distinguishable.
	r.coCount++
	clone := *r.co
	return &Dispatch{Inst: &clone, CPUFreq: -1, GPUFreq: -1}
}

// StandaloneRun simulates a single instance alone on the given device
// at fixed frequencies and returns the full Result. The opposite
// device idles throughout.
func StandaloneRun(opts Options, inst *workload.Instance, dev apu.Device) (*Result, error) {
	opts.StopInstance = inst
	var cpu, gpu []*workload.Instance
	if dev == apu.CPU {
		cpu = []*workload.Instance{inst}
	} else {
		gpu = []*workload.Instance{inst}
	}
	return Run(opts, NewQueueDispatcher(cpu, gpu, nil))
}

// CoRunResult captures one pairwise degradation measurement.
type CoRunResult struct {
	// TargetTime is the target's wall time under interference.
	TargetTime units.Seconds
	// SoloTime is the target's standalone wall time at the same
	// frequencies.
	SoloTime units.Seconds
	// Degradation is TargetTime/SoloTime - 1 (>= 0 up to model noise).
	Degradation float64
	// AvgPower is the average co-run package power while the target ran.
	AvgPower units.Watts
}

// CoRun measures the degradation of target on targetDev while copies
// of co run back-to-back on the opposite device, with both devices
// pinned at the given frequency indices. A nil co measures a pure
// standalone run (degradation 0).
func CoRun(opts Options, target *workload.Instance, targetDev apu.Device, co *workload.Instance, cpuFreq, gpuFreq int) (*CoRunResult, error) {
	opts.InitCPUFreq = Pin(cpuFreq)
	opts.InitGPUFreq = Pin(gpuFreq)
	opts.Governor = nil

	soloOpts := opts
	solo, err := StandaloneRun(soloOpts, target, targetDev)
	if err != nil {
		return nil, err
	}

	opts.StopInstance = target
	disp := &repeatDispatcher{target: target, targetDev: targetDev, co: co}
	res, err := Run(opts, disp)
	if err != nil {
		return nil, err
	}
	out := &CoRunResult{
		TargetTime: res.Makespan,
		SoloTime:   solo.Makespan,
		AvgPower:   res.AvgPower,
	}
	if solo.Makespan > 0 {
		out.Degradation = float64(res.Makespan)/float64(solo.Makespan) - 1
	}
	return out, nil
}
