package sim

import (
	"math"
	"math/rand"
	"testing"

	"corun/internal/apu"
	"corun/internal/units"
	"corun/internal/workload"
)

// randomBatchRun executes a seeded random schedule of a seeded random
// batch and returns the result for invariant checks.
func randomBatchRun(t *testing.T, seed int64, cpuSlots int, governor Governor, cap units.Watts) (*Result, []*workload.Instance) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	batch, err := workload.Generate(workload.GenOptions{N: 4 + rng.Intn(5), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var cpuQ, gpuQ []*workload.Instance
	for _, in := range batch {
		if rng.Intn(2) == 0 {
			cpuQ = append(cpuQ, in)
		} else {
			gpuQ = append(gpuQ, in)
		}
	}
	opts := baseOpts()
	opts.CPUSlots = cpuSlots
	opts.Governor = governor
	opts.PowerCap = cap
	res, err := Run(opts, NewQueueDispatcher(cpuQ, gpuQ, nil))
	if err != nil {
		t.Fatal(err)
	}
	return res, batch
}

// Conservation: every dispatched job completes exactly once, and the
// makespan equals the last completion.
func TestInvariantCompletionConservation(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		res, batch := randomBatchRun(t, seed, 1, nil, 0)
		if len(res.Completions) != len(batch) {
			t.Fatalf("seed %d: %d completions for %d jobs", seed, len(res.Completions), len(batch))
		}
		seen := map[*workload.Instance]bool{}
		last := units.Seconds(0)
		for _, c := range res.Completions {
			if seen[c.Inst] {
				t.Fatalf("seed %d: %s completed twice", seed, c.Inst.Label)
			}
			seen[c.Inst] = true
			if c.End > last {
				last = c.End
			}
		}
		if math.Abs(float64(res.Makespan-last)) > 1e-9 {
			t.Errorf("seed %d: makespan %v != last completion %v", seed, res.Makespan, last)
		}
	}
}

// Energy equals the power-trace integral: the interval-averaged samples
// times their spans must sum to the reported energy (the final partial
// interval is not sampled, so compare over sampled time).
func TestInvariantEnergyMatchesTrace(t *testing.T) {
	res, _ := randomBatchRun(t, 3, 1, nil, 0)
	if res.Power.Len() < 2 {
		t.Skip("run too short to check")
	}
	sampled := 0.0
	prev := units.Seconds(0)
	for i := 0; i < res.Power.Len(); i++ {
		s := res.Power.At(i)
		sampled += s.Value * float64(s.Time-prev)
		prev = s.Time
	}
	// Energy over the sampled prefix cannot exceed total energy, and
	// the tail is bounded by max power times the tail duration.
	if sampled > res.EnergyJ+1e-6 {
		t.Errorf("trace integral %v exceeds total energy %v", sampled, res.EnergyJ)
	}
	tail := float64(res.Makespan-prev) * float64(res.MaxSample)
	if res.EnergyJ-sampled > tail+1e-6 {
		t.Errorf("unsampled energy %v exceeds max-power tail bound %v", res.EnergyJ-sampled, tail)
	}
}

// Power stays within physical bounds: every sample lies between idle
// power and the machine's maximum package power.
func TestInvariantPowerBounds(t *testing.T) {
	cfg := apu.DefaultConfig()
	maxP := float64(cfg.PackagePower(cfg.MaxFreqIndex(apu.CPU), cfg.MaxFreqIndex(apu.GPU), 1, 1, true))
	for seed := int64(0); seed < 6; seed++ {
		res, _ := randomBatchRun(t, seed, 2, nil, 0)
		for i := 0; i < res.Power.Len(); i++ {
			v := res.Power.At(i).Value
			if v < float64(cfg.IdlePower)-1e-9 || v > maxP+1e-9 {
				t.Fatalf("seed %d: sample %v outside [idle=%v, max=%v]", seed, v, cfg.IdlePower, maxP)
			}
		}
	}
}

// Co-running never makes a job finish faster than its standalone time
// at the same frequency (interference only hurts).
func TestInvariantNoSuperlinearSpeedup(t *testing.T) {
	opts := baseOpts()
	cfg := opts.Cfg
	for seed := int64(0); seed < 6; seed++ {
		res, _ := randomBatchRun(t, seed, 1, nil, 0)
		for _, c := range res.Completions {
			f := cfg.Freq(c.Dev, cfg.MaxFreqIndex(c.Dev))
			solo := c.Inst.Prog.StandaloneTime(c.Dev, f, opts.Mem, c.Inst.Scale)
			if float64(c.Duration()) < float64(solo)-1e-6 {
				t.Errorf("seed %d: %s ran faster co-scheduled (%v) than alone (%v)",
					seed, c.Inst.Label, c.Duration(), solo)
			}
		}
	}
}

// The makespan is bounded below by the heaviest single device queue's
// standalone time and above by fully serialized execution with maximal
// degradation slack.
func TestInvariantMakespanBounds(t *testing.T) {
	opts := baseOpts()
	cfg := opts.Cfg
	for seed := int64(10); seed < 16; seed++ {
		res, batch := randomBatchRun(t, seed, 1, nil, 0)
		lower := 0.0
		upper := 0.0
		for _, c := range res.Completions {
			f := cfg.Freq(c.Dev, cfg.MaxFreqIndex(c.Dev))
			solo := float64(c.Inst.Prog.StandaloneTime(c.Dev, f, opts.Mem, c.Inst.Scale))
			upper += solo * 3 // no plausible degradation triples a job
			_ = solo
		}
		perDev := map[apu.Device]float64{}
		for _, c := range res.Completions {
			f := cfg.Freq(c.Dev, cfg.MaxFreqIndex(c.Dev))
			perDev[c.Dev] += float64(c.Inst.Prog.StandaloneTime(c.Dev, f, opts.Mem, c.Inst.Scale))
		}
		for _, v := range perDev {
			if v > lower {
				lower = v
			}
		}
		if float64(res.Makespan) < lower-1e-6 {
			t.Errorf("seed %d: makespan %v below the busiest queue's solo sum %v", seed, res.Makespan, lower)
		}
		if float64(res.Makespan) > upper+1e-6 {
			t.Errorf("seed %d: makespan %v above the serialized bound %v", seed, res.Makespan, upper)
		}
		_ = batch
	}
}

// A reactive governor must never raise power above what the uncapped
// run drew, and its run can only be slower.
func TestInvariantGovernorOnlySlows(t *testing.T) {
	free, _ := randomBatchRun(t, 21, 1, nil, 0)
	capped, _ := randomBatchRun(t, 21, 1, &BiasedGovernor{Cap: 13, Bias: GPUBiased}, 13)
	if capped.Makespan < free.Makespan-1e-9 {
		t.Errorf("capped run (%v) faster than uncapped (%v)", capped.Makespan, free.Makespan)
	}
	if capped.AvgPower > free.AvgPower+1e-9 {
		t.Errorf("capped average power %v above uncapped %v", capped.AvgPower, free.AvgPower)
	}
}

// Multiprogramming degree monotonically hurts a CPU-only batch.
func TestInvariantMultiprogrammingMonotone(t *testing.T) {
	batch, err := workload.Generate(workload.GenOptions{N: 4, Seed: 9, GPUPreferredFrac: 0})
	if err != nil {
		t.Fatal(err)
	}
	prev := units.Seconds(0)
	for slots := 1; slots <= 4; slots++ {
		opts := baseOpts()
		opts.CPUSlots = slots
		res, err := Run(opts, NewQueueDispatcher(batch, nil, nil))
		if err != nil {
			t.Fatal(err)
		}
		if slots > 1 && res.Makespan < prev-1e-6 {
			t.Errorf("slots=%d makespan %v faster than slots=%d (%v)", slots, res.Makespan, slots-1, prev)
		}
		prev = res.Makespan
	}
}

// The hardware cap clamp keeps every sample at or below the cap and
// only slows execution down.
func TestHardCapClampsPower(t *testing.T) {
	mk := func(hard bool) *Result {
		opts := baseOpts()
		opts.PowerCap = 13
		opts.HardCap = hard
		a2, b2 := inst("dwt2d"), inst("streamcluster")
		b2.ID = 1
		res, err := Run(opts, NewQueueDispatcher([]*workload.Instance{a2}, []*workload.Instance{b2}, nil))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	free := mk(false)
	hard := mk(true)
	if free.CapViolations == 0 {
		t.Fatal("uncapped max-frequency co-run should violate 13 W")
	}
	if hard.CapViolations != 0 {
		t.Errorf("hard cap left %d violating samples (max excess %v)", hard.CapViolations, hard.MaxExcess)
	}
	if hard.Makespan <= free.Makespan {
		t.Errorf("hard-capped run (%v) should be slower than unconstrained (%v)", hard.Makespan, free.Makespan)
	}
}

// The clamp bias picks the sacrificial device: GPU-biased hurts a
// CPU-side job more than a CPU-biased clamp does.
func TestHardCapBias(t *testing.T) {
	run := func(bias Bias) *Result {
		opts := baseOpts()
		opts.PowerCap = 13
		opts.HardCap = true
		opts.HardCapBias = bias
		a, b := inst("dwt2d"), inst("streamcluster")
		b.ID = 1
		res, err := Run(opts, NewQueueDispatcher([]*workload.Instance{a}, []*workload.Instance{b}, nil))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	g := run(GPUBiased)
	c := run(CPUBiased)
	dwtEnd := func(r *Result) float64 {
		for _, cm := range r.Completions {
			if cm.Inst.Label == "dwt2d" {
				return float64(cm.End - cm.Start)
			}
		}
		t.Fatal("dwt2d missing")
		return 0
	}
	if dwtEnd(g) <= dwtEnd(c) {
		t.Errorf("GPU-biased clamp should slow the CPU job more: %v vs %v", dwtEnd(g), dwtEnd(c))
	}
}

// Frequency traces record governor behaviour: a capped run shows lower
// clocks than an uncapped one, and the traces align with power samples.
func TestFrequencyTraces(t *testing.T) {
	free, _ := randomBatchRun(t, 33, 1, nil, 0)
	capped, _ := randomBatchRun(t, 33, 1, &BiasedGovernor{Cap: 13, Bias: GPUBiased}, 13)
	if free.CPUFreq.Len() != free.Power.Len() || free.GPUFreq.Len() != free.Power.Len() {
		t.Fatalf("trace lengths diverge: %d/%d/%d",
			free.Power.Len(), free.CPUFreq.Len(), free.GPUFreq.Len())
	}
	cfg := apu.DefaultConfig()
	maxCPU := float64(cfg.Freq(apu.CPU, cfg.MaxFreqIndex(apu.CPU)))
	// Uncapped run stays at max clocks throughout.
	for i := 0; i < free.CPUFreq.Len(); i++ {
		if free.CPUFreq.At(i).Value != maxCPU {
			t.Fatalf("uncapped CPU clock %v at sample %d", free.CPUFreq.At(i).Value, i)
		}
	}
	// Capped run must have throttled the CPU at some point.
	throttled := false
	for i := 0; i < capped.CPUFreq.Len(); i++ {
		if capped.CPUFreq.At(i).Value < maxCPU {
			throttled = true
			break
		}
	}
	if !throttled {
		t.Error("capped run never throttled the CPU")
	}
}
