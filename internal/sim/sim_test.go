package sim

import (
	"math"
	"testing"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/units"
	"corun/internal/workload"
)

func baseOpts() Options {
	return Options{
		Cfg: apu.DefaultConfig(),
		Mem: memsys.Default(),
	}
}

func inst(name string) *workload.Instance {
	return &workload.Instance{ID: 0, Prog: workload.MustByName(name), Scale: 1, Label: name}
}

// A standalone simulated run must match the analytic standalone time
// from kernelsim: the event loop integrates the same rates.
func TestStandaloneMatchesAnalytic(t *testing.T) {
	opts := baseOpts()
	for _, name := range []string{"streamcluster", "dwt2d", "lud"} {
		for _, dev := range []apu.Device{apu.CPU, apu.GPU} {
			in := inst(name)
			res, err := StandaloneRun(opts, in, dev)
			if err != nil {
				t.Fatalf("%s on %v: %v", name, dev, err)
			}
			f := opts.Cfg.Freq(dev, opts.Cfg.MaxFreqIndex(dev))
			want := in.Prog.StandaloneTime(dev, f, opts.Mem, 1)
			if units.RelErr(float64(res.Makespan), float64(want)) > 1e-6 {
				t.Errorf("%s on %v: sim %.4f vs analytic %.4f", name, dev, res.Makespan, want)
			}
			if len(res.Completions) != 1 || res.Completions[0].Dev != dev {
				t.Errorf("%s on %v: bad completions %+v", name, dev, res.Completions)
			}
		}
	}
}

// Lower frequency means longer standalone time.
func TestStandaloneFreqScaling(t *testing.T) {
	opts := baseOpts()
	in := inst("hotspot")
	fast, err := StandaloneRun(opts, in, apu.GPU)
	if err != nil {
		t.Fatal(err)
	}
	slowOpts := opts
	slowOpts.InitGPUFreq = Pin(0)
	slow, err := StandaloneRun(slowOpts, inst("hotspot"), apu.GPU)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Makespan <= fast.Makespan {
		t.Errorf("GPU at 0.35 GHz (%v) should be slower than at 1.25 GHz (%v)", slow.Makespan, fast.Makespan)
	}
}

// Section III anecdote: dwt2d on CPU suffers heavily beside
// streamcluster on GPU (paper: 81%) but only mildly beside hotspot
// (paper: 17%); the GPU co-runners barely notice.
func TestSectionIIIAnecdotes(t *testing.T) {
	opts := baseOpts()
	cmax := opts.Cfg.MaxFreqIndex(apu.CPU)
	gmax := opts.Cfg.MaxFreqIndex(apu.GPU)

	heavy, err := CoRun(opts, inst("dwt2d"), apu.CPU, inst("streamcluster"), cmax, gmax)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Degradation < 0.55 || heavy.Degradation > 1.15 {
		t.Errorf("dwt2d beside streamcluster degrades %.2f, want around 0.81", heavy.Degradation)
	}

	mild, err := CoRun(opts, inst("dwt2d"), apu.CPU, inst("hotspot"), cmax, gmax)
	if err != nil {
		t.Fatal(err)
	}
	if mild.Degradation < 0.05 || mild.Degradation > 0.35 {
		t.Errorf("dwt2d beside hotspot degrades %.2f, want around 0.17", mild.Degradation)
	}
	if mild.Degradation >= heavy.Degradation {
		t.Errorf("hotspot pairing (%.2f) should hurt less than streamcluster pairing (%.2f)",
			mild.Degradation, heavy.Degradation)
	}

	// The GPU-side view: streamcluster co-running with dwt2d.
	gpuSide, err := CoRun(opts, inst("streamcluster"), apu.GPU, inst("dwt2d"), cmax, gmax)
	if err != nil {
		t.Fatal(err)
	}
	if gpuSide.Degradation > 0.15 {
		t.Errorf("streamcluster beside dwt2d degrades %.2f, want small (paper: 0.05)", gpuSide.Degradation)
	}
}

// Degradations are non-negative for every workload pairing at max
// frequency.
func TestCoRunDegradationsNonNegative(t *testing.T) {
	opts := baseOpts()
	cmax := opts.Cfg.MaxFreqIndex(apu.CPU)
	gmax := opts.Cfg.MaxFreqIndex(apu.GPU)
	names := workload.Names()
	for _, a := range names[:4] {
		for _, b := range names[4:] {
			r, err := CoRun(opts, inst(a), apu.CPU, inst(b), cmax, gmax)
			if err != nil {
				t.Fatalf("%s/%s: %v", a, b, err)
			}
			if r.Degradation < -1e-6 {
				t.Errorf("%s beside %s has negative degradation %.4f", a, b, r.Degradation)
			}
		}
	}
}

func TestQueueDispatcherOrdering(t *testing.T) {
	opts := baseOpts()
	a, b := inst("lud"), inst("hotspot")
	b.ID = 1
	d := NewQueueDispatcher([]*workload.Instance{a, b}, nil, nil)
	res, err := Run(opts, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completions) != 2 {
		t.Fatalf("completions = %d, want 2", len(res.Completions))
	}
	if res.Completions[0].Inst != a || res.Completions[1].Inst != b {
		t.Error("queue order not respected")
	}
	if res.Completions[1].Start < res.Completions[0].End-1e-9 {
		t.Error("second job started before first finished on a 1-slot CPU")
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
}

// Makespan equals the last completion time and completions are in
// chronological order.
func TestMakespanAndCompletionOrder(t *testing.T) {
	opts := baseOpts()
	cpu := []*workload.Instance{inst("dwt2d"), inst("lud")}
	gpu := []*workload.Instance{inst("streamcluster"), inst("hotspot"), inst("srad")}
	for i, in := range append(append([]*workload.Instance{}, cpu...), gpu...) {
		in.ID = i
	}
	res, err := Run(opts, NewQueueDispatcher(cpu, gpu, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completions) != 5 {
		t.Fatalf("completions = %d, want 5", len(res.Completions))
	}
	last := units.Seconds(0)
	for _, c := range res.Completions {
		if c.End < last {
			t.Error("completions out of order")
		}
		last = c.End
		if c.Duration() <= 0 {
			t.Errorf("%s has non-positive duration", c.Inst.Label)
		}
	}
	if math.Abs(float64(res.Makespan-last)) > 1e-9 {
		t.Errorf("makespan %v != last completion %v", res.Makespan, last)
	}
}

// Co-running two complementary jobs beats running them sequentially
// (the whole premise of co-scheduling).
func TestCoRunBeatsSequentialForComplementaryJobs(t *testing.T) {
	opts := baseOpts()
	d1, h1 := inst("dwt2d"), inst("hotspot")
	h1.ID = 1
	co, err := Run(opts, NewQueueDispatcher([]*workload.Instance{d1}, []*workload.Instance{h1}, nil))
	if err != nil {
		t.Fatal(err)
	}
	d2, h2 := inst("dwt2d"), inst("hotspot")
	h2.ID = 1
	seqA, err := StandaloneRun(opts, d2, apu.CPU)
	if err != nil {
		t.Fatal(err)
	}
	seqB, err := StandaloneRun(opts, h2, apu.GPU)
	if err != nil {
		t.Fatal(err)
	}
	if co.Makespan >= seqA.Makespan+seqB.Makespan {
		t.Errorf("co-run makespan %v should beat sequential %v",
			co.Makespan, seqA.Makespan+seqB.Makespan)
	}
}

// Multiprogramming the CPU (Default-baseline behaviour) is slower than
// running the same jobs back to back.
func TestMultiprogrammedCPUSlower(t *testing.T) {
	opts := baseOpts()
	mk := func() []*workload.Instance {
		a, b, c := inst("dwt2d"), inst("lud"), inst("cfd")
		b.ID, c.ID = 1, 2
		return []*workload.Instance{a, b, c}
	}
	seqRes, err := Run(opts, NewQueueDispatcher(mk(), nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	mpOpts := opts
	mpOpts.CPUSlots = 3
	mpRes, err := Run(mpOpts, NewQueueDispatcher(mk(), nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if mpRes.Makespan <= seqRes.Makespan {
		t.Errorf("multiprogrammed makespan %v should exceed sequential %v",
			mpRes.Makespan, seqRes.Makespan)
	}
}

func TestPowerTraceAndEnergy(t *testing.T) {
	opts := baseOpts()
	res, err := StandaloneRun(opts, inst("hotspot"), apu.GPU)
	if err != nil {
		t.Fatal(err)
	}
	if res.Power.Len() < 10 {
		t.Fatalf("power trace has %d samples for a ~28 s run", res.Power.Len())
	}
	if res.AvgPower <= opts.Cfg.IdlePower {
		t.Errorf("average power %v should exceed idle %v", res.AvgPower, opts.Cfg.IdlePower)
	}
	if res.MaxSample < res.AvgPower {
		t.Errorf("max sample %v below average %v", res.MaxSample, res.AvgPower)
	}
	wantEnergy := float64(res.AvgPower) * float64(res.Makespan)
	if units.RelErr(res.EnergyJ, wantEnergy) > 1e-9 {
		t.Errorf("energy %v inconsistent with avg power x makespan %v", res.EnergyJ, wantEnergy)
	}
}

// Running both devices at max frequency blows through a 15 W cap and
// the simulator records the violations.
func TestCapViolationAccounting(t *testing.T) {
	opts := baseOpts()
	opts.PowerCap = 15
	a, b := inst("dwt2d"), inst("streamcluster")
	b.ID = 1
	res, err := Run(opts, NewQueueDispatcher([]*workload.Instance{a}, []*workload.Instance{b}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.CapViolations == 0 {
		t.Error("max-frequency co-run under a 15 W cap should violate it")
	}
	if res.MaxExcess <= 0 {
		t.Error("MaxExcess should be positive")
	}
}

// The GPU-biased governor brings power under the cap by lowering the
// CPU frequency first, keeping the GPU fast.
func TestGPUBiasedGovernorEnforcesCap(t *testing.T) {
	opts := baseOpts()
	opts.PowerCap = 15
	opts.Governor = &BiasedGovernor{Cap: 15, Bias: GPUBiased}
	a, b := inst("dwt2d"), inst("streamcluster")
	b.ID = 1
	res, err := Run(opts, NewQueueDispatcher([]*workload.Instance{a}, []*workload.Instance{b}, nil))
	if err != nil {
		t.Fatal(err)
	}
	// After settling, the bulk of samples must respect the cap; the
	// paper tolerates brief excursions of < 2 W.
	n, _ := res.Power.CountAbove(15 + 0.5)
	if frac := float64(n) / float64(res.Power.Len()); frac > 0.3 {
		t.Errorf("governor left %.0f%% of samples >0.5 W above the cap", frac*100)
	}
	if res.MaxExcess > 6 {
		t.Errorf("max excess %v too large for a reactive governor", res.MaxExcess)
	}
}

// CPU-biased and GPU-biased governors sacrifice different devices:
// under the same workload the GPU-biased run keeps higher GPU clocks
// and so finishes GPU-heavy work faster.
func TestBiasDifference(t *testing.T) {
	run := func(bias Bias) units.Seconds {
		opts := baseOpts()
		opts.PowerCap = 12
		opts.Governor = &BiasedGovernor{Cap: 12, Bias: bias}
		a, b := inst("dwt2d"), inst("streamcluster")
		b.ID = 1
		res, err := Run(opts, NewQueueDispatcher(nil, []*workload.Instance{b, a}, nil))
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	gpuBiased := run(GPUBiased)
	cpuBiased := run(CPUBiased)
	if gpuBiased >= cpuBiased {
		t.Errorf("GPU-biased makespan %v should beat CPU-biased %v on GPU-only work",
			gpuBiased, cpuBiased)
	}
}

func TestStopInstance(t *testing.T) {
	opts := baseOpts()
	target := inst("lud")
	filler := inst("streamcluster")
	filler.ID = 1
	opts.StopInstance = target
	res, err := Run(opts, NewQueueDispatcher([]*workload.Instance{target}, []*workload.Instance{filler}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionOf(target) == nil {
		t.Fatal("target did not complete")
	}
	if math.Abs(float64(res.Makespan-res.CompletionOf(target).End)) > 1e-9 {
		t.Error("simulation did not stop at target completion")
	}
}

func TestFreqPlanApplied(t *testing.T) {
	opts := baseOpts()
	in := inst("hotspot")
	plan := func(dev apu.Device, i, other *workload.Instance) (int, int) {
		return 3, 2
	}
	res, err := Run(opts, NewQueueDispatcher(nil, []*workload.Instance{in}, plan))
	if err != nil {
		t.Fatal(err)
	}
	want := in.Prog.StandaloneTime(apu.GPU, opts.Cfg.Freq(apu.GPU, 2), opts.Mem, 1)
	if units.RelErr(float64(res.Makespan), float64(want)) > 1e-6 {
		t.Errorf("freq plan ignored: makespan %v, want %v", res.Makespan, want)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Run(Options{}, NewQueueDispatcher(nil, nil, nil)); err == nil {
		t.Error("Run accepted empty options")
	}
	if _, err := Run(Options{Cfg: apu.DefaultConfig()}, NewQueueDispatcher(nil, nil, nil)); err == nil {
		t.Error("Run accepted options without memory model")
	}
	if _, err := Run(baseOpts(), nil); err == nil {
		t.Error("Run accepted nil dispatcher")
	}
}

func TestEmptyScheduleFinishesImmediately(t *testing.T) {
	res, err := Run(baseOpts(), NewQueueDispatcher(nil, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 || len(res.Completions) != 0 {
		t.Errorf("empty schedule: makespan %v, %d completions", res.Makespan, len(res.Completions))
	}
}

func TestMaxTimeGuard(t *testing.T) {
	opts := baseOpts()
	opts.MaxTime = 1 // far too short for any real program
	_, err := StandaloneRun(opts, inst("hotspot"), apu.GPU)
	if err == nil {
		t.Error("MaxTime guard did not fire")
	}
}

func TestPinnedGovernorKeepsFreqs(t *testing.T) {
	cfg := apu.DefaultConfig()
	v := &View{CPUFreq: 5, GPUFreq: 7}
	cf, gf := PinnedGovernor{}.Adjust(99, v, cfg)
	if cf != 5 || gf != 7 {
		t.Errorf("pinned governor moved frequencies: %d,%d", cf, gf)
	}
}

func TestBiasString(t *testing.T) {
	if GPUBiased.String() != "GPU-biased" || CPUBiased.String() != "CPU-biased" {
		t.Error("bias names wrong")
	}
}

// The biased governor lowers the correct device first.
func TestBiasedGovernorLowerOrder(t *testing.T) {
	cfg := apu.DefaultConfig()
	slight := units.Watts(16) // just above a 15 W cap
	v := &View{CPUFreq: 5, GPUFreq: 5}
	cf, gf := (&BiasedGovernor{Cap: 15, Bias: GPUBiased}).Adjust(slight, v, cfg)
	if cf >= 5 || gf != 5 {
		t.Errorf("GPU-biased over cap: got (%d,%d), want CPU lowered, GPU held", cf, gf)
	}
	cf, gf = (&BiasedGovernor{Cap: 15, Bias: CPUBiased}).Adjust(slight, v, cfg)
	if cf != 5 || gf >= 5 {
		t.Errorf("CPU-biased over cap: got (%d,%d), want GPU lowered, CPU held", cf, gf)
	}
	// At the floor of the sacrificial device, the other one gives way.
	v = &View{CPUFreq: 0, GPUFreq: 5}
	cf, gf = (&BiasedGovernor{Cap: 15, Bias: GPUBiased}).Adjust(slight, v, cfg)
	if cf != 0 || gf >= 5 {
		t.Errorf("GPU-biased at CPU floor: got (%d,%d), want GPU lowered", cf, gf)
	}
	// Both at floor: no change even for a huge excess.
	v = &View{CPUFreq: 0, GPUFreq: 0}
	cf, gf = (&BiasedGovernor{Cap: 15, Bias: CPUBiased}).Adjust(99, v, cfg)
	if cf != 0 || gf != 0 {
		t.Errorf("at floor: got (%d,%d), want (0,0)", cf, gf)
	}
	// A huge excess sheds multiple levels in one tick.
	v = &View{CPUFreq: 15, GPUFreq: 9}
	cf, gf = (&BiasedGovernor{Cap: 10, Bias: GPUBiased}).Adjust(30, v, cfg)
	if cf > 5 {
		t.Errorf("huge excess should shed many CPU levels, got cf=%d", cf)
	}
}

// The biased governor raises the preferred device when there is
// headroom.
func TestBiasedGovernorRaiseOrder(t *testing.T) {
	cfg := apu.DefaultConfig()
	v := &View{CPUFreq: 3, GPUFreq: 3}
	cf, gf := (&BiasedGovernor{Cap: 30, Bias: GPUBiased}).Adjust(10, v, cfg)
	if !(cf == 3 && gf == 4) {
		t.Errorf("GPU-biased with headroom: got (%d,%d), want (3,4)", cf, gf)
	}
	cf, gf = (&BiasedGovernor{Cap: 30, Bias: CPUBiased}).Adjust(10, v, cfg)
	if !(cf == 4 && gf == 3) {
		t.Errorf("CPU-biased with headroom: got (%d,%d), want (4,3)", cf, gf)
	}
	// No headroom: hold.
	cf, gf = (&BiasedGovernor{Cap: 15, Bias: GPUBiased}).Adjust(14.9, v, cfg)
	if cf != 3 || gf != 3 {
		t.Errorf("no headroom: got (%d,%d), want (3,3)", cf, gf)
	}
}

// Uncapped governor does nothing.
func TestBiasedGovernorUncapped(t *testing.T) {
	cfg := apu.DefaultConfig()
	v := &View{CPUFreq: 2, GPUFreq: 2}
	cf, gf := (&BiasedGovernor{Cap: 0, Bias: GPUBiased}).Adjust(50, v, cfg)
	if cf != 2 || gf != 2 {
		t.Errorf("uncapped governor moved frequencies: (%d,%d)", cf, gf)
	}
}
