// Package sim is the discrete-event co-run simulator: the reproduction's
// stand-in for executing OpenCL programs on the physical APU.
//
// The simulator advances time in piecewise-constant segments. Within a
// segment the set of running jobs, the device frequencies, and each
// job's current phase are fixed, so execution rates follow directly
// from the memory-system arbitration; the next event is the earliest
// phase completion, job completion, or power-sample tick. Package power
// is integrated exactly over every segment and reported as 1 Hz
// interval averages, mirroring RAPL-style measurement.
//
// The simulator also reproduces the pathology the paper attributes to
// the Linux default schedule: when several OpenCL CPU jobs are launched
// at once they time-share the cores, paying a context-switch overhead
// and losing cache locality (their aggregate memory traffic inflates).
package sim

import (
	"fmt"
	"math"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/trace"
	"corun/internal/units"
	"corun/internal/workload"
)

// eps is the simulator's internal time/work tolerance.
const eps = 1e-9

// Options configures one simulation run.
type Options struct {
	// Cfg is the machine description. Required.
	Cfg *apu.Config

	// Mem is the shared-memory contention model. Required.
	Mem *memsys.Model

	// PowerCap is the package power cap in watts; zero means uncapped.
	// By default the simulator never enforces the cap itself — that is
	// the job of schedules and governors — it only accounts violations.
	PowerCap units.Watts

	// HardCap enables RAPL-style hardware enforcement: whenever the
	// instantaneous package power would exceed PowerCap, frequencies
	// are clamped down immediately (within the event, i.e. at hardware
	// time scales), sacrificing HardCapBias's non-preferred device
	// first. Software above may still pick frequencies; the clamp is a
	// backstop.
	HardCap bool

	// HardCapBias picks the device the hardware clamp sacrifices first
	// (default GPUBiased: lower the CPU first, like Intel's RAPL
	// balancing toward graphics).
	HardCapBias Bias

	// DomainCaps are optional RAPL-style per-plane limits (PP0 cores /
	// PP1 iGPU / package) accounted alongside PowerCap. With HardCap
	// they are enforced within the event like the package clamp; either
	// way per-plane violations are counted in the Result and the
	// binding constraint reported.
	DomainCaps apu.DomainCaps

	// SampleInterval is the power-sampling period; zero defaults to 1 s.
	SampleInterval units.Seconds

	// CPUSlots is how many jobs may time-share the CPU at once; zero
	// defaults to 1 (the co-scheduling policies of the paper never
	// multiprogram the CPU; the Default baseline does).
	CPUSlots int

	// InitCPUFreq and InitGPUFreq are the starting frequency levels;
	// the zero value means the maximum level. Use Pin to start at a
	// specific index.
	InitCPUFreq FreqSetting
	InitGPUFreq FreqSetting

	// Governor, if non-nil, may adjust frequencies at each governor
	// tick (reactive power capping, as the biased baselines do).
	Governor Governor

	// GovernorInterval is the reactive controller's period; zero
	// defaults to 0.25 s (hardware power controllers react much faster
	// than the 1 Hz observability sampling).
	GovernorInterval units.Seconds

	// StopInstance, if non-nil, ends the simulation the moment this
	// instance completes (used for pairwise degradation measurement).
	StopInstance *workload.Instance

	// MaxTime aborts runaway simulations; zero defaults to 1e6 s.
	MaxTime units.Seconds

	// CSOverhead is the per-extra-job context-switch throughput loss
	// on a multiprogrammed CPU; zero defaults to 0.06.
	CSOverhead float64

	// LocalityInflation is the per-extra-job memory-traffic inflation
	// on a multiprogrammed CPU; zero defaults to 0.08.
	LocalityInflation float64
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.Cfg == nil {
		return out, fmt.Errorf("sim: Options.Cfg is required")
	}
	if err := out.Cfg.Validate(); err != nil {
		return out, err
	}
	if out.Mem == nil {
		return out, fmt.Errorf("sim: Options.Mem is required")
	}
	if out.SampleInterval <= 0 {
		out.SampleInterval = 1
	}
	if out.GovernorInterval <= 0 {
		out.GovernorInterval = 0.25
	}
	if out.CPUSlots <= 0 {
		out.CPUSlots = 1
	}
	if err := out.InitCPUFreq.validate(out.Cfg, apu.CPU); err != nil {
		return out, err
	}
	if err := out.InitGPUFreq.validate(out.Cfg, apu.GPU); err != nil {
		return out, err
	}
	if out.MaxTime <= 0 {
		out.MaxTime = 1e6
	}
	if out.CSOverhead == 0 {
		out.CSOverhead = 0.06
	}
	if out.LocalityInflation == 0 {
		out.LocalityInflation = 0.08
	}
	return out, nil
}

// FreqSetting selects a starting DVFS level. The zero value selects the
// device's maximum level; Pin(i) selects index i.
type FreqSetting struct {
	pinned bool
	idx    int
}

// Pin returns a FreqSetting fixing the given frequency index.
func Pin(idx int) FreqSetting { return FreqSetting{pinned: true, idx: idx} }

// index resolves the setting against a device's frequency table.
func (f FreqSetting) index(cfg *apu.Config, d apu.Device) int {
	if !f.pinned {
		return cfg.MaxFreqIndex(d)
	}
	return f.idx
}

func (f FreqSetting) validate(cfg *apu.Config, d apu.Device) error {
	if f.pinned && (f.idx < 0 || f.idx >= cfg.NumFreqs(d)) {
		return fmt.Errorf("sim: pinned %v frequency index %d out of range [0,%d)", d, f.idx, cfg.NumFreqs(d))
	}
	return nil
}

// Dispatch is a dispatcher's instruction to start a job. Frequency
// directives below zero leave the current setting untouched.
type Dispatch struct {
	Inst    *workload.Instance
	CPUFreq int
	GPUFreq int
}

// View is the read-only simulator state exposed to dispatchers and
// governors. The pointer and its CPUJobs slice are valid only for the
// duration of the Next/Adjust call that received them — the simulator
// reuses the backing storage between ticks, so implementations must
// copy anything they want to keep.
type View struct {
	Now     units.Seconds
	CPUJobs []*workload.Instance
	GPUJob  *workload.Instance
	CPUFreq int
	GPUFreq int

	// PP0 and PP1 are the instantaneous per-plane powers of the
	// segment that just ended (CPU cores + host thread, and iGPU), and
	// TempC the shared-heatsink temperature — what a domain-aware
	// governor reacts to.
	PP0   units.Watts
	PP1   units.Watts
	TempC float64
}

// Dispatcher supplies jobs to idle device slots. Next returns nil when
// the device should stay idle for now; the simulation ends when nothing
// is running and both devices decline to dispatch.
type Dispatcher interface {
	Next(dev apu.Device, view *View) *Dispatch
}

// Governor reacts to measured power at each sample tick and returns the
// frequency indices to use next (possibly unchanged).
type Governor interface {
	Adjust(power units.Watts, view *View, cfg *apu.Config) (cpuFreq, gpuFreq int)
}

// Completion records one finished job.
type Completion struct {
	Inst  *workload.Instance
	Dev   apu.Device
	Start units.Seconds
	End   units.Seconds
}

// Duration is the job's wall time.
func (c Completion) Duration() units.Seconds { return c.End - c.Start }

// Result summarizes one simulation.
type Result struct {
	// Makespan is the time from start to the last completion (or to
	// StopInstance's completion).
	Makespan units.Seconds

	// Completions lists finished jobs in completion order.
	Completions []Completion

	// Power is the interval-averaged package power trace.
	Power *trace.Series

	// CPUFreq and GPUFreq sample the operating points at the same
	// cadence as Power (values in GHz), making governor and clamp
	// behaviour observable.
	CPUFreq *trace.Series
	GPUFreq *trace.Series

	// EnergyJ is total energy in joules.
	EnergyJ float64

	// AvgPower and MaxSample summarize the trace.
	AvgPower  units.Watts
	MaxSample units.Watts

	// CapViolations counts samples above the cap; MaxExcess is the
	// largest observed excess.
	CapViolations int
	MaxExcess     units.Watts

	// PP0 and PP1 are the interval-averaged per-plane power traces
	// (CPU cores + host thread, and iGPU); package power minus their
	// sum is the constant uncore/idle power.
	PP0 *trace.Series
	PP1 *trace.Series

	// TempC samples the shared-heatsink temperature at the same
	// cadence (instantaneous, like a thermal sensor read).
	TempC *trace.Series

	// AvgPP0 and AvgPP1 are the run-wide per-plane averages.
	AvgPP0 units.Watts
	AvgPP1 units.Watts

	// MaxTempC is the hottest the heatsink node got; Throttles counts
	// the T_max ceiling clamps the thermal model applied.
	MaxTempC  float64
	Throttles int

	// DomainViolations counts samples where a configured plane cap was
	// exceeded (the per-domain analogue of CapViolations).
	DomainViolations int

	// Binding names the constraint that bound this run: thermal if the
	// throttle ever fired, otherwise the most heavily loaded of the
	// configured power caps, none when unconstrained.
	Binding apu.Constraint
}

// CompletionOf returns the completion record of the given instance, or
// nil if it never finished.
func (r *Result) CompletionOf(inst *workload.Instance) *Completion {
	for i := range r.Completions {
		if r.Completions[i].Inst == inst {
			return &r.Completions[i]
		}
	}
	return nil
}

// running tracks one in-flight job.
type running struct {
	inst      *workload.Instance
	dev       apu.Device
	phase     int
	remaining float64 // GOps left in the current phase
	start     units.Seconds

	// per-segment scratch
	rate      float64
	potential float64
}

func newRunning(inst *workload.Instance, dev apu.Device, now units.Seconds) *running {
	r := &running{inst: inst, dev: dev, start: now}
	r.remaining = float64(inst.Prog.Work) * inst.Scale * inst.Prog.Phases[0].Frac
	return r
}

// advancePhase moves to the next phase; it returns false when the job
// has finished.
func (r *running) advancePhase() bool {
	r.phase++
	if r.phase >= len(r.inst.Prog.Phases) {
		return false
	}
	r.remaining = float64(r.inst.Prog.Work) * r.inst.Scale * r.inst.Prog.Phases[r.phase].Frac
	return true
}

// state is the mutable simulation state.
type state struct {
	opts    Options
	now     units.Seconds
	cpuJobs []*running
	gpuJob  *running
	cpuFreq int
	gpuFreq int

	// split is the per-plane breakdown of the current segment's power;
	// tempC the shared-heatsink temperature (thermal RC model).
	split apu.PowerSplit
	tempC float64

	// cpuCeil and gpuCeil are the effective frequency ceilings the
	// thermal throttle clamps down when tempC trips T_max; setFreqs
	// never exceeds them.
	cpuCeil int
	gpuCeil int

	// scratch backs the *View handed to dispatchers and governors.
	// view() is called every sample tick, so reusing one View (and its
	// CPUJobs array) keeps the hot loop allocation-free; the View doc
	// forbids callers from retaining it.
	scratch View
}

func (st *state) view() *View {
	v := &st.scratch
	v.Now, v.CPUFreq, v.GPUFreq = st.now, st.cpuFreq, st.gpuFreq
	v.PP0, v.PP1, v.TempC = st.split.PP0, st.split.PP1, st.tempC
	v.CPUJobs = v.CPUJobs[:0]
	for _, r := range st.cpuJobs {
		v.CPUJobs = append(v.CPUJobs, r.inst)
	}
	v.GPUJob = nil
	if st.gpuJob != nil {
		v.GPUJob = st.gpuJob.inst
	}
	return v
}

// Run executes the simulation to completion and returns its Result.
func Run(opts Options, disp Dispatcher) (*Result, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if disp == nil {
		return nil, fmt.Errorf("sim: nil dispatcher")
	}

	st := &state{
		opts:    o,
		cpuFreq: o.InitCPUFreq.index(o.Cfg, apu.CPU),
		gpuFreq: o.InitGPUFreq.index(o.Cfg, apu.GPU),
		tempC:   o.Cfg.Thermal.AmbientC,
		cpuCeil: o.Cfg.MaxFreqIndex(apu.CPU),
		gpuCeil: o.Cfg.MaxFreqIndex(apu.GPU),
	}
	res := &Result{
		Power:    trace.NewSeries("package_power", "w"),
		CPUFreq:  trace.NewSeries("cpu_freq", "ghz"),
		GPUFreq:  trace.NewSeries("gpu_freq", "ghz"),
		PP0:      trace.NewSeries("pp0_power", "w"),
		PP1:      trace.NewSeries("pp1_power", "w"),
		TempC:    trace.NewSeries("temp", "c"),
		MaxTempC: o.Cfg.Thermal.AmbientC,
	}
	thermal := o.Cfg.Thermal

	nextSample := o.SampleInterval
	nextGov := o.GovernorInterval
	intervalEnergy := 0.0
	intervalPP0E, intervalPP1E := 0.0, 0.0
	pp0E, pp1E := 0.0, 0.0
	intervalStart := units.Seconds(0)
	stopped := false

	const maxEvents = 50_000_000
	for ev := 0; ev < maxEvents; ev++ {
		// Fill idle slots.
		dispatched := st.fill(disp)

		nRunning := len(st.cpuJobs)
		if st.gpuJob != nil {
			nRunning++
		}
		if nRunning == 0 {
			if !dispatched {
				break // idle and nothing left to dispatch
			}
			continue
		}

		// Compute per-segment rates and utilizations.
		cpuUtil, gpuUtil := st.computeRates()
		power := st.packagePower(cpuUtil, gpuUtil)

		// RAPL-style hardware clamp: throttle within the event until
		// the package fits the cap (or both devices hit their floors).
		if o.HardCap && o.PowerCap > 0 {
			for power > o.PowerCap && (st.cpuFreq > 0 || st.gpuFreq > 0) {
				if o.HardCapBias == GPUBiased {
					if st.cpuFreq > 0 {
						st.cpuFreq--
					} else {
						st.gpuFreq--
					}
				} else {
					if st.gpuFreq > 0 {
						st.gpuFreq--
					} else {
						st.cpuFreq--
					}
				}
				cpuUtil, gpuUtil = st.computeRates()
				power = st.packagePower(cpuUtil, gpuUtil)
			}
		}
		st.split = st.splitPower(cpuUtil, gpuUtil)

		// Per-plane hardware clamp: a plane cap meters one device, so
		// the clamp steps that device down; a package entry in the
		// domain caps trades per HardCapBias like the package cap.
		if o.HardCap && o.DomainCaps.Any() {
		domainClamp:
			for !o.DomainCaps.Allows(st.split) {
				switch {
				case o.DomainCaps.PP0 > 0 && st.split.PP0 > o.DomainCaps.PP0 && st.cpuFreq > 0:
					st.cpuFreq--
				case o.DomainCaps.PP1 > 0 && st.split.PP1 > o.DomainCaps.PP1 && st.gpuFreq > 0:
					st.gpuFreq--
				case o.DomainCaps.Package > 0 && st.split.Package() > o.DomainCaps.Package &&
					(st.cpuFreq > 0 || st.gpuFreq > 0):
					if (o.HardCapBias == GPUBiased && st.cpuFreq > 0) || st.gpuFreq == 0 {
						st.cpuFreq--
					} else {
						st.gpuFreq--
					}
				default:
					// Every offending plane is at its floor already.
					break domainClamp
				}
				cpuUtil, gpuUtil = st.computeRates()
				power = st.packagePower(cpuUtil, gpuUtil)
				st.split = st.splitPower(cpuUtil, gpuUtil)
			}
		}

		// Earliest event.
		dt := float64(nextSample - st.now)
		if o.Governor != nil {
			if d := float64(nextGov - st.now); d < dt {
				dt = d
			}
		}
		for _, r := range st.cpuJobs {
			if d, err := r.eta(); err != nil {
				return nil, err
			} else if d < dt {
				dt = d
			}
		}
		if st.gpuJob != nil {
			if d, err := st.gpuJob.eta(); err != nil {
				return nil, err
			} else if d < dt {
				dt = d
			}
		}
		if dt < 0 {
			dt = 0
		}
		if st.now+units.Seconds(dt) > o.MaxTime {
			return nil, fmt.Errorf("sim: exceeded MaxTime %v at t=%v", o.MaxTime, st.now)
		}

		// Integrate.
		st.now += units.Seconds(dt)
		e := float64(power) * dt
		res.EnergyJ += e
		intervalEnergy += e
		intervalPP0E += float64(st.split.PP0) * dt
		intervalPP1E += float64(st.split.PP1) * dt
		pp0E += float64(st.split.PP0) * dt
		pp1E += float64(st.split.PP1) * dt
		for _, r := range st.cpuJobs {
			r.remaining -= r.rate * dt
		}
		if st.gpuJob != nil {
			st.gpuJob.remaining -= st.gpuJob.rate * dt
		}

		// Thermal RC step over the segment, then the T_max throttle:
		// at or above the trip point the effective frequency ceilings
		// ratchet down one level (and the live frequencies are clamped
		// under them); once the node cools below TMaxC - HysteresisC
		// the ceilings step back toward the hardware maxima.
		if thermal.Enabled() {
			st.tempC = thermal.Step(st.tempC, power, units.Seconds(dt))
			if st.tempC > res.MaxTempC {
				res.MaxTempC = st.tempC
			}
			if st.tempC >= thermal.TMaxC-eps {
				if st.cpuCeil > 0 || st.gpuCeil > 0 {
					if st.cpuCeil > 0 {
						st.cpuCeil--
					}
					if st.gpuCeil > 0 {
						st.gpuCeil--
					}
					res.Throttles++
				}
				if st.cpuFreq > st.cpuCeil {
					st.cpuFreq = st.cpuCeil
				}
				if st.gpuFreq > st.gpuCeil {
					st.gpuFreq = st.gpuCeil
				}
			} else if st.tempC < thermal.TMaxC-thermal.HysteresisC {
				if st.cpuCeil < o.Cfg.MaxFreqIndex(apu.CPU) {
					st.cpuCeil++
				}
				if st.gpuCeil < o.Cfg.MaxFreqIndex(apu.GPU) {
					st.gpuCeil++
				}
			}
		}

		// Phase/job completions.
		st.cpuJobs, stopped = st.reap(st.cpuJobs, res, o.StopInstance)
		if stopped {
			break
		}
		if st.gpuJob != nil && st.gpuJob.remaining <= eps {
			if !st.gpuJob.advancePhase() {
				res.Completions = append(res.Completions, Completion{
					Inst: st.gpuJob.inst, Dev: apu.GPU, Start: st.gpuJob.start, End: st.now,
				})
				if o.StopInstance != nil && st.gpuJob.inst == o.StopInstance {
					st.gpuJob = nil
					stopped = true
					break
				}
				st.gpuJob = nil
			}
		}

		// Governor tick: reacts to the instantaneous power of the
		// segment that just ended.
		if o.Governor != nil && st.now >= nextGov-units.Seconds(eps) {
			cf, gf := o.Governor.Adjust(power, st.view(), o.Cfg)
			st.setFreqs(cf, gf)
			nextGov += o.GovernorInterval
		}

		// Sample tick.
		if st.now >= nextSample-units.Seconds(eps) {
			span := float64(st.now - intervalStart)
			avg := float64(power)
			avgPP0, avgPP1 := float64(st.split.PP0), float64(st.split.PP1)
			if span > eps {
				avg = intervalEnergy / span
				avgPP0 = intervalPP0E / span
				avgPP1 = intervalPP1E / span
			}
			res.Power.MustAdd(st.now, avg)
			res.CPUFreq.MustAdd(st.now, float64(o.Cfg.Freq(apu.CPU, st.cpuFreq)))
			res.GPUFreq.MustAdd(st.now, float64(o.Cfg.Freq(apu.GPU, st.gpuFreq)))
			res.PP0.MustAdd(st.now, avgPP0)
			res.PP1.MustAdd(st.now, avgPP1)
			res.TempC.MustAdd(st.now, st.tempC)
			if o.PowerCap > 0 && units.Watts(avg) > o.PowerCap {
				res.CapViolations++
				if ex := units.Watts(avg) - o.PowerCap; ex > res.MaxExcess {
					res.MaxExcess = ex
				}
			}
			if o.DomainCaps.Any() && !o.DomainCaps.Allows(apu.PowerSplit{
				PP0: units.Watts(avgPP0), PP1: units.Watts(avgPP1), Uncore: o.Cfg.IdlePower,
			}) {
				res.DomainViolations++
			}
			intervalEnergy = 0
			intervalPP0E, intervalPP1E = 0, 0
			intervalStart = st.now
			nextSample += o.SampleInterval
		}
	}
	if !stopped {
		// Drain check: if jobs remain running we hit the event limit.
		if len(st.cpuJobs) > 0 || st.gpuJob != nil {
			return nil, fmt.Errorf("sim: event limit reached with jobs still running at t=%v", st.now)
		}
	}

	res.Makespan = st.now
	if res.Makespan > 0 {
		res.AvgPower = units.Watts(res.EnergyJ / float64(res.Makespan))
		res.AvgPP0 = units.Watts(pp0E / float64(res.Makespan))
		res.AvgPP1 = units.Watts(pp1E / float64(res.Makespan))
	}
	res.MaxSample = units.Watts(res.Power.Max())

	// Which constraint bound the run: the thermal throttle if it ever
	// fired, else the most heavily loaded configured power cap.
	if res.Throttles > 0 {
		res.Binding = apu.ConstraintThermal
	} else if caps := o.DomainCaps.WithPackage(o.PowerCap); caps.Any() {
		res.Binding, _ = caps.Binding(apu.PowerSplit{
			PP0:    res.AvgPP0,
			PP1:    res.AvgPP1,
			Uncore: units.Watts(float64(res.AvgPower) - float64(res.AvgPP0) - float64(res.AvgPP1)),
		})
	}
	return res, nil
}

// fill offers free slots to the dispatcher; it reports whether any job
// was dispatched.
func (st *state) fill(disp Dispatcher) bool {
	dispatched := false
	if st.gpuJob == nil {
		if d := disp.Next(apu.GPU, st.view()); d != nil {
			st.applyDispatch(d, apu.GPU)
			dispatched = true
		}
	}
	for len(st.cpuJobs) < st.opts.CPUSlots {
		d := disp.Next(apu.CPU, st.view())
		if d == nil {
			break
		}
		st.applyDispatch(d, apu.CPU)
		dispatched = true
	}
	return dispatched
}

func (st *state) applyDispatch(d *Dispatch, dev apu.Device) {
	st.setFreqs(d.CPUFreq, d.GPUFreq)
	r := newRunning(d.Inst, dev, st.now)
	if dev == apu.CPU {
		st.cpuJobs = append(st.cpuJobs, r)
	} else {
		st.gpuJob = r
	}
}

func (st *state) setFreqs(cf, gf int) {
	if cf >= 0 && cf < st.opts.Cfg.NumFreqs(apu.CPU) {
		if cf > st.cpuCeil {
			cf = st.cpuCeil // thermal throttle ceiling
		}
		st.cpuFreq = cf
	}
	if gf >= 0 && gf < st.opts.Cfg.NumFreqs(apu.GPU) {
		if gf > st.gpuCeil {
			gf = st.gpuCeil
		}
		st.gpuFreq = gf
	}
}

// computeRates fills each running job's per-segment rate and returns
// the device utilizations (-1 when a device is idle).
func (st *state) computeRates() (cpuUtil, gpuUtil float64) {
	cfg := st.opts.Cfg
	cpuUtil, gpuUtil = -1, -1

	k := len(st.cpuJobs)
	cpuF := cfg.Freq(apu.CPU, st.cpuFreq)
	gpuF := cfg.Freq(apu.GPU, st.gpuFreq)

	// Per-job potentials and raw demands on the CPU.
	inflation := 1.0
	perJobScale := 1.0
	if k > 1 {
		perJobScale = math.Max(0.4, 1-st.opts.CSOverhead*float64(k-1))
		inflation = math.Min(1.5, 1+st.opts.LocalityInflation*float64(k-1))
	}
	cpuDemand := 0.0
	cpuSensNum := 0.0
	for _, r := range st.cpuJobs {
		prog := r.inst.Prog
		r.potential = prog.PotentialRate(apu.CPU, cpuF) * perJobScale / math.Max(1, float64(k))
		d := r.potential * prog.Phases[r.phase].BytesPerOp * inflation
		cpuDemand += d
		cpuSensNum += d * prog.CPUSens
	}
	cpuSens := 0.0
	if cpuDemand > 0 {
		cpuSens = cpuSensNum / cpuDemand
	}

	gpuDemand, gpuSens := 0.0, 0.0
	if st.gpuJob != nil {
		prog := st.gpuJob.inst.Prog
		st.gpuJob.potential = prog.PotentialRate(apu.GPU, gpuF)
		gpuDemand = st.gpuJob.potential * prog.Phases[st.gpuJob.phase].BytesPerOp
		gpuSens = prog.GPUSens
	}

	grant := st.opts.Mem.Arbitrate(memsys.Demand{
		CPU: units.GBps(cpuDemand), GPU: units.GBps(gpuDemand),
		CPUSens: cpuSens, GPUSens: gpuSens,
	})

	// Split the CPU grant among CPU jobs proportionally to demand; the
	// locality inflation is pure waste, so only 1/inflation of the
	// granted bytes are useful.
	if k > 0 {
		sumPot, sumRate := 0.0, 0.0
		for _, r := range st.cpuJobs {
			prog := r.inst.Prog
			bpo := prog.Phases[r.phase].BytesPerOp
			d := r.potential * bpo * inflation
			share := 0.0
			if cpuDemand > 0 {
				share = d / cpuDemand
			}
			useful := float64(grant.CPU) * share / inflation
			if bpo > 0 {
				r.rate = math.Min(r.potential, useful/bpo)
			} else {
				r.rate = r.potential
			}
			sumPot += r.potential
			sumRate += r.rate
		}
		if sumPot > 0 {
			cpuUtil = sumRate / sumPot
		}
	}
	if st.gpuJob != nil {
		prog := st.gpuJob.inst.Prog
		bpo := prog.Phases[st.gpuJob.phase].BytesPerOp
		if bpo > 0 {
			st.gpuJob.rate = math.Min(st.gpuJob.potential, float64(grant.GPU)/bpo)
		} else {
			st.gpuJob.rate = st.gpuJob.potential
		}
		if st.gpuJob.potential > 0 {
			gpuUtil = st.gpuJob.rate / st.gpuJob.potential
		}
	}
	return cpuUtil, gpuUtil
}

func (st *state) packagePower(cpuUtil, gpuUtil float64) units.Watts {
	return st.opts.Cfg.PackagePower(st.cpuFreq, st.gpuFreq, cpuUtil, gpuUtil, st.gpuJob != nil)
}

// splitPower is packagePower broken down by plane (same inputs, same
// arithmetic per term — the sum matches up to float association).
func (st *state) splitPower(cpuUtil, gpuUtil float64) apu.PowerSplit {
	return st.opts.Cfg.SplitPower(st.cpuFreq, st.gpuFreq, cpuUtil, gpuUtil, st.gpuJob != nil)
}

// eta returns the time for the job to finish its current phase.
func (r *running) eta() (float64, error) {
	if r.remaining <= eps {
		return 0, nil
	}
	if r.rate <= 0 {
		return 0, fmt.Errorf("sim: job %s stalled with zero rate (phase %d)", r.inst.Label, r.phase)
	}
	return r.remaining / r.rate, nil
}

// reap retires finished CPU jobs and advances phases; it reports
// whether the stop instance completed.
func (st *state) reap(jobs []*running, res *Result, stop *workload.Instance) ([]*running, bool) {
	out := jobs[:0]
	stopped := false
	for _, r := range jobs {
		if r.remaining > eps {
			out = append(out, r)
			continue
		}
		if r.advancePhase() {
			out = append(out, r)
			continue
		}
		res.Completions = append(res.Completions, Completion{
			Inst: r.inst, Dev: apu.CPU, Start: r.start, End: st.now,
		})
		if stop != nil && r.inst == stop {
			stopped = true
		}
	}
	return out, stopped
}
