package promtext

import (
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestRegistryRendersTextFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "Jobs seen.")
	g := r.NewGauge("queue_depth", "Queued jobs.")
	v := r.NewCounterVec("sched_total", "Per-policy schedules.", "policy")
	h := r.NewHistogram("latency_seconds", "Epoch latency.", []float64{0.01, 0.1, 1})

	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(-2)
	v.Inc("hcs+")
	v.Add("random", 2)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99)

	var buf strings.Builder
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	want := []string{
		"# HELP jobs_total Jobs seen.",
		"# TYPE jobs_total counter",
		"jobs_total 4",
		"# TYPE queue_depth gauge",
		"queue_depth 5",
		`sched_total{policy="hcs+"} 1`,
		`sched_total{policy="random"} 2`,
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.01"} 0`,
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 99.55",
		"latency_seconds_count 3",
	}
	for _, w := range want {
		if !strings.Contains(out, w+"\n") {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}

	// Families render in name order: histogram "latency..." before
	// counter "jobs..."? No — lexicographic: jobs, latency, queue, sched.
	order := []string{"jobs_total", "latency_seconds", "queue_depth", "sched_total"}
	last := -1
	for _, name := range order {
		i := strings.Index(out, "# HELP "+name)
		if i < 0 || i < last {
			t.Fatalf("family %s out of order at %d (prev %d)", name, i, last)
		}
		last = i
	}

	// Every non-comment line is "name{labels} value" shaped.
	lineRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"\})? [^ ]+$`)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRe.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewGaugeVec("tenant_queued", "Queued jobs by tenant.", "tenant")
	v.Set("team-a", 5)
	v.Set("team-a", 3) // Set replaces, unlike a counter
	v.Add("team-b", 2)
	v.Add("team-b", -1)
	v.Set("zzz", 0)

	if got := v.Value("team-a"); got != 3 {
		t.Fatalf("Value(team-a) = %v, want 3", got)
	}
	if got := v.Value("unset"); got != 0 {
		t.Fatalf("Value(unset) = %v, want 0", got)
	}

	var buf strings.Builder
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := []string{
		"# TYPE tenant_queued gauge",
		`tenant_queued{tenant="team-a"} 3`,
		`tenant_queued{tenant="team-b"} 1`,
		`tenant_queued{tenant="zzz"} 0`,
	}
	for _, w := range want {
		if !strings.Contains(out, w+"\n") {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
	// Label values render in sorted order for a stable exposition.
	if strings.Index(out, `tenant="team-a"`) > strings.Index(out, `tenant="team-b"`) {
		t.Errorf("label values out of order:\n%s", out)
	}
}

func TestSummary(t *testing.T) {
	r := NewRegistry()
	s := r.NewSummary("append_seconds", "Append latency.", []float64{0.5, 0.9, 0.99})

	// Empty summaries expose NaN quantiles but zero sum/count.
	var buf strings.Builder
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{
		"# TYPE append_seconds summary",
		`append_seconds{quantile="0.5"} NaN`,
		`append_seconds{quantile="0.99"} NaN`,
		"append_seconds_sum 0",
		"append_seconds_count 0",
	} {
		if !strings.Contains(buf.String(), w+"\n") {
			t.Errorf("empty summary missing %q:\n%s", w, buf.String())
		}
	}

	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	buf.Reset()
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{
		`append_seconds{quantile="0.5"} 50`,
		`append_seconds{quantile="0.9"} 90`,
		`append_seconds{quantile="0.99"} 99`,
		"append_seconds_sum 5050",
		"append_seconds_count 100",
	} {
		if !strings.Contains(buf.String(), w+"\n") {
			t.Errorf("summary missing %q:\n%s", w, buf.String())
		}
	}

	// Quantiles track the recent window; sum and count stay cumulative.
	for i := 0; i < 2*summaryWindow; i++ {
		s.Observe(9)
	}
	buf.Reset()
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `append_seconds{quantile="0.5"} 9`+"\n") {
		t.Errorf("old observations still dominate:\n%s", buf.String())
	}
	if want := uint64(100 + 2*summaryWindow); s.Count() != want {
		t.Errorf("count %d, want %d", s.Count(), want)
	}

	for _, fn := range []func(){
		func() { r.NewSummary("q_range", "x", []float64{0.5, 1.5}) },
		func() { r.NewSummary("q_order", "x", []float64{0.9, 0.5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad quantiles accepted")
				}
			}()
			fn()
		}()
	}
}

// TestSummaryQuantileEdges pins the nearest-rank quantile on the
// degenerate windows: empty, one sample, all-duplicate samples, two
// samples, the q=0 and q=1 extremes, and a wrapped ring where only
// the newest windowSize observations may count.
func TestSummaryQuantileEdges(t *testing.T) {
	cases := []struct {
		name      string
		quantiles []float64
		observe   func(s *Summary)
		want      map[string]string // quantile label -> formatted value
	}{
		{
			name:      "empty window",
			quantiles: []float64{0, 0.5, 1},
			observe:   func(*Summary) {},
			want:      map[string]string{"0": "NaN", "0.5": "NaN", "1": "NaN"},
		},
		{
			name:      "single sample is every quantile",
			quantiles: []float64{0, 0.5, 0.99, 1},
			observe:   func(s *Summary) { s.Observe(7.5) },
			want:      map[string]string{"0": "7.5", "0.5": "7.5", "0.99": "7.5", "1": "7.5"},
		},
		{
			name:      "duplicates collapse to the one value",
			quantiles: []float64{0.5, 0.9},
			observe: func(s *Summary) {
				for i := 0; i < 10; i++ {
					s.Observe(3)
				}
			},
			want: map[string]string{"0.5": "3", "0.9": "3"},
		},
		{
			name:      "two samples split at the median",
			quantiles: []float64{0.25, 0.5, 0.75, 1},
			observe: func(s *Summary) {
				s.Observe(10)
				s.Observe(20)
			},
			// Nearest-rank: p<=0.5 is the lower sample, above it the
			// upper — the old rounding put p50 on the upper sample.
			want: map[string]string{"0.25": "10", "0.5": "10", "0.75": "20", "1": "20"},
		},
		{
			name:      "extremes are min and max",
			quantiles: []float64{0, 1},
			observe: func(s *Summary) {
				for i := 1; i <= 9; i++ {
					s.Observe(float64(i))
				}
			},
			want: map[string]string{"0": "1", "1": "9"},
		},
		{
			name:      "wrapped ring keeps only the newest window",
			quantiles: []float64{0, 0.5, 1},
			observe: func(s *Summary) {
				// One windowful of 100s, then a windowful of 5s: the
				// 100s must be fully evicted.
				for i := 0; i < summaryWindow; i++ {
					s.Observe(100)
				}
				for i := 0; i < summaryWindow; i++ {
					s.Observe(5)
				}
			},
			want: map[string]string{"0": "5", "0.5": "5", "1": "5"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			s := r.NewSummary("edge_seconds", "Edge case.", tc.quantiles)
			tc.observe(s)
			var buf strings.Builder
			if err := r.Write(&buf); err != nil {
				t.Fatal(err)
			}
			for q, v := range tc.want {
				line := `edge_seconds{quantile="` + q + `"} ` + v + "\n"
				if !strings.Contains(buf.String(), line) {
					t.Errorf("missing %q in:\n%s", strings.TrimSpace(line), buf.String())
				}
			}
		})
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("hits_total", "Hits.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Errorf("body %q", rec.Body.String())
	}
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("ok_total", "x")
	for _, fn := range []func(){
		func() { r.NewCounter("ok_total", "dup") },
		func() { r.NewCounter("bad name", "x") },
		func() { r.NewCounterVec("v_total", "x", "bad label") },
		func() { r.NewHistogram("h", "x", []float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		}()
	}
	// Counters reject negative deltas.
	c := r.NewCounter("neg_total", "x")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative Add accepted")
			}
		}()
		c.Add(-1)
	}()
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "x")
	g := r.NewGauge("g", "x")
	v := r.NewCounterVec("v_total", "x", "k")
	h := r.NewHistogram("h_seconds", "x", []float64{1, 10})
	s := r.NewSummary("s_seconds", "x", []float64{0.5})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Inc()
				g.Add(1)
				v.Inc("a")
				h.Observe(float64(j % 20))
				s.Observe(float64(j % 20))
				if j%50 == 0 {
					var sb strings.Builder
					_ = r.Write(&sb)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 1600 || g.Value() != 1600 || v.Value("a") != 1600 || h.Count() != 1600 || s.Count() != 1600 {
		t.Errorf("lost updates: c=%v g=%v v=%v h=%v s=%v",
			c.Value(), g.Value(), v.Value("a"), h.Count(), s.Count())
	}
}
