package promtext

import (
	"fmt"
	"io"
	"math"
	"sync"
)

// LogHistogram is a histogram over log-spaced (geometric) buckets:
// bucket i covers [Min·Growth^i, Min·Growth^(i+1)). Where the linear
// Histogram needs its bounds hand-picked per metric, a log histogram
// holds a fixed relative error across many orders of magnitude, which
// is the right shape for request latencies — a harness that sees both
// 80µs cache hits and 4s fsync stalls records both with the same
// ~Growth-factor resolution.
//
// Quantile locates the bucket holding the nearest-rank observation
// and interpolates log-linearly within it by the rank's position among
// the bucket's observations, so distinct high quantiles that share one
// bucket still report distinct values instead of collapsing onto the
// bucket edge. Results stay monotone (for q1 ≤ q2, Quantile(q1) ≤
// Quantile(q2)) and are clamped to the largest observation. All
// methods are safe for concurrent use.
type LogHistogram struct {
	nm, hp string
	min    float64
	growth float64
	lnG    float64 // cached ln(growth), hot in Observe

	mu      sync.Mutex
	buckets []uint64
	under   uint64 // observations below min (reported as ≤ min)
	over    uint64 // observations at or above the top bound
	count   uint64
	sum     float64
	max     float64
}

// NewLogHistogram builds a standalone (unregistered) log histogram
// covering [min, max) with geometric bucket growth. It panics on a
// non-positive min, a max at or below min, or a growth at or below 1 —
// histogram shapes are wired once at startup, so a bad shape is a
// programming error worth failing fast on.
func NewLogHistogram(min, max, growth float64) *LogHistogram {
	if !(min > 0) || !(max > min) || !(growth > 1) {
		panic(fmt.Sprintf("promtext: bad log histogram shape min=%v max=%v growth=%v", min, max, growth))
	}
	n := int(math.Ceil(math.Log(max/min) / math.Log(growth)))
	if n < 1 {
		n = 1
	}
	return &LogHistogram{
		min:     min,
		growth:  growth,
		lnG:     math.Log(growth),
		buckets: make([]uint64, n),
	}
}

// NewLogHistogram registers a log-bucketed histogram; it renders as a
// standard cumulative Prometheus histogram whose le bounds are the
// geometric bucket upper bounds.
func (r *Registry) NewLogHistogram(name, help string, min, max, growth float64) *LogHistogram {
	h := NewLogHistogram(min, max, growth)
	h.nm, h.hp = name, help
	r.register(h)
	return h
}

// bound returns bucket i's upper bound, min·growth^(i+1).
func (h *LogHistogram) bound(i int) float64 {
	return h.min * math.Pow(h.growth, float64(i+1))
}

// Observe records one value. NaN observations are dropped — they
// carry no ordering, so folding them into any bucket would corrupt
// every quantile.
func (h *LogHistogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	idx := -1 // under
	if v >= h.min {
		idx = int(math.Log(v/h.min) / h.lnG)
		// Float rounding at an exact bucket boundary can land one off;
		// clamp into the covered range.
		if idx >= len(h.buckets) {
			idx = len(h.buckets)
		}
	}
	h.mu.Lock()
	switch {
	case idx < 0:
		h.under++
	case idx == len(h.buckets):
		h.over++
	default:
		h.buckets[idx]++
	}
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *LogHistogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *LogHistogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Max returns the largest observation (0 before any).
func (h *LogHistogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Mean returns the arithmetic mean (0 before any observation).
func (h *LogHistogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile estimates the q-quantile (q in [0, 1]) of everything
// observed so far: it finds the bucket holding the nearest-rank
// observation and interpolates log-linearly within it — the rank's
// position among the bucket's observations picks the point between
// the bucket's geometric edges. Without the interpolation every
// quantile that lands in one bucket reports the same edge, which is
// exactly how p99 and p999 collapse together once the tail fits in a
// single geometric bucket. The estimate is clamped to the largest
// observation. Below-range observations report min. NaN before any
// observation; panics outside [0, 1].
func (h *LogHistogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("promtext: quantile %v outside [0,1]", q))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return math.NaN()
	}
	// Nearest rank: the smallest bucket with at least ⌈q·count⌉
	// observations at or below its bound.
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	cum := h.under
	if cum >= rank {
		return h.min
	}
	for i, c := range h.buckets {
		if cum+c >= rank {
			// The rank sits (rank-cum) deep into this bucket's c
			// observations; place it that fraction of the way between
			// the bucket's edges, geometrically (the bucket itself is
			// geometric, so log-linear is the natural interpolation).
			frac := float64(rank-cum) / float64(c)
			v := h.min * math.Pow(h.growth, float64(i)+frac)
			// No observation exceeds the recorded max, so neither
			// should the estimate (clamping is monotone, so ordering
			// across quantiles is preserved).
			if h.max > 0 && v > h.max {
				v = h.max
			}
			return v
		}
		cum += c
	}
	return h.max
}

// Reset zeroes every bucket and counter, so a harness can discard its
// warmup window and measure from a clean slate.
func (h *LogHistogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.under, h.over, h.count, h.sum, h.max = 0, 0, 0, 0, 0
}

func (h *LogHistogram) name() string { return h.nm }
func (h *LogHistogram) help() string { return h.hp }
func (h *LogHistogram) typ() string  { return "histogram" }
func (h *LogHistogram) write(w io.Writer) error {
	h.mu.Lock()
	buckets := append([]uint64(nil), h.buckets...)
	under, over, sum, count := h.under, h.over, h.sum, h.count
	h.mu.Unlock()
	cum := under
	for i, c := range buckets {
		cum += c
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.nm, formatFloat(h.bound(i)), cum); err != nil {
			return err
		}
	}
	cum += over
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, cum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", h.nm, formatFloat(sum), h.nm, count)
	return err
}
