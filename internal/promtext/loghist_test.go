package promtext

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestLogHistogramQuantiles(t *testing.T) {
	h := NewLogHistogram(1e-6, 10, 1.1)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile not NaN")
	}
	// 1..1000 ms as seconds: the interpolated quantiles must track the
	// exact values within one bucket's relative error on either side
	// (interpolation estimates inside the bucket, so it can land
	// slightly under the exact value as well as over).
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	for _, tc := range []struct{ q, exact float64 }{
		{0.5, 0.5}, {0.9, 0.9}, {0.99, 0.99}, {0.999, 0.999}, {1, 1},
	} {
		got := h.Quantile(tc.q)
		if got < tc.exact/1.1 || got > tc.exact*1.1*1.01 {
			t.Errorf("q%v = %v, want in [%v, %v]", tc.q, got, tc.exact/1.1, tc.exact*1.1)
		}
	}
	// Monotonicity across a fine grid.
	prev := 0.0
	for q := 0.0; q <= 1.0; q += 0.001 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q=%v -> %v after %v", q, v, prev)
		}
		prev = v
	}
}

func TestLogHistogramRange(t *testing.T) {
	h := NewLogHistogram(0.001, 1, 2)
	h.Observe(1e-9) // under range
	h.Observe(50)   // over range
	h.Observe(math.NaN())
	if h.Count() != 2 {
		t.Fatalf("count %d, want 2 (NaN dropped)", h.Count())
	}
	if got := h.Quantile(0); got != 0.001 {
		t.Errorf("under-range quantile %v, want min", got)
	}
	if got := h.Quantile(1); got != 50 {
		t.Errorf("over-range quantile %v, want recorded max", got)
	}
	if h.Max() != 50 {
		t.Errorf("max %v", h.Max())
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || !math.IsNaN(h.Quantile(0.5)) {
		t.Error("reset did not clear the histogram")
	}
}

func TestLogHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewLogHistogram("req_latency_seconds", "Request latency.", 0.001, 10, 2)
	h.Observe(0.0015)
	h.Observe(0.1)
	h.Observe(99) // over range -> only the +Inf bucket
	var sb strings.Builder
	if err := reg.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE req_latency_seconds histogram",
		`req_latency_seconds_bucket{le="0.002"} 1`,
		`req_latency_seconds_bucket{le="+Inf"} 3`,
		"req_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Cumulative bucket counts never decrease down the exposition.
	prev := -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "req_latency_seconds_bucket") {
			continue
		}
		n, err := strconv.Atoi(line[strings.LastIndexByte(line, ' ')+1:])
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("buckets not cumulative: %q after %d", line, prev)
		}
		prev = n
	}
}

func TestLogHistogramConcurrent(t *testing.T) {
	h := NewLogHistogram(1e-6, 1, 1.5)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i%100+1) / 1000)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count %d, want 4000", h.Count())
	}
}

// TestLogHistogramQuantileInterpolation pins the within-bucket
// interpolation: 100 observations of 3 all land in bucket [2, 4) of a
// growth-2 histogram, and each quantile must land the rank's fraction
// of the way across the bucket geometrically — 2·2^frac — instead of
// every quantile reporting the shared bucket edge.
func TestLogHistogramQuantileInterpolation(t *testing.T) {
	h := NewLogHistogram(1, 1024, 2)
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	for _, tc := range []struct {
		q, want float64
	}{
		{0.01, 2 * math.Pow(2, 0.01)},
		{0.25, 2 * math.Pow(2, 0.25)},
		{0.5, 2 * math.Pow(2, 0.5)},
		{0.9, 3}, // 2·2^0.9 > the recorded max (3) ⇒ clamped to it
		{0.99, 3},
		{1, 3}, // the bucket edge (4) would overshoot ⇒ clamped
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("q%v = %v, want %v", tc.q, got, tc.want)
		}
	}
}

// TestLogHistogramTailQuantilesDistinct is the BENCH_8 regression:
// when the whole latency tail fits in one geometric bucket, p99 and
// p999 used to collapse onto that bucket's shared upper edge and every
// endpoint reported the identical p999. Interpolated quantiles at
// distinct ranks within the bucket must differ.
func TestLogHistogramTailQuantilesDistinct(t *testing.T) {
	h := NewLogHistogram(1e-3, 60, 2)
	for i := 0; i < 900; i++ {
		h.Observe(0.0015)
	}
	for i := 0; i < 99; i++ {
		h.Observe(0.040) // bucket [0.032, 0.064)
	}
	h.Observe(0.060) // same bucket; also the max
	p99, p999 := h.Quantile(0.99), h.Quantile(0.999)
	if p99 >= p999 {
		t.Fatalf("tail quantiles collapsed: p99 %v >= p999 %v", p99, p999)
	}
	if p999 > h.Max() {
		t.Fatalf("p999 %v exceeds the recorded max %v", p999, h.Max())
	}
	want := 0.032 * math.Pow(2, 0.9) // rank 990, 90 of 100 into the bucket
	if math.Abs(p99-want) > 1e-12 {
		t.Errorf("p99 = %v, want %v", p99, want)
	}
}
