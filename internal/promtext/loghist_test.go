package promtext

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestLogHistogramQuantiles(t *testing.T) {
	h := NewLogHistogram(1e-6, 10, 1.1)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile not NaN")
	}
	// 1..1000 ms as seconds: quantiles must bracket the exact values
	// within one bucket's relative error.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	for _, tc := range []struct{ q, exact float64 }{
		{0.5, 0.5}, {0.9, 0.9}, {0.99, 0.99}, {0.999, 0.999}, {1, 1},
	} {
		got := h.Quantile(tc.q)
		if got < tc.exact || got > tc.exact*1.1*1.01 {
			t.Errorf("q%v = %v, want in [%v, %v]", tc.q, got, tc.exact, tc.exact*1.1)
		}
	}
	// Monotonicity across a fine grid.
	prev := 0.0
	for q := 0.0; q <= 1.0; q += 0.001 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q=%v -> %v after %v", q, v, prev)
		}
		prev = v
	}
}

func TestLogHistogramRange(t *testing.T) {
	h := NewLogHistogram(0.001, 1, 2)
	h.Observe(1e-9) // under range
	h.Observe(50)   // over range
	h.Observe(math.NaN())
	if h.Count() != 2 {
		t.Fatalf("count %d, want 2 (NaN dropped)", h.Count())
	}
	if got := h.Quantile(0); got != 0.001 {
		t.Errorf("under-range quantile %v, want min", got)
	}
	if got := h.Quantile(1); got != 50 {
		t.Errorf("over-range quantile %v, want recorded max", got)
	}
	if h.Max() != 50 {
		t.Errorf("max %v", h.Max())
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || !math.IsNaN(h.Quantile(0.5)) {
		t.Error("reset did not clear the histogram")
	}
}

func TestLogHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewLogHistogram("req_latency_seconds", "Request latency.", 0.001, 10, 2)
	h.Observe(0.0015)
	h.Observe(0.1)
	h.Observe(99) // over range -> only the +Inf bucket
	var sb strings.Builder
	if err := reg.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE req_latency_seconds histogram",
		`req_latency_seconds_bucket{le="0.002"} 1`,
		`req_latency_seconds_bucket{le="+Inf"} 3`,
		"req_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Cumulative bucket counts never decrease down the exposition.
	prev := -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "req_latency_seconds_bucket") {
			continue
		}
		n, err := strconv.Atoi(line[strings.LastIndexByte(line, ' ')+1:])
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("buckets not cumulative: %q after %d", line, prev)
		}
		prev = n
	}
}

func TestLogHistogramConcurrent(t *testing.T) {
	h := NewLogHistogram(1e-6, 1, 1.5)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i%100+1) / 1000)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count %d, want 4000", h.Count())
	}
}
