// Package promtext is a minimal, dependency-free metrics registry that
// renders the Prometheus text exposition format (version 0.0.4). It
// implements just what the corund daemon needs — counters (plain and
// one-label vectors), gauges, and cumulative histograms — with the
// standard # HELP / # TYPE framing so any Prometheus-compatible
// scraper can consume /metrics without the client_golang dependency.
//
// All metric operations are safe for concurrent use. Registration
// (NewCounter etc.) panics on invalid or duplicate names: metric sets
// are wired once at startup, so a bad name is a programming error
// worth failing fast on.
package promtext

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// metric is one registered family; write renders its samples (without
// the HELP/TYPE header, which the registry owns).
type metric interface {
	name() string
	help() string
	typ() string
	write(w io.Writer) error
}

// Registry holds a set of metric families and renders them.
type Registry struct {
	mu       sync.Mutex
	families []metric
	byName   map[string]bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]bool{}}
}

func (r *Registry) register(m metric) {
	if !nameRe.MatchString(m.name()) {
		panic(fmt.Sprintf("promtext: invalid metric name %q", m.name()))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[m.name()] {
		panic(fmt.Sprintf("promtext: duplicate metric %q", m.name()))
	}
	r.byName[m.name()] = true
	r.families = append(r.families, m)
}

// Write renders every family in name order.
func (r *Registry) Write(w io.Writer) error {
	r.mu.Lock()
	fams := append([]metric(nil), r.families...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name() < fams[j].name() })
	for _, m := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			m.name(), escapeHelp(m.help()), m.name(), m.typ()); err != nil {
			return err
		}
		if err := m.write(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry in the text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Write(w)
	})
}

// Counter is a monotonically increasing value.
type Counter struct {
	nm, hp string
	mu     sync.Mutex
	v      float64
}

// NewCounter registers a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{nm: name, hp: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas panic (counters only go
// up — a decreasing "counter" corrupts every rate() over it).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic(fmt.Sprintf("promtext: counter %s decreased by %v", c.nm, delta))
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

func (c *Counter) name() string { return c.nm }
func (c *Counter) help() string { return c.hp }
func (c *Counter) typ() string  { return "counter" }
func (c *Counter) write(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s %s\n", c.nm, formatFloat(c.Value()))
	return err
}

// CounterVec is a counter family partitioned by one label.
type CounterVec struct {
	nm, hp, label string
	mu            sync.Mutex
	vals          map[string]float64
}

// NewCounterVec registers a one-label counter family.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	if !labelRe.MatchString(label) {
		panic(fmt.Sprintf("promtext: invalid label name %q", label))
	}
	v := &CounterVec{nm: name, hp: help, label: label, vals: map[string]float64{}}
	r.register(v)
	return v
}

// Add increases the counter for one label value, creating it at zero
// first if needed.
func (v *CounterVec) Add(labelValue string, delta float64) {
	if delta < 0 {
		panic(fmt.Sprintf("promtext: counter %s decreased by %v", v.nm, delta))
	}
	v.mu.Lock()
	v.vals[labelValue] += delta
	v.mu.Unlock()
}

// Inc adds one for the label value.
func (v *CounterVec) Inc(labelValue string) { v.Add(labelValue, 1) }

// Value returns the count for one label value.
func (v *CounterVec) Value(labelValue string) float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.vals[labelValue]
}

func (v *CounterVec) name() string { return v.nm }
func (v *CounterVec) help() string { return v.hp }
func (v *CounterVec) typ() string  { return "counter" }
func (v *CounterVec) write(w io.Writer) error {
	v.mu.Lock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	vals := make(map[string]float64, len(v.vals))
	for k, val := range v.vals {
		vals[k] = val
	}
	v.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %s\n", v.nm, v.label, escapeLabel(k), formatFloat(vals[k])); err != nil {
			return err
		}
	}
	return nil
}

// GaugeVec is a gauge family partitioned by one label.
type GaugeVec struct {
	nm, hp, label string
	mu            sync.Mutex
	vals          map[string]float64
}

// NewGaugeVec registers a one-label gauge family.
func (r *Registry) NewGaugeVec(name, help, label string) *GaugeVec {
	if !labelRe.MatchString(label) {
		panic(fmt.Sprintf("promtext: invalid label name %q", label))
	}
	v := &GaugeVec{nm: name, hp: help, label: label, vals: map[string]float64{}}
	r.register(v)
	return v
}

// Set replaces the value for one label value, creating it if needed.
func (v *GaugeVec) Set(labelValue string, val float64) {
	v.mu.Lock()
	v.vals[labelValue] = val
	v.mu.Unlock()
}

// Add shifts the value for one label value.
func (v *GaugeVec) Add(labelValue string, delta float64) {
	v.mu.Lock()
	v.vals[labelValue] += delta
	v.mu.Unlock()
}

// Value returns the value for one label value.
func (v *GaugeVec) Value(labelValue string) float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.vals[labelValue]
}

func (v *GaugeVec) name() string { return v.nm }
func (v *GaugeVec) help() string { return v.hp }
func (v *GaugeVec) typ() string  { return "gauge" }
func (v *GaugeVec) write(w io.Writer) error {
	v.mu.Lock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	vals := make(map[string]float64, len(v.vals))
	for k, val := range v.vals {
		vals[k] = val
	}
	v.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %s\n", v.nm, v.label, escapeLabel(k), formatFloat(vals[k])); err != nil {
			return err
		}
	}
	return nil
}

// Gauge is a value that can go up and down.
type Gauge struct {
	nm, hp string
	mu     sync.Mutex
	v      float64
}

// NewGauge registers a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{nm: name, hp: help}
	r.register(g)
	return g
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the value.
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

func (g *Gauge) name() string { return g.nm }
func (g *Gauge) help() string { return g.hp }
func (g *Gauge) typ() string  { return "gauge" }
func (g *Gauge) write(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s %s\n", g.nm, formatFloat(g.Value()))
	return err
}

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	nm, hp  string
	bounds  []float64 // ascending upper bounds, +Inf implicit
	mu      sync.Mutex
	buckets []uint64 // per-bound (non-cumulative) counts
	inf     uint64
	sum     float64
	count   uint64
}

// NewHistogram registers a histogram with the given ascending bucket
// upper bounds (+Inf is always appended).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("promtext: histogram %s buckets not ascending", name))
		}
	}
	h := &Histogram{
		nm: name, hp: help,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]uint64, len(bounds)),
	}
	r.register(h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.count++
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i]++
			return
		}
	}
	h.inf++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

func (h *Histogram) name() string { return h.nm }
func (h *Histogram) help() string { return h.hp }
func (h *Histogram) typ() string  { return "histogram" }
func (h *Histogram) write(w io.Writer) error {
	h.mu.Lock()
	bounds := h.bounds
	buckets := append([]uint64(nil), h.buckets...)
	inf, sum, count := h.inf, h.sum, h.count
	h.mu.Unlock()
	cum := uint64(0)
	for i, b := range bounds {
		cum += buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.nm, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += inf
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", h.nm, formatFloat(sum), h.nm, count); err != nil {
		return err
	}
	return nil
}

// Summary reports quantiles over a sliding window of recent
// observations, plus a cumulative sum and count — the standard
// Prometheus summary exposition. Quantiles are computed at scrape
// time from the last windowSize observations (a fixed-size ring), so
// they track current behaviour rather than the process's lifetime.
type Summary struct {
	nm, hp    string
	quantiles []float64
	mu        sync.Mutex
	window    []float64 // ring buffer of recent observations
	next      int       // ring write position
	filled    int       // observations in the ring (≤ len(window))
	sum       float64
	count     uint64
}

// summaryWindow is the ring size backing Summary quantiles.
const summaryWindow = 512

// NewSummary registers a summary with the given quantiles (each in
// [0, 1], ascending).
func (r *Registry) NewSummary(name, help string, quantiles []float64) *Summary {
	for i, q := range quantiles {
		if q < 0 || q > 1 {
			panic(fmt.Sprintf("promtext: summary %s quantile %v outside [0,1]", name, q))
		}
		if i > 0 && q <= quantiles[i-1] {
			panic(fmt.Sprintf("promtext: summary %s quantiles not ascending", name))
		}
	}
	s := &Summary{
		nm: name, hp: help,
		quantiles: append([]float64(nil), quantiles...),
		window:    make([]float64, summaryWindow),
	}
	r.register(s)
	return s
}

// Observe records one value.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	s.window[s.next] = v
	s.next = (s.next + 1) % len(s.window)
	if s.filled < len(s.window) {
		s.filled++
	}
	s.sum += v
	s.count++
	s.mu.Unlock()
}

// Count returns the number of observations.
func (s *Summary) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

func (s *Summary) name() string { return s.nm }
func (s *Summary) help() string { return s.hp }
func (s *Summary) typ() string  { return "summary" }
func (s *Summary) write(w io.Writer) error {
	s.mu.Lock()
	recent := append([]float64(nil), s.window[:s.filled]...)
	sum, count := s.sum, s.count
	s.mu.Unlock()
	sort.Float64s(recent)
	for _, q := range s.quantiles {
		// An empty summary exposes NaN quantiles, per convention.
		v := math.NaN()
		if len(recent) > 0 {
			// Nearest-rank: the smallest observation with at least a
			// q fraction of the window at or below it. The previous
			// round-to-nearest index biased quantiles upward (p50 of
			// 1..100 read as 51).
			idx := int(math.Ceil(q*float64(len(recent)))) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= len(recent) {
				idx = len(recent) - 1
			}
			v = recent[idx]
		}
		if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n", s.nm, formatFloat(q), formatFloat(v)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", s.nm, formatFloat(sum), s.nm, count)
	return err
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

func escapeLabel(s string) string {
	// %q in the callers already quotes and escapes " and \; it renders
	// newlines as \n too, matching the exposition format, so there is
	// nothing left to do here. Kept as a seam (and documentation) for
	// the escaping rules.
	return s
}
