package admission

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseClass maps the wire form of a priority to its class. The empty
// string is ClassNormal: priority is optional on the API and absent
// from every journal record written before the field existed.
func ParseClass(s string) (Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "normal":
		return ClassNormal, nil
	case "low":
		return ClassLow, nil
	case "high":
		return ClassHigh, nil
	}
	return ClassNormal, fmt.Errorf("admission: unknown priority %q (want low, normal, or high)", s)
}

// maxTenantLen bounds tenant names; they become Prometheus label
// values and journal fields, so the grammar stays deliberately small.
const maxTenantLen = 64

// ValidateTenant checks the tenant grammar: empty (meaning
// DefaultTenant) or 1..64 bytes of [A-Za-z0-9._-].
func ValidateTenant(s string) error {
	if s == "" {
		return nil
	}
	if len(s) > maxTenantLen {
		return fmt.Errorf("admission: tenant longer than %d bytes", maxTenantLen)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("admission: tenant %q: invalid byte %q (allowed: A-Z a-z 0-9 . _ -)", s, c)
		}
	}
	return nil
}

// CanonicalTenant maps the empty tenant to DefaultTenant.
func CanonicalTenant(s string) string {
	if s == "" {
		return DefaultTenant
	}
	return s
}

// ParseWeights parses the CLI weight grammar "tenant=weight[,...]",
// e.g. "batch=1,interactive=3". Weights must be finite and >= 0; a 0
// pins the tenant to the MinWeight starvation floor.
func ParseWeights(s string) (map[string]float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, term := range strings.Split(s, ",") {
		name, wstr, ok := strings.Cut(strings.TrimSpace(term), "=")
		name = strings.TrimSpace(name)
		if !ok {
			return nil, fmt.Errorf("admission: weights: term %q is not tenant=weight", term)
		}
		if name == "" {
			return nil, fmt.Errorf("admission: weights: empty tenant in %q", term)
		}
		if err := ValidateTenant(name); err != nil {
			return nil, fmt.Errorf("admission: weights: %w", err)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(wstr), 64)
		if err != nil || math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("admission: weights: bad weight %q for tenant %q", wstr, name)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("admission: weights: duplicate tenant %q", name)
		}
		out[name] = w
	}
	return out, nil
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
