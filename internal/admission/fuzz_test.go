package admission

import (
	"strings"
	"testing"
)

// FuzzAdmissionSpec fuzzes the admission grammar surface — tenant
// names, priority classes, and the CLI weight string — which all
// parse attacker-controlled input (API bodies, journal records,
// flags). Invariants: never panic, accepted values are canonical and
// re-parse to the same result, rejected weights never half-populate.
func FuzzAdmissionSpec(f *testing.F) {
	seeds := []string{
		"", "default", "team-a", "team_b.c", "A0-9._x",
		"low", "normal", "high", "HIGH", " low ",
		"a=1", "a=1,b=3", "batch=0,interactive=2.5",
		"a=1,a=2", "a=", "=1", "a=NaN", "a=+Inf", "a=-1", "a=1e300",
		strings.Repeat("t", 64), strings.Repeat("t", 65),
		"bad tenant=1", "a=1,,b=2", "p=0.0000001",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		// Tenant grammar: valid names must survive canonicalization
		// and weight-map round trips.
		if err := ValidateTenant(s); err == nil {
			canon := CanonicalTenant(s)
			if canon == "" {
				t.Fatalf("CanonicalTenant(%q) returned empty", s)
			}
			if err := ValidateTenant(canon); err != nil {
				t.Fatalf("canonical tenant %q rejected: %v", canon, err)
			}
			if s != "" && canon != s {
				t.Fatalf("CanonicalTenant(%q) = %q, want identity", s, canon)
			}
			if _, err := New(Config{Weights: map[string]float64{canon: 1}}); err != nil {
				t.Fatalf("valid tenant %q rejected by New: %v", canon, err)
			}
		}

		// Priority grammar: accepted classes are valid, stringify to a
		// form that re-parses to the same class.
		if c, err := ParseClass(s); err == nil {
			if !c.Valid() {
				t.Fatalf("ParseClass(%q) = invalid class %d", s, c)
			}
			again, err := ParseClass(c.String())
			if err != nil || again != c {
				t.Fatalf("class %v did not round-trip: %v %v", c, again, err)
			}
		}

		// Weight grammar: accepted maps must build a queue and have
		// only finite non-negative weights; re-rendering the map and
		// re-parsing must be stable.
		w, err := ParseWeights(s)
		if err != nil {
			return
		}
		for name, v := range w {
			if ValidateTenant(name) != nil || name == "" {
				t.Fatalf("ParseWeights(%q) accepted bad tenant %q", s, name)
			}
			if v < 0 || !finite(v) {
				t.Fatalf("ParseWeights(%q) accepted bad weight %v", s, v)
			}
		}
		if _, err := New(Config{Weights: w}); err != nil {
			t.Fatalf("ParseWeights(%q) output rejected by New: %v", s, err)
		}
	})
}
