package admission

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

var t0 = time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)

func mustNew(t *testing.T, cfg Config) *Queue {
	t.Helper()
	q, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return q
}

func add(t *testing.T, q *Queue, tenant string, class Class, id string) {
	t.Helper()
	err := q.Add(Entry{ID: id, Tenant: tenant, Class: class, EnqueuedAt: t0})
	if err != nil {
		t.Fatalf("Add(%s/%s/%s): %v", tenant, class, id, err)
	}
}

// TestWFQWeightedShares pins the fairness property: two continuously
// backlogged tenants with weights 1:3 are admitted in a ~1:3 ratio
// over a long run, one selection at a time.
func TestWFQWeightedShares(t *testing.T) {
	q := mustNew(t, Config{Weights: map[string]float64{"a": 1, "b": 3}})
	const perTenant = 400
	for i := 0; i < perTenant; i++ {
		add(t, q, "a", ClassNormal, fmt.Sprintf("a-%03d", i))
		add(t, q, "b", ClassNormal, fmt.Sprintf("b-%03d", i))
	}
	// Select one at a time and look at the mix over the window where
	// both tenants are still backlogged (tenant b drains first).
	counts := map[string]int{}
	now := t0
	for q.TenantDepth("a") > 0 && q.TenantDepth("b") > 0 {
		now = now.Add(time.Second)
		got := q.SelectBatch(1, now)
		if len(got) != 1 {
			t.Fatalf("SelectBatch(1) returned %d entries", len(got))
		}
		counts[got[0].Tenant]++
	}
	if counts["a"] == 0 || counts["b"] == 0 {
		t.Fatalf("one tenant never selected: %v", counts)
	}
	ratio := float64(counts["b"]) / float64(counts["a"])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("admission ratio b:a = %.2f (counts %v), want ~3.0", ratio, counts)
	}
}

// TestWFQZeroWeightProgress pins the starvation floor: a tenant
// configured with weight 0 still drains while a heavy competitor
// stays backlogged.
func TestWFQZeroWeightProgress(t *testing.T) {
	q := mustNew(t, Config{Weights: map[string]float64{"starved": 0, "heavy": 10}})
	for i := 0; i < 8; i++ {
		add(t, q, "starved", ClassNormal, fmt.Sprintf("s-%02d", i))
	}
	for i := 0; i < 4000; i++ {
		add(t, q, "heavy", ClassNormal, fmt.Sprintf("h-%04d", i))
	}
	selected := 0
	now := t0
	for q.TenantDepth("heavy") > 0 && q.TenantDepth("starved") > 0 {
		now = now.Add(time.Second)
		for _, e := range q.SelectBatch(1, now) {
			if e.Tenant == "starved" {
				selected++
			}
		}
	}
	if q.TenantDepth("starved") != 0 {
		t.Fatalf("zero-weight tenant starved: %d jobs still queued after heavy tenant drained",
			q.TenantDepth("starved"))
	}
	if selected != 8 {
		t.Fatalf("selected %d starved jobs, want 8", selected)
	}
}

// TestWFQDeterministic pins determinism: the same arrival order
// always yields the same selection order.
func TestWFQDeterministic(t *testing.T) {
	run := func() []string {
		q := mustNew(t, Config{Weights: map[string]float64{"a": 2, "b": 1, "c": 5}})
		tenants := []string{"a", "b", "c", "a", "b", "a", "c", "c", "b", "a"}
		classes := []Class{ClassNormal, ClassHigh, ClassLow, ClassNormal, ClassNormal,
			ClassHigh, ClassNormal, ClassLow, ClassNormal, ClassLow}
		for i := 0; i < 50; i++ {
			add(t, q, tenants[i%len(tenants)], classes[i%len(classes)], fmt.Sprintf("j-%02d", i))
		}
		var order []string
		now := t0
		for q.Len() > 0 {
			now = now.Add(time.Second)
			for _, e := range q.SelectBatch(3, now) {
				order = append(order, e.ID)
			}
		}
		return order
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d selection order diverged:\n got %v\nwant %v", i, got, first)
		}
	}
}

// TestPriorityStrict pins class ordering: every queued high-priority
// job is selected before any normal one, regardless of tenant weight
// or arrival order, and FIFO holds within (tenant, class).
func TestPriorityStrict(t *testing.T) {
	q := mustNew(t, Config{Weights: map[string]float64{"a": 100}})
	add(t, q, "a", ClassNormal, "n-1")
	add(t, q, "a", ClassLow, "l-1")
	add(t, q, "b", ClassHigh, "h-1")
	add(t, q, "a", ClassHigh, "h-2")
	add(t, q, "b", ClassNormal, "n-2")
	var ids []string
	for _, e := range q.SelectBatch(0, t0) {
		ids = append(ids, e.ID)
	}
	want := []string{"h-1", "h-2", "n-1", "n-2", "l-1"}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("selection order %v, want %v", ids, want)
	}
}

// TestPreemptSwapsUntilNoHigher pins the cooperative-preemption
// contract at the epoch boundary: absorb to capacity first, then keep
// swapping while the queue head strictly outranks the batch minimum,
// requeuing each displaced member at the front of its class.
func TestPreemptSwapsUntilNoHigher(t *testing.T) {
	q := mustNew(t, Config{})
	add(t, q, "a", ClassLow, "low-1")
	add(t, q, "a", ClassLow, "low-2")
	batch := q.SelectBatch(2, t0)

	add(t, q, "b", ClassHigh, "high-1")
	add(t, q, "b", ClassNormal, "norm-1")

	kept, requeued := q.Preempt(batch, 2, t0.Add(time.Second))
	var keptIDs, reqIDs []string
	for _, e := range kept {
		keptIDs = append(keptIDs, e.ID)
	}
	for _, e := range requeued {
		reqIDs = append(reqIDs, e.ID)
	}
	// high-1 displaces low-2 (latest low arrival), then norm-1
	// displaces low-1; the batch floor is then ClassNormal and the
	// queue only holds the requeued lows, so swapping stops.
	if !reflect.DeepEqual(keptIDs, []string{"norm-1", "high-1"}) {
		t.Fatalf("kept %v, want [norm-1 high-1]", keptIDs)
	}
	if !reflect.DeepEqual(reqIDs, []string{"low-2", "low-1"}) {
		t.Fatalf("requeued %v, want [low-2 low-1]", reqIDs)
	}
	// The displaced jobs went back at the front with original tags:
	// next epoch selects them first, in original arrival order.
	next := q.SelectBatch(0, t0.Add(2*time.Second))
	if len(next) != 2 || next[0].ID != "low-1" || next[1].ID != "low-2" {
		t.Fatalf("post-preemption selection %v, want [low-1 low-2]", next)
	}
}

// TestPreemptUnboundedAbsorbs pins the default corund configuration
// (MaxBatch 0): preemption degenerates to absorb-everything and never
// requeues, preserving the pre-refactor coalescing semantics.
func TestPreemptUnboundedAbsorbs(t *testing.T) {
	q := mustNew(t, Config{})
	add(t, q, "a", ClassLow, "low-1")
	batch := q.SelectBatch(0, t0)
	add(t, q, "b", ClassHigh, "high-1")
	kept, requeued := q.Preempt(batch, 0, t0.Add(time.Second))
	if len(kept) != 2 || len(requeued) != 0 {
		t.Fatalf("kept %d requeued %d, want 2 and 0", len(kept), len(requeued))
	}
	if q.Len() != 0 {
		t.Fatalf("queue length %d after unbounded preempt, want 0", q.Len())
	}
}

// TestBounds pins the two admission bounds and the FullError scopes.
func TestBounds(t *testing.T) {
	q := mustNew(t, Config{MaxQueue: 3, TenantQueue: 2})
	add(t, q, "a", ClassNormal, "a-1")
	add(t, q, "a", ClassNormal, "a-2")

	err := q.Add(Entry{ID: "a-3", Tenant: "a"})
	var full *FullError
	if !errors.As(err, &full) || full.Scope != ScopeTenant || full.Tenant != "a" || full.Limit != 2 {
		t.Fatalf("tenant bound: got %v (%+v)", err, full)
	}

	add(t, q, "b", ClassNormal, "b-1")
	err = q.Add(Entry{ID: "b-2", Tenant: "b"})
	if !errors.As(err, &full) || full.Scope != ScopeGlobal || full.Limit != 3 {
		t.Fatalf("global bound: got %v (%+v)", err, full)
	}

	// Restore bypasses both bounds: recovery must re-admit journaled
	// jobs even when bounds shrank between runs.
	q.Restore(Entry{ID: "r-1", Tenant: "a"})
	if q.Len() != 4 || q.TenantDepth("a") != 3 {
		t.Fatalf("Restore ignored: len=%d depth(a)=%d", q.Len(), q.TenantDepth("a"))
	}
}

// TestReserve pins the write-ahead window contract: a reservation
// holds capacity against both bounds until released or converted.
func TestReserve(t *testing.T) {
	q := mustNew(t, Config{MaxQueue: 2})
	if err := q.Reserve("a"); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if err := q.Reserve("a"); err != nil {
		t.Fatalf("Reserve 2: %v", err)
	}
	if err := q.Reserve("a"); err == nil {
		t.Fatal("third Reserve under MaxQueue=2 succeeded")
	}
	q.Unreserve("a")
	q.AddReserved(Entry{ID: "a-1", Tenant: "a"})
	if q.Len() != 1 {
		t.Fatalf("len %d after AddReserved, want 1", q.Len())
	}
	// The released + converted reservations freed one slot.
	if err := q.Reserve("a"); err != nil {
		t.Fatalf("Reserve after release: %v", err)
	}
}

// TestObservability covers depths, drain rate, and oldest wait.
func TestObservability(t *testing.T) {
	q := mustNew(t, Config{})
	q.Add(Entry{ID: "a-1", Tenant: "a", EnqueuedAt: t0})
	q.Add(Entry{ID: "a-2", Tenant: "a", EnqueuedAt: t0.Add(time.Second)})
	q.Add(Entry{ID: "b-1", Tenant: "", EnqueuedAt: t0.Add(2 * time.Second)})

	if got := q.TenantDepth("a"); got != 2 {
		t.Fatalf("TenantDepth(a) = %d, want 2", got)
	}
	if got := q.TenantDepth(""); got != 1 {
		t.Fatalf(`TenantDepth("") = %d, want 1 (default tenant)`, got)
	}
	want := map[string]int{"a": 2, DefaultTenant: 1}
	if got := q.Depths(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Depths() = %v, want %v", got, want)
	}
	if got := q.OldestWait(t0.Add(10 * time.Second)); got != 10*time.Second {
		t.Fatalf("OldestWait = %v, want 10s", got)
	}

	// Tenant a is selected from in two rounds 2s apart (WFQ interleaves
	// the default tenant in between): one job per round -> ~0.5 job/s.
	q.SelectBatch(1, t0.Add(10*time.Second)) // a-1
	q.SelectBatch(1, t0.Add(11*time.Second)) // b-1
	q.SelectBatch(1, t0.Add(12*time.Second)) // a-2
	if got := q.DrainRate("a"); got <= 0 || got > 2 {
		t.Fatalf("DrainRate(a) = %v, want ~0.5", got)
	}
	if got := q.DrainRate("never-seen"); got != 0 {
		t.Fatalf("DrainRate(unseen) = %v, want 0", got)
	}

	if got := q.OldestWait(t0.Add(12 * time.Second)); got != 0 {
		t.Fatalf("OldestWait on empty queue = %v, want 0", got)
	}
	wantEmpty := map[string]int{"a": 0, DefaultTenant: 0}
	if got := q.Depths(); !reflect.DeepEqual(got, wantEmpty) {
		t.Fatalf("Depths() after drain = %v, want %v", got, wantEmpty)
	}
}

// TestNewValidation rejects bad configurations.
func TestNewValidation(t *testing.T) {
	bad := []Config{
		{DefaultWeight: -1},
		{MaxQueue: -1},
		{TenantQueue: -5},
		{Weights: map[string]float64{"": 1}},
		{Weights: map[string]float64{"ok tenant": 1}},
		{Weights: map[string]float64{"a": -2}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d (%+v): want error", i, cfg)
		}
	}
}
