// Package admission owns "who is admitted and who is eligible next"
// for the corund daemon, decoupled from "who co-runs under the cap"
// (the epoch planner's question). It provides tenant identity,
// priority classes, per-tenant queue bounds, and weighted fair
// queueing across tenants, behind the Selector seam the server's
// epoch loop consumes.
//
// Fairness is virtual-time weighted fair queueing in the start-time
// (SFQ) formulation: every enqueued job is stamped with a start tag
// S = max(V, F_t) where V is the queue's virtual clock and F_t the
// tenant's last finish tag; the tenant's finish tag advances by
// 1/weight per job; selection always pops the backlogged job with the
// smallest start tag (ties broken by arrival order), advancing V to
// that tag. Two backlogged tenants with weights w_a : w_b therefore
// drain in the ratio w_a : w_b, and every tenant with a positive
// effective weight has a bounded wait — a zero-configured weight is
// floored at MinWeight, so even a weight-0 tenant keeps making
// progress instead of starving.
//
// Priority classes are strict across classes and fair within one: a
// queued high-priority job is always eligible before any normal- or
// low-priority job, and WFQ arbitrates between tenants inside each
// class. At the epoch boundary, Preempt lets a freshly landed
// higher-priority job displace the lowest-priority members of an
// already-claimed batch (cooperative preemption: the epoch structure
// provides the boundary; nothing is interrupted mid-run).
//
// A Queue is NOT safe for concurrent use: ordering decisions must be
// atomic with the caller's own bookkeeping (corund's job table), so
// the caller provides the synchronization and the queue stays
// deterministic — a fixed arrival order always yields the same
// selection order.
package admission

import (
	"fmt"
	"sort"
	"time"
)

// Class is a job's priority class. Classes are strict: a queued job
// of a higher class is always eligible before any lower-class job;
// weighted fairness applies within a class, across tenants.
type Class int

// The priority classes, lowest first so ordering compares directly.
const (
	ClassLow Class = iota
	ClassNormal
	ClassHigh
	numClasses
)

// String returns the wire form accepted by ParseClass.
func (c Class) String() string {
	switch c {
	case ClassLow:
		return "low"
	case ClassNormal:
		return "normal"
	case ClassHigh:
		return "high"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Valid reports whether c is one of the defined classes.
func (c Class) Valid() bool { return c >= ClassLow && c < numClasses }

// DefaultTenant is the tenant that owns jobs submitted without one —
// including every job recovered from a journal written before the
// tenant field existed.
const DefaultTenant = "default"

// MinWeight is the starvation floor: the effective WFQ weight of a
// tenant configured with weight 0. The tenant drains at the lowest
// possible rate but is never starved — its virtual finish tags still
// advance finitely, so selection reaches it in bounded time.
const MinWeight = 0.05

// Entry is one admitted-but-unscheduled unit of work. The queue owns
// ordering metadata (arrival sequence and the WFQ start tag, assigned
// at enqueue); the Payload stays opaque — corund stores its *Job.
type Entry struct {
	ID         string
	Tenant     string // canonicalized by the queue ("" -> DefaultTenant)
	Class      Class
	EnqueuedAt time.Time
	Payload    any

	seq   uint64  // arrival order, assigned at enqueue
	start float64 // WFQ start tag, assigned at enqueue
}

// Bound scopes reported by FullError.
const (
	ScopeGlobal = "global"
	ScopeTenant = "tenant"
)

// FullError reports which admission bound rejected a job: the global
// queue bound or the submitting tenant's own bound. Handlers use the
// scope to name the bound in the 429 body and to pick the per-tenant
// Retry-After hint.
type FullError struct {
	Scope  string // ScopeGlobal | ScopeTenant
	Tenant string // the submitting tenant (set for both scopes)
	Limit  int
}

func (e *FullError) Error() string {
	if e.Scope == ScopeTenant {
		return fmt.Sprintf("admission: tenant %q queue full (bound %d)", e.Tenant, e.Limit)
	}
	return fmt.Sprintf("admission: queue full (bound %d)", e.Limit)
}

// Config configures a Queue.
type Config struct {
	// Weights are per-tenant WFQ weights — a tenant's share of epoch
	// slots under contention, and with it the tenant's share of the
	// power-capped node's serving capacity. Tenants absent from the
	// map get DefaultWeight; a configured 0 pins a tenant to the
	// MinWeight starvation floor.
	Weights map[string]float64

	// DefaultWeight is the weight of tenants not in Weights; 0 means 1.
	DefaultWeight float64

	// MaxQueue bounds the total queued jobs across all tenants
	// (0 = unbounded).
	MaxQueue int

	// TenantQueue bounds each single tenant's queued jobs
	// (0 = unbounded). Under heavy multi-tenant traffic this is what
	// keeps one chatty client from filling the global bound and
	// starving everyone else's admission.
	TenantQueue int
}

func (c Config) validate() error {
	if c.DefaultWeight < 0 || !finite(c.DefaultWeight) {
		return fmt.Errorf("admission: bad default weight %v", c.DefaultWeight)
	}
	if c.MaxQueue < 0 {
		return fmt.Errorf("admission: negative queue bound %d", c.MaxQueue)
	}
	if c.TenantQueue < 0 {
		return fmt.Errorf("admission: negative tenant queue bound %d", c.TenantQueue)
	}
	for name, w := range c.Weights {
		if err := ValidateTenant(name); err != nil || name == "" {
			return fmt.Errorf("admission: weights: bad tenant %q", name)
		}
		if w < 0 || !finite(w) {
			return fmt.Errorf("admission: weights: bad weight %v for %q", w, name)
		}
	}
	return nil
}

// Selector is the seam between admission and epoch planning: the
// server's scheduler loop claims work exclusively through it, while
// the job table, journal, and lifecycle stay with the server.
// Implementations are not safe for concurrent use — the caller
// provides the synchronization (corund guards every call with the
// server mutex, keeping ordering atomic with its job table).
type Selector interface {
	// Reserve claims admission capacity for one job of the tenant
	// before the caller's write-ahead journal round trip, so
	// concurrent submitters cannot overshoot a bound while the lock
	// is released. It returns a *FullError naming the bound that is
	// exhausted. Every successful Reserve is paired with exactly one
	// AddReserved (the job was journaled and enqueues) or Unreserve
	// (the journal write failed or admission aborted).
	Reserve(tenant string) error
	Unreserve(tenant string)
	AddReserved(e Entry)

	// Add is Reserve + AddReserved fused, for callers without a
	// journal window between the bound check and the enqueue.
	Add(e Entry) error

	// Restore enqueues without a bound check: recovery must re-admit
	// every journaled non-terminal job even if bounds were lowered
	// between runs. Entries restore in call order, so replaying in
	// record order rebuilds each tenant queue in arrival order and
	// the WFQ tags pin the same selection order a live daemon would
	// have used.
	Restore(e Entry)

	// Len is the number of queued (admitted, unclaimed) entries.
	Len() int

	// SelectBatch pops up to max entries in selection order: strict
	// priority across classes, virtual-time WFQ across tenants within
	// a class, arrival order within a tenant. max <= 0 pops
	// everything.
	SelectBatch(max int, now time.Time) []Entry

	// Preempt revisits a claimed batch at the epoch boundary (the end
	// of the batching gap). It first fills the batch to max from the
	// queues in selection order — arrivals during the gap still
	// coalesce into the epoch — and then, with the batch at capacity,
	// swaps in queued entries whose class is strictly higher than the
	// lowest class present, requeuing each displaced member at the
	// front of its tenant queue with its original virtual-time tags
	// (so it is first among its class next epoch, not resubmitted).
	// max <= 0 means unbounded: everything absorbs, nothing requeues.
	Preempt(batch []Entry, max int, now time.Time) (kept, requeued []Entry)

	// Per-tenant observability: queue depths, the EWMA drain rate in
	// jobs/sec (0 until a tenant has been selected from twice), and
	// the age of the oldest queued entry (0 when idle).
	TenantDepth(tenant string) int
	Depths() map[string]int
	// EachDepth visits every tenant's queue depth without allocating
	// the Depths map — the gauge-refresh path runs it once per claimed
	// batch.
	EachDepth(fn func(tenant string, depth int))
	DrainRate(tenant string) float64
	OldestWait(now time.Time) time.Duration
}

// tenant is one tenant's admission state.
type tenant struct {
	name   string
	weight float64 // effective weight (floored at MinWeight)
	finish float64 // last assigned virtual finish tag

	queues   [numClasses][]Entry // FIFO per class
	depth    int
	reserved int

	// Drain-rate EWMA, fed by SelectBatch/Preempt: jobs selected per
	// second of wall time between selections. Backs the per-tenant
	// Retry-After hint on 429s.
	rate       float64
	lastSelect time.Time
}

func (t *tenant) head(c Class) (Entry, bool) {
	if len(t.queues[c]) == 0 {
		return Entry{}, false
	}
	return t.queues[c][0], true
}

// Queue is the Selector implementation: per-tenant, per-class FIFO
// queues arbitrated by virtual-time WFQ. Not safe for concurrent use.
type Queue struct {
	cfg     Config
	tenants map[string]*tenant
	names   []string // sorted, for deterministic iteration

	vtime    float64 // the WFQ virtual clock
	length   int
	reserved int
	seq      uint64
}

var _ Selector = (*Queue)(nil)

// New validates the configuration and builds an empty queue.
func New(cfg Config) (*Queue, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.DefaultWeight == 0 {
		cfg.DefaultWeight = 1
	}
	if len(cfg.Weights) > 0 {
		w := make(map[string]float64, len(cfg.Weights))
		for k, v := range cfg.Weights {
			w[k] = v
		}
		cfg.Weights = w
	}
	return &Queue{cfg: cfg, tenants: map[string]*tenant{}}, nil
}

func (q *Queue) tenantState(name string) *tenant {
	t, ok := q.tenants[name]
	if !ok {
		w := q.cfg.DefaultWeight
		if cw, configured := q.cfg.Weights[name]; configured {
			w = cw
		}
		if w < MinWeight {
			w = MinWeight
		}
		t = &tenant{name: name, weight: w}
		q.tenants[name] = t
		i := sort.SearchStrings(q.names, name)
		q.names = append(q.names, "")
		copy(q.names[i+1:], q.names[i:])
		q.names[i] = name
	}
	return t
}

// Reserve claims capacity for one job of the tenant; see Selector.
func (q *Queue) Reserve(tenantName string) error {
	tenantName = CanonicalTenant(tenantName)
	t := q.tenantState(tenantName)
	if q.cfg.MaxQueue > 0 && q.length+q.reserved >= q.cfg.MaxQueue {
		return &FullError{Scope: ScopeGlobal, Tenant: tenantName, Limit: q.cfg.MaxQueue}
	}
	if q.cfg.TenantQueue > 0 && t.depth+t.reserved >= q.cfg.TenantQueue {
		return &FullError{Scope: ScopeTenant, Tenant: tenantName, Limit: q.cfg.TenantQueue}
	}
	t.reserved++
	q.reserved++
	return nil
}

// Unreserve releases one reservation; see Selector.
func (q *Queue) Unreserve(tenantName string) {
	t := q.tenantState(CanonicalTenant(tenantName))
	if t.reserved > 0 {
		t.reserved--
		q.reserved--
	}
}

// AddReserved converts one reservation into a queued entry.
func (q *Queue) AddReserved(e Entry) {
	q.Unreserve(e.Tenant)
	q.enqueue(e)
}

// Add admits one entry, checking bounds.
func (q *Queue) Add(e Entry) error {
	if err := q.Reserve(e.Tenant); err != nil {
		return err
	}
	q.AddReserved(e)
	return nil
}

// Restore enqueues without a bound check (the recovery path).
func (q *Queue) Restore(e Entry) { q.enqueue(e) }

// enqueue stamps the entry's arrival sequence and WFQ start tag and
// appends it to its (tenant, class) FIFO.
func (q *Queue) enqueue(e Entry) {
	e.Tenant = CanonicalTenant(e.Tenant)
	if !e.Class.Valid() {
		e.Class = ClassNormal
	}
	t := q.tenantState(e.Tenant)
	q.seq++
	e.seq = q.seq
	e.start = q.vtime
	if t.finish > e.start {
		e.start = t.finish
	}
	t.finish = e.start + 1/t.weight
	t.queues[e.Class] = append(t.queues[e.Class], e)
	t.depth++
	q.length++
}

// peek returns the tenant whose head entry selection would pop next:
// the highest non-empty class, and within it the minimum start tag
// (ties broken by arrival sequence, so equal tags stay FIFO).
func (q *Queue) peek() (*tenant, Class, bool) {
	for c := numClasses - 1; c >= ClassLow; c-- {
		var best *tenant
		var bestHead Entry
		for _, name := range q.names {
			t := q.tenants[name]
			head, ok := t.head(c)
			if !ok {
				continue
			}
			if best == nil || head.start < bestHead.start ||
				(head.start == bestHead.start && head.seq < bestHead.seq) {
				best, bestHead = t, head
			}
		}
		if best != nil {
			return best, c, true
		}
	}
	return nil, 0, false
}

// pop removes and returns the next entry in selection order,
// advancing the virtual clock to its start tag.
func (q *Queue) pop() (Entry, *tenant, bool) {
	t, c, ok := q.peek()
	if !ok {
		return Entry{}, nil, false
	}
	e := t.queues[c][0]
	t.queues[c] = t.queues[c][1:]
	if len(t.queues[c]) == 0 {
		t.queues[c] = nil // release the drained backing array
	}
	t.depth--
	q.length--
	if e.start > q.vtime {
		q.vtime = e.start
	}
	return e, t, true
}

// requeueFront puts a preempted entry back at the head of its queue,
// keeping its original tags: next epoch it is first among its class.
func (q *Queue) requeueFront(e Entry) {
	t := q.tenantState(e.Tenant)
	t.queues[e.Class] = append([]Entry{e}, t.queues[e.Class]...)
	t.depth++
	q.length++
}

// SelectBatch pops up to max entries in selection order; see Selector.
func (q *Queue) SelectBatch(max int, now time.Time) []Entry {
	var out []Entry
	counts := map[*tenant]int{}
	for max <= 0 || len(out) < max {
		e, t, ok := q.pop()
		if !ok {
			break
		}
		counts[t]++
		out = append(out, e)
	}
	q.observeDrain(counts, now)
	return out
}

// Preempt revisits a claimed batch at the epoch boundary; see Selector.
func (q *Queue) Preempt(batch []Entry, max int, now time.Time) (kept, requeued []Entry) {
	counts := map[*tenant]int{}
	// Absorb: arrivals during the gap coalesce into the epoch while
	// capacity remains.
	for max <= 0 || len(batch) < max {
		e, t, ok := q.pop()
		if !ok {
			break
		}
		counts[t]++
		batch = append(batch, e)
	}
	// Swap: with the batch at capacity, a strictly higher-priority
	// arrival displaces the lowest-priority member.
	if max > 0 && len(batch) >= max {
		for {
			_, c, ok := q.peek()
			if !ok {
				break
			}
			v := victim(batch)
			if v < 0 || c <= batch[v].Class {
				break
			}
			e, t, _ := q.pop()
			counts[t]++
			requeued = append(requeued, batch[v])
			q.requeueFront(batch[v])
			batch[v] = e
		}
	}
	q.observeDrain(counts, now)
	return batch, requeued
}

// victim picks the batch member preemption displaces first: the
// lowest class, and among equals the most recent arrival (it has
// waited the least).
func victim(batch []Entry) int {
	v := -1
	for i, e := range batch {
		if v < 0 || e.Class < batch[v].Class ||
			(e.Class == batch[v].Class && e.seq > batch[v].seq) {
			v = i
		}
	}
	return v
}

// observeDrain folds one selection round into the per-tenant drain
// EWMAs: n jobs over the wall time since the tenant's last selection.
func (q *Queue) observeDrain(counts map[*tenant]int, now time.Time) {
	for t, n := range counts {
		if !t.lastSelect.IsZero() {
			if dt := now.Sub(t.lastSelect).Seconds(); dt > 0 {
				inst := float64(n) / dt
				if t.rate == 0 {
					t.rate = inst
				} else {
					t.rate = 0.7*t.rate + 0.3*inst
				}
			}
		}
		t.lastSelect = now
	}
}

// Len is the number of queued entries.
func (q *Queue) Len() int { return q.length }

// TenantDepth is one tenant's queued entries (0 for unseen tenants).
func (q *Queue) TenantDepth(tenantName string) int {
	if t, ok := q.tenants[CanonicalTenant(tenantName)]; ok {
		return t.depth
	}
	return 0
}

// Depths returns every seen tenant's queue depth (including zeros, so
// gauges for drained tenants reset instead of going stale).
func (q *Queue) Depths() map[string]int {
	out := make(map[string]int, len(q.tenants))
	for name, t := range q.tenants {
		out[name] = t.depth
	}
	return out
}

// EachDepth visits every tenant's queue depth, allocation-free.
func (q *Queue) EachDepth(fn func(tenant string, depth int)) {
	for name, t := range q.tenants {
		fn(name, t.depth)
	}
}

// DrainRate is one tenant's EWMA drain rate in jobs/sec (0 until the
// tenant has been selected from at least twice).
func (q *Queue) DrainRate(tenantName string) float64 {
	if t, ok := q.tenants[CanonicalTenant(tenantName)]; ok {
		return t.rate
	}
	return 0
}

// OldestWait is the age of the oldest queued entry. Each (tenant,
// class) FIFO is in arrival order — preemption requeues at the front,
// which only moves an older entry forward — so scanning heads is
// enough.
func (q *Queue) OldestWait(now time.Time) time.Duration {
	var oldest time.Time
	for _, t := range q.tenants {
		for c := ClassLow; c < numClasses; c++ {
			if head, ok := t.head(c); ok {
				if oldest.IsZero() || head.EnqueuedAt.Before(oldest) {
					oldest = head.EnqueuedAt
				}
			}
		}
	}
	if oldest.IsZero() {
		return 0
	}
	d := now.Sub(oldest)
	if d < 0 {
		return 0
	}
	return d
}
