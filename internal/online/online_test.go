package online

import (
	"sync"
	"testing"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/model"
	"corun/internal/units"
	"corun/internal/workload"
)

var (
	charOnce sync.Once
	charVal  *model.Characterization
	charErr  error
)

func testOptions(t *testing.T, policy Policy) Options {
	t.Helper()
	cfg := apu.DefaultConfig()
	mem := memsys.Default()
	charOnce.Do(func() {
		charVal, charErr = model.Characterize(model.CharacterizeOptions{Cfg: cfg, Mem: mem})
	})
	if charErr != nil {
		t.Fatal(charErr)
	}
	return Options{Cfg: cfg, Mem: mem, Char: charVal, Cap: 15, Policy: policy, Seed: 1}
}

func TestGenerateArrivals(t *testing.T) {
	as, err := GenerateArrivals(20, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 20 {
		t.Fatalf("%d arrivals", len(as))
	}
	prev := units.Seconds(-1)
	for i, a := range as {
		if a.At < prev {
			t.Fatalf("arrival %d out of order", i)
		}
		prev = a.At
		if a.Prog == nil || a.Scale < 0.8 || a.Scale > 1.3 {
			t.Fatalf("arrival %d malformed: %+v", i, a)
		}
	}
	// Determinism.
	bs, err := GenerateArrivals(20, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range as {
		if as[i].At != bs[i].At || as[i].Label != bs[i].Label {
			t.Fatal("same seed gave a different stream")
		}
	}
	if _, err := GenerateArrivals(0, 30, 1); err == nil {
		t.Error("zero arrivals accepted")
	}
	if _, err := GenerateArrivals(5, -1, 1); err == nil {
		t.Error("negative gap accepted")
	}
}

func TestServeValidation(t *testing.T) {
	if _, err := Serve(Options{}, []Arrival{{}}); err == nil {
		t.Error("empty options accepted")
	}
	opts := testOptions(t, PolicyHCSPlus)
	if _, err := Serve(opts, []Arrival{{Prog: nil, Scale: 1}}); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := Serve(opts, []Arrival{{Prog: workload.MustByName("lud"), Scale: 0}}); err == nil {
		t.Error("zero scale accepted")
	}
	noChar := opts
	noChar.Char = nil
	if _, err := Serve(noChar, []Arrival{{Prog: workload.MustByName("lud"), Scale: 1}}); err == nil {
		t.Error("model policy without characterization accepted")
	}
	r, err := Serve(opts, nil)
	if err != nil || len(r.Outcomes) != 0 {
		t.Errorf("empty stream: %v %v", r, err)
	}
}

func TestServeAllJobsFinish(t *testing.T) {
	opts := testOptions(t, PolicyHCSPlus)
	as, err := GenerateArrivals(12, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Serve(opts, as)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Outcomes) != 12 {
		t.Fatalf("%d outcomes, want 12", len(r.Outcomes))
	}
	for _, o := range r.Outcomes {
		if o.Finished <= o.Arrived {
			t.Errorf("%s finished (%v) before arriving (%v)", o.Label, o.Finished, o.Arrived)
		}
		if o.Started < o.Arrived {
			t.Errorf("%s started before arriving", o.Label)
		}
		if o.Response() <= 0 {
			t.Errorf("%s non-positive response", o.Label)
		}
	}
	if r.Epochs < 1 {
		t.Error("no epochs ran")
	}
	if r.MeanResponse <= 0 || r.MaxResponse < r.MeanResponse {
		t.Errorf("response stats broken: mean %v max %v", r.MeanResponse, r.MaxResponse)
	}
	if r.EnergyJ <= 0 {
		t.Error("no energy accounted")
	}
}

// A saturated stream is served faster (lower mean response) by the
// co-scheduler than by random dispatch.
func TestHCSPlusBeatsRandomOnline(t *testing.T) {
	as, err := GenerateArrivals(16, 10, 5) // bursty: queues build up
	if err != nil {
		t.Fatal(err)
	}
	smart, err := Serve(testOptions(t, PolicyHCSPlus), as)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Serve(testOptions(t, PolicyRandom), as)
	if err != nil {
		t.Fatal(err)
	}
	if smart.MeanResponse >= naive.MeanResponse {
		t.Errorf("HCS+ mean response %v should beat random %v", smart.MeanResponse, naive.MeanResponse)
	}
	if smart.Done >= naive.Done {
		t.Errorf("HCS+ finishes at %v, random at %v", smart.Done, naive.Done)
	}
}

// Sparse arrivals degenerate to standalone runs under every policy.
func TestSparseArrivals(t *testing.T) {
	prog := workload.MustByName("hotspot")
	as := []Arrival{
		{At: 0, Prog: prog, Scale: 1, Label: "a"},
		{At: 500, Prog: prog, Scale: 1, Label: "b"},
	}
	for _, p := range []Policy{PolicyHCSPlus, PolicyRandom, PolicyDefault} {
		r, err := Serve(testOptions(t, p), as)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if r.Epochs != 2 {
			t.Errorf("%v: %d epochs, want 2 (idle gap between arrivals)", p, r.Epochs)
		}
		// The second job starts at its arrival, not earlier.
		for _, o := range r.Outcomes {
			if o.Label == "b" && o.Started < 500 {
				t.Errorf("%v: job b started at %v before its arrival", p, o.Started)
			}
		}
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyHCSPlus.String() != "hcs+" || PolicyRandom.String() != "random" ||
		PolicyHCS.String() != "hcs" || PolicyDefault.String() != "default" {
		t.Error("policy names wrong")
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy renders empty")
	}
}

// The plain-HCS policy also serves correctly (the branch without
// refinement).
func TestServePolicyHCS(t *testing.T) {
	opts := testOptions(t, PolicyHCS)
	as, err := GenerateArrivals(6, 15, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Serve(opts, as)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Outcomes) != 6 {
		t.Fatalf("%d outcomes", len(r.Outcomes))
	}
}

// Unknown policies error cleanly.
func TestServeUnknownPolicy(t *testing.T) {
	opts := testOptions(t, Policy(42))
	if _, err := Serve(opts, []Arrival{{Prog: workload.MustByName("lud"), Scale: 1}}); err == nil {
		t.Error("unknown policy accepted")
	}
}
