package online

import (
	"context"
	"errors"
	"sync"
	"testing"

	"corun/internal/apu"
	"corun/internal/core"
	"corun/internal/memsys"
	"corun/internal/model"
	"corun/internal/units"
	"corun/internal/workload"
)

// coreSchedule aliases the plan type so hook signatures stay readable.
type coreSchedule = core.Schedule

var (
	charOnce sync.Once
	charVal  *model.Characterization
	charErr  error
)

func testOptions(t *testing.T, policy Policy) Options {
	t.Helper()
	cfg := apu.DefaultConfig()
	mem := memsys.Default()
	charOnce.Do(func() {
		charVal, charErr = model.Characterize(model.CharacterizeOptions{Cfg: cfg, Mem: mem})
	})
	if charErr != nil {
		t.Fatal(charErr)
	}
	return Options{Cfg: cfg, Mem: mem, Char: charVal, Cap: 15, Policy: policy, Seed: 1}
}

func TestGenerateArrivals(t *testing.T) {
	as, err := GenerateArrivals(20, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 20 {
		t.Fatalf("%d arrivals", len(as))
	}
	prev := units.Seconds(-1)
	for i, a := range as {
		if a.At < prev {
			t.Fatalf("arrival %d out of order", i)
		}
		prev = a.At
		if a.Prog == nil || a.Scale < 0.8 || a.Scale > 1.3 {
			t.Fatalf("arrival %d malformed: %+v", i, a)
		}
	}
	// Determinism.
	bs, err := GenerateArrivals(20, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range as {
		if as[i].At != bs[i].At || as[i].Label != bs[i].Label {
			t.Fatal("same seed gave a different stream")
		}
	}
	if _, err := GenerateArrivals(0, 30, 1); err == nil {
		t.Error("zero arrivals accepted")
	}
	if _, err := GenerateArrivals(5, -1, 1); err == nil {
		t.Error("negative gap accepted")
	}
}

func TestServeValidation(t *testing.T) {
	if _, err := Serve(Options{}, []Arrival{{}}); err == nil {
		t.Error("empty options accepted")
	}
	opts := testOptions(t, PolicyHCSPlus)
	if _, err := Serve(opts, []Arrival{{Prog: nil, Scale: 1}}); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := Serve(opts, []Arrival{{Prog: workload.MustByName("lud"), Scale: 0}}); err == nil {
		t.Error("zero scale accepted")
	}
	noChar := opts
	noChar.Char = nil
	if _, err := Serve(noChar, []Arrival{{Prog: workload.MustByName("lud"), Scale: 1}}); err == nil {
		t.Error("model policy without characterization accepted")
	}
	r, err := Serve(opts, nil)
	if err != nil || len(r.Outcomes) != 0 {
		t.Errorf("empty stream: %v %v", r, err)
	}
}

func TestServeAllJobsFinish(t *testing.T) {
	opts := testOptions(t, PolicyHCSPlus)
	as, err := GenerateArrivals(12, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Serve(opts, as)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Outcomes) != 12 {
		t.Fatalf("%d outcomes, want 12", len(r.Outcomes))
	}
	for _, o := range r.Outcomes {
		if o.Finished <= o.Arrived {
			t.Errorf("%s finished (%v) before arriving (%v)", o.Label, o.Finished, o.Arrived)
		}
		if o.Started < o.Arrived {
			t.Errorf("%s started before arriving", o.Label)
		}
		if o.Response() <= 0 {
			t.Errorf("%s non-positive response", o.Label)
		}
	}
	if r.Epochs < 1 {
		t.Error("no epochs ran")
	}
	if r.MeanResponse <= 0 || r.MaxResponse < r.MeanResponse {
		t.Errorf("response stats broken: mean %v max %v", r.MeanResponse, r.MaxResponse)
	}
	if r.EnergyJ <= 0 {
		t.Error("no energy accounted")
	}
}

// A saturated stream is served faster (lower mean response) by the
// co-scheduler than by random dispatch.
func TestHCSPlusBeatsRandomOnline(t *testing.T) {
	as, err := GenerateArrivals(16, 10, 5) // bursty: queues build up
	if err != nil {
		t.Fatal(err)
	}
	smart, err := Serve(testOptions(t, PolicyHCSPlus), as)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Serve(testOptions(t, PolicyRandom), as)
	if err != nil {
		t.Fatal(err)
	}
	if smart.MeanResponse >= naive.MeanResponse {
		t.Errorf("HCS+ mean response %v should beat random %v", smart.MeanResponse, naive.MeanResponse)
	}
	if smart.Done >= naive.Done {
		t.Errorf("HCS+ finishes at %v, random at %v", smart.Done, naive.Done)
	}
}

// Sparse arrivals degenerate to standalone runs under every policy.
func TestSparseArrivals(t *testing.T) {
	prog := workload.MustByName("hotspot")
	as := []Arrival{
		{At: 0, Prog: prog, Scale: 1, Label: "a"},
		{At: 500, Prog: prog, Scale: 1, Label: "b"},
	}
	for _, p := range []Policy{PolicyHCSPlus, PolicyRandom, PolicyDefault} {
		r, err := Serve(testOptions(t, p), as)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if r.Epochs != 2 {
			t.Errorf("%v: %d epochs, want 2 (idle gap between arrivals)", p, r.Epochs)
		}
		// The second job starts at its arrival, not earlier.
		for _, o := range r.Outcomes {
			if o.Label == "b" && o.Started < 500 {
				t.Errorf("%v: job b started at %v before its arrival", p, o.Started)
			}
		}
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyHCSPlus.String() != "hcs+" || PolicyRandom.String() != "random" ||
		PolicyHCS.String() != "hcs" || PolicyDefault.String() != "default" {
		t.Error("policy names wrong")
	}
	if Policy("fifo").String() != "fifo" {
		t.Error("unknown policy does not render its own name")
	}
}

// The plain-HCS policy also serves correctly (the branch without
// refinement).
func TestServePolicyHCS(t *testing.T) {
	opts := testOptions(t, PolicyHCS)
	as, err := GenerateArrivals(6, 15, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Serve(opts, as)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Outcomes) != 6 {
		t.Fatalf("%d outcomes", len(r.Outcomes))
	}
}

// Unknown policies error cleanly.
func TestServeUnknownPolicy(t *testing.T) {
	opts := testOptions(t, Policy("fifo"))
	if _, err := Serve(opts, []Arrival{{Prog: workload.MustByName("lud"), Scale: 1}}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"hcs+": PolicyHCSPlus, "HCSPLUS": PolicyHCSPlus, " hcs ": PolicyHCS,
		"random": PolicyRandom, "Default": PolicyDefault,
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "hcs++", "fifo", "42"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		}
	}
	for _, p := range Policies() {
		if err := p.Valid(); err != nil {
			t.Errorf("%v invalid: %v", p, err)
		}
		rt, err := ParsePolicy(p.String())
		if err != nil || rt != p {
			t.Errorf("round trip %v -> %q -> %v, %v", p, p.String(), rt, err)
		}
	}
	if err := Policy("fifo").Valid(); err == nil {
		t.Error(`Policy("fifo") valid`)
	}
}

func TestOptionsValidate(t *testing.T) {
	opts := testOptions(t, PolicyHCSPlus)
	if err := opts.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := opts
	bad.Policy = Policy("fifo")
	if err := bad.Validate(); err == nil {
		t.Error("unknown policy validated")
	}
	bad = opts
	bad.Cap = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative cap validated")
	}
	// Default dispatch ranks jobs with the predictive model, so it
	// needs the characterization too.
	bad = testOptions(t, PolicyDefault)
	bad.Char = nil
	if err := bad.Validate(); err == nil {
		t.Error("default policy without characterization validated")
	}
	ok := testOptions(t, PolicyRandom)
	ok.Char = nil
	if err := ok.Validate(); err != nil {
		t.Errorf("random policy without characterization rejected: %v", err)
	}
}

func TestServeContextCancel(t *testing.T) {
	opts := testOptions(t, PolicyHCSPlus)
	as, err := GenerateArrivals(8, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel after the first epoch via the hook: the in-flight epoch
	// completes, the remaining stream is abandoned.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts.Hook = func(EpochStats) error { cancel(); return nil }
	res, err := ServeContext(ctx, opts, as)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Epochs != 1 {
		t.Fatalf("res = %+v, want exactly 1 epoch", res)
	}
	if len(res.Outcomes) == 0 {
		t.Error("cancelled serve lost the completed epoch's outcomes")
	}
}

func TestServeHookAbort(t *testing.T) {
	opts := testOptions(t, PolicyRandom)
	as, err := GenerateArrivals(6, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	sentinel := errors.New("stop here")
	opts.Hook = func(s EpochStats) error {
		calls++
		if s.Jobs <= 0 || s.Makespan <= 0 {
			t.Errorf("malformed stats %+v", s)
		}
		return sentinel
	}
	if _, err := Serve(opts, as); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("hook called %d times, want 1", calls)
	}
}

func TestPlanEpoch(t *testing.T) {
	opts := testOptions(t, PolicyHCSPlus)
	batch := workload.Batch8()
	var sawPlan bool
	opts.Planned = func(plan *coreSchedule, predicted units.Seconds) {
		sawPlan = plan != nil && predicted > 0
	}
	ep, err := PlanEpoch(opts, batch, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Plan == nil || ep.Predicted <= 0 || ep.Result == nil {
		t.Fatalf("incomplete epoch: %+v", ep)
	}
	if !sawPlan {
		t.Error("Planned hook not called with a plan")
	}
	if len(ep.Result.Completions) != len(batch) {
		t.Errorf("%d completions, want %d", len(ep.Result.Completions), len(batch))
	}

	// Baselines have no plan but still call the hook.
	ropts := testOptions(t, PolicyRandom)
	hookRan := false
	ropts.Planned = func(plan *coreSchedule, predicted units.Seconds) {
		hookRan = plan == nil && predicted == 0
	}
	rep, err := PlanEpoch(ropts, workload.Batch8(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan != nil || !hookRan {
		t.Errorf("random baseline: plan %v, hook ok %v", rep.Plan, hookRan)
	}

	if _, err := PlanEpoch(Options{}, batch, 1); err == nil {
		t.Error("empty options accepted")
	}
}
