// Package online builds an arrival-driven co-scheduling server on top
// of the batch machinery: jobs arrive over (simulated) time at a
// power-capped APU node, and the server repeatedly plans and executes
// co-schedules for whatever is queued.
//
// This is the "take effect online" operating mode the paper motivates
// in section III: the scheduler itself is cheap enough (< 0.1% of
// makespan) to re-run at every scheduling epoch. The server uses an
// epoch model — while one planned batch executes, newly arrived jobs
// queue; when the batch drains, the queue is re-planned — which is how
// non-preemptive accelerator queues behave in practice.
package online

import (
	"fmt"
	"math/rand"
	"sort"

	"corun/internal/apu"
	"corun/internal/core"
	"corun/internal/kernelsim"
	"corun/internal/memsys"
	"corun/internal/model"
	"corun/internal/profile"
	"corun/internal/sim"
	"corun/internal/units"
	"corun/internal/workload"
)

// Policy selects how each epoch's queue is scheduled.
type Policy int

// Policies.
const (
	// PolicyHCSPlus plans each epoch with HCS plus refinement.
	PolicyHCSPlus Policy = iota
	// PolicyHCS plans with plain HCS.
	PolicyHCS
	// PolicyRandom dispatches each epoch with the Random baseline.
	PolicyRandom
	// PolicyDefault dispatches each epoch with the Default baseline.
	PolicyDefault
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyHCSPlus:
		return "hcs+"
	case PolicyHCS:
		return "hcs"
	case PolicyRandom:
		return "random"
	case PolicyDefault:
		return "default"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Arrival is one job arriving at the server.
type Arrival struct {
	At    units.Seconds
	Prog  *kernelsim.Program
	Scale float64
	Label string
}

// Options configures the server.
type Options struct {
	Cfg  *apu.Config
	Mem  *memsys.Model
	Char *model.Characterization
	Cap  units.Watts

	Policy Policy
	// Seed drives the Random policy and refinement sampling.
	Seed int64
}

// JobOutcome records one served job.
type JobOutcome struct {
	Label string
	// Arrived, Started, Finished are absolute server times; Started is
	// the epoch start (jobs wait for the running epoch to drain).
	Arrived  units.Seconds
	Started  units.Seconds
	Finished units.Seconds
}

// Response is the job's total time in the system.
func (j JobOutcome) Response() units.Seconds { return j.Finished - j.Arrived }

// Result summarizes a served arrival stream.
type Result struct {
	Outcomes []JobOutcome
	// Done is the time the last job finished.
	Done units.Seconds
	// Epochs is how many scheduling rounds ran.
	Epochs int
	// MeanResponse and MaxResponse summarize job latencies.
	MeanResponse units.Seconds
	MaxResponse  units.Seconds
	// EnergyJ is total energy across epochs.
	EnergyJ float64
}

// Serve runs the arrival stream to completion.
func Serve(opts Options, arrivals []Arrival) (*Result, error) {
	if opts.Cfg == nil || opts.Mem == nil {
		return nil, fmt.Errorf("online: nil machine or memory model")
	}
	if len(arrivals) == 0 {
		return &Result{}, nil
	}
	for i, a := range arrivals {
		if a.Prog == nil {
			return nil, fmt.Errorf("online: arrival %d has no program", i)
		}
		if a.Scale <= 0 {
			return nil, fmt.Errorf("online: arrival %d has scale %v", i, a.Scale)
		}
	}
	if (opts.Policy == PolicyHCSPlus || opts.Policy == PolicyHCS) && opts.Char == nil {
		return nil, fmt.Errorf("online: model-based policies need a characterization")
	}
	sorted := append([]Arrival(nil), arrivals...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	res := &Result{}
	clock := units.Seconds(0)
	next := 0
	rng := rand.New(rand.NewSource(opts.Seed))

	for next < len(sorted) || clock < res.Done {
		if next >= len(sorted) {
			break
		}
		// Wait for work.
		if sorted[next].At > clock {
			clock = sorted[next].At
		}
		// Take everything that has arrived by now.
		var epoch []Arrival
		for next < len(sorted) && sorted[next].At <= clock {
			epoch = append(epoch, sorted[next])
			next++
		}
		batch := make([]*workload.Instance, len(epoch))
		for i, a := range epoch {
			batch[i] = &workload.Instance{ID: i, Prog: a.Prog, Scale: a.Scale, Label: a.Label}
		}

		simRes, err := runEpoch(opts, batch, rng.Int63())
		if err != nil {
			return nil, err
		}
		res.Epochs++
		res.EnergyJ += simRes.EnergyJ
		for _, c := range simRes.Completions {
			// Map the completion back to its arrival.
			a := epoch[c.Inst.ID]
			res.Outcomes = append(res.Outcomes, JobOutcome{
				Label:    a.Label,
				Arrived:  a.At,
				Started:  clock,
				Finished: clock + c.End,
			})
		}
		clock += simRes.Makespan
		if clock > res.Done {
			res.Done = clock
		}
	}

	sum, max := 0.0, units.Seconds(0)
	for _, o := range res.Outcomes {
		r := o.Response()
		sum += float64(r)
		if r > max {
			max = r
		}
	}
	if len(res.Outcomes) > 0 {
		res.MeanResponse = units.Seconds(sum / float64(len(res.Outcomes)))
	}
	res.MaxResponse = max
	return res, nil
}

// runEpoch schedules and executes one queued batch.
func runEpoch(opts Options, batch []*workload.Instance, seed int64) (*sim.Result, error) {
	execOpts := core.ExecOptions{Cfg: opts.Cfg, Mem: opts.Mem, Cap: opts.Cap}
	switch opts.Policy {
	case PolicyRandom:
		return core.ExecuteRandom(execOpts, batch, seed, sim.GPUBiased)
	case PolicyDefault:
		prof, err := profile.Collect(opts.Cfg, opts.Mem, batch)
		if err != nil {
			return nil, err
		}
		pred, err := model.NewPredictor(opts.Char, prof)
		if err != nil {
			return nil, err
		}
		return core.ExecuteDefault(execOpts, batch, pred, sim.GPUBiased)
	case PolicyHCS, PolicyHCSPlus:
		prof, err := profile.Collect(opts.Cfg, opts.Mem, batch)
		if err != nil {
			return nil, err
		}
		pred, err := model.NewPredictor(opts.Char, prof)
		if err != nil {
			return nil, err
		}
		cx, err := core.NewContext(pred, opts.Cfg, opts.Cap)
		if err != nil {
			return nil, err
		}
		plan, err := cx.HCS(core.HCSOptions{})
		if err != nil {
			return nil, err
		}
		if opts.Policy == PolicyHCSPlus {
			plan, _, err = cx.Refine(plan, core.RefineOptions{Seed: seed})
			if err != nil {
				return nil, err
			}
		}
		return cx.Execute(plan, batch, execOpts)
	default:
		return nil, fmt.Errorf("online: unknown policy %v", opts.Policy)
	}
}

// GenerateArrivals produces a seeded arrival stream: n jobs drawn
// uniformly from the benchmark set with exponential-ish inter-arrival
// gaps of the given mean (seconds) and input scales in [0.8, 1.3].
func GenerateArrivals(n int, meanGap float64, seed int64) ([]Arrival, error) {
	if n <= 0 {
		return nil, fmt.Errorf("online: need at least one arrival")
	}
	if meanGap < 0 {
		return nil, fmt.Errorf("online: negative mean gap")
	}
	rng := rand.New(rand.NewSource(seed))
	names := workload.Names()
	out := make([]Arrival, n)
	t := 0.0
	for i := range out {
		name := names[rng.Intn(len(names))]
		prog, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		out[i] = Arrival{
			At:    units.Seconds(t),
			Prog:  prog,
			Scale: 0.8 + 0.5*rng.Float64(),
			Label: fmt.Sprintf("%s@%d", name, i),
		}
		t += rng.ExpFloat64() * meanGap
	}
	return out, nil
}
